module dyflow

go 1.22
