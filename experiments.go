package dyflow

import (
	"dyflow/internal/cluster"
	"dyflow/internal/exp"
)

func clusterNodeID(s string) cluster.NodeID { return cluster.NodeID(s) }

// The paper's experiments, runnable through the public API. Each returns
// the experiment-specific result plus the full trace via its World.

// Experiment result types.
type (
	// XGCResult is the Figure 6 experiment outcome.
	XGCResult = exp.XGCResult
	// GSResult is the Figure 8/9 experiment outcome.
	GSResult = exp.GSResult
	// LAMMPSResult is the Figure 11 experiment outcome.
	LAMMPSResult = exp.LAMMPSResult
	// CostResult is the §4.6 cost analysis.
	CostResult = exp.CostResult
	// Report is a paper-vs-measured comparison table.
	Report = exp.Report
	// ChaosOptions tunes the seeded fault-injection campaign.
	ChaosOptions = exp.ChaosOptions
	// ChaosResult summarizes one chaos campaign run.
	ChaosResult = exp.ChaosResult
)

// Paper experiment runners and report builders.
var (
	// RunXGC executes the science-driven alternation experiment (Fig. 6).
	RunXGC = exp.RunXGC
	// RunXGCBaseline completes the same step count with XGC1 alone.
	RunXGCBaseline = exp.RunXGCBaseline
	// RunGrayScott executes the under-provisioning experiment (Figs. 8/9).
	RunGrayScott = exp.RunGrayScott
	// RunGrayScottOverProvisioned executes the §4.4 over-provisioning
	// variant.
	RunGrayScottOverProvisioned = exp.RunGrayScottOverProvisioned
	// RunLAMMPS executes the failure-resilience experiment (Fig. 11).
	RunLAMMPS = exp.RunLAMMPS
	// RunCostAnalysis derives the §4.6 cost table.
	RunCostAnalysis = exp.RunCostAnalysis
	// RunChaos runs Gray-Scott under a seeded node-kill/heal campaign with
	// flaky-carve injection and reports whether it still converged (§10 of
	// DESIGN.md).
	RunChaos = exp.RunChaos
	// DefaultChaosOptions is a survivable default campaign.
	DefaultChaosOptions = exp.DefaultChaosOptions

	// XGCReport and friends build paper-vs-measured tables.
	XGCReport           = exp.XGCReport
	GrayScottReport     = exp.GrayScottReport
	Figure1Report       = exp.Figure1Report
	LAMMPSReport        = exp.LAMMPSReport
	CostReport          = exp.CostReport
	OverProvisionReport = exp.OverProvisionReport

	// XGCXML, GrayScottXML and LAMMPSXML are the shipped orchestration
	// documents (complete versions of paper Figures 3-5, 7, 10).
	XGCXML       = exp.XGCXML
	GrayScottXML = exp.GrayScottXML
	LAMMPSXML    = exp.LAMMPSXML
)
