package dyflow

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const quickXML = `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Ana" workflowId="WF" info-source="tau.Ana">
        <use-sensor sensor-id="PACE" info="looptime"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="INC">
        <eval operation="GT" threshold="10"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action>ADDCPU</action>
        <history window="3" operation="AVG"/>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="WF">
      <apply-policy policyId="INC" assess-task="Ana">
        <act-on-tasks>Ana</act-on-tasks>
        <action-params><param key="adjust-by" value="6"/></action-params>
      </apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="WF">
        <task-priorities>
          <task-priority name="Sim" priority="0"/>
          <task-priority name="Ana" priority="1"/>
        </task-priorities>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>`

func quickSystem(t *testing.T, seed int64) *System {
	t.Helper()
	sys, err := NewSystem(seed, Deepthought2, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Compose(&WorkflowSpec{
		ID: "WF",
		Tasks: []TaskConfig{
			{
				Spec: TaskSpec{
					Name: "Sim", Workflow: "WF",
					Cost: Cost{Work: 10 * time.Second}, TotalSteps: 400,
					ProducesTo: "wf.out",
				},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
			{
				Spec: TaskSpec{
					Name: "Ana", Workflow: "WF",
					Cost: Cost{Work: 40 * time.Second}, ConsumesFrom: "wf.out", ConsumeBuf: 1,
					Profile: true,
				},
				Procs: 2, ProcsPerNode: 1, AutoStart: true,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Arbiter: ArbiterConfig{
		WarmupDelay:  time.Minute,
		SettleDelay:  time.Minute,
		PlanCost:     100 * time.Millisecond,
		GatherWindow: 5 * time.Second,
	}}
	if err := sys.StartOrchestration(quickXML, opts); err != nil {
		t.Fatal(err)
	}
	sys.Launch("WF")
	return sys
}

func TestSystemEndToEnd(t *testing.T) {
	sys := quickSystem(t, 42)
	end, err := sys.RunUntilWorkflowDone("WF", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 || end > time.Hour {
		t.Fatalf("end = %v", end)
	}
	if got := sys.TaskProcs("WF", "Ana"); got != 8 {
		t.Fatalf("Ana procs = %d, want 8 after adaptation", got)
	}
	if len(sys.Plans()) != 1 {
		t.Fatalf("plans = %d", len(sys.Plans()))
	}
	series := sys.MetricSeries("WF", "Ana", "PACE")
	if len(series) == 0 {
		t.Fatal("no PACE series")
	}
	var buf bytes.Buffer
	sys.WriteGantt(&buf, 80)
	out := buf.String()
	if !strings.Contains(out, "Ana") || !strings.Contains(out, "DYFLOW") {
		t.Fatalf("gantt output missing rows:\n%s", out)
	}
}

// TestSystemDeterminism: identical seeds give byte-identical traces.
func TestSystemDeterminism(t *testing.T) {
	run := func() string {
		sys := quickSystem(t, 7)
		if _, err := sys.RunUntilWorkflowDone("WF", time.Hour); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		sys.WriteGantt(&buf, 100)
		sys.WritePlanSummary(&buf)
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs diverged:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestTraceDumpRoundTrip(t *testing.T) {
	sys := quickSystem(t, 42)
	if _, err := sys.RunUntilWorkflowDone("WF", time.Hour); err != nil {
		t.Fatal(err)
	}
	dump := sys.DumpTrace()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := dump.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTraceDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Intervals) != len(dump.Intervals) || len(loaded.Plans) != len(dump.Plans) {
		t.Fatalf("round trip lost records: %d/%d intervals, %d/%d plans",
			len(loaded.Intervals), len(dump.Intervals), len(loaded.Plans), len(dump.Plans))
	}
	var buf bytes.Buffer
	loaded.Gantt(&buf, 80)
	if !strings.Contains(buf.String(), "Ana") {
		t.Fatalf("rendered dump missing task row:\n%s", buf.String())
	}
}

func TestSystemConfigBuild(t *testing.T) {
	cfgJSON := `{
	  "machine": "dt2",
	  "nodes": 2,
	  "seed": 3,
	  "workflows": [{
	    "id": "WF",
	    "tasks": [
	      {"name": "Sim", "procs": 10, "procsPerNode": 5, "autoStart": true,
	       "workSec": 10, "totalSteps": 50, "producesTo": "wf.out", "profile": true},
	      {"name": "Ana", "procs": 4, "procsPerNode": 2, "autoStart": true,
	       "workSec": 20, "consumesFrom": "wf.out", "consumeBuf": 1}
	    ]
	  }],
	  "scripts": [{"name": "prep.sh", "costSec": 2}],
	  "failures": [{"atSec": 3600, "node": "node001"}]
	}`
	path := filepath.Join(t.TempDir(), "system.json")
	if err := os.WriteFile(path, []byte(cfgJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadSystemConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.WorkflowIDs(); len(got) != 1 || got[0] != "WF" {
		t.Fatalf("workflow ids = %v", got)
	}
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Launch("WF")
	if _, err := sys.RunUntilWorkflowDone("WF", time.Hour); err != nil {
		t.Fatal(err)
	}
	if sys.TaskRunning("WF", "Sim") {
		t.Fatal("Sim should be done")
	}
}

func TestSystemConfigErrors(t *testing.T) {
	if _, err := (&SystemConfig{Machine: "cray", Nodes: 1}).Build(); err == nil {
		t.Fatal("unknown machine should fail")
	}
	if _, err := (&SystemConfig{Machine: "summit"}).Build(); err == nil {
		t.Fatal("zero nodes should fail")
	}
	if _, err := LoadSystemConfig("/nonexistent/x.json"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestCompileSpecFacade(t *testing.T) {
	cfg, err := CompileSpec(quickXML)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sensors["PACE"] == nil || cfg.Policies["INC"] == nil {
		t.Fatal("compiled config incomplete")
	}
	if _, err := CompileSpec("<dyflow/>"); err == nil {
		t.Fatal("empty spec should fail validation")
	}
}

// TestPaperWorkflowBuilders sanity-checks the re-exported builders.
func TestPaperWorkflowBuilders(t *testing.T) {
	for _, m := range []Machine{Summit, Deepthought2} {
		if XGCWorkflow(m).TaskConfigByName("XGC1") == nil {
			t.Fatalf("%v XGC workflow missing XGC1", m)
		}
		if GrayScottWorkflow(m).TaskConfigByName("Isosurface") == nil {
			t.Fatalf("%v Gray-Scott workflow missing Isosurface", m)
		}
		if LAMMPSWorkflow(m).TaskConfigByName("LAMMPS") == nil {
			t.Fatalf("%v LAMMPS workflow missing LAMMPS", m)
		}
	}
}

// TestShippedArtifactsCompile: the CLI example's JSON/XML artifacts and the
// generated paper orchestration documents all parse and validate.
func TestShippedArtifactsCompile(t *testing.T) {
	data, err := os.ReadFile("examples/cli/orchestration.xml")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileSpec(string(data)); err != nil {
		t.Fatalf("examples/cli/orchestration.xml: %v", err)
	}
	cfg, err := LoadSystemConfig("examples/cli/system.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Build(); err != nil {
		t.Fatalf("examples/cli/system.json: %v", err)
	}
	for _, m := range []Machine{Summit, Deepthought2} {
		for name, xml := range map[string]string{
			"XGCXML":       XGCXML(m),
			"GrayScottXML": GrayScottXML(m),
			"LAMMPSXML":    LAMMPSXML(m),
		} {
			if _, err := CompileSpec(xml); err != nil {
				t.Errorf("%s(%v): %v", name, m, err)
			}
		}
	}
}

// TestSpecArtifactsInSync: the checked-in specs/ documents match what the
// generators produce (regenerate them if a generator changes).
func TestSpecArtifactsInSync(t *testing.T) {
	files := map[string]string{
		"specs/xgc-summit.xml":       XGCXML(Summit),
		"specs/xgc-dt2.xml":          XGCXML(Deepthought2),
		"specs/grayscott-summit.xml": GrayScottXML(Summit),
		"specs/grayscott-dt2.xml":    GrayScottXML(Deepthought2),
		"specs/lammps-summit.xml":    LAMMPSXML(Summit),
		"specs/lammps-dt2.xml":       LAMMPSXML(Deepthought2),
	}
	for path, want := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if strings.TrimSpace(string(data)) != strings.TrimSpace(want) {
			t.Errorf("%s is out of sync with its generator", path)
		}
		if _, err := CompileSpec(string(data)); err != nil {
			t.Errorf("%s does not compile: %v", path, err)
		}
	}
}
