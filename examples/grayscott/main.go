// Gray-Scott under-provisioning (paper §4.4, Figures 8 and 9): the
// reaction-diffusion simulation is tightly coupled to four analyses whose
// initial sizes can't sustain the desired pace; DYFLOW's INC_ON_PACE policy
// grows Isosurface twice, taking cores from PDF_Calc and then FFT, with
// Rendering restarted alongside due to its tight dependency.
//
//	go run ./examples/grayscott [-machine summit|dt2]
package main

import (
	"flag"
	"fmt"
	"os"

	"dyflow"
	"dyflow/internal/exp"
)

func main() {
	machine := flag.String("machine", "summit", "summit or dt2")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	m := dyflow.Summit
	if *machine == "dt2" {
		m = dyflow.Deepthought2
	}

	fmt.Printf("Gray-Scott under-provisioning on %v (seed %d)\n\n", m, *seed)
	res, err := dyflow.RunGrayScott(*seed, m, true)
	if err != nil {
		panic(err)
	}
	res.W.Rec.Gantt(os.Stdout, 100)
	fmt.Println()
	res.W.Rec.PlanSummary(os.Stdout)
	fmt.Println()

	// The Figure 9 series: average time per timestep as Decision received
	// it — note the reset gap and the drop after each restart.
	inc, dec := 36.0, 24.0
	if m == dyflow.Deepthought2 {
		inc, dec = 42.0, 28.0
	}
	series := res.W.Rec.Series("GS-WORKFLOW", "Isosurface", "PACE")
	exp.PlotSeries(os.Stdout, "Isosurface avg time/step (Figure 9; dashed: desired interval)",
		series, 100, 12, inc, dec)
	fmt.Println()

	baseline, err := dyflow.RunGrayScott(*seed, m, false)
	if err != nil {
		panic(err)
	}
	dyflow.GrayScottReport(res, baseline).Write(os.Stdout)
	dyflow.Figure1Report(res).Write(os.Stdout)
}
