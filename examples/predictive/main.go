// Predictive orchestration (the paper's §6 future-work direction): instead
// of reacting once a metric crosses a hard ceiling, a policy can fire on
// the metric's TREND. Here a simulation's time per timestep creeps upward
// (a leak-like degradation); the SLOPE pre-analysis fits a line through the
// history window and RESTARTs the task while its pace is still acceptable,
// long before the deadline-threatening ceiling.
//
//	go run ./examples/predictive
package main

import (
	"fmt"
	"os"
	"time"

	"dyflow"
	"dyflow/internal/exp"
)

const orchestrationXML = `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Sim" workflowId="PRED" info-source="tau.Sim">
        <use-sensor sensor-id="PACE" info="looptime"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <!-- Fire when pace grows faster than 0.2 s per step, regardless of
           its absolute value: the trend predicts trouble. -->
      <policy id="DEGRADATION_GUARD">
        <eval operation="GT" threshold="0.2"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action>RESTART</action>
        <history window="8" operation="SLOPE"/>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="PRED">
      <apply-policy policyId="DEGRADATION_GUARD" assess-task="Sim">
        <act-on-tasks>Sim</act-on-tasks>
      </apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="PRED">
        <task-priorities><task-priority name="Sim" priority="0"/></task-priorities>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>`

func main() {
	sys, err := dyflow.NewSystem(11, dyflow.Deepthought2, 2)
	if err != nil {
		panic(err)
	}
	// The simulation degrades: each step costs 6% more than the last
	// (fragmentation, leak, fill-up...). A restart resumes from the last
	// checkpoint and resets the degradation — the closure detects the
	// step-counter rewind that a checkpoint resume produces.
	last, base := -1, 0
	spec := dyflow.TaskSpec{
		Name: "Sim", Workflow: "PRED",
		Cost: dyflow.Cost{
			Work: 50 * time.Second, // 5 s/step at 10 procs when healthy
			Scale: func(step int) float64 {
				if step <= last {
					base = step // rewind: a fresh incarnation resumed here
				}
				last = step
				return 1 + 0.06*float64(step-base)
			},
		},
		TotalSteps:           120,
		CheckpointEvery:      5,
		CheckpointKey:        "ckpt/pred",
		ResumeFromCheckpoint: true,
		Profile:              true,
	}
	err = sys.Compose(&dyflow.WorkflowSpec{
		ID: "PRED",
		Tasks: []dyflow.TaskConfig{
			{Spec: spec, Procs: 10, ProcsPerNode: 5, AutoStart: true},
		},
	})
	if err != nil {
		panic(err)
	}
	opts := dyflow.Options{Arbiter: dyflow.ArbiterConfig{
		WarmupDelay:  time.Minute,
		SettleDelay:  time.Minute,
		PlanCost:     100 * time.Millisecond,
		GatherWindow: 5 * time.Second,
	}}
	if err := sys.StartOrchestration(orchestrationXML, opts); err != nil {
		panic(err)
	}
	sys.Launch("PRED")
	if _, err := sys.RunUntilWorkflowDone("PRED", 2*time.Hour); err != nil {
		panic(err)
	}

	fmt.Println("Predictive restart on pace degradation (SLOPE pre-analysis)")
	fmt.Println()
	sys.WriteGantt(os.Stdout, 96)
	fmt.Println()
	sys.WritePlanSummary(os.Stdout)
	fmt.Println()
	series := sys.World().Rec.Series("PRED", "Sim", "PACE")
	exp.PlotSeries(os.Stdout, "Sim avg time/step — each sawtooth reset is a predictive restart",
		series, 96, 10)
}
