// XGC1-XGCa science-driven alternation (paper §4.3, Figure 6): the two
// fusion codes alternate 100-step runs sharing a global step counter;
// DYFLOW starts whichever code is behind the workflow front, switches XGCa
// out when the proxy error condition hits global step 374, and stops the
// experiment past step 500. Compare with the XGC1-only baseline (~25%
// slower).
//
//	go run ./examples/xgc [-machine summit|dt2]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dyflow"
)

func main() {
	machine := flag.String("machine", "summit", "summit or dt2")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	m := dyflow.Summit
	if *machine == "dt2" {
		m = dyflow.Deepthought2
	}

	fmt.Printf("XGC1-XGCa alternation on %v (seed %d)\n\n", m, *seed)
	res, err := dyflow.RunXGC(*seed, m)
	if err != nil {
		panic(err)
	}
	res.W.Rec.Gantt(os.Stdout, 100)
	fmt.Println()

	fmt.Println("Dynamic events:")
	for _, ev := range res.Events {
		fmt.Printf("  %-12s at %-10v response %v\n",
			ev.Kind, time.Duration(ev.At).Round(time.Second), ev.Response.Round(10*time.Millisecond))
	}
	fmt.Printf("\nFinal global step: %d (XGCa started %d times)\n\n", res.FinalStep, res.XGCaStarts)

	base, err := dyflow.RunXGCBaseline(*seed, m, res.FinalStep)
	if err != nil {
		panic(err)
	}
	dyflow.XGCReport(res, time.Duration(base)).Write(os.Stdout)
}
