// LAMMPS failure resilience (paper §4.5, Figure 11): a molecular-dynamics
// simulation tightly coupled to three analyses loses a node 10 minutes into
// the run, failing the whole workflow; DYFLOW's RESTART_ON_FAILURE policy
// observes the signal exit codes and restarts every task on healthy nodes,
// with LAMMPS resuming from its last checkpoint (step 412).
//
//	go run ./examples/lammps [-machine summit|dt2]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dyflow"
)

func main() {
	machine := flag.String("machine", "summit", "summit or dt2")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	m := dyflow.Summit
	if *machine == "dt2" {
		m = dyflow.Deepthought2
	}

	fmt.Printf("LAMMPS failure resilience on %v (seed %d)\n\n", m, *seed)
	res, err := dyflow.RunLAMMPS(*seed, m, true)
	if err != nil {
		panic(err)
	}
	res.W.Rec.Gantt(os.Stdout, 100)
	fmt.Println()
	res.W.Rec.PlanSummary(os.Stdout)

	fmt.Printf("\nNode %s failed at %v; recovery plan response %v; resumed from step %d\n\n",
		res.FailedNode, res.FailureAt, res.RecoveryResponse.Round(10*time.Millisecond), res.ResumeStep)

	dyflow.LAMMPSReport(res).Write(os.Stdout)

	fmt.Println("Baseline (no DYFLOW): the failed workflow stays down.")
	base, err := dyflow.RunLAMMPS(*seed, m, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  completed without orchestration: %v\n", base.Completed)
}
