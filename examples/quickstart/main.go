// Quickstart: a two-task in situ workflow — a simulation streaming to an
// under-provisioned analysis — orchestrated by a single pace policy that
// grows the analysis when its average time per timestep exceeds the
// threshold. Run it and watch DYFLOW restart the analysis with more
// processes:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"dyflow"
)

const orchestrationXML = `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Analysis" workflowId="DEMO" info-source="tau.Analysis">
        <use-sensor sensor-id="PACE" info="looptime"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="INC_ON_PACE">
        <eval operation="GT" threshold="10"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action>ADDCPU</action>
        <history window="5" operation="AVG"/>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="DEMO">
      <apply-policy policyId="INC_ON_PACE" assess-task="Analysis">
        <act-on-tasks>Analysis</act-on-tasks>
        <action-params><param key="adjust-by" value="6"/></action-params>
      </apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="DEMO">
        <task-priorities>
          <task-priority name="Simulation" priority="0"/>
          <task-priority name="Analysis" priority="1"/>
        </task-priorities>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>`

func main() {
	// A 2-node Deepthought2 slice (40 cores).
	sys, err := dyflow.NewSystem(42, dyflow.Deepthought2, 2)
	if err != nil {
		panic(err)
	}

	// Simulation: 10 processes, ~1 s per step, streaming every step.
	// Analysis: 2 processes, ~20 s per step — the coupling buffer throttles
	// the simulation until DYFLOW grows the analysis.
	err = sys.Compose(&dyflow.WorkflowSpec{
		ID: "DEMO",
		Tasks: []dyflow.TaskConfig{
			{
				Spec: dyflow.TaskSpec{
					Name: "Simulation", Workflow: "DEMO",
					Cost:       dyflow.Cost{Work: 10 * time.Second},
					TotalSteps: 600,
					ProducesTo: "demo.out",
				},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
			{
				Spec: dyflow.TaskSpec{
					Name: "Analysis", Workflow: "DEMO",
					Cost:         dyflow.Cost{Work: 40 * time.Second},
					ConsumesFrom: "demo.out", ConsumeBuf: 1,
					Profile: true,
				},
				Procs: 2, ProcsPerNode: 1, AutoStart: true,
			},
		},
	})
	if err != nil {
		panic(err)
	}

	opts := dyflow.Options{Arbiter: dyflow.ArbiterConfig{
		WarmupDelay:  time.Minute,
		SettleDelay:  time.Minute,
		PlanCost:     100 * time.Millisecond,
		GatherWindow: 5 * time.Second,
	}}
	if err := sys.StartOrchestration(orchestrationXML, opts); err != nil {
		panic(err)
	}
	sys.Launch("DEMO")
	if _, err := sys.RunUntilWorkflowDone("DEMO", time.Hour); err != nil {
		panic(err)
	}

	fmt.Println("DYFLOW quickstart — in situ pace adaptation")
	fmt.Println()
	sys.WriteGantt(os.Stdout, 96)
	fmt.Println()
	sys.WritePlanSummary(os.Stdout)
	fmt.Printf("\nAnalysis now runs with %d processes (started with 2)\n",
		sys.TaskProcs("DEMO", "Analysis"))
}
