// Command dyflow-gantt renders a trace JSON written by `dyflow -trace` as
// an ASCII Gantt chart:
//
//	dyflow-gantt -trace trace.json [-width 120]
package main

import (
	"flag"
	"fmt"
	"os"

	"dyflow"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace JSON file (required)")
		width     = flag.Int("width", 100, "chart width")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "dyflow-gantt: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	dump, err := dyflow.LoadTraceDump(*tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyflow-gantt:", err)
		os.Exit(1)
	}
	dump.Gantt(os.Stdout, *width)
}
