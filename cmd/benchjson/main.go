// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results as artifacts (BENCH_obs.json, BENCH_sim.json) and diff them
// across commits:
//
//	go test -run '^$' -bench . -benchmem ./internal/... | benchjson > BENCH_obs.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Package is the most recent "pkg:" line seen before the benchmark.
	Package string `json:"package,omitempty"`
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op column.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present with -benchmem (-1 when absent).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric pairs keyed by unit (e.g.
	// "events/s", "handoffs/op"), absent when the benchmark reports none.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// parseBench scans go-test bench output and extracts every benchmark
// result line. Lines that are not benchmark results (ok/PASS/goos/...) are
// skipped.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Minimum shape: Name N ns/op-value "ns/op".
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i >= 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{
			Package:     pkg,
			Name:        name,
			Iterations:  iters,
			NsPerOp:     ns,
			BytesPerOp:  -1,
			AllocsPerOp: -1,
		}
		// Remaining columns are "value unit" pairs: -benchmem's B/op and
		// allocs/op, plus any custom b.ReportMetric units.
		for i := 4; i+1 < len(f); i += 2 {
			switch f[i+1] {
			case "B/op":
				if v, err := strconv.ParseInt(f[i], 10, 64); err == nil {
					res.BytesPerOp = v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(f[i], 10, 64); err == nil {
					res.AllocsPerOp = v
				}
			default:
				if v, err := strconv.ParseFloat(f[i], 64); err == nil {
					if res.Metrics == nil {
						res.Metrics = make(map[string]float64)
					}
					res.Metrics[f[i+1]] = v
				}
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func main() {
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Benchmarks []Result `json:"benchmarks"`
	}{results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
