package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dyflow/internal/obs
cpu: AMD EPYC
BenchmarkCounterInc-8    	195057232	         6.104 ns/op	       0 B/op	       0 allocs/op
BenchmarkVecWith-8       	29564732	        40.35 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	dyflow/internal/obs	3.061s
pkg: dyflow/internal/msg
BenchmarkSendRecvJSON    	  123456	      9876 ns/op
ok  	dyflow/internal/msg	1.5s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(got), got)
	}
	first := got[0]
	if first.Package != "dyflow/internal/obs" || first.Name != "BenchmarkCounterInc" {
		t.Fatalf("first = %+v", first)
	}
	if first.Iterations != 195057232 || first.NsPerOp != 6.104 ||
		first.BytesPerOp != 0 || first.AllocsPerOp != 0 {
		t.Fatalf("first numbers = %+v", first)
	}
	// No -benchmem columns and no GOMAXPROCS suffix: package tracked,
	// memory fields stay -1, name unchanged.
	last := got[2]
	if last.Package != "dyflow/internal/msg" || last.Name != "BenchmarkSendRecvJSON" {
		t.Fatalf("last = %+v", last)
	}
	if last.BytesPerOp != -1 || last.AllocsPerOp != -1 {
		t.Fatalf("last memory fields = %+v", last)
	}
}

func TestParseBenchCustomMetrics(t *testing.T) {
	const line = `pkg: dyflow/internal/sim
BenchmarkProcContextSwitch-8 	 3540176	       345.4 ns/op	   2895445 events/s	         1.000 handoffs/op	       0 B/op	       0 allocs/op
`
	got, err := parseBench(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d results, want 1", len(got))
	}
	r := got[0]
	if r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("memory fields = %+v", r)
	}
	if r.Metrics["events/s"] != 2895445 || r.Metrics["handoffs/op"] != 1.0 {
		t.Fatalf("metrics = %+v", r.Metrics)
	}
	if len(r.Metrics) != 2 {
		t.Fatalf("extra metrics captured: %+v", r.Metrics)
	}
}

func TestParseBenchSkipsGarbage(t *testing.T) {
	got, err := parseBench(strings.NewReader("BenchmarkBroken-8 abc 1 ns/op\nrandom text\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %+v from garbage", got)
	}
}
