// Command dyflow runs a user-described simulated workflow deployment under
// a DYFLOW orchestration specification:
//
//	dyflow -config system.json -spec orchestration.xml [-horizon 1h]
//	       [-trace trace.json] [-gantt-width 100]
//
// The JSON config composes the cluster, workflows, scripts, and failure
// injections (see dyflow.SystemConfig); the XML document programs the
// Monitor/Decision/Arbitration stages exactly as in the paper's Figures
// 3-5, 7, and 10.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dyflow"
)

func main() {
	var (
		configPath = flag.String("config", "", "system JSON config (required)")
		specPath   = flag.String("spec", "", "DYFLOW orchestration XML (optional: omit for a baseline run)")
		horizon    = flag.Duration("horizon", time.Hour, "virtual-time horizon")
		tracePath  = flag.String("trace", "", "write the run trace JSON here")
		ganttWidth = flag.Int("gantt-width", 100, "gantt chart width")
		warmup     = flag.Duration("warmup", 2*time.Minute, "arbitration warm-up delay")
		settle     = flag.Duration("settle", 2*time.Minute, "arbitration settle delay")
	)
	flag.Parse()
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "dyflow: -config is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg, err := dyflow.LoadSystemConfig(*configPath)
	if err != nil {
		fatal(err)
	}
	sys, err := cfg.Build()
	if err != nil {
		fatal(err)
	}
	if *specPath != "" {
		opts := dyflow.Options{Arbiter: dyflow.ArbiterConfig{
			WarmupDelay:  *warmup,
			SettleDelay:  *settle,
			PlanCost:     100 * time.Millisecond,
			GatherWindow: 5 * time.Second,
		}}
		if err := sys.StartOrchestrationFile(*specPath, opts); err != nil {
			fatal(err)
		}
	}
	sys.Launch(cfg.WorkflowIDs()...)

	for _, wf := range cfg.WorkflowIDs() {
		if _, err := sys.RunUntilWorkflowDone(wf, *horizon); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("run finished at virtual %v\n\n", sys.Now().Round(time.Second))
	sys.WriteGantt(os.Stdout, *ganttWidth)
	fmt.Println()
	sys.WritePlanSummary(os.Stdout)

	if *tracePath != "" {
		if err := sys.DumpTrace().WriteFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace written to %s\n", *tracePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dyflow:", err)
	os.Exit(1)
}
