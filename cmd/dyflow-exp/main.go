// Command dyflow-exp regenerates the paper's evaluation artifacts — every
// table and figure of §4 — printing paper-vs-measured comparison tables
// and Gantt charts:
//
//	dyflow-exp [-machine summit|dt2] [-seed N] [-gantt] [-perfetto out.json] <experiment>...
//	dyflow-exp serve [-addr host:port]
//
// Experiments: table1 table2 table3 figure1 figure6 figure8 figure9
// figure11 cost trace overprov chaos all
//
// -perfetto writes a Chrome trace-event timeline of the (last) run with a
// recorded world — load it at ui.perfetto.dev. serve steps a chaos
// campaign while exposing /metrics (Prometheus text), /metrics.json, and
// /trace (Perfetto JSON) over HTTP.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dyflow"
	"dyflow/internal/apps"
	"dyflow/internal/cluster"
	"dyflow/internal/exp"
	"dyflow/internal/obs"
	"dyflow/internal/server"
	"dyflow/internal/stats"
)

var (
	machineFlag   = flag.String("machine", "summit", "summit or dt2")
	seedFlag      = flag.Int64("seed", 1, "simulation seed")
	ganttFlag     = flag.Bool("gantt", false, "print Gantt charts")
	widthFlag     = flag.Int("width", 100, "gantt chart width")
	traceJSONFlag = flag.String("trace-json", "", "write the trace experiment's report as JSON to this file")
	perfettoFlag  = flag.String("perfetto", "", "write a Chrome trace-event (Perfetto) timeline of the run to this file")
	addrFlag      = flag.String("addr", "127.0.0.1:8080", "serve: HTTP listen address")
	ckptDirFlag   = flag.String("ckpt-dir", "", "chaos: checkpoint store directory (rounds are journaled there; temp dir if empty and -orch-kills > 0)")
	orchKillsFlag = flag.Int("orch-kills", 0, "chaos: tear the orchestrator down this many times mid-campaign, restoring from checkpoint")
)

func machine() dyflow.Machine {
	if *machineFlag == "dt2" || *machineFlag == "deepthought2" {
		return dyflow.Deepthought2
	}
	return dyflow.Summit
}

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	if args[0] == "serve" {
		if err := serve(); err != nil {
			fatal(err)
		}
		return
	}
	runs := map[string]func() error{
		"table1":   table1,
		"table2":   table2,
		"table3":   table3,
		"figure1":  figure1,
		"figure6":  figure6,
		"figure8":  figure8,
		"figure9":  figure9,
		"figure11": figure11,
		"cost":     cost,
		"trace":    traceExp,
		"overprov": overprov,
		"sweep":    sweep,
		"chaos":    chaos,
	}
	order := []string{"table1", "figure6", "table2", "figure1", "figure8", "figure9", "table3", "figure11", "cost", "trace", "overprov"}
	for _, name := range args {
		if name == "all" {
			for _, n := range order {
				if err := runs[n](); err != nil {
					fatal(err)
				}
			}
			continue
		}
		fn, ok := runs[name]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
		if err := fn(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dyflow-exp:", err)
	os.Exit(1)
}

// exportPerfetto writes the run's timeline when -perfetto is set. chaos is
// nil for fault-free experiments. Experiments call it after their run, so
// with several experiments in one invocation the last one wins.
func exportPerfetto(w *exp.World, chaos []cluster.CampaignEvent) error {
	if *perfettoFlag == "" || w == nil {
		return nil
	}
	f, err := os.Create(*perfettoFlag)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := exp.WritePerfetto(f, w, chaos); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n\n", *perfettoFlag)
	return nil
}

// serve steps a chaos campaign (seed/machine from the shared flags) while
// exposing the unified observability surface over HTTP via the campaign
// service's single-campaign mode (server.Single): /metrics is the
// Prometheus text exposition, /metrics.json the JSON snapshot, /trace the
// Perfetto timeline of the run so far. The simulation is single-threaded,
// so Single's lock serializes sim stepping against handler reads. -addr
// host:0 binds a free port (the bound address is printed); SIGINT/SIGTERM
// shut down gracefully with in-flight requests drained.
func serve() error {
	cr, err := exp.NewChaosRun(*seedFlag, machine(), dyflow.DefaultChaosOptions())
	if err != nil {
		return err
	}
	s := server.NewSingle()
	s.HandleLocked("/metrics", obs.MetricsHandler(cr.W.Metrics))
	s.HandleLocked("/metrics.json", obs.JSONHandler(cr.W.Metrics))
	s.HandleLocked("/trace", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := exp.WritePerfetto(w, cr.W, cr.Events()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		// ~5 simulated seconds per 50ms of wall clock, so a scraper watches
		// the campaign unfold instead of finding it already over.
		for ctx.Err() == nil {
			err := s.Locked(func() error {
				done, err := cr.Step(5 * time.Second)
				if err != nil {
					return err
				}
				if done {
					cr.Result().Write(os.Stdout)
					return errCampaignDone
				}
				return nil
			})
			if err != nil {
				if err != errCampaignDone {
					fmt.Fprintln(os.Stderr, "dyflow-exp: serve:", err)
				}
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	bound, err := s.Start(*addrFlag)
	if err != nil {
		return err
	}
	fmt.Printf("serving /metrics /metrics.json /trace on http://%s (chaos campaign, seed %d, %v)\n",
		bound, *seedFlag, machine())
	<-ctx.Done()
	stop()
	fmt.Println("dyflow-exp: serve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return s.Shutdown(sctx)
}

// errCampaignDone ends the stepping loop once the campaign converges.
var errCampaignDone = errors.New("campaign done")

func table1() error {
	cfg := apps.XGCConfigFor(machine())
	fmt.Printf("== Table 1 — XGC1/XGCa run configuration (%v) ==\n", machine())
	fmt.Printf("  processes             %d (%d per node, %d cores/process)\n", cfg.Procs, cfg.ProcsPerNode, cfg.CoresPerProc)
	fmt.Printf("  threads per process   %d\n", cfg.Threads)
	fmt.Printf("  timesteps per run     %d\n", cfg.StepsPerRun)
	fmt.Printf("  particles per process %d\n", cfg.Particles)
	fmt.Printf("  allocation            %d nodes\n\n", cfg.Nodes)
	return nil
}

func table2() error {
	cfg := apps.GrayScottConfigFor(machine())
	fmt.Printf("== Table 2 — Gray-Scott initial configuration (%v) ==\n", machine())
	row := func(name string, tc apps.GSTaskConfig) {
		fmt.Printf("  %-11s %4d processes (%d per node)\n", name, tc.Procs, tc.ProcsPerNode)
	}
	row("Gray-Scott", cfg.GrayScott)
	row("Isosurface", cfg.Isosurface)
	row("Rendering", cfg.Rendering)
	row("FFT", cfg.FFT)
	row("PDF_Calc", cfg.PDFCalc)
	fmt.Printf("  total steps %d, time limit %v, allocation %d nodes\n\n", cfg.TotalSteps, cfg.TimeLimit, cfg.Nodes)
	return nil
}

func table3() error {
	cfg := apps.LAMMPSConfigFor(machine())
	fmt.Printf("== Table 3 — LAMMPS initial configuration (%v) ==\n", machine())
	row := func(name string, tc apps.LAMMPSTaskConfig) {
		fmt.Printf("  %-9s %4d processes (%d per node)\n", name, tc.Procs, tc.ProcsPerNode)
	}
	row("LAMMPS", cfg.LAMMPS)
	row("CNA_Calc", cfg.CNACalc)
	row("RDF_Calc", cfg.RDFCalc)
	row("CS_Calc", cfg.CSCalc)
	fmt.Printf("  total atoms %d, sim steps %d, analysis steps %d\n", cfg.TotalAtoms, cfg.TotalSteps, cfg.AnalysisSteps)
	fmt.Printf("  allocation %d nodes (%d spare)\n\n", cfg.Nodes, cfg.SpareNodes)
	return nil
}

func figure6() error {
	res, err := dyflow.RunXGC(*seedFlag, machine())
	if err != nil {
		return err
	}
	if *ganttFlag {
		res.W.Rec.Gantt(os.Stdout, *widthFlag)
		fmt.Println()
	}
	base, err := dyflow.RunXGCBaseline(*seedFlag, machine(), res.FinalStep)
	if err != nil {
		return err
	}
	dyflow.XGCReport(res, time.Duration(base)).Write(os.Stdout)
	return exportPerfetto(res.W, nil)
}

func runGS() (*exp.GSResult, *exp.GSResult, error) {
	res, err := dyflow.RunGrayScott(*seedFlag, machine(), true)
	if err != nil {
		return nil, nil, err
	}
	base, err := dyflow.RunGrayScott(*seedFlag, machine(), false)
	if err != nil {
		return nil, nil, err
	}
	return res, base, nil
}

func figure1() error {
	res, _, err := runGS()
	if err != nil {
		return err
	}
	dyflow.Figure1Report(res).Write(os.Stdout)
	return nil
}

func figure8() error {
	res, base, err := runGS()
	if err != nil {
		return err
	}
	if *ganttFlag {
		res.W.Rec.Gantt(os.Stdout, *widthFlag)
		fmt.Println()
		res.W.Rec.PlanSummary(os.Stdout)
		fmt.Println()
	}
	dyflow.GrayScottReport(res, base).Write(os.Stdout)
	return exportPerfetto(res.W, nil)
}

func figure9() error {
	res, _, err := runGS()
	if err != nil {
		return err
	}
	fmt.Printf("== Figure 9 — average time per timestep received by Decision (%v) ==\n", machine())
	var inc, dec float64 = 36, 24
	if machine() == dyflow.Deepthought2 {
		inc, dec = 42, 28
	}
	for _, name := range []string{"Isosurface", "Rendering", "FFT", "PDF_Calc"} {
		series := res.W.Rec.Series("GS-WORKFLOW", name, "PACE")
		exp.PlotSeries(os.Stdout, name+" (dashed lines: desired interval)", series, *widthFlag, 12, inc, dec)
		fmt.Println()
	}
	return nil
}

func figure11() error {
	res, err := dyflow.RunLAMMPS(*seedFlag, machine(), true)
	if err != nil {
		return err
	}
	if *ganttFlag {
		res.W.Rec.Gantt(os.Stdout, *widthFlag)
		fmt.Println()
	}
	dyflow.LAMMPSReport(res).Write(os.Stdout)
	return exportPerfetto(res.W, nil)
}

func cost() error {
	res, err := dyflow.RunCostAnalysis(*seedFlag, machine())
	if err != nil {
		return err
	}
	dyflow.CostReport(res).Write(os.Stdout)
	return nil
}

// traceExp renders the flight recorder's per-stage latency decomposition of
// a Gray-Scott run — the drill-down behind the §4.6 cost analysis — and
// optionally exports it as JSON (-trace-json).
func traceExp() error {
	res, err := dyflow.RunGrayScott(*seedFlag, machine(), true)
	if err != nil {
		return err
	}
	rep := res.W.Orch.Trace.Report()
	fmt.Printf("== Flight recorder — Gray-Scott per-stage latency (%v, seed %d) ==\n", machine(), *seedFlag)
	rep.Write(os.Stdout)
	fmt.Println()
	if *traceJSONFlag != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceJSONFlag, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n\n", *traceJSONFlag)
	}
	return exportPerfetto(res.W, nil)
}

func overprov() error {
	res, err := dyflow.RunGrayScottOverProvisioned(*seedFlag, machine())
	if err != nil {
		return err
	}
	if *ganttFlag {
		res.W.Rec.Gantt(os.Stdout, *widthFlag)
		fmt.Println()
	}
	dyflow.OverProvisionReport(res).Write(os.Stdout)
	return exportPerfetto(res.W, nil)
}

// chaos runs the seeded fault-injection campaign: Gray-Scott with restart
// policies under node kills/heals and flaky carves, reporting the recovery
// counters and whether the workflow still converged (DESIGN.md §10).
func chaos() error {
	opts := dyflow.DefaultChaosOptions()
	opts.CkptDir = *ckptDirFlag
	opts.OrchKills = *orchKillsFlag
	if opts.OrchKills > 0 && opts.CkptDir == "" {
		dir, err := os.MkdirTemp("", "dyflow-ckpt-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		opts.CkptDir = dir
	}
	res, err := dyflow.RunChaos(*seedFlag, machine(), opts)
	if err != nil {
		return err
	}
	fmt.Printf("== Chaos — fault-injection campaign (%v, seed %d) ==\n", machine(), *seedFlag)
	res.Write(os.Stdout)
	fmt.Println()
	if !res.Converged {
		return fmt.Errorf("chaos campaign did not converge (seed %d)", *seedFlag)
	}
	return exportPerfetto(res.W, res.Events)
}

// sweep runs the three headline experiments across many seeds in parallel
// and prints mean ± stddev of the reproduced quantities, demonstrating the
// shapes are not single-seed accidents.
func sweep() error {
	const n = 10
	seeds := exp.Seeds(1, n)
	fmt.Printf("== Seed sweep (%d seeds, %v) ==\n", n, machine())

	type gsOut struct {
		plans            int
		makespan, before float64
		after            float64
	}
	gs := exp.Sweep(seeds, 0, func(seed int64) (gsOut, error) {
		res, err := exp.RunGrayScott(seed, machine(), true)
		if err != nil {
			return gsOut{}, err
		}
		return gsOut{
			plans:    len(res.W.Rec.Plans),
			makespan: res.Makespan.Seconds(),
			before:   res.PaceBefore,
			after:    res.PaceAfter,
		}, nil
	})
	var mk, pb, pa stats.Welford
	planCounts := map[int]int{}
	for _, r := range gs {
		if r.Err != nil {
			return r.Err
		}
		planCounts[r.Out.plans]++
		mk.Add(r.Out.makespan)
		pb.Add(r.Out.before)
		pa.Add(r.Out.after)
	}
	fmt.Printf("  Gray-Scott: adaptations %v, makespan %.0f±%.0f s, pace %.1f -> %.1f s\n",
		planCounts, mk.Mean(), mk.StdDev(), pb.Mean(), pa.Mean())

	type mdOut struct {
		resume   int
		response float64
	}
	md := exp.Sweep(seeds, 0, func(seed int64) (mdOut, error) {
		res, err := exp.RunLAMMPS(seed, machine(), true)
		if err != nil {
			return mdOut{}, err
		}
		return mdOut{resume: res.ResumeStep, response: res.RecoveryResponse.Seconds()}, nil
	})
	var resp stats.Welford
	resumes := map[int]int{}
	for _, r := range md {
		if r.Err != nil {
			return r.Err
		}
		resumes[r.Out.resume]++
		resp.Add(r.Out.response)
	}
	fmt.Printf("  LAMMPS: resume steps %v, recovery response %.2f±%.2f s\n",
		resumes, resp.Mean(), resp.StdDev())

	xgcRes := exp.Sweep(seeds[:4], 0, func(seed int64) (int, error) {
		res, err := exp.RunXGC(seed, machine())
		if err != nil {
			return 0, err
		}
		return res.FinalStep, nil
	})
	finals := map[int]int{}
	for _, r := range xgcRes {
		if r.Err != nil {
			return r.Err
		}
		finals[r.Out]++
	}
	fmt.Printf("  XGC: final steps %v (4 seeds)\n\n", finals)
	return nil
}
