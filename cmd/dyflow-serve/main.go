// Command dyflow-serve runs the multi-tenant campaign service, its fleet
// workers, and its load-test harness:
//
//	dyflow-serve [-addr host:port] [-workers N] [-queue-depth N]
//	             [-tenant-quota N] [-ckpt-dir DIR] [-lease-ttl D]
//	             [-runstore-segment-bytes N] [-snapshot-journal-bytes N]
//	             [-retention-max-age D] [-retention-max-bytes N]
//	             [-retention-interval D]
//	dyflow-serve worker -join host:port [-name S] [-slots N]
//	dyflow-serve loadtest [-addr host:port] [-clients N] [-per-client N]
//	             [-seeds N] [-scenario S] [-out BENCH_serve.json]
//	             [-fleet N] [-worker-slots N] [-kill-worker] [-stream] ...
//	dyflow-serve chaosnet [-seeds N] [-workers N] [-clients N] [-per-client N]
//	             [-lease-ttl D] [-partition D] [-partition-ttl D]
//	             [-min-jobs-per-sec F] [-out BENCH_chaosnet.json]
//
// The service accepts campaign submissions over HTTP (POST /v1/runs),
// executes them on a sharded worker pool of deterministic simulations, and
// serves status, artifacts, and its own /metrics. With -ckpt-dir it
// journals every acknowledged submission so a killed server resumes
// pending work on restart. -addr host:0 binds a free port; the bound
// address is printed. SIGINT/SIGTERM shut down gracefully: HTTP drains,
// running simulations abort, and queued work is checkpointed.
//
// worker joins a coordinator's fleet: it claims queued runs under leases,
// executes them, and uploads artifacts to the coordinator's blob store.
// Run the coordinator with -workers -1 to make the fleet do all the
// executing.
//
// loadtest drives closed-loop load — by default against an embedded
// in-process server so one command measures the whole stack — and writes
// throughput and latency percentiles as JSON. -fleet N spawns N in-process
// fleet workers (the coordinator then runs with no local pool), and
// -kill-worker hard-kills one mid-lease to drill lease-expiry recovery.
//
// chaosnet is the network-chaos drill (`make chaos-net`): it sweeps
// seeded fault schedules — latency spikes, dropped connections, injected
// 5xx, truncated responses, lost replies — over the coordinator↔worker
// RPC plane and asserts zero lost runs, exactly one terminal state per
// run, and a throughput floor, then proves a mid-run directional
// partition shorter than the lease TTL completes without a requeue.
// docs/SERVICE.md documents all modes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dyflow/internal/server"
	"dyflow/internal/server/fleet"
	"dyflow/internal/server/loadgen"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "loadtest":
			if err := loadtest(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		case "worker":
			if err := worker(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		case "chaosnet":
			if err := chaosnet(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		}
	}
	if err := serve(os.Args[1:]); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dyflow-serve:", err)
	os.Exit(1)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("dyflow-serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address (host:0 picks a free port)")
	workers := fs.Int("workers", 0, "local worker-pool size (0 = GOMAXPROCS, negative = fleet workers only)")
	queueDepth := fs.Int("queue-depth", 0, "bound on queued runs before 429 backpressure (0 = 64)")
	tenantQuota := fs.Int("tenant-quota", 0, "per-tenant in-flight run cap (0 = 8, negative = unlimited)")
	ckptDir := fs.String("ckpt-dir", "", "checkpoint directory: persist the queue and completed runs across restarts")
	leaseTTL := fs.Duration("lease-ttl", 0, "fleet lease TTL before an unheartbeated run is requeued (0 = 10s)")
	eventBuffer := fs.Int("event-buffer", 0, "per-run event ring size for GET /v1/runs/{id}/events (0 = 256)")
	segBytes := fs.Int64("runstore-segment-bytes", 0, "run-history segment rotation threshold in bytes (0 = 4MiB)")
	snapBytes := fs.Int64("snapshot-journal-bytes", 0, "WAL size that triggers a snapshot+journal reset (0 = 4MiB, negative = off)")
	retMaxAge := fs.Duration("retention-max-age", 0, "delete terminal runs older than this from the history store (0 = keep forever)")
	retMaxBytes := fs.Int64("retention-max-bytes", 0, "per-tenant artifact byte budget; oldest terminal runs beyond it are deleted (0 = unlimited)")
	retInterval := fs.Duration("retention-interval", 0, "how often the retention sweep runs (0 = 1m)")
	fs.Parse(args)

	srv, err := server.New(server.Config{
		Workers:              *workers,
		QueueDepth:           *queueDepth,
		TenantQuota:          *tenantQuota,
		CkptDir:              *ckptDir,
		LeaseTTL:             *leaseTTL,
		EventBuffer:          *eventBuffer,
		RunstoreSegmentBytes: *segBytes,
		SnapshotJournalBytes: *snapBytes,
		RetentionMaxAge:      *retMaxAge,
		RetentionMaxBytes:    *retMaxBytes,
		RetentionInterval:    *retInterval,
	})
	if err != nil {
		return err
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("dyflow-serve: listening on http://%s (POST /v1/runs, GET /v1/runs, /metrics, /healthz)\n", bound)
	if *ckptDir != "" {
		fmt.Printf("dyflow-serve: checkpointing to %s\n", *ckptDir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Println("dyflow-serve: shutting down (draining HTTP, checkpointing queue)")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Shutdown(sctx)
}

// worker joins a coordinator's fleet and executes claimed runs until
// SIGINT/SIGTERM, which drains in-flight work before exiting.
func worker(args []string) error {
	fs := flag.NewFlagSet("dyflow-serve worker", flag.ExitOnError)
	join := fs.String("join", "", "coordinator address (host:port) to register with (required)")
	name := fs.String("name", "", "worker name in the coordinator's fleet view (default the assigned ID)")
	slots := fs.Int("slots", 1, "runs executed concurrently")
	fs.Parse(args)
	if *join == "" {
		return fmt.Errorf("worker: -join host:port is required")
	}

	w, err := fleet.JoinFleet(fleet.WorkerOptions{Coordinator: *join, Name: *name, Slots: *slots})
	if err != nil {
		return err
	}
	fmt.Printf("dyflow-serve: worker %s joined fleet at %s (%d slots)\n", w.ID(), *join, *slots)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Println("dyflow-serve: worker draining (finishing claimed runs)")
	w.Stop()
	fmt.Printf("dyflow-serve: worker %s done (%d runs completed)\n", w.ID(), w.Completed())
	return nil
}

// chaosnet runs the seeded network-fault sweep: per seed, an embedded
// coordinator plus a fleet whose every RPC crosses a fault-injecting
// transport, driven by clean-network clients asserting zero lost runs,
// exactly one terminal state per run, and a throughput floor — then a
// directional mid-run partition the lease TTL must carry the run across.
func chaosnet(args []string) error {
	fs := flag.NewFlagSet("dyflow-serve chaosnet", flag.ExitOnError)
	seedCount := fs.Int("seeds", 5, "fault schedules swept (seeds 0..N-1, each emphasizing a different mode)")
	workers := fs.Int("workers", 3, "fleet workers per round")
	clients := fs.Int("clients", 4, "concurrent closed-loop clients per round")
	perClient := fs.Int("per-client", 4, "jobs each client drives to completion")
	leaseTTL := fs.Duration("lease-ttl", 2*time.Second, "coordinator lease TTL during seeded rounds")
	partition := fs.Duration("partition", 10*time.Second, "mid-run partition duration (negative skips the scenario)")
	partitionTTL := fs.Duration("partition-ttl", 30*time.Second, "lease TTL for the partition scenario (must exceed -partition)")
	minJPS := fs.Float64("min-jobs-per-sec", 0.5, "per-round throughput floor")
	scenario := fs.String("scenario", "quickstart", "job scenario to submit")
	out := fs.String("out", "", "write the sweep result JSON here (default stdout only)")
	fs.Parse(args)

	seeds := make([]int64, *seedCount)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	fmt.Printf("chaosnet: sweeping %d fault seeds over %d-worker fleets (%d clients × %d jobs, lease TTL %s), then a %s partition under a %s TTL\n",
		len(seeds), *workers, *clients, *perClient, *leaseTTL, *partition, *partitionTTL)

	res, err := loadgen.ChaosNet(loadgen.ChaosNetOptions{
		Seeds:         seeds,
		Workers:       *workers,
		Clients:       *clients,
		PerClient:     *perClient,
		LeaseTTL:      *leaseTTL,
		Partition:     *partition,
		PartitionTTL:  *partitionTTL,
		MinJobsPerSec: *minJPS,
		Scenario:      *scenario,
	})
	if res != nil {
		for _, r := range res.Rounds {
			var faults int64
			for _, n := range r.Faults {
				faults += n
			}
			fmt.Printf("chaosnet: seed %d: %d/%d jobs in %.2fs (%.1f jobs/s) — %d faults, %.0f rpc retries, %.0f expiries, %.0f stale, %.0f duplicates\n",
				r.Seed, r.Completed, r.Jobs, r.WallSeconds, r.JobsPerSec,
				faults, r.RPCRetries, r.LeaseExpiries, r.StaleResults, r.DupResults)
		}
		if p := res.Partition; p != nil {
			fmt.Printf("chaosnet: %.0fs partition under %.0fs TTL: run %s in %.1fs with %.0f lease expiries\n",
				p.PartitionSeconds, p.LeaseTTLSeconds, p.State, p.WallSeconds, p.LeaseExpiries)
		}
		for _, f := range res.Failures {
			fmt.Printf("chaosnet: FAIL: %s\n", f)
		}
		if *out != "" {
			data, merr := json.MarshalIndent(res, "", "  ")
			if merr != nil {
				return merr
			}
			if werr := os.WriteFile(*out, append(data, '\n'), 0o644); werr != nil {
				return werr
			}
			fmt.Printf("chaosnet: wrote %s\n", *out)
		}
		if res.Pass {
			fmt.Println("chaosnet: PASS")
		}
	}
	return err
}

func loadtest(args []string) error {
	fs := flag.NewFlagSet("dyflow-serve loadtest", flag.ExitOnError)
	addr := fs.String("addr", "", "target server address; empty = run an embedded server")
	clients := fs.Int("clients", 4, "concurrent closed-loop clients (one tenant each unless -tenants)")
	tenants := fs.Int("tenants", 0, "spread clients over this many tenants (0 = one per client)")
	perClient := fs.Int("per-client", 8, "jobs each client drives to completion")
	seeds := fs.Int("seeds", 0, "seed-space size (< clients*per-client forces cache hits; 0 = all distinct)")
	scenario := fs.String("scenario", "quickstart", "job scenario to submit")
	machine := fs.String("machine", "", "job machine (empty = server default)")
	workers := fs.Int("workers", 0, "embedded server: worker-pool size (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 0, "embedded server: queue bound (0 = 64)")
	tenantQuota := fs.Int("tenant-quota", 0, "embedded server: per-tenant quota (0 = 8)")
	leaseTTL := fs.Duration("lease-ttl", 0, "embedded server: fleet lease TTL (0 = 10s)")
	fleetN := fs.Int("fleet", 0, "spawn this many in-process fleet workers (embedded server runs with no local pool)")
	workerSlots := fs.Int("worker-slots", 0, "concurrent runs per fleet worker (0 = 1)")
	killWorker := fs.Bool("kill-worker", false, "hard-kill one fleet worker mid-lease (chaos drill)")
	stream := fs.Bool("stream", false, "tail each run's SSE event stream instead of polling status")
	out := fs.String("out", "", "write the result JSON here (default stdout only)")
	fs.Parse(args)

	target := *addr
	var srv *server.Server
	if target == "" {
		embeddedWorkers := *workers
		if *fleetN > 0 {
			// The fleet does all the executing; the embedded coordinator
			// keeps no local pool.
			embeddedWorkers = -1
		}
		var err error
		srv, err = server.New(server.Config{
			Workers:     embeddedWorkers,
			QueueDepth:  *queueDepth,
			TenantQuota: *tenantQuota,
			LeaseTTL:    *leaseTTL,
		})
		if err != nil {
			return err
		}
		if target, err = srv.Start("127.0.0.1:0"); err != nil {
			return err
		}
		fmt.Printf("dyflow-serve: loadtest against embedded server on %s\n", target)
	}

	res, err := loadgen.Run(loadgen.Options{
		Addr:         target,
		Clients:      *clients,
		Tenants:      *tenants,
		PerClient:    *perClient,
		Seeds:        *seeds,
		Scenario:     *scenario,
		Machine:      *machine,
		FleetWorkers: *fleetN,
		WorkerSlots:  *workerSlots,
		KillWorker:   *killWorker,
		Stream:       *stream,
	})
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if serr := srv.Shutdown(ctx); err == nil {
			err = serr
		}
	}
	if res != nil {
		fmt.Printf("loadtest: %d clients × %d jobs: %d done (%d cached, %d backpressured) in %.2fs — %.1f jobs/s, p50 %.3fs p90 %.3fs p99 %.3fs\n",
			res.Clients, *perClient, res.Completed, res.Cached, res.Rejected429,
			res.WallSeconds, res.JobsPerSec, res.LatencyP50, res.LatencyP90, res.LatencyP99)
		if res.Mode == "fleet" {
			fmt.Printf("loadtest: fleet of %d workers (killed: %v): %.0f claims, %.0f lease expiries, %.0f stale results\n",
				res.FleetWorkers, res.WorkerKilled, res.FleetClaims, res.LeaseExpiries, res.StaleResults)
		}
		if res.StreamedRuns > 0 {
			fmt.Printf("loadtest: streamed %d runs over SSE: %d events, terminal-event p50 %.3fs p90 %.3fs max %.3fs\n",
				res.StreamedRuns, res.EventsReceived, res.StreamP50, res.StreamP90, res.StreamMax)
		}
		if *out != "" {
			data, merr := json.MarshalIndent(res, "", "  ")
			if merr != nil {
				return merr
			}
			if werr := os.WriteFile(*out, append(data, '\n'), 0o644); werr != nil {
				return werr
			}
			fmt.Printf("loadtest: wrote %s\n", *out)
		}
	}
	return err
}
