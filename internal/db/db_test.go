package db

import (
	"testing"
	"time"

	"dyflow/internal/sim"
)

func TestPutLatest(t *testing.T) {
	s := sim.New(1)
	svc := New(s, 0)
	if _, ok := svc.Latest("pace"); ok {
		t.Fatal("empty key should have no record")
	}
	s.After(time.Second, func() { svc.Put("pace", 1, 30) })
	s.After(2*time.Second, func() { svc.Put("pace", 2, 31) })
	s.RunUntilIdle()
	rec, ok := svc.Latest("pace")
	if !ok || rec.Step != 2 || rec.Value != 31 || rec.At != 2*time.Second {
		t.Fatalf("latest = %+v, %v", rec, ok)
	}
}

func TestSince(t *testing.T) {
	s := sim.New(1)
	svc := New(s, 0)
	for i := 1; i <= 10; i++ {
		svc.Put("k", i, float64(i))
	}
	got := svc.Since("k", 7)
	if len(got) != 3 || got[0].Step != 8 || got[2].Step != 10 {
		t.Fatalf("since = %+v", got)
	}
	if len(svc.Since("k", 100)) != 0 {
		t.Fatal("since beyond end should be empty")
	}
	if len(svc.Since("nope", 0)) != 0 {
		t.Fatal("unknown key should be empty")
	}
}

func TestRetentionBound(t *testing.T) {
	s := sim.New(1)
	svc := New(s, 4)
	for i := 1; i <= 10; i++ {
		svc.Put("k", i, float64(i))
	}
	got := svc.Since("k", 0)
	if len(got) != 4 || got[0].Step != 7 {
		t.Fatalf("retained = %+v, want the newest 4", got)
	}
}

func TestKeysAndStats(t *testing.T) {
	s := sim.New(1)
	svc := New(s, 0)
	svc.Put("b", 1, 1)
	svc.Put("a", 1, 1)
	keys := svc.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	svc.Latest("a")
	w, q := svc.Stats()
	if w != 2 || q != 1 {
		t.Fatalf("stats = %d writes, %d queries", w, q)
	}
}
