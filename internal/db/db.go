// Package db models the in-cluster database service the paper lists as one
// of the Monitor stage's source media ("the desired data ... is available
// through a database service, a streaming service, or files"). Workflow
// tasks publish per-step records under string keys; the DB source type
// polls the latest record per key, paying a simulated query latency.
package db

import (
	"sort"
	"time"

	"dyflow/internal/sim"
)

// Record is one published data point.
type Record struct {
	// Step is the producer's timestep.
	Step int
	// Value is the published numeric value.
	Value float64
	// At is the publish time (the sensor's generation timestamp).
	At sim.Time
}

// Service is a key/value time-series store on the simulation clock. Writes
// are in-memory appends; reads return the latest record or a bounded
// history window.
type Service struct {
	sim *sim.Sim
	// QueryLatency is the simulated cost a polling client pays per query
	// (the paper's lag analysis distinguishes source media by exactly this
	// kind of cost). Zero means free.
	QueryLatency time.Duration

	series  map[string][]Record
	keep    int
	queries int
	writes  int
}

// New creates a service keeping at most keep records per key (<= 0 keeps
// 256).
func New(s *sim.Sim, keep int) *Service {
	if keep <= 0 {
		keep = 256
	}
	return &Service{sim: s, series: make(map[string][]Record), keep: keep}
}

// Put appends a record under key, stamped with the current virtual time.
func (svc *Service) Put(key string, step int, value float64) {
	svc.writes++
	recs := append(svc.series[key], Record{Step: step, Value: value, At: svc.sim.Now()})
	if len(recs) > svc.keep {
		recs = recs[len(recs)-svc.keep:]
	}
	svc.series[key] = recs
}

// Latest returns the newest record for key.
func (svc *Service) Latest(key string) (Record, bool) {
	svc.queries++
	recs := svc.series[key]
	if len(recs) == 0 {
		return Record{}, false
	}
	return recs[len(recs)-1], true
}

// Since returns the records for key with Step > afterStep, oldest first.
func (svc *Service) Since(key string, afterStep int) []Record {
	svc.queries++
	recs := svc.series[key]
	i := sort.Search(len(recs), func(i int) bool { return recs[i].Step > afterStep })
	out := make([]Record, len(recs)-i)
	copy(out, recs[i:])
	return out
}

// Keys returns all keys with data, sorted.
func (svc *Service) Keys() []string {
	out := make([]string, 0, len(svc.series))
	for k := range svc.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats reports lifetime write and query counts.
func (svc *Service) Stats() (writes, queries int) { return svc.writes, svc.queries }
