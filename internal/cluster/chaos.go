package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"dyflow/internal/obs"
	"dyflow/internal/sim"
)

// CampaignConfig describes a deterministic, seeded schedule of node
// kill/heal events — the fault-injection harness behind the resilience
// experiments and the `dyflow-exp chaos` campaign. All randomness comes
// from the campaign's own seeded RNG, so the same config replays the same
// kill schedule regardless of any other randomness in the simulation.
type CampaignConfig struct {
	// Seed drives victim selection and inter-kill gaps.
	Seed int64
	// Start is the earliest kill instant; End bounds the campaign (kills
	// scheduled past End are dropped).
	Start time.Duration
	End   time.Duration
	// MeanBetween is the mean gap between kills (exponentially
	// distributed). <= 0 schedules exactly one kill at Start.
	MeanBetween time.Duration
	// HealAfter restores each killed node this long after its kill;
	// 0 means nodes stay dead.
	HealAfter time.Duration
	// MaxDown caps concurrently dead campaign nodes; kills that would
	// exceed it are skipped at fire time. <= 0 means no cap.
	MaxDown int
	// Targets restricts victims to these nodes; empty targets all nodes.
	Targets []NodeID
}

// CampaignEvent is one fault-injection event that actually fired.
type CampaignEvent struct {
	At   sim.Time
	Node NodeID
	// Kind is "kill" or "heal".
	Kind string
}

func (e CampaignEvent) String() string {
	return fmt.Sprintf("%s %s @%v", e.Kind, e.Node, e.At)
}

// Campaign runs a seeded kill/heal schedule against a cluster.
type Campaign struct {
	c       *Cluster
	cfg     CampaignConfig
	down    int
	events  []CampaignEvent
	mEvents *obs.CounterVec // dyflow_chaos_events_total{kind}
}

// NewCampaign builds a campaign over c. Call Schedule to arm it.
func NewCampaign(c *Cluster, cfg CampaignConfig) *Campaign {
	return &Campaign{c: c, cfg: cfg}
}

// SetMetrics attaches a metrics registry: fired kill/heal events count
// into dyflow_chaos_events_total{kind}.
func (cp *Campaign) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	cp.mEvents = reg.Counter("dyflow_chaos_events_total", "Fault-injection events that fired, by kind.", "kind")
}

// Schedule precomputes the kill schedule from the seed and registers the
// simulation events. It returns the number of kills scheduled. Whether a
// scheduled kill fires still depends on fire-time state (the victim must
// be healthy and the MaxDown cap not exceeded), which is itself
// deterministic for a fixed simulation seed.
func (cp *Campaign) Schedule() int {
	rng := rand.New(rand.NewSource(cp.cfg.Seed))
	candidates := cp.cfg.Targets
	if len(candidates) == 0 {
		for _, n := range cp.c.Nodes() {
			candidates = append(candidates, n.ID)
		}
	}
	if len(candidates) == 0 {
		return 0
	}
	scheduled := 0
	at := sim.Time(cp.cfg.Start)
	for {
		victim := candidates[rng.Intn(len(candidates))]
		cp.scheduleKill(at, victim)
		scheduled++
		if cp.cfg.MeanBetween <= 0 {
			break
		}
		at += sim.Time(rng.ExpFloat64() * float64(cp.cfg.MeanBetween))
		if cp.cfg.End > 0 && at > sim.Time(cp.cfg.End) {
			break
		}
	}
	return scheduled
}

// scheduleKill arms one kill (and its heal, if configured) at the given
// instant.
func (cp *Campaign) scheduleKill(at sim.Time, id NodeID) {
	cp.c.sim.At(at, func() {
		n := cp.c.Node(id)
		if n == nil || !n.Healthy() {
			return // already dead (possibly by an overlapping kill)
		}
		if cp.cfg.MaxDown > 0 && cp.down >= cp.cfg.MaxDown {
			return // cap reached; skip this kill
		}
		cp.down++
		cp.events = append(cp.events, CampaignEvent{At: cp.c.sim.Now(), Node: id, Kind: "kill"})
		cp.mEvents.With("kill").Inc()
		cp.c.FailNode(id)
		if cp.cfg.HealAfter > 0 {
			cp.c.sim.After(cp.cfg.HealAfter, func() {
				if cp.c.Node(id).Healthy() {
					return
				}
				cp.down--
				cp.events = append(cp.events, CampaignEvent{At: cp.c.sim.Now(), Node: id, Kind: "heal"})
				cp.mEvents.With("heal").Inc()
				cp.c.RestoreNode(id)
			})
		}
	})
}

// Events returns the kill/heal events that actually fired, in order.
func (cp *Campaign) Events() []CampaignEvent { return cp.events }

// Kills returns the number of kill events that fired.
func (cp *Campaign) Kills() int { return cp.count("kill") }

// Heals returns the number of heal events that fired.
func (cp *Campaign) Heals() int { return cp.count("heal") }

func (cp *Campaign) count(kind string) int {
	n := 0
	for _, e := range cp.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
