package cluster

import (
	"testing"
	"time"

	"dyflow/internal/sim"
)

func TestPresets(t *testing.T) {
	s := sim.New(1)
	summit := Summit(s, 10)
	if summit.Size() != 10 {
		t.Fatalf("Summit size = %d", summit.Size())
	}
	n := summit.Node("node000")
	if n.Cores != 42 || n.ThreadsPerCore != 4 || n.MemGB != 512 || n.GPUs != 6 {
		t.Fatalf("Summit node = %+v", n)
	}
	dt2 := Deepthought2(s, 5)
	n2 := dt2.Node("node004")
	if n2.Cores != 20 || n2.ThreadsPerCore != 2 || n2.MemGB != 128 || n2.GPUs != 0 {
		t.Fatalf("Deepthought2 node = %+v", n2)
	}
	if dt2.TotalCores() != 100 {
		t.Fatalf("TotalCores = %d, want 100", dt2.TotalCores())
	}
}

func TestDeterministicNodeOrder(t *testing.T) {
	s := sim.New(1)
	c := Summit(s, 4)
	nodes := c.Nodes()
	for i, n := range nodes {
		want := NodeID([]string{"node000", "node001", "node002", "node003"}[i])
		if n.ID != want {
			t.Fatalf("nodes[%d] = %s, want %s", i, n.ID, want)
		}
	}
}

func TestFailRestoreNotifies(t *testing.T) {
	s := sim.New(1)
	c := Deepthought2(s, 3)
	var events []string
	c.OnHealthChange(func(n *Node, healthy bool) {
		state := "up"
		if !healthy {
			state = "down"
		}
		events = append(events, string(n.ID)+":"+state)
	})
	c.FailNode("node001")
	c.FailNode("node001") // idempotent
	if c.TotalCores() != 40 {
		t.Fatalf("TotalCores after failure = %d, want 40", c.TotalCores())
	}
	if len(c.HealthyNodes()) != 2 {
		t.Fatalf("healthy = %d, want 2", len(c.HealthyNodes()))
	}
	c.RestoreNode("node001")
	if len(events) != 2 || events[0] != "node001:down" || events[1] != "node001:up" {
		t.Fatalf("events = %v", events)
	}
}

func TestFailNodeAt(t *testing.T) {
	s := sim.New(1)
	c := Deepthought2(s, 2)
	c.FailNodeAt(10*time.Minute, "node000")
	s.Run(5 * time.Minute)
	if !c.Node("node000").Healthy() {
		t.Fatal("node failed before its scheduled time")
	}
	s.Run(11 * time.Minute)
	if c.Node("node000").Healthy() {
		t.Fatal("node did not fail at its scheduled time")
	}
}

func TestFailUnknownNode(t *testing.T) {
	s := sim.New(1)
	c := Deepthought2(s, 1)
	c.FailNode("nope") // must not panic
	c.RestoreNode("nope")
	if c.Size() != 1 {
		t.Fatal("size changed")
	}
}
