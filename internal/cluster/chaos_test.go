package cluster

import (
	"reflect"
	"testing"
	"time"

	"dyflow/internal/obs"
	"dyflow/internal/sim"
)

func runCampaign(t *testing.T, cfg CampaignConfig, horizon time.Duration) *Campaign {
	t.Helper()
	s := sim.New(1)
	c := Deepthought2(s, 4)
	cp := NewCampaign(c, cfg)
	if cp.Schedule() == 0 {
		t.Fatal("no kills scheduled")
	}
	if err := s.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return cp
}

// The same seed must replay the exact same kill/heal schedule.
func TestCampaignDeterministic(t *testing.T) {
	cfg := CampaignConfig{
		Seed:        7,
		Start:       time.Minute,
		End:         30 * time.Minute,
		MeanBetween: 5 * time.Minute,
		HealAfter:   2 * time.Minute,
	}
	a := runCampaign(t, cfg, time.Hour).Events()
	b := runCampaign(t, cfg, time.Hour).Events()
	if len(a) == 0 {
		t.Fatal("campaign fired no events")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedules differ:\n%v\n%v", a, b)
	}
	c := runCampaign(t, CampaignConfig{
		Seed: 8, Start: cfg.Start, End: cfg.End,
		MeanBetween: cfg.MeanBetween, HealAfter: cfg.HealAfter,
	}, time.Hour).Events()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestCampaignHealsKilledNodes(t *testing.T) {
	s := sim.New(1)
	c := Deepthought2(s, 2)
	cp := NewCampaign(c, CampaignConfig{
		Seed: 1, Start: time.Minute, HealAfter: 5 * time.Minute,
		Targets: []NodeID{"node001"},
	})
	cp.Schedule() // MeanBetween 0: exactly one kill at Start
	s.At(2*time.Minute, func() {
		if c.Node("node001").Healthy() {
			t.Error("node001 should be down between kill and heal")
		}
	})
	if err := s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !c.Node("node001").Healthy() {
		t.Fatal("node001 not healed")
	}
	if cp.Kills() != 1 || cp.Heals() != 1 {
		t.Fatalf("kills=%d heals=%d, want 1/1", cp.Kills(), cp.Heals())
	}
}

// MaxDown caps concurrently dead nodes: kills that would exceed it are
// skipped at fire time, keeping the cluster above a survivable floor.
func TestCampaignMaxDownCap(t *testing.T) {
	cp := runCampaign(t, CampaignConfig{
		Seed:        3,
		Start:       time.Minute,
		End:         time.Hour,
		MeanBetween: time.Minute,      // aggressive kills...
		HealAfter:   30 * time.Minute, // ...with slow heals
		MaxDown:     1,
	}, 2*time.Hour)
	down := 0
	for _, ev := range cp.Events() {
		switch ev.Kind {
		case "kill":
			down++
		case "heal":
			down--
		}
		if down > 1 {
			t.Fatalf("more than MaxDown nodes dead at %v: %v", ev.At, cp.Events())
		}
	}
	if cp.Kills() < 2 {
		t.Fatalf("kills = %d, want several over the hour", cp.Kills())
	}
}

// TestCampaignMetrics: fired kill/heal events count into the chaos-events
// counter, matching the campaign's own event log.
func TestCampaignMetrics(t *testing.T) {
	s := sim.New(1)
	c := Deepthought2(s, 4)
	cp := NewCampaign(c, CampaignConfig{
		Seed:        7,
		Start:       time.Minute,
		End:         30 * time.Minute,
		MeanBetween: 5 * time.Minute,
		HealAfter:   2 * time.Minute,
	})
	reg := obs.NewRegistry()
	cp.SetMetrics(reg)
	if cp.Schedule() == 0 {
		t.Fatal("no kills scheduled")
	}
	if err := s.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if cp.Kills() == 0 || cp.Heals() == 0 {
		t.Fatalf("campaign fired kills=%d heals=%d, want both > 0", cp.Kills(), cp.Heals())
	}
	if v, ok := reg.Value("dyflow_chaos_events_total"); !ok || v != float64(cp.Kills()+cp.Heals()) {
		t.Fatalf("chaos events = %v (ok=%v), want %d", v, ok, cp.Kills()+cp.Heals())
	}
}
