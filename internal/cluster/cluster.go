// Package cluster models the parallel machines DYFLOW's evaluation ran on.
// A Cluster is a set of nodes with per-node core/memory/GPU inventories and
// a health flag; experiments inject node failures through it. Presets for
// the paper's two machines — ORNL Summit and UMD Deepthought2 — reproduce
// the per-node shapes the paper reports (§4.1).
package cluster

import (
	"fmt"
	"sort"

	"dyflow/internal/sim"
)

// NodeID identifies a node within a cluster (e.g. "node007").
type NodeID string

// Node describes one compute node.
type Node struct {
	ID NodeID
	// Cores is the number of physical cores schedulable for task processes.
	Cores int
	// ThreadsPerCore is the hardware SMT width (4 on Summit's Power9, 2 on
	// Deepthought2's Ivy Bridge).
	ThreadsPerCore int
	// MemGB is DRAM capacity in GiB.
	MemGB int
	// GPUs is the number of attached accelerators (6 on Summit). Tracked
	// for inventory completeness; the paper's experiments schedule CPUs.
	GPUs int

	healthy bool
}

// Healthy reports whether the node is in service.
func (n *Node) Healthy() bool { return n.healthy }

// String returns a short human-readable description.
func (n *Node) String() string {
	state := "up"
	if !n.healthy {
		state = "DOWN"
	}
	return fmt.Sprintf("%s(%d cores, %d GB, %s)", n.ID, n.Cores, n.MemGB, state)
}

// HealthListener observes node health transitions. Register listeners with
// Cluster.OnHealthChange; the resource manager uses this to mark assigned
// resources unhealthy, which in turn surfaces as task failures.
type HealthListener func(node *Node, healthy bool)

// Cluster is a named collection of nodes sharing one machine description.
type Cluster struct {
	Name  string
	sim   *sim.Sim
	nodes map[NodeID]*Node
	order []NodeID // deterministic iteration order
	subs  []HealthListener
}

// Config describes a homogeneous machine for New.
type Config struct {
	Name           string
	Nodes          int
	CoresPerNode   int
	ThreadsPerCore int
	MemGBPerNode   int
	GPUsPerNode    int
}

// New builds a homogeneous cluster of cfg.Nodes identical nodes named
// node000, node001, ...
func New(s *sim.Sim, cfg Config) *Cluster {
	c := &Cluster{
		Name:  cfg.Name,
		sim:   s,
		nodes: make(map[NodeID]*Node, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		id := NodeID(fmt.Sprintf("node%03d", i))
		c.nodes[id] = &Node{
			ID:             id,
			Cores:          cfg.CoresPerNode,
			ThreadsPerCore: cfg.ThreadsPerCore,
			MemGB:          cfg.MemGBPerNode,
			GPUs:           cfg.GPUsPerNode,
			healthy:        true,
		}
		c.order = append(c.order, id)
	}
	return c
}

// Summit builds an n-node slice of the ORNL Summit machine: 2× IBM Power9
// per node (42 schedulable cores, 4-way SMT), 512 GB DDR4, 6 Volta GPUs.
// The real machine has 4,608 nodes; experiments allocate a small slice.
func Summit(s *sim.Sim, n int) *Cluster {
	return New(s, Config{
		Name:           "Summit",
		Nodes:          n,
		CoresPerNode:   42,
		ThreadsPerCore: 4,
		MemGBPerNode:   512,
		GPUsPerNode:    6,
	})
}

// Deepthought2 builds an n-node slice of UMD Deepthought2: dual Intel Ivy
// Bridge E5-2680v2 per node (20 cores, 2 hardware threads/core), 128 GB
// DDR3. The real machine has 448 nodes.
func Deepthought2(s *sim.Sim, n int) *Cluster {
	return New(s, Config{
		Name:           "Deepthought2",
		Nodes:          n,
		CoresPerNode:   20,
		ThreadsPerCore: 2,
		MemGBPerNode:   128,
		GPUsPerNode:    0,
	})
}

// Sim returns the simulation the cluster is bound to.
func (c *Cluster) Sim() *sim.Sim { return c.sim }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id NodeID) *Node { return c.nodes[id] }

// Nodes returns all nodes in deterministic (creation) order.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.nodes[id])
	}
	return out
}

// HealthyNodes returns the in-service nodes in deterministic order.
func (c *Cluster) HealthyNodes() []*Node {
	var out []*Node
	for _, id := range c.order {
		if n := c.nodes[id]; n.healthy {
			out = append(out, n)
		}
	}
	return out
}

// TotalCores returns the sum of cores across healthy nodes.
func (c *Cluster) TotalCores() int {
	total := 0
	for _, n := range c.nodes {
		if n.healthy {
			total += n.Cores
		}
	}
	return total
}

// OnHealthChange registers a listener for node health transitions.
func (c *Cluster) OnHealthChange(fn HealthListener) { c.subs = append(c.subs, fn) }

// FailNode takes a node out of service, notifying listeners. Failing an
// unknown or already-failed node is a no-op.
func (c *Cluster) FailNode(id NodeID) {
	n := c.nodes[id]
	if n == nil || !n.healthy {
		return
	}
	n.healthy = false
	for _, fn := range c.subs {
		fn(n, false)
	}
}

// RestoreNode returns a failed node to service, notifying listeners.
func (c *Cluster) RestoreNode(id NodeID) {
	n := c.nodes[id]
	if n == nil || n.healthy {
		return
	}
	n.healthy = true
	for _, fn := range c.subs {
		fn(n, true)
	}
}

// FailNodeAt schedules a node failure at absolute virtual time at. It is
// the failure-injection entry point used by the resilience experiments
// (paper §4.5: "10 mins into the experiment one of the allocated nodes was
// taken out of service"). The returned handle can cancel the injection.
func (c *Cluster) FailNodeAt(at sim.Time, id NodeID) sim.EventID {
	return c.sim.At(at, func() { c.FailNode(id) })
}

// SortNodeIDs sorts a slice of node IDs lexically in place and returns it;
// helper for deterministic reporting.
func SortNodeIDs(ids []NodeID) []NodeID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
