// Package trace is DYFLOW's flight recorder: a low-overhead observability
// subsystem threaded through all four stages (Monitor, Decision,
// Arbitration, Actuation). It exists to make the paper's §4.6 cost
// analysis — the decomposition of response time into per-stage lags —
// measurable end to end instead of being scattered across per-stage
// counters.
//
// The unit of correlation is the suggestion lifecycle Span: Decision mints
// a per-suggestion ID when a policy fires, and every later stage stamps
// its timestamp onto the same span (ObservedAt and GeneratedAt ride in on
// the triggering metric). A completed span therefore decomposes the full
// event-to-actuation path:
//
//	GeneratedAt  — the underlying data was produced by the task
//	ObservedAt   — the Monitor server forwarded the metric to Decision
//	DecidedAt    — the policy fired and the suggestion was emitted
//	ReceivedAt   — the suggestion batch reached Arbitration (post-gather)
//	PlannedAt    — the plan was finalized
//	ExecutedAt   — Actuation finished applying the plan
//
// Alongside spans the recorder collects per-stage counters (metrics
// forwarded/re-polled/dropped, evaluations, suggestions, guard discards,
// empty-plan rounds, actuation ops), per-operation actuation latency, and
// bus queue-depth samples.
//
// All methods are nil-receiver safe so stages can call them
// unconditionally; an untraced engine simply records nothing.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"dyflow/internal/obs"
	"dyflow/internal/sim"
)

// Span is one suggestion's lifecycle across the four stages. Zero
// timestamps mean the span never reached that stage; Dropped names the
// reason when Arbitration discarded it.
type Span struct {
	ID       string `json:"id"`
	Workflow string `json:"workflow"`
	Policy   string `json:"policy"`
	Action   string `json:"action"`
	Sensor   string `json:"sensor,omitempty"`

	GeneratedAt sim.Time `json:"generated_at"`
	ObservedAt  sim.Time `json:"observed_at"`
	DecidedAt   sim.Time `json:"decided_at"`
	ReceivedAt  sim.Time `json:"received_at,omitempty"`
	PlannedAt   sim.Time `json:"planned_at,omitempty"`
	ExecutedAt  sim.Time `json:"executed_at,omitempty"`

	// Dropped is the discard reason ("warmup", "settle", "stale",
	// "empty-plan") when the suggestion never reached actuation.
	Dropped string `json:"dropped,omitempty"`
}

// Complete reports whether the span traversed every stage.
func (sp Span) Complete() bool { return sp.ExecutedAt > 0 }

// Monotone reports whether the stamped timestamps are non-decreasing in
// stage order (unstamped stages are skipped).
func (sp Span) Monotone() bool {
	prev := sim.Time(0)
	for _, t := range []sim.Time{sp.GeneratedAt, sp.ObservedAt, sp.DecidedAt, sp.ReceivedAt, sp.PlannedAt, sp.ExecutedAt} {
		if t == 0 {
			continue
		}
		if t < prev {
			return false
		}
		prev = t
	}
	return true
}

// queueAcc accumulates depth samples for one bus endpoint.
type queueAcc struct {
	samples int
	sum     int64
	max     int
}

// Recorder is the flight recorder shared by one orchestrator's stages.
// The simulation substrate runs processes one at a time, but `dyflow-exp
// serve` reads the recorder from HTTP goroutines while a run is in
// flight, so all state is mutex-guarded. Latency distributions are stored
// in bounded obs.Histogram buckets rather than unbounded sample slices;
// when a metrics registry is attached with SetMetrics, those histograms
// ARE the registry's labeled series (shared storage, no double counting)
// and counters/queue depths mirror into registry families.
type Recorder struct {
	mu sync.Mutex

	spans map[string]*Span
	order []string // span IDs in creation order

	counters map[string]int64

	sensorLags map[string]*obs.Histogram // sensor ID -> detection-lag histogram (seconds)
	opLats     map[string]*obs.Histogram // op kind -> execution-latency histogram (seconds)
	queues     map[string]*queueAcc      // endpoint -> depth accumulator

	events   *obs.CounterVec   // dyflow_stage_events_total{event}
	lagVec   *obs.HistogramVec // dyflow_sensor_lag_seconds{sensor}
	opVec    *obs.HistogramVec // dyflow_actuation_op_seconds{op}
	queueVec *obs.GaugeVec     // dyflow_bus_queue_depth{endpoint}

	onComplete func(Span) // invoked (without r.mu held) when a span completes
}

// New creates an empty recorder.
func New() *Recorder {
	return &Recorder{
		spans:      make(map[string]*Span),
		counters:   make(map[string]int64),
		sensorLags: make(map[string]*obs.Histogram),
		opLats:     make(map[string]*obs.Histogram),
		queues:     make(map[string]*queueAcc),
	}
}

// SetMetrics attaches a metrics registry: stage counters mirror into
// dyflow_stage_events_total{event}, sensor lags and op latencies are
// stored in the registry's dyflow_sensor_lag_seconds{sensor} /
// dyflow_actuation_op_seconds{op} histogram series, and queue depths set
// dyflow_bus_queue_depth{endpoint}. Attach before recording: histograms
// resolved earlier stay standalone and do not appear in the registry.
func (r *Recorder) SetMetrics(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = reg.Counter("dyflow_stage_events_total",
		"Flight-recorder stage counter events by name.", "event")
	r.lagVec = reg.Histogram("dyflow_sensor_lag_seconds",
		"Sensor detection lag (data generation to metric forwarded).", nil, "sensor")
	r.opVec = reg.Histogram("dyflow_actuation_op_seconds",
		"Actuation operation execution latency.", nil, "op")
	r.queueVec = reg.Gauge("dyflow_bus_queue_depth",
		"Bus queue depth sampled at enqueue.", "endpoint")
}

// Inc adds delta to a named stage counter.
func (r *Recorder) Inc(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
	if delta > 0 {
		r.events.With(name).Add(delta)
	}
}

// Counter returns a named counter's value (0 if never incremented).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Suggested opens a span: Decision emitted a suggestion.
func (r *Recorder) Suggested(id, workflow, policy, action, sensorID string, generatedAt, observedAt, decidedAt sim.Time) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.spans[id]; ok {
		return
	}
	r.spans[id] = &Span{
		ID:          id,
		Workflow:    workflow,
		Policy:      policy,
		Action:      action,
		Sensor:      sensorID,
		GeneratedAt: generatedAt,
		ObservedAt:  observedAt,
		DecidedAt:   decidedAt,
	}
	r.order = append(r.order, id)
}

// Received stamps the span's arrival at Arbitration.
func (r *Recorder) Received(id string, at sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if sp, ok := r.spans[id]; ok {
		sp.ReceivedAt = at
	}
}

// Planned stamps the plan-finalization instant.
func (r *Recorder) Planned(id string, at sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if sp, ok := r.spans[id]; ok {
		sp.PlannedAt = at
	}
}

// SetOnComplete registers a hook fired with a copy of each span the
// moment its ExecutedAt is stamped — the full lifecycle is then known.
// The hook runs on the stamping goroutine with the recorder unlocked, so
// it may call back into the recorder; it must not block for long (it sits
// on the actuation path). The campaign service uses it to forward
// completed spans into a run's live event stream.
func (r *Recorder) SetOnComplete(fn func(Span)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onComplete = fn
	r.mu.Unlock()
}

// Executed stamps the actuation-complete instant.
func (r *Recorder) Executed(id string, at sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	var done Span
	fn := r.onComplete
	if sp, ok := r.spans[id]; ok {
		sp.ExecutedAt = at
		done = *sp
	} else {
		fn = nil
	}
	r.mu.Unlock()
	if fn != nil {
		fn(done)
	}
}

// Drop marks the span discarded at Arbitration with a reason.
func (r *Recorder) Drop(id, reason string, at sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if sp, ok := r.spans[id]; ok {
		sp.Dropped = reason
		if sp.ReceivedAt == 0 {
			sp.ReceivedAt = at
		}
	}
}

// hist resolves the histogram for one key in a distribution map, creating
// it on first use: from the attached registry family (shared storage with
// the exposed series) when one is set, standalone otherwise. Caller holds
// r.mu.
func hist(m map[string]*obs.Histogram, vec *obs.HistogramVec, key string) *obs.Histogram {
	h, ok := m[key]
	if !ok {
		if vec != nil {
			h = vec.With(key)
		} else {
			h = obs.NewHistogram(nil)
		}
		m[key] = h
	}
	return h
}

// SensorLag records one detection-lag sample (data generation to metric
// forwarded) for a sensor.
func (r *Recorder) SensorLag(sensorID string, lag sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	hist(r.sensorLags, r.lagVec, sensorID).Observe(lag.Seconds())
}

// SensorLagQuantile returns the q-quantile of a sensor's recorded
// detection lags at histogram-bucket resolution (0 with no samples) — the
// value the dyflow self-monitoring sensor source exposes.
func (r *Recorder) SensorLagQuantile(sensorID string, q float64) sim.Time {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	h := r.sensorLags[sensorID]
	r.mu.Unlock()
	return secondsToDuration(h.Quantile(q))
}

// OpExecuted records one actuation operation's execution latency.
func (r *Recorder) OpExecuted(kind string, started, ended sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	hist(r.opLats, r.opVec, kind).Observe((ended - started).Seconds())
}

// QueueDepth records one bus queue-depth sample for an endpoint. Negative
// depths (a miscounting producer) clamp to zero and the running sum
// saturates instead of wrapping, so MeanDepth stays a depth.
func (r *Recorder) QueueDepth(endpoint string, depth int) {
	if r == nil {
		return
	}
	if depth < 0 {
		depth = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queues[endpoint]
	if !ok {
		q = &queueAcc{}
		r.queues[endpoint] = q
	}
	q.samples++
	if q.sum > math.MaxInt64-int64(depth) {
		q.sum = math.MaxInt64
	} else {
		q.sum += int64(depth)
	}
	if depth > q.max {
		q.max = depth
	}
	r.queueVec.With(endpoint).Set(float64(depth))
}

// QueueMaxDepth returns the largest depth sampled for an endpoint (0 if
// never sampled) — exposed through the dyflow self-monitoring source.
func (r *Recorder) QueueMaxDepth(endpoint string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if q, ok := r.queues[endpoint]; ok {
		return q.max
	}
	return 0
}

// Spans returns all spans in creation order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, *r.spans[id])
	}
	return out
}

// Span returns one span by ID.
func (r *Recorder) Span(id string) (Span, bool) {
	if r == nil {
		return Span{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sp, ok := r.spans[id]
	if !ok {
		return Span{}, false
	}
	return *sp, true
}

// LatencyStat summarizes one latency distribution.
type LatencyStat struct {
	Label string        `json:"label"`
	Count int           `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// StageLatency is one (policy, stage) latency summary of the report.
type StageLatency struct {
	Policy string `json:"policy"`
	Stage  string `json:"stage"`
	LatencyStat
}

// CounterValue is one named counter of the report.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// QueueStat summarizes one endpoint's queue-depth samples.
type QueueStat struct {
	Endpoint  string  `json:"endpoint"`
	Samples   int     `json:"samples"`
	MeanDepth float64 `json:"mean_depth"`
	MaxDepth  int     `json:"max_depth"`
}

// Report is the rendered flight-recorder state: the §4.6-style per-stage
// latency breakdown plus counters, sensor lags, op latencies, and queue
// depths. It is JSON-marshalable for export.
type Report struct {
	Spans      []Span         `json:"spans"`
	Stages     []StageLatency `json:"stages"`
	SensorLags []LatencyStat  `json:"sensor_lags"`
	Ops        []LatencyStat  `json:"ops"`
	Counters   []CounterValue `json:"counters"`
	Queues     []QueueStat    `json:"queues"`
}

// stageNames, in pipeline order. Each maps a completed span to one lag.
var stageNames = []string{
	"generate→observe",
	"observe→decide",
	"decide→receive",
	"receive→plan",
	"plan→execute",
	"total",
}

func stageLag(sp Span, stage string) sim.Time {
	switch stage {
	case "generate→observe":
		return sp.ObservedAt - sp.GeneratedAt
	case "observe→decide":
		return sp.DecidedAt - sp.ObservedAt
	case "decide→receive":
		return sp.ReceivedAt - sp.DecidedAt
	case "receive→plan":
		return sp.PlannedAt - sp.ReceivedAt
	case "plan→execute":
		return sp.ExecutedAt - sp.PlannedAt
	case "total":
		return sp.ExecutedAt - sp.GeneratedAt
	}
	return 0
}

// percentile returns the nearest-rank percentile of sorted samples:
// rank = ceil(q*n), 1-based, so percentile(s, q) = s[ceil(q*n)-1]. This is
// the standard nearest-rank convention (and the one obs.Histogram.Quantile
// uses): for any n <= 100, P99's rank is n, i.e. P99 of a small sample is
// its maximum — the previous round-half-up formula could land a rank low
// for small n, reporting P50-ish values as P99.
func percentile(sorted []sim.Time, q float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func summarize(label string, samples []sim.Time) LatencyStat {
	st := LatencyStat{Label: label, Count: len(samples)}
	if len(samples) == 0 {
		return st
	}
	sorted := append([]sim.Time(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum sim.Time
	for _, v := range sorted {
		sum += v
	}
	st.Mean = sum / sim.Time(len(sorted))
	st.P50 = percentile(sorted, 0.50)
	st.P99 = percentile(sorted, 0.99)
	st.Max = sorted[len(sorted)-1]
	return st
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(math.Round(s * float64(time.Second)))
}

// summarizeHist renders a LatencyStat from a bounded histogram: Count,
// Mean, and Max are exact; P50/P99 are nearest-rank at bucket resolution
// (the upper bound of the bucket holding the rank).
func summarizeHist(label string, h *obs.Histogram) LatencyStat {
	st := LatencyStat{Label: label, Count: int(h.Count())}
	if st.Count == 0 {
		return st
	}
	st.Mean = secondsToDuration(h.Mean())
	st.P50 = secondsToDuration(h.Quantile(0.50))
	st.P99 = secondsToDuration(h.Quantile(0.99))
	st.Max = secondsToDuration(h.Max())
	return st
}

// Report builds the current report. All groupings iterate in sorted order
// so equal runs render byte-identical reports.
func (r *Recorder) Report() *Report {
	if r == nil {
		return &Report{}
	}
	rep := &Report{Spans: r.Spans()}
	r.mu.Lock()
	defer r.mu.Unlock()

	// Per-policy per-stage latencies over completed spans.
	byPolicy := map[string][]Span{}
	for _, sp := range rep.Spans {
		if sp.Complete() {
			byPolicy[sp.Policy] = append(byPolicy[sp.Policy], sp)
		}
	}
	policies := make([]string, 0, len(byPolicy))
	for p := range byPolicy {
		policies = append(policies, p)
	}
	sort.Strings(policies)
	for _, p := range policies {
		for _, stage := range stageNames {
			var samples []sim.Time
			for _, sp := range byPolicy[p] {
				samples = append(samples, stageLag(sp, stage))
			}
			rep.Stages = append(rep.Stages, StageLatency{
				Policy:      p,
				Stage:       stage,
				LatencyStat: summarize(p+"/"+stage, samples),
			})
		}
	}

	for _, id := range sortedKeys(r.sensorLags) {
		rep.SensorLags = append(rep.SensorLags, summarizeHist(id, r.sensorLags[id]))
	}
	for _, k := range sortedKeys(r.opLats) {
		rep.Ops = append(rep.Ops, summarizeHist(k, r.opLats[k]))
	}
	for _, name := range sortedKeys(r.counters) {
		rep.Counters = append(rep.Counters, CounterValue{Name: name, Value: r.counters[name]})
	}
	for _, ep := range sortedKeys(r.queues) {
		q := r.queues[ep]
		rep.Queues = append(rep.Queues, QueueStat{
			Endpoint:  ep,
			Samples:   q.samples,
			MeanDepth: float64(q.sum) / float64(q.samples),
			MaxDepth:  q.max,
		})
	}
	return rep
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fmtLat renders a latency with adaptive precision: sub-millisecond values
// round to the microsecond (whole-ms rounding showed every fast op as
// "0s"), everything else to the millisecond.
func fmtLat(d time.Duration) string {
	if d > -time.Millisecond && d < time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(time.Millisecond).String()
}

// Write renders the report as aligned text tables — the reproduction's
// §4.6 per-stage latency breakdown.
func (rep *Report) Write(w io.Writer) {
	table := func(title string, header []string, rows [][]string) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(w, "== %s ==\n", title)
		widths := make([]int, len(header))
		for i, h := range header {
			widths[i] = len(h)
		}
		for _, row := range rows {
			for i, c := range row {
				if len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cells []string) {
			for i, c := range cells {
				fmt.Fprintf(w, "  %-*s", widths[i], c)
			}
			fmt.Fprintln(w)
		}
		line(header)
		dashes := make([]string, len(header))
		for i := range dashes {
			dashes[i] = strings.Repeat("-", widths[i])
		}
		line(dashes)
		for _, row := range rows {
			line(row)
		}
		fmt.Fprintln(w)
	}

	latRows := func(stats []LatencyStat, first func(LatencyStat) []string) [][]string {
		var rows [][]string
		for _, st := range stats {
			row := first(st)
			rows = append(rows, append(row,
				fmt.Sprint(st.Count), fmtLat(st.Mean), fmtLat(st.P50), fmtLat(st.P99), fmtLat(st.Max)))
		}
		return rows
	}

	var stageRows [][]string
	for _, st := range rep.Stages {
		stageRows = append(stageRows, []string{
			st.Policy, st.Stage,
			fmt.Sprint(st.Count), fmtLat(st.Mean), fmtLat(st.P50), fmtLat(st.P99), fmtLat(st.Max)})
	}
	table("Per-stage latency by policy (§4.6 decomposition)",
		[]string{"policy", "stage", "n", "mean", "p50", "p99", "max"}, stageRows)

	table("Sensor detection lag (generation → forwarded)",
		[]string{"sensor", "n", "mean", "p50", "p99", "max"},
		latRows(rep.SensorLags, func(st LatencyStat) []string { return []string{st.Label} }))

	table("Actuation operation latency",
		[]string{"op", "n", "mean", "p50", "p99", "max"},
		latRows(rep.Ops, func(st LatencyStat) []string { return []string{st.Label} }))

	var counterRows [][]string
	for _, c := range rep.Counters {
		counterRows = append(counterRows, []string{c.Name, fmt.Sprint(c.Value)})
	}
	table("Stage counters", []string{"counter", "value"}, counterRows)

	var queueRows [][]string
	for _, q := range rep.Queues {
		queueRows = append(queueRows, []string{
			q.Endpoint, fmt.Sprint(q.Samples), fmt.Sprintf("%.2f", q.MeanDepth), fmt.Sprint(q.MaxDepth)})
	}
	table("Bus queue depth at enqueue", []string{"endpoint", "samples", "mean", "max"}, queueRows)

	completed, dropped := 0, 0
	for _, sp := range rep.Spans {
		if sp.Complete() {
			completed++
		}
		if sp.Dropped != "" {
			dropped++
		}
	}
	fmt.Fprintf(w, "spans: %d total, %d completed, %d dropped\n", len(rep.Spans), completed, dropped)
}
