package trace

import "dyflow/internal/obs"

// QueueState is one endpoint's checkpointed queue-depth accumulator.
type QueueState struct {
	Endpoint string `json:"endpoint"`
	Samples  int    `json:"samples"`
	Sum      int64  `json:"sum"`
	Max      int    `json:"max"`
}

// State is the recorder's checkpointable state: suggestion-lifecycle spans
// in creation order, stage counters, queue-depth accumulators, and the
// sensor/op keys whose latency histograms must be re-resolved on restore.
// Histogram contents themselves live in the attached metrics registry
// (shared storage) and survive a restore with the same registry; without a
// registry the distributions restart empty.
type State struct {
	Spans      []Span         `json:"spans,omitempty"`
	Counters   []CounterValue `json:"counters,omitempty"`
	Queues     []QueueState   `json:"queues,omitempty"`
	LagSensors []string       `json:"lag_sensors,omitempty"`
	OpKinds    []string       `json:"op_kinds,omitempty"`
}

// State exports the recorder for checkpointing.
func (r *Recorder) State() State {
	if r == nil {
		return State{}
	}
	st := State{Spans: r.Spans()}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		st.Counters = append(st.Counters, CounterValue{Name: name, Value: r.counters[name]})
	}
	for _, ep := range sortedKeys(r.queues) {
		q := r.queues[ep]
		st.Queues = append(st.Queues, QueueState{Endpoint: ep, Samples: q.samples, Sum: q.sum, Max: q.max})
	}
	st.LagSensors = sortedKeys(r.sensorLags)
	st.OpKinds = sortedKeys(r.opLats)
	return st
}

// Restore replaces the recorder's state. Counters are set directly — not
// replayed through Inc — because the metrics registry (when shared with
// the pre-crash recorder, as in an in-process restore) already holds the
// mirrored dyflow_stage_events_total series; replaying would double-count.
// Latency histograms are re-resolved by key so registry-backed
// distributions keep their samples.
func (r *Recorder) Restore(st State) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = make(map[string]*Span, len(st.Spans))
	r.order = r.order[:0]
	for _, sp := range st.Spans {
		sp := sp
		r.spans[sp.ID] = &sp
		r.order = append(r.order, sp.ID)
	}
	r.counters = make(map[string]int64, len(st.Counters))
	for _, c := range st.Counters {
		r.counters[c.Name] = c.Value
	}
	r.queues = make(map[string]*queueAcc, len(st.Queues))
	for _, q := range st.Queues {
		r.queues[q.Endpoint] = &queueAcc{samples: q.Samples, sum: q.Sum, max: q.Max}
	}
	r.sensorLags = make(map[string]*obs.Histogram, len(st.LagSensors))
	for _, id := range st.LagSensors {
		hist(r.sensorLags, r.lagVec, id)
	}
	r.opLats = make(map[string]*obs.Histogram, len(st.OpKinds))
	for _, k := range st.OpKinds {
		hist(r.opLats, r.opVec, k)
	}
}
