package trace

import (
	"testing"

	"dyflow/internal/sim"
)

func TestOnCompleteHookFiresOnExecuted(t *testing.T) {
	r := New()
	var got []Span
	r.SetOnComplete(func(sp Span) {
		// Re-entrancy must be safe: the hook runs unlocked.
		_, _ = r.Span(sp.ID)
		got = append(got, sp)
	})

	r.Suggested("s1", "WF", "pol", "INC", "PACE", 1, 2, 3)
	r.Received("s1", 4)
	r.Planned("s1", 5)
	if len(got) != 0 {
		t.Fatalf("hook fired before Executed: %v", got)
	}
	r.Executed("s1", 6)
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(got))
	}
	sp := got[0]
	if sp.ID != "s1" || sp.ExecutedAt != sim.Time(6) || !sp.Complete() {
		t.Fatalf("hook got incomplete span copy: %+v", sp)
	}

	// Executed for an unknown span must not fire the hook.
	r.Executed("nope", 7)
	if len(got) != 1 {
		t.Fatalf("hook fired for unknown span")
	}

	// Clearing the hook stops delivery.
	r.SetOnComplete(nil)
	r.Suggested("s2", "WF", "pol", "INC", "PACE", 1, 2, 3)
	r.Executed("s2", 9)
	if len(got) != 1 {
		t.Fatalf("cleared hook still fired")
	}

	// Nil receiver stays safe.
	var nilRec *Recorder
	nilRec.SetOnComplete(func(Span) {})
	nilRec.Executed("x", 1)
}
