package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"dyflow/internal/sim"
)

func sec(n int) sim.Time { return sim.Time(n) * sim.Time(time.Second) }

// fill records a small but fully populated run: two completed spans, one
// dropped span, sensor lags, op latencies, counters, and queue samples.
func fill(r *Recorder) {
	r.Suggested("W/P1#1", "W", "P1", "ADDCPU", "PACE", sec(1), sec(2), sec(3))
	r.Received("W/P1#1", sec(4))
	r.Planned("W/P1#1", sec(5))
	r.Executed("W/P1#1", sec(9))

	r.Suggested("W/P2#2", "W", "P2", "RMCPU", "PACE", sec(2), sec(3), sec(4))
	r.Drop("W/P2#2", "warmup", sec(5))

	r.Suggested("W/P1#3", "W", "P1", "ADDCPU", "PACE", sec(10), sec(11), sec(12))
	r.Received("W/P1#3", sec(13))
	r.Planned("W/P1#3", sec(14))
	r.Executed("W/P1#3", sec(20))

	r.SensorLag("PACE", sec(1))
	r.SensorLag("PACE", sec(2))
	r.OpExecuted("stop", sec(5), sec(8))
	r.OpExecuted("start", sec(8), sec(9))
	r.Inc("arbiter.rounds", 2)
	r.Inc("decision.suggestions", 3)
	r.QueueDepth("arbiter", 1)
	r.QueueDepth("arbiter", 3)
}

func TestSpanLifecycle(t *testing.T) {
	r := New()
	fill(r)

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	// Creation order preserved.
	if spans[0].ID != "W/P1#1" || spans[1].ID != "W/P2#2" || spans[2].ID != "W/P1#3" {
		t.Fatalf("span order = %v %v %v", spans[0].ID, spans[1].ID, spans[2].ID)
	}
	sp, ok := r.Span("W/P1#1")
	if !ok || !sp.Complete() || !sp.Monotone() {
		t.Fatalf("span = %+v, want complete and monotone", sp)
	}
	if sp.ExecutedAt != sec(9) {
		t.Fatalf("ExecutedAt = %v, want 9s", sp.ExecutedAt)
	}
	dropped, ok := r.Span("W/P2#2")
	if !ok || dropped.Dropped != "warmup" || dropped.Complete() {
		t.Fatalf("dropped span = %+v", dropped)
	}
	// Drop stamps ReceivedAt when unset, keeping the span monotone.
	if dropped.ReceivedAt != sec(5) || !dropped.Monotone() {
		t.Fatalf("dropped span = %+v, want ReceivedAt 5s and monotone", dropped)
	}
}

func TestMonotoneDetectsRegression(t *testing.T) {
	sp := Span{GeneratedAt: sec(5), ObservedAt: sec(3)}
	if sp.Monotone() {
		t.Fatal("out-of-order span reported monotone")
	}
	// Zero (unstamped) stages are skipped, not treated as regressions.
	sp = Span{GeneratedAt: sec(1), DecidedAt: sec(2), ExecutedAt: sec(3)}
	if !sp.Monotone() {
		t.Fatal("partially stamped span reported non-monotone")
	}
}

func TestCounters(t *testing.T) {
	r := New()
	r.Inc("a", 2)
	r.Inc("a", 3)
	if got := r.Counter("a"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Inc("x", 1)
	r.Suggested("id", "w", "p", "a", "s", 0, 0, 0)
	r.Received("id", 0)
	r.Planned("id", 0)
	r.Executed("id", 0)
	r.Drop("id", "warmup", 0)
	r.SensorLag("s", 0)
	r.OpExecuted("stop", 0, 0)
	r.QueueDepth("ep", 0)
	if r.Counter("x") != 0 || r.Spans() != nil {
		t.Fatal("nil recorder retained state")
	}
	if _, ok := r.Span("id"); ok {
		t.Fatal("nil recorder returned a span")
	}
	rep := r.Report()
	if len(rep.Spans) != 0 || len(rep.Counters) != 0 {
		t.Fatalf("nil recorder report = %+v, want empty", rep)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	samples := []sim.Time{sec(1), sec(2), sec(3), sec(4)}
	if got := percentile(samples, 0.50); got != sec(2) {
		t.Fatalf("p50 = %v, want 2s", got)
	}
	if got := percentile(samples, 0.99); got != sec(4) {
		t.Fatalf("p99 = %v, want 4s", got)
	}
	if got := percentile(nil, 0.50); got != 0 {
		t.Fatalf("p50 of empty = %v, want 0", got)
	}
}

func TestReportAggregation(t *testing.T) {
	r := New()
	fill(r)
	rep := r.Report()

	// Only P1's two completed spans contribute stage rows; the dropped P2
	// span must not.
	for _, st := range rep.Stages {
		if st.Policy == "P2" {
			t.Fatalf("dropped policy P2 appeared in stage rows: %+v", st)
		}
		if st.Policy == "P1" && st.Count != 2 {
			t.Fatalf("stage %q count = %d, want 2", st.Stage, st.Count)
		}
	}
	if len(rep.Stages) != len(stageNames) {
		t.Fatalf("stage rows = %d, want %d", len(rep.Stages), len(stageNames))
	}
	// Span 1 total 8s, span 3 total 10s -> mean 9s.
	for _, st := range rep.Stages {
		if st.Stage == "total" && st.Mean != time.Duration(sec(9)) {
			t.Fatalf("total mean = %v, want 9s", st.Mean)
		}
	}
	if len(rep.SensorLags) != 1 || rep.SensorLags[0].Label != "PACE" || rep.SensorLags[0].Count != 2 {
		t.Fatalf("sensor lags = %+v", rep.SensorLags)
	}
	if len(rep.Ops) != 2 || rep.Ops[0].Label != "start" || rep.Ops[1].Label != "stop" {
		t.Fatalf("ops = %+v, want sorted [start stop]", rep.Ops)
	}
	if len(rep.Queues) != 1 || rep.Queues[0].MeanDepth != 2.0 || rep.Queues[0].MaxDepth != 3 {
		t.Fatalf("queues = %+v", rep.Queues)
	}
}

func TestReportDeterministicAndJSON(t *testing.T) {
	render := func() []byte {
		r := New()
		fill(r)
		var buf bytes.Buffer
		r.Report().Write(&buf)
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("equal recorders rendered different reports:\n%s\n---\n%s", a, b)
	}

	r := New()
	fill(r)
	data, err := json.Marshal(r.Report())
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 3 || len(back.Counters) != 2 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
}
