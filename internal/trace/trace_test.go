package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"

	"dyflow/internal/obs"
	"dyflow/internal/sim"
)

func sec(n int) sim.Time { return sim.Time(n) * sim.Time(time.Second) }

// fill records a small but fully populated run: two completed spans, one
// dropped span, sensor lags, op latencies, counters, and queue samples.
func fill(r *Recorder) {
	r.Suggested("W/P1#1", "W", "P1", "ADDCPU", "PACE", sec(1), sec(2), sec(3))
	r.Received("W/P1#1", sec(4))
	r.Planned("W/P1#1", sec(5))
	r.Executed("W/P1#1", sec(9))

	r.Suggested("W/P2#2", "W", "P2", "RMCPU", "PACE", sec(2), sec(3), sec(4))
	r.Drop("W/P2#2", "warmup", sec(5))

	r.Suggested("W/P1#3", "W", "P1", "ADDCPU", "PACE", sec(10), sec(11), sec(12))
	r.Received("W/P1#3", sec(13))
	r.Planned("W/P1#3", sec(14))
	r.Executed("W/P1#3", sec(20))

	r.SensorLag("PACE", sec(1))
	r.SensorLag("PACE", sec(2))
	r.OpExecuted("stop", sec(5), sec(8))
	r.OpExecuted("start", sec(8), sec(9))
	r.Inc("arbiter.rounds", 2)
	r.Inc("decision.suggestions", 3)
	r.QueueDepth("arbiter", 1)
	r.QueueDepth("arbiter", 3)
}

func TestSpanLifecycle(t *testing.T) {
	r := New()
	fill(r)

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	// Creation order preserved.
	if spans[0].ID != "W/P1#1" || spans[1].ID != "W/P2#2" || spans[2].ID != "W/P1#3" {
		t.Fatalf("span order = %v %v %v", spans[0].ID, spans[1].ID, spans[2].ID)
	}
	sp, ok := r.Span("W/P1#1")
	if !ok || !sp.Complete() || !sp.Monotone() {
		t.Fatalf("span = %+v, want complete and monotone", sp)
	}
	if sp.ExecutedAt != sec(9) {
		t.Fatalf("ExecutedAt = %v, want 9s", sp.ExecutedAt)
	}
	dropped, ok := r.Span("W/P2#2")
	if !ok || dropped.Dropped != "warmup" || dropped.Complete() {
		t.Fatalf("dropped span = %+v", dropped)
	}
	// Drop stamps ReceivedAt when unset, keeping the span monotone.
	if dropped.ReceivedAt != sec(5) || !dropped.Monotone() {
		t.Fatalf("dropped span = %+v, want ReceivedAt 5s and monotone", dropped)
	}
}

func TestMonotoneDetectsRegression(t *testing.T) {
	sp := Span{GeneratedAt: sec(5), ObservedAt: sec(3)}
	if sp.Monotone() {
		t.Fatal("out-of-order span reported monotone")
	}
	// Zero (unstamped) stages are skipped, not treated as regressions.
	sp = Span{GeneratedAt: sec(1), DecidedAt: sec(2), ExecutedAt: sec(3)}
	if !sp.Monotone() {
		t.Fatal("partially stamped span reported non-monotone")
	}
}

func TestCounters(t *testing.T) {
	r := New()
	r.Inc("a", 2)
	r.Inc("a", 3)
	if got := r.Counter("a"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Inc("x", 1)
	r.Suggested("id", "w", "p", "a", "s", 0, 0, 0)
	r.Received("id", 0)
	r.Planned("id", 0)
	r.Executed("id", 0)
	r.Drop("id", "warmup", 0)
	r.SensorLag("s", 0)
	r.OpExecuted("stop", 0, 0)
	r.QueueDepth("ep", 0)
	if r.Counter("x") != 0 || r.Spans() != nil {
		t.Fatal("nil recorder retained state")
	}
	if _, ok := r.Span("id"); ok {
		t.Fatal("nil recorder returned a span")
	}
	rep := r.Report()
	if len(rep.Spans) != 0 || len(rep.Counters) != 0 {
		t.Fatalf("nil recorder report = %+v, want empty", rep)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	samples := []sim.Time{sec(1), sec(2), sec(3), sec(4)}
	if got := percentile(samples, 0.50); got != sec(2) {
		t.Fatalf("p50 = %v, want 2s", got)
	}
	if got := percentile(samples, 0.99); got != sec(4) {
		t.Fatalf("p99 = %v, want 4s", got)
	}
	if got := percentile(nil, 0.50); got != 0 {
		t.Fatalf("p50 of empty = %v, want 0", got)
	}
}

// TestPercentileSmallSamples pins the nearest-rank (rank = ceil(q*n))
// convention for tiny samples: P99 of any n <= 100 sample is its maximum,
// and P50 is the ceil(n/2)-th value — no sliding toward lower ranks.
func TestPercentileSmallSamples(t *testing.T) {
	cases := []struct {
		samples  []sim.Time
		q        float64
		want     sim.Time
		describe string
	}{
		{[]sim.Time{sec(7)}, 0.50, sec(7), "n=1 p50"},
		{[]sim.Time{sec(7)}, 0.99, sec(7), "n=1 p99"},
		{[]sim.Time{sec(1), sec(9)}, 0.50, sec(1), "n=2 p50 rank ceil(1)=1"},
		{[]sim.Time{sec(1), sec(9)}, 0.99, sec(9), "n=2 p99 is the max"},
		{[]sim.Time{sec(1), sec(2), sec(9)}, 0.50, sec(2), "n=3 p50 rank ceil(1.5)=2"},
		{[]sim.Time{sec(1), sec(2), sec(9)}, 0.99, sec(9), "n=3 p99 is the max"},
		{[]sim.Time{sec(1), sec(2), sec(3), sec(9)}, 0.99, sec(9), "n=4 p99 is the max"},
		{[]sim.Time{sec(1), sec(2), sec(3), sec(4)}, 0.25, sec(1), "n=4 p25 rank ceil(1)=1"},
	}
	for _, c := range cases {
		if got := percentile(c.samples, c.q); got != c.want {
			t.Errorf("%s: got %v, want %v", c.describe, got, c.want)
		}
	}
}

// TestFmtLatAdaptive: sub-millisecond latencies render with microsecond
// precision instead of collapsing to "0s"; larger ones keep millisecond
// rounding.
func TestFmtLatAdaptive(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0s"},
		{450 * time.Microsecond, "450µs"},
		{999 * time.Microsecond, "999µs"},
		{1500 * time.Nanosecond, "2µs"},
		{time.Millisecond, "1ms"},
		{1500 * time.Millisecond, "1.5s"},
		{3 * time.Second, "3s"},
	}
	for _, c := range cases {
		if got := fmtLat(c.d); got != c.want {
			t.Errorf("fmtLat(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestQueueDepthGuards: negative depths clamp to zero (mean stays a
// depth) and the running sum saturates at MaxInt64 instead of wrapping
// negative.
func TestQueueDepthGuards(t *testing.T) {
	r := New()
	r.QueueDepth("ep", -5)
	r.QueueDepth("ep", 3)
	rep := r.Report()
	if len(rep.Queues) != 1 {
		t.Fatalf("queues = %+v, want 1 endpoint", rep.Queues)
	}
	q := rep.Queues[0]
	if q.Samples != 2 || q.MeanDepth != 1.5 || q.MaxDepth != 3 {
		t.Fatalf("queue stat = %+v, want samples=2 mean=1.5 max=3", q)
	}

	// Saturation: force the accumulator near the top, then add more.
	r.queues["ep"].sum = math.MaxInt64 - 1
	r.QueueDepth("ep", 10)
	if got := r.queues["ep"].sum; got != math.MaxInt64 {
		t.Fatalf("sum = %d, want saturated MaxInt64", got)
	}
	r.QueueDepth("ep", 10)
	if got := r.queues["ep"].sum; got != math.MaxInt64 {
		t.Fatalf("sum wrapped after saturation: %d", got)
	}
}

// TestRecorderConcurrentAccess hammers every mutating method from writer
// goroutines while readers render reports — the `dyflow-exp serve`
// pattern. Run under -race (make verify does) to make this meaningful.
func TestRecorderConcurrentAccess(t *testing.T) {
	r := New()
	reg := obs.NewRegistry()
	r.SetMetrics(reg)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := sec(w*1000 + i).String()
				r.Suggested(id, "W", "P", "ADDCPU", "PACE", sec(1), sec(2), sec(3))
				r.Received(id, sec(4))
				r.Planned(id, sec(5))
				r.Executed(id, sec(6))
				r.Inc("decision.suggestions", 1)
				r.SensorLag("PACE", sec(i%5))
				r.OpExecuted("start", sec(0), sec(i%3))
				r.QueueDepth("arbiter", i%7)
			}
		}(w)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				r.Report().Write(&buf)
				_ = r.Spans()
				_ = r.Counter("decision.suggestions")
				_ = r.SensorLagQuantile("PACE", 0.99)
				_ = r.QueueMaxDepth("arbiter")
				_ = reg.WritePrometheus(&buf)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("decision.suggestions"); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
	if len(r.Spans()) != 800 {
		t.Fatalf("spans = %d, want 800", len(r.Spans()))
	}
}

// TestSetMetricsMirrors: with a registry attached, counters, lags, ops,
// and queue depths surface as registry families — and the recorder's own
// report reads the same shared histogram storage (no double counting).
func TestSetMetricsMirrors(t *testing.T) {
	r := New()
	reg := obs.NewRegistry()
	r.SetMetrics(reg)
	fill(r)

	if v, ok := reg.Value("dyflow_stage_events_total"); !ok || v != 5 {
		t.Fatalf("stage events = %v (ok=%v), want 5", v, ok)
	}
	if v, ok := reg.Value("dyflow_sensor_lag_seconds"); !ok || v != 2 {
		t.Fatalf("sensor lag count = %v (ok=%v), want 2 observations", v, ok)
	}
	if v, ok := reg.Value("dyflow_actuation_op_seconds"); !ok || v != 2 {
		t.Fatalf("op latency count = %v (ok=%v), want 2 observations", v, ok)
	}
	if v, ok := reg.Value("dyflow_bus_queue_depth"); !ok || v != 3 {
		t.Fatalf("queue depth gauge = %v (ok=%v), want last depth 3", v, ok)
	}

	rep := r.Report()
	if len(rep.SensorLags) != 1 || rep.SensorLags[0].Count != 2 {
		t.Fatalf("report sensor lags = %+v", rep.SensorLags)
	}
	// Lags 1s and 2s land exactly on the 1 and 2.5-second bucket bounds.
	if rep.SensorLags[0].P50 != time.Second || rep.SensorLags[0].Max != 2*time.Second {
		t.Fatalf("lag stat = %+v, want p50=1s max=2s", rep.SensorLags[0])
	}
}

func TestReportAggregation(t *testing.T) {
	r := New()
	fill(r)
	rep := r.Report()

	// Only P1's two completed spans contribute stage rows; the dropped P2
	// span must not.
	for _, st := range rep.Stages {
		if st.Policy == "P2" {
			t.Fatalf("dropped policy P2 appeared in stage rows: %+v", st)
		}
		if st.Policy == "P1" && st.Count != 2 {
			t.Fatalf("stage %q count = %d, want 2", st.Stage, st.Count)
		}
	}
	if len(rep.Stages) != len(stageNames) {
		t.Fatalf("stage rows = %d, want %d", len(rep.Stages), len(stageNames))
	}
	// Span 1 total 8s, span 3 total 10s -> mean 9s.
	for _, st := range rep.Stages {
		if st.Stage == "total" && st.Mean != time.Duration(sec(9)) {
			t.Fatalf("total mean = %v, want 9s", st.Mean)
		}
	}
	if len(rep.SensorLags) != 1 || rep.SensorLags[0].Label != "PACE" || rep.SensorLags[0].Count != 2 {
		t.Fatalf("sensor lags = %+v", rep.SensorLags)
	}
	if len(rep.Ops) != 2 || rep.Ops[0].Label != "start" || rep.Ops[1].Label != "stop" {
		t.Fatalf("ops = %+v, want sorted [start stop]", rep.Ops)
	}
	if len(rep.Queues) != 1 || rep.Queues[0].MeanDepth != 2.0 || rep.Queues[0].MaxDepth != 3 {
		t.Fatalf("queues = %+v", rep.Queues)
	}
}

func TestReportDeterministicAndJSON(t *testing.T) {
	render := func() []byte {
		r := New()
		fill(r)
		var buf bytes.Buffer
		r.Report().Write(&buf)
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("equal recorders rendered different reports:\n%s\n---\n%s", a, b)
	}

	r := New()
	fill(r)
	data, err := json.Marshal(r.Report())
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 3 || len(back.Counters) != 2 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
}
