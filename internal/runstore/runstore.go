// Package runstore is the campaign service's durable run-history store:
// a segmented, compacting, indexed evolution of the flat ckpt WAL
// (ROADMAP's "Queryable run history" item). Every run-state transition
// is appended as one checksummed JSON record (ckpt framing, so torn
// tails are detected and dropped, never replayed); records carry a
// global monotonic sequence number, and the latest record per run wins.
// The log is split into size-rotated segments — one active, the rest
// sealed and immutable — and a background compactor rewrites sealed
// segments keeping only live (latest-per-run) records, with crash-safe
// tmp+fsync+rename swaps. Because recovery is latest-wins by sequence
// number and duplicate sequences are skipped, every compaction crash
// window (tmp leftover, renamed-but-not-deleted inputs, torn active
// tail) recovers to the pre-crash committed state.
//
// In-memory secondary indexes (tenant, scenario, submission-time order)
// serve filtered, cursor-paginated queries without touching disk except
// to read the selected records' payloads. With no directory the store
// is memory-only: same API, no files, no compaction.
package runstore

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dyflow/internal/ckpt"
	"dyflow/internal/obs"
)

// Defaults for Options' zero values.
const (
	DefaultSegmentBytes      = 4 << 20
	DefaultCompactMinRecords = 1024
	DefaultCompactFraction   = 0.5
)

// recordKind tags every framed record in a segment file.
const recordKind = "run"

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("runstore: store is closed")

// Options configures a store.
type Options struct {
	// Dir is the segment directory. "" keeps the store memory-only
	// (same API, no files, no compaction) — tests and persistence-off
	// servers use this.
	Dir string
	// SegmentBytes is the active segment's rotation threshold
	// (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// CompactMinRecords is the minimum count of dead sealed records
	// before auto-compaction triggers (0 = DefaultCompactMinRecords).
	CompactMinRecords int
	// CompactFraction is the dead/total fraction of sealed records that
	// triggers auto-compaction (0 = DefaultCompactFraction).
	CompactFraction float64
	// Metrics receives the dyflow_runstore_* families (nil = private).
	Metrics *obs.Registry
	// Logger receives recovery and compaction notes (nil = stderr).
	Logger *log.Logger
}

// Meta is the indexed summary of a run's latest record — everything the
// secondary indexes and list queries need without reading the full
// document back from disk.
type Meta struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Scenario string `json:"scenario,omitempty"`
	// Key is the job's deterministic cache key (result-cache rebuilds).
	Key       string `json:"key,omitempty"`
	State     string `json:"state"`
	Terminal  bool   `json:"terminal,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Converged bool   `json:"converged,omitempty"`
	// Tombstone marks a retention deletion: the run is dropped from all
	// indexes and its older records become compactable garbage.
	Tombstone bool `json:"tombstone,omitempty"`

	SubmittedAtNs int64 `json:"submitted_at_ns,omitempty"`
	QueuedAtNs    int64 `json:"queued_at_ns,omitempty"`
	ClaimedAtNs   int64 `json:"claimed_at_ns,omitempty"`
	StartedAtNs   int64 `json:"started_at_ns,omitempty"`
	FinishedAtNs  int64 `json:"finished_at_ns,omitempty"`
	SimEndNs      int64 `json:"sim_end_ns,omitempty"`

	// Artifacts maps artifact names to blob digests; ArtifactBytes is
	// their total stored size (retention's per-tenant byte accounting).
	Artifacts     map[string]string `json:"artifacts,omitempty"`
	ArtifactBytes int64             `json:"artifact_bytes,omitempty"`
}

// entry is the JSON payload inside each framed record.
type entry struct {
	Seq  uint64          `json:"seq"`
	Meta Meta            `json:"meta"`
	Doc  json.RawMessage `json:"doc,omitempty"`
}

// segment is one log file. The last segment is active (appended to);
// all others are sealed and immutable until compaction replaces them.
type segment struct {
	index   int
	path    string
	f       *os.File
	size    int64
	records int64
	live    int64
}

// runState is a run's in-memory index entry: its latest record's meta
// plus where the full document lives.
type runState struct {
	meta   Meta
	seq    uint64
	seg    *segment // nil in memory-only mode
	off    int64
	length int64
	memDoc []byte // memory-only mode keeps the doc resident
}

// Store is the run-history store. All methods are safe for concurrent
// use.
type Store struct {
	opt  Options
	dir  string // "" = memory-only
	logf func(string, ...any)

	mu         sync.RWMutex
	segs       []*segment // segs[len-1] is active
	runs       map[string]*runState
	tombs      map[string]uint64 // run ID → tombstone seq (not yet compacted away)
	order      []*runState       // by (SubmittedAtNs, ID)
	byTenant   map[string][]*runState
	byScenario map[string][]*runState
	nextSeq    uint64
	total      int64 // records across all segments (incl. tombstones)
	compacting bool
	closed     bool

	cwg sync.WaitGroup // in-flight background compactions

	met storeMetrics
}

type storeMetrics struct {
	segments     *obs.Gauge
	diskBytes    *obs.Gauge
	liveRecords  *obs.Gauge
	deadRecords  *obs.Gauge
	appends      *obs.Counter
	appendErrs   *obs.Counter
	rotations    *obs.Counter
	compactions  *obs.Counter
	dropped      *obs.Counter
	retention    *obs.Counter
	querySeconds *obs.Histogram
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return storeMetrics{
		segments: reg.Gauge("dyflow_runstore_segments",
			"Run-history log segments on disk (the last is active).").With(),
		diskBytes: reg.Gauge("dyflow_runstore_disk_bytes",
			"Total bytes across run-history segments.").With(),
		liveRecords: reg.Gauge("dyflow_runstore_records_live",
			"Runs whose latest record is retrievable (one live record each).").With(),
		deadRecords: reg.Gauge("dyflow_runstore_records_dead",
			"Superseded or tombstoned records awaiting compaction.").With(),
		appends: reg.Counter("dyflow_runstore_appends_total",
			"Run records appended to the history log.").With(),
		appendErrs: reg.Counter("dyflow_runstore_append_errors_total",
			"Run-record appends that failed; the transition is not in the history store.").With(),
		rotations: reg.Counter("dyflow_runstore_rotations_total",
			"Active-segment rotations (size threshold reached).").With(),
		compactions: reg.Counter("dyflow_runstore_compactions_total",
			"Sealed-segment compactions completed.").With(),
		dropped: reg.Counter("dyflow_runstore_compaction_dropped_total",
			"Dead records dropped by compaction.").With(),
		retention: reg.Counter("dyflow_runstore_retention_deleted_total",
			"Runs tombstoned by the retention policy.").With(),
		querySeconds: reg.Histogram("dyflow_runstore_query_seconds",
			"Indexed run-history query latency.", nil).With(),
	}
}

// Open opens (creating if needed) a store rooted at opt.Dir, recovering
// from whatever a crash left behind: leftover .tmp files are removed,
// torn segment tails truncated to the last good record, and duplicate
// records (an interrupted compaction's renamed-but-not-deleted inputs)
// deduplicated latest-wins by sequence number.
func Open(opt Options) (*Store, error) {
	logger := opt.Logger
	if logger == nil {
		logger = log.New(os.Stderr, "runstore: ", log.LstdFlags)
	}
	s := &Store{
		opt:        opt,
		dir:        opt.Dir,
		logf:       logger.Printf,
		runs:       map[string]*runState{},
		tombs:      map[string]uint64{},
		byTenant:   map[string][]*runState{},
		byScenario: map[string][]*runState{},
		nextSeq:    1,
		met:        newStoreMetrics(opt.Metrics),
	}
	if s.dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.updateGaugesLocked()
	return s, nil
}

func (s *Store) segmentBytes() int64 {
	if s.opt.SegmentBytes > 0 {
		return s.opt.SegmentBytes
	}
	return DefaultSegmentBytes
}

func segPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.log", index))
}

// frame holds one parsed record's location during recovery/compaction.
type frame struct {
	seq  uint64
	meta Meta
	off  int64
	len  int64
}

// scanSegment parses every well-framed record in data, returning the
// frames and the offset past the last good one (torn tails end there).
func scanSegment(data []byte) (frames []frame, good int64, torn bool) {
	br := bytes.NewReader(data)
	if err := ckpt.ReadHeader(br); err != nil {
		return nil, 0, len(data) > 0
	}
	off := int64(len(data)) - int64(br.Len())
	for {
		rec, err := ckpt.ReadRecord(br)
		end := int64(len(data)) - int64(br.Len())
		if errors.Is(err, io.EOF) {
			return frames, off, false
		}
		if err != nil {
			return frames, off, true
		}
		var e entry
		if rec.Kind != recordKind || json.Unmarshal(rec.Data, &e) != nil {
			// A checksummed frame with an unparseable payload: skip it as
			// dead bytes rather than truncating good records behind it.
			off = end
			continue
		}
		frames = append(frames, frame{seq: e.Seq, meta: e.Meta, off: off, len: end - off})
		off = end
	}
}

// recover scans the segment directory and rebuilds the indexes.
func (s *Store) recover() error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var indices []int
	for _, de := range names {
		name := de.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash mid-rotation or mid-compaction: the tmp was never
			// renamed, so its contents were never committed.
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		var idx int
		if n, err := fmt.Sscanf(name, "seg-%d.log", &idx); n == 1 && err == nil {
			indices = append(indices, idx)
		}
	}
	sort.Ints(indices)

	type segFrames struct {
		seg    *segment
		frames []frame
	}
	var scanned []segFrames
	maxSeq := uint64(0)
	for _, idx := range indices {
		path := segPath(s.dir, idx)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		frames, good, torn := scanSegment(data)
		if torn {
			s.logf("runstore: %s: torn tail; truncating %d -> %d bytes", filepath.Base(path), len(data), good)
			if good == 0 {
				// No readable header: reinitialize the file.
				if err := f.Truncate(0); err != nil {
					f.Close()
					return err
				}
				if err := ckpt.WriteHeader(f); err != nil {
					f.Close()
					return err
				}
				good = headerSize
			} else if err := f.Truncate(good); err != nil {
				f.Close()
				return err
			}
		}
		if good == 0 {
			// Empty pre-existing file (crash between create and header).
			if err := ckpt.WriteHeader(f); err != nil {
				f.Close()
				return err
			}
			good = headerSize
		}
		seg := &segment{index: idx, path: path, f: f, size: good, records: int64(len(frames))}
		scanned = append(scanned, segFrames{seg: seg, frames: frames})
		for _, fr := range frames {
			if fr.seq > maxSeq {
				maxSeq = fr.seq
			}
		}
	}
	s.nextSeq = maxSeq + 1

	// Fold latest-wins by sequence; equal sequences are duplicates from
	// an interrupted compaction (the renamed output plus a not-yet-deleted
	// input) and the first copy wins.
	for _, sf := range scanned {
		s.segs = append(s.segs, sf.seg)
		s.total += sf.seg.records
		for i := range sf.frames {
			fr := &sf.frames[i]
			id := fr.meta.ID
			if fr.meta.Tombstone {
				if cur, ok := s.tombs[id]; !ok || fr.seq > cur {
					s.tombs[id] = fr.seq
				}
				continue
			}
			if cur := s.runs[id]; cur == nil || fr.seq > cur.seq {
				s.runs[id] = &runState{meta: fr.meta, seq: fr.seq, seg: sf.seg, off: fr.off, length: fr.len}
			}
		}
	}
	// A tombstone supersedes every older record of its run.
	for id, tseq := range s.tombs {
		if rs := s.runs[id]; rs != nil {
			if rs.seq < tseq {
				delete(s.runs, id)
			} else {
				// The run was re-recorded after its tombstone (should not
				// happen; IDs are never reused) — the newer record wins.
				delete(s.tombs, id)
			}
		}
	}
	for _, rs := range s.runs {
		rs.seg.live++
	}

	// Build the ordered indexes in one sort instead of n insertions.
	s.order = make([]*runState, 0, len(s.runs))
	for _, rs := range s.runs {
		s.order = append(s.order, rs)
	}
	sort.Slice(s.order, func(i, j int) bool { return stateLess(s.order[i], s.order[j]) })
	for _, rs := range s.order {
		s.byTenant[rs.meta.Tenant] = append(s.byTenant[rs.meta.Tenant], rs)
		if rs.meta.Scenario != "" {
			s.byScenario[rs.meta.Scenario] = append(s.byScenario[rs.meta.Scenario], rs)
		}
	}

	if len(s.segs) == 0 {
		if err := s.addSegmentLocked(1); err != nil {
			return err
		}
	}
	return nil
}

// headerSize is the ckpt file header's length (magic + version).
const headerSize = 6

// stateLess orders index entries by (SubmittedAtNs, ID).
func stateLess(a, b *runState) bool {
	if a.meta.SubmittedAtNs != b.meta.SubmittedAtNs {
		return a.meta.SubmittedAtNs < b.meta.SubmittedAtNs
	}
	return a.meta.ID < b.meta.ID
}

// keyLess orders an index entry against a bare (ns, id) key.
func keyLess(rs *runState, ns int64, id string) bool {
	if rs.meta.SubmittedAtNs != ns {
		return rs.meta.SubmittedAtNs < ns
	}
	return rs.meta.ID < id
}

// addSegmentLocked creates a fresh active segment file with its header.
func (s *Store) addSegmentLocked(index int) error {
	path := segPath(s.dir, index)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := ckpt.WriteHeader(f); err != nil {
		f.Close()
		return err
	}
	s.segs = append(s.segs, &segment{index: index, path: path, f: f, size: headerSize})
	return nil
}

// Append records a run's current state. The latest append per run ID
// wins; older records become compactable garbage.
func (s *Store) Append(m Meta, doc []byte) error {
	s.mu.Lock()
	err := s.appendLocked(m, doc)
	compact := err == nil && s.needCompactLocked()
	if compact {
		s.compacting = true
		s.cwg.Add(1)
	}
	s.mu.Unlock()
	if compact {
		go s.compactOwned()
	}
	return err
}

func (s *Store) appendLocked(m Meta, doc []byte) error {
	if s.closed {
		return ErrClosed
	}
	seq := s.nextSeq
	s.nextSeq++
	if s.dir == "" {
		s.met.appends.Inc()
		s.total++
		s.applyLocked(m, seq, nil, 0, 0, append([]byte(nil), doc...))
		s.updateGaugesLocked()
		return nil
	}
	data, err := json.Marshal(entry{Seq: seq, Meta: m, Doc: doc})
	if err != nil {
		s.met.appendErrs.Inc()
		return err
	}
	var buf bytes.Buffer
	if err := ckpt.WriteRecord(&buf, ckpt.Record{Kind: recordKind, Data: data}); err != nil {
		s.met.appendErrs.Inc()
		return err
	}
	active := s.segs[len(s.segs)-1]
	if active.records > 0 && active.size+int64(buf.Len()) > s.segmentBytes() {
		if err := s.addSegmentLocked(active.index + 1); err != nil {
			s.met.appendErrs.Inc()
			return err
		}
		s.met.rotations.Inc()
		active = s.segs[len(s.segs)-1]
	}
	off := active.size
	if _, err := active.f.WriteAt(buf.Bytes(), off); err != nil {
		s.met.appendErrs.Inc()
		return err
	}
	active.size += int64(buf.Len())
	active.records++
	s.total++
	s.met.appends.Inc()
	s.applyLocked(m, seq, active, off, int64(buf.Len()), nil)
	s.updateGaugesLocked()
	return nil
}

// applyLocked folds one new record into the indexes.
func (s *Store) applyLocked(m Meta, seq uint64, seg *segment, off, length int64, memDoc []byte) {
	id := m.ID
	if m.Tombstone {
		if rs := s.runs[id]; rs != nil {
			s.removeIndexedLocked(rs)
		}
		s.tombs[id] = seq
		return
	}
	if rs := s.runs[id]; rs != nil {
		if rs.seg != nil {
			rs.seg.live--
		}
		rs.meta = m
		rs.seq = seq
		rs.seg = seg
		rs.off = off
		rs.length = length
		rs.memDoc = memDoc
		if seg != nil {
			seg.live++
		}
		return
	}
	rs := &runState{meta: m, seq: seq, seg: seg, off: off, length: length, memDoc: memDoc}
	s.runs[id] = rs
	if seg != nil {
		seg.live++
	}
	insert := func(list []*runState) []*runState {
		i := sort.Search(len(list), func(i int) bool { return !stateLess(list[i], rs) })
		list = append(list, nil)
		copy(list[i+1:], list[i:])
		list[i] = rs
		return list
	}
	s.order = insert(s.order)
	s.byTenant[m.Tenant] = insert(s.byTenant[m.Tenant])
	if m.Scenario != "" {
		s.byScenario[m.Scenario] = insert(s.byScenario[m.Scenario])
	}
}

// removeIndexedLocked drops a run from every index (tombstoning).
func (s *Store) removeIndexedLocked(rs *runState) {
	delete(s.runs, rs.meta.ID)
	if rs.seg != nil {
		rs.seg.live--
	}
	remove := func(list []*runState) []*runState {
		i := sort.Search(len(list), func(i int) bool {
			return !keyLess(list[i], rs.meta.SubmittedAtNs, rs.meta.ID)
		})
		for ; i < len(list); i++ {
			if list[i] == rs {
				return append(list[:i], list[i+1:]...)
			}
		}
		return list
	}
	s.order = remove(s.order)
	s.byTenant[rs.meta.Tenant] = remove(s.byTenant[rs.meta.Tenant])
	if len(s.byTenant[rs.meta.Tenant]) == 0 {
		delete(s.byTenant, rs.meta.Tenant)
	}
	if rs.meta.Scenario != "" {
		s.byScenario[rs.meta.Scenario] = remove(s.byScenario[rs.meta.Scenario])
		if len(s.byScenario[rs.meta.Scenario]) == 0 {
			delete(s.byScenario, rs.meta.Scenario)
		}
	}
}

func (s *Store) updateGaugesLocked() {
	live := int64(len(s.runs))
	var diskBytes int64
	for _, seg := range s.segs {
		diskBytes += seg.size
	}
	s.met.segments.Set(float64(len(s.segs)))
	s.met.diskBytes.Set(float64(diskBytes))
	s.met.liveRecords.Set(float64(live))
	s.met.deadRecords.Set(float64(s.total - live))
}

// readDocLocked reads a run's full document back. Caller holds at least
// the read lock (segment handles are closed only under the write lock).
func (s *Store) readDocLocked(rs *runState) ([]byte, error) {
	if rs.seg == nil {
		return append([]byte(nil), rs.memDoc...), nil
	}
	buf := make([]byte, rs.length)
	if _, err := rs.seg.f.ReadAt(buf, rs.off); err != nil {
		return nil, err
	}
	rec, err := ckpt.ReadRecord(bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	var e entry
	if err := json.Unmarshal(rec.Data, &e); err != nil {
		return nil, err
	}
	return e.Doc, nil
}

// Item is one query result: the indexed meta plus the full document.
type Item struct {
	Meta Meta
	Doc  []byte
}

// Get returns a run's latest record (ok=false: unknown or tombstoned).
func (s *Store) Get(id string) (Item, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs := s.runs[id]
	if rs == nil {
		return Item{}, false
	}
	doc, err := s.readDocLocked(rs)
	if err != nil {
		s.logf("runstore: read %s: %v", id, err)
		return Item{Meta: rs.meta}, true
	}
	return Item{Meta: rs.meta, Doc: doc}, true
}

// GetMeta returns a run's indexed meta without touching disk.
func (s *Store) GetMeta(id string) (Meta, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs := s.runs[id]
	if rs == nil {
		return Meta{}, false
	}
	return rs.meta, true
}

// Len returns the live run count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.runs)
}

// EachMeta calls fn for every live run in submission order until fn
// returns false. fn must not call back into the store's locked methods.
func (s *Store) EachMeta(fn func(Meta) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rs := range s.order {
		if !fn(rs.meta) {
			return
		}
	}
}

// Digests returns the set of artifact blob digests referenced by any
// live run — the keep-set for blob GC.
func (s *Store) Digests() map[string]bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keep := make(map[string]bool)
	for _, rs := range s.runs {
		for _, d := range rs.meta.Artifacts {
			keep[d] = true
		}
	}
	return keep
}

// Stats is the store's record accounting (tests and diagnostics).
type Stats struct {
	Segments     int
	LiveRecords  int64
	DeadRecords  int64
	TotalRecords int64
	DiskBytes    int64
}

// Stats returns the current record accounting.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Segments: len(s.segs), LiveRecords: int64(len(s.runs)), TotalRecords: s.total}
	st.DeadRecords = st.TotalRecords - st.LiveRecords
	for _, seg := range s.segs {
		st.DiskBytes += seg.size
	}
	return st
}

// Close flushes nothing (appends are written through), waits for any
// in-flight compaction, and closes the segment handles.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cwg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		seg.f.Close()
	}
	return nil
}

// Query filters and paginates the run history.
type Query struct {
	Tenant   string
	Scenario string
	State    string
	// Since/Until bound SubmittedAt (inclusive; zero = unbounded).
	Since time.Time
	Until time.Time
	// Limit caps the page size (<= 0: unlimited, internal callers).
	Limit int
	// PageToken resumes after a previous page's NextPageToken.
	PageToken string
}

// Page is one query result page. NextPageToken is "" on the last page.
type Page struct {
	Items         []Item
	NextPageToken string
}

// encodePageToken/decodePageToken round-trip the cursor: the last
// delivered run's (SubmittedAtNs, ID), resumed strictly-after.
func encodePageToken(ns int64, id string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(fmt.Sprintf("%d|%s", ns, id)))
}

func decodePageToken(tok string) (ns int64, id string, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, "", fmt.Errorf("runstore: bad page token")
	}
	parts := strings.SplitN(string(raw), "|", 2)
	if len(parts) != 2 {
		return 0, "", fmt.Errorf("runstore: bad page token")
	}
	if _, err := fmt.Sscanf(parts[0], "%d", &ns); err != nil {
		return 0, "", fmt.Errorf("runstore: bad page token")
	}
	return ns, parts[1], nil
}

// Query runs one indexed, filtered, cursor-paginated query. Results are
// in (SubmittedAt, ID) order; a page token from any page resumes exactly
// after its last item, so walking pages yields every match exactly once
// even as new runs are appended behind the cursor.
func (s *Store) Query(q Query) (Page, error) {
	start := time.Now()
	defer func() { s.met.querySeconds.Observe(time.Since(start).Seconds()) }()

	var curNs int64
	var curID string
	hasCursor := false
	if q.PageToken != "" {
		var err error
		if curNs, curID, err = decodePageToken(q.PageToken); err != nil {
			return Page{}, err
		}
		hasCursor = true
	}

	s.mu.RLock()
	defer s.mu.RUnlock()

	// Pick the narrowest index; remaining filters apply during the scan.
	src := s.order
	if q.Tenant != "" {
		src = s.byTenant[q.Tenant]
	} else if q.Scenario != "" {
		src = s.byScenario[q.Scenario]
	}

	i := 0
	if !q.Since.IsZero() {
		sinceNs := q.Since.UnixNano()
		i = sort.Search(len(src), func(i int) bool { return src[i].meta.SubmittedAtNs >= sinceNs })
	}
	if hasCursor {
		j := sort.Search(len(src), func(i int) bool { return !keyLess(src[i], curNs, curID) })
		// Resume strictly after the cursor entry itself.
		if j < len(src) && src[j].meta.SubmittedAtNs == curNs && src[j].meta.ID == curID {
			j++
		}
		if j > i {
			i = j
		}
	}
	var untilNs int64
	if !q.Until.IsZero() {
		untilNs = q.Until.UnixNano()
	}

	match := func(rs *runState) bool {
		if q.Tenant != "" && rs.meta.Tenant != q.Tenant {
			return false
		}
		if q.Scenario != "" && rs.meta.Scenario != q.Scenario {
			return false
		}
		if q.State != "" && rs.meta.State != q.State {
			return false
		}
		return true
	}

	var page Page
	for ; i < len(src); i++ {
		rs := src[i]
		if untilNs != 0 && rs.meta.SubmittedAtNs > untilNs {
			break
		}
		if !match(rs) {
			continue
		}
		if q.Limit > 0 && len(page.Items) == q.Limit {
			// One more match exists past the full page: hand out a cursor.
			last := page.Items[len(page.Items)-1].Meta
			page.NextPageToken = encodePageToken(last.SubmittedAtNs, last.ID)
			return page, nil
		}
		doc, err := s.readDocLocked(rs)
		if err != nil {
			s.logf("runstore: read %s: %v", rs.meta.ID, err)
		}
		page.Items = append(page.Items, Item{Meta: rs.meta, Doc: doc})
	}
	return page, nil
}
