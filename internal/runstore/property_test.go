package runstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// Satellite: for randomized run populations, every filtered/paginated
// query must match a naive in-memory filter — no missing, duplicated,
// or misordered runs across page boundaries.

func TestQueryMatchesNaiveFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD1F70))
	tenants := []string{"t0", "t1", "t2", ""}
	scenarios := []string{"quickstart", "grayscott", "xgc", ""}
	states := []string{"queued", "running", "done", "failed", "canceled"}

	for trial := 0; trial < 8; trial++ {
		dirs := []string{"", t.TempDir()}
		dir := dirs[trial%2]
		opt := Options{Dir: dir, SegmentBytes: int64(512 + rng.Intn(4096)), CompactMinRecords: 1 << 30}
		s, err := Open(opt)
		if err != nil {
			t.Fatal(err)
		}

		// Random population: random attributes, clustered submit times
		// (duplicate SubmittedAtNs values stress the (ns, id) tiebreak),
		// some runs re-appended (supersede), some tombstoned.
		n := 50 + rng.Intn(300)
		live := make(map[string]Meta)
		for i := 0; i < n; i++ {
			m := Meta{
				ID:            fmt.Sprintf("run-%06d", i),
				Tenant:        tenants[rng.Intn(len(tenants))],
				Scenario:      scenarios[rng.Intn(len(scenarios))],
				State:         states[rng.Intn(len(states))],
				SubmittedAtNs: int64(1_000_000_000 + rng.Intn(50)*1_000_000),
			}
			if err := s.Append(m, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
				t.Fatal(err)
			}
			live[m.ID] = m
		}
		for i := 0; i < n/4; i++ {
			id := fmt.Sprintf("run-%06d", rng.Intn(n))
			m := live[id]
			m.State = states[rng.Intn(len(states))]
			if err := s.Append(m, []byte(`{"superseded":true}`)); err != nil {
				t.Fatal(err)
			}
			live[id] = m
		}
		for i := 0; i < n/10; i++ {
			id := fmt.Sprintf("run-%06d", rng.Intn(n))
			m, ok := live[id]
			if !ok {
				continue
			}
			if err := s.Append(Meta{ID: id, Tenant: m.Tenant, Tombstone: true}, nil); err != nil {
				t.Fatal(err)
			}
			delete(live, id)
		}
		if trial%4 >= 2 && dir != "" {
			// Half the on-disk trials also exercise recovery + compaction
			// before querying.
			s.Close()
			if s, err = Open(opt); err != nil {
				t.Fatal(err)
			}
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}

		// Random queries, each fully paginated and checked against the
		// naive filter over the live population.
		for qi := 0; qi < 20; qi++ {
			q := Query{
				Tenant:   tenants[rng.Intn(len(tenants))],
				Scenario: scenarios[rng.Intn(len(scenarios))],
				State:    states[rng.Intn(len(states))],
			}
			if rng.Intn(2) == 0 {
				q.Scenario = ""
			}
			if rng.Intn(2) == 0 {
				q.State = ""
			}
			if rng.Intn(3) == 0 {
				q.Since = time.Unix(0, int64(1_000_000_000+rng.Intn(50)*1_000_000))
			}
			if rng.Intn(3) == 0 {
				q.Until = time.Unix(0, int64(1_000_000_000+rng.Intn(50)*1_000_000))
			}
			limit := 1 + rng.Intn(17)

			var want []Meta
			for _, m := range live {
				if q.Tenant != "" && m.Tenant != q.Tenant {
					continue
				}
				if q.Scenario != "" && m.Scenario != q.Scenario {
					continue
				}
				if q.State != "" && m.State != q.State {
					continue
				}
				if !q.Since.IsZero() && m.SubmittedAtNs < q.Since.UnixNano() {
					continue
				}
				if !q.Until.IsZero() && m.SubmittedAtNs > q.Until.UnixNano() {
					continue
				}
				want = append(want, m)
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].SubmittedAtNs != want[j].SubmittedAtNs {
					return want[i].SubmittedAtNs < want[j].SubmittedAtNs
				}
				return want[i].ID < want[j].ID
			})

			var got []Meta
			tok := ""
			pages := 0
			for {
				pq := q
				pq.Limit = limit
				pq.PageToken = tok
				page, err := s.Query(pq)
				if err != nil {
					t.Fatalf("trial %d query %d: %v", trial, qi, err)
				}
				if len(page.Items) > limit {
					t.Fatalf("trial %d query %d: page of %d exceeds limit %d", trial, qi, len(page.Items), limit)
				}
				for _, it := range page.Items {
					got = append(got, it.Meta)
				}
				pages++
				if page.NextPageToken == "" {
					break
				}
				if len(page.Items) == 0 {
					t.Fatalf("trial %d query %d: empty page with a next token", trial, qi)
				}
				tok = page.NextPageToken
				if pages > n+10 {
					t.Fatalf("trial %d query %d: pagination did not terminate", trial, qi)
				}
			}

			if len(got) != len(want) {
				t.Fatalf("trial %d query %d (%+v limit=%d): got %d runs, want %d",
					trial, qi, q, limit, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID {
					t.Fatalf("trial %d query %d: position %d = %s, want %s (missing/dup/misorder across pages)",
						trial, qi, i, got[i].ID, want[i].ID)
				}
				if got[i].State != want[i].State {
					t.Fatalf("trial %d query %d: %s state = %s, want %s",
						trial, qi, got[i].ID, got[i].State, want[i].State)
				}
			}
		}
		s.Close()
	}
}
