package runstore

import (
	"fmt"
	"testing"
	"time"
)

// benchDoc approximates a real persistedRun document (~300 bytes).
func benchDoc(i int) []byte {
	return []byte(fmt.Sprintf(`{"id":"run-%06d","tenant":"t%d","state":"done","job":{"scenario":"quickstart","machine":"small","seed":%d},"artifacts":{"report":"sha256:%064d","gantt":"sha256:%064d"},"sim_end_ns":120000000000,"submitted_at":"2026-08-08T00:00:00Z","finished_at":"2026-08-08T00:02:00Z"}`,
		i, i%8, i, i, i+1))
}

func benchMeta(i int) Meta {
	return Meta{
		ID:            fmt.Sprintf("run-%06d", i),
		Tenant:        fmt.Sprintf("t%d", i%8),
		Scenario:      []string{"quickstart", "grayscott", "xgc", "lammps"}[i%4],
		Key:           fmt.Sprintf("key-%06d", i),
		State:         []string{"done", "failed", "done", "done", "canceled"}[i%5],
		Terminal:      true,
		SubmittedAtNs: int64(1_000_000_000 + i*1_000_000),
		FinishedAtNs:  int64(1_000_000_000 + i*1_000_000 + 5_000_000),
		ArtifactBytes: 4096,
	}
}

// BenchmarkIngest measures raw append throughput to the segmented log.
func BenchmarkIngest(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := s.Append(benchMeta(i), benchDoc(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el, "appends/s")
	}
}

// populate fills a store with n terminal runs (untimed).
func populate(b *testing.B, s *Store, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		if err := s.Append(benchMeta(i), benchDoc(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexedQuery100k is the acceptance benchmark: an indexed
// filtered query (tenant + state + time range, limit 100) over a store
// holding 100k runs. ns/op must stay under 10ms.
func BenchmarkIndexedQuery100k(b *testing.B) {
	const n = 100_000
	s, err := Open(Options{Dir: b.TempDir(), SegmentBytes: 32 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	populate(b, s, n)
	q := Query{
		Tenant: "t3",
		State:  "done",
		Since:  time.Unix(0, benchMeta(n/4).SubmittedAtNs),
		Until:  time.Unix(0, benchMeta(3*n/4).SubmittedAtNs),
		Limit:  100,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var items int
	for i := 0; i < b.N; i++ {
		page, err := s.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		items += len(page.Items)
	}
	b.StopTimer()
	if items == 0 {
		b.Fatal("query matched nothing; benchmark is vacuous")
	}
	b.ReportMetric(float64(items)/float64(b.N), "items/query")
}

// BenchmarkCompaction measures live-record rewrite throughput: 100k
// records across sealed segments, half superseded (dead).
func BenchmarkCompaction(b *testing.B) {
	const n = 50_000
	b.ReportAllocs()
	var records, secs float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := Open(Options{Dir: b.TempDir(), SegmentBytes: 4 << 20, CompactMinRecords: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		populate(b, s, n)
		populate(b, s, n) // supersede every run once: 50% dead
		total := float64(s.Stats().TotalRecords)
		b.StartTimer()
		start := time.Now()
		if err := s.Compact(); err != nil {
			b.Fatal(err)
		}
		secs += time.Since(start).Seconds()
		records += total
		b.StopTimer()
		if s.Stats().LiveRecords != n {
			b.Fatalf("compaction lost records: %d live", s.Stats().LiveRecords)
		}
		s.Close()
		b.StartTimer()
	}
	if secs > 0 {
		b.ReportMetric(records/secs, "records/s")
	}
}
