package runstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Satellite: kill -9 crash recovery mid-rotation and mid-compaction.
// Each test hand-crafts the exact on-disk state a crash window leaves
// behind — partial .tmp output, renamed-but-not-deleted inputs
// (duplicate records), torn frames mid-rotation — and asserts the store
// recovers every acknowledged run with its committed latest state.

// seedSegments fills a store with n runs across several small segments
// plus one superseding rewrite of each, then closes it and returns the
// expected latest docs.
func seedSegments(t *testing.T, dir string, n int) map[string]string {
	t.Helper()
	s, err := Open(Options{Dir: dir, SegmentBytes: 1024, CompactMinRecords: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	for i := 0; i < n; i++ {
		m := mkMeta(i, "t0", "quickstart", "running")
		m.Terminal = false
		if err := s.Append(m, []byte(fmt.Sprintf(`{"gen":1,"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m := mkMeta(i, "t0", "quickstart", "done")
		doc := fmt.Sprintf(`{"gen":2,"i":%d}`, i)
		if err := s.Append(m, []byte(doc)); err != nil {
			t.Fatal(err)
		}
		want[m.ID] = doc
	}
	if s.Stats().Segments < 3 {
		t.Fatalf("seed produced only %d segments; lower SegmentBytes", s.Stats().Segments)
	}
	s.Close()
	return want
}

func verifyRecovered(t *testing.T, dir string, want map[string]string) {
	t.Helper()
	s, err := Open(Options{Dir: dir, SegmentBytes: 1024})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer s.Close()
	if s.Len() != len(want) {
		t.Fatalf("recovered %d runs, want %d", s.Len(), len(want))
	}
	for id, doc := range want {
		it, ok := s.Get(id)
		if !ok {
			t.Fatalf("run %s lost", id)
		}
		if string(it.Doc) != doc {
			t.Fatalf("run %s: doc = %s, want %s", id, it.Doc, doc)
		}
		if it.Meta.State != "done" {
			t.Fatalf("run %s: state = %s, want done", id, it.Meta.State)
		}
	}
	// The recovered store must still accept writes and survive another
	// reopen (recovery leaves a consistent, appendable log).
	m := mkMeta(9999, "t0", "quickstart", "done")
	if err := s.Append(m, []byte(`{"post":true}`)); err != nil {
		t.Fatalf("post-recovery append: %v", err)
	}
}

func TestCrashMidCompactionPartialTmp(t *testing.T) {
	dir := t.TempDir()
	want := seedSegments(t, dir, 30)
	// Crash before the rename: the compactor died with half its output
	// written. The tmp holds real (committed-elsewhere) frames plus a
	// torn one — none of it may be read back as state.
	data, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	tmp := segPath(dir, 1) + ".tmp"
	if err := os.WriteFile(tmp, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	verifyRecovered(t, dir, want)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("partial compaction tmp survived recovery")
	}
}

func TestCrashMidCompactionRenamedNotDeleted(t *testing.T) {
	dir := t.TempDir()
	want := seedSegments(t, dir, 30)

	// Run a real compaction but crash before input deletion: every input
	// beyond the first is still present, so each surviving run's record
	// now exists twice with the same sequence number.
	s, err := Open(Options{Dir: dir, SegmentBytes: 1024, CompactMinRecords: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// Preserve the doomed inputs, compact, then restore them — the
	// on-disk result is exactly the rename-committed, deletes-lost state.
	var saved []struct {
		path string
		data []byte
	}
	for _, seg := range s.segs[:len(s.segs)-1] {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			t.Fatal(err)
		}
		saved = append(saved, struct {
			path string
			data []byte
		}{seg.path, data})
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	for _, sv := range saved[1:] { // saved[0]'s path now holds the output
		if err := os.WriteFile(sv.path, sv.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	verifyRecovered(t, dir, want)
}

func TestCrashMidRotationTornFirstRecord(t *testing.T) {
	dir := t.TempDir()
	want := seedSegments(t, dir, 30)
	// Crash right after rotation wrote the new active segment's header
	// and part of its first record.
	var maxIdx int
	entries, _ := os.ReadDir(dir)
	for _, de := range entries {
		var idx int
		if n, _ := fmt.Sscanf(de.Name(), "seg-%d.log", &idx); n == 1 && idx > maxIdx {
			maxIdx = idx
		}
	}
	next := segPath(dir, maxIdx+1)
	f, err := os.Create(next)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("DYCK")) // magic only — version and record torn off
	f.Close()
	verifyRecovered(t, dir, want)
}

func TestCrashMidRotationEmptyNewSegment(t *testing.T) {
	dir := t.TempDir()
	want := seedSegments(t, dir, 30)
	// Crash between create and header write: a zero-byte segment file.
	var maxIdx int
	entries, _ := os.ReadDir(dir)
	for _, de := range entries {
		var idx int
		if n, _ := fmt.Sscanf(de.Name(), "seg-%d.log", &idx); n == 1 && idx > maxIdx {
			maxIdx = idx
		}
	}
	if err := os.WriteFile(segPath(dir, maxIdx+1), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	verifyRecovered(t, dir, want)
}

func TestCrashGarbageTailEverySegment(t *testing.T) {
	dir := t.TempDir()
	want := seedSegments(t, dir, 30)
	// Pathological page-cache loss: every segment has trailing garbage.
	entries, _ := os.ReadDir(dir)
	for _, de := range entries {
		path := filepath.Join(dir, de.Name())
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte{0xff, 0x00, 0x13, 0x37})
		f.Close()
	}
	verifyRecovered(t, dir, want)
}
