package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"
)

// mkMeta builds a deterministic terminal run meta. Submission times are
// spaced 1ms apart so ordering is unambiguous.
func mkMeta(i int, tenant, scenario, state string) Meta {
	terminal := state == "done" || state == "failed" || state == "canceled"
	m := Meta{
		ID:            fmt.Sprintf("run-%06d", i),
		Tenant:        tenant,
		Scenario:      scenario,
		Key:           fmt.Sprintf("key-%06d", i),
		State:         state,
		Terminal:      terminal,
		SubmittedAtNs: int64(1_000_000_000 + i*1_000_000),
	}
	if terminal {
		m.FinishedAtNs = m.SubmittedAtNs + 5_000_000
	}
	return m
}

func mkDoc(i int) []byte {
	doc, _ := json.Marshal(map[string]any{"id": fmt.Sprintf("run-%06d", i), "payload": i})
	return doc
}

func openStore(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	opt.Dir = dir
	s, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAppendGetRoundTrip(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "disk"
		if dir == "" {
			name = "memory"
		}
		t.Run(name, func(t *testing.T) {
			s := openStore(t, dir, Options{})
			for i := 0; i < 10; i++ {
				if err := s.Append(mkMeta(i, "t0", "quickstart", "done"), mkDoc(i)); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			it, ok := s.Get("run-000007")
			if !ok {
				t.Fatal("run-000007 missing")
			}
			if string(it.Doc) != string(mkDoc(7)) {
				t.Fatalf("doc mismatch: %s", it.Doc)
			}
			if it.Meta.Tenant != "t0" || it.Meta.State != "done" {
				t.Fatalf("meta mismatch: %+v", it.Meta)
			}
			if _, ok := s.Get("run-999999"); ok {
				t.Fatal("nonexistent run found")
			}
			if s.Len() != 10 {
				t.Fatalf("Len = %d, want 10", s.Len())
			}
		})
	}
}

func TestLatestRecordWins(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	m := mkMeta(0, "t0", "quickstart", "queued")
	m.Terminal = false
	if err := s.Append(m, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	m.State, m.Terminal = "running", false
	if err := s.Append(m, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	m.State, m.Terminal = "done", true
	if err := s.Append(m, []byte(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	it, _ := s.Get(m.ID)
	if it.Meta.State != "done" || string(it.Doc) != `{"v":3}` {
		t.Fatalf("latest record not served: %+v %s", it.Meta, it.Doc)
	}
	st := s.Stats()
	if st.LiveRecords != 1 || st.DeadRecords != 2 {
		t.Fatalf("stats = %+v, want 1 live / 2 dead", st)
	}
	s.Close()

	// Recovery must also pick the latest record.
	s2 := openStore(t, dir, Options{})
	it, ok := s2.Get(m.ID)
	if !ok || it.Meta.State != "done" || string(it.Doc) != `{"v":3}` {
		t.Fatalf("after reopen: %+v %s (ok=%v)", it.Meta, it.Doc, ok)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{SegmentBytes: 2048})
	for i := 0; i < 100; i++ {
		if err := s.Append(mkMeta(i, "t0", "quickstart", "done"), mkDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	s.Close()

	s2 := openStore(t, dir, Options{SegmentBytes: 2048})
	if s2.Len() != 100 {
		t.Fatalf("after reopen Len = %d, want 100", s2.Len())
	}
	for i := 0; i < 100; i++ {
		it, ok := s2.Get(fmt.Sprintf("run-%06d", i))
		if !ok || string(it.Doc) != string(mkDoc(i)) {
			t.Fatalf("run %d lost or corrupt after rotation+reopen", i)
		}
	}
}

func TestCompactionReclaimsDeadRecords(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{SegmentBytes: 2048, CompactMinRecords: 1 << 30})
	// Three generations of the same 40 runs: 2/3 of records are dead.
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 40; i++ {
			m := mkMeta(i, "t0", "quickstart", "done")
			if err := s.Append(m, mkDoc(i+gen*1000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.Stats()
	if before.DeadRecords != 80 {
		t.Fatalf("dead = %d, want 80", before.DeadRecords)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.LiveRecords != 40 {
		t.Fatalf("live = %d, want 40", after.LiveRecords)
	}
	if after.TotalRecords >= before.TotalRecords {
		t.Fatalf("compaction reclaimed nothing: %d -> %d records", before.TotalRecords, after.TotalRecords)
	}
	if after.DiskBytes >= before.DiskBytes {
		t.Fatalf("compaction reclaimed no bytes: %d -> %d", before.DiskBytes, after.DiskBytes)
	}
	// Every run still serves its latest doc.
	for i := 0; i < 40; i++ {
		it, ok := s.Get(fmt.Sprintf("run-%06d", i))
		if !ok || string(it.Doc) != string(mkDoc(i+2000)) {
			t.Fatalf("run %d wrong after compaction: %s", i, it.Doc)
		}
	}
	s.Close()
	s2 := openStore(t, dir, Options{SegmentBytes: 2048})
	if s2.Len() != 40 {
		t.Fatalf("after reopen Len = %d, want 40", s2.Len())
	}
}

func TestTombstoneDeletesAcrossReopenAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{SegmentBytes: 1024, CompactMinRecords: 1 << 30})
	for i := 0; i < 20; i++ {
		if err := s.Append(mkMeta(i, "t0", "quickstart", "done"), mkDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(Meta{ID: "run-000003", Tenant: "t0", Tombstone: true}, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("run-000003"); ok {
		t.Fatal("tombstoned run still served")
	}
	s.Close()

	s2 := openStore(t, dir, Options{SegmentBytes: 1024, CompactMinRecords: 1 << 30})
	if _, ok := s2.Get("run-000003"); ok {
		t.Fatal("tombstoned run resurrected by reopen")
	}
	if s2.Len() != 19 {
		t.Fatalf("Len = %d, want 19", s2.Len())
	}
	// Force rotation so the tombstone seals, then compact: the
	// tombstone and the deleted run's records all vanish.
	for i := 100; i < 140; i++ {
		if err := s2.Append(mkMeta(i, "t0", "quickstart", "done"), mkDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("run-000003"); ok {
		t.Fatal("tombstoned run back after compaction")
	}
	s2.Close()
	s3 := openStore(t, dir, Options{})
	if _, ok := s3.Get("run-000003"); ok {
		t.Fatal("tombstoned run back after compaction+reopen")
	}
	if s3.Len() != 59 {
		t.Fatalf("Len = %d, want 59", s3.Len())
	}
}

func TestSweepRetentionMaxAge(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	now := time.Unix(100_000, 0)
	old := mkMeta(0, "t0", "quickstart", "done")
	old.FinishedAtNs = now.Add(-2 * time.Hour).UnixNano()
	fresh := mkMeta(1, "t0", "quickstart", "done")
	fresh.FinishedAtNs = now.Add(-time.Minute).UnixNano()
	pending := mkMeta(2, "t0", "quickstart", "running")
	pending.Terminal = false
	for _, m := range []Meta{old, fresh, pending} {
		if err := s.Append(m, mkDoc(0)); err != nil {
			t.Fatal(err)
		}
	}
	victims := s.SweepRetention(Retention{MaxAge: time.Hour}, now)
	if len(victims) != 1 || victims[0].ID != old.ID {
		t.Fatalf("victims = %+v, want just %s", victims, old.ID)
	}
	if _, ok := s.Get(old.ID); ok {
		t.Fatal("aged-out run still served")
	}
	if _, ok := s.Get(fresh.ID); !ok {
		t.Fatal("fresh run deleted")
	}
	if _, ok := s.Get(pending.ID); !ok {
		t.Fatal("non-terminal run deleted by retention")
	}
}

func TestSweepRetentionMaxBytesPerTenant(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	// Tenant t0: three terminal runs of 100 bytes each, finished in
	// order; budget 250 keeps the newest two. Tenant t1 is under budget.
	for i := 0; i < 3; i++ {
		m := mkMeta(i, "t0", "quickstart", "done")
		m.ArtifactBytes = 100
		m.FinishedAtNs = int64(10_000_000_000 + i*1_000_000_000)
		if err := s.Append(m, mkDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	m := mkMeta(10, "t1", "quickstart", "done")
	m.ArtifactBytes = 100
	m.FinishedAtNs = 1
	if err := s.Append(m, mkDoc(10)); err != nil {
		t.Fatal(err)
	}
	victims := s.SweepRetention(Retention{MaxBytes: 250}, time.Unix(1000, 0))
	if len(victims) != 1 || victims[0].ID != "run-000000" {
		t.Fatalf("victims = %+v, want just run-000000 (the oldest-finished over budget)", victims)
	}
	if _, ok := s.Get("run-000010"); !ok {
		t.Fatal("under-budget tenant's run deleted")
	}
}

func TestQueryFiltersAndPagination(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	states := []string{"done", "failed", "done", "canceled"}
	for i := 0; i < 40; i++ {
		tenant := fmt.Sprintf("t%d", i%2)
		scenario := []string{"quickstart", "grayscott"}[i%2]
		if err := s.Append(mkMeta(i, tenant, scenario, states[i%4]), mkDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	page, err := s.Query(Query{Tenant: "t0", State: "done", Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	// t0 runs are even i; "done" are i%4 in {0, 2} — all even i qualify.
	if len(page.Items) != 20 {
		t.Fatalf("got %d items, want 20", len(page.Items))
	}
	if page.NextPageToken != "" {
		t.Fatalf("unexpected next page token %q", page.NextPageToken)
	}

	// Paginate in pages of 3 and verify exact coverage and order.
	var all []string
	tok := ""
	pages := 0
	for {
		p, err := s.Query(Query{Tenant: "t0", State: "done", Limit: 3, PageToken: tok})
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range p.Items {
			all = append(all, it.Meta.ID)
		}
		pages++
		if p.NextPageToken == "" {
			break
		}
		tok = p.NextPageToken
		if pages > 50 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(all) != 20 {
		t.Fatalf("paginated total = %d, want 20", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatalf("pagination misordered: %s after %s", all[i], all[i-1])
		}
	}

	// Time range: runs 10..19 inclusive by SubmittedAt.
	since := time.Unix(0, mkMeta(10, "", "", "done").SubmittedAtNs)
	until := time.Unix(0, mkMeta(19, "", "", "done").SubmittedAtNs)
	p, err := s.Query(Query{Since: since, Until: until})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Items) != 10 {
		t.Fatalf("time-range query: %d items, want 10", len(p.Items))
	}

	// Bad page token is an error, not a silent full scan.
	if _, err := s.Query(Query{PageToken: "not base64!"}); err == nil {
		t.Fatal("bad page token accepted")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Append(mkMeta(i, "t0", "quickstart", "done"), mkDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Append garbage — a torn frame from a crash mid-write.
	path := segPath(dir, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Close()

	s2 := openStore(t, dir, Options{})
	if s2.Len() != 5 {
		t.Fatalf("Len = %d after torn tail, want 5", s2.Len())
	}
	// The truncation must leave the file appendable again.
	if err := s2.Append(mkMeta(5, "t0", "quickstart", "done"), mkDoc(5)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openStore(t, dir, Options{})
	if s3.Len() != 6 {
		t.Fatalf("Len = %d after truncate+append+reopen, want 6", s3.Len())
	}
}

func TestLeftoverTmpRemoved(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	s.Append(mkMeta(0, "t0", "quickstart", "done"), mkDoc(0))
	s.Close()
	tmp := segPath(dir, 1) + ".tmp"
	if err := os.WriteFile(tmp, []byte("partial compaction output"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover tmp not removed: %v", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	s.Close()
	if err := s.Append(mkMeta(0, "t0", "quickstart", "done"), nil); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

func TestDigests(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	m := mkMeta(0, "t0", "quickstart", "done")
	m.Artifacts = map[string]string{"report": "aaa", "gantt": "bbb"}
	s.Append(m, mkDoc(0))
	m2 := mkMeta(1, "t0", "quickstart", "done")
	m2.Artifacts = map[string]string{"report": "aaa"}
	s.Append(m2, mkDoc(1))
	d := s.Digests()
	if !d["aaa"] || !d["bbb"] || len(d) != 2 {
		t.Fatalf("digests = %v", d)
	}
	s.Append(Meta{ID: m2.ID, Tenant: "t0", Tombstone: true}, nil)
	d = s.Digests()
	if !d["aaa"] || !d["bbb"] {
		t.Fatalf("digests after tombstoning a sharer = %v (aaa still referenced by run 0)", d)
	}
}
