package runstore

import (
	"bytes"
	"os"
	"sort"
	"time"

	"dyflow/internal/ckpt"
)

// Compaction rewrites the sealed segments (everything but the active
// one) into a single new segment holding only live records — each run's
// latest, minus tombstoned runs whose tombstone's every predecessor is
// in the inputs, which vanish entirely. The swap is crash-safe: the
// output is written to a .tmp, fsynced, renamed over the lowest input
// index, and only then are the remaining inputs deleted. A crash at any
// point leaves either the untouched inputs (tmp discarded on Open) or
// the renamed output plus leftover inputs whose records duplicate it —
// and recovery's latest-wins-by-sequence fold (with equal-sequence
// dedup) reads both states back to exactly the committed history.

// needCompactLocked reports whether the sealed dead-record count
// crosses the auto-compaction thresholds.
func (s *Store) needCompactLocked() bool {
	if s.dir == "" || s.compacting || s.closed || len(s.segs) < 2 {
		return false
	}
	var records, live int64
	for _, seg := range s.segs[:len(s.segs)-1] {
		records += seg.records
		live += seg.live
	}
	dead := records - live
	min := int64(s.opt.CompactMinRecords)
	if min <= 0 {
		min = DefaultCompactMinRecords
	}
	frac := s.opt.CompactFraction
	if frac <= 0 {
		frac = DefaultCompactFraction
	}
	return dead >= min && float64(dead) > frac*float64(records)
}

// Compact runs one compaction synchronously (no-op when there is
// nothing sealed to compact or one is already running).
func (s *Store) Compact() error {
	s.mu.Lock()
	if s.dir == "" || s.compacting || s.closed || len(s.segs) < 2 {
		s.mu.Unlock()
		return nil
	}
	s.compacting = true
	s.cwg.Add(1)
	s.mu.Unlock()
	return s.compactOwned()
}

// compactOwned performs the compaction; the caller has already set
// s.compacting and incremented s.cwg.
func (s *Store) compactOwned() error {
	defer s.cwg.Done()
	defer func() {
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
	}()

	// Snapshot the sealed inputs. New appends only touch the active
	// segment, so the input files are immutable for the duration.
	s.mu.Lock()
	if s.closed || len(s.segs) < 2 {
		s.mu.Unlock()
		return nil
	}
	inputs := append([]*segment(nil), s.segs[:len(s.segs)-1]...)
	s.mu.Unlock()

	// Read every input frame (the file bytes, not re-marshaled: frames
	// are copied verbatim so checksums carry over).
	type cand struct {
		fr   frame
		data []byte
	}
	var cands []cand
	var inputRecords int64
	for _, seg := range inputs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		frames, _, _ := scanSegment(data)
		inputRecords += int64(len(frames))
		for _, fr := range frames {
			cands = append(cands, cand{fr: fr, data: data[fr.off : fr.off+fr.len]})
		}
	}

	// Decide keeps under the read lock: a record survives iff it is
	// still its run's latest; a tombstone survives only while its run
	// could still have records outside the inputs (it cannot — inputs
	// are all sealed segments and tombstones are final — so registered
	// tombstones drop here, completing the delete).
	s.mu.RLock()
	seen := make(map[string]bool)
	var kept []cand
	droppedTombs := make(map[string]uint64)
	for _, c := range cands {
		id := c.fr.meta.ID
		if c.fr.meta.Tombstone {
			if tseq, ok := s.tombs[id]; ok && tseq == c.fr.seq && s.runs[id] == nil {
				droppedTombs[id] = tseq
			} else if !seen[id+"\x00tomb"] {
				seen[id+"\x00tomb"] = true
				kept = append(kept, c)
			}
			continue
		}
		if rs := s.runs[id]; rs != nil && rs.seq == c.fr.seq && !seen[id] {
			seen[id] = true
			kept = append(kept, c)
		}
	}
	s.mu.RUnlock()

	// Write the output to a tmp, fsync, and rename over the lowest
	// input index.
	outPath := inputs[0].path
	tmp := outPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := ckpt.WriteHeader(&buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	type placed struct {
		id  string
		seq uint64
		off int64
		len int64
	}
	places := make([]placed, 0, len(kept))
	for _, c := range kept {
		places = append(places, placed{
			id: c.fr.meta.ID, seq: c.fr.seq,
			off: int64(buf.Len()), len: int64(len(c.data)),
		})
		buf.Write(c.data)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, outPath); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}

	// Swap the in-memory view: one compacted segment replaces the
	// inputs. Records superseded between the keep decision and here are
	// simply dead bytes in the output (their runState moved to the
	// active segment and is skipped by the seq check).
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		f.Close()
		return nil
	}
	ns := &segment{
		index:   inputs[0].index,
		path:    outPath,
		f:       f,
		size:    int64(buf.Len()),
		records: int64(len(places)),
	}
	for _, p := range places {
		if rs := s.runs[p.id]; rs != nil && rs.seq == p.seq {
			rs.seg = ns
			rs.off = p.off
			rs.length = p.len
			ns.live++
		}
	}
	rest := s.segs[len(inputs):]
	s.segs = append([]*segment{ns}, rest...)
	dropped := inputRecords - int64(len(places))
	s.total -= dropped
	for id := range droppedTombs {
		if tseq, ok := s.tombs[id]; ok && tseq == droppedTombs[id] {
			delete(s.tombs, id)
		}
	}
	s.met.compactions.Inc()
	s.met.dropped.Add(dropped)
	s.updateGaugesLocked()
	old := make([]*segment, len(inputs))
	copy(old, inputs)
	s.mu.Unlock()

	// The rename replaced inputs[0]'s path; its old handle and the
	// other input files are no longer referenced by any index entry.
	for i, seg := range old {
		seg.f.Close()
		if i > 0 {
			os.Remove(seg.path)
		}
	}
	return nil
}

// Retention is a per-tenant deletion policy over terminal runs.
type Retention struct {
	// MaxAge deletes terminal runs whose FinishedAt is older (0 = none).
	MaxAge time.Duration
	// MaxBytes bounds one tenant's total artifact bytes: oldest terminal
	// runs are deleted until the tenant fits (0 = unlimited).
	MaxBytes int64
}

// SweepRetention applies ret at time now, tombstoning the victims and
// returning their metas (so the caller can release cache entries and
// GC newly-unreferenced blobs). Only terminal runs are ever deleted.
func (s *Store) SweepRetention(ret Retention, now time.Time) []Meta {
	if ret.MaxAge <= 0 && ret.MaxBytes <= 0 {
		return nil
	}
	s.mu.Lock()
	victims := make(map[*runState]bool)
	cutNs := int64(0)
	if ret.MaxAge > 0 {
		cutNs = now.Add(-ret.MaxAge).UnixNano()
	}
	for _, list := range s.byTenant {
		var term []*runState
		for _, rs := range list {
			if !rs.meta.Terminal {
				continue
			}
			term = append(term, rs)
			if cutNs != 0 && rs.meta.FinishedAtNs > 0 && rs.meta.FinishedAtNs < cutNs {
				victims[rs] = true
			}
		}
		if ret.MaxBytes > 0 {
			// Newest-first: keep runs while the tenant fits its budget,
			// delete the older overflow.
			sortByFinishedDesc(term)
			var acc int64
			for _, rs := range term {
				if victims[rs] {
					continue
				}
				acc += rs.meta.ArtifactBytes
				if acc > ret.MaxBytes {
					victims[rs] = true
				}
			}
		}
	}
	out := make([]Meta, 0, len(victims))
	for rs := range victims {
		out = append(out, rs.meta)
		tomb := Meta{ID: rs.meta.ID, Tenant: rs.meta.Tenant, Tombstone: true}
		if err := s.appendLocked(tomb, nil); err != nil {
			s.logf("runstore: retention tombstone %s: %v", rs.meta.ID, err)
			out = out[:len(out)-1]
			continue
		}
		s.met.retention.Inc()
	}
	compact := len(out) > 0 && s.needCompactLocked()
	if compact {
		s.compacting = true
		s.cwg.Add(1)
	}
	s.updateGaugesLocked()
	s.mu.Unlock()
	if compact {
		go s.compactOwned()
	}
	return out
}

// sortByFinishedDesc orders terminal runs newest-finished first.
func sortByFinishedDesc(list []*runState) {
	sort.Slice(list, func(i, j int) bool {
		return list[i].meta.FinishedAtNs > list[j].meta.FinishedAtNs
	})
}
