package ckpt

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	type payload struct {
		Name string
		N    int
		Xs   []float64
	}
	in := payload{Name: "orch", N: 42, Xs: []float64{1.5, -2, 0}}
	blob, err := Encode("core", in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var out payload
	if err := Decode(blob, "core", &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Name != in.Name || out.N != in.N || len(out.Xs) != 3 || out.Xs[1] != -2 {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
}

func TestDecodeRejectsWrongKind(t *testing.T) {
	blob, err := Encode("core", map[string]int{"a": 1})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var v map[string]int
	if err := Decode(blob, "other", &v); err == nil {
		t.Fatal("Decode accepted wrong kind")
	}
}

func TestDecodeRejectsBadMagicAndVersion(t *testing.T) {
	blob, err := Encode("core", 1)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	var v int
	if err := Decode(bad, "core", &v); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad magic: got %v, want ErrBadFormat", err)
	}
	bad = append([]byte(nil), blob...)
	bad[4]++ // version low byte
	if err := Decode(bad, "core", &v); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad version: got %v, want ErrBadFormat", err)
	}
}

func TestDecodeDetectsCorruptPayload(t *testing.T) {
	blob, err := Encode("core", map[string]string{"k": "value"})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)-2] ^= 0xff // flip a payload byte; checksum must catch it
	var v map[string]string
	if err := Decode(bad, "core", &v); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt payload: got %v, want ErrCorrupt", err)
	}
}

func TestRecordStreamRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf); err != nil {
		t.Fatalf("WriteHeader: %v", err)
	}
	recs := []Record{
		{Kind: "round", Data: []byte(`{"n":1}`)},
		{Kind: "round", Data: []byte(`{"n":2}`)},
		{Kind: "mark", Data: nil},
	}
	for _, r := range recs {
		if err := WriteRecord(&buf, r); err != nil {
			t.Fatalf("WriteRecord: %v", err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	if err := ReadHeader(r); err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	for i, want := range recs {
		got, err := ReadRecord(r)
		if err != nil {
			t.Fatalf("ReadRecord %d: %v", i, err)
		}
		if got.Kind != want.Kind || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("record %d mismatch: %+v", i, got)
		}
	}
	if _, err := ReadRecord(r); !errors.Is(err, io.EOF) {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestStoreSnapshotAndJournal(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if _, err := st.LoadSnapshot(); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("LoadSnapshot on empty store: %v", err)
	}

	blob, _ := Encode("core", map[string]int{"at": 100})
	if err := st.SaveSnapshot(blob); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	for i := 1; i <= 3; i++ {
		if err := st.Append("round", map[string]int{"n": i}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}

	got, err := st.LoadSnapshot()
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("snapshot blob mismatch")
	}
	var seen []string
	if err := st.Replay(func(rec Record) error {
		seen = append(seen, rec.Kind+":"+string(rec.Data))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(seen) != 3 || seen[0] != `round:{"n":1}` || seen[2] != `round:{"n":3}` {
		t.Fatalf("replayed %v", seen)
	}

	// A new snapshot supersedes the journal.
	if err := st.SaveSnapshot(blob); err != nil {
		t.Fatalf("SaveSnapshot 2: %v", err)
	}
	seen = nil
	if err := st.Replay(func(rec Record) error { seen = append(seen, rec.Kind); return nil }); err != nil {
		t.Fatalf("Replay after snapshot: %v", err)
	}
	if len(seen) != 0 {
		t.Fatalf("journal not reset: %v", seen)
	}
}

func TestReplayDropsTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	blob, _ := Encode("core", 0)
	if err := st.SaveSnapshot(blob); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if err := st.Append("round", map[string]int{"n": 1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Append("round", map[string]int{"n": 2}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Simulate a crash mid-append: truncate the journal inside the last record.
	jp := filepath.Join(dir, "journal.wal")
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	if err := os.WriteFile(jp, data[:len(data)-3], 0o644); err != nil {
		t.Fatalf("truncate journal: %v", err)
	}
	var seen []string
	if err := st.Replay(func(rec Record) error { seen = append(seen, string(rec.Data)); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(seen) != 1 || seen[0] != `{"n":1}` {
		t.Fatalf("torn tail not dropped: %v", seen)
	}
}

func TestAppendBeforeSnapshotReplays(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if err := st.Append("round", map[string]int{"n": 7}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	var n int
	if err := st.Replay(func(rec Record) error { n++; return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want 1", n)
	}
}
