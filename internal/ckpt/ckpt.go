// Package ckpt is DYFLOW's checkpoint substrate: a deterministic snapshot
// format plus a write-ahead journal, used by the core orchestrator to make
// the four-stage control loop restartable (DESIGN.md §12). The paper's
// stages run "continuously" for the lifetime of a campaign; everything the
// orchestrator cannot recompute from the workflow itself — policy history
// windows, staleness gates, T_waiting (including recovery entries),
// in-flight suggestion lifecycles, sensor join cursors — is serialized
// here so a crashed or restarted orchestrator resumes steering instead of
// forgetting the campaign.
//
// The on-disk/in-memory format is deliberately simple and self-verifying:
//
//	file   := magic("DYCK") version(u16) record*
//	record := payloadLen(u32) crc32(u32, IEEE, of payload) payload
//	payload:= kindLen(u8) kind data
//
// Every record carries its own checksum, so a torn write (crash mid-append)
// is detected and the journal's corrupt tail is dropped instead of
// poisoning the replay — the journal analogue of "monitoring pipelines must
// tolerate corrupt and missing samples". Snapshots are a single record;
// journals are an append-only sequence replayed in write order.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Version is the current checkpoint format version. Readers reject files
// written by a different major format.
const Version uint16 = 1

var magic = [4]byte{'D', 'Y', 'C', 'K'}

// ErrBadFormat reports a stream that is not a ckpt file at all (wrong
// magic) or one written by an unsupported version.
var ErrBadFormat = errors.New("ckpt: bad format")

// ErrCorrupt reports a record whose checksum or framing failed — the
// reader stops at the last good record.
var ErrCorrupt = errors.New("ckpt: corrupt record")

// Record is one framed entry: a kind tag plus an opaque payload (JSON in
// all current uses).
type Record struct {
	Kind string
	Data []byte
}

// maxRecordSize bounds a single record so a corrupt length prefix cannot
// drive an allocation of arbitrary size.
const maxRecordSize = 1 << 28 // 256 MiB

// WriteHeader writes the magic and version.
func WriteHeader(w io.Writer) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, Version)
}

// ReadHeader verifies the magic and version.
func ReadHeader(r io.Reader) error {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if m != magic {
		return fmt.Errorf("%w: magic %q", ErrBadFormat, m[:])
	}
	var v uint16
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if v != Version {
		return fmt.Errorf("%w: version %d (want %d)", ErrBadFormat, v, Version)
	}
	return nil
}

// WriteRecord frames one record: length prefix, CRC32 of the payload, then
// the payload itself.
func WriteRecord(w io.Writer, rec Record) error {
	if len(rec.Kind) > 255 {
		return fmt.Errorf("ckpt: kind %q too long", rec.Kind)
	}
	payload := make([]byte, 0, 1+len(rec.Kind)+len(rec.Data))
	payload = append(payload, byte(len(rec.Kind)))
	payload = append(payload, rec.Kind...)
	payload = append(payload, rec.Data...)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(payload))); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(payload)); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadRecord reads the next framed record. It returns io.EOF at a clean
// end, and ErrCorrupt when the framing or checksum fails (a torn tail).
func ReadRecord(r io.Reader) (Record, error) {
	var n, sum uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: length: %v", ErrCorrupt, err)
	}
	if n < 1 || n > maxRecordSize {
		return Record{}, fmt.Errorf("%w: length %d", ErrCorrupt, n)
	}
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return Record{}, fmt.Errorf("%w: checksum: %v", ErrCorrupt, err)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	kindLen := int(payload[0])
	if 1+kindLen > len(payload) {
		return Record{}, fmt.Errorf("%w: kind length %d", ErrCorrupt, kindLen)
	}
	return Record{
		Kind: string(payload[1 : 1+kindLen]),
		Data: payload[1+kindLen:],
	}, nil
}

// Encode frames a single JSON-marshaled record as a standalone checkpoint
// blob (header + one record) — the in-memory form Orchestrator.Checkpoint
// returns.
func Encode(kind string, v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := WriteHeader(&buf); err != nil {
		return nil, err
	}
	if err := WriteRecord(&buf, Record{Kind: kind, Data: data}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode verifies a standalone checkpoint blob and unmarshals its single
// record into v, checking the kind tag.
func Decode(blob []byte, kind string, v any) error {
	r := bytes.NewReader(blob)
	if err := ReadHeader(r); err != nil {
		return err
	}
	rec, err := ReadRecord(r)
	if err != nil {
		return err
	}
	if rec.Kind != kind {
		return fmt.Errorf("ckpt: record kind %q (want %q)", rec.Kind, kind)
	}
	return json.Unmarshal(rec.Data, v)
}

// Store persists one orchestrator's checkpoints in a directory: a snapshot
// file plus an append-only journal of entries written since that snapshot.
// SaveSnapshot is atomic (temp file + rename) and truncates the journal,
// so the pair is always mutually consistent: journal entries apply on top
// of the snapshot they follow.
type Store struct {
	dir string
}

const (
	snapshotFile = "snapshot.ckpt"
	journalFile  = "journal.wal"
)

// NewStore opens (creating if needed) a checkpoint directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) snapshotPath() string { return filepath.Join(st.dir, snapshotFile) }
func (st *Store) journalPath() string  { return filepath.Join(st.dir, journalFile) }

// SaveSnapshot writes blob (an Encode result) as the current snapshot and
// resets the journal: entries logged before the snapshot are superseded by
// it.
func (st *Store) SaveSnapshot(blob []byte) error {
	tmp := st.snapshotPath() + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, st.snapshotPath()); err != nil {
		return err
	}
	// A fresh journal begins after every snapshot.
	f, err := os.Create(st.journalPath())
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteHeader(f)
}

// LoadSnapshot returns the current snapshot blob (nil, os.ErrNotExist when
// none has been saved).
func (st *Store) LoadSnapshot() ([]byte, error) {
	return os.ReadFile(st.snapshotPath())
}

// Append logs one journal entry (JSON-marshaled) after the last snapshot.
func (st *Store) Append(kind string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(st.journalPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		// Journal before any snapshot: start one so replay-from-zero works.
		if f, err = os.Create(st.journalPath()); err == nil {
			err = WriteHeader(f)
		}
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteRecord(f, Record{Kind: kind, Data: data})
}

// JournalSize returns the journal file's current size in bytes (0 when
// missing) — the size-triggered snapshot threshold reads it per append.
func (st *Store) JournalSize() int64 {
	fi, err := os.Stat(st.journalPath())
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Replay streams the journal entries written since the last snapshot, in
// write order. A corrupt or torn tail ends the replay at the last good
// record instead of failing: a crash mid-append loses at most the entry
// being written. A missing journal replays nothing.
func (st *Store) Replay(fn func(rec Record) error) error {
	f, err := os.Open(st.journalPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ReadHeader(f); err != nil {
		return nil // empty or torn header: nothing to replay
	}
	for {
		rec, err := ReadRecord(f)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if errors.Is(err, ErrCorrupt) {
			return nil // torn tail: stop at the last good record
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}
