package server

import (
	"sort"
	"sync/atomic"
	"time"

	"dyflow/internal/exp"
)

// RunState is a run's lifecycle state.
type RunState string

// The run lifecycle: queued → running → done/failed; queued or running
// runs can also be canceled. A crash moves running back to queued on
// restore.
const (
	StateQueued   RunState = "queued"
	StateRunning  RunState = "running"
	StateDone     RunState = "done"
	StateFailed   RunState = "failed"
	StateCanceled RunState = "canceled"
)

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Run is one tracked campaign submission. Mutable fields are guarded by
// the server mutex except simNow and cancel, which the worker's progress
// hook touches without it.
type Run struct {
	ID     string
	Tenant string
	Job    exp.Job
	Shard  int

	State     RunState
	Cached    bool
	Err       string
	Converged bool
	SimEnd    time.Duration
	// Artifacts maps artifact names to blob digests in the coordinator's
	// content-addressed store — never inline bytes, so cached runs, the
	// WAL, and fleet-wide sharing all reference one stored copy.
	Artifacts map[string]string

	// Worker and LeaseID identify the fleet worker holding this run while
	// it executes remotely ("" for local worker-pool execution).
	Worker  string
	LeaseID string
	// doneLease remembers the lease under which the run reached its
	// terminal state. It is the result POST's idempotency check: a worker
	// retransmitting a completion whose 200 was lost matches doneLease and
	// is acknowledged as a duplicate instead of counted stale.
	doneLease string

	SubmittedAt time.Time
	// QueuedAt is when the run last entered the queue — SubmittedAt for
	// the first admission, reset on every requeue (lease expiry, restore,
	// shutdown), so ClaimedAt−QueuedAt is the run's latest queue wait.
	QueuedAt time.Time
	// ClaimedAt is when a worker (local slot or fleet) took the run;
	// zeroed when the run returns to the queue.
	ClaimedAt  time.Time
	StartedAt  time.Time
	FinishedAt time.Time

	simNow       atomic.Int64 // virtual ns, live progress while running
	cancel       atomic.Bool  // cooperative-cancel flag read by the progress hook
	lastProgress atomic.Int64 // wall ns of the last published progress event
}

// Status is the JSON view of a run served by GET /v1/runs/{id}.
type Status struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	Job    exp.Job  `json:"job"`
	State  RunState `json:"state"`
	Shard  int      `json:"shard"`
	Cached bool     `json:"cached,omitempty"`
	Error  string   `json:"error,omitempty"`
	// SimSeconds is the run's progress in virtual time: live while
	// running, the final makespan once done.
	SimSeconds float64 `json:"sim_seconds"`
	Converged  bool    `json:"converged,omitempty"`
	// Worker is the fleet worker executing the run ("" when the
	// coordinator's local pool runs it).
	Worker string `json:"worker,omitempty"`

	// Phase timestamps: SubmittedAt is admission; QueuedAt the latest
	// entry into the queue (== SubmittedAt unless the run was requeued);
	// ClaimedAt when a worker took it; StartedAt when execution began;
	// FinishedAt the terminal transition. ClaimedAt−QueuedAt is the queue
	// wait and FinishedAt−StartedAt the execution time that
	// GET /v1/analytics aggregates.
	SubmittedAt time.Time  `json:"submitted_at"`
	QueuedAt    *time.Time `json:"queued_at,omitempty"`
	ClaimedAt   *time.Time `json:"claimed_at,omitempty"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// Artifacts lists the fetchable artifact names once the run is done.
	Artifacts []string `json:"artifacts,omitempty"`
}

// status renders the run's JSON view. Caller holds the server mutex.
func (r *Run) status() Status {
	st := Status{
		ID:          r.ID,
		Tenant:      r.Tenant,
		Job:         r.Job,
		State:       r.State,
		Shard:       r.Shard,
		Cached:      r.Cached,
		Error:       r.Err,
		SimSeconds:  time.Duration(r.simNow.Load()).Seconds(),
		Converged:   r.Converged,
		Worker:      r.Worker,
		SubmittedAt: r.SubmittedAt,
	}
	if r.State == StateDone {
		st.SimSeconds = r.SimEnd.Seconds()
	}
	for _, ts := range []struct {
		at  time.Time
		dst **time.Time
	}{
		{r.QueuedAt, &st.QueuedAt},
		{r.ClaimedAt, &st.ClaimedAt},
		{r.StartedAt, &st.StartedAt},
		{r.FinishedAt, &st.FinishedAt},
	} {
		if !ts.at.IsZero() {
			t := ts.at
			*ts.dst = &t
		}
	}
	for name := range r.Artifacts {
		st.Artifacts = append(st.Artifacts, name)
	}
	sort.Strings(st.Artifacts)
	return st
}
