package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"dyflow/internal/exp"
	"dyflow/internal/server/fleet"
)

// startFleetCoordinator builds a coordinator with no local worker pool —
// only fleet workers can execute — and serves its API on an ephemeral
// port.
func startFleetCoordinator(t *testing.T, ttl time.Duration) (*Server, string) {
	t.Helper()
	s, err := New(Config{Workers: -1, TenantQuota: -1, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, addr
}

// counter reads one summed metric value from the coordinator registry.
func counter(t *testing.T, s *Server, name string) float64 {
	t.Helper()
	v, _ := s.Registry().Value(name)
	return v
}

// TestFleetExecutesRuns covers the happy path of the worker fleet: remote
// workers claim queued runs over HTTP, execute them, upload artifacts to
// the content-addressed blob store, and report results; duplicate jobs
// are answered from the shared cache without a second execution.
func TestFleetExecutesRuns(t *testing.T) {
	s, addr := startFleetCoordinator(t, 2*time.Second)

	w1, err := fleet.JoinFleet(fleet.WorkerOptions{Coordinator: addr, Name: "w1", ClaimWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Stop()
	w2, err := fleet.JoinFleet(fleet.WorkerOptions{Coordinator: addr, Name: "w2", ClaimWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Stop()

	var ids []string
	for i := 0; i < 3; i++ {
		st, err := s.Submit(fmt.Sprintf("t%d", i), quick(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		st := await(t, s, id)
		if st.State != StateDone {
			t.Fatalf("run %s ended %s: %s", id, st.State, st.Error)
		}
		if st.Worker == "" {
			t.Fatalf("run %s done with no worker recorded", id)
		}
		for _, name := range []string{exp.ArtifactReport, exp.ArtifactMetrics} {
			if blob, err := s.Artifact(id, name); err != nil || len(blob) == 0 {
				t.Fatalf("artifact %s of %s: %v (%d bytes)", name, id, err, len(blob))
			}
		}
	}

	// A duplicate of a fleet-executed job is a fleet-wide cache hit.
	dup, err := s.Submit("dup", quick(0))
	if err != nil {
		t.Fatal(err)
	}
	if dup.State != StateDone || !dup.Cached {
		t.Fatalf("duplicate job not served from the shared cache: %+v", dup)
	}

	// The coordinator marks a run done before the worker's upload counter
	// ticks, so give the counters a moment to catch up.
	deadline := time.Now().Add(10 * time.Second)
	for w1.Completed()+w2.Completed() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("workers report %d completions for 3 runs", w1.Completed()+w2.Completed())
		}
		time.Sleep(time.Millisecond)
	}
	if v := counter(t, s, "dyflow_server_fleet_claims_total"); v < 3 {
		t.Fatalf("fleet_claims_total = %v", v)
	}
	if v := counter(t, s, "dyflow_server_fleet_results_total"); v != 3 {
		t.Fatalf("fleet_results_total = %v", v)
	}
	if v := counter(t, s, "dyflow_server_fleet_workers"); v != 2 {
		t.Fatalf("fleet_workers gauge = %v", v)
	}
	if v := counter(t, s, "dyflow_server_fleet_blobs"); v == 0 {
		t.Fatal("no blobs recorded in the store")
	}
}

// TestFleetWorkerKillChaos is the fleet chaos drill: a worker is killed
// while holding a lease. The coordinator's lease expiry must requeue the
// run, a surviving worker must complete it, and completion must be
// observed exactly once in the run table.
func TestFleetWorkerKillChaos(t *testing.T) {
	const ttl = 150 * time.Millisecond
	s, addr := startFleetCoordinator(t, ttl)

	claimed := make(chan string, 1)
	release := make(chan struct{})
	victim, err := fleet.JoinFleet(fleet.WorkerOptions{
		Coordinator: addr,
		Name:        "victim",
		ClaimWait:   50 * time.Millisecond,
		OnClaim: func(runID string) {
			claimed <- runID
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	doomed, err := s.Submit("alice", quick(100))
	if err != nil {
		t.Fatal(err)
	}
	var doomedRun string
	select {
	case doomedRun = <-claimed:
	case <-time.After(10 * time.Second):
		t.Fatal("victim never claimed the run")
	}
	if doomedRun != doomed.ID {
		t.Fatalf("victim claimed %s, expected %s", doomedRun, doomed.ID)
	}

	survivor, err := fleet.JoinFleet(fleet.WorkerOptions{Coordinator: addr, Name: "survivor", ClaimWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Stop()
	var ids []string
	for i := 101; i <= 103; i++ {
		st, err := s.Submit("alice", quick(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	// Kill the victim mid-lease: it stops heartbeating and never uploads.
	killDone := make(chan struct{})
	go func() {
		victim.Kill()
		close(killDone)
	}()
	time.Sleep(20 * time.Millisecond) // let Kill flag the worker before unblocking it
	close(release)
	<-killDone

	// The lease lapses, the run requeues, and the survivor finishes it.
	for _, id := range append(ids, doomed.ID) {
		st := await(t, s, id)
		if st.State != StateDone {
			t.Fatalf("run %s ended %s: %s", id, st.State, st.Error)
		}
	}
	final, err := s.RunStatus(doomed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Worker != survivor.ID() {
		t.Fatalf("doomed run finished on %q, survivor is %q", final.Worker, survivor.ID())
	}
	if blob, err := s.Artifact(doomed.ID, exp.ArtifactReport); err != nil || len(blob) == 0 {
		t.Fatalf("doomed run report: %v (%d bytes)", err, len(blob))
	}

	if v := counter(t, s, "dyflow_server_fleet_lease_expiries_total"); v < 1 {
		t.Fatalf("fleet_lease_expiries_total = %v, want >= 1", v)
	}
	// Exactly-once observable completion: 4 runs, 4 terminal transitions.
	if v := counter(t, s, "dyflow_server_runs_total"); v != 4 {
		t.Fatalf("runs_total = %v for 4 submissions", v)
	}
	if victim.Completed() != 0 {
		t.Fatalf("killed worker reports %d completions", victim.Completed())
	}
}

// TestFleetStaleResultIgnored drives the at-most-once gate end to end
// over HTTP: an upload under a lapsed lease must be rejected, counted
// stale, and leave the run untouched for legitimate re-execution.
func TestFleetStaleResultIgnored(t *testing.T) {
	const ttl = 100 * time.Millisecond
	s, addr := startFleetCoordinator(t, ttl)

	// A worker that holds its claim (no heartbeats) until told to go on.
	claimed := make(chan string, 1)
	release := make(chan struct{})
	worker, err := fleet.JoinFleet(fleet.WorkerOptions{
		Coordinator: addr,
		Name:        "sluggish",
		ClaimWait:   50 * time.Millisecond,
		OnClaim: func(runID string) {
			claimed <- runID
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Stop()

	st, err := s.Submit("alice", quick(200))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-claimed:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never claimed the run")
	}
	// Capture the live lease, then wait it out while the worker sits
	// pre-execution without heartbeating.
	s.mu.Lock()
	workerID, leaseID := s.runs[st.ID].Worker, s.runs[st.ID].LeaseID
	s.mu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for counter(t, s, "dyflow_server_fleet_lease_expiries_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The dead worker's upload arrives after the requeue: rejected.
	body, _ := json.Marshal(fleet.ResultRequest{RunID: st.ID, LeaseID: leaseID, Converged: true})
	resp, err := http.Post("http://"+addr+"/v1/workers/"+workerID+"/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var res fleet.ResultResponse
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Accepted || res.Reason == "" {
		t.Fatalf("stale upload not rejected: %+v", res)
	}
	if v := counter(t, s, "dyflow_server_fleet_stale_results_total"); v < 1 {
		t.Fatalf("stale_results_total = %v", v)
	}
	if got, _ := s.RunStatus(st.ID); got.State.Terminal() {
		t.Fatalf("stale upload finished the run: %+v", got)
	}

	// Unblock the worker: its first execution aborts on the dead lease,
	// then it re-claims the requeued run and finishes it for real.
	close(release)
	if final := await(t, s, st.ID); final.State != StateDone {
		t.Fatalf("run ended %s: %s", final.State, final.Error)
	}
	if v := counter(t, s, "dyflow_server_runs_total"); v != 1 {
		t.Fatalf("runs_total = %v for 1 submission", v)
	}
}
