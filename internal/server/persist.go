package server

import (
	"encoding/json"
	"errors"
	"os"
	"time"

	"dyflow/internal/ckpt"
	"dyflow/internal/exp"
)

// Persistence: the service journals every acknowledged state transition
// through a ckpt.Store — a submission is journaled before its 2xx response
// is written, completion/cancellation when they happen — and snapshots the
// whole run table on graceful shutdown and after every restore (compacting
// the journal). A killed server therefore restores every acknowledged
// submission: done runs with their artifacts, queued and running runs back
// onto the queue.
const (
	kindState  = "server.state"  // snapshot: the full run table
	kindSubmit = "server.submit" // journal: one acknowledged submission
	kindDone   = "server.done"   // journal: one terminal transition
	kindCancel = "server.cancel" // journal: one queued-run cancellation
)

// persistedRun is a Run's durable form. Artifacts are carried only by
// non-cached done runs — cached runs resolve theirs from the run they
// duplicate (same job key) on restore, so N cache hits cost one copy.
type persistedRun struct {
	ID          string            `json:"id"`
	Tenant      string            `json:"tenant"`
	Job         exp.Job           `json:"job"`
	State       RunState          `json:"state"`
	Cached      bool              `json:"cached,omitempty"`
	Err         string            `json:"error,omitempty"`
	Converged   bool              `json:"converged,omitempty"`
	SimEndNs    int64             `json:"sim_end_ns,omitempty"`
	Artifacts   map[string][]byte `json:"artifacts,omitempty"`
	SubmittedAt time.Time         `json:"submitted_at"`
	StartedAt   time.Time         `json:"started_at,omitempty"`
	FinishedAt  time.Time         `json:"finished_at,omitempty"`
}

// persistedState is the snapshot payload: every run in submission order.
type persistedState struct {
	NextID int            `json:"next_id"`
	Runs   []persistedRun `json:"runs"`
}

func (r *Run) persisted(withArtifacts bool) persistedRun {
	p := persistedRun{
		ID:          r.ID,
		Tenant:      r.Tenant,
		Job:         r.Job,
		State:       r.State,
		Cached:      r.Cached,
		Err:         r.Err,
		Converged:   r.Converged,
		SimEndNs:    int64(r.SimEnd),
		SubmittedAt: r.SubmittedAt,
		StartedAt:   r.StartedAt,
		FinishedAt:  r.FinishedAt,
	}
	if withArtifacts && !r.Cached {
		p.Artifacts = r.Artifacts
	}
	return p
}

func (s *Server) applyPersisted(p persistedRun) *Run {
	r := &Run{
		ID:          p.ID,
		Tenant:      p.Tenant,
		Job:         p.Job,
		Shard:       s.queue.shardFor(p.Tenant),
		State:       p.State,
		Cached:      p.Cached,
		Err:         p.Err,
		Converged:   p.Converged,
		SimEnd:      time.Duration(p.SimEndNs),
		Artifacts:   p.Artifacts,
		SubmittedAt: p.SubmittedAt,
		StartedAt:   p.StartedAt,
		FinishedAt:  p.FinishedAt,
	}
	r.simNow.Store(p.SimEndNs)
	return r
}

// journal appends one entry, if persistence is on.
func (s *Server) journal(kind string, v any) error {
	if s.store == nil {
		return nil
	}
	return s.store.Append(kind, v)
}

// snapshotLocked persists the full run table, superseding the journal.
// Caller holds the server mutex.
func (s *Server) snapshotLocked() error {
	if s.store == nil {
		return nil
	}
	st := persistedState{NextID: s.nextID}
	for _, id := range s.order {
		st.Runs = append(st.Runs, s.runs[id].persisted(true))
	}
	blob, err := ckpt.Encode(kindState, st)
	if err != nil {
		return err
	}
	return s.store.SaveSnapshot(blob)
}

// restore rebuilds the run table from the snapshot plus the journal tail,
// requeues every run that had not finished (running runs go back to
// queued: the simulation is deterministic, so re-executing from the start
// is safe), and snapshots immediately to compact. Replay is idempotent by
// run ID, so an entry duplicated across snapshot and journal is harmless.
func (s *Server) restore(dir string) error {
	store, err := ckpt.NewStore(dir)
	if err != nil {
		return err
	}
	s.store = store

	blob, err := store.LoadSnapshot()
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if blob != nil {
		var st persistedState
		if err := ckpt.Decode(blob, kindState, &st); err != nil {
			return err
		}
		s.nextID = st.NextID
		for _, p := range st.Runs {
			r := s.applyPersisted(p)
			s.runs[r.ID] = r
			s.order = append(s.order, r.ID)
		}
	}
	err = store.Replay(func(rec ckpt.Record) error {
		switch rec.Kind {
		case kindSubmit:
			var p persistedRun
			if err := json.Unmarshal(rec.Data, &p); err != nil {
				return err
			}
			if _, dup := s.runs[p.ID]; dup {
				return nil
			}
			r := s.applyPersisted(p)
			s.runs[r.ID] = r
			s.order = append(s.order, r.ID)
		case kindDone, kindCancel:
			var p persistedRun
			if err := json.Unmarshal(rec.Data, &p); err != nil {
				return err
			}
			r, ok := s.runs[p.ID]
			if !ok || r.State.Terminal() {
				return nil
			}
			r.State = p.State
			r.Err = p.Err
			r.Converged = p.Converged
			r.SimEnd = time.Duration(p.SimEndNs)
			r.simNow.Store(p.SimEndNs)
			r.FinishedAt = p.FinishedAt
			if p.Artifacts != nil {
				r.Artifacts = p.Artifacts
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Index completed runs for the cache, then give cached runs (persisted
	// without artifacts) their bytes back from the run they duplicated.
	for _, id := range s.order {
		r := s.runs[id]
		if r.State == StateDone && !r.Cached && r.Artifacts != nil {
			if _, have := s.cache[r.Job.Key()]; !have {
				s.cache[r.Job.Key()] = r
			}
		}
	}
	for _, id := range s.order {
		r := s.runs[id]
		if r.Cached && r.Artifacts == nil {
			if src := s.cache[r.Job.Key()]; src != nil {
				r.Artifacts = src.Artifacts
			}
		}
	}

	// Requeue everything that had not finished. A run caught mid-execution
	// by the crash restarts from scratch — determinism makes that exact.
	for _, id := range s.order {
		r := s.runs[id]
		if r.State.Terminal() {
			continue
		}
		r.State = StateQueued
		r.StartedAt = time.Time{}
		r.simNow.Store(0)
		s.inflight[r.Tenant]++
		if err := s.queue.push(r.Shard, id); err != nil {
			return err
		}
		s.met.requeued.Inc()
	}

	if s.nextID < len(s.order) {
		s.nextID = len(s.order)
	}
	return s.snapshotLocked()
}
