package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dyflow/internal/ckpt"
	"dyflow/internal/exp"
	"dyflow/internal/runstore"
)

// Persistence: the service journals every acknowledged state transition
// through a ckpt.Store — a submission is journaled before its 2xx response
// is written, completion/cancellation when they happen — and snapshots the
// whole run table on graceful shutdown and after every restore (compacting
// the journal). Artifact bytes never enter the WAL: a done run carries
// name → sha256 references into the content-addressed blob store
// (CkptDir/blobs), so N runs sharing a result cost one stored copy and
// replay stays cheap. A killed server therefore restores every
// acknowledged submission: done runs with their artifact references,
// queued and running runs back onto the queue.
const (
	kindState  = "server.state"  // snapshot: the full run table
	kindSubmit = "server.submit" // journal: one acknowledged submission
	kindDone   = "server.done"   // journal: one terminal transition
	kindCancel = "server.cancel" // journal: one queued-run cancellation
)

// journalStore is the slice of ckpt.Store the server persists through —
// an interface so tests can inject append failures and prove they are
// observable (dyflow_server_journal_errors_total).
type journalStore interface {
	Append(kind string, v any) error
	SaveSnapshot(blob []byte) error
	LoadSnapshot() ([]byte, error)
	Replay(fn func(rec ckpt.Record) error) error
	JournalSize() int64
}

// persistedRun is a Run's durable form. ArtifactRefs are blob digests,
// not bytes — cheap enough to carry on every done record, cached or not.
type persistedRun struct {
	ID           string            `json:"id"`
	Tenant       string            `json:"tenant"`
	Job          exp.Job           `json:"job"`
	State        RunState          `json:"state"`
	Cached       bool              `json:"cached,omitempty"`
	Err          string            `json:"error,omitempty"`
	Converged    bool              `json:"converged,omitempty"`
	SimEndNs     int64             `json:"sim_end_ns,omitempty"`
	Worker       string            `json:"worker,omitempty"`
	ArtifactRefs map[string]string `json:"artifact_refs,omitempty"`
	SubmittedAt  time.Time         `json:"submitted_at"`
	QueuedAt     time.Time         `json:"queued_at,omitempty"`
	ClaimedAt    time.Time         `json:"claimed_at,omitempty"`
	StartedAt    time.Time         `json:"started_at,omitempty"`
	FinishedAt   time.Time         `json:"finished_at,omitempty"`
}

// persistedState is the snapshot payload: every run in submission order.
type persistedState struct {
	NextID int            `json:"next_id"`
	Runs   []persistedRun `json:"runs"`
}

func (r *Run) persisted() persistedRun {
	return persistedRun{
		ID:           r.ID,
		Tenant:       r.Tenant,
		Job:          r.Job,
		State:        r.State,
		Cached:       r.Cached,
		Err:          r.Err,
		Converged:    r.Converged,
		SimEndNs:     int64(r.SimEnd),
		Worker:       r.Worker,
		ArtifactRefs: r.Artifacts,
		SubmittedAt:  r.SubmittedAt,
		QueuedAt:     r.QueuedAt,
		ClaimedAt:    r.ClaimedAt,
		StartedAt:    r.StartedAt,
		FinishedAt:   r.FinishedAt,
	}
}

func (s *Server) applyPersisted(p persistedRun) *Run {
	r := &Run{
		ID:          p.ID,
		Tenant:      p.Tenant,
		Job:         p.Job,
		Shard:       s.queue.shardFor(p.Tenant),
		State:       p.State,
		Cached:      p.Cached,
		Err:         p.Err,
		Converged:   p.Converged,
		SimEnd:      time.Duration(p.SimEndNs),
		Worker:      p.Worker,
		Artifacts:   p.ArtifactRefs,
		SubmittedAt: p.SubmittedAt,
		QueuedAt:    p.QueuedAt,
		ClaimedAt:   p.ClaimedAt,
		StartedAt:   p.StartedAt,
		FinishedAt:  p.FinishedAt,
	}
	r.simNow.Store(p.SimEndNs)
	return r
}

// journalQueueDepth bounds the single-flight writer's backlog. A full
// queue means the WAL device has been wedged long enough to pile this
// many appends behind it; further appends are refused (counted as
// journal errors) rather than buffered without bound.
const journalQueueDepth = 1024

// jreq is one append handed to the journal writer goroutine.
type jreq struct {
	kind string
	v    any
	done chan error
}

// journalWriter is the single goroutine actually appending to the WAL,
// preserving call order even when callers shed. Failures are counted in
// dyflow_server_journal_errors_total and logged here, exactly once per
// append, whether the caller waited or shed.
func (s *Server) journalWriter() {
	defer s.jwg.Done()
	for req := range s.jq {
		err := s.store.Append(req.kind, req.v)
		if err != nil {
			s.met.journalErrs.Inc()
			s.logf("server: journal %s: %v", req.kind, err)
		}
		req.done <- err
		// Size-triggered snapshot+reset runs here, between appends on the
		// sole appender goroutine: SaveSnapshot truncates the journal file
		// in place, which must never interleave with a concurrent append
		// (the appended record would land before the fresh header and
		// corrupt replay). req.done is buffered, so the caller already has
		// its result and releases s.mu shortly; acquiring it here cannot
		// deadlock.
		if err == nil {
			s.maybeSnapshotBySize()
		}
	}
}

// defaultSnapshotJournalBytes is the WAL size past which a snapshot
// resets it when Config.SnapshotJournalBytes is 0.
const defaultSnapshotJournalBytes = 4 << 20

// snapshotThreshold resolves the size trigger (0 = disabled).
func (s *Server) snapshotThreshold() int64 {
	if s.cfg.SnapshotJournalBytes < 0 {
		return 0
	}
	if s.cfg.SnapshotJournalBytes == 0 {
		return defaultSnapshotJournalBytes
	}
	return s.cfg.SnapshotJournalBytes
}

// maybeSnapshotBySize snapshots once the journal passes the threshold,
// bounding WAL growth between graceful shutdowns. Called without s.mu.
func (s *Server) maybeSnapshotBySize() {
	thr := s.snapshotThreshold()
	if thr == 0 || s.store == nil || s.store.JournalSize() < thr {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return // the shutdown snapshot is about to supersede this one
	}
	if err := s.snapshotLocked("journal_size"); err != nil {
		s.logf("server: size-triggered snapshot: %v", err)
	}
}

// drainJournal stops the writer, flushing whatever shed appends are
// still queued. Handlers racing a hard Close observe jclosed instead of
// panicking on the closed channel.
func (s *Server) drainJournal() {
	if s.jq == nil {
		return
	}
	s.jonce.Do(func() {
		s.jmu.Lock()
		s.jclosed = true
		s.jmu.Unlock()
		close(s.jq)
		s.jwg.Wait()
	})
}

// enqueueJournal hands one append to the writer. closed=true means the
// writer has shut down (hard Close mid-request); ok=false with
// closed=false means the backlog is full.
func (s *Server) enqueueJournal(req jreq) (ok, closed bool) {
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	if s.jclosed {
		return false, true
	}
	select {
	case s.jq <- req:
		return true, false
	default:
		return false, false
	}
}

// journal appends one entry, if persistence is on, waiting at most the
// journal budget. An append that *fails* within the budget keeps its
// synchronous contract — the caller sees the error and can refuse the
// transition (silent durability loss is the one failure mode a recovery
// system cannot have). An append that is merely *slow* sheds instead of
// blocking the API: the caller proceeds, the background writer finishes
// the append late, and the shed is observable — counted in
// dyflow_server_degraded_sheds_total{component="journal"} with
// dyflow_server_degraded_mode{component="journal"} held at 1 until the
// backlog clears.
func (s *Server) journal(kind string, v any) error {
	if s.store == nil {
		return nil
	}
	if s.jq == nil {
		// No writer goroutine (store injected after construction, tests):
		// plain synchronous append with the original semantics. The caller
		// holds s.mu, so the size-triggered snapshot can run inline — no
		// concurrent appender exists to race the journal reset.
		err := s.store.Append(kind, v)
		if err != nil {
			s.met.journalErrs.Inc()
			s.logf("server: journal %s: %v", kind, err)
			return err
		}
		if thr := s.snapshotThreshold(); thr > 0 && !s.stopping && s.store.JournalSize() >= thr {
			if serr := s.snapshotLocked("journal_size"); serr != nil {
				s.logf("server: size-triggered snapshot: %v", serr)
			}
		}
		return nil
	}
	req := jreq{kind: kind, v: v, done: make(chan error, 1)}
	if ok, closed := s.enqueueJournal(req); !ok {
		if closed {
			return nil // hard Close raced this handler; the WAL is gone
		}
		// Writer wedged with a full backlog: this append is lost, which is
		// real durability loss — count it as such, not as a shed.
		s.met.journalErrs.Inc()
		s.logf("server: journal %s: writer backlog full; append dropped", kind)
		s.met.degradedMode.With("journal").Set(1)
		return nil
	}
	budget := s.cfg.JournalBudget
	if budget <= 0 {
		budget = 250 * time.Millisecond
	}
	t := time.NewTimer(budget)
	defer t.Stop()
	select {
	case err := <-req.done:
		return err
	case <-t.C:
		s.met.degradedSheds.With("journal").Inc()
		s.met.degradedMode.With("journal").Set(1)
		s.logf("server: journal %s: append exceeded %s budget; shed to background", kind, budget)
		s.jsheds.Add(1)
		go func() {
			<-req.done // journalWriter counted/logged any error
			if s.jsheds.Add(-1) == 0 {
				s.met.degradedMode.With("journal").Set(0)
			}
		}()
		return nil
	}
}

// snapshotLocked persists the resident run table (terminal runs live in
// the runstore segments, so the snapshot stays small), superseding the
// journal. Successful cycles are counted per trigger reason in
// dyflow_server_snapshot_total. Caller holds the server mutex.
func (s *Server) snapshotLocked(reason string) error {
	if s.store == nil {
		return nil
	}
	st := persistedState{NextID: s.nextID}
	for _, id := range s.order {
		st.Runs = append(st.Runs, s.runs[id].persisted())
	}
	blob, err := ckpt.Encode(kindState, st)
	if err != nil {
		return err
	}
	if err := s.store.SaveSnapshot(blob); err != nil {
		return err
	}
	s.met.snapshots.With(reason).Inc()
	return nil
}

// restore rebuilds the run table from the snapshot plus the journal tail,
// requeues every run that had not finished (running runs go back to
// queued: the simulation is deterministic, so re-executing from the start
// is safe), and snapshots immediately to compact. Replay is idempotent by
// run ID, so an entry duplicated across snapshot and journal is harmless.
//
// Two recovery rules matter here:
//
//   - Requeueing bypasses the queue's capacity bound (queue.requeue): the
//     bound is admission backpressure for new submissions, and a server
//     killed with queued+running > QueueDepth must still be able to
//     restart and drain.
//   - A run recorded done whose artifact references do not resolve in the
//     blob store — a cached run whose source's terminal record was lost,
//     or missing blob files — is restored as queued instead of as a done
//     run whose artifact GETs would 404 forever. Determinism makes the
//     re-execution (or a cache hit at claim time, once the source
//     re-completes) produce the identical bytes.
func (s *Server) restore(dir string) error {
	store, err := ckpt.NewStore(dir)
	if err != nil {
		return err
	}
	s.store = store

	// The run-history store recovers first: its segments hold every
	// evicted terminal run (the WAL snapshot only carries resident ones),
	// and recovery itself handles whatever a crash left mid-rotation or
	// mid-compaction.
	s.history, err = runstore.Open(runstore.Options{
		Dir:          filepath.Join(dir, "runs"),
		SegmentBytes: s.cfg.RunstoreSegmentBytes,
		Metrics:      s.reg,
		Logger:       s.logger,
	})
	if err != nil {
		return err
	}

	// Track the highest run ID seen anywhere — snapshot, WAL, history
	// segments — so restarted ID allocation never collides with an
	// evicted run.
	maxID := -1
	noteID := func(id string) {
		var n int
		if _, err := fmt.Sscanf(id, "run-%d", &n); err == nil && n > maxID {
			maxID = n
		}
	}

	blob, err := store.LoadSnapshot()
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if blob != nil {
		var st persistedState
		if err := ckpt.Decode(blob, kindState, &st); err != nil {
			return err
		}
		s.nextID = st.NextID
		for _, p := range st.Runs {
			r := s.applyPersisted(p)
			s.runs[r.ID] = r
			s.order = append(s.order, r.ID)
			noteID(r.ID)
		}
	}
	err = store.Replay(func(rec ckpt.Record) error {
		switch rec.Kind {
		case kindSubmit:
			var p persistedRun
			if err := json.Unmarshal(rec.Data, &p); err != nil {
				return err
			}
			noteID(p.ID)
			if _, dup := s.runs[p.ID]; dup {
				return nil
			}
			if m, ok := s.history.GetMeta(p.ID); ok && m.Terminal {
				// Already evicted to the history store with a terminal
				// record — it does not need a resident entry again.
				return nil
			}
			r := s.applyPersisted(p)
			s.runs[r.ID] = r
			s.order = append(s.order, r.ID)
		case kindDone, kindCancel:
			var p persistedRun
			if err := json.Unmarshal(rec.Data, &p); err != nil {
				return err
			}
			r, ok := s.runs[p.ID]
			if !ok || r.State.Terminal() {
				return nil
			}
			r.State = p.State
			r.Err = p.Err
			r.Converged = p.Converged
			r.SimEnd = time.Duration(p.SimEndNs)
			r.simNow.Store(p.SimEndNs)
			r.FinishedAt = p.FinishedAt
			if p.Worker != "" {
				r.Worker = p.Worker
			}
			if p.ArtifactRefs != nil {
				r.Artifacts = p.ArtifactRefs
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Collect the history store's metas once: ID continuity, the cache
	// rebuild, and orphan detection all walk them. The callback must not
	// take s.mu (lock order), so it only copies.
	var histMetas []runstore.Meta
	s.history.EachMeta(func(m runstore.Meta) bool {
		histMetas = append(histMetas, m)
		return true
	})
	for _, m := range histMetas {
		noteID(m.ID)
	}
	resolvableRefs := func(refs map[string]string) bool {
		if len(refs) == 0 {
			return false
		}
		for _, digest := range refs {
			if !s.blobs.Has(digest) {
				return false
			}
		}
		return true
	}

	// Index completed runs for the cache — resident first (live status
	// wins), then evicted history runs — then give cached runs persisted
	// before the reference scheme (no refs of their own) their references
	// back from the run they duplicated.
	for _, id := range s.order {
		r := s.runs[id]
		if r.State == StateDone && !r.Cached && s.refsResolvable(r) {
			if _, have := s.cache[r.Job.Key()]; !have {
				s.cache[r.Job.Key()] = cacheEntryFor(r)
			}
		}
	}
	for _, m := range histMetas {
		if m.State != string(StateDone) || m.Cached || m.Key == "" || s.runs[m.ID] != nil {
			continue
		}
		if _, have := s.cache[m.Key]; have || !resolvableRefs(m.Artifacts) {
			continue
		}
		s.cache[m.Key] = cacheEntry{
			RunID: m.ID, Converged: m.Converged,
			SimEnd: time.Duration(m.SimEndNs), Artifacts: m.Artifacts,
		}
	}
	for _, id := range s.order {
		r := s.runs[id]
		if r.Cached && r.Artifacts == nil {
			if src, ok := s.cache[r.Job.Key()]; ok {
				r.Artifacts = src.Artifacts
			}
		}
	}

	// Demote done runs whose artifacts cannot be served — the orphaned
	// cached run whose source was caught mid-execution by the crash (no
	// donor to re-link from), or a run whose blob files went missing.
	// They re-execute (or hit the cache when the source re-completes)
	// rather than sit "done" with artifact 404s.
	demote := func(r *Run) {
		r.State = StateQueued
		r.Cached = false
		r.Artifacts = nil
		r.Converged = false
		r.SimEnd = 0
		r.FinishedAt = time.Time{}
	}
	for _, id := range s.order {
		r := s.runs[id]
		if r.State == StateDone && !s.refsResolvable(r) {
			demote(r)
		}
	}
	// The same rule for history-only done runs: if their blobs are gone,
	// resurrect them as resident queued runs so they re-execute instead
	// of serving artifact 404s forever.
	for _, m := range histMetas {
		if m.State != string(StateDone) || s.runs[m.ID] != nil || resolvableRefs(m.Artifacts) {
			continue
		}
		p, ok := s.historyPersistedLocked(m.ID)
		if !ok {
			continue
		}
		r := s.applyPersisted(p)
		demote(r)
		s.runs[r.ID] = r
		s.order = append(s.order, r.ID)
	}
	sort.Strings(s.order) // resurrections append out of submission order

	// Terminal resident runs move to the history store and leave the
	// resident map — the bounded-heap invariant holds from boot. Evicted
	// runs' terminal events are synthesized lazily at subscribe time
	// (stream.go), replacing the eager restore-time republication.
	for _, id := range append([]string(nil), s.order...) {
		r := s.runs[id]
		if r == nil || !r.State.Terminal() {
			continue
		}
		if m, ok := s.history.GetMeta(id); ok && m.Terminal && m.State == string(r.State) {
			s.evictTerminalLocked(r) // already recorded by the previous process
		} else if s.historyAppendLocked(r) {
			s.evictTerminalLocked(r)
		}
	}

	// Requeue everything that had not finished. A run caught mid-execution
	// by the crash restarts from scratch — determinism makes that exact.
	// requeue bypasses the capacity bound: these runs were all admitted
	// (and journaled) before the crash, and backpressure applies to new
	// submissions only — a server killed under full load must restart.
	for _, id := range s.order {
		r := s.runs[id]
		if r.State.Terminal() {
			continue // history append failed; it stays resident as-is
		}
		s.resetToQueuedLocked(r, "restore")
		s.inflight[r.Tenant]++
		s.queue.requeue(r.Shard, id)
		s.met.requeued.Inc()
	}

	if s.nextID < maxID+1 {
		s.nextID = maxID + 1
	}
	if err := s.snapshotLocked("restore"); err != nil {
		return err
	}

	// Compact the blob store to what the restored state references —
	// resident runs plus every live history record.
	keep := s.history.Digests()
	for _, r := range s.runs {
		for _, digest := range r.Artifacts {
			keep[digest] = true
		}
	}
	s.blobs.GC(keep)
	return nil
}
