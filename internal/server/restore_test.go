package server

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dyflow/internal/ckpt"
	"dyflow/internal/exp"
)

// TestRestoreOverCapacityQueue is the restore-backpressure regression: a
// server killed with queued+running > QueueDepth must restart. The queue's
// capacity bound is admission backpressure for new submissions; the
// restore requeue used the same bounded push and failed with errQueueFull,
// leaving the service unable to come back up under exactly the load that
// likely killed it.
func TestRestoreOverCapacityQueue(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{Workers: 2, QueueDepth: 2, TenantQuota: -1, CkptDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan *Run, 2)
	release := make(chan struct{})
	s1.beforeRun = func(r *Run) {
		started <- r
		<-release
	}

	// 2 running (held by the hook) + 2 queued = 4 unfinished > depth 2. The
	// first pair must be in the workers' hands before the second pair can
	// clear admission.
	var ids []string
	for i := 0; i < 2; i++ {
		st, err := s1.Submit(fmt.Sprintf("t%d", i), quick(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("workers never picked up runs")
		}
	}
	for i := 2; i < 4; i++ {
		st, err := s1.Submit(fmt.Sprintf("t%d", i), quick(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if depth := s1.QueueDepth(); depth != 2 {
		t.Fatalf("queue depth %d with 2 runs held running", depth)
	}
	// Kill: flag shutdown first so the released runs abort at their next
	// progress tick instead of completing, then let Close reap the workers.
	s1.mu.Lock()
	s1.stopping = true
	s1.mu.Unlock()
	close(release)
	s1.Close()

	s2, err := New(Config{Workers: 2, QueueDepth: 2, TenantQuota: -1, CkptDir: dir})
	if err != nil {
		t.Fatalf("restart with unfinished runs over QueueDepth: %v", err)
	}
	defer s2.Close()
	if got := len(s2.Runs()); got != 4 {
		t.Fatalf("restored %d of 4 runs", got)
	}
	for _, id := range ids {
		if st := await(t, s2, id); st.State != StateDone {
			t.Fatalf("run %s ended %s after over-capacity restart: %s", id, st.State, st.Error)
		}
	}
}

// TestRestoreOrphanedCachedRun is the orphaned-cache regression: a run
// journaled as a cached completion while its cache-source run was caught
// mid-execution by the crash restored as done with no artifacts — every
// artifact GET a permanent 404. Such a run must come back as queued (its
// job is deterministic, so re-execution or a later cache hit reproduces
// the identical bytes), never as done-but-unservable.
func TestRestoreOrphanedCachedRun(t *testing.T) {
	dir := t.TempDir()
	job, err := quick(7).Normalized()
	if err != nil {
		t.Fatal(err)
	}

	// Handcraft the crash WAL the bug needs: run A acknowledged and caught
	// mid-execution (submit record only, no terminal record), run B
	// journaled as a cached done run with no artifact references of its
	// own — it pointed at A's in-memory artifacts, which died with the
	// process.
	store, err := ckpt.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(store.Append(kindSubmit, persistedRun{
		ID: "run-000000", Tenant: "alice", Job: job, State: StateQueued, SubmittedAt: now,
	}))
	must(store.Append(kindSubmit, persistedRun{
		ID: "run-000001", Tenant: "bob", Job: job, State: StateDone, Cached: true,
		Converged: true, SubmittedAt: now, FinishedAt: now,
	}))

	s, err := New(Config{Workers: 1, TenantQuota: -1, CkptDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The moment restore finishes, no run may sit done with unservable
	// artifacts.
	for _, st := range s.Runs() {
		if st.State == StateDone {
			if _, err := s.Artifact(st.ID, exp.ArtifactReport); err != nil {
				t.Fatalf("restored run %s is done but its artifacts 404: %v", st.ID, err)
			}
		}
	}

	for _, id := range []string{"run-000000", "run-000001"} {
		st := await(t, s, id)
		if st.State != StateDone {
			t.Fatalf("run %s ended %s: %s", id, st.State, st.Error)
		}
		if blob, err := s.Artifact(id, exp.ArtifactReport); err != nil || len(blob) == 0 {
			t.Fatalf("run %s report after recovery: %v (%d bytes)", id, err, len(blob))
		}
	}
	a, _ := s.Artifact("run-000000", exp.ArtifactReport)
	b, _ := s.Artifact("run-000001", exp.ArtifactReport)
	if !bytes.Equal(a, b) {
		t.Fatal("recovered runs of the identical job diverge")
	}
}

// TestRestoreMissingBlobsRequeues covers the other orphan shape: done runs
// whose journaled artifact references point at blobs that did not survive
// the crash. They restore as queued and re-execute rather than serving
// artifact 404s.
func TestRestoreMissingBlobsRequeues(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{Workers: 1, TenantQuota: -1, CkptDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s1.Submit("alice", quick(3))
	if err != nil {
		t.Fatal(err)
	}
	first = await(t, s1, first.ID)
	second, err := s1.Submit("bob", quick(3)) // cache hit, shares first's blobs
	if err != nil || !second.Cached {
		t.Fatalf("resubmission not cached: %v %+v", err, second)
	}
	s1.Close()
	if err := os.RemoveAll(filepath.Join(dir, "blobs")); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Workers: 1, TenantQuota: -1, CkptDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, id := range []string{first.ID, second.ID} {
		st := await(t, s2, id)
		if st.State != StateDone {
			t.Fatalf("run %s ended %s after blob loss: %s", id, st.State, st.Error)
		}
		if blob, err := s2.Artifact(id, exp.ArtifactReport); err != nil || len(blob) == 0 {
			t.Fatalf("run %s report after blob loss: %v (%d bytes)", id, err, len(blob))
		}
	}
}

// flakyJournal fails appends for selected record kinds — injected in place
// of the real ckpt.Store to prove journal failures are observable.
type flakyJournal struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (f *flakyJournal) Append(kind string, v any) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail[kind] {
		return fmt.Errorf("flaky journal: append %s refused", kind)
	}
	return nil
}
func (f *flakyJournal) SaveSnapshot([]byte) error            { return nil }
func (f *flakyJournal) JournalSize() int64                   { return 0 }
func (f *flakyJournal) LoadSnapshot() ([]byte, error)        { return nil, os.ErrNotExist }
func (f *flakyJournal) Replay(func(ckpt.Record) error) error { return nil }

// syncBuf is a logger sink safe to read while worker goroutines log.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestJournalFailuresObservable is the journal-observability regression:
// a failed WAL append — durability silently lost before the fix — must
// increment dyflow_server_journal_errors_total and reach the configured
// logger, on both the submit path and the terminal-transition path.
func TestJournalFailuresObservable(t *testing.T) {
	sink := &syncBuf{}
	s, err := New(Config{Workers: 1, Logger: log.New(sink, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	journal := &flakyJournal{fail: map[string]bool{kindSubmit: true}}
	s.mu.Lock()
	s.store = journal
	s.mu.Unlock()

	// Submit-path failure: the submission is refused (never acknowledged
	// without durability) and the failure is counted.
	if _, err := s.Submit("alice", quick(1)); err == nil {
		t.Fatal("submit acknowledged despite journal failure")
	}
	if v, _ := s.Registry().Value("dyflow_server_journal_errors_total"); v != 1 {
		t.Fatalf("journal_errors_total = %v after failed submit append", v)
	}

	// Terminal-path failure: the run still finishes (re-execution after a
	// restart is deterministic) but the lost durability is counted.
	journal.mu.Lock()
	journal.fail = map[string]bool{kindDone: true}
	journal.mu.Unlock()
	st, err := s.Submit("alice", quick(2))
	if err != nil {
		t.Fatal(err)
	}
	if st = await(t, s, st.ID); st.State != StateDone {
		t.Fatalf("run ended %s with failing done-append", st.State)
	}
	if v, _ := s.Registry().Value("dyflow_server_journal_errors_total"); v != 2 {
		t.Fatalf("journal_errors_total = %v after failed done append", v)
	}
	if text := sink.String(); !strings.Contains(text, "journal") {
		t.Fatalf("journal failures never reached the logger:\n%s", text)
	}
	if text := metricsText(t, s); !strings.Contains(text, "dyflow_server_journal_errors_total 2") {
		t.Fatal("journal_errors_total missing from the Prometheus exposition")
	}
}
