package faultnet

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// always returns a transport whose every request suffers mode.
func always(mode Mode, next http.RoundTripper) *Transport {
	p := Plan{Seed: 1, TimeoutHold: 50 * time.Millisecond,
		LatencyMin: time.Millisecond, LatencyMax: 2 * time.Millisecond}
	switch mode {
	case ModeLatency:
		p.Latency = 1
	case ModeDrop:
		p.Drop = 1
	case Mode5xx:
		p.Err5xx = 1
	case ModeTimeout:
		p.Timeout = 1
	case ModeTruncate:
		p.Truncate = 1
	case ModeLostReply:
		p.LostReply = 1
	}
	return New(p, next)
}

// server counts requests served and answers a fixed JSON body with an
// explicit Content-Length (the coordinator's writeJSON discipline).
func server(t *testing.T, served *atomic.Int64) *httptest.Server {
	t.Helper()
	body := []byte(`{"ok":true,"padding":"0123456789012345678901234567890123456789"}`)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestDropNeverReachesServer(t *testing.T) {
	var served atomic.Int64
	srv := server(t, &served)
	client := &http.Client{Transport: always(ModeDrop, nil)}
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("dropped request returned no error")
	}
	if served.Load() != 0 {
		t.Fatalf("dropped request reached the server (%d served)", served.Load())
	}
}

func Test5xxSynthesizedWithoutForwarding(t *testing.T) {
	var served atomic.Int64
	srv := server(t, &served)
	client := &http.Client{Transport: always(Mode5xx, nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if served.Load() != 0 {
		t.Fatalf("5xx-faulted request reached the server (%d served)", served.Load())
	}
}

func TestTruncationDetectableViaContentLength(t *testing.T) {
	var served atomic.Int64
	srv := server(t, &served)
	client := &http.Client{Transport: always(ModeTruncate, nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body read err = %v (%d bytes), want unexpected EOF", err, len(data))
	}
	if int64(len(data)) >= resp.ContentLength {
		t.Fatalf("read %d bytes of an advertised %d: not truncated", len(data), resp.ContentLength)
	}
	if served.Load() != 1 {
		t.Fatalf("truncated request served %d times", served.Load())
	}
}

func TestLostReplyServedButFails(t *testing.T) {
	var served atomic.Int64
	srv := server(t, &served)
	client := &http.Client{Transport: always(ModeLostReply, nil)}
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("lost reply returned no error")
	}
	// The defining property: the server DID process the request.
	if served.Load() != 1 {
		t.Fatalf("lost-reply request served %d times, want 1", served.Load())
	}
}

func TestTimeoutHonorsCallerDeadline(t *testing.T) {
	var served atomic.Int64
	srv := server(t, &served)
	tr := always(ModeTimeout, nil)
	tr.plan.TimeoutHold = 10 * time.Second
	client := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("timed-out request returned no error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline ignored: call took %v", elapsed)
	}
	if served.Load() != 0 {
		t.Fatalf("timeout-faulted request reached the server (%d served)", served.Load())
	}
}

func TestPartitionDirections(t *testing.T) {
	var served atomic.Int64
	srv := server(t, &served)
	tr := New(Plan{Seed: 1}, nil)
	client := &http.Client{Transport: tr}

	tr.Partition(time.Minute, Outbound)
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("outbound-partitioned request returned no error")
	}
	if served.Load() != 0 {
		t.Fatal("outbound partition let the request through")
	}

	tr.Partition(time.Minute, Inbound)
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("inbound-partitioned request returned no error")
	}
	if served.Load() != 1 {
		t.Fatalf("inbound partition served %d requests, want 1 (request lands, reply lost)", served.Load())
	}

	tr.Heal()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("healed transport still failing: %v", err)
	}
	resp.Body.Close()
	if got := tr.Counts()[ModePartition]; got != 2 {
		t.Fatalf("partition fault count = %d, want 2", got)
	}
}

func TestExemptSkipsInjectionButNotPartitions(t *testing.T) {
	var served atomic.Int64
	srv := server(t, &served)
	tr := always(ModeDrop, nil)
	tr.Exempt(func(method, path string) bool { return true })
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("exempt request faulted: %v", err)
	}
	resp.Body.Close()

	tr.Partition(time.Minute, Outbound)
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("partition spared an exempt request")
	}
}

// TestPlanForSeedDeterministicAndEmphasized: the sweep's plan derivation
// is a pure function of the seed, and consecutive seeds rotate which
// mode dominates.
func TestPlanForSeedDeterministicAndEmphasized(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if PlanForSeed(seed) != PlanForSeed(seed) {
			t.Fatalf("PlanForSeed(%d) not deterministic", seed)
		}
	}
	if PlanForSeed(0).Latency <= PlanForSeed(1).Latency {
		t.Fatal("seed 0 should emphasize latency")
	}
	if PlanForSeed(1).Drop <= PlanForSeed(0).Drop {
		t.Fatal("seed 1 should emphasize drops")
	}
	if PlanForSeed(4).LostReply <= PlanForSeed(3).LostReply {
		t.Fatal("seed 4 should emphasize lost replies")
	}
}

// TestSeededRollsReproducible: two transports with the same plan sample
// the same fault sequence when driven sequentially.
func TestSeededRollsReproducible(t *testing.T) {
	var served atomic.Int64
	srv := server(t, &served)
	plan := PlanForSeed(7)
	sequence := func() []Mode {
		tr := New(plan, nil)
		client := &http.Client{Transport: tr, Timeout: time.Second}
		var out []Mode
		tr.OnFault(func(f Fault) { out = append(out, f.Mode) })
		for i := 0; i < 60; i++ {
			resp, err := client.Get(srv.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return out
	}
	a, b := sequence(), sequence()
	if len(a) != len(b) {
		t.Fatalf("fault sequences diverge: %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d diverges: %s vs %s", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no faults injected across 60 requests of a mixed plan")
	}
}
