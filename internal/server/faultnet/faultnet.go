// Package faultnet is the fleet plane's network chaos layer: a seeded,
// deterministic fault-injecting http.RoundTripper that the chaos-net
// sweep (and tests) wrap around a fleet worker's HTTP client to prove
// the coordinator↔worker RPC plane survives a hostile network.
//
// Six fault modes cover the failure taxonomy of a real cluster fabric:
//
//   - latency: the request is delayed before it is forwarded (a
//     congested link or a GC-pausing coordinator);
//   - drop: the connection fails before the request is sent (connection
//     refused / reset — the request never reaches the server);
//   - 5xx: a synthesized 502 comes back without the request being
//     forwarded (a sick proxy or load balancer in the path);
//   - timeout: the call hangs until the caller's context deadline fires
//     (a black-holed packet — per-call deadlines are what save you);
//   - truncate: the request is served but the response body is cut
//     short of its Content-Length (a torn connection mid-transfer);
//   - lost_reply: the request is served — the server's state DID change
//     — but the response never makes it back. This is the mode that
//     forces idempotent retries: a result POST whose 200 is lost must
//     be safe to send again.
//
// On top of the per-request modes, Partition opens a full-outage window
// in one direction: Outbound partitions fail every request before it is
// sent (worker→coordinator direction severed), Inbound partitions serve
// every request but lose every reply (coordinator→worker direction
// severed — the nastier half, because server state keeps changing).
//
// Injection is seeded: a Plan is derived deterministically from a seed
// (PlanForSeed) and the per-request rolls come from a seeded PRNG, so a
// failing sweep seed replays the same fault distribution. Exact
// per-request assignment still depends on goroutine interleaving — the
// guarantees the sweep asserts (no lost runs, no double completions)
// must hold for every interleaving anyway.
package faultnet

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Mode is one kind of injected fault.
type Mode string

// The fault modes, in the order Plan probabilities are consumed.
const (
	ModeLatency   Mode = "latency"
	ModeDrop      Mode = "drop"
	Mode5xx       Mode = "5xx"
	ModeTimeout   Mode = "timeout"
	ModeTruncate  Mode = "truncate"
	ModeLostReply Mode = "lost_reply"
	// ModePartition counts requests failed by an open Partition window
	// (it has no probability of its own).
	ModePartition Mode = "partition"
)

// Direction selects which half of the link a Partition severs.
type Direction int

const (
	// Outbound severs client→server: requests fail before they are sent.
	Outbound Direction = iota
	// Inbound severs server→client: requests are served (server state
	// changes) but every reply is lost.
	Inbound
)

// Plan is a seeded fault schedule: the per-request probability of each
// mode plus the latency envelope. Probabilities are evaluated as one
// cumulative roll per request, so their sum should stay <= 1 (the
// remainder is the clean-forward probability).
type Plan struct {
	Seed int64 `json:"seed"`

	Latency   float64 `json:"latency"`
	Drop      float64 `json:"drop"`
	Err5xx    float64 `json:"err5xx"`
	Timeout   float64 `json:"timeout"`
	Truncate  float64 `json:"truncate"`
	LostReply float64 `json:"lost_reply"`

	// LatencyMin/Max bound an injected latency spike. Zero means
	// 5ms–150ms.
	LatencyMin time.Duration `json:"-"`
	LatencyMax time.Duration `json:"-"`
	// TimeoutHold caps how long a ModeTimeout fault hangs when the
	// caller has no deadline of its own. Zero means 2s.
	TimeoutHold time.Duration `json:"-"`
}

// PlanForSeed derives the chaos-net sweep's fault plan for one seed: a
// moderate mixed background of every mode, with the seed rotating which
// mode is emphasized so a 5-seed sweep covers a latency-heavy, a
// drop-heavy, a 5xx-heavy, a truncation-heavy, and a lost-reply-heavy
// schedule (the acceptance matrix).
func PlanForSeed(seed int64) Plan {
	p := Plan{
		Seed:      seed,
		Latency:   0.05,
		Drop:      0.03,
		Err5xx:    0.03,
		Timeout:   0.01,
		Truncate:  0.03,
		LostReply: 0.03,

		LatencyMin:  2 * time.Millisecond,
		LatencyMax:  60 * time.Millisecond,
		TimeoutHold: 300 * time.Millisecond,
	}
	emphasis := seed % 5
	if emphasis < 0 {
		emphasis = -emphasis
	}
	switch emphasis {
	case 0:
		p.Latency = 0.25
	case 1:
		p.Drop = 0.20
	case 2:
		p.Err5xx = 0.20
	case 3:
		p.Truncate = 0.15
	case 4:
		p.LostReply = 0.15
	}
	return p
}

// Fault describes one injected fault (the OnFault observability hook).
type Fault struct {
	Mode   Mode
	Method string
	Path   string
	Delay  time.Duration
}

// Error is the error a faulted request fails with. It unwraps to
// nothing — callers should treat it exactly like any transport error.
type Error struct{ f Fault }

func (e *Error) Error() string {
	return fmt.Sprintf("faultnet: injected %s on %s %s", e.f.Mode, e.f.Method, e.f.Path)
}

// Transport is the fault-injecting RoundTripper. Wrap it around a
// worker's (or any client's) transport:
//
//	client := &http.Client{Transport: faultnet.New(plan, nil)}
//
// All methods are safe for concurrent use.
type Transport struct {
	plan Plan
	next http.RoundTripper

	mu        sync.Mutex
	rng       *rand.Rand
	partUntil time.Time
	partDir   Direction
	counts    map[Mode]int64

	// exempt, when set, skips injection for matching requests.
	exempt func(method, path string) bool
	// onFault, when set, observes every injected fault.
	onFault func(Fault)
}

// New builds a Transport applying plan on top of next (nil means
// http.DefaultTransport).
func New(plan Plan, next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	if plan.LatencyMin <= 0 {
		plan.LatencyMin = 5 * time.Millisecond
	}
	if plan.LatencyMax < plan.LatencyMin {
		plan.LatencyMax = plan.LatencyMin + 145*time.Millisecond
	}
	if plan.TimeoutHold <= 0 {
		plan.TimeoutHold = 2 * time.Second
	}
	return &Transport{
		plan:   plan,
		next:   next,
		rng:    rand.New(rand.NewSource(plan.Seed)),
		counts: map[Mode]int64{},
	}
}

// Exempt installs a filter: requests it returns true for are never
// faulted (e.g. keep the register path clean so a worker can join).
func (t *Transport) Exempt(fn func(method, path string) bool) { t.exempt = fn }

// OnFault installs an observer called with every injected fault.
func (t *Transport) OnFault(fn func(Fault)) { t.onFault = fn }

// Partition opens a full-outage window for d in the given direction,
// replacing any window already open. The window applies to every
// request regardless of the Exempt filter — a severed link does not
// spare administrative traffic.
func (t *Transport) Partition(d time.Duration, dir Direction) {
	t.mu.Lock()
	t.partUntil = time.Now().Add(d)
	t.partDir = dir
	t.mu.Unlock()
}

// Heal closes any open partition window.
func (t *Transport) Heal() {
	t.mu.Lock()
	t.partUntil = time.Time{}
	t.mu.Unlock()
}

// Counts returns how many faults of each mode have been injected.
func (t *Transport) Counts() map[Mode]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[Mode]int64, len(t.counts))
	for m, n := range t.counts {
		out[m] = n
	}
	return out
}

// roll decides this request's fate: the active partition direction (ok
// true), or one sampled fault mode ("" = forward cleanly).
func (t *Transport) roll() (part Direction, partitioned bool, mode Mode, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if time.Now().Before(t.partUntil) {
		return t.partDir, true, "", 0
	}
	r := t.rng.Float64()
	p := t.plan
	switch {
	case r < p.Latency:
		mode = ModeLatency
		span := p.LatencyMax - p.LatencyMin
		delay = p.LatencyMin
		if span > 0 {
			delay += time.Duration(t.rng.Int63n(int64(span)))
		}
	case r < p.Latency+p.Drop:
		mode = ModeDrop
	case r < p.Latency+p.Drop+p.Err5xx:
		mode = Mode5xx
	case r < p.Latency+p.Drop+p.Err5xx+p.Timeout:
		mode = ModeTimeout
	case r < p.Latency+p.Drop+p.Err5xx+p.Timeout+p.Truncate:
		mode = ModeTruncate
	case r < p.Latency+p.Drop+p.Err5xx+p.Timeout+p.Truncate+p.LostReply:
		mode = ModeLostReply
	}
	return 0, false, mode, delay
}

func (t *Transport) note(f Fault) {
	t.mu.Lock()
	t.counts[f.Mode]++
	fn := t.onFault
	t.mu.Unlock()
	if fn != nil {
		fn(f)
	}
}

// RoundTrip injects this request's fault (if any) and forwards the rest.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := Fault{Method: req.Method, Path: req.URL.Path}

	dir, partitioned, mode, delay := t.roll()
	if partitioned {
		f.Mode = ModePartition
		t.note(f)
		if dir == Outbound {
			// Severed on the way out: the server never sees it.
			return nil, &Error{f}
		}
		// Severed on the way back: serve it, then lose the reply.
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &Error{f}
	}

	if mode != "" && t.exempt != nil && t.exempt(req.Method, req.URL.Path) {
		mode = ""
	}
	switch mode {
	case ModeLatency:
		f.Mode, f.Delay = ModeLatency, delay
		t.note(f)
		if err := sleepReq(req, delay); err != nil {
			return nil, err
		}
		return t.next.RoundTrip(req)
	case ModeDrop:
		f.Mode = ModeDrop
		t.note(f)
		closeBody(req)
		return nil, &Error{f}
	case Mode5xx:
		f.Mode = Mode5xx
		t.note(f)
		closeBody(req)
		return synthesized(req, http.StatusBadGateway, "faultnet: injected 502"), nil
	case ModeTimeout:
		f.Mode = ModeTimeout
		t.note(f)
		closeBody(req)
		if err := sleepReq(req, t.plan.TimeoutHold); err != nil {
			return nil, err // the caller's deadline fired, as intended
		}
		return nil, &Error{f}
	case ModeTruncate:
		f.Mode = ModeTruncate
		t.note(f)
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		truncateBody(resp)
		return resp, nil
	case ModeLostReply:
		f.Mode = ModeLostReply
		t.note(f)
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &Error{f}
	}
	return t.next.RoundTrip(req)
}

// sleepReq sleeps for d or until the request's context is done.
func sleepReq(req *http.Request, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-req.Context().Done():
		return req.Context().Err()
	case <-timer.C:
		return nil
	}
}

// closeBody releases a request body that will never be forwarded.
func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// synthesized builds a response that never touched the server.
func synthesized(req *http.Request, code int, body string) *http.Response {
	return &http.Response{
		StatusCode:    code,
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody replaces the response body with one that delivers only
// half the advertised bytes, then fails with io.ErrUnexpectedEOF. The
// Content-Length header is left intact — that mismatch is exactly how a
// client detects the truncation (the server commits to a length before
// the first body byte; see Server.writeJSON).
func truncateBody(resp *http.Response) {
	n := resp.ContentLength / 2
	if n < 0 {
		n = 64 // unknown length: deliver a token prefix, then tear
	}
	resp.Body = &truncatedBody{r: io.LimitReader(resp.Body, n), c: resp.Body}
}

type truncatedBody struct {
	r io.Reader
	c io.Closer
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF // a torn connection, not a clean end
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.c.Close() }
