package events

import (
	"fmt"
	"sync"
	"testing"

	"dyflow/internal/obs"
)

func counterValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	v, _ := reg.Value(name)
	return v
}

func TestAppendAssignsMonotonicIDs(t *testing.T) {
	reg := obs.NewRegistry()
	j := NewJournal(8, reg)
	for i := 1; i <= 3; i++ {
		ev := j.Append("run-0", Event{Type: TypeProgress})
		if ev.ID != uint64(i) {
			t.Fatalf("event %d got ID %d", i, ev.ID)
		}
		if ev.Run != "run-0" || ev.At.IsZero() {
			t.Fatalf("append did not stamp run/time: %+v", ev)
		}
	}
	// Independent runs number independently.
	if ev := j.Append("run-1", Event{Type: TypeQueued}); ev.ID != 1 {
		t.Fatalf("second run's first event got ID %d", ev.ID)
	}
	if got := counterValue(t, reg, "dyflow_server_events_total"); got != 4 {
		t.Fatalf("events_total = %v, want 4", got)
	}
}

func TestSubscribeResumeAndReplay(t *testing.T) {
	j := NewJournal(16, obs.NewRegistry())
	for i := 0; i < 5; i++ {
		j.Append("r", Event{Type: TypeProgress})
	}

	// Resume past a prefix.
	s := j.Subscribe("r", 3)
	defer s.Close()
	evs, missed := s.Poll()
	if missed != 0 || len(evs) != 2 || evs[0].ID != 4 || evs[1].ID != 5 {
		t.Fatalf("resume from 3: evs=%v missed=%d", evs, missed)
	}

	// A cursor at or beyond the next ID (stale epoch) replays everything.
	s2 := j.Subscribe("r", 99)
	defer s2.Close()
	evs, missed = s2.Poll()
	if missed != 0 || len(evs) != 5 || evs[0].ID != 1 {
		t.Fatalf("stale-cursor replay: evs=%v missed=%d", evs, missed)
	}
}

func TestRingOverrunCountsDrops(t *testing.T) {
	reg := obs.NewRegistry()
	j := NewJournal(4, reg)
	s := j.Subscribe("r", 0)
	defer s.Close()
	for i := 0; i < 10; i++ {
		j.Append("r", Event{Type: TypeProgress})
	}
	evs, missed := s.Poll()
	if missed != 6 {
		t.Fatalf("missed = %d, want 6", missed)
	}
	if len(evs) != 4 || evs[0].ID != 7 || evs[3].ID != 10 {
		t.Fatalf("retained suffix = %v", evs)
	}
	if got := counterValue(t, reg, "dyflow_server_event_drops_total"); got != 6 {
		t.Fatalf("event_drops_total = %v, want 6", got)
	}
	// Nothing new: Poll is idempotent at the tail.
	if evs, missed = s.Poll(); len(evs) != 0 || missed != 0 {
		t.Fatalf("second poll returned %v/%d", evs, missed)
	}
}

func TestSubscribeBeforeRunExists(t *testing.T) {
	reg := obs.NewRegistry()
	j := NewJournal(8, reg)
	s := j.Subscribe("not-yet", 0)
	defer s.Close()
	if evs, _ := s.Poll(); len(evs) != 0 {
		t.Fatalf("empty run yielded events: %v", evs)
	}
	j.Append("not-yet", Event{Type: TypeQueued})
	select {
	case <-s.Notify():
	default:
		t.Fatal("append did not notify the pre-existing subscriber")
	}
	evs, _ := s.Poll()
	if len(evs) != 1 || evs[0].Type != TypeQueued {
		t.Fatalf("got %v", evs)
	}
	if got := reg.Snapshot(); got.Metrics == nil {
		t.Fatal("registry snapshot empty")
	}
}

func TestSubscriberGaugeAndClose(t *testing.T) {
	reg := obs.NewRegistry()
	j := NewJournal(8, reg)
	s := j.Subscribe("r", 0)
	if got := counterValue(t, reg, "dyflow_server_event_subscribers"); got != 1 {
		t.Fatalf("subscribers = %v, want 1", got)
	}
	s.Close()
	s.Close() // idempotent
	if got := counterValue(t, reg, "dyflow_server_event_subscribers"); got != 0 {
		t.Fatalf("subscribers after close = %v, want 0", got)
	}
	// A closed subscriber no longer receives notifications.
	j.Append("r", Event{Type: TypeQueued})
	select {
	case <-s.Notify():
		t.Fatal("closed subscriber was notified")
	default:
	}
}

func TestTerminalClassification(t *testing.T) {
	for typ, want := range map[Type]bool{
		TypeQueued: false, TypeClaimed: false, TypeRunning: false,
		TypeProgress: false, TypeSpan: false, TypeCacheHit: false,
		TypeLeaseExpired: false,
		TypeDone:         true, TypeFailed: true, TypeCanceled: true,
	} {
		if typ.Terminal() != want {
			t.Fatalf("%s.Terminal() = %v, want %v", typ, !want, want)
		}
	}
}

// TestConcurrentAppendPoll exercises the publish/poll paths under the
// race detector: publishers must never block, subscribers must observe
// a gap-free or gap-counted ID sequence.
func TestConcurrentAppendPoll(t *testing.T) {
	j := NewJournal(32, obs.NewRegistry())
	const producers, perProducer = 4, 200

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				j.Append("r", Event{Type: TypeProgress, Worker: fmt.Sprintf("w%d", p)})
			}
		}(p)
	}

	s := j.Subscribe("r", 0)
	defer s.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var seen, missed uint64
	var last uint64
	for {
		evs, m := s.Poll()
		missed += m
		for _, ev := range evs {
			if ev.ID <= last {
				t.Errorf("IDs went backwards: %d after %d", ev.ID, last)
			}
			last = ev.ID
			seen++
		}
		select {
		case <-done:
			evs, m := s.Poll()
			missed += m
			seen += uint64(len(evs))
			if total := seen + missed; total != producers*perProducer {
				t.Fatalf("seen %d + missed %d = %d, want %d", seen, missed, total, producers*perProducer)
			}
			return
		case <-s.Notify():
		}
	}
}
