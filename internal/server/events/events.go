// Package events is the campaign service's per-run event journal: a
// bounded ring buffer of lifecycle events per run, with monotonic event
// IDs and cursor-based subscriptions, feeding the coordinator's SSE
// stream (`GET /v1/runs/{id}/events`).
//
// The journal is built for the orchestrator's side of the bargain: a
// publish NEVER blocks on a consumer. Appending takes the run's ring
// lock, assigns the next ID, overwrites the oldest entry when the ring
// is full, and pokes each subscriber through a size-1 notify channel.
// A subscriber that polls too slowly simply misses the overwritten
// prefix — the gap is counted (dyflow_server_event_drops_total) and
// reported to the consumer, and the run is never slowed down.
//
// IDs are monotonic per run, starting at 1, within one journal *epoch*
// (one coordinator process). A restarted coordinator rebuilds journals
// from the run table with fresh IDs under a new epoch; the SSE layer
// compares epochs so a stale Last-Event-ID triggers a full replay of
// the retained events instead of silently skipping the terminal event.
package events

import (
	"sync"
	"time"

	"dyflow/internal/obs"
	"dyflow/internal/trace"
)

// Type classifies a run lifecycle event.
type Type string

// The event types, in rough lifecycle order.
const (
	TypeQueued       Type = "queued"        // entered the queue (Reason: "", "restore", "lease_expired", "missing_blob", "shutdown", "result_upload_failed")
	TypeClaimed      Type = "claimed"       // a worker (or the local pool) took the run
	TypeRunning      Type = "running"       // execution started
	TypeProgress     Type = "progress"      // simulated time advanced (throttled)
	TypeSpan         Type = "span"          // a flight-recorder suggestion span completed
	TypeCacheHit     Type = "cache_hit"     // answered from the deterministic result cache
	TypeLeaseExpired Type = "lease_expired" // the executing worker's lease lapsed
	TypeDegraded     Type = "degraded"      // a coordinator subsystem shed work on this run (Reason: "journal_slow")
	TypeDone         Type = "done"          // terminal: success
	TypeFailed       Type = "failed"        // terminal: error
	TypeCanceled     Type = "canceled"      // terminal: canceled
)

// Terminal reports whether the type ends a run's stream.
func (t Type) Terminal() bool {
	return t == TypeDone || t == TypeFailed || t == TypeCanceled
}

// Event is one entry in a run's journal. ID and Run are assigned by
// Append; the producer fills the rest.
type Event struct {
	ID   uint64    `json:"id"`
	Run  string    `json:"run"`
	Type Type      `json:"type"`
	At   time.Time `json:"at"`

	Worker     string      `json:"worker,omitempty"`
	Reason     string      `json:"reason,omitempty"`
	Error      string      `json:"error,omitempty"`
	SimSeconds float64     `json:"sim_seconds,omitempty"`
	Cached     bool        `json:"cached,omitempty"`
	Converged  bool        `json:"converged,omitempty"`
	Span       *trace.Span `json:"span,omitempty"`
}

// DefaultBuffer is the per-run ring capacity when the journal is
// created with capacity <= 0.
const DefaultBuffer = 256

// Journal holds one bounded event ring per run.
type Journal struct {
	cap   int
	epoch int64

	mu   sync.Mutex
	runs map[string]*runLog

	published   *obs.CounterVec // dyflow_server_events_total{type}
	drops       *obs.Counter    // dyflow_server_event_drops_total
	subscribers *obs.Gauge      // dyflow_server_event_subscribers
}

type runLog struct {
	mu    sync.Mutex
	next  uint64  // next ID to assign (IDs start at 1)
	buf   []Event // ring storage, len <= cap
	start int     // index of the oldest retained event
	subs  map[*Sub]struct{}
}

// NewJournal creates a journal with the given per-run ring capacity
// (DefaultBuffer when <= 0), registering its metric families in reg.
func NewJournal(capacity int, reg *obs.Registry) *Journal {
	if capacity <= 0 {
		capacity = DefaultBuffer
	}
	return &Journal{
		cap:   capacity,
		epoch: time.Now().UnixNano(),
		runs:  make(map[string]*runLog),
		published: reg.Counter("dyflow_server_events_total",
			"Run lifecycle events published to per-run journals.", "type"),
		drops: reg.Counter("dyflow_server_event_drops_total",
			"Journal events a subscriber missed because the bounded ring overwrote them.").With(),
		subscribers: reg.Gauge("dyflow_server_event_subscribers",
			"Live event-stream subscriptions.").With(),
	}
}

// Epoch identifies this journal instance; it changes across coordinator
// restarts. The SSE layer embeds it in event IDs so resume cursors from
// a previous process are recognized and answered with a full replay.
func (j *Journal) Epoch() int64 { return j.epoch }

// log resolves (or lazily creates) a run's ring — lazily so a client
// may subscribe before the run exists and still see its first event.
func (j *Journal) log(run string) *runLog {
	j.mu.Lock()
	defer j.mu.Unlock()
	l, ok := j.runs[run]
	if !ok {
		l = &runLog{next: 1, subs: make(map[*Sub]struct{})}
		j.runs[run] = l
	}
	return l
}

// Append assigns the next ID to ev, stamps Run (and At, if zero),
// stores it in the run's ring, and wakes subscribers. It never blocks
// on a consumer. The stored event is returned.
func (j *Journal) Append(run string, ev Event) Event {
	l := j.log(run)
	l.mu.Lock()
	ev.ID = l.next
	l.next++
	ev.Run = run
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	if len(l.buf) < j.cap {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[l.start] = ev
		l.start = (l.start + 1) % j.cap
	}
	var subs []*Sub
	if len(l.subs) > 0 {
		subs = make([]*Sub, 0, len(l.subs))
		for s := range l.subs {
			subs = append(subs, s)
		}
	}
	l.mu.Unlock()
	j.published.With(string(ev.Type)).Inc()
	for _, s := range subs {
		select {
		case s.notify <- struct{}{}:
		default: // already poked; the pending Poll will see this event
		}
	}
	return ev
}

// Len returns how many events a run's ring currently retains (0 when
// the run has no ring). The server uses it to decide whether a
// history-evicted run still needs a synthesized terminal event.
func (j *Journal) Len(run string) int {
	j.mu.Lock()
	l := j.runs[run]
	j.mu.Unlock()
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Drop discards a run's ring (no-op when absent). Live subscribers keep
// their *runLog reference and simply see no further events; the server
// calls this when a terminal run ages out of the retained-ring window.
func (j *Journal) Drop(run string) {
	j.mu.Lock()
	delete(j.runs, run)
	j.mu.Unlock()
}

// Sub is one cursor-based subscription to a run's journal.
type Sub struct {
	j      *Journal
	l      *runLog
	cursor uint64
	notify chan struct{}

	closeOnce sync.Once
}

// Subscribe opens a subscription delivering events with ID > after.
// after == 0 replays everything retained. An `after` at or beyond the
// next unassigned ID — a cursor from a previous journal epoch — also
// replays everything retained: after a coordinator restart IDs restart
// too, and at-least-once delivery of the terminal event beats silently
// waiting forever. Close the subscription when done.
func (j *Journal) Subscribe(run string, after uint64) *Sub {
	l := j.log(run)
	s := &Sub{j: j, l: l, cursor: after, notify: make(chan struct{}, 1)}
	l.mu.Lock()
	if after >= l.next {
		s.cursor = 0
	}
	l.subs[s] = struct{}{}
	l.mu.Unlock()
	j.subscribers.Add(1)
	return s
}

// Notify returns the channel poked (non-blockingly) on each append.
// After draining it, call Poll.
func (s *Sub) Notify() <-chan struct{} { return s.notify }

// Poll returns the retained events past the cursor, in ID order, and
// advances the cursor. missed counts events that were overwritten
// before this subscriber saw them (also added to
// dyflow_server_event_drops_total); the stream can tell its consumer
// about the gap instead of silently skipping it.
func (s *Sub) Poll() (evs []Event, missed uint64) {
	s.l.mu.Lock()
	n := len(s.l.buf)
	if n > 0 {
		oldest := s.l.buf[s.l.start].ID
		if s.cursor+1 < oldest {
			missed = oldest - s.cursor - 1
			s.cursor = oldest - 1
		}
		if newest := oldest + uint64(n) - 1; newest > s.cursor {
			evs = make([]Event, 0, newest-s.cursor)
			for i := int(s.cursor + 1 - oldest); i < n; i++ {
				evs = append(evs, s.l.buf[(s.l.start+i)%n])
			}
			s.cursor = newest
		}
	}
	s.l.mu.Unlock()
	if missed > 0 {
		s.j.drops.Add(int64(missed))
	}
	return evs, missed
}

// Close detaches the subscription. Safe to call more than once.
func (s *Sub) Close() {
	s.closeOnce.Do(func() {
		s.l.mu.Lock()
		delete(s.l.subs, s)
		s.l.mu.Unlock()
		s.j.subscribers.Add(-1)
	})
}
