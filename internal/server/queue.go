package server

import (
	"errors"
	"hash/fnv"
	"strconv"
	"sync"

	"dyflow/internal/obs"
)

// errQueueFull is returned by push when the queue is at capacity — the
// submission handler turns it into 429 backpressure.
var errQueueFull = errors.New("server: run queue full")

// shardedQueue is the bounded run queue behind the worker pool: one FIFO
// shard per worker slot, submissions hashed by tenant to a shard (so one
// tenant's runs execute in submission order), workers draining their own
// shard first and stealing from the others when it is empty. The capacity
// bound is global — when the queue is full, submissions are rejected with
// backpressure rather than buffered without limit.
type shardedQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	shards [][]string // run IDs, FIFO per shard
	size   int
	max    int
	closed bool
	depth  *obs.GaugeVec // dyflow_server_queue_depth{shard}
}

func newShardedQueue(shards, max int, depth *obs.GaugeVec) *shardedQueue {
	if shards < 1 {
		shards = 1
	}
	q := &shardedQueue{shards: make([][]string, shards), max: max, depth: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// shardFor hashes a tenant to its home shard.
func (q *shardedQueue) shardFor(tenant string) int {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	return int(h.Sum32() % uint32(len(q.shards)))
}

func (q *shardedQueue) gauge(shard int) {
	q.depth.With(strconv.Itoa(shard)).Set(float64(len(q.shards[shard])))
}

// push appends a run to the shard, failing with errQueueFull at capacity.
func (q *shardedQueue) push(shard int, id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errors.New("server: queue closed")
	}
	if q.size >= q.max {
		return errQueueFull
	}
	q.shards[shard] = append(q.shards[shard], id)
	q.size++
	q.gauge(shard)
	q.cond.Signal()
	return nil
}

// requeue reinserts a run at the front of its shard, bypassing the
// capacity bound: the bound is admission backpressure for *new*
// submissions, while a requeued run was already admitted once — restore
// after a crash, a lapsed fleet lease, a rejected result upload. Front
// insertion keeps a requeued run ahead of work submitted after it. The
// queue may transiently exceed max; push keeps rejecting new submissions
// until it drains below the bound again.
func (q *shardedQueue) requeue(shard int, id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		// Shutting down: the run stays queued in the run table and the
		// shutdown snapshot (or journal) carries it to the next process.
		return
	}
	q.shards[shard] = append([]string{id}, q.shards[shard]...)
	q.size++
	q.gauge(shard)
	q.cond.Signal()
}

// pop blocks until a run is available (the worker's own shard first, then
// stealing round-robin from the others) or the queue is closed (ok=false).
func (q *shardedQueue) pop(worker int) (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		n := len(q.shards)
		for i := 0; i < n; i++ {
			s := (worker + i) % n
			if len(q.shards[s]) > 0 {
				id := q.shards[s][0]
				q.shards[s] = q.shards[s][1:]
				q.size--
				q.gauge(s)
				return id, true
			}
		}
		if q.closed {
			return "", false
		}
		q.cond.Wait()
	}
}

// tryPopAny pops from the first non-empty shard without blocking — the
// fleet claim handler polls it inside its own bounded wait loop.
func (q *shardedQueue) tryPopAny() (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for s := range q.shards {
		if len(q.shards[s]) > 0 {
			id := q.shards[s][0]
			q.shards[s] = q.shards[s][1:]
			q.size--
			q.gauge(s)
			return id, true
		}
	}
	return "", false
}

// remove deletes a queued run (cancellation), reporting whether it was
// still queued.
func (q *shardedQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for s := range q.shards {
		for i, have := range q.shards[s] {
			if have == id {
				q.shards[s] = append(q.shards[s][:i], q.shards[s][i+1:]...)
				q.size--
				q.gauge(s)
				return true
			}
		}
	}
	return false
}

// depthTotal returns the number of queued runs.
func (q *shardedQueue) depthTotal() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// close wakes every blocked worker and makes pop return ok=false.
func (q *shardedQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
