package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dyflow/internal/server/events"
	"dyflow/internal/server/fleet"
)

// Coordinator-side companions to the faultnet sweep (loadgen.ChaosNet):
// each test here pins one specific degraded-network contract the sweep
// exercises statistically — result idempotency, the upload-failure
// requeue path, journal shedding, and long-poll disconnects.

// postFleetJSON posts one JSON body to the coordinator's worker API and
// decodes the reply, returning the HTTP status.
func postFleetJSON(t *testing.T, addr, path string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read body: %v", path, err)
	}
	if out != nil && resp.StatusCode < 300 && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decode %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode
}

// awaitRunEvent polls a run's event journal until an event of the given
// type and reason appears.
func awaitRunEvent(t *testing.T, sub *events.Sub, typ events.Type, reason string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		evs, _ := sub.Poll()
		for _, ev := range evs {
			if ev.Type == typ && ev.Reason == reason {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("event %s/%s never appeared on the run's stream", typ, reason)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFaultResultRetransmitDeduplicated is the lost-200 drill: a worker
// whose completed-result reply was eaten by the network retransmits the
// same ResultRequest. The lease ID is the idempotency key, so the retry
// must be acknowledged as a duplicate — not rejected stale, and above
// all not applied twice.
func TestFaultResultRetransmitDeduplicated(t *testing.T) {
	s, addr := startFleetCoordinator(t, 2*time.Second)

	w, err := fleet.JoinFleet(fleet.WorkerOptions{Coordinator: addr, Name: "w", ClaimWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	st, err := s.Submit("alice", quick(300))
	if err != nil {
		t.Fatal(err)
	}
	if st = await(t, s, st.ID); st.State != StateDone {
		t.Fatalf("run ended %s: %s", st.State, st.Error)
	}

	// The lease the run completed under. The terminal run has been
	// evicted to the history store, so the (run, lease) pair lives in
	// the recentDone dedup window handleResult consults.
	s.mu.Lock()
	doneLease := s.recentDone[st.ID]
	s.mu.Unlock()
	if doneLease == "" {
		t.Fatal("terminal run recorded no completing lease")
	}
	workers := s.fleet.Workers()
	if len(workers) != 1 {
		t.Fatalf("fleet has %d workers, want 1", len(workers))
	}
	workerID := workers[0].ID

	// Retransmit the completion as the worker's retry loop would.
	var res fleet.ResultResponse
	code := postFleetJSON(t, addr, "/v1/workers/"+workerID+"/result",
		fleet.ResultRequest{RunID: st.ID, LeaseID: doneLease, Converged: true}, &res)
	if code != http.StatusOK || !res.Accepted || res.Reason != "duplicate" {
		t.Fatalf("retransmit answered %d %+v, want Accepted/duplicate", code, res)
	}

	if v := counter(t, s, "dyflow_server_fleet_duplicate_results_total"); v != 1 {
		t.Fatalf("duplicate_results_total = %v, want 1", v)
	}
	if v := counter(t, s, "dyflow_server_fleet_stale_results_total"); v != 0 {
		t.Fatalf("stale_results_total = %v — a retransmit must not count stale", v)
	}
	if v := counter(t, s, "dyflow_server_runs_total"); v != 1 {
		t.Fatalf("runs_total = %v — the duplicate re-finished the run", v)
	}
	if final, _ := s.RunStatus(st.ID); final.State != StateDone {
		t.Fatalf("run left %s after duplicate upload", final.State)
	}
}

// TestFaultUploadFailureRequeuesToEventStream drives the requeue contract
// over the wire, deterministically: a (hand-rolled) worker claims a run
// and reports Requeue — its execution succeeded but the blob plane
// refused every artifact PUT. The coordinator must accept, publish
// queued/result_upload_failed on the run's stream, and let another
// worker finish the run with exactly one terminal transition.
func TestFaultUploadFailureRequeuesToEventStream(t *testing.T) {
	s, addr := startFleetCoordinator(t, 10*time.Second)

	st, err := s.Submit("alice", quick(301))
	if err != nil {
		t.Fatal(err)
	}
	sub := s.events.Subscribe(st.ID, 0)
	defer sub.Close()

	var reg fleet.RegisterResponse
	if code := postFleetJSON(t, addr, "/v1/workers/register",
		fleet.RegisterRequest{Name: "manual", Slots: 1}, &reg); code != http.StatusOK {
		t.Fatalf("register: %d", code)
	}
	var claim fleet.ClaimResponse
	if code := postFleetJSON(t, addr, "/v1/workers/"+reg.WorkerID+"/claim",
		fleet.ClaimRequest{WaitMs: 10000}, &claim); code != http.StatusOK || claim.RunID != st.ID {
		t.Fatalf("claim: %d %+v, want run %s", code, claim, st.ID)
	}

	var res fleet.ResultResponse
	code := postFleetJSON(t, addr, "/v1/workers/"+reg.WorkerID+"/result",
		fleet.ResultRequest{RunID: st.ID, LeaseID: claim.LeaseID,
			Requeue: true, Error: "artifact upload: injected outage"}, &res)
	if code != http.StatusOK || !res.Accepted || res.Reason != "requeued" {
		t.Fatalf("requeue answered %d %+v, want Accepted/requeued", code, res)
	}
	awaitRunEvent(t, sub, events.TypeQueued, "result_upload_failed")

	// A healthy worker picks the requeued run up and finishes it.
	w, err := fleet.JoinFleet(fleet.WorkerOptions{Coordinator: addr, Name: "healthy", ClaimWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	if final := await(t, s, st.ID); final.State != StateDone {
		t.Fatalf("requeued run ended %s: %s", final.State, final.Error)
	}
	if v := counter(t, s, "dyflow_server_runs_total"); v != 1 {
		t.Fatalf("runs_total = %v for 1 submission", v)
	}
	if v := counter(t, s, "dyflow_server_fleet_lease_expiries_total"); v != 0 {
		t.Fatalf("lease_expiries_total = %v — the requeue path must release the lease, not abandon it", v)
	}
}

// blobOutageTransport fails every blob RPC until healed, and shrinks the
// lease TTL a claim response reports. The worker then believes its lease
// is far shorter than it really is, so it exhausts its artifact-upload
// retries and hands the lease back (Requeue) long before the
// coordinator's expiry sweep could race it — the deterministic way to
// drive the upload-failure requeue end to end through a real Worker.
type blobOutageTransport struct {
	healed  atomic.Bool
	leaseMs int64
	next    http.RoundTripper
}

func (tr *blobOutageTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if !tr.healed.Load() && strings.HasPrefix(r.URL.Path, "/v1/blobs/") {
		return nil, fmt.Errorf("blob outage: %s %s refused", r.Method, r.URL.Path)
	}
	resp, err := tr.next.RoundTrip(r)
	if err != nil || tr.leaseMs <= 0 ||
		!strings.HasSuffix(r.URL.Path, "/claim") || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	var claim fleet.ClaimResponse
	if json.Unmarshal(body, &claim) == nil && claim.RunID != "" {
		claim.LeaseTTLMs = tr.leaseMs
		body, _ = json.Marshal(claim)
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
	return resp, nil
}

// TestFaultWorkerBlobOutageRequeuesAndRecovers is the full loop of the
// degraded-blob-plane story: a real Worker executes a run, cannot upload
// any artifact, retries with backoff until its (shrunk) lease horizon,
// hands the run back for requeue — observable on the event stream — and
// completes it after the outage heals. No lease expiry, no stale result,
// exactly one terminal transition.
func TestFaultWorkerBlobOutageRequeuesAndRecovers(t *testing.T) {
	s, addr := startFleetCoordinator(t, 10*time.Second)

	tr := &blobOutageTransport{leaseMs: 400, next: http.DefaultTransport}
	w, err := fleet.JoinFleet(fleet.WorkerOptions{
		Coordinator: addr,
		Name:        "outage",
		ClaimWait:   50 * time.Millisecond,
		CallTimeout: 2 * time.Second,
		BackoffSeed: 11,
		Client:      &http.Client{Timeout: 10 * time.Second, Transport: tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	st, err := s.Submit("alice", quick(302))
	if err != nil {
		t.Fatal(err)
	}
	sub := s.events.Subscribe(st.ID, 0)
	defer sub.Close()

	// The worker must give the run back once its upload horizon lapses…
	awaitRunEvent(t, sub, events.TypeQueued, "result_upload_failed")
	// …and finish it for real once the blob plane heals.
	tr.healed.Store(true)
	if final := await(t, s, st.ID); final.State != StateDone {
		t.Fatalf("run ended %s after the outage healed: %s", final.State, final.Error)
	}

	if v := counter(t, s, "dyflow_server_runs_total"); v != 1 {
		t.Fatalf("runs_total = %v for 1 submission", v)
	}
	if v := counter(t, s, "dyflow_server_fleet_lease_expiries_total"); v != 0 {
		t.Fatalf("lease_expiries_total = %v — the requeue must beat the sweep by construction", v)
	}
	if v := counter(t, s, "dyflow_server_fleet_stale_results_total"); v != 0 {
		t.Fatalf("stale_results_total = %v", v)
	}
	if v, _ := w.Registry().Value("dyflow_worker_rpc_retries_total"); v < 1 {
		t.Fatalf("worker_rpc_retries_total = %v — the outage was never retried through", v)
	}
}

// slowWAL delays every journal append — a wedged WAL device, not a
// failing one.
type slowWAL struct {
	journalStore
	delay time.Duration
}

func (j *slowWAL) Append(kind string, v any) error {
	time.Sleep(j.delay)
	return j.journalStore.Append(kind, v)
}

// TestFaultSlowJournalShedsNotBlocks pins the journal degradation
// contract: an append that exceeds the budget sheds to the background
// writer instead of stalling the API — counted as a shed (not a journal
// error: the append still completes), with the degraded-mode gauge held
// at 1 until the backlog drains.
func TestFaultSlowJournalShedsNotBlocks(t *testing.T) {
	s, err := New(Config{Workers: 1, CkptDir: t.TempDir(), JournalBudget: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// The writer goroutine picks the store up through its request
	// channel, so swapping in the slow wrapper here is ordered before
	// every append it will serve.
	s.mu.Lock()
	s.store = &slowWAL{journalStore: s.store, delay: 300 * time.Millisecond}
	s.mu.Unlock()

	start := time.Now()
	st, err := s.Submit("alice", quick(303))
	ackIn := time.Since(start)
	if err != nil {
		t.Fatalf("submission refused under a slow (not failing) journal: %v", err)
	}
	if ackIn >= 250*time.Millisecond {
		t.Fatalf("submission ack took %s — it waited out the 300ms append instead of shedding at the 25ms budget", ackIn)
	}
	if v := counter(t, s, "dyflow_server_degraded_sheds_total"); v < 1 {
		t.Fatalf("degraded_sheds_total = %v after a shed submit append", v)
	}
	if v := counter(t, s, "dyflow_server_journal_errors_total"); v != 0 {
		t.Fatalf("journal_errors_total = %v — slow is not failed", v)
	}

	if st = await(t, s, st.ID); st.State != StateDone {
		t.Fatalf("run ended %s under a slow journal", st.State)
	}
	// The background writer finishes the late appends; the gauge clears.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v := counter(t, s, "dyflow_server_degraded_mode"); v == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("degraded_mode stuck at %v after the backlog drained",
				counter(t, s, "dyflow_server_degraded_mode"))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFaultClaimLongPollHonorsDisconnect pins the partitioned-worker
// contract on the claim path: a client that vanishes mid-long-poll must
// not pin a handler goroutine for the full window.
func TestFaultClaimLongPollHonorsDisconnect(t *testing.T) {
	s, err := New(Config{Workers: -1, TenantQuota: -1, LeaseTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := s.fleet.Register("lurker", 1)

	body, _ := json.Marshal(fleet.ClaimRequest{WaitMs: 25000})
	req := httptest.NewRequest(http.MethodPost, "/v1/workers/"+id+"/claim", bytes.NewReader(body))
	ctx, cancel := context.WithCancel(req.Context())
	req = req.WithContext(ctx)
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel() // the worker's side of the connection drops
	}()

	rec := httptest.NewRecorder()
	start := time.Now()
	s.Handler().ServeHTTP(rec, req)
	held := time.Since(start)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("disconnected claim answered %d, want 204", rec.Code)
	}
	if held >= 5*time.Second {
		t.Fatalf("handler held the goroutine %s after the client disconnected (25s window)", held)
	}
}
