package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"

	"dyflow/internal/exp"
)

// TestTerminalRunsEvicted pins the bounded-heap contract: a run that
// reaches a terminal state leaves the resident run map (its record moves
// to the history store) while every read path — status, listing,
// artifacts — keeps answering for it.
func TestTerminalRunsEvicted(t *testing.T) {
	s, err := New(Config{Workers: 2, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 12
	var ids []string
	for i := 0; i < n; i++ {
		st, err := s.Submit("alice", quick(int64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := await(t, s, id); st.State != StateDone {
			t.Fatalf("run %s ended %s: %s", id, st.State, st.Error)
		}
	}

	s.mu.Lock()
	resident := len(s.runs)
	s.mu.Unlock()
	if resident != 0 {
		t.Fatalf("%d terminal runs still resident; want all evicted to the history store", resident)
	}
	if got := s.History().Len(); got != n {
		t.Fatalf("history holds %d runs, want %d", got, n)
	}

	// Every read path still answers for evicted runs.
	if all := s.Runs(); len(all) != n {
		t.Fatalf("Runs() lists %d, want %d", len(all), n)
	}
	st, err := s.RunStatus(ids[0])
	if err != nil || st.State != StateDone {
		t.Fatalf("evicted run status: %+v (%v)", st, err)
	}
	if st.FinishedAt == nil || st.StartedAt == nil {
		t.Fatalf("evicted run lost phase timestamps: %+v", st)
	}
	blob, err := s.Artifact(ids[0], exp.ArtifactReport)
	if err != nil || len(blob) == 0 {
		t.Fatalf("evicted run artifact: %v (%d bytes)", err, len(blob))
	}

	// A duplicate submission still hits the result cache after eviction.
	dup, err := s.Submit("bob", quick(1000))
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached || dup.State != StateDone {
		t.Fatalf("duplicate of an evicted run not served from cache: %+v", dup)
	}
	// And cancel on an evicted terminal run reports its final state, not 404.
	if st, err := s.Cancel(ids[1]); err != nil || st.State != StateDone {
		t.Fatalf("cancel of evicted run: %+v (%v)", st, err)
	}
}

// TestListPaginationAndFilters drives GET /v1/runs: the default limit,
// tenant/state filters, cursor pagination to exhaustion, and the 400s
// for malformed parameters.
func TestListPaginationAndFilters(t *testing.T) {
	s, err := New(Config{Workers: 2, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 9
	var ids []string
	for i := 0; i < n; i++ {
		st, err := s.Submit(fmt.Sprintf("tenant-%d", i%3), quick(int64(2000+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := await(t, s, id); st.State != StateDone {
			t.Fatalf("run %s ended %s: %s", id, st.State, st.Error)
		}
	}

	getPage := func(query string) RunPage {
		t.Helper()
		resp, err := http.Get("http://" + addr + "/v1/runs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/runs%s: %s (%v) %s", query, resp.Status, err, data)
		}
		var page RunPage
		if err := json.Unmarshal(data, &page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	// Unfiltered with no limit: the default applies and covers all 9.
	if page := getPage(""); len(page.Runs) != n || page.NextPageToken != "" {
		t.Fatalf("default listing: %d runs, token %q", len(page.Runs), page.NextPageToken)
	}

	// Paginate with limit=4: 4 + 4 + 1, distinct runs, then no token.
	seen := map[string]bool{}
	token := ""
	pages := 0
	for {
		q := "?limit=4"
		if token != "" {
			q += "&page_token=" + url.QueryEscape(token)
		}
		page := getPage(q)
		if len(page.Runs) > 4 {
			t.Fatalf("page %d has %d runs, over limit 4", pages, len(page.Runs))
		}
		for _, st := range page.Runs {
			if seen[st.ID] {
				t.Fatalf("run %s repeated across pages", st.ID)
			}
			seen[st.ID] = true
		}
		pages++
		if token = page.NextPageToken; token == "" {
			break
		}
	}
	if len(seen) != n || pages != 3 {
		t.Fatalf("pagination saw %d runs over %d pages, want %d over 3", len(seen), pages, n)
	}

	// Tenant filter.
	page := getPage("?tenant=tenant-0")
	if len(page.Runs) != 3 {
		t.Fatalf("tenant-0 filter returned %d runs, want 3", len(page.Runs))
	}
	for _, st := range page.Runs {
		if st.Tenant != "tenant-0" {
			t.Fatalf("tenant filter leaked %+v", st)
		}
	}
	// State filter: everything is done; canceled matches nothing.
	if page := getPage("?state=done"); len(page.Runs) != n {
		t.Fatalf("state=done returned %d, want %d", len(page.Runs), n)
	}
	if page := getPage("?state=canceled"); len(page.Runs) != 0 {
		t.Fatalf("state=canceled returned %d, want 0", len(page.Runs))
	}
	// Time filter: since far in the future matches nothing.
	future := time.Now().Add(24 * time.Hour).UTC().Format(time.RFC3339)
	if page := getPage("?since=" + url.QueryEscape(future)); len(page.Runs) != 0 {
		t.Fatalf("future since returned %d runs", len(page.Runs))
	}

	// Malformed parameters are 400s, not 500s or empty pages.
	for _, q := range []string{"?limit=0", "?limit=-3", "?limit=nope", "?since=yesterday", "?page_token=%21%21not-base64"} {
		resp, err := http.Get("http://" + addr + "/v1/runs" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/runs%s: %s, want 400", q, resp.Status)
		}
	}
}

// TestJournalSizeTriggeredSnapshot pins the WAL-growth satellite: once
// the journal passes SnapshotJournalBytes, the server snapshots and
// resets it in place (observable via dyflow_server_snapshot_total
// {reason="journal_size"}), and a process killed after the reset still
// restores every acknowledged run.
func TestJournalSizeTriggeredSnapshot(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Workers: 2, CkptDir: dir, TenantQuota: -1, SnapshotJournalBytes: 512})
	if err != nil {
		t.Fatal(err)
	}

	const n = 10
	var ids []string
	for i := 0; i < n; i++ {
		st, err := s1.Submit("alice", quick(int64(3000+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := await(t, s1, id); st.State != StateDone {
			t.Fatalf("run %s ended %s: %s", id, st.State, st.Error)
		}
	}

	// The journal writer snapshots between appends; give it a moment.
	sizeSnapshots := func() float64 {
		for _, m := range s1.Registry().Snapshot().Metrics {
			if m.Name != "dyflow_server_snapshot_total" {
				continue
			}
			for _, sr := range m.Series {
				if sr.Labels["reason"] == "journal_size" {
					return sr.Value
				}
			}
		}
		return 0
	}
	deadline := time.Now().Add(10 * time.Second)
	for sizeSnapshots() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("size-triggered snapshot never happened")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if size := s1.store.JournalSize(); size > 512 {
		t.Fatalf("journal still %d bytes after size-triggered snapshot", size)
	}
	s1.Close() // hard stop: no shutdown snapshot

	// The next process restores every acknowledged run.
	s2, err := New(Config{Workers: 2, CkptDir: dir, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, id := range ids {
		st, err := s2.RunStatus(id)
		if err != nil {
			t.Fatalf("run %s lost across restart: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("run %s restored as %s", id, st.State)
		}
	}
}
