package server

import (
	"math"
	"sort"
)

// GET /v1/analytics — cross-campaign aggregates computed over the run
// table: per-tenant and per-scenario counts and outcomes, queue-wait
// vs execution latency percentiles from the per-run phase timestamps,
// cache hit rates, and the lease-expiry/requeue counters. This is the
// first increment of the ROADMAP run-history item: the table is still
// the in-memory one (plus the WAL), but the query side exists.

// LatencySummary is a nearest-rank percentile summary over a sample
// set, in seconds.
type LatencySummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean_s"`
	P50   float64 `json:"p50_s"`
	P90   float64 `json:"p90_s"`
	P99   float64 `json:"p99_s"`
	Max   float64 `json:"max_s"`
}

// GroupAnalytics aggregates one tenant's or one scenario's runs.
type GroupAnalytics struct {
	Name      string           `json:"name"`
	Runs      int              `json:"runs"`
	ByState   map[RunState]int `json:"by_state"`
	CacheHits int              `json:"cache_hits"`
	QueueWait LatencySummary   `json:"queue_wait"`
	Execution LatencySummary   `json:"execution"`
}

// Analytics is the GET /v1/analytics payload.
type Analytics struct {
	Runs      int              `json:"runs"`
	ByState   map[RunState]int `json:"by_state"`
	CacheHits int              `json:"cache_hits"`
	// CacheHitRate is cache hits over total runs (0 when no runs).
	CacheHitRate float64 `json:"cache_hit_rate"`

	// QueueWait summarizes ClaimedAt−QueuedAt over runs a worker
	// claimed; Execution summarizes FinishedAt−StartedAt over runs that
	// finished executing (cached answers never execute and are excluded
	// from both).
	QueueWait LatencySummary `json:"queue_wait"`
	Execution LatencySummary `json:"execution"`

	// LeaseExpiries and RestoreRequeues surface the requeue-rate
	// counters (dyflow_server_fleet_lease_expiries_total,
	// dyflow_server_restore_requeued_total).
	LeaseExpiries   int64 `json:"lease_expiries"`
	RestoreRequeues int64 `json:"restore_requeues"`

	Tenants   []GroupAnalytics `json:"tenants"`
	Scenarios []GroupAnalytics `json:"scenarios"`
}

// Analytics computes the cross-campaign aggregate view.
func (s *Server) Analytics() Analytics {
	s.mu.Lock()
	defer s.mu.Unlock()

	a := Analytics{ByState: map[RunState]int{}}
	var queueWaits, execTimes []float64
	tenants := map[string]*groupAcc{}
	scenarios := map[string]*groupAcc{}

	accumulate := func(m map[string]*groupAcc, key string, r *Run, qw, ex float64) {
		g := m[key]
		if g == nil {
			g = &groupAcc{byState: map[RunState]int{}}
			m[key] = g
		}
		g.runs++
		g.byState[r.State]++
		if r.Cached {
			g.cacheHits++
		}
		if qw >= 0 {
			g.queueWaits = append(g.queueWaits, qw)
		}
		if ex >= 0 {
			g.execTimes = append(g.execTimes, ex)
		}
	}

	for _, id := range s.order {
		r := s.runs[id]
		a.Runs++
		a.ByState[r.State]++
		if r.Cached {
			a.CacheHits++
		}
		var qw, ex float64 = -1, -1
		if !r.ClaimedAt.IsZero() && !r.QueuedAt.IsZero() {
			qw = r.ClaimedAt.Sub(r.QueuedAt).Seconds()
			queueWaits = append(queueWaits, qw)
		}
		if !r.FinishedAt.IsZero() && !r.StartedAt.IsZero() {
			ex = r.FinishedAt.Sub(r.StartedAt).Seconds()
			execTimes = append(execTimes, ex)
		}
		accumulate(tenants, r.Tenant, r, qw, ex)
		accumulate(scenarios, r.Job.Scenario, r, qw, ex)
	}

	if a.Runs > 0 {
		a.CacheHitRate = float64(a.CacheHits) / float64(a.Runs)
	}
	a.QueueWait = summarize(queueWaits)
	a.Execution = summarize(execTimes)
	if v, ok := s.reg.Value("dyflow_server_fleet_lease_expiries_total"); ok {
		a.LeaseExpiries = int64(v)
	}
	if v, ok := s.reg.Value("dyflow_server_restore_requeued_total"); ok {
		a.RestoreRequeues = int64(v)
	}
	a.Tenants = renderGroups(tenants)
	a.Scenarios = renderGroups(scenarios)
	return a
}

type groupAcc struct {
	runs       int
	byState    map[RunState]int
	cacheHits  int
	queueWaits []float64
	execTimes  []float64
}

func renderGroups(groups map[string]*groupAcc) []GroupAnalytics {
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]GroupAnalytics, 0, len(names))
	for _, n := range names {
		g := groups[n]
		out = append(out, GroupAnalytics{
			Name:      n,
			Runs:      g.runs,
			ByState:   g.byState,
			CacheHits: g.cacheHits,
			QueueWait: summarize(g.queueWaits),
			Execution: summarize(g.execTimes),
		})
	}
	return out
}

// summarize computes a nearest-rank percentile summary; samples are
// sorted in place.
func summarize(samples []float64) LatencySummary {
	n := len(samples)
	if n == 0 {
		return LatencySummary{}
	}
	sort.Float64s(samples)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return samples[i]
	}
	return LatencySummary{
		Count: n,
		Mean:  sum / float64(n),
		P50:   rank(0.50),
		P90:   rank(0.90),
		P99:   rank(0.99),
		Max:   samples[n-1],
	}
}
