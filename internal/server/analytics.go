package server

import (
	"math"
	"sort"
	"time"

	"dyflow/internal/runstore"
)

// GET /v1/analytics — cross-campaign aggregates computed over the full
// run history: per-tenant and per-scenario counts and outcomes,
// queue-wait vs execution latency percentiles from the per-run phase
// timestamps, cache hit rates, the lease-expiry/requeue counters, and
// (on request) time-bucketed submission trends. Terminal runs are
// evicted from the resident table into the runstore segments, so the
// aggregate folds history metas first and overlays the resident
// (live) runs on top.

// LatencySummary is a nearest-rank percentile summary over a sample
// set, in seconds.
type LatencySummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean_s"`
	P50   float64 `json:"p50_s"`
	P90   float64 `json:"p90_s"`
	P99   float64 `json:"p99_s"`
	Max   float64 `json:"max_s"`
}

// GroupAnalytics aggregates one tenant's or one scenario's runs.
type GroupAnalytics struct {
	Name      string           `json:"name"`
	Runs      int              `json:"runs"`
	ByState   map[RunState]int `json:"by_state"`
	CacheHits int              `json:"cache_hits"`
	QueueWait LatencySummary   `json:"queue_wait"`
	Execution LatencySummary   `json:"execution"`
}

// Analytics is the GET /v1/analytics payload.
type Analytics struct {
	Runs      int              `json:"runs"`
	ByState   map[RunState]int `json:"by_state"`
	CacheHits int              `json:"cache_hits"`
	// CacheHitRate is cache hits over total runs (0 when no runs).
	CacheHitRate float64 `json:"cache_hit_rate"`

	// QueueWait summarizes ClaimedAt−QueuedAt over runs a worker
	// claimed; Execution summarizes FinishedAt−StartedAt over runs that
	// finished executing (cached answers never execute and are excluded
	// from both).
	QueueWait LatencySummary `json:"queue_wait"`
	Execution LatencySummary `json:"execution"`

	// LeaseExpiries and RestoreRequeues surface the requeue-rate
	// counters (dyflow_server_fleet_lease_expiries_total,
	// dyflow_server_restore_requeued_total).
	LeaseExpiries   int64 `json:"lease_expiries"`
	RestoreRequeues int64 `json:"restore_requeues"`

	Tenants   []GroupAnalytics `json:"tenants"`
	Scenarios []GroupAnalytics `json:"scenarios"`

	// Trends is the time-bucketed submission view, present when the
	// request asked for one (?trend_bucket=1h&trend_buckets=24).
	TrendBucketSeconds float64       `json:"trend_bucket_s,omitempty"`
	Trends             []TrendBucket `json:"trends,omitempty"`
}

// TrendBucket aggregates the runs submitted within one time bucket.
type TrendBucket struct {
	Start     time.Time        `json:"start"`
	Runs      int              `json:"runs"`
	ByState   map[RunState]int `json:"by_state"`
	CacheHits int              `json:"cache_hits"`
	Execution LatencySummary   `json:"execution"`
}

// maxTrendBuckets bounds one trends response.
const maxTrendBuckets = 500

// runSample is the per-run tuple the aggregates fold over — built from
// a resident *Run or an evicted history Meta, whichever is live.
type runSample struct {
	tenant, scenario string
	state            RunState
	cached           bool
	submittedNs      int64
	qw, ex           float64 // seconds; -1 when the phase never happened
}

// Analytics computes the cross-campaign aggregate view without trends.
func (s *Server) Analytics() Analytics {
	return s.AnalyticsWithTrends(0, 0)
}

// AnalyticsWithTrends additionally buckets submissions into bucket-wide
// trend windows (bucket <= 0 disables trends; buckets caps how many of
// the most recent windows are returned, maxTrendBuckets when <= 0).
func (s *Server) AnalyticsWithTrends(bucket time.Duration, buckets int) Analytics {
	samples := s.analyticsSamples()

	a := Analytics{ByState: map[RunState]int{}}
	var queueWaits, execTimes []float64
	tenants := map[string]*groupAcc{}
	scenarios := map[string]*groupAcc{}

	accumulate := func(m map[string]*groupAcc, key string, sm runSample) {
		g := m[key]
		if g == nil {
			g = &groupAcc{byState: map[RunState]int{}}
			m[key] = g
		}
		g.runs++
		g.byState[sm.state]++
		if sm.cached {
			g.cacheHits++
		}
		if sm.qw >= 0 {
			g.queueWaits = append(g.queueWaits, sm.qw)
		}
		if sm.ex >= 0 {
			g.execTimes = append(g.execTimes, sm.ex)
		}
	}

	for _, sm := range samples {
		a.Runs++
		a.ByState[sm.state]++
		if sm.cached {
			a.CacheHits++
		}
		if sm.qw >= 0 {
			queueWaits = append(queueWaits, sm.qw)
		}
		if sm.ex >= 0 {
			execTimes = append(execTimes, sm.ex)
		}
		accumulate(tenants, sm.tenant, sm)
		accumulate(scenarios, sm.scenario, sm)
	}

	if a.Runs > 0 {
		a.CacheHitRate = float64(a.CacheHits) / float64(a.Runs)
	}
	a.QueueWait = summarize(queueWaits)
	a.Execution = summarize(execTimes)
	if v, ok := s.reg.Value("dyflow_server_fleet_lease_expiries_total"); ok {
		a.LeaseExpiries = int64(v)
	}
	if v, ok := s.reg.Value("dyflow_server_restore_requeued_total"); ok {
		a.RestoreRequeues = int64(v)
	}
	a.Tenants = renderGroups(tenants)
	a.Scenarios = renderGroups(scenarios)
	if bucket > 0 {
		a.TrendBucketSeconds = bucket.Seconds()
		a.Trends = trendBuckets(samples, bucket, buckets)
	}
	return a
}

// analyticsSamples folds the full run population into flat samples:
// resident runs (live state) first, then history metas for everything
// already evicted. Resident runs also have history records; the
// resident copy wins.
func (s *Server) analyticsSamples() []runSample {
	s.mu.Lock()
	samples := make([]runSample, 0, len(s.order))
	resident := make(map[string]bool, len(s.order))
	for _, id := range s.order {
		r := s.runs[id]
		resident[id] = true
		sm := runSample{
			tenant: r.Tenant, scenario: r.Job.Scenario,
			state: r.State, cached: r.Cached,
			submittedNs: unixNs(r.SubmittedAt), qw: -1, ex: -1,
		}
		if !r.ClaimedAt.IsZero() && !r.QueuedAt.IsZero() {
			sm.qw = r.ClaimedAt.Sub(r.QueuedAt).Seconds()
		}
		if !r.FinishedAt.IsZero() && !r.StartedAt.IsZero() {
			sm.ex = r.FinishedAt.Sub(r.StartedAt).Seconds()
		}
		samples = append(samples, sm)
	}
	s.mu.Unlock()

	if s.history != nil {
		s.history.EachMeta(func(m runstore.Meta) bool {
			if resident[m.ID] {
				return true
			}
			sm := runSample{
				tenant: m.Tenant, scenario: m.Scenario,
				state: RunState(m.State), cached: m.Cached,
				submittedNs: m.SubmittedAtNs, qw: -1, ex: -1,
			}
			if m.ClaimedAtNs > 0 && m.QueuedAtNs > 0 {
				sm.qw = time.Duration(m.ClaimedAtNs - m.QueuedAtNs).Seconds()
			}
			if m.FinishedAtNs > 0 && m.StartedAtNs > 0 {
				sm.ex = time.Duration(m.FinishedAtNs - m.StartedAtNs).Seconds()
			}
			samples = append(samples, sm)
			return true
		})
	}
	return samples
}

// trendBuckets groups samples into bucket-aligned windows by submission
// time, returning the most recent `limit` non-empty-range windows.
func trendBuckets(samples []runSample, bucket time.Duration, limit int) []TrendBucket {
	if limit <= 0 || limit > maxTrendBuckets {
		limit = maxTrendBuckets
	}
	bNs := bucket.Nanoseconds()
	var minNs, maxNs int64
	seen := false
	for _, sm := range samples {
		if sm.submittedNs == 0 {
			continue
		}
		if !seen || sm.submittedNs < minNs {
			minNs = sm.submittedNs
		}
		if !seen || sm.submittedNs > maxNs {
			maxNs = sm.submittedNs
		}
		seen = true
	}
	if !seen {
		return nil
	}
	start := (minNs / bNs) * bNs
	n := int((maxNs-start)/bNs) + 1
	first := 0
	if n > limit {
		first = n - limit
		n = limit
	}
	out := make([]TrendBucket, n)
	var execs [][]float64 = make([][]float64, n)
	for i := range out {
		out[i] = TrendBucket{
			Start:   time.Unix(0, start+int64(first+i)*bNs),
			ByState: map[RunState]int{},
		}
	}
	for _, sm := range samples {
		if sm.submittedNs == 0 {
			continue
		}
		i := int((sm.submittedNs-start)/bNs) - first
		if i < 0 || i >= n {
			continue // older than the returned window
		}
		out[i].Runs++
		out[i].ByState[sm.state]++
		if sm.cached {
			out[i].CacheHits++
		}
		if sm.ex >= 0 {
			execs[i] = append(execs[i], sm.ex)
		}
	}
	for i := range out {
		out[i].Execution = summarize(execs[i])
	}
	return out
}

type groupAcc struct {
	runs       int
	byState    map[RunState]int
	cacheHits  int
	queueWaits []float64
	execTimes  []float64
}

func renderGroups(groups map[string]*groupAcc) []GroupAnalytics {
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]GroupAnalytics, 0, len(names))
	for _, n := range names {
		g := groups[n]
		out = append(out, GroupAnalytics{
			Name:      n,
			Runs:      g.runs,
			ByState:   g.byState,
			CacheHits: g.cacheHits,
			QueueWait: summarize(g.queueWaits),
			Execution: summarize(g.execTimes),
		})
	}
	return out
}

// summarize computes a nearest-rank percentile summary; samples are
// sorted in place.
func summarize(samples []float64) LatencySummary {
	n := len(samples)
	if n == 0 {
		return LatencySummary{}
	}
	sort.Float64s(samples)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return samples[i]
	}
	return LatencySummary{
		Count: n,
		Mean:  sum / float64(n),
		P50:   rank(0.50),
		P90:   rank(0.90),
		P99:   rank(0.99),
		Max:   samples[n-1],
	}
}
