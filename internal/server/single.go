package server

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"sync"
)

// Single is the campaign service's single-campaign mode: one live
// simulation stepped by its owner, with HTTP handlers serialized against
// the stepping by one mutex (the DES world is single-threaded). dyflow-exp
// serve runs on it — the full multi-tenant Server is for cmd/dyflow-serve.
type Single struct {
	mu  sync.Mutex
	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
}

// NewSingle returns an empty single-campaign server; add handlers with
// HandleLocked, then Start it.
func NewSingle() *Single {
	return &Single{mux: http.NewServeMux()}
}

// HandleLocked registers a handler that runs under the campaign lock.
func (s *Single) HandleLocked(pattern string, h http.Handler) {
	s.mux.Handle(pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		h.ServeHTTP(w, r)
	}))
}

// Locked runs fn under the campaign lock — the owner's stepping loop uses
// it so handler reads never observe a half-stepped world.
func (s *Single) Locked(fn func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn()
}

// Start begins serving on addr ("host:0" picks a free port) and returns
// the bound address.
func (s *Single) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("server: single: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Shutdown drains in-flight requests and stops the listener.
func (s *Single) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
