package fleet

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dyflow/internal/obs"
)

// TestFaultBlobDiskWriteShedsToMemory pins the blob store's degraded
// mode: a blob whose disk write fails stays memory-resident and fully
// servable — the PUT succeeds, the shed is counted, and the degraded
// gauge holds at 1 until the next write the disk accepts. A digest
// mismatch, by contrast, stays a hard upload error: shedding covers a
// sick disk, never a wrong address.
func TestFaultBlobDiskWriteShedsToMemory(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	b, err := NewBlobStore(dir, reg)
	if err != nil {
		t.Fatal(err)
	}

	data := []byte("degraded-blob-payload")
	digest := Digest(data)
	// Wedge this digest's fan-out directory: a regular file where the
	// store needs a directory makes MkdirAll fail. (chmod is no use —
	// the test may run as root, which ignores permission bits.)
	if err := os.WriteFile(filepath.Join(dir, digest[:2]), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := b.PutAs(digest, data); err != nil {
		t.Fatalf("PUT failed on a sick disk instead of shedding: %v", err)
	}
	if got, ok := b.Get(digest); !ok || !bytes.Equal(got, data) {
		t.Fatal("shed blob not servable from memory")
	}
	if v, _ := reg.Value("dyflow_server_degraded_sheds_total"); v != 1 {
		t.Fatalf("degraded_sheds_total = %v, want 1", v)
	}
	if v, _ := reg.Value("dyflow_server_degraded_mode"); v != 1 {
		t.Fatalf("degraded_mode = %v, want 1 while the disk is sick", v)
	}

	// Shedding never loosens content addressing.
	if err := b.PutAs(digest, []byte("not the addressed bytes")); err == nil {
		t.Fatal("digest mismatch accepted under degraded mode")
	}

	// A blob on a healthy fan-out prefix lands on disk and clears the
	// gauge.
	var healthy []byte
	var healthyDigest string
	for i := 0; ; i++ {
		healthy = []byte(fmt.Sprintf("healthy-blob-%d", i))
		healthyDigest = Digest(healthy)
		if healthyDigest[:2] != digest[:2] {
			break
		}
	}
	if err := b.PutAs(healthyDigest, healthy); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, healthyDigest[:2], healthyDigest)); err != nil {
		t.Fatalf("healthy blob not durable: %v", err)
	}
	if v, _ := reg.Value("dyflow_server_degraded_mode"); v != 0 {
		t.Fatalf("degraded_mode = %v after a successful disk write, want 0", v)
	}
	if v, _ := reg.Value("dyflow_server_degraded_sheds_total"); v != 1 {
		t.Fatalf("degraded_sheds_total = %v, want still 1", v)
	}
}
