package fleet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dyflow/internal/obs"
	"dyflow/internal/trace"
)

// TestBackoffJitterBounds: every delay falls in (0, ceiling], and the
// ceiling doubles per attempt until it saturates at the cap.
func TestBackoffJitterBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	b := newBackoff(base, max, 42)
	wantCeil := base
	for i := 0; i < 12; i++ {
		ceil := b.ceiling()
		if ceil != wantCeil {
			t.Fatalf("attempt %d: ceiling = %v, want %v", i, ceil, wantCeil)
		}
		d := b.next()
		if d <= 0 || d > ceil {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", i, d, ceil)
		}
		if wantCeil < max {
			wantCeil *= 2
			if wantCeil > max {
				wantCeil = max
			}
		}
	}
	if b.ceiling() != max {
		t.Fatalf("ceiling did not saturate at cap: %v != %v", b.ceiling(), max)
	}
}

// TestBackoffResetOnSuccess: reset returns the ceiling to base, the
// claim loop's reset-on-success discipline.
func TestBackoffResetOnSuccess(t *testing.T) {
	b := newBackoff(10*time.Millisecond, time.Second, 7)
	for i := 0; i < 8; i++ {
		b.next()
	}
	if b.ceiling() != time.Second {
		t.Fatalf("ceiling before reset = %v, want 1s", b.ceiling())
	}
	b.reset()
	if b.ceiling() != 10*time.Millisecond {
		t.Fatalf("ceiling after reset = %v, want base", b.ceiling())
	}
	if d := b.next(); d <= 0 || d > 10*time.Millisecond {
		t.Fatalf("post-reset delay %v outside (0, base]", d)
	}
}

// TestBackoffSeededReproducible: the same seed yields the same jitter
// sequence (chaos sweeps replay bit-identically), different seeds
// decorrelate.
func TestBackoffSeededReproducible(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		b := newBackoff(time.Millisecond, 64*time.Millisecond, seed)
		out := make([]time.Duration, 16)
		for i := range out {
			out[i] = b.next()
		}
		return out
	}
	a, b2 := seq(3), seq(3)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("same seed diverges at %d: %v vs %v", i, a[i], b2[i])
		}
	}
	c := seq(4)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestSleepCtxCancellation: cancellation mid-backoff returns false
// promptly; an undisturbed sleep returns true.
func TestSleepCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if sleepCtx(ctx, 10*time.Second) {
		t.Fatal("canceled sleep reported full duration elapsed")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("canceled sleep blocked %v", time.Since(start))
	}
	if !sleepCtx(context.Background(), time.Millisecond) {
		t.Fatal("undisturbed sleep reported cancellation")
	}
}

// TestSpanBufferCapsAndCounts: the heartbeat retry buffer drops oldest
// spans past its cap and counts every drop.
func TestSpanBufferCapsAndCounts(t *testing.T) {
	reg := obs.NewRegistry()
	drops := reg.Counter("dyflow_worker_span_drops_total", "test").With()
	sb := &spanBuffer{cap: 4, drops: drops}
	mk := func(id int) trace.Span { return trace.Span{ID: fmt.Sprintf("s%02d", id)} }

	sb.add(mk(1), mk(2), mk(3))
	sb.restore([]trace.Span{mk(0)}) // failed batch goes back to the front
	got := sb.take()
	if len(got) != 4 || got[0].ID != "s00" || got[3].ID != "s03" {
		t.Fatalf("restore order wrong: %+v", got)
	}

	for i := 0; i < 10; i++ {
		sb.add(mk(i))
	}
	got = sb.take()
	if len(got) != 4 {
		t.Fatalf("buffer holds %d spans, cap 4", len(got))
	}
	if got[0].ID != "s06" || got[3].ID != "s09" {
		t.Fatalf("expected oldest dropped, newest kept: %+v", got)
	}
	if v, _ := reg.Value("dyflow_worker_span_drops_total"); v != 6 {
		t.Fatalf("span drops = %v, want 6", v)
	}
}
