package fleet

import (
	"dyflow/internal/exp"
	"dyflow/internal/obs"
	"dyflow/internal/trace"
)

// The worker API wire types, shared by the coordinator's handlers
// (internal/server) and the Worker client below:
//
//	POST /v1/workers/register            RegisterRequest → RegisterResponse
//	POST /v1/workers/{id}/claim          ClaimRequest → ClaimResponse | 204
//	POST /v1/workers/{id}/heartbeat      HeartbeatRequest → HeartbeatResponse
//	POST /v1/workers/{id}/result         ResultRequest → ResultResponse
//	HEAD /v1/blobs/{digest}              200 | 404
//	PUT  /v1/blobs/{digest}              raw bytes, digest-verified
//	GET  /v1/fleet                       coordinator's fleet view

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Name  string `json:"name,omitempty"`
	Slots int    `json:"slots,omitempty"`
}

// RegisterResponse assigns the worker its ID and lease discipline.
type RegisterResponse struct {
	WorkerID    string `json:"worker_id"`
	LeaseTTLMs  int64  `json:"lease_ttl_ms"`
	HeartbeatMs int64  `json:"heartbeat_ms"`
}

// ClaimRequest asks for a queued run, waiting up to WaitMs for one.
type ClaimRequest struct {
	WaitMs int64 `json:"wait_ms,omitempty"`
}

// ClaimResponse hands the worker a leased run. An empty queue is a 204,
// not a ClaimResponse.
type ClaimResponse struct {
	RunID      string  `json:"run_id"`
	Job        exp.Job `json:"job"`
	LeaseID    string  `json:"lease_id"`
	LeaseTTLMs int64   `json:"lease_ttl_ms"`
}

// HeartbeatRequest renews a lease and reports simulated-time progress.
// Spans carries flight-recorder suggestion spans that completed since
// the last heartbeat; the coordinator republishes them into the run's
// live event stream. Forwarding is best-effort — a lost heartbeat loses
// its batch, never the run.
type HeartbeatRequest struct {
	RunID   string       `json:"run_id"`
	LeaseID string       `json:"lease_id"`
	SimNs   int64        `json:"sim_ns"`
	Spans   []trace.Span `json:"spans,omitempty"`
}

// HeartbeatResponse tells the worker whether to keep going: a stale lease
// means the run was requeued under it (abandon, no upload); Cancel means
// the run was canceled (abort and report it).
type HeartbeatResponse struct {
	Valid  bool `json:"valid"`
	Cancel bool `json:"cancel,omitempty"`
}

// ResultRequest uploads a run's outcome. Artifacts maps artifact names to
// blob digests the worker has already uploaded via PUT /v1/blobs/{digest}.
//
// LeaseID doubles as the attempt-stable idempotency key: the coordinator
// remembers which lease finished each run, so a retried POST after a
// lost 200 is acknowledged as a duplicate instead of counted stale.
// Requeue hands a still-valid lease back — the run returns to the queue
// (event reason result_upload_failed) instead of finishing; workers send
// it when the run succeeded but its artifacts could not be uploaded.
type ResultRequest struct {
	RunID     string            `json:"run_id"`
	LeaseID   string            `json:"lease_id"`
	Canceled  bool              `json:"canceled,omitempty"`
	Requeue   bool              `json:"requeue,omitempty"`
	Error     string            `json:"error,omitempty"`
	Converged bool              `json:"converged,omitempty"`
	SimEndNs  int64             `json:"sim_end_ns,omitempty"`
	Artifacts map[string]string `json:"artifacts,omitempty"`
	// Spans carries whatever flight-recorder spans had not yet been
	// drained by a heartbeat when the run finished.
	Spans []trace.Span `json:"spans,omitempty"`
}

// ResultResponse acknowledges an upload. Accepted=false means the lease
// was no longer current and the coordinator ignored the result.
type ResultResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// View is the GET /v1/fleet snapshot.
type View struct {
	LeaseTTLMs int64        `json:"lease_ttl_ms"`
	Workers    []WorkerInfo `json:"workers"`
	Leases     int          `json:"leases"`
}

// MetricsView is the GET /v1/fleet/metrics snapshot: each registered
// worker's last pushed registry snapshot, plus the merged view the
// coordinator folds into /metrics (worker-labeled).
type MetricsView struct {
	Workers map[string]obs.Snapshot `json:"workers"`
	Merged  obs.Snapshot            `json:"merged"`
}
