package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dyflow/internal/obs"
)

// Manager is the coordinator-side fleet state: which workers are
// registered and which runs they hold leases on. A lease is granted at
// claim time, renewed by heartbeats, and released by a result upload; a
// lease that lapses (worker crashed, hung, or partitioned) fires the
// expiry callback so the coordinator requeues the run — re-execution is
// exact because runs are deterministic, and at-most-once *observable*
// completion is preserved because Release rejects uploads whose lease is
// no longer current (the coordinator ignores them as stale).
type Manager struct {
	ttl      time.Duration
	onExpire func(runID, workerID string)

	mu        sync.Mutex
	workers   map[string]*WorkerInfo
	leases    map[string]*Lease // run ID → current lease
	metrics   map[string]obs.Snapshot
	nextW     int
	nextLease int
	closed    bool

	stop chan struct{}
	done chan struct{}

	workersGauge *obs.Gauge   // dyflow_server_fleet_workers
	claims       *obs.Counter // dyflow_server_fleet_claims_total
	heartbeats   *obs.Counter // dyflow_server_fleet_heartbeats_total
	expiries     *obs.Counter // dyflow_server_fleet_lease_expiries_total
	results      *obs.Counter // dyflow_server_fleet_results_total
	stale        *obs.Counter // dyflow_server_fleet_stale_results_total
}

// WorkerInfo is one registered worker. Claims/Completed/Failed/Canceled
// are per-worker lifetime outcome counters; LastSeenAgeMs is computed at
// snapshot time (Workers) so the fleet view carries liveness directly
// instead of making every consumer diff wall clocks.
type WorkerInfo struct {
	ID            string    `json:"id"`
	Name          string    `json:"name"`
	Slots         int       `json:"slots"`
	RegisteredAt  time.Time `json:"registered_at"`
	LastSeen      time.Time `json:"last_seen"`
	LastSeenAgeMs int64     `json:"last_seen_age_ms"`
	Active        int       `json:"active"` // leases currently held
	Claims        int64     `json:"claims"`
	Completed     int64     `json:"completed"`
	Failed        int64     `json:"failed"`
	Canceled      int64     `json:"canceled"`
}

// Lease is one worker's claim on one run.
type Lease struct {
	ID       string
	RunID    string
	WorkerID string
	Expires  time.Time
}

// NewManager builds a lease manager with the given TTL (0 means 10s) and
// starts its expiry sweep. onExpire is invoked — without the manager lock
// held — for every lease that lapses; the coordinator requeues the run
// there. Close stops the sweep.
func NewManager(reg *obs.Registry, ttl time.Duration, onExpire func(runID, workerID string)) *Manager {
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Manager{
		ttl:      ttl,
		onExpire: onExpire,
		workers:  map[string]*WorkerInfo{},
		leases:   map[string]*Lease{},
		metrics:  map[string]obs.Snapshot{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		workersGauge: reg.Gauge("dyflow_server_fleet_workers",
			"Fleet workers currently registered with the coordinator.").With(),
		claims: reg.Counter("dyflow_server_fleet_claims_total",
			"Runs claimed by fleet workers.").With(),
		heartbeats: reg.Counter("dyflow_server_fleet_heartbeats_total",
			"Lease heartbeats accepted from fleet workers.").With(),
		expiries: reg.Counter("dyflow_server_fleet_lease_expiries_total",
			"Leases that lapsed without a result, requeueing the run.").With(),
		results: reg.Counter("dyflow_server_fleet_results_total",
			"Results accepted from fleet workers under a valid lease.").With(),
		stale: reg.Counter("dyflow_server_fleet_stale_results_total",
			"Result uploads ignored because the lease was no longer current.").With(),
	}
	go m.sweep()
	return m
}

// TTL returns the lease TTL workers must heartbeat within.
func (m *Manager) TTL() time.Duration { return m.ttl }

// sweep expires lapsed leases a few times per TTL.
func (m *Manager) sweep() {
	defer close(m.done)
	every := m.ttl / 4
	if every < 5*time.Millisecond {
		every = 5 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			var lapsed []*Lease
			m.mu.Lock()
			for runID, l := range m.leases {
				if now.After(l.Expires) {
					delete(m.leases, runID)
					if w := m.workers[l.WorkerID]; w != nil {
						w.Active--
					}
					lapsed = append(lapsed, l)
				}
			}
			m.mu.Unlock()
			for _, l := range lapsed {
				m.expiries.Inc()
				if m.onExpire != nil {
					m.onExpire(l.RunID, l.WorkerID)
				}
			}
		}
	}
}

// Register adds a worker and returns its ID.
func (m *Manager) Register(name string, slots int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := fmt.Sprintf("worker-%04d", m.nextW)
	m.nextW++
	if name == "" {
		name = id
	}
	now := time.Now()
	m.workers[id] = &WorkerInfo{ID: id, Name: name, Slots: slots, RegisteredAt: now, LastSeen: now}
	m.workersGauge.Set(float64(len(m.workers)))
	return id
}

// Grant leases a run to a registered worker.
func (m *Manager) Grant(workerID, runID string) (leaseID string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[workerID]
	if w == nil {
		return "", fmt.Errorf("fleet: unknown worker %q", workerID)
	}
	if have := m.leases[runID]; have != nil {
		return "", fmt.Errorf("fleet: run %s already leased to %s", runID, have.WorkerID)
	}
	leaseID = fmt.Sprintf("lease-%06d", m.nextLease)
	m.nextLease++
	m.leases[runID] = &Lease{ID: leaseID, RunID: runID, WorkerID: workerID, Expires: time.Now().Add(m.ttl)}
	w.Active++
	w.Claims++
	w.LastSeen = time.Now()
	m.claims.Inc()
	return leaseID, nil
}

// Heartbeat renews a lease, reporting whether it is still current.
func (m *Manager) Heartbeat(workerID, runID, leaseID string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.leases[runID]
	if l == nil || l.WorkerID != workerID || l.ID != leaseID {
		return false
	}
	l.Expires = time.Now().Add(m.ttl)
	if w := m.workers[workerID]; w != nil {
		w.LastSeen = time.Now()
	}
	m.heartbeats.Inc()
	return true
}

// Release consumes a lease for a result upload. It reports false — and the
// coordinator ignores the upload — when the lease is not current: expired
// and requeued, revoked by cancellation, or held by another worker. This
// is the at-most-once gate: only the holder of the live lease can finish
// the run.
func (m *Manager) Release(workerID, runID, leaseID string) bool {
	m.mu.Lock()
	l := m.leases[runID]
	ok := l != nil && l.WorkerID == workerID && l.ID == leaseID
	if ok {
		delete(m.leases, runID)
		if w := m.workers[workerID]; w != nil {
			w.Active--
			w.LastSeen = time.Now()
		}
	}
	m.mu.Unlock()
	if ok {
		m.results.Inc()
	} else {
		m.stale.Inc()
	}
	return ok
}

// Revoke drops a run's lease without a result (cancellation, shutdown). A
// later upload from the old holder is rejected as stale.
func (m *Manager) Revoke(runID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if l := m.leases[runID]; l != nil {
		delete(m.leases, runID)
		if w := m.workers[l.WorkerID]; w != nil {
			w.Active--
		}
	}
}

// Leased reports whether a run currently has a live lease.
func (m *Manager) Leased(runID string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leases[runID] != nil
}

// LeasedRuns returns the IDs of all currently leased runs.
func (m *Manager) LeasedRuns() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.leases))
	for id := range m.leases {
		out = append(out, id)
	}
	return out
}

// Touch marks a worker alive without any lease activity — empty-queue
// claim polls still prove liveness.
func (m *Manager) Touch(workerID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w := m.workers[workerID]; w != nil {
		w.LastSeen = time.Now()
	}
}

// NoteOutcome records one finished run against the worker that uploaded
// it: outcome is "done", "failed", or "canceled".
func (m *Manager) NoteOutcome(workerID, outcome string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[workerID]
	if w == nil {
		return
	}
	switch outcome {
	case "failed":
		w.Failed++
	case "canceled":
		w.Canceled++
	default:
		w.Completed++
	}
}

// SetWorkerMetrics stores a worker's pushed registry snapshot, replacing
// the previous push. It reports false for unknown workers (the push is
// dropped rather than resurrecting a deregistered ID).
func (m *Manager) SetWorkerMetrics(workerID string, snap obs.Snapshot) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.workers[workerID] == nil {
		return false
	}
	m.metrics[workerID] = snap
	m.workers[workerID].LastSeen = time.Now()
	return true
}

// MetricsSnapshots returns each worker's last pushed snapshot, keyed by
// worker ID.
func (m *Manager) MetricsSnapshots() map[string]obs.Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]obs.Snapshot, len(m.metrics))
	for id, snap := range m.metrics {
		out[id] = snap
	}
	return out
}

// Workers snapshots the registered workers (the GET /v1/fleet view),
// sorted by ID, with heartbeat age stamped.
func (m *Manager) Workers() []WorkerInfo {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerInfo, 0, len(m.workers))
	for _, w := range m.workers {
		info := *w
		info.LastSeenAgeMs = now.Sub(w.LastSeen).Milliseconds()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close stops the expiry sweep. Held leases are left in place (the
// process is going away with them).
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	<-m.done
}
