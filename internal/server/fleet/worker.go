package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dyflow/internal/exp"
	"dyflow/internal/obs"
	"dyflow/internal/sim"
	"dyflow/internal/trace"
)

// The sentinel errors a worker's progress hook aborts a run with.
var (
	errWorkerKilled = errors.New("fleet: worker killed")
	errLeaseLost    = errors.New("fleet: lease no longer current")
	errCancelled    = errors.New("fleet: run canceled by coordinator")
)

// WorkerOptions shapes one fleet worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's host:port.
	Coordinator string
	// Name labels the worker in the coordinator's fleet view.
	Name string
	// Slots is the number of runs executed concurrently (claim loops).
	// 0 means 1.
	Slots int
	// ClaimWait is the long-poll window a claim blocks for when the queue
	// is empty. 0 means 500ms.
	ClaimWait time.Duration
	// CallTimeout is the per-RPC deadline: no single coordinator call may
	// block longer than this (heartbeats use a tighter bound derived from
	// the lease TTL; claims add the long-poll window on top). 0 means 10s.
	CallTimeout time.Duration
	// RegisterWait bounds how long JoinFleet retries registration against
	// an unreachable coordinator before giving up. 0 means 10s.
	RegisterWait time.Duration
	// MaxSpanBuffer caps the flight-recorder spans buffered while the
	// coordinator is unreachable; beyond it the oldest spans are dropped
	// and counted in dyflow_worker_span_drops_total. 0 means 1024.
	MaxSpanBuffer int
	// BackoffSeed seeds retry jitter for reproducible tests. 0 seeds from
	// the clock.
	BackoffSeed int64
	// Client overrides the HTTP client (tests, fault injection).
	Client *http.Client
	// OnClaim, when set (tests, chaos), is called with each claimed run ID
	// before execution starts — it can block to hold the lease mid-claim.
	OnClaim func(runID string)
	// Metrics is the worker's registry; a fresh one is created when nil.
	// The worker registers its dyflow_worker_* families here and pushes
	// snapshots to the coordinator on MetricsEvery cadence.
	Metrics *obs.Registry
	// MetricsEvery is the push cadence for registry snapshots. 0 means
	// the heartbeat cadence.
	MetricsEvery time.Duration
}

// Worker is one fleet member: it registers with the coordinator, then
// each slot loops claim → execute (exp.RunJob, heartbeating the lease on
// wall-clock cadence) → upload blobs → report the result. Determinism
// makes abandoning work safe at any point: the coordinator's lease expiry
// requeues the run and its re-execution is byte-identical.
//
// Every RPC carries a per-call deadline and survives a hostile network
// (see internal/server/faultnet): transient failures — transport errors,
// 5xx, truncated responses — are retried with capped exponential backoff
// and full jitter, counted in dyflow_worker_rpc_retries_total. Result
// POSTs are idempotent: the lease ID is the attempt-stable idempotency
// key, so a retried completion whose first 200 was lost is deduplicated
// by the coordinator instead of counted stale.
type Worker struct {
	o           WorkerOptions
	id          string
	base        string
	client      *http.Client
	hbEach      time.Duration
	hbTimeout   time.Duration
	callTimeout time.Duration
	maxSpans    int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	killed   atomic.Bool
	claiming atomic.Bool // false once Stop was called: finish in-flight, claim no more

	claimed   atomic.Int64
	completed atomic.Int64

	reg      *obs.Registry
	pushDone chan struct{}

	metClaims    *obs.Counter    // dyflow_worker_claims_total
	metRuns      *obs.CounterVec // dyflow_worker_runs_total{outcome}
	metRunSec    *obs.Histogram  // dyflow_worker_run_seconds
	metActive    *obs.Gauge      // dyflow_worker_active_runs
	metHB        *obs.Counter    // dyflow_worker_heartbeats_total
	metArtifacts *obs.Counter    // dyflow_worker_artifact_bytes_total
	metRetries   *obs.CounterVec // dyflow_worker_rpc_retries_total{call}
	metSpanDrops *obs.Counter    // dyflow_worker_span_drops_total
}

// JoinFleet registers a worker with the coordinator and starts its slot
// loops. Stop drains it gracefully; Kill abandons everything mid-lease.
func JoinFleet(o WorkerOptions) (*Worker, error) {
	if o.Slots <= 0 {
		o.Slots = 1
	}
	if o.ClaimWait <= 0 {
		o.ClaimWait = 500 * time.Millisecond
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.RegisterWait <= 0 {
		o.RegisterWait = 10 * time.Second
	}
	if o.MaxSpanBuffer <= 0 {
		o.MaxSpanBuffer = 1024
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	mreg := o.Metrics
	if mreg == nil {
		mreg = obs.NewRegistry()
	}
	w := &Worker{o: o, base: "http://" + o.Coordinator, client: client,
		callTimeout: o.CallTimeout, maxSpans: o.MaxSpanBuffer,
		reg: mreg, pushDone: make(chan struct{})}
	w.metClaims = mreg.Counter("dyflow_worker_claims_total",
		"Runs this worker claimed from the coordinator.").With()
	w.metRuns = mreg.Counter("dyflow_worker_runs_total",
		"Runs this worker finished, by outcome.", "outcome")
	w.metRunSec = mreg.Histogram("dyflow_worker_run_seconds",
		"Wall-clock execution time of runs on this worker.", nil).With()
	w.metActive = mreg.Gauge("dyflow_worker_active_runs",
		"Runs currently executing on this worker.").With()
	w.metHB = mreg.Counter("dyflow_worker_heartbeats_total",
		"Lease heartbeats this worker sent successfully.").With()
	w.metArtifacts = mreg.Counter("dyflow_worker_artifact_bytes_total",
		"Artifact bytes this worker uploaded to the blob store.").With()
	w.metRetries = mreg.Counter("dyflow_worker_rpc_retries_total",
		"Coordinator RPC attempts retried after a transient failure, by call.", "call")
	w.metSpanDrops = mreg.Counter("dyflow_worker_span_drops_total",
		"Flight-recorder spans dropped because the buffer filled while the coordinator was unreachable.").With()
	w.ctx, w.cancel = context.WithCancel(context.Background())
	w.claiming.Store(true)

	// Registration retries through a flaky network: workers are often
	// started alongside (or before) the coordinator.
	var reg RegisterResponse
	err := w.postRetry("register", "/v1/workers/register",
		RegisterRequest{Name: o.Name, Slots: o.Slots}, &reg, time.Now().Add(o.RegisterWait))
	if err != nil {
		w.cancel()
		close(w.pushDone)
		return nil, fmt.Errorf("fleet: register with %s: %w", o.Coordinator, err)
	}
	w.id = reg.WorkerID
	w.hbEach = time.Duration(reg.HeartbeatMs) * time.Millisecond
	if w.hbEach <= 0 {
		w.hbEach = time.Duration(reg.LeaseTTLMs/3) * time.Millisecond
	}
	if w.hbEach <= 0 {
		w.hbEach = time.Second
	}
	// A heartbeat that blocks past TTL/3 is as good as lost: bound it so
	// a hung coordinator cannot stall the progress hook into lease loss.
	w.hbTimeout = w.hbEach
	if w.hbTimeout < 50*time.Millisecond {
		w.hbTimeout = 50 * time.Millisecond
	}
	if w.hbTimeout > w.callTimeout {
		w.hbTimeout = w.callTimeout
	}

	for i := 0; i < o.Slots; i++ {
		w.wg.Add(1)
		go w.slot(int64(i))
	}
	every := o.MetricsEvery
	if every <= 0 {
		every = w.hbEach
	}
	go w.metricsLoop(every)
	return w, nil
}

// ID returns the coordinator-assigned worker ID.
func (w *Worker) ID() string { return w.id }

// Registry returns the worker's metrics registry.
func (w *Worker) Registry() *obs.Registry { return w.reg }

// Completed returns how many runs this worker finished and uploaded.
func (w *Worker) Completed() int64 { return w.completed.Load() }

// Stop drains the worker: no new claims, in-flight runs finish and
// upload, a final metrics snapshot is pushed, then the loops exit.
func (w *Worker) Stop() {
	w.claiming.Store(false)
	w.wg.Wait()
	w.pushMetrics()
	w.cancel()
	<-w.pushDone
}

// Kill abandons the worker mid-lease, the chaos path: in-flight runs
// abort without uploading a result, in-flight requests are canceled, and
// no further traffic reaches the coordinator — exactly what a crashed or
// partitioned worker looks like. The coordinator's lease expiry requeues
// whatever this worker held.
func (w *Worker) Kill() {
	w.killed.Store(true)
	w.claiming.Store(false)
	w.cancel()
	w.wg.Wait()
	<-w.pushDone
}

// metricsLoop pushes the worker's registry snapshot to the coordinator
// on a fixed cadence. Push failures are tolerated silently: metrics are
// observability, not correctness, and the coordinator keeps serving the
// last snapshot it saw.
func (w *Worker) metricsLoop(every time.Duration) {
	defer close(w.pushDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-t.C:
			w.pushMetrics()
		}
	}
}

func (w *Worker) pushMetrics() {
	if w.killed.Load() {
		return // crashed workers push nothing
	}
	_, _ = w.postCode("/v1/workers/"+w.id+"/metrics", w.reg.Snapshot(), nil, w.callTimeout)
}

// slot is one claim-execute-upload loop. Claim failures back off with
// full jitter (workers outlive coordinator restarts without stampeding
// the restarted process) and reset on the first success.
func (w *Worker) slot(n int64) {
	defer w.wg.Done()
	b := newBackoff(10*time.Millisecond, time.Second, mixSeed(w.o.BackoffSeed, n))
	for w.claiming.Load() {
		claim, ok, err := w.claim()
		if err != nil {
			if w.ctx.Err() != nil {
				return
			}
			w.metRetries.With("claim").Inc()
			if !sleepCtx(w.ctx, b.next()) {
				return
			}
			continue
		}
		b.reset()
		if !ok {
			continue // empty queue after the long-poll window
		}
		w.claimed.Add(1)
		w.metClaims.Inc()
		if w.o.OnClaim != nil {
			w.o.OnClaim(claim.RunID)
		}
		if w.killed.Load() {
			return // abandon the lease: no result, expiry requeues it
		}
		w.execute(claim)
	}
}

// mixSeed derives a per-slot jitter seed (0 stays 0 = clock-seeded).
func mixSeed(seed, n int64) int64 {
	if seed == 0 {
		return 0
	}
	return seed*31 + n + 1
}

// claim asks the coordinator for a run. ok=false means the queue stayed
// empty for the poll window. The per-call deadline covers the long-poll
// window plus the normal RPC budget.
func (w *Worker) claim() (ClaimResponse, bool, error) {
	var resp ClaimResponse
	code, err := w.postCode("/v1/workers/"+w.id+"/claim",
		ClaimRequest{WaitMs: w.o.ClaimWait.Milliseconds()}, &resp,
		w.o.ClaimWait+w.callTimeout)
	if err != nil {
		return resp, false, err
	}
	if code == http.StatusNoContent {
		return resp, false, nil
	}
	return resp, true, nil
}

// spanBuffer accumulates completed flight-recorder spans between
// heartbeats, bounded so a long partition cannot grow it without limit:
// past cap, the oldest spans are dropped and counted.
type spanBuffer struct {
	mu    sync.Mutex
	buf   []trace.Span
	cap   int
	drops *obs.Counter
}

// add appends sp, evicting the oldest beyond cap.
func (s *spanBuffer) add(sp ...trace.Span) {
	s.mu.Lock()
	s.buf = append(s.buf, sp...)
	s.capLocked()
	s.mu.Unlock()
}

// restore returns a batch that failed to send to the FRONT (it is older
// than anything buffered since), still enforcing the cap.
func (s *spanBuffer) restore(sp []trace.Span) {
	if len(sp) == 0 {
		return
	}
	s.mu.Lock()
	s.buf = append(append(make([]trace.Span, 0, len(sp)+len(s.buf)), sp...), s.buf...)
	s.capLocked()
	s.mu.Unlock()
}

func (s *spanBuffer) capLocked() {
	if over := len(s.buf) - s.cap; over > 0 {
		s.buf = append(s.buf[:0:0], s.buf[over:]...)
		s.drops.Add(int64(over))
	}
}

// take drains the buffer.
func (s *spanBuffer) take() []trace.Span {
	s.mu.Lock()
	out := s.buf
	s.buf = nil
	s.mu.Unlock()
	return out
}

// execute runs one claimed job, heartbeating on wall-clock cadence, then
// uploads artifacts and reports the outcome. Flight-recorder spans that
// complete during execution accumulate locally (bounded) and are drained
// into heartbeats (the coordinator republishes them on the run's live
// event stream); whatever remains undrained rides along with the result.
//
// Heartbeat failures distinguish "coordinator slow or unreachable" from
// "lease lost": a failed send is survivable as long as the lease cannot
// yet have lapsed at the coordinator (the last accepted heartbeat is
// less than one TTL old), so the worker keeps executing across a short
// partition instead of abandoning work the lease still protects. Only a
// coordinator that explicitly reports the lease stale — or a silence
// longer than the TTL — aborts the run.
func (w *Worker) execute(claim ClaimResponse) {
	ttl := time.Duration(claim.LeaseTTLMs) * time.Millisecond
	lastOK := time.Now() // last heartbeat the coordinator accepted (claim counts)
	hbNext := lastOK.Add(w.hbEach)
	hbRetry := w.hbEach / 2
	if hbRetry > 200*time.Millisecond {
		hbRetry = 200 * time.Millisecond
	}
	if hbRetry <= 0 {
		hbRetry = 50 * time.Millisecond
	}
	w.metActive.Add(1)
	defer w.metActive.Add(-1)
	started := time.Now()

	spans := &spanBuffer{cap: w.maxSpans, drops: w.metSpanDrops}

	out, err := exp.RunJob(claim.Job, func(world *exp.World) error {
		if world.Orch != nil {
			world.Orch.Trace.SetOnComplete(func(sp trace.Span) {
				spans.add(sp)
			})
		}
		world.OnProgress = func(now sim.Time) error {
			if w.killed.Load() {
				return errWorkerKilled
			}
			if time.Now().Before(hbNext) {
				return nil
			}
			batch := spans.take()
			var hb HeartbeatResponse
			_, err := w.postCode("/v1/workers/"+w.id+"/heartbeat",
				HeartbeatRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
					SimNs: int64(now), Spans: batch}, &hb, w.hbTimeout)
			if err != nil {
				spans.restore(batch) // retry the batch with the next heartbeat
				// Coordinator slow, partitioned, or restarting: survivable
				// inside the TTL. Retry sooner than the normal cadence and
				// give up only once the lease must have lapsed.
				w.metRetries.With("heartbeat").Inc()
				hbNext = time.Now().Add(hbRetry)
				if time.Since(lastOK) > ttl {
					return errLeaseLost
				}
				return nil
			}
			w.metHB.Inc()
			lastOK = time.Now()
			hbNext = lastOK.Add(w.hbEach)
			switch {
			case !hb.Valid:
				return errLeaseLost
			case hb.Cancel:
				return errCancelled
			}
			return nil
		}
		return nil
	})
	w.metRunSec.Observe(time.Since(started).Seconds())

	// The result-delivery horizon: the worker stopped heartbeating when
	// execution ended, so the lease lapses at the coordinator one TTL
	// after the last accepted heartbeat. Retrying past that point is
	// pointless — expiry has already requeued the run.
	horizon := lastOK.Add(ttl)

	switch {
	case w.killed.Load():
		return // crashed workers upload nothing
	case errors.Is(err, errLeaseLost):
		return // the run was requeued under us; our result would be stale
	case errors.Is(err, errCancelled):
		w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
			Canceled: true, Error: errCancelled.Error(), Spans: spans.take()}, horizon)
	case err != nil:
		w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
			Error: err.Error(), Spans: spans.take()}, horizon)
	default:
		refs, uerr := w.uploadArtifacts(out.Artifacts, horizon)
		if uerr != nil {
			if w.ctx.Err() != nil {
				return
			}
			// The blob plane is degraded but the run itself succeeded:
			// hand the lease back for requeue instead of failing the run —
			// the coordinator publishes it as queued/result_upload_failed.
			w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
				Requeue: true, Error: fmt.Sprintf("artifact upload: %v", uerr)}, horizon)
			return
		}
		w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
			Converged: out.Converged, SimEndNs: int64(out.SimEnd),
			Artifacts: refs, Spans: spans.take()}, horizon)
	}
}

// uploadArtifacts pushes each artifact blob the coordinator does not
// already hold (content addressing makes re-executions and shared cache
// hits free) and returns the name → digest reference map. Each blob op
// retries with backoff until the horizon; the digest probe doubles as
// upload resume — a PUT whose 201 was lost verifies on the next HEAD and
// is never re-sent.
func (w *Worker) uploadArtifacts(artifacts map[string][]byte, horizon time.Time) (map[string]string, error) {
	b := newBackoff(10*time.Millisecond, time.Second, mixSeed(w.o.BackoffSeed, 1<<20))
	refs := make(map[string]string, len(artifacts))
	for name, data := range artifacts {
		digest := Digest(data)
		refs[name] = digest
		for {
			if w.hasBlob(digest) {
				break
			}
			err := w.putBlob(digest, data)
			if err == nil {
				w.metArtifacts.Add(int64(len(data)))
				break
			}
			if w.ctx.Err() != nil || !time.Now().Before(horizon) {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			w.metRetries.With("blob").Inc()
			if !sleepCtx(w.ctx, b.next()) {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	return refs, nil
}

func (w *Worker) hasBlob(digest string) bool {
	ctx, cancel := context.WithTimeout(w.ctx, w.callTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, w.base+"/v1/blobs/"+digest, nil)
	if err != nil {
		return false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (w *Worker) putBlob(digest string, data []byte) error {
	ctx, cancel := context.WithTimeout(w.ctx, w.callTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, w.base+"/v1/blobs/"+digest, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("PUT blob %s: %s: %s", digest[:12], resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// report posts the result, retrying transient failures until the lease
// horizon. The retry is safe because the coordinator deduplicates by
// lease ID: a second delivery of an already-applied result is answered
// Accepted without re-finishing the run. A rejected (stale) upload is
// dropped silently — the coordinator has already moved on.
func (w *Worker) report(res ResultRequest, horizon time.Time) {
	switch {
	case res.Requeue:
		// Not an outcome: the run goes back to the queue.
	case res.Canceled:
		w.metRuns.With("canceled").Inc()
	case res.Error != "":
		w.metRuns.With("failed").Inc()
	default:
		w.metRuns.With("done").Inc()
	}
	var resp ResultResponse
	if err := w.postRetry("result", "/v1/workers/"+w.id+"/result", res, &resp, horizon); err != nil {
		return // coordinator gone past the lease horizon; expiry handles the run
	}
	if resp.Accepted && !res.Requeue && res.Error == "" && !res.Canceled {
		w.completed.Add(1)
	}
}

// retryable reports whether a failed RPC attempt is worth repeating:
// transport errors (code 0), 5xx, and torn 2xx bodies are; a 3xx/4xx is
// a semantic answer, not a network accident.
func retryable(code int, err error) bool {
	if err == nil {
		return false
	}
	return code == 0 || code >= 500 || code < 300
}

// postRetry sends a JSON request with capped exponential backoff and
// full jitter until it succeeds, fails non-retryably, or passes the
// deadline. Retries are counted per call label in
// dyflow_worker_rpc_retries_total.
func (w *Worker) postRetry(label, path string, body, out any, deadline time.Time) error {
	b := newBackoff(10*time.Millisecond, time.Second, mixSeed(w.o.BackoffSeed, int64(len(path))))
	for {
		code, err := w.postCode(path, body, out, w.callTimeout)
		if err == nil {
			return nil
		}
		if !retryable(code, err) || w.ctx.Err() != nil || !time.Now().Before(deadline) {
			return err
		}
		w.metRetries.With(label).Inc()
		if !sleepCtx(w.ctx, b.next()) {
			return err
		}
	}
}

// post sends a JSON request once with the default per-call deadline.
func (w *Worker) post(path string, body, out any) error {
	_, err := w.postCode(path, body, out, w.callTimeout)
	return err
}

// postCode sends one JSON request under a per-call deadline and decodes
// the JSON response. A response shorter than its Content-Length — a torn
// connection, faultnet truncation — surfaces as an unexpected-EOF read
// error, which retryable() classifies as transient.
func (w *Worker) postCode(path string, body, out any, timeout time.Duration) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	ctx := w.ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(w.ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 300 {
		return resp.StatusCode, fmt.Errorf("POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(raw))
	}
	if resp.StatusCode == http.StatusNoContent || out == nil || len(raw) == 0 {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.Unmarshal(raw, out)
}
