package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dyflow/internal/exp"
	"dyflow/internal/obs"
	"dyflow/internal/sim"
	"dyflow/internal/trace"
)

// The sentinel errors a worker's progress hook aborts a run with.
var (
	errWorkerKilled = errors.New("fleet: worker killed")
	errLeaseLost    = errors.New("fleet: lease no longer current")
	errCancelled    = errors.New("fleet: run canceled by coordinator")
)

// WorkerOptions shapes one fleet worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's host:port.
	Coordinator string
	// Name labels the worker in the coordinator's fleet view.
	Name string
	// Slots is the number of runs executed concurrently (claim loops).
	// 0 means 1.
	Slots int
	// ClaimWait is the long-poll window a claim blocks for when the queue
	// is empty. 0 means 500ms.
	ClaimWait time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// OnClaim, when set (tests, chaos), is called with each claimed run ID
	// before execution starts — it can block to hold the lease mid-claim.
	OnClaim func(runID string)
	// Metrics is the worker's registry; a fresh one is created when nil.
	// The worker registers its dyflow_worker_* families here and pushes
	// snapshots to the coordinator on MetricsEvery cadence.
	Metrics *obs.Registry
	// MetricsEvery is the push cadence for registry snapshots. 0 means
	// the heartbeat cadence.
	MetricsEvery time.Duration
}

// Worker is one fleet member: it registers with the coordinator, then
// each slot loops claim → execute (exp.RunJob, heartbeating the lease on
// wall-clock cadence) → upload blobs → report the result. Determinism
// makes abandoning work safe at any point: the coordinator's lease expiry
// requeues the run and its re-execution is byte-identical.
type Worker struct {
	o      WorkerOptions
	id     string
	base   string
	client *http.Client
	hbEach time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	killed   atomic.Bool
	claiming atomic.Bool // false once Stop was called: finish in-flight, claim no more

	claimed   atomic.Int64
	completed atomic.Int64

	reg      *obs.Registry
	pushDone chan struct{}

	metClaims    *obs.Counter    // dyflow_worker_claims_total
	metRuns      *obs.CounterVec // dyflow_worker_runs_total{outcome}
	metRunSec    *obs.Histogram  // dyflow_worker_run_seconds
	metActive    *obs.Gauge      // dyflow_worker_active_runs
	metHB        *obs.Counter    // dyflow_worker_heartbeats_total
	metArtifacts *obs.Counter    // dyflow_worker_artifact_bytes_total
}

// JoinFleet registers a worker with the coordinator and starts its slot
// loops. Stop drains it gracefully; Kill abandons everything mid-lease.
func JoinFleet(o WorkerOptions) (*Worker, error) {
	if o.Slots <= 0 {
		o.Slots = 1
	}
	if o.ClaimWait <= 0 {
		o.ClaimWait = 500 * time.Millisecond
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	mreg := o.Metrics
	if mreg == nil {
		mreg = obs.NewRegistry()
	}
	w := &Worker{o: o, base: "http://" + o.Coordinator, client: client,
		reg: mreg, pushDone: make(chan struct{})}
	w.metClaims = mreg.Counter("dyflow_worker_claims_total",
		"Runs this worker claimed from the coordinator.").With()
	w.metRuns = mreg.Counter("dyflow_worker_runs_total",
		"Runs this worker finished, by outcome.", "outcome")
	w.metRunSec = mreg.Histogram("dyflow_worker_run_seconds",
		"Wall-clock execution time of runs on this worker.", nil).With()
	w.metActive = mreg.Gauge("dyflow_worker_active_runs",
		"Runs currently executing on this worker.").With()
	w.metHB = mreg.Counter("dyflow_worker_heartbeats_total",
		"Lease heartbeats this worker sent successfully.").With()
	w.metArtifacts = mreg.Counter("dyflow_worker_artifact_bytes_total",
		"Artifact bytes this worker uploaded to the blob store.").With()
	w.ctx, w.cancel = context.WithCancel(context.Background())
	w.claiming.Store(true)

	var reg RegisterResponse
	err := w.post("/v1/workers/register", RegisterRequest{Name: o.Name, Slots: o.Slots}, &reg)
	if err != nil {
		return nil, fmt.Errorf("fleet: register with %s: %w", o.Coordinator, err)
	}
	w.id = reg.WorkerID
	w.hbEach = time.Duration(reg.HeartbeatMs) * time.Millisecond
	if w.hbEach <= 0 {
		w.hbEach = time.Duration(reg.LeaseTTLMs/3) * time.Millisecond
	}
	if w.hbEach <= 0 {
		w.hbEach = time.Second
	}

	for i := 0; i < o.Slots; i++ {
		w.wg.Add(1)
		go w.slot()
	}
	every := o.MetricsEvery
	if every <= 0 {
		every = w.hbEach
	}
	go w.metricsLoop(every)
	return w, nil
}

// ID returns the coordinator-assigned worker ID.
func (w *Worker) ID() string { return w.id }

// Registry returns the worker's metrics registry.
func (w *Worker) Registry() *obs.Registry { return w.reg }

// Completed returns how many runs this worker finished and uploaded.
func (w *Worker) Completed() int64 { return w.completed.Load() }

// Stop drains the worker: no new claims, in-flight runs finish and
// upload, a final metrics snapshot is pushed, then the loops exit.
func (w *Worker) Stop() {
	w.claiming.Store(false)
	w.wg.Wait()
	w.pushMetrics()
	w.cancel()
	<-w.pushDone
}

// Kill abandons the worker mid-lease, the chaos path: in-flight runs
// abort without uploading a result, in-flight requests are canceled, and
// no further traffic reaches the coordinator — exactly what a crashed or
// partitioned worker looks like. The coordinator's lease expiry requeues
// whatever this worker held.
func (w *Worker) Kill() {
	w.killed.Store(true)
	w.claiming.Store(false)
	w.cancel()
	w.wg.Wait()
	<-w.pushDone
}

// metricsLoop pushes the worker's registry snapshot to the coordinator
// on a fixed cadence. Push failures are tolerated silently: metrics are
// observability, not correctness, and the coordinator keeps serving the
// last snapshot it saw.
func (w *Worker) metricsLoop(every time.Duration) {
	defer close(w.pushDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-t.C:
			w.pushMetrics()
		}
	}
}

func (w *Worker) pushMetrics() {
	if w.killed.Load() {
		return // crashed workers push nothing
	}
	_ = w.post("/v1/workers/"+w.id+"/metrics", w.reg.Snapshot(), nil)
}

// slot is one claim-execute-upload loop.
func (w *Worker) slot() {
	defer w.wg.Done()
	backoff := 10 * time.Millisecond
	for w.claiming.Load() {
		claim, ok, err := w.claim()
		if err != nil {
			if w.ctx.Err() != nil {
				return
			}
			// Coordinator unreachable: back off and retry — workers
			// outlive coordinator restarts.
			sleepCtx(w.ctx, backoff)
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 10 * time.Millisecond
		if !ok {
			continue // empty queue after the long-poll window
		}
		w.claimed.Add(1)
		w.metClaims.Inc()
		if w.o.OnClaim != nil {
			w.o.OnClaim(claim.RunID)
		}
		if w.killed.Load() {
			return // abandon the lease: no result, expiry requeues it
		}
		w.execute(claim)
	}
}

// claim asks the coordinator for a run. ok=false means the queue stayed
// empty for the poll window.
func (w *Worker) claim() (ClaimResponse, bool, error) {
	var resp ClaimResponse
	code, err := w.postCode("/v1/workers/"+w.id+"/claim",
		ClaimRequest{WaitMs: w.o.ClaimWait.Milliseconds()}, &resp)
	if err != nil {
		return resp, false, err
	}
	if code == http.StatusNoContent {
		return resp, false, nil
	}
	return resp, true, nil
}

// execute runs one claimed job, heartbeating on wall-clock cadence, then
// uploads artifacts and reports the outcome. Flight-recorder spans that
// complete during execution accumulate locally and are drained into
// heartbeats (the coordinator republishes them on the run's live event
// stream); whatever remains undrained rides along with the result.
func (w *Worker) execute(claim ClaimResponse) {
	ttl := time.Duration(claim.LeaseTTLMs) * time.Millisecond
	lastTry := time.Now() // last heartbeat attempt
	lastOK := lastTry     // last heartbeat the coordinator accepted
	w.metActive.Add(1)
	defer w.metActive.Add(-1)
	started := time.Now()

	var spanMu sync.Mutex
	var spans []trace.Span
	takeSpans := func() []trace.Span {
		spanMu.Lock()
		defer spanMu.Unlock()
		out := spans
		spans = nil
		return out
	}
	returnSpans := func(sp []trace.Span) {
		if len(sp) == 0 {
			return
		}
		spanMu.Lock()
		spans = append(sp, spans...)
		spanMu.Unlock()
	}

	out, err := exp.RunJob(claim.Job, func(world *exp.World) error {
		if world.Orch != nil {
			world.Orch.Trace.SetOnComplete(func(sp trace.Span) {
				spanMu.Lock()
				spans = append(spans, sp)
				spanMu.Unlock()
			})
		}
		world.OnProgress = func(now sim.Time) error {
			if w.killed.Load() {
				return errWorkerKilled
			}
			if time.Since(lastTry) < w.hbEach {
				return nil
			}
			lastTry = time.Now()
			batch := takeSpans()
			var hb HeartbeatResponse
			if err := w.post("/v1/workers/"+w.id+"/heartbeat",
				HeartbeatRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
					SimNs: int64(now), Spans: batch}, &hb); err != nil {
				returnSpans(batch) // retry the batch with the next heartbeat
				// Lost heartbeats are survivable inside the TTL; give up
				// only once the lease must have lapsed at the coordinator.
				if time.Since(lastOK) > ttl {
					return errLeaseLost
				}
				return nil
			}
			w.metHB.Inc()
			lastOK = time.Now()
			switch {
			case !hb.Valid:
				return errLeaseLost
			case hb.Cancel:
				return errCancelled
			}
			return nil
		}
		return nil
	})
	w.metRunSec.Observe(time.Since(started).Seconds())

	switch {
	case w.killed.Load():
		return // crashed workers upload nothing
	case errors.Is(err, errLeaseLost):
		return // the run was requeued under us; our result would be stale
	case errors.Is(err, errCancelled):
		w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
			Canceled: true, Error: errCancelled.Error(), Spans: takeSpans()})
	case err != nil:
		w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
			Error: err.Error(), Spans: takeSpans()})
	default:
		refs, uerr := w.uploadArtifacts(out.Artifacts)
		if uerr != nil {
			if w.ctx.Err() != nil {
				return
			}
			w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
				Error: fmt.Sprintf("artifact upload: %v", uerr)})
			return
		}
		w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
			Converged: out.Converged, SimEndNs: int64(out.SimEnd),
			Artifacts: refs, Spans: takeSpans()})
	}
}

// uploadArtifacts pushes each artifact blob the coordinator does not
// already hold (content addressing makes re-executions and shared cache
// hits free) and returns the name → digest reference map.
func (w *Worker) uploadArtifacts(artifacts map[string][]byte) (map[string]string, error) {
	refs := make(map[string]string, len(artifacts))
	for name, data := range artifacts {
		digest := Digest(data)
		refs[name] = digest
		if w.hasBlob(digest) {
			continue
		}
		if err := w.putBlob(digest, data); err != nil {
			return nil, err
		}
		w.metArtifacts.Add(int64(len(data)))
	}
	return refs, nil
}

func (w *Worker) hasBlob(digest string) bool {
	req, err := http.NewRequestWithContext(w.ctx, http.MethodHead, w.base+"/v1/blobs/"+digest, nil)
	if err != nil {
		return false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (w *Worker) putBlob(digest string, data []byte) error {
	req, err := http.NewRequestWithContext(w.ctx, http.MethodPut, w.base+"/v1/blobs/"+digest, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("PUT blob %s: %s: %s", digest[:12], resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// report posts the result; a rejected (stale) upload is dropped silently —
// the coordinator has already moved on.
func (w *Worker) report(res ResultRequest) {
	switch {
	case res.Canceled:
		w.metRuns.With("canceled").Inc()
	case res.Error != "":
		w.metRuns.With("failed").Inc()
	default:
		w.metRuns.With("done").Inc()
	}
	var resp ResultResponse
	if err := w.post("/v1/workers/"+w.id+"/result", res, &resp); err != nil {
		return // coordinator gone or lease raced; expiry handles the run
	}
	if resp.Accepted && res.Error == "" && !res.Canceled {
		w.completed.Add(1)
	}
}

// post sends a JSON request and decodes the JSON response.
func (w *Worker) post(path string, body, out any) error {
	_, err := w.postCode(path, body, out)
	return err
}

func (w *Worker) postCode(path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(w.ctx, http.MethodPost, w.base+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 300 {
		return resp.StatusCode, fmt.Errorf("POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(raw))
	}
	if resp.StatusCode == http.StatusNoContent || out == nil || len(raw) == 0 {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.Unmarshal(raw, out)
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
