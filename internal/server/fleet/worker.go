package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dyflow/internal/exp"
	"dyflow/internal/sim"
)

// The sentinel errors a worker's progress hook aborts a run with.
var (
	errWorkerKilled = errors.New("fleet: worker killed")
	errLeaseLost    = errors.New("fleet: lease no longer current")
	errCancelled    = errors.New("fleet: run canceled by coordinator")
)

// WorkerOptions shapes one fleet worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's host:port.
	Coordinator string
	// Name labels the worker in the coordinator's fleet view.
	Name string
	// Slots is the number of runs executed concurrently (claim loops).
	// 0 means 1.
	Slots int
	// ClaimWait is the long-poll window a claim blocks for when the queue
	// is empty. 0 means 500ms.
	ClaimWait time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// OnClaim, when set (tests, chaos), is called with each claimed run ID
	// before execution starts — it can block to hold the lease mid-claim.
	OnClaim func(runID string)
}

// Worker is one fleet member: it registers with the coordinator, then
// each slot loops claim → execute (exp.RunJob, heartbeating the lease on
// wall-clock cadence) → upload blobs → report the result. Determinism
// makes abandoning work safe at any point: the coordinator's lease expiry
// requeues the run and its re-execution is byte-identical.
type Worker struct {
	o      WorkerOptions
	id     string
	base   string
	client *http.Client
	hbEach time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	killed   atomic.Bool
	claiming atomic.Bool // false once Stop was called: finish in-flight, claim no more

	claimed   atomic.Int64
	completed atomic.Int64
}

// JoinFleet registers a worker with the coordinator and starts its slot
// loops. Stop drains it gracefully; Kill abandons everything mid-lease.
func JoinFleet(o WorkerOptions) (*Worker, error) {
	if o.Slots <= 0 {
		o.Slots = 1
	}
	if o.ClaimWait <= 0 {
		o.ClaimWait = 500 * time.Millisecond
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	w := &Worker{o: o, base: "http://" + o.Coordinator, client: client}
	w.ctx, w.cancel = context.WithCancel(context.Background())
	w.claiming.Store(true)

	var reg RegisterResponse
	err := w.post("/v1/workers/register", RegisterRequest{Name: o.Name, Slots: o.Slots}, &reg)
	if err != nil {
		return nil, fmt.Errorf("fleet: register with %s: %w", o.Coordinator, err)
	}
	w.id = reg.WorkerID
	w.hbEach = time.Duration(reg.HeartbeatMs) * time.Millisecond
	if w.hbEach <= 0 {
		w.hbEach = time.Duration(reg.LeaseTTLMs/3) * time.Millisecond
	}
	if w.hbEach <= 0 {
		w.hbEach = time.Second
	}

	for i := 0; i < o.Slots; i++ {
		w.wg.Add(1)
		go w.slot()
	}
	return w, nil
}

// ID returns the coordinator-assigned worker ID.
func (w *Worker) ID() string { return w.id }

// Completed returns how many runs this worker finished and uploaded.
func (w *Worker) Completed() int64 { return w.completed.Load() }

// Stop drains the worker: no new claims, in-flight runs finish and
// upload, then the slot loops exit.
func (w *Worker) Stop() {
	w.claiming.Store(false)
	w.wg.Wait()
	w.cancel()
}

// Kill abandons the worker mid-lease, the chaos path: in-flight runs
// abort without uploading a result, in-flight requests are canceled, and
// no further traffic reaches the coordinator — exactly what a crashed or
// partitioned worker looks like. The coordinator's lease expiry requeues
// whatever this worker held.
func (w *Worker) Kill() {
	w.killed.Store(true)
	w.claiming.Store(false)
	w.cancel()
	w.wg.Wait()
}

// slot is one claim-execute-upload loop.
func (w *Worker) slot() {
	defer w.wg.Done()
	backoff := 10 * time.Millisecond
	for w.claiming.Load() {
		claim, ok, err := w.claim()
		if err != nil {
			if w.ctx.Err() != nil {
				return
			}
			// Coordinator unreachable: back off and retry — workers
			// outlive coordinator restarts.
			sleepCtx(w.ctx, backoff)
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 10 * time.Millisecond
		if !ok {
			continue // empty queue after the long-poll window
		}
		w.claimed.Add(1)
		if w.o.OnClaim != nil {
			w.o.OnClaim(claim.RunID)
		}
		if w.killed.Load() {
			return // abandon the lease: no result, expiry requeues it
		}
		w.execute(claim)
	}
}

// claim asks the coordinator for a run. ok=false means the queue stayed
// empty for the poll window.
func (w *Worker) claim() (ClaimResponse, bool, error) {
	var resp ClaimResponse
	code, err := w.postCode("/v1/workers/"+w.id+"/claim",
		ClaimRequest{WaitMs: w.o.ClaimWait.Milliseconds()}, &resp)
	if err != nil {
		return resp, false, err
	}
	if code == http.StatusNoContent {
		return resp, false, nil
	}
	return resp, true, nil
}

// execute runs one claimed job, heartbeating on wall-clock cadence, then
// uploads artifacts and reports the outcome.
func (w *Worker) execute(claim ClaimResponse) {
	ttl := time.Duration(claim.LeaseTTLMs) * time.Millisecond
	lastTry := time.Now() // last heartbeat attempt
	lastOK := lastTry     // last heartbeat the coordinator accepted
	out, err := exp.RunJob(claim.Job, func(world *exp.World) error {
		world.OnProgress = func(now sim.Time) error {
			if w.killed.Load() {
				return errWorkerKilled
			}
			if time.Since(lastTry) < w.hbEach {
				return nil
			}
			lastTry = time.Now()
			var hb HeartbeatResponse
			if err := w.post("/v1/workers/"+w.id+"/heartbeat",
				HeartbeatRequest{RunID: claim.RunID, LeaseID: claim.LeaseID, SimNs: int64(now)}, &hb); err != nil {
				// Lost heartbeats are survivable inside the TTL; give up
				// only once the lease must have lapsed at the coordinator.
				if time.Since(lastOK) > ttl {
					return errLeaseLost
				}
				return nil
			}
			lastOK = time.Now()
			switch {
			case !hb.Valid:
				return errLeaseLost
			case hb.Cancel:
				return errCancelled
			}
			return nil
		}
		return nil
	})

	switch {
	case w.killed.Load():
		return // crashed workers upload nothing
	case errors.Is(err, errLeaseLost):
		return // the run was requeued under us; our result would be stale
	case errors.Is(err, errCancelled):
		w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
			Canceled: true, Error: errCancelled.Error()})
	case err != nil:
		w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID, Error: err.Error()})
	default:
		refs, uerr := w.uploadArtifacts(out.Artifacts)
		if uerr != nil {
			if w.ctx.Err() != nil {
				return
			}
			w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
				Error: fmt.Sprintf("artifact upload: %v", uerr)})
			return
		}
		w.report(ResultRequest{RunID: claim.RunID, LeaseID: claim.LeaseID,
			Converged: out.Converged, SimEndNs: int64(out.SimEnd), Artifacts: refs})
	}
}

// uploadArtifacts pushes each artifact blob the coordinator does not
// already hold (content addressing makes re-executions and shared cache
// hits free) and returns the name → digest reference map.
func (w *Worker) uploadArtifacts(artifacts map[string][]byte) (map[string]string, error) {
	refs := make(map[string]string, len(artifacts))
	for name, data := range artifacts {
		digest := Digest(data)
		refs[name] = digest
		if w.hasBlob(digest) {
			continue
		}
		if err := w.putBlob(digest, data); err != nil {
			return nil, err
		}
	}
	return refs, nil
}

func (w *Worker) hasBlob(digest string) bool {
	req, err := http.NewRequestWithContext(w.ctx, http.MethodHead, w.base+"/v1/blobs/"+digest, nil)
	if err != nil {
		return false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (w *Worker) putBlob(digest string, data []byte) error {
	req, err := http.NewRequestWithContext(w.ctx, http.MethodPut, w.base+"/v1/blobs/"+digest, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("PUT blob %s: %s: %s", digest[:12], resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// report posts the result; a rejected (stale) upload is dropped silently —
// the coordinator has already moved on.
func (w *Worker) report(res ResultRequest) {
	var resp ResultResponse
	if err := w.post("/v1/workers/"+w.id+"/result", res, &resp); err != nil {
		return // coordinator gone or lease raced; expiry handles the run
	}
	if resp.Accepted && res.Error == "" && !res.Canceled {
		w.completed.Add(1)
	}
}

// post sends a JSON request and decodes the JSON response.
func (w *Worker) post(path string, body, out any) error {
	_, err := w.postCode(path, body, out)
	return err
}

func (w *Worker) postCode(path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(w.ctx, http.MethodPost, w.base+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 300 {
		return resp.StatusCode, fmt.Errorf("POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(raw))
	}
	if resp.StatusCode == http.StatusNoContent || out == nil || len(raw) == 0 {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.Unmarshal(raw, out)
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
