package fleet

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// backoff produces capped exponential backoff with full jitter (each
// delay is uniform over (0, min(cap, base·2ⁿ)]): retrying workers
// decorrelate instead of stampeding a coordinator that just came back.
// Safe for concurrent use; each call site usually owns one.
type backoff struct {
	base time.Duration // first attempt's ceiling
	max  time.Duration // the cap every ceiling saturates at

	mu   sync.Mutex
	cur  time.Duration // next attempt's ceiling
	rng  *rand.Rand
	seed int64
}

// newBackoff builds a backoff with the given base and cap, seeded for
// reproducible jitter in tests (seed 0 means seed from the clock).
func newBackoff(base, max time.Duration, seed int64) *backoff {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max < base {
		max = base
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &backoff{base: base, max: max, cur: base, rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// next returns this attempt's jittered delay and doubles the ceiling
// (saturating at the cap). The delay is never zero — a zero sleep would
// turn a dead coordinator into a busy loop.
func (b *backoff) next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	ceiling := b.cur
	if b.cur < b.max {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	return 1 + time.Duration(b.rng.Int63n(int64(ceiling)))
}

// reset returns the ceiling to base after a success.
func (b *backoff) reset() {
	b.mu.Lock()
	b.cur = b.base
	b.mu.Unlock()
}

// ceiling reports the next attempt's maximum delay (tests).
func (b *backoff) ceiling() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cur
}

// sleepCtx sleeps for d or until ctx is done, reporting whether the
// full duration elapsed (false = canceled).
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
