// Package fleet is the campaign service's scale-out substrate: a lease
// manager the coordinator uses to hand queued runs to remote workers (and
// reclaim them when a worker dies), a content-addressed blob store the
// finished artifacts live in (so N runs with identical bytes cost one
// copy, fleet-wide), and the HTTP worker client that registers with a
// coordinator, claims runs, heartbeats its leases, and uploads results.
// docs/SERVICE.md ("The worker fleet") is the narrative description.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dyflow/internal/obs"
)

// Digest returns the content address of a blob: its sha256, hex-encoded.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// BlobStore is a content-addressed artifact store: blobs are keyed by
// their sha256, so identical artifacts — a re-executed deterministic run,
// a cache hit, two seeds converging on the same report — are stored once.
// With a directory it is durable (one file per blob, written atomically);
// without one it is memory-only. All methods are safe for concurrent use.
type BlobStore struct {
	dir string // "" = memory only

	mu  sync.Mutex
	mem map[string][]byte

	count *obs.Gauge   // dyflow_server_fleet_blobs
	size  *obs.Gauge   // dyflow_server_fleet_blob_bytes
	dedup *obs.Counter // dyflow_server_fleet_blob_dedup_total

	// Degraded mode: a failed disk write keeps the blob memory-resident
	// (serving continues) instead of failing the upload — counted per
	// shed, gauge held at 1 until a later write succeeds.
	degraded *obs.Gauge   // dyflow_server_degraded_mode{component="blobs"}
	sheds    *obs.Counter // dyflow_server_degraded_sheds_total{component="blobs"}
}

// NewBlobStore opens a blob store rooted at dir ("" keeps blobs in memory
// only), registering its dyflow_server_fleet_blob_* families in reg.
func NewBlobStore(dir string, reg *obs.Registry) (*BlobStore, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &BlobStore{
		dir: dir,
		mem: map[string][]byte{},
		count: reg.Gauge("dyflow_server_fleet_blobs",
			"Blobs resident in the content-addressed artifact store.").With(),
		size: reg.Gauge("dyflow_server_fleet_blob_bytes",
			"Total bytes resident in the content-addressed artifact store.").With(),
		dedup: reg.Counter("dyflow_server_fleet_blob_dedup_total",
			"Blob uploads answered by an already-stored identical blob.").With(),
		degraded: reg.Gauge("dyflow_server_degraded_mode",
			"1 while the component is operating degraded (shedding work instead of blocking).",
			"component").With("blobs"),
		sheds: reg.Counter("dyflow_server_degraded_sheds_total",
			"Operations shed to a degraded path instead of blocking the API.",
			"component").With("blobs"),
	}, nil
}

// path is the blob's on-disk location, fanned out by digest prefix.
func (b *BlobStore) path(digest string) string {
	return filepath.Join(b.dir, digest[:2], digest)
}

// Put stores data under its own digest and returns that digest.
func (b *BlobStore) Put(data []byte) (string, error) {
	digest := Digest(data)
	return digest, b.PutAs(digest, data)
}

// PutAs stores data under digest, verifying the content actually hashes
// to it — a worker upload with a wrong address is rejected, not stored.
//
// A failed *disk* write is not an upload failure: the blob stays
// memory-resident and fully servable, so the store sheds to a degraded
// memory-only mode (counted, gauge at 1) instead of failing the PUT.
// That trade is safe because restore already demotes done runs whose
// artifact references no longer resolve back to queued — losing the
// durable copy costs a deterministic re-execution after a crash, never
// a wrong answer. The gauge clears on the next write the disk accepts.
func (b *BlobStore) PutAs(digest string, data []byte) error {
	if got := Digest(data); got != digest {
		return fmt.Errorf("fleet: blob digest mismatch: body is %s, address is %s", got, digest)
	}
	b.mu.Lock()
	if _, ok := b.mem[digest]; ok {
		b.mu.Unlock()
		b.dedup.Inc()
		return nil
	}
	b.mem[digest] = data
	b.count.Add(1)
	b.size.Add(float64(len(data)))
	b.mu.Unlock()

	if b.dir == "" {
		return nil
	}
	if err := b.writeDisk(digest, data); err != nil {
		b.sheds.Inc()
		b.degraded.Set(1)
		return nil
	}
	b.degraded.Set(0)
	return nil
}

// writeDisk persists one blob atomically (tmp + rename).
func (b *BlobStore) writeDisk(digest string, data []byte) error {
	p := b.path(digest)
	if _, err := os.Stat(p); err == nil {
		return nil // already durable (e.g. restored from a prior process)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// Get returns a blob's bytes, falling back to disk for blobs written by a
// previous process (they are cached in memory on first read).
func (b *BlobStore) Get(digest string) ([]byte, bool) {
	b.mu.Lock()
	data, ok := b.mem[digest]
	b.mu.Unlock()
	if ok {
		return data, true
	}
	if b.dir == "" || len(digest) < 2 {
		return nil, false
	}
	data, err := os.ReadFile(b.path(digest))
	if err != nil || Digest(data) != digest {
		return nil, false
	}
	b.mu.Lock()
	if _, dup := b.mem[digest]; !dup {
		b.mem[digest] = data
		b.count.Add(1)
		b.size.Add(float64(len(data)))
	}
	b.mu.Unlock()
	return data, true
}

// Has reports whether a blob is resident (memory or disk).
func (b *BlobStore) Has(digest string) bool {
	b.mu.Lock()
	_, ok := b.mem[digest]
	b.mu.Unlock()
	if ok || b.dir == "" || len(digest) < 2 {
		return ok
	}
	_, err := os.Stat(b.path(digest))
	return err == nil
}

// Size returns a blob's stored byte size (0 when absent) — the run
// store's per-tenant retention accounting reads it at record time.
func (b *BlobStore) Size(digest string) int64 {
	b.mu.Lock()
	data, ok := b.mem[digest]
	b.mu.Unlock()
	if ok {
		return int64(len(data))
	}
	if b.dir == "" || len(digest) < 2 {
		return 0
	}
	fi, err := os.Stat(b.path(digest))
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Len returns the number of in-memory blobs (tests).
func (b *BlobStore) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.mem)
}

// GC drops every blob whose digest is not in keep — the coordinator calls
// it after a restore, once the run table says which artifacts are still
// referenced, so re-executed runs' superseded bytes do not accumulate.
func (b *BlobStore) GC(keep map[string]bool) int {
	b.mu.Lock()
	var drop []string
	for digest := range b.mem {
		if !keep[digest] {
			drop = append(drop, digest)
		}
	}
	for _, digest := range drop {
		b.size.Add(-float64(len(b.mem[digest])))
		b.count.Add(-1)
		delete(b.mem, digest)
	}
	b.mu.Unlock()

	removed := len(drop)
	if b.dir != "" {
		prefixes, _ := os.ReadDir(b.dir)
		for _, pre := range prefixes {
			if !pre.IsDir() {
				continue
			}
			entries, _ := os.ReadDir(filepath.Join(b.dir, pre.Name()))
			for _, e := range entries {
				if !keep[e.Name()] {
					if os.Remove(filepath.Join(b.dir, pre.Name(), e.Name())) == nil {
						removed++
					}
				}
			}
		}
	}
	return removed
}
