package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dyflow/internal/obs"
)

func TestBlobStoreContentAddressing(t *testing.T) {
	reg := obs.NewRegistry()
	b, err := NewBlobStore("", reg)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the artifact bytes")
	digest, err := b.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if digest != Digest(data) {
		t.Fatalf("Put stored under %s, content is %s", digest, Digest(data))
	}
	got, ok := b.Get(digest)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get(%s) = %q, %v", digest, got, ok)
	}
	if !b.Has(digest) || b.Has(Digest([]byte("other"))) {
		t.Fatal("Has disagrees with the store contents")
	}

	// Identical content dedups to one blob.
	if _, err := b.Put(data); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("%d blobs after duplicate Put", b.Len())
	}
	if v, _ := reg.Value("dyflow_server_fleet_blob_dedup_total"); v != 1 {
		t.Fatalf("dedup counter = %v", v)
	}

	// An upload whose body does not hash to its address is rejected.
	if err := b.PutAs(digest, []byte("tampered")); err == nil {
		t.Fatal("mismatched blob accepted")
	}
}

func TestBlobStoreDurabilityAndGC(t *testing.T) {
	dir := t.TempDir()
	b1, err := NewBlobStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	keepDigest, err := b1.Put([]byte("keep me"))
	if err != nil {
		t.Fatal(err)
	}
	dropDigest, err := b1.Put([]byte("drop me"))
	if err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory serves blobs written by its
	// predecessor.
	b2, err := NewBlobStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := b2.Get(keepDigest); !ok || string(data) != "keep me" {
		t.Fatalf("blob not durable across processes: %q, %v", data, ok)
	}

	// GC drops unreferenced blobs from memory and disk.
	b2.GC(map[string]bool{keepDigest: true})
	if b2.Has(dropDigest) {
		t.Fatal("unreferenced blob survived GC")
	}
	if _, err := os.Stat(filepath.Join(dir, dropDigest[:2], dropDigest)); !os.IsNotExist(err) {
		t.Fatalf("unreferenced blob file survived GC: %v", err)
	}
	if !b2.Has(keepDigest) {
		t.Fatal("referenced blob dropped by GC")
	}
}

func TestManagerLeaseLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(reg, time.Minute, nil)
	defer m.Close()

	wid := m.Register("w", 1)
	lease, err := m.Grant(wid, "run-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(wid, "run-1"); err == nil {
		t.Fatal("double-granted a leased run")
	}
	if _, err := m.Grant("worker-nope", "run-2"); err == nil {
		t.Fatal("granted to an unregistered worker")
	}
	if !m.Heartbeat(wid, "run-1", lease) {
		t.Fatal("live lease rejected a heartbeat")
	}
	if m.Heartbeat(wid, "run-1", "lease-999999") {
		t.Fatal("wrong lease ID accepted")
	}

	// Release is the at-most-once gate: it consumes the lease exactly once.
	if !m.Release(wid, "run-1", lease) {
		t.Fatal("live lease rejected its result")
	}
	if m.Release(wid, "run-1", lease) {
		t.Fatal("released lease accepted a second result")
	}
	if v, _ := reg.Value("dyflow_server_fleet_results_total"); v != 1 {
		t.Fatalf("results_total = %v", v)
	}
	if v, _ := reg.Value("dyflow_server_fleet_stale_results_total"); v != 1 {
		t.Fatalf("stale_results_total = %v", v)
	}

	// Revoke (cancellation path) also invalidates the lease.
	lease2, err := m.Grant(wid, "run-2")
	if err != nil {
		t.Fatal(err)
	}
	m.Revoke("run-2")
	if m.Release(wid, "run-2", lease2) {
		t.Fatal("revoked lease accepted a result")
	}
}

func TestManagerLeaseExpiry(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var expired []string
	m := NewManager(reg, 30*time.Millisecond, func(runID, workerID string) {
		mu.Lock()
		expired = append(expired, runID+"@"+workerID)
		mu.Unlock()
	})
	defer m.Close()

	wid := m.Register("w", 1)
	lease, err := m.Grant(wid, "run-1")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Leased("run-1") {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired without heartbeats")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	got := append([]string(nil), expired...)
	mu.Unlock()
	if len(got) != 1 || got[0] != "run-1@"+wid {
		t.Fatalf("expiry callbacks = %v", got)
	}
	if v, _ := reg.Value("dyflow_server_fleet_lease_expiries_total"); v != 1 {
		t.Fatalf("lease_expiries_total = %v", v)
	}
	// The dead worker's late upload is stale.
	if m.Release(wid, "run-1", lease) {
		t.Fatal("expired lease accepted a result")
	}
}
