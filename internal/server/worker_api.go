package server

import (
	"encoding/json"
	"io"
	"net/http"
	"time"

	"dyflow/internal/obs"
	"dyflow/internal/server/events"
	"dyflow/internal/server/fleet"
)

// The coordinator side of the fleet worker API (docs/SERVICE.md, "The
// worker fleet"). Wire types live in internal/server/fleet so the Worker
// client and these handlers cannot drift apart.
//
//	POST /v1/workers/register           join the fleet
//	POST /v1/workers/{id}/claim         lease one queued run (204 = empty)
//	POST /v1/workers/{id}/heartbeat     renew a lease, learn of cancellation
//	POST /v1/workers/{id}/result        upload an outcome (lease-gated)
//	PUT  /v1/blobs/{digest}             upload one artifact blob
//	GET  /v1/blobs/{digest}             fetch a blob (HEAD probes existence)
//	GET  /v1/fleet                      workers + leases view

// maxBlobBytes bounds one artifact upload.
const maxBlobBytes = 128 << 20

// fleetRoutes mounts the worker API on the coordinator's mux. route is
// Handler's counting registrar.
func (s *Server) fleetRoutes(route func(pattern, name string, h http.HandlerFunc)) {
	route("POST /v1/workers/register", "worker_register", s.handleRegister)
	route("POST /v1/workers/{id}/claim", "worker_claim", s.handleClaim)
	route("POST /v1/workers/{id}/heartbeat", "worker_heartbeat", s.handleHeartbeat)
	route("POST /v1/workers/{id}/result", "worker_result", s.handleResult)
	route("POST /v1/workers/{id}/metrics", "worker_metrics", s.handleWorkerMetrics)
	route("PUT /v1/blobs/{digest}", "blob_put", s.handleBlobPut)
	route("GET /v1/blobs/{digest}", "blob_get", s.handleBlobGet)
	route("GET /v1/fleet", "fleet", s.handleFleetView)
	route("GET /v1/fleet/metrics", "fleet_metrics", s.handleFleetMetrics)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req fleet.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, &APIError{Code: http.StatusBadRequest, Msg: "bad register body: " + err.Error()})
		return
	}
	id := s.fleet.Register(req.Name, req.Slots)
	ttl := s.fleet.TTL()
	s.writeJSON(w, http.StatusOK, fleet.RegisterResponse{
		WorkerID:    id,
		LeaseTTLMs:  ttl.Milliseconds(),
		HeartbeatMs: (ttl / 3).Milliseconds(),
	})
}

// handleClaim hands the worker one queued run under a fresh lease,
// long-polling up to the requested wait when the queue is empty.
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	workerID := r.PathValue("id")
	var req fleet.ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, &APIError{Code: http.StatusBadRequest, Msg: "bad claim body: " + err.Error()})
		return
	}
	s.fleet.Touch(workerID) // an empty-queue poll still proves liveness
	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	poll := time.NewTicker(2 * time.Millisecond)
	defer poll.Stop()
	for {
		if id, ok := s.queue.tryPopAny(); ok {
			if resp, ok := s.leaseRun(workerID, id); ok {
				s.writeJSON(w, http.StatusOK, resp)
				return
			}
			continue // that run finished at claim time (canceled/cached); try the next
		}
		if s.isStopping() {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		// Block on whichever comes first: the next poll tick, the long-poll
		// window closing, the client disconnecting (a partitioned or killed
		// worker must not pin a handler goroutine for the full window), or
		// shutdown.
		select {
		case <-poll.C:
		case <-deadline.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			w.WriteHeader(http.StatusNoContent)
			return
		case <-s.stopped:
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
}

// leaseRun moves one popped run to running under a lease for workerID.
// ok=false means the run was consumed without needing a worker (canceled
// while queued, or completable from the result cache) — claim again.
func (s *Server) leaseRun(workerID, id string) (fleet.ClaimResponse, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.runs[id]
	if r == nil || r.State != StateQueued {
		return fleet.ClaimResponse{}, false
	}
	if r.cancel.Load() {
		s.finishLocked(r, StateCanceled, errRunCanceled)
		return fleet.ClaimResponse{}, false
	}
	if s.finishFromCacheLocked(r) {
		return fleet.ClaimResponse{}, false
	}
	leaseID, err := s.fleet.Grant(workerID, id)
	if err != nil {
		// Unknown worker: put the run back for someone legitimate.
		s.queue.requeue(r.Shard, id)
		return fleet.ClaimResponse{}, false
	}
	r.State = StateRunning
	r.ClaimedAt = time.Now()
	r.StartedAt = r.ClaimedAt
	r.Worker = workerID
	r.LeaseID = leaseID
	s.events.Append(id, events.Event{Type: events.TypeClaimed, Worker: workerID})
	s.events.Append(id, events.Event{Type: events.TypeRunning, Worker: workerID})
	s.historyAppendLocked(r)
	return fleet.ClaimResponse{
		RunID:      id,
		Job:        r.Job,
		LeaseID:    leaseID,
		LeaseTTLMs: s.fleet.TTL().Milliseconds(),
	}, true
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	workerID := r.PathValue("id")
	var req fleet.HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, &APIError{Code: http.StatusBadRequest, Msg: "bad heartbeat body: " + err.Error()})
		return
	}
	resp := fleet.HeartbeatResponse{Valid: s.fleet.Heartbeat(workerID, req.RunID, req.LeaseID)}
	if resp.Valid {
		s.mu.Lock()
		if run := s.runs[req.RunID]; run != nil {
			run.simNow.Store(req.SimNs)
			resp.Cancel = run.cancel.Load()
			s.progressEvent(run, workerID, req.SimNs)
		}
		cancelAll := s.stopping
		s.mu.Unlock()
		s.appendWorkerSpans(req.RunID, workerID, req.Spans)
		if cancelAll {
			resp.Cancel = true
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleResult applies a worker's outcome — if and only if the worker
// still holds the run's live lease. A lapsed, revoked, or superseded
// lease means the coordinator already requeued (or canceled) the run;
// the upload is counted stale and ignored, which is what makes
// completion at-most-once *observable* even though a run may execute
// more than once.
//
// The lease ID doubles as the result's idempotency key: when a worker
// retransmits a completion whose 200 was lost in flight, the run is
// already terminal under that very lease — the retry is acknowledged
// Accepted (Reason "duplicate") and counted in
// dyflow_server_fleet_duplicate_results_total instead of stale.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	workerID := r.PathValue("id")
	var req fleet.ResultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, &APIError{Code: http.StatusBadRequest, Msg: "bad result body: " + err.Error()})
		return
	}
	if s.isDuplicateResult(&req) {
		s.met.dupResults.Inc()
		s.writeJSON(w, http.StatusOK, fleet.ResultResponse{Accepted: true, Reason: "duplicate"})
		return
	}
	if !s.fleet.Release(workerID, req.RunID, req.LeaseID) {
		s.writeJSON(w, http.StatusOK, fleet.ResultResponse{Reason: "lease not current; result ignored"})
		return
	}

	s.appendWorkerSpans(req.RunID, workerID, req.Spans)

	s.mu.Lock()
	defer s.mu.Unlock()
	run := s.runs[req.RunID]
	if run == nil || run.State != StateRunning || run.Worker != workerID {
		s.writeJSON(w, http.StatusOK, fleet.ResultResponse{Reason: "run not executing under this worker"})
		return
	}
	switch {
	case req.Requeue:
		// The worker executed the run but could not deliver its artifacts
		// (degraded blob plane): it hands the still-valid lease back and
		// the run returns to the queue rather than failing.
		s.logf("server: worker %s requeued %s: %s", workerID, req.RunID, req.Error)
		s.resetToQueuedLocked(run, "result_upload_failed")
		s.queue.requeue(run.Shard, run.ID)
		s.fleet.NoteOutcome(workerID, "requeued")
		s.writeJSON(w, http.StatusOK, fleet.ResultResponse{Accepted: true, Reason: "requeued"})
		return
	case req.Canceled:
		run.doneLease = req.LeaseID
		s.finishLocked(run, StateCanceled, errRunCanceled)
		s.fleet.NoteOutcome(workerID, "canceled")
	case req.Error != "":
		run.doneLease = req.LeaseID
		s.finishLocked(run, StateFailed, errRemote(req.Error))
		s.fleet.NoteOutcome(workerID, "failed")
	default:
		// Every referenced blob must already be in the store; otherwise
		// the "done" run would 404 its artifacts, so requeue instead.
		for name, digest := range req.Artifacts {
			if !s.blobs.Has(digest) {
				s.logf("server: result for %s references missing blob %s (%s); requeued", req.RunID, digest[:12], name)
				s.resetToQueuedLocked(run, "missing_blob")
				s.queue.requeue(run.Shard, run.ID)
				s.writeJSON(w, http.StatusOK, fleet.ResultResponse{Reason: "artifact blob missing; run requeued"})
				return
			}
		}
		run.Converged = req.Converged
		run.SimEnd = time.Duration(req.SimEndNs)
		run.simNow.Store(req.SimEndNs)
		run.Artifacts = req.Artifacts
		if _, have := s.cache[run.Job.Key()]; !have {
			s.cache[run.Job.Key()] = cacheEntryFor(run)
		}
		if !run.StartedAt.IsZero() {
			s.met.runSeconds.Observe(time.Since(run.StartedAt).Seconds())
		}
		run.doneLease = req.LeaseID
		s.finishLocked(run, StateDone, nil)
		s.fleet.NoteOutcome(workerID, "done")
	}
	s.writeJSON(w, http.StatusOK, fleet.ResultResponse{Accepted: true})
}

// isDuplicateResult reports whether this upload is a retransmission of a
// result already applied: the run reached its terminal state under
// exactly the lease this request carries.
func (s *Server) isDuplicateResult(req *fleet.ResultRequest) bool {
	if req.LeaseID == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	run := s.runs[req.RunID]
	if run != nil {
		return run.State.Terminal() && run.doneLease == req.LeaseID
	}
	// Terminal runs are evicted to the history store; recentDone keeps the
	// (run, completing lease) pairs so a late retransmission still dedupes.
	return s.recentDone[req.RunID] == req.LeaseID
}

func (s *Server) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
	if err != nil {
		httpError(w, &APIError{Code: http.StatusRequestEntityTooLarge, Msg: err.Error()})
		return
	}
	if err := s.blobs.PutAs(digest, data); err != nil {
		httpError(w, &APIError{Code: http.StatusBadRequest, Msg: err.Error()})
		return
	}
	w.WriteHeader(http.StatusCreated)
}

// handleBlobGet serves a blob; Go's mux and server make the same handler
// answer HEAD with headers only, which is how workers probe before
// uploading.
func (s *Server) handleBlobGet(w http.ResponseWriter, r *http.Request) {
	data, ok := s.blobs.Get(r.PathValue("digest"))
	if !ok {
		httpError(w, &APIError{Code: http.StatusNotFound, Msg: "no such blob"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (s *Server) handleFleetView(w http.ResponseWriter, r *http.Request) {
	workers := s.fleet.Workers()
	s.writeJSON(w, http.StatusOK, fleet.View{
		LeaseTTLMs: s.fleet.TTL().Milliseconds(),
		Workers:    workers,
		Leases:     len(s.fleet.LeasedRuns()),
	})
}

// handleWorkerMetrics accepts a worker's pushed registry snapshot. The
// coordinator folds the latest snapshot per worker into /metrics (with a
// worker label) and serves them raw on GET /v1/fleet/metrics.
func (s *Server) handleWorkerMetrics(w http.ResponseWriter, r *http.Request) {
	workerID := r.PathValue("id")
	var snap obs.Snapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		httpError(w, &APIError{Code: http.StatusBadRequest, Msg: "bad metrics body: " + err.Error()})
		return
	}
	if !s.fleet.SetWorkerMetrics(workerID, snap) {
		httpError(w, &APIError{Code: http.StatusNotFound, Msg: "unknown worker " + workerID})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleFleetMetrics serves each worker's last pushed snapshot plus the
// merged, worker-labeled view.
func (s *Server) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, fleet.MetricsView{
		Workers: s.fleet.MetricsSnapshots(),
		Merged:  s.mergedSnapshot(),
	})
}

// errRemote wraps a worker-reported failure string as an error.
type errRemote string

func (e errRemote) Error() string { return string(e) }
