package server

import "dyflow/internal/obs"

// metrics is the campaign service's own family set (the `dyflow_server_*`
// catalog in docs/OBSERVABILITY.md). It lives in the server's registry,
// which is strictly separate from the per-run world registries — each job
// simulates into a private obs.Registry that ships as the run's "metrics"
// artifact, so concurrent campaigns never share series.
type metrics struct {
	submissions  *obs.CounterVec // {tenant} accepted submissions
	cacheHits    *obs.CounterVec // {tenant} submissions served from the result cache
	quotaRejects *obs.CounterVec // {tenant} 429s from the per-tenant quota
	queueRejects *obs.Counter    // 429s from queue backpressure
	queueDepth   *obs.GaugeVec   // {shard}
	active       *obs.Gauge      // worker slots currently simulating
	runsTotal    *obs.CounterVec // {state} terminal transitions
	runSeconds   *obs.Histogram  // wall-clock execution time (non-cached)
	requeued     *obs.Counter    // pending runs resumed after a restart
	httpReqs     *obs.CounterVec // {route}
	journalErrs  *obs.Counter    // WAL appends that failed (durability loss)

	// Degraded-mode observability: when a subsystem sheds work instead of
	// blocking the API (slow journal appends, failed blob disk writes),
	// the shed is counted and the mode gauge flips to 1 until it clears.
	degradedMode  *obs.GaugeVec   // {component} 1 while degraded
	degradedSheds *obs.CounterVec // {component} operations shed to a degraded path
	dupResults    *obs.Counter    // retransmitted results deduplicated by lease ID

	snapshots *obs.CounterVec // {reason} snapshot+journal-reset cycles
	gcBlobs   *obs.Counter    // blobs swept by retention GC
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		submissions: reg.Counter("dyflow_server_submissions_total",
			"Accepted campaign submissions.", "tenant"),
		cacheHits: reg.Counter("dyflow_server_cache_hits_total",
			"Submissions served from the deterministic result cache without re-simulating.", "tenant"),
		quotaRejects: reg.Counter("dyflow_server_quota_rejections_total",
			"Submissions rejected by the per-tenant in-flight quota.", "tenant"),
		queueRejects: reg.Counter("dyflow_server_queue_rejections_total",
			"Submissions rejected because the run queue was full.").With(),
		queueDepth: reg.Gauge("dyflow_server_queue_depth",
			"Queued runs per queue shard.", "shard"),
		active: reg.Gauge("dyflow_server_active_runs",
			"Worker slots currently executing a simulation.").With(),
		runsTotal: reg.Counter("dyflow_server_runs_total",
			"Runs reaching a terminal state.", "state"),
		runSeconds: reg.Histogram("dyflow_server_run_duration_seconds",
			"Wall-clock execution time of non-cached runs.", nil).With(),
		requeued: reg.Counter("dyflow_server_restore_requeued_total",
			"Pending runs requeued from the checkpoint store after a restart.").With(),
		httpReqs: reg.Counter("dyflow_server_http_requests_total",
			"API requests by route.", "route"),
		journalErrs: reg.Counter("dyflow_server_journal_errors_total",
			"Checkpoint-journal appends that failed; the affected transition is not durable.").With(),
		degradedMode: reg.Gauge("dyflow_server_degraded_mode",
			"1 while the component is operating degraded (shedding work instead of blocking).", "component"),
		degradedSheds: reg.Counter("dyflow_server_degraded_sheds_total",
			"Operations shed to a degraded path instead of blocking the API.", "component"),
		dupResults: reg.Counter("dyflow_server_fleet_duplicate_results_total",
			"Result uploads retransmitted after a lost acknowledgement, deduplicated by lease ID.").With(),
		snapshots: reg.Counter("dyflow_server_snapshot_total",
			"Snapshot+journal-reset cycles by trigger (restore, shutdown, journal_size).", "reason"),
		gcBlobs: reg.Counter("dyflow_runstore_gc_blobs_total",
			"Artifact blobs swept because no live history record references them.").With(),
	}
}
