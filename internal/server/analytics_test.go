package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

// TestAnalyticsAggregates drives a mixed campaign — two tenants, a cache
// hit, distinct seeds — and checks the cross-campaign view: counts,
// queue-wait and execution percentiles from the phase timestamps, cache
// hit rate, and per-tenant/per-scenario groups.
func TestAnalyticsAggregates(t *testing.T) {
	s, err := New(Config{Workers: 2, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		st, err := s.Submit(fmt.Sprintf("tenant-%d", i%2), quick(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := await(t, s, id); st.State != StateDone {
			t.Fatalf("run %s ended %s: %s", id, st.State, st.Error)
		}
	}
	// One duplicate: a cache hit that never queues or executes.
	dup, err := s.Submit("tenant-0", quick(0))
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached {
		t.Fatalf("duplicate not cached: %+v", dup)
	}

	// The phase timestamps behind the aggregates (the status satellite).
	st, err := s.RunStatus(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.QueuedAt == nil || st.ClaimedAt == nil || st.StartedAt == nil || st.FinishedAt == nil {
		t.Fatalf("done run missing phase timestamps: %+v", st)
	}
	if st.ClaimedAt.Before(*st.QueuedAt) || st.FinishedAt.Before(*st.StartedAt) {
		t.Fatalf("phase timestamps out of order: %+v", st)
	}
	if dupSt, err := s.RunStatus(dup.ID); err != nil || dupSt.QueuedAt != nil || dupSt.ClaimedAt != nil {
		t.Fatalf("cached run carries queue/claim timestamps: %+v (%v)", dupSt, err)
	}

	a := s.Analytics()
	if a.Runs != 5 || a.ByState[StateDone] != 5 {
		t.Fatalf("analytics counts %+v", a)
	}
	if a.CacheHits != 1 || a.CacheHitRate != 0.2 {
		t.Fatalf("cache hits %d rate %v", a.CacheHits, a.CacheHitRate)
	}
	// Four runs queued and executed; the cached one contributes to neither
	// latency distribution.
	if a.QueueWait.Count != 4 || a.Execution.Count != 4 {
		t.Fatalf("latency sample counts: queue %d exec %d", a.QueueWait.Count, a.Execution.Count)
	}
	if a.Execution.P50 <= 0 || a.Execution.Max < a.Execution.P50 {
		t.Fatalf("execution percentiles %+v", a.Execution)
	}
	if a.QueueWait.P50 < 0 || a.QueueWait.Max < a.QueueWait.P50 {
		t.Fatalf("queue-wait percentiles %+v", a.QueueWait)
	}
	if len(a.Tenants) != 2 || a.Tenants[0].Name != "tenant-0" || a.Tenants[1].Name != "tenant-1" {
		t.Fatalf("tenant groups %+v", a.Tenants)
	}
	if a.Tenants[0].Runs != 3 || a.Tenants[0].CacheHits != 1 || a.Tenants[1].Runs != 2 {
		t.Fatalf("tenant group counts %+v", a.Tenants)
	}
	if len(a.Scenarios) != 1 || a.Scenarios[0].Name != quick(0).Scenario || a.Scenarios[0].Runs != 5 {
		t.Fatalf("scenario groups %+v", a.Scenarios)
	}

	// The same view over HTTP.
	resp, err := http.Get("http://" + addr + "/v1/analytics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/analytics: %s (%v)", resp.Status, err)
	}
	var over Analytics
	if err := json.Unmarshal(data, &over); err != nil {
		t.Fatal(err)
	}
	if over.Runs != a.Runs || over.Execution.Count != a.Execution.Count {
		t.Fatalf("HTTP analytics %+v != computed %+v", over, a)
	}
}

// TestAnalyticsCountsRequeues checks the requeue-rate counters surface:
// a restore-requeued run shows up in RestoreRequeues.
func TestAnalyticsCountsRequeues(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Workers: -1, CkptDir: dir, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit("alice", quick(21))
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2, err := New(Config{Workers: 2, CkptDir: dir, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	await(t, s2, st.ID)
	if a := s2.Analytics(); a.RestoreRequeues != 1 {
		t.Fatalf("RestoreRequeues = %d, want 1", a.RestoreRequeues)
	}
}
