package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dyflow/internal/server/events"
	"dyflow/internal/trace"
)

// GET /v1/runs/{id}/events — the live observation half of the steering
// loop: one run's lifecycle as a Server-Sent Events stream
// (queued → claimed → running → progress/span → done|failed|canceled,
// with lease expiries, requeues, and cache hits in between).
//
// Each frame carries `id: <epoch>.<seq>` — seq is the run's monotonic
// event ID, epoch identifies the coordinator process. A reconnecting
// client sends the last ID back in the standard `Last-Event-ID` header
// (or `?after=`): same epoch resumes after seq; a different epoch (the
// coordinator restarted, seqs restarted with it) replays every retained
// event, so the terminal event is delivered at-least-once rather than
// lost. The stream ends after a terminal event; a slow consumer that
// falls out of the bounded ring gets a comment frame noting the gap
// (counted in dyflow_server_event_drops_total) — the run is never
// slowed down.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, &APIError{Code: http.StatusInternalServerError, Msg: "streaming unsupported"})
		return
	}
	id := r.PathValue("id")
	cursor := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("after"); q != "" {
		cursor = q
	}
	after := s.parseEventCursor(cursor)

	s.ensureTerminalEvent(id)
	sub := s.events.Subscribe(id, after)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	epoch := s.events.Epoch()
	for {
		// Read the run's state BEFORE polling: if the terminal event was
		// already published, the poll below is guaranteed to include it
		// (finishLocked publishes under the same mutex this read takes),
		// so observing `terminal && nothing new` means everything was
		// delivered and the stream can end.
		terminal := s.runTerminal(id)
		evs, missed := sub.Poll()
		if missed > 0 {
			fmt.Fprintf(w, ": %d earlier events dropped (ring overrun)\n\n", missed)
		}
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				s.logf("server: encode event %s/%d: %v", id, ev.ID, err)
				continue
			}
			fmt.Fprintf(w, "id: %d.%d\nevent: %s\ndata: %s\n\n", epoch, ev.ID, ev.Type, data)
			if ev.Type.Terminal() {
				fl.Flush()
				return
			}
		}
		fl.Flush()
		if terminal && len(evs) == 0 {
			return // fully delivered in an earlier iteration (or resumed past it)
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.stopped:
			return
		case <-sub.Notify():
		}
	}
}

// parseEventCursor turns a Last-Event-ID (or ?after=) value into a
// resume sequence. "<epoch>.<seq>" from a previous coordinator process
// (epoch mismatch) maps to 0 — replay everything retained. A bare
// integer is treated as a current-epoch sequence (the curl-friendly
// form). Garbage maps to 0.
func (s *Server) parseEventCursor(v string) uint64 {
	if v == "" {
		return 0
	}
	if dot := strings.IndexByte(v, '.'); dot >= 0 {
		epoch, err := strconv.ParseInt(v[:dot], 10, 64)
		if err != nil || epoch != s.events.Epoch() {
			return 0
		}
		v = v[dot+1:]
	}
	seq, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return seq
}

// runTerminal reports whether a run exists and is in a terminal state —
// resident, or already evicted to the history store.
func (s *Server) runTerminal(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.runs[id]; r != nil {
		return r.State.Terminal()
	}
	m, ok := s.history.GetMeta(id)
	return ok && m.Terminal
}

// ensureTerminalEvent backfills the terminal event for a run that
// finished before this coordinator process started (restored straight
// into the history store, so no ring exists). A subscriber arriving
// across the restart still receives the terminal frame — synthesized
// from the history record with Reason "restore" — instead of waiting
// forever. Runs with a live ring (resident, or evicted this process
// with the ring retained) are untouched.
func (s *Server) ensureTerminalEvent(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runs[id] != nil || s.events.Len(id) > 0 {
		return
	}
	m, ok := s.history.GetMeta(id)
	if !ok || !m.Terminal {
		return
	}
	ev := events.Event{
		Type:      terminalEventType(RunState(m.State)),
		Reason:    "restore",
		At:        time.Unix(0, m.FinishedAtNs),
		Cached:    m.Cached,
		Converged: m.Converged,
	}
	if m.State == string(StateDone) {
		ev.SimSeconds = time.Duration(m.SimEndNs).Seconds()
	} else if p, ok := s.historyPersistedLocked(id); ok {
		ev.Error = p.Err
	}
	s.events.Append(id, ev)
	s.retainRingLocked(id)
}

// appendWorkerSpans publishes flight-recorder spans a fleet worker
// forwarded (in a heartbeat or result upload) into the run's stream.
func (s *Server) appendWorkerSpans(runID, workerID string, spans []trace.Span) {
	for i := range spans {
		sp := spans[i]
		s.events.Append(runID, events.Event{Type: events.TypeSpan, Worker: workerID, Span: &sp})
	}
}
