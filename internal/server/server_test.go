package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dyflow/internal/exp"
)

// quick is the cheap deterministic job the tests submit.
func quick(seed int64) exp.Job {
	return exp.Job{Scenario: exp.ScenarioQuickstart, Machine: "dt2", Seed: seed}
}

// await polls a run to a terminal state.
func await(t *testing.T, s *Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.RunStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %s", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// metricsText renders the server registry's Prometheus exposition.
func metricsText(t *testing.T, s *Server) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSubmitExecuteArtifacts(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st, err := s.Submit("alice", quick(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.Tenant != "alice" {
		t.Fatalf("submitted status %+v", st)
	}
	st = await(t, s, st.ID)
	if st.State != StateDone || !st.Converged || st.Cached {
		t.Fatalf("final status %+v", st)
	}
	if st.SimSeconds <= 0 {
		t.Fatalf("done run reports no sim progress: %+v", st)
	}
	for _, name := range []string{exp.ArtifactReport, exp.ArtifactGantt, exp.ArtifactPerfetto, exp.ArtifactMetrics} {
		blob, err := s.Artifact(st.ID, name)
		if err != nil || len(blob) == 0 {
			t.Fatalf("artifact %s: %v (%d bytes)", name, err, len(blob))
		}
	}
	if _, err := s.Artifact(st.ID, "nope"); err == nil {
		t.Fatal("unknown artifact served")
	}
}

// TestCacheDeterminismRegression is the satellite regression test: the
// same job twice yields byte-identical artifacts, with the second
// submission answered from the cache (no re-simulation) and the hit
// recorded in dyflow_server_cache_hits_total.
func TestCacheDeterminismRegression(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := s.Submit("alice", quick(5))
	if err != nil {
		t.Fatal(err)
	}
	first = await(t, s, first.ID)
	if first.State != StateDone || first.Cached {
		t.Fatalf("first run %+v", first)
	}

	second, err := s.Submit("bob", quick(5))
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.Cached {
		t.Fatalf("identical resubmission not served from cache: %+v", second)
	}
	for _, name := range []string{exp.ArtifactReport, exp.ArtifactGantt, exp.ArtifactPerfetto, exp.ArtifactMetrics} {
		a, err := s.Artifact(first.ID, name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Artifact(second.ID, name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("artifact %s differs between original and cached run", name)
		}
	}
	text := metricsText(t, s)
	if !strings.Contains(text, `dyflow_server_cache_hits_total{tenant="bob"} 1`) {
		t.Fatalf("cache hit not recorded in metrics:\n%s", text)
	}

	// A different seed is a different key: no false sharing.
	third, err := s.Submit("bob", quick(6))
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("different job served from cache")
	}
	await(t, s, third.ID)
}

func TestTenantQuota(t *testing.T) {
	s, err := New(Config{Workers: -1, TenantQuota: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 2; i++ {
		if _, err := s.Submit("alice", quick(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	_, err = s.Submit("alice", quick(99))
	var api *APIError
	if !errors.As(err, &api) || api.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit returned %v", err)
	}
	// The quota is per tenant: another tenant is unaffected.
	if _, err := s.Submit("bob", quick(99)); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if !strings.Contains(metricsText(t, s), `dyflow_server_quota_rejections_total{tenant="alice"} 1`) {
		t.Fatal("quota rejection not recorded in metrics")
	}
}

func TestQueueBackpressure(t *testing.T) {
	s, err := New(Config{Workers: -1, TenantQuota: -1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 2; i++ {
		if _, err := s.Submit(fmt.Sprintf("t%d", i), quick(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	_, err = s.Submit("t9", quick(9))
	var api *APIError
	if !errors.As(err, &api) || api.Code != http.StatusTooManyRequests || api.RetryAfter <= 0 {
		t.Fatalf("queue-full submit returned %v", err)
	}
	if s.QueueDepth() != 2 {
		t.Fatalf("queue depth %d after rejection", s.QueueDepth())
	}
	if !strings.Contains(metricsText(t, s), "dyflow_server_queue_rejections_total 1") {
		t.Fatal("queue rejection not recorded in metrics")
	}
}

func TestCancelQueued(t *testing.T) {
	s, err := New(Config{Workers: -1, TenantQuota: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st, err := s.Submit("alice", quick(1))
	if err != nil {
		t.Fatal(err)
	}
	st, err = s.Cancel(st.ID)
	if err != nil || st.State != StateCanceled {
		t.Fatalf("cancel: %v %+v", err, st)
	}
	// The quota slot is released.
	if _, err := s.Submit("alice", quick(2)); err != nil {
		t.Fatalf("quota slot not released by cancel: %v", err)
	}
	// Canceling a terminal run is a no-op.
	if again, err := s.Cancel(st.ID); err != nil || again.State != StateCanceled {
		t.Fatalf("re-cancel: %v %+v", err, again)
	}
}

func TestCancelRunning(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	started := make(chan *Run, 1)
	s.beforeRun = func(r *Run) { started <- r }

	st, err := s.Submit("alice", quick(1))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("run never started")
	}
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	st = await(t, s, st.ID)
	if st.State != StateCanceled {
		t.Fatalf("running run canceled to %s (err %q)", st.State, st.Error)
	}
}

// TestKillRestartResumesQueue is the crash acceptance test: hard-kill a
// server with acknowledged-but-unfinished submissions and verify the next
// process resumes every one of them from the journal alone (Close takes no
// snapshot).
func TestKillRestartResumesQueue(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{Workers: -1, CkptDir: dir, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 6; i++ {
		st, err := s1.Submit(fmt.Sprintf("tenant-%d", i%3), quick(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	s1.Close() // kill: no snapshot, journal only

	s2, err := New(Config{Workers: 2, CkptDir: dir, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Runs()); got != 6 {
		t.Fatalf("restored %d of 6 runs", got)
	}
	for _, id := range ids {
		st := await(t, s2, id)
		if st.State != StateDone {
			t.Fatalf("restored run %s ended %s: %s", id, st.State, st.Error)
		}
	}
	if !strings.Contains(metricsText(t, s2), "dyflow_server_restore_requeued_total 6") {
		t.Fatal("requeued count not recorded in metrics")
	}
}

// TestKillRestartMidExecution kills a server while workers are mid-
// simulation: completed runs restore done (with artifacts), interrupted
// and queued runs re-execute, and nothing is lost.
func TestKillRestartMidExecution(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{Workers: 2, CkptDir: dir, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 8; i++ {
		st, err := s1.Submit(fmt.Sprintf("tenant-%d", i%4), quick(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// Let some runs finish and some be caught mid-flight, then kill.
	time.Sleep(20 * time.Millisecond)
	s1.Close()

	s2, err := New(Config{Workers: 2, CkptDir: dir, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Runs()); got != 8 {
		t.Fatalf("restored %d of 8 runs", got)
	}
	for _, id := range ids {
		st := await(t, s2, id)
		if st.State != StateDone {
			t.Fatalf("run %s ended %s after restart: %s", id, st.State, st.Error)
		}
		if blob, err := s2.Artifact(id, exp.ArtifactReport); err != nil || len(blob) == 0 {
			t.Fatalf("run %s report after restart: %v (%d bytes)", id, err, len(blob))
		}
	}
}

// TestGracefulShutdownSnapshots verifies Shutdown checkpoints queued work
// and a successor picks it up from the snapshot.
func TestGracefulShutdownSnapshots(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{Workers: -1, CkptDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit("alice", quick(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Workers: 1, CkptDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := await(t, s2, st.ID); got.State != StateDone {
		t.Fatalf("queued run %s after graceful restart: %s", st.ID, got.State)
	}
}

// TestHTTPAPI exercises the full HTTP surface on an ephemeral port.
func TestHTTPAPI(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("Start returned unbound address %s", addr)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	base := "http://" + addr

	body, _ := json.Marshal(SubmitRequest{Tenant: "alice", Job: quick(2)})
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}

	get := func(path string, wantCode int) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: %s: %s", path, resp.Status, data)
		}
		return data
	}

	deadline := time.Now().Add(30 * time.Second)
	for st.State != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("run stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
		if err := json.Unmarshal(get("/v1/runs/"+st.ID, http.StatusOK), &st); err != nil {
			t.Fatal(err)
		}
	}

	report := get("/v1/runs/"+st.ID+"/artifacts/report", http.StatusOK)
	var rep exp.Report
	if err := json.Unmarshal(report, &rep); err != nil {
		t.Fatalf("report artifact: %v", err)
	}
	var list struct {
		Runs []Status `json:"runs"`
	}
	if err := json.Unmarshal(get("/v1/runs", http.StatusOK), &list); err != nil || len(list.Runs) != 1 {
		t.Fatalf("list: %v (%d runs)", err, len(list.Runs))
	}
	get("/v1/runs/nope", http.StatusNotFound)
	get("/healthz", http.StatusOK)
	if text := string(get("/metrics", http.StatusOK)); !strings.Contains(text, `dyflow_server_submissions_total{tenant="alice"} 1`) {
		t.Fatalf("/metrics missing submission count:\n%s", text)
	}

	// Submitting garbage is a 400, not a queued run.
	resp, err = http.Post(base+"/v1/runs", "application/json", strings.NewReader(`{"scenario":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scenario: %s", resp.Status)
	}
}

// TestSingleLockedServe covers the single-campaign mode dyflow-exp serve
// runs on: locked handlers, ephemeral bind, graceful shutdown.
func TestSingleLockedServe(t *testing.T) {
	s := NewSingle()
	hits := 0
	s.HandleLocked("/ping", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++ // safe: Locked and HandleLocked share the mutex
		fmt.Fprint(w, "pong")
	}))
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("unbound address %s", addr)
	}
	resp, err := http.Get("http://" + addr + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("ping returned %q", body)
	}
	if err := s.Locked(func() error {
		if hits != 1 {
			t.Errorf("hits = %d", hits)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
