package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dyflow/internal/server/events"
	"dyflow/internal/server/fleet"
)

// httpGet fetches a coordinator endpoint's body.
func httpGet(t *testing.T, addr, path string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s (%v)", path, resp.Status, err)
	}
	return data
}

// TestFleetMetricsAggregation runs a campaign over two fleet workers and
// checks the aggregation plane: each worker's pushed snapshot lands in
// GET /v1/fleet/metrics, /metrics folds them in under worker labels, and
// GET /v1/fleet carries per-worker liveness and outcome detail.
func TestFleetMetricsAggregation(t *testing.T) {
	s, addr := startFleetCoordinator(t, 2*time.Second)

	var workers []*fleet.Worker
	for i := 0; i < 2; i++ {
		w, err := fleet.JoinFleet(fleet.WorkerOptions{
			Coordinator:  addr,
			Name:         fmt.Sprintf("obs-%d", i),
			ClaimWait:    50 * time.Millisecond,
			MetricsEvery: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
		workers = append(workers, w)
	}

	for i := 0; i < 4; i++ {
		st, err := s.Submit(fmt.Sprintf("t%d", i), quick(int64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		if got := await(t, s, st.ID); got.State != StateDone {
			t.Fatalf("run %s ended %s: %s", st.ID, got.State, got.Error)
		}
	}

	// Both workers push on a 10ms cadence; wait for both snapshots to
	// arrive and surface in the merged Prometheus exposition.
	ids := []string{workers[0].ID(), workers[1].ID()}
	deadline := time.Now().Add(10 * time.Second)
	var text string
	for {
		text = string(httpGet(t, addr, "/metrics"))
		if strings.Contains(text, fmt.Sprintf(`dyflow_worker_claims_total{worker=%q}`, ids[0])) &&
			strings.Contains(text, fmt.Sprintf(`dyflow_worker_claims_total{worker=%q}`, ids[1])) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker-labeled families never appeared in /metrics:\n%s", text)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Coordinator families share the same scrape.
	if !strings.Contains(text, "dyflow_server_fleet_claims_total") ||
		!strings.Contains(text, "dyflow_server_events_total") {
		t.Fatal("merged /metrics is missing coordinator families")
	}

	// The final outcome increment rides the next 10ms push; poll the view
	// until both workers' run totals have landed.
	var mv fleet.MetricsView
	for {
		if err := json.Unmarshal(httpGet(t, addr, "/v1/fleet/metrics"), &mv); err != nil {
			t.Fatal(err)
		}
		var totalRuns float64
		for _, snap := range mv.Workers {
			for _, m := range snap.Metrics {
				if m.Name == "dyflow_worker_runs_total" {
					for _, series := range m.Series {
						totalRuns += series.Value
					}
				}
			}
		}
		if len(mv.Workers) == 2 && totalRuns == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet metrics view never converged: %d workers, %v finished runs (want 2, 4)", len(mv.Workers), totalRuns)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(mv.Merged.Metrics) == 0 {
		t.Fatal("merged snapshot empty")
	}

	var view fleet.View
	if err := json.Unmarshal(httpGet(t, addr, "/v1/fleet"), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Workers) != 2 || view.Workers[0].ID > view.Workers[1].ID {
		t.Fatalf("fleet view workers not sorted: %+v", view.Workers)
	}
	var claims, completed int64
	for _, w := range view.Workers {
		if w.LastSeenAgeMs < 0 || w.LastSeenAgeMs > 10_000 {
			t.Fatalf("worker %s heartbeat age %dms", w.ID, w.LastSeenAgeMs)
		}
		claims += w.Claims
		completed += w.Completed
	}
	if claims < 4 || completed != 4 {
		t.Fatalf("fleet view outcome counters: claims %d completed %d", claims, completed)
	}
}

// TestFleetRunStreamCarriesWorkerEvents tails a fleet-executed run and
// checks the claimed/running/terminal events carry the worker's ID.
func TestFleetRunStreamCarriesWorkerEvents(t *testing.T) {
	s, addr := startFleetCoordinator(t, 2*time.Second)
	w, err := fleet.JoinFleet(fleet.WorkerOptions{Coordinator: addr, Name: "w", ClaimWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	st, err := s.Submit("alice", quick(31))
	if err != nil {
		t.Fatal(err)
	}
	frames := tailSSE(t, addr, st.ID, "")
	if len(frames) == 0 {
		t.Fatal("no frames from fleet-run stream")
	}
	byType := map[string]events.Event{}
	for _, f := range frames {
		byType[f.typ] = f.ev
	}
	for _, typ := range []string{"claimed", "running", "done"} {
		ev, ok := byType[typ]
		if !ok {
			t.Fatalf("no %s event in %d frames", typ, len(frames))
		}
		if ev.Worker != w.ID() {
			t.Fatalf("%s event attributed to %q, want %q", typ, ev.Worker, w.ID())
		}
	}
	if byType["done"].SimSeconds <= 0 {
		t.Fatalf("done event reports no sim progress: %+v", byType["done"])
	}
}
