package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"dyflow/internal/server/events"
	"dyflow/internal/trace"
)

// sseFrame is one decoded Server-Sent Events frame.
type sseFrame struct {
	id  string
	typ string
	ev  events.Event
}

// tailSSE reads a run's event stream until the terminal event arrives
// (the server closes the stream right after it) and returns every frame.
func tailSSE(t *testing.T, addr, runID, lastEventID string) []sseFrame {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/v1/runs/"+runID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	// No client timeout: the tail legitimately spans the run's lifetime.
	// The watchdog tears the body down if the terminal event never comes.
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s: %s", runID, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream %s content type %q", runID, ct)
	}
	watchdog := time.AfterFunc(30*time.Second, func() { resp.Body.Close() })
	defer watchdog.Stop()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var frames []sseFrame
	var cur sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // frame boundary
			if cur.typ == "" {
				continue // comment-only frame
			}
			frames = append(frames, cur)
			if events.Type(cur.typ).Terminal() {
				return frames
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.ev); err != nil {
				t.Fatalf("stream %s: bad event payload: %v", runID, err)
			}
		}
	}
	// The server ends a stream only once everything up to the terminal
	// event was delivered — a clean close with no terminal frame means
	// the cursor had already consumed it (resume past the end).
	return frames
}

// TestStreamLifecycleOrdered tails a locally executed run over SSE and
// checks the lifecycle arrives in order with monotonic event IDs.
func TestStreamLifecycleOrdered(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st, err := s.Submit("alice", quick(1))
	if err != nil {
		t.Fatal(err)
	}
	frames := tailSSE(t, addr, st.ID, "")
	if len(frames) == 0 {
		t.Fatal("stream delivered no frames")
	}

	order := map[string]int{}
	var lastID uint64
	for i, f := range frames {
		if f.ev.ID <= lastID {
			t.Fatalf("frame %d: event ID %d not monotonic (prev %d)", i, f.ev.ID, lastID)
		}
		lastID = f.ev.ID
		if _, seen := order[f.typ]; !seen {
			order[f.typ] = i
		}
		if f.ev.Run != st.ID {
			t.Fatalf("frame %d labeled run %q, want %q", i, f.ev.Run, st.ID)
		}
	}
	for _, seq := range [][2]string{{"queued", "claimed"}, {"claimed", "running"}, {"running", "done"}} {
		a, aok := order[seq[0]]
		b, bok := order[seq[1]]
		if !aok || !bok || a >= b {
			t.Fatalf("lifecycle out of order: want %s before %s in %v", seq[0], seq[1], order)
		}
	}
	last := frames[len(frames)-1]
	if last.typ != string(events.TypeDone) || last.ev.SimSeconds <= 0 || last.ev.Worker != "local" {
		t.Fatalf("terminal frame %+v", last.ev)
	}
	if !strings.HasPrefix(last.id, fmt.Sprintf("%d.", s.events.Epoch())) {
		t.Fatalf("frame id %q not qualified with epoch %d", last.id, s.events.Epoch())
	}
}

// TestStreamSubscribeBeforeRunExists opens the stream before the run is
// submitted: the lazily created journal must deliver the first event.
func TestStreamSubscribeBeforeRunExists(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The first submission gets run-000000; subscribe to it first.
	const futureID = "run-000000"
	got := make(chan []sseFrame, 1)
	go func() { got <- tailSSE(t, addr, futureID, "") }()
	time.Sleep(20 * time.Millisecond) // let the subscription attach

	st, err := s.Submit("alice", quick(7))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != futureID {
		t.Fatalf("first run got ID %s, want %s", st.ID, futureID)
	}
	select {
	case frames := <-got:
		if len(frames) == 0 {
			t.Fatal("early subscriber's stream closed without frames")
		}
		if frames[0].typ != string(events.TypeQueued) {
			t.Fatalf("first event %s, want queued", frames[0].typ)
		}
		if last := frames[len(frames)-1]; last.typ != string(events.TypeDone) {
			t.Fatalf("terminal event %s, want done", last.typ)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("early subscriber never saw the run's events")
	}
}

// TestStreamResumeAcrossRestart kills the coordinator between a client's
// first tail and its reconnect. The stale Last-Event-ID carries the old
// journal epoch, so the new process must answer with a full replay that
// still ends in the terminal event.
func TestStreamResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{Workers: -1, CkptDir: dir, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit("alice", quick(11))
	if err != nil {
		t.Fatal(err)
	}
	// No local pool: the run stays queued, so the only event is queued.
	sub := s1.events.Subscribe(st.ID, 0)
	evs, _ := sub.Poll()
	sub.Close()
	if len(evs) != 1 || evs[0].Type != events.TypeQueued {
		t.Fatalf("pre-kill journal: %+v", evs)
	}
	staleCursor := fmt.Sprintf("%d.%d", s1.events.Epoch(), evs[0].ID)
	s1.Close() // kill

	s2, err := New(Config{Workers: 2, CkptDir: dir, TenantQuota: -1})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.events.Epoch() == s1.events.Epoch() {
		t.Fatal("restarted journal kept the old epoch")
	}

	// Resuming with the dead process's cursor must replay everything the
	// new journal retains, terminal event included — even if the run
	// already finished by the time the client reconnects.
	await(t, s2, st.ID)
	frames := tailSSE(t, addr, st.ID, staleCursor)
	if len(frames) == 0 {
		t.Fatal("stale cursor got no replay")
	}
	if frames[0].typ != string(events.TypeQueued) || frames[0].ev.Reason != "restore" {
		t.Fatalf("replay starts with %+v, want queued(restore)", frames[0].ev)
	}
	last := frames[len(frames)-1]
	if last.typ != string(events.TypeDone) || last.ev.SimSeconds <= 0 {
		t.Fatalf("replay terminal frame %+v", last.ev)
	}

	// A current-epoch cursor past the terminal event resumes to an
	// immediate clean close with nothing replayed.
	again := tailSSE(t, addr, st.ID, last.id)
	if len(again) != 0 {
		t.Fatalf("resume past terminal replayed %d frames", len(again))
	}
}

// TestStreamSlowConsumerDrops floods a tiny ring past a subscriber that
// never polls: the run must finish unimpeded, the overwritten prefix is
// counted in dyflow_server_event_drops_total, and the survivors keep
// monotonic IDs.
func TestStreamSlowConsumerDrops(t *testing.T) {
	s, err := New(Config{Workers: 2, EventBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st, err := s.Submit("alice", quick(13))
	if err != nil {
		t.Fatal(err)
	}
	sub := s.events.Subscribe(st.ID, 0)
	defer sub.Close()

	if got := await(t, s, st.ID); got.State != StateDone {
		t.Fatalf("run ended %s with a stalled subscriber attached", got.State)
	}
	// The subscriber never polled; overflow the 4-slot ring on top of the
	// lifecycle events through the worker-span ingestion path.
	spans := make([]trace.Span, 8)
	for i := range spans {
		spans[i] = trace.Span{ID: fmt.Sprintf("sugg-%d", i)}
	}
	s.appendWorkerSpans(st.ID, "w-test", spans)

	evs, missed := sub.Poll()
	if missed == 0 {
		t.Fatal("slow consumer reported no missed events after ring overrun")
	}
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want ring capacity 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].ID != evs[i-1].ID+1 {
			t.Fatalf("retained suffix not contiguous: %+v", evs)
		}
	}
	if v, _ := s.Registry().Value("dyflow_server_event_drops_total"); v < float64(missed) {
		t.Fatalf("dyflow_server_event_drops_total = %v, want >= %d", v, missed)
	}
}

// TestStreamCachedRunReplay tails a cache-hit run: the stream is pure
// replay (cache_hit then done) and closes immediately.
func TestStreamCachedRunReplay(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := s.Submit("alice", quick(17))
	if err != nil {
		t.Fatal(err)
	}
	await(t, s, first.ID)
	dup, err := s.Submit("bob", quick(17))
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached {
		t.Fatalf("duplicate not served from cache: %+v", dup)
	}

	frames := tailSSE(t, addr, dup.ID, "")
	var types []string
	for _, f := range frames {
		types = append(types, f.typ)
	}
	if len(frames) != 2 || types[0] != string(events.TypeCacheHit) || types[1] != string(events.TypeDone) {
		t.Fatalf("cached run stream %v, want [cache_hit done]", types)
	}
	if !frames[1].ev.Cached {
		t.Fatalf("terminal event of cached run not marked cached: %+v", frames[1].ev)
	}
	if frames[0].ev.Reason != first.ID {
		t.Fatalf("cache_hit reason %q, want source run %s", frames[0].ev.Reason, first.ID)
	}
}
