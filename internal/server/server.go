// Package server is the multi-tenant campaign service: it accepts workflow
// submissions (scenario + optional XML orchestration document + seed +
// machine) over HTTP, admits them through per-tenant quotas and a bounded
// sharded queue, executes each on a worker pool — one deterministic DES
// world per worker slot — and serves the finished artifacts. Because runs
// are byte-deterministic in the job value, results are cached by job key
// and re-submissions are answered without re-simulating; because every
// acknowledged transition is journaled through internal/ckpt, a killed
// server restarts with no acknowledged submission lost. docs/SERVICE.md is
// the narrative description.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dyflow/internal/exp"
	"dyflow/internal/obs"
	"dyflow/internal/runstore"
	"dyflow/internal/server/events"
	"dyflow/internal/server/fleet"
	"dyflow/internal/sim"
	"dyflow/internal/trace"
)

// progressEventEvery throttles TypeProgress events per run: the
// progress hook fires every simulated second (microseconds of wall
// time), far too fast to journal each tick.
const progressEventEvery = 10 * time.Millisecond

// The sentinel errors a worker's progress hook aborts a run with.
var (
	errRunCanceled  = errors.New("server: run canceled")
	errShuttingDown = errors.New("server: shutting down")
)

// Config sizes the service.
type Config struct {
	// Workers is the worker-pool size (one concurrent simulation each).
	// 0 means GOMAXPROCS; negative means no workers at all — submissions
	// queue but never execute (tests use this to observe queue states
	// deterministically).
	Workers int
	// QueueDepth bounds the total queued-run count across all shards;
	// submissions beyond it get 429 backpressure. 0 means 64.
	QueueDepth int
	// TenantQuota caps one tenant's in-flight (queued + running) runs;
	// submissions beyond it get 429. 0 means 8; negative means unlimited.
	TenantQuota int
	// CkptDir, when set, persists the queue and completed-run index
	// through a ckpt.Store there (artifact blobs under CkptDir/blobs),
	// surviving kill -9.
	CkptDir string
	// LeaseTTL is how long a fleet worker's claim on a run stays valid
	// without a heartbeat before the coordinator requeues the run.
	// 0 means 10s.
	LeaseTTL time.Duration
	// EventBuffer bounds each run's event journal ring (the SSE stream's
	// replay window). 0 means events.DefaultBuffer (256). A slow stream
	// consumer misses overwritten events — counted, never blocking the
	// run.
	EventBuffer int
	// JournalBudget bounds how long an API path waits for a WAL append
	// before shedding it to the background writer (degraded mode: the
	// transition is acknowledged while its append completes late, counted
	// in dyflow_server_degraded_sheds_total{component="journal"}). Append
	// *failures* inside the budget keep their synchronous semantics —
	// a submission whose journal write fails is still refused. 0 means
	// 250ms.
	JournalBudget time.Duration
	// Logger receives operational messages — journal failures, HTTP serve
	// errors. Nil means a stderr logger.
	Logger *log.Logger
	// Metrics receives the dyflow_server_* families. Nil means a private
	// registry (reachable via Registry()).
	Metrics *obs.Registry
	// RunstoreSegmentBytes is the run-history store's segment rotation
	// threshold (0 = runstore.DefaultSegmentBytes).
	RunstoreSegmentBytes int64
	// SnapshotJournalBytes triggers a snapshot+journal-reset once the WAL
	// passes this size, bounding journal growth between graceful
	// shutdowns (0 = 4 MiB; negative = size-triggered snapshots off).
	SnapshotJournalBytes int64
	// RetentionMaxAge deletes terminal runs from the history store once
	// their FinishedAt is older than this (0 = keep forever).
	RetentionMaxAge time.Duration
	// RetentionMaxBytes bounds one tenant's total artifact bytes in the
	// history store; oldest-finished terminal runs are deleted until the
	// tenant fits (0 = unlimited).
	RetentionMaxBytes int64
	// RetentionInterval is the background retention sweep cadence when a
	// policy is set (0 = 1 minute).
	RetentionInterval time.Duration
}

// Server is the campaign service's coordinator: admission, quotas, the
// deterministic result cache, the ckpt WAL, the content-addressed blob
// store, and the fleet lease manager. Runs execute either on the local
// worker pool (cfg.Workers) or on remote fleet workers claiming over the
// worker API — both drain the same sharded queue.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	met    *metrics
	queue  *shardedQueue
	store  journalStore // nil when persistence is off
	blobs  *fleet.BlobStore
	fleet  *fleet.Manager
	events *events.Journal
	logger *log.Logger

	// history is the durable, indexed run store (internal/runstore):
	// every state transition is appended, terminal runs are evicted from
	// the resident map once recorded, and list/filter queries serve from
	// its indexes. Memory-only when persistence is off (same API). Lock
	// order: s.mu may be held while calling into history, never the
	// reverse (EachMeta callbacks must not touch s.mu).
	history *runstore.Store

	// stopped closes when shutdown begins, waking SSE streams so they
	// end instead of pinning http.Server.Shutdown to its deadline.
	stopped chan struct{}

	mu       sync.Mutex
	runs     map[string]*Run // resident runs: non-terminal + terminal not yet in history
	order    []string        // resident run IDs in submission order
	nextID   int
	cache    map[string]cacheEntry // job key → first completed run's result
	inflight map[string]int        // tenant → queued+running runs
	stopping bool
	// recentDone remembers evicted runs' terminal lease IDs (run ID →
	// lease ID, FIFO-bounded) so a fleet worker retransmitting a result
	// after its run left the resident map still deduplicates.
	recentDone  map[string]string
	recentDoneQ []string
	// doneRings tracks which evicted terminal runs still hold their SSE
	// event rings (FIFO-bounded; older rings drop and reconnecting
	// clients get a synthesized terminal event from history instead).
	doneRings []string

	workers sync.WaitGroup
	retWg   sync.WaitGroup // background retention sweeper
	httpSrv *http.Server
	ln      net.Listener

	// The budgeted journal writer (persist.go): appends run on jq's
	// single writer goroutine; callers wait up to cfg.JournalBudget
	// before shedding to degraded mode.
	jq      chan jreq
	jwg     sync.WaitGroup
	jonce   sync.Once
	jmu     sync.RWMutex // guards jclosed vs enqueues racing a hard Close
	jclosed bool
	jsheds  atomic.Int64 // shed appends still in flight

	// beforeRun, when set (tests), runs just before a claimed run starts
	// executing — it can block to hold the run in the running state.
	beforeRun func(*Run)
}

// New builds the service, restores any persisted state from cfg.CkptDir,
// and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.TenantQuota == 0 {
		cfg.TenantQuota = 8
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	shards := cfg.Workers
	if shards < 1 {
		shards = 1
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(os.Stderr, "dyflow-serve: ", log.LstdFlags)
	}
	met := newMetrics(reg)
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		met:        met,
		logger:     logger,
		queue:      newShardedQueue(shards, cfg.QueueDepth, met.queueDepth),
		events:     events.NewJournal(cfg.EventBuffer, reg),
		stopped:    make(chan struct{}),
		runs:       map[string]*Run{},
		cache:      map[string]cacheEntry{},
		inflight:   map[string]int{},
		recentDone: map[string]string{},
	}
	blobDir := ""
	if cfg.CkptDir != "" {
		blobDir = filepath.Join(cfg.CkptDir, "blobs")
	}
	blobs, err := fleet.NewBlobStore(blobDir, reg)
	if err != nil {
		return nil, fmt.Errorf("server: blob store: %w", err)
	}
	s.blobs = blobs
	s.fleet = fleet.NewManager(reg, cfg.LeaseTTL, s.onLeaseExpire)
	if cfg.CkptDir != "" {
		if err := s.restore(cfg.CkptDir); err != nil {
			s.fleet.Close()
			return nil, fmt.Errorf("server: restore: %w", err)
		}
	} else {
		// No persistence: the history store runs memory-only so eviction,
		// filtered listing, and analytics behave identically.
		s.history, err = runstore.Open(runstore.Options{
			SegmentBytes: cfg.RunstoreSegmentBytes, Metrics: reg, Logger: logger,
		})
		if err != nil {
			s.fleet.Close()
			return nil, fmt.Errorf("server: run store: %w", err)
		}
	}
	if s.store != nil {
		s.jq = make(chan jreq, journalQueueDepth)
		s.jwg.Add(1)
		go s.journalWriter()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker(i)
	}
	if cfg.RetentionMaxAge > 0 || cfg.RetentionMaxBytes > 0 {
		interval := cfg.RetentionInterval
		if interval <= 0 {
			interval = time.Minute
		}
		s.retWg.Add(1)
		go s.retentionLoop(interval)
	}
	return s, nil
}

// logf writes one operational message through the configured logger.
func (s *Server) logf(format string, args ...any) {
	s.logger.Printf(format, args...)
}

// Registry returns the registry holding the dyflow_server_* families.
func (s *Server) Registry() *obs.Registry { return s.reg }

// History returns the run-history store (tests and diagnostics).
func (s *Server) History() *runstore.Store { return s.history }

// cacheEntry is the result cache's value: just enough of a completed
// run to answer an identical submission without keeping its *Run
// resident. Existence implies the source run finished StateDone.
type cacheEntry struct {
	RunID     string
	Converged bool
	SimEnd    time.Duration
	Artifacts map[string]string
}

func cacheEntryFor(r *Run) cacheEntry {
	return cacheEntry{RunID: r.ID, Converged: r.Converged, SimEnd: r.SimEnd, Artifacts: r.Artifacts}
}

// maxTerminalRings bounds how many evicted terminal runs keep their SSE
// event rings for replay; older rings drop and reconnecting clients get
// a terminal event synthesized from the history store instead.
const maxTerminalRings = 1024

// maxRecentDone bounds the evicted-run result-dedup memory (run ID →
// terminal lease ID).
const maxRecentDone = 4096

// unixNs renders a phase timestamp for the history index (zero time → 0).
func unixNs(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// runMetaLocked builds the history store's indexed summary of r. Caller
// holds the server mutex.
func (s *Server) runMetaLocked(r *Run) runstore.Meta {
	m := runstore.Meta{
		ID:            r.ID,
		Tenant:        r.Tenant,
		Scenario:      r.Job.Scenario,
		Key:           r.Job.Key(),
		State:         string(r.State),
		Terminal:      r.State.Terminal(),
		Cached:        r.Cached,
		Converged:     r.Converged,
		SubmittedAtNs: unixNs(r.SubmittedAt),
		QueuedAtNs:    unixNs(r.QueuedAt),
		ClaimedAtNs:   unixNs(r.ClaimedAt),
		StartedAtNs:   unixNs(r.StartedAt),
		FinishedAtNs:  unixNs(r.FinishedAt),
		SimEndNs:      int64(r.SimEnd),
		Artifacts:     r.Artifacts,
	}
	for _, digest := range r.Artifacts {
		m.ArtifactBytes += s.blobs.Size(digest)
	}
	return m
}

// historyAppendLocked records r's current state in the run-history
// store, reporting success. Caller holds the server mutex (the store
// has its own lock; s.mu → store is the only allowed order). A failed
// append is logged and counted by the store — the run simply stays
// resident until a later transition records it.
func (s *Server) historyAppendLocked(r *Run) bool {
	if s.history == nil {
		return false
	}
	doc, err := json.Marshal(r.persisted())
	if err == nil {
		err = s.history.Append(s.runMetaLocked(r), doc)
	}
	if err != nil {
		s.logf("server: history append %s: %v", r.ID, err)
		return false
	}
	return true
}

// evictTerminalLocked drops a terminal run from the resident map once
// its final record is in the history store — the bounded-heap half of
// the run-store design: only queued/running runs stay resident. Caller
// holds the server mutex.
func (s *Server) evictTerminalLocked(r *Run) {
	delete(s.runs, r.ID)
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == r.ID {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if r.doneLease != "" {
		s.recentDone[r.ID] = r.doneLease
		s.recentDoneQ = append(s.recentDoneQ, r.ID)
		for len(s.recentDoneQ) > maxRecentDone {
			delete(s.recentDone, s.recentDoneQ[0])
			s.recentDoneQ = s.recentDoneQ[1:]
		}
	}
	s.retainRingLocked(r.ID)
}

// retainRingLocked keeps an evicted run's SSE ring within the bounded
// retention window, dropping the oldest ring past it.
func (s *Server) retainRingLocked(id string) {
	s.doneRings = append(s.doneRings, id)
	for len(s.doneRings) > maxTerminalRings {
		s.events.Drop(s.doneRings[0])
		s.doneRings = s.doneRings[1:]
	}
}

// historyPersistedLocked fetches an evicted run's full document from the
// history store. Caller holds the server mutex.
func (s *Server) historyPersistedLocked(id string) (persistedRun, bool) {
	if s.history == nil {
		return persistedRun{}, false
	}
	it, ok := s.history.Get(id)
	if !ok {
		return persistedRun{}, false
	}
	var p persistedRun
	if err := json.Unmarshal(it.Doc, &p); err != nil {
		s.logf("server: decode history doc %s: %v", id, err)
		return persistedRun{}, false
	}
	return p, true
}

// retentionLoop sweeps the retention policy until shutdown.
func (s *Server) retentionLoop(interval time.Duration) {
	defer s.retWg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case <-t.C:
			s.SweepRetention()
		}
	}
}

// SweepRetention applies the configured retention policy once: terminal
// runs beyond the per-tenant age/byte budgets are tombstoned in the
// history store, their cache entries and event rings released, and
// artifact blobs no longer referenced by any live record swept from the
// blob store. Returns the number of runs deleted.
//
// A blob uploaded by a worker between the keep-set read and its result
// POST can be swept in the window; the result handler's missing-blob
// check requeues that run, so the race costs a re-execution, never a
// dangling "done" run.
func (s *Server) SweepRetention() int {
	if s.history == nil {
		return 0
	}
	victims := s.history.SweepRetention(runstore.Retention{
		MaxAge:   s.cfg.RetentionMaxAge,
		MaxBytes: s.cfg.RetentionMaxBytes,
	}, time.Now())
	if len(victims) == 0 {
		return 0
	}
	keep := map[string]bool{}
	s.mu.Lock()
	for _, m := range victims {
		if ce, ok := s.cache[m.Key]; ok && ce.RunID == m.ID {
			delete(s.cache, m.Key)
		}
		delete(s.recentDone, m.ID)
		s.events.Drop(m.ID)
	}
	for _, r := range s.runs {
		for _, digest := range r.Artifacts {
			keep[digest] = true
		}
	}
	s.mu.Unlock()
	for digest := range s.history.Digests() {
		keep[digest] = true
	}
	if removed := s.blobs.GC(keep); removed > 0 {
		s.met.gcBlobs.Add(int64(removed))
	}
	return len(victims)
}

// worker drains its queue shard (stealing when empty) until the queue
// closes.
func (s *Server) worker(slot int) {
	defer s.workers.Done()
	for {
		id, ok := s.queue.pop(slot)
		if !ok {
			return
		}
		s.execute(id)
	}
}

// execute runs one claimed queued run to a terminal state — or back to
// queued if the server is shutting down underneath it.
func (s *Server) execute(id string) {
	s.mu.Lock()
	r := s.runs[id]
	if r == nil || r.State != StateQueued {
		s.mu.Unlock()
		return
	}
	if r.cancel.Load() {
		// Canceled after the queue pop but before execution.
		s.finishLocked(r, StateCanceled, errRunCanceled)
		s.mu.Unlock()
		return
	}
	if s.finishFromCacheLocked(r) {
		// An identical run completed while this one sat queued (or it was
		// requeued with orphaned artifacts) — answer from the cache.
		s.mu.Unlock()
		return
	}
	r.State = StateRunning
	now := time.Now()
	r.ClaimedAt = now
	r.StartedAt = now
	s.events.Append(id, events.Event{Type: events.TypeClaimed, Worker: "local"})
	s.events.Append(id, events.Event{Type: events.TypeRunning, Worker: "local"})
	s.historyAppendLocked(r)
	hook := s.beforeRun
	s.mu.Unlock()

	if hook != nil {
		hook(r)
	}
	s.met.active.Add(1)
	start := time.Now()
	out, err := exp.RunJob(r.Job, func(w *exp.World) error {
		w.OnProgress = func(now sim.Time) error {
			r.simNow.Store(int64(now))
			s.progressEvent(r, "local", int64(now))
			if r.cancel.Load() {
				return errRunCanceled
			}
			if s.isStopping() {
				return errShuttingDown
			}
			return nil
		}
		// Forward completed flight-recorder spans into the run's event
		// stream — the same live view a fleet worker ships via heartbeats.
		if w.Orch != nil {
			w.Orch.Trace.SetOnComplete(func(sp trace.Span) {
				s.events.Append(id, events.Event{Type: events.TypeSpan, Worker: "local", Span: &sp})
			})
		}
		return nil
	})
	s.met.active.Add(-1)

	// Store the artifacts content-addressed before taking the run lock:
	// blob writes may hit disk, and identical re-executions dedup to the
	// already-stored copy.
	var refs map[string]string
	if err == nil {
		refs, err = s.storeArtifacts(out.Artifacts)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		r.Converged = out.Converged
		r.SimEnd = out.SimEnd
		r.Artifacts = refs
		if _, have := s.cache[r.Job.Key()]; !have {
			s.cache[r.Job.Key()] = cacheEntryFor(r)
		}
		s.met.runSeconds.Observe(time.Since(start).Seconds())
		s.finishLocked(r, StateDone, nil)
	case errors.Is(err, errShuttingDown):
		// Put it back: the shutdown snapshot (or the already-journaled
		// submission) carries it into the next process as queued.
		s.resetToQueuedLocked(r, "shutdown")
	case errors.Is(err, errRunCanceled):
		s.finishLocked(r, StateCanceled, err)
	default:
		s.finishLocked(r, StateFailed, err)
	}
}

// finishLocked moves a run to a terminal state, releasing its quota slot
// and lease and journaling the transition. Caller holds the server mutex.
func (s *Server) finishLocked(r *Run, state RunState, err error) {
	r.State = state
	if err != nil && state == StateFailed {
		r.Err = err.Error()
	}
	r.FinishedAt = time.Now()
	r.LeaseID = ""
	s.fleet.Revoke(r.ID)
	s.inflight[r.Tenant]--
	if s.inflight[r.Tenant] <= 0 {
		delete(s.inflight, r.Tenant)
	}
	s.met.runsTotal.With(string(state)).Inc()
	kind := kindDone
	if state == StateCanceled {
		kind = kindCancel
	}
	// A failed journal append is not fatal to the run — on restart the run
	// re-executes, which is deterministic — but it IS durability loss;
	// journal() counts it in dyflow_server_journal_errors_total and logs.
	s.journal(kind, r.persisted())
	worker := r.Worker
	if worker == "" && !r.StartedAt.IsZero() {
		worker = "local" // local-pool execution; never set on Run.Worker
	}
	ev := events.Event{Type: terminalEventType(state), Worker: worker,
		Cached: r.Cached, Converged: r.Converged, Error: r.Err}
	if state == StateDone {
		ev.SimSeconds = r.SimEnd.Seconds()
	}
	s.events.Append(r.ID, ev)
	// Record the terminal state in the history store and release the
	// resident entry — the run stays fully queryable (status, artifacts,
	// analytics, result dedup) through the store's indexes.
	if s.historyAppendLocked(r) {
		s.evictTerminalLocked(r)
	}
}

// terminalEventType maps a terminal run state to its event type.
func terminalEventType(state RunState) events.Type {
	switch state {
	case StateFailed:
		return events.TypeFailed
	case StateCanceled:
		return events.TypeCanceled
	default:
		return events.TypeDone
	}
}

// resetToQueuedLocked returns a non-terminal run to the queued state —
// requeue after a lease expiry, a missing artifact blob, a restore, or
// shutdown — resetting its claim-phase fields and publishing the queued
// event with the reason. The caller pushes to the queue (or not:
// shutdown leaves requeueing to the next process). Caller holds the
// server mutex.
func (s *Server) resetToQueuedLocked(r *Run, reason string) {
	r.State = StateQueued
	r.QueuedAt = time.Now()
	r.ClaimedAt = time.Time{}
	r.StartedAt = time.Time{}
	r.Worker = ""
	r.LeaseID = ""
	r.simNow.Store(0)
	s.events.Append(r.ID, events.Event{Type: events.TypeQueued, Reason: reason})
	s.historyAppendLocked(r)
}

// progressEvent publishes a throttled TypeProgress event for a running
// run. Called from progress hooks (local pool) and heartbeat handlers
// (fleet) without the server mutex.
func (s *Server) progressEvent(r *Run, worker string, simNs int64) {
	now := time.Now().UnixNano()
	last := r.lastProgress.Load()
	if now-last < int64(progressEventEvery) || !r.lastProgress.CompareAndSwap(last, now) {
		return
	}
	s.events.Append(r.ID, events.Event{
		Type:       events.TypeProgress,
		Worker:     worker,
		SimSeconds: time.Duration(simNs).Seconds(),
	})
}

// finishFromCacheLocked completes a claimed run from the result cache
// when an identical job finished after this run was admitted. Reports
// whether it did. Caller holds the server mutex.
func (s *Server) finishFromCacheLocked(r *Run) bool {
	src, ok := s.cache[r.Job.Key()]
	if !ok || src.RunID == r.ID {
		return false
	}
	r.Cached = true
	r.Converged = src.Converged
	r.SimEnd = src.SimEnd
	r.simNow.Store(int64(src.SimEnd))
	r.Artifacts = src.Artifacts
	s.met.cacheHits.With(r.Tenant).Inc()
	s.events.Append(r.ID, events.Event{Type: events.TypeCacheHit, Reason: src.RunID})
	s.finishLocked(r, StateDone, nil)
	return true
}

// storeArtifacts puts a finished run's artifact bytes into the
// content-addressed blob store and returns the name → digest references.
func (s *Server) storeArtifacts(artifacts map[string][]byte) (map[string]string, error) {
	refs := make(map[string]string, len(artifacts))
	for name, data := range artifacts {
		digest, err := s.blobs.Put(data)
		if err != nil {
			return nil, fmt.Errorf("server: store artifact %s: %w", name, err)
		}
		refs[name] = digest
	}
	return refs, nil
}

// refsResolvable reports whether every artifact reference of a done run
// resolves in the blob store.
func (s *Server) refsResolvable(r *Run) bool {
	if len(r.Artifacts) == 0 {
		return false
	}
	for _, digest := range r.Artifacts {
		if !s.blobs.Has(digest) {
			return false
		}
	}
	return true
}

// onLeaseExpire is the fleet manager's lapsed-lease callback: the worker
// holding the run died or stalled, so the run goes back to the queue for
// exact re-execution. Never called with the manager lock held.
func (s *Server) onLeaseExpire(runID, workerID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.runs[runID]
	if r == nil || r.State != StateRunning || r.Worker != workerID {
		return
	}
	if r.cancel.Load() {
		// The worker died before observing the cancel; finish it here.
		s.finishLocked(r, StateCanceled, errRunCanceled)
		return
	}
	s.logf("server: lease on %s lapsed at %s; requeued", runID, workerID)
	s.events.Append(runID, events.Event{Type: events.TypeLeaseExpired, Worker: workerID})
	s.resetToQueuedLocked(r, "lease_expired")
	s.queue.requeue(r.Shard, runID)
}

func (s *Server) isStopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopping
}

// markStopping flags shutdown and closes the stopped channel exactly
// once, releasing any blocked SSE streams.
func (s *Server) markStopping() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.stopping {
		s.stopping = true
		close(s.stopped)
	}
}

// Submit admits one job for a tenant, returning the run's status. The
// error is an *APIError carrying the intended HTTP status.
func (s *Server) Submit(tenant string, job exp.Job) (Status, error) {
	if tenant == "" {
		tenant = "default"
	}
	job, err := job.Normalized()
	if err != nil {
		return Status{}, &APIError{Code: http.StatusBadRequest, Msg: err.Error()}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return Status{}, &APIError{Code: http.StatusServiceUnavailable, Msg: "server is shutting down"}
	}

	// Cache fast path: an identical job already completed — answer from
	// its artifacts without touching the queue or the quota.
	if src, hit := s.cache[job.Key()]; hit {
		r := s.newRunLocked(tenant, job)
		r.State = StateDone
		r.QueuedAt = time.Time{} // answered from cache; never queued
		r.Cached = true
		r.Converged = src.Converged
		r.SimEnd = src.SimEnd
		r.simNow.Store(int64(src.SimEnd))
		r.Artifacts = src.Artifacts
		r.FinishedAt = time.Now()
		s.met.submissions.With(tenant).Inc()
		s.met.cacheHits.With(tenant).Inc()
		s.met.runsTotal.With(string(StateDone)).Inc()
		if err := s.journal(kindSubmit, r.persisted()); err != nil {
			return Status{}, s.dropRunLocked(r, err)
		}
		s.events.Append(r.ID, events.Event{Type: events.TypeCacheHit, Reason: src.RunID})
		s.events.Append(r.ID, events.Event{Type: events.TypeDone, Cached: true,
			Converged: r.Converged, SimSeconds: r.SimEnd.Seconds()})
		st := r.status()
		if s.historyAppendLocked(r) {
			s.evictTerminalLocked(r)
		}
		return st, nil
	}

	if s.cfg.TenantQuota > 0 && s.inflight[tenant] >= s.cfg.TenantQuota {
		s.met.quotaRejects.With(tenant).Inc()
		return Status{}, &APIError{
			Code: http.StatusTooManyRequests,
			Msg:  fmt.Sprintf("tenant %q is at its in-flight quota (%d)", tenant, s.cfg.TenantQuota),
		}
	}

	r := s.newRunLocked(tenant, job)
	if err := s.queue.push(r.Shard, r.ID); err != nil {
		if errors.Is(err, errQueueFull) {
			s.met.queueRejects.Inc()
			return Status{}, s.dropRunLocked(r, &APIError{
				Code:       http.StatusTooManyRequests,
				Msg:        "run queue is full",
				RetryAfter: 1,
			})
		}
		return Status{}, s.dropRunLocked(r, err)
	}
	// Journal after the push succeeded but before acknowledging: a crash
	// in the window loses only runs the client never saw accepted.
	if err := s.journal(kindSubmit, r.persisted()); err != nil {
		s.queue.remove(r.ID)
		return Status{}, s.dropRunLocked(r, err)
	}
	s.inflight[tenant]++
	s.met.submissions.With(tenant).Inc()
	s.events.Append(r.ID, events.Event{Type: events.TypeQueued})
	s.historyAppendLocked(r)
	return r.status(), nil
}

// newRunLocked allocates and registers the next run. Caller holds the
// server mutex.
func (s *Server) newRunLocked(tenant string, job exp.Job) *Run {
	id := fmt.Sprintf("run-%06d", s.nextID)
	s.nextID++
	now := time.Now()
	r := &Run{
		ID:          id,
		Tenant:      tenant,
		Job:         job,
		Shard:       s.queue.shardFor(tenant),
		State:       StateQueued,
		SubmittedAt: now,
		QueuedAt:    now,
	}
	s.runs[id] = r
	s.order = append(s.order, id)
	return r
}

// dropRunLocked unregisters a run that failed admission and returns err.
func (s *Server) dropRunLocked(r *Run, err error) error {
	delete(s.runs, r.ID)
	if n := len(s.order); n > 0 && s.order[n-1] == r.ID {
		s.order = s.order[:n-1]
	}
	s.nextID--
	return err
}

// Cancel cancels a run: a queued run is pulled from the queue and finished
// immediately; a running run is flagged and aborts at its next progress
// tick. Canceling a terminal run is a no-op.
func (s *Server) Cancel(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		// Evicted terminal runs cancel as the no-op they always were.
		if p, ok := s.historyPersistedLocked(id); ok {
			return s.applyPersisted(p).status(), nil
		}
		return Status{}, &APIError{Code: http.StatusNotFound, Msg: "no such run"}
	}
	if r.State.Terminal() {
		return r.status(), nil
	}
	r.cancel.Store(true)
	if r.State == StateQueued && s.queue.remove(id) {
		s.finishLocked(r, StateCanceled, errRunCanceled)
	}
	return r.status(), nil
}

// RunStatus returns one run's status — resident runs live, evicted
// terminal runs from their history store document.
func (s *Server) RunStatus(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runs[id]; ok {
		return r.status(), nil
	}
	if p, ok := s.historyPersistedLocked(id); ok {
		return s.applyPersisted(p).status(), nil
	}
	return Status{}, &APIError{Code: http.StatusNotFound, Msg: "no such run"}
}

// RunQuery filters GET /v1/runs; zero fields match everything.
type RunQuery struct {
	Tenant   string
	Scenario string
	State    string
	// Since/Until bound SubmittedAt (inclusive; zero = unbounded).
	Since time.Time
	Until time.Time
	// Limit caps the page size (<= 0: unlimited, internal callers).
	Limit int
	// PageToken resumes after a previous page's NextPageToken.
	PageToken string
}

// RunPage is one page of runs plus the cursor for the next.
type RunPage struct {
	Runs          []Status `json:"runs"`
	NextPageToken string   `json:"next_page_token,omitempty"`
}

// QueryRuns serves the filtered, paginated run listing from the history
// store's indexes. Every admitted run has a history record (appended at
// submission), so the store is the authoritative listing; resident runs
// render their live status instead of the recorded document.
func (s *Server) QueryRuns(q RunQuery) (RunPage, error) {
	page, err := s.history.Query(runstore.Query{
		Tenant: q.Tenant, Scenario: q.Scenario, State: q.State,
		Since: q.Since, Until: q.Until,
		Limit: q.Limit, PageToken: q.PageToken,
	})
	if err != nil {
		return RunPage{}, &APIError{Code: http.StatusBadRequest, Msg: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := RunPage{Runs: make([]Status, 0, len(page.Items)), NextPageToken: page.NextPageToken}
	for _, it := range page.Items {
		if r := s.runs[it.Meta.ID]; r != nil {
			out.Runs = append(out.Runs, r.status())
			continue
		}
		var p persistedRun
		if err := json.Unmarshal(it.Doc, &p); err != nil {
			s.logf("server: decode history doc %s: %v", it.Meta.ID, err)
			continue
		}
		out.Runs = append(out.Runs, s.applyPersisted(p).status())
	}
	return out, nil
}

// Runs lists every run in submission order (internal and test callers;
// the HTTP listing paginates through QueryRuns).
func (s *Server) Runs() []Status {
	page, err := s.QueryRuns(RunQuery{})
	if err != nil {
		return nil
	}
	out := page.Runs
	// Robustness: a resident run whose history append failed still lists.
	seen := make(map[string]bool, len(out))
	for _, st := range out {
		seen[st.ID] = true
	}
	s.mu.Lock()
	for _, id := range s.order {
		if !seen[id] {
			out = append(out, s.runs[id].status())
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].SubmittedAt.Equal(out[j].SubmittedAt) {
			return out[i].SubmittedAt.Before(out[j].SubmittedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Artifact returns one artifact of a finished run, resident or evicted.
func (s *Server) Artifact(id, name string) ([]byte, error) {
	s.mu.Lock()
	var state RunState
	var refs map[string]string
	if r, ok := s.runs[id]; ok {
		state, refs = r.State, r.Artifacts
	} else if p, ok := s.historyPersistedLocked(id); ok {
		state, refs = p.State, p.ArtifactRefs
	} else {
		s.mu.Unlock()
		return nil, &APIError{Code: http.StatusNotFound, Msg: "no such run"}
	}
	s.mu.Unlock()
	if state != StateDone {
		return nil, &APIError{Code: http.StatusConflict, Msg: fmt.Sprintf("run is %s, artifacts exist once it is done", state)}
	}
	digest, ok := refs[name]
	if !ok {
		return nil, &APIError{Code: http.StatusNotFound, Msg: "no such artifact"}
	}
	data, ok := s.blobs.Get(digest)
	if !ok {
		return nil, &APIError{Code: http.StatusNotFound, Msg: "artifact blob missing from store"}
	}
	return data, nil
}

// QueueDepth returns the number of queued runs (tests and the drain loop).
func (s *Server) QueueDepth() int { return s.queue.depthTotal() }

// Start begins serving the API on addr ("host:0" picks a free port) and
// returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.logf("server: serve: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Shutdown stops gracefully: the HTTP listener drains, running simulations
// abort back to queued at their next progress tick, the workers exit, and
// the full state — queued runs included — is snapshotted so the next
// process resumes them.
func (s *Server) Shutdown(ctx context.Context) error {
	s.markStopping()

	var httpErr error
	if s.httpSrv != nil {
		httpErr = s.httpSrv.Shutdown(ctx)
	}
	s.queue.close()
	s.workers.Wait()
	s.fleet.Close()
	s.retWg.Wait()
	s.drainJournal()

	s.mu.Lock()
	// Runs still leased to fleet workers go back to queued in the
	// snapshot: the next process re-executes them exactly, and any late
	// result upload from the old worker is rejected as stale.
	for _, id := range s.fleet.LeasedRuns() {
		s.fleet.Revoke(id)
		if r := s.runs[id]; r != nil && r.State == StateRunning {
			s.resetToQueuedLocked(r, "shutdown")
		}
	}
	err := s.snapshotLocked("shutdown")
	s.mu.Unlock()
	if s.history != nil {
		s.history.Close()
	}
	if err != nil {
		return err
	}
	return httpErr
}

// Close stops hard — no snapshot, simulating a crash: recovery relies on
// the journal alone. Tests use it to prove the kill+restart path.
func (s *Server) Close() {
	s.markStopping()
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.queue.close()
	s.workers.Wait()
	s.fleet.Close()
	s.retWg.Wait()
	s.drainJournal()
	if s.history != nil {
		s.history.Close()
	}
}

// APIError is an error with an HTTP status.
type APIError struct {
	Code       int
	Msg        string
	RetryAfter int // seconds, optional
}

func (e *APIError) Error() string { return e.Msg }

// httpError writes err as an HTTP response: an *APIError keeps its status,
// anything else is a 500.
func httpError(w http.ResponseWriter, err error) {
	var api *APIError
	if !errors.As(err, &api) {
		api = &APIError{Code: http.StatusInternalServerError, Msg: err.Error()}
	}
	if api.RetryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(api.RetryAfter))
	}
	http.Error(w, api.Msg, api.Code)
}

// writeJSON marshals first and writes with an explicit Content-Length so
// failures are never silent half-truths: an encode error surfaces as a
// clean 500 (nothing of the 2xx was written yet), and a connection torn
// mid-body leaves the client a short read against the advertised length —
// io.ErrUnexpectedEOF, which retrying clients treat as transient. The
// fleet Worker and faultnet's truncation mode both rely on this.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.logf("server: encode json response: %v", err)
		http.Error(w, "encode response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(code)
	if _, err := w.Write(data); err != nil {
		s.logf("server: write json response: %v", err)
	}
}

// Listing pagination bounds: the response is never the whole table —
// an omitted limit serves defaultListLimit runs and anything above
// maxListLimit is clamped to it (both documented in docs/SERVICE.md).
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// parseRunQuery decodes GET /v1/runs' filter parameters: tenant,
// scenario, state, since/until (RFC 3339), limit, page_token.
func parseRunQuery(r *http.Request) (RunQuery, error) {
	qs := r.URL.Query()
	q := RunQuery{
		Tenant:    qs.Get("tenant"),
		Scenario:  qs.Get("scenario"),
		State:     qs.Get("state"),
		PageToken: qs.Get("page_token"),
		Limit:     defaultListLimit,
	}
	if v := qs.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return RunQuery{}, &APIError{Code: http.StatusBadRequest, Msg: "limit must be a positive integer"}
		}
		q.Limit = n
	}
	if q.Limit > maxListLimit {
		q.Limit = maxListLimit
	}
	for _, tp := range []struct {
		name string
		dst  *time.Time
	}{{"since", &q.Since}, {"until", &q.Until}} {
		if v := qs.Get(tp.name); v != "" {
			t, err := time.Parse(time.RFC3339, v)
			if err != nil {
				return RunQuery{}, &APIError{Code: http.StatusBadRequest,
					Msg: fmt.Sprintf("%s must be RFC 3339 (e.g. 2026-01-02T15:04:05Z): %v", tp.name, err)}
			}
			*tp.dst = t
		}
	}
	return q, nil
}

// SubmitRequest is the POST /v1/runs body: a tenant plus the job fields.
type SubmitRequest struct {
	Tenant string `json:"tenant"`
	exp.Job
}

// Handler returns the service's HTTP API:
//
//	POST /v1/runs                      submit  {tenant, scenario, machine, seed, xml}
//	GET  /v1/runs                      list runs; filters tenant, scenario, state,
//	                                   since, until (RFC 3339), limit, page_token
//	GET  /v1/runs/{id}                 one run's status
//	GET  /v1/runs/{id}/events          live event stream (SSE, Last-Event-ID resume)
//	POST /v1/runs/{id}/cancel          cancel
//	GET  /v1/runs/{id}/artifacts/{name}  report | gantt | perfetto | metrics
//	GET  /v1/analytics                 cross-campaign aggregates over the full run
//	                                   history; ?trend_bucket=1h&trend_buckets=24
//	                                   adds time-bucketed submission trends
//	GET  /metrics, /metrics.json       coordinator families + worker-labeled fleet families
//	GET  /healthz                      liveness
//
// plus the fleet worker API (worker_api.go): /v1/workers/*, /v1/blobs/*,
// GET /v1/fleet, and GET /v1/fleet/metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			s.met.httpReqs.With(name).Inc()
			h(w, r)
		})
	}
	route("POST /v1/runs", "submit", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, &APIError{Code: http.StatusBadRequest, Msg: "bad submit body: " + err.Error()})
			return
		}
		st, err := s.Submit(req.Tenant, req.Job)
		if err != nil {
			httpError(w, err)
			return
		}
		s.writeJSON(w, http.StatusAccepted, st)
	})
	route("GET /v1/runs", "list", func(w http.ResponseWriter, r *http.Request) {
		q, err := parseRunQuery(r)
		if err != nil {
			httpError(w, err)
			return
		}
		page, err := s.QueryRuns(q)
		if err != nil {
			httpError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, page)
	})
	route("GET /v1/runs/{id}", "status", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.RunStatus(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, st)
	})
	route("POST /v1/runs/{id}/cancel", "cancel", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, st)
	})
	route("GET /v1/runs/{id}/artifacts/{name}", "artifact", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		blob, err := s.Artifact(r.PathValue("id"), name)
		if err != nil {
			httpError(w, err)
			return
		}
		ct := "application/json"
		if name == exp.ArtifactGantt {
			ct = "text/plain; charset=utf-8"
		}
		w.Header().Set("Content-Type", ct)
		w.Write(blob)
	})
	route("GET /v1/runs/{id}/events", "events", s.handleRunEvents)
	route("GET /v1/analytics", "analytics", func(w http.ResponseWriter, r *http.Request) {
		var bucket time.Duration
		buckets := 0
		if v := r.URL.Query().Get("trend_bucket"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				httpError(w, &APIError{Code: http.StatusBadRequest, Msg: "bad trend_bucket (want a positive Go duration, e.g. 1h)"})
				return
			}
			bucket = d
		}
		if v := r.URL.Query().Get("trend_buckets"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				httpError(w, &APIError{Code: http.StatusBadRequest, Msg: "bad trend_buckets (want a positive integer)"})
				return
			}
			buckets = n
			if bucket == 0 {
				bucket = time.Hour
			}
		}
		s.writeJSON(w, http.StatusOK, s.AnalyticsWithTrends(bucket, buckets))
	})
	route("GET /healthz", "healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.fleetRoutes(route)
	// One scrape sees the whole fleet: the coordinator's own families
	// plus every worker's pushed snapshot under a `worker` label.
	route("GET /metrics", "metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.mergedSnapshot().WritePrometheus(w); err != nil {
			s.logf("server: write /metrics: %v", err)
		}
	})
	route("GET /metrics.json", "metrics_json", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.mergedSnapshot())
	})
	return mux
}

// mergedSnapshot is the fleet-wide metrics view: the coordinator's
// registry merged with each worker's last pushed registry snapshot,
// worker families tagged worker="<id>".
func (s *Server) mergedSnapshot() obs.Snapshot {
	parts := []obs.Snapshot{s.reg.Snapshot()}
	workers := s.fleet.MetricsSnapshots()
	ids := make([]string, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		parts = append(parts, workers[id].WithLabel("worker", id))
	}
	return obs.MergeSnapshots(parts...)
}
