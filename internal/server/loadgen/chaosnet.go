package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"dyflow/internal/server"
	"dyflow/internal/server/faultnet"
	"dyflow/internal/server/fleet"
)

// ChaosNetOptions shapes a seeded network-fault sweep: for each seed, an
// in-process coordinator (no local pool) serves a fleet of workers whose
// every RPC crosses a faultnet transport derived from that seed, while
// clean-network clients drive jobs closed-loop and verify outcomes. The
// client plane is deliberately fault-free so its observations are ground
// truth; only the coordinator↔worker plane is hostile.
type ChaosNetOptions struct {
	// Seeds are the fault schedules to sweep (faultnet.PlanForSeed each).
	// Empty means seeds 0–4, one per emphasized fault mode.
	Seeds []int64
	// Workers is the fleet size per round. 0 means 3.
	Workers int
	// Clients and PerClient shape the closed-loop load per round.
	// 0 means 4 clients × 4 jobs.
	Clients   int
	PerClient int
	// LeaseTTL is the coordinator's lease TTL during the seeded rounds —
	// the recovery horizon for claims whose reply was lost. 0 means 2s.
	LeaseTTL time.Duration
	// Partition is the mid-run partition scenario's duration (the worker
	// is cut off right after claiming, must finish the run and deliver
	// the result after healing, without a requeue). 0 means 10s;
	// negative skips the scenario.
	Partition time.Duration
	// PartitionTTL is the lease TTL for the partition scenario; it must
	// exceed Partition for the no-requeue assertion to hold. 0 means 3×
	// Partition.
	PartitionTTL time.Duration
	// MinJobsPerSec is the per-round throughput floor. 0 means 0.5 —
	// deliberately lenient: a lost claim reply parks its run for a full
	// lease TTL, and correctness under faults is the point, but a plane
	// that collapses to near-zero progress must still fail the sweep.
	MinJobsPerSec float64
	// Scenario is the job scenario. "" means the loadgen default.
	Scenario string
}

// ChaosNetRound is one seed's outcome.
type ChaosNetRound struct {
	Seed        int64   `json:"seed"`
	Jobs        int     `json:"jobs"`
	Completed   int     `json:"completed"`
	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`

	// Faults actually injected, by mode, summed across the fleet.
	Faults map[string]int64 `json:"faults"`

	// RunsTotal is dyflow_server_runs_total summed over states: with
	// distinct seeds (no cache hits) it must equal Jobs exactly — every
	// run reaching exactly one terminal state, no double completions.
	RunsTotal float64 `json:"runs_total"`

	RPCRetries    float64 `json:"worker_rpc_retries"`
	LeaseExpiries float64 `json:"lease_expiries"`
	StaleResults  float64 `json:"stale_results"`
	DupResults    float64 `json:"duplicate_results"`
	SpanDrops     float64 `json:"worker_span_drops"`
}

// ChaosNetPartition is the mid-run partition scenario's outcome.
type ChaosNetPartition struct {
	PartitionSeconds float64 `json:"partition_seconds"`
	LeaseTTLSeconds  float64 `json:"lease_ttl_seconds"`
	WallSeconds      float64 `json:"wall_seconds"`
	State            string  `json:"state"`
	LeaseExpiries    float64 `json:"lease_expiries"`
	RunsTotal        float64 `json:"runs_total"`
}

// ChaosNetResult is the sweep's JSON-shaped outcome (BENCH_chaosnet.json).
type ChaosNetResult struct {
	Rounds    []ChaosNetRound    `json:"rounds"`
	Partition *ChaosNetPartition `json:"partition,omitempty"`
	Failures  []string           `json:"failures,omitempty"`
	Pass      bool               `json:"pass"`
}

// ChaosNet runs the sweep. The returned result is always populated as
// far as the sweep got; the error is non-nil when any assertion failed.
func ChaosNet(o ChaosNetOptions) (*ChaosNetResult, error) {
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{0, 1, 2, 3, 4}
	}
	if o.Workers == 0 {
		o.Workers = 3
	}
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.PerClient == 0 {
		o.PerClient = 4
	}
	if o.LeaseTTL == 0 {
		o.LeaseTTL = 2 * time.Second
	}
	if o.Partition == 0 {
		o.Partition = 10 * time.Second
	}
	if o.PartitionTTL == 0 {
		o.PartitionTTL = 3 * o.Partition
	}
	if o.MinJobsPerSec == 0 {
		o.MinJobsPerSec = 0.5
	}

	res := &ChaosNetResult{}
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	for _, seed := range o.Seeds {
		round, err := chaosRound(o, seed)
		res.Rounds = append(res.Rounds, round)
		if err != nil {
			fail("seed %d: %v", seed, err)
			continue
		}
		if round.Completed != round.Jobs {
			fail("seed %d: %d of %d jobs completed (lost runs)", seed, round.Completed, round.Jobs)
		}
		if round.RunsTotal != float64(round.Jobs) {
			fail("seed %d: runs_total = %.0f for %d jobs (terminal transitions must be exactly one per run)",
				seed, round.RunsTotal, round.Jobs)
		}
		if round.JobsPerSec < o.MinJobsPerSec {
			fail("seed %d: %.2f jobs/s under the %.2f floor", seed, round.JobsPerSec, o.MinJobsPerSec)
		}
	}

	if o.Partition > 0 {
		part, err := chaosPartition(o)
		res.Partition = &part
		switch {
		case err != nil:
			fail("partition: %v", err)
		case part.State != string(server.StateDone):
			fail("partition: run ended %s, want done", part.State)
		case part.LeaseExpiries != 0:
			fail("partition: %.0f lease expiries across a %.0fs partition under a %.0fs TTL (run must survive without requeue)",
				part.LeaseExpiries, part.PartitionSeconds, part.LeaseTTLSeconds)
		case part.RunsTotal != 1:
			fail("partition: runs_total = %.0f, want exactly 1", part.RunsTotal)
		case part.WallSeconds < part.PartitionSeconds:
			fail("partition: completed in %.1fs, inside the %.0fs partition — the fault never bit", part.WallSeconds, part.PartitionSeconds)
		}
	}

	res.Pass = len(res.Failures) == 0
	if !res.Pass {
		return res, fmt.Errorf("chaos-net: %d assertion(s) failed: %s", len(res.Failures), res.Failures[0])
	}
	return res, nil
}

// chaosRound drives one seed: coordinator up, faulted fleet up, clean
// clients through, everything down, counters scraped.
func chaosRound(o ChaosNetOptions, seed int64) (ChaosNetRound, error) {
	round := ChaosNetRound{Seed: seed, Jobs: o.Clients * o.PerClient, Faults: map[string]int64{}}
	srv, err := server.New(server.Config{Workers: -1, QueueDepth: 512, TenantQuota: -1, LeaseTTL: o.LeaseTTL})
	if err != nil {
		return round, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return round, err
	}

	workers := make([]*fleet.Worker, 0, o.Workers)
	transports := make([]*faultnet.Transport, 0, o.Workers)
	for i := 0; i < o.Workers; i++ {
		plan := faultnet.PlanForSeed(seed)
		plan.Seed += int64(i) * 1000003 // decorrelate the fleet, stay deterministic
		tr := faultnet.New(plan, nil)
		w, err := fleet.JoinFleet(fleet.WorkerOptions{
			Coordinator:  addr,
			Name:         fmt.Sprintf("chaos-s%d-w%d", seed, i),
			ClaimWait:    50 * time.Millisecond,
			CallTimeout:  2 * time.Second,
			RegisterWait: 30 * time.Second,
			BackoffSeed:  seed*101 + int64(i) + 1,
			Client:       &http.Client{Timeout: 10 * time.Second, Transport: tr},
		})
		if err != nil {
			for _, started := range workers {
				started.Stop()
			}
			return round, fmt.Errorf("join fleet: %w", err)
		}
		workers = append(workers, w)
		transports = append(transports, tr)
	}

	start := time.Now()
	lres, lerr := Run(Options{
		Addr:      addr,
		Clients:   o.Clients,
		PerClient: o.PerClient,
		Scenario:  o.Scenario,
		PollEvery: 2 * time.Millisecond,
	})
	round.WallSeconds = time.Since(start).Seconds()
	for _, w := range workers {
		w.Stop()
	}
	if lres != nil {
		round.Completed = lres.Completed
		if round.WallSeconds > 0 {
			round.JobsPerSec = float64(round.Completed) / round.WallSeconds
		}
	}
	for _, tr := range transports {
		for mode, n := range tr.Counts() {
			round.Faults[string(mode)] += n
		}
	}
	for _, w := range workers {
		v, _ := w.Registry().Value("dyflow_worker_rpc_retries_total")
		round.RPCRetries += v
		d, _ := w.Registry().Value("dyflow_worker_span_drops_total")
		round.SpanDrops += d
	}
	round.RunsTotal, _ = srv.Registry().Value("dyflow_server_runs_total")
	round.LeaseExpiries, _ = srv.Registry().Value("dyflow_server_fleet_lease_expiries_total")
	round.StaleResults, _ = srv.Registry().Value("dyflow_server_fleet_stale_results_total")
	round.DupResults, _ = srv.Registry().Value("dyflow_server_fleet_duplicate_results_total")
	return round, lerr
}

// chaosPartition is the directional-partition drill: a worker claims a
// run, is immediately cut off from the coordinator (outbound partition —
// heartbeats, blob PUTs, and result POSTs all fail), keeps executing
// because its lease cannot have lapsed yet, and delivers the result once
// the partition heals. With TTL > partition the coordinator must never
// requeue: exactly one claim, zero lease expiries, one terminal state.
func chaosPartition(o ChaosNetOptions) (ChaosNetPartition, error) {
	part := ChaosNetPartition{
		PartitionSeconds: o.Partition.Seconds(),
		LeaseTTLSeconds:  o.PartitionTTL.Seconds(),
	}
	srv, err := server.New(server.Config{Workers: -1, LeaseTTL: o.PartitionTTL})
	if err != nil {
		return part, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return part, err
	}

	tr := faultnet.New(faultnet.Plan{Seed: 1}, nil) // clean until the partition opens
	var once sync.Once
	w, err := fleet.JoinFleet(fleet.WorkerOptions{
		Coordinator: addr,
		Name:        "chaos-partition",
		ClaimWait:   50 * time.Millisecond,
		CallTimeout: 2 * time.Second,
		BackoffSeed: 1,
		Client:      &http.Client{Timeout: 10 * time.Second, Transport: tr},
		OnClaim: func(string) {
			once.Do(func() { tr.Partition(o.Partition, faultnet.Outbound) })
		},
	})
	if err != nil {
		return part, fmt.Errorf("join fleet: %w", err)
	}

	start := time.Now()
	_, lerr := Run(Options{
		Addr:      addr,
		Clients:   1,
		PerClient: 1,
		Scenario:  o.Scenario,
		PollEvery: 10 * time.Millisecond,
	})
	part.WallSeconds = time.Since(start).Seconds()
	w.Stop()

	part.LeaseExpiries, _ = srv.Registry().Value("dyflow_server_fleet_lease_expiries_total")
	part.RunsTotal, _ = srv.Registry().Value("dyflow_server_runs_total")
	part.State = "unknown"
	if runs := srv.Runs(); len(runs) == 1 {
		part.State = string(runs[0].State)
	}
	return part, lerr
}
