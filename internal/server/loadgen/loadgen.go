// Package loadgen is the campaign service's closed-loop load generator:
// N concurrent clients, each its own tenant, submit jobs against a
// dyflow-serve endpoint, poll them to completion, and fetch an artifact —
// measuring end-to-end campaign latency and throughput rather than raw
// HTTP rates. Backpressure (429) is handled the way a well-behaved client
// would: back off and resubmit, counting the rejection.
package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dyflow/internal/exp"
	"dyflow/internal/obs"
	"dyflow/internal/server"
	"dyflow/internal/server/events"
	"dyflow/internal/server/fleet"
)

// Options shapes a load run.
type Options struct {
	// Addr is the dyflow-serve address (host:port).
	Addr string
	// Clients is the number of concurrent closed-loop clients; each is its
	// own tenant ("tenant-0" …) unless Tenants says otherwise. Default 4.
	Clients int
	// Tenants spreads the clients over this many tenants (client c is
	// tenant c%Tenants) — fewer tenants than clients makes concurrent
	// same-tenant submissions contend on the per-tenant quota. 0 means one
	// tenant per client.
	Tenants int
	// PerClient is how many jobs each client drives to completion. Default 8.
	PerClient int
	// Scenario is the job scenario to submit (default quickstart).
	Scenario string
	// Machine is the job machine ("" means the server default, summit).
	Machine string
	// Seeds is the seed-space size: job n uses seed n%Seeds, so Seeds
	// smaller than the total job count forces cache hits. 0 means every
	// job gets a distinct seed (no hits).
	Seeds int
	// PollEvery is the status-poll interval. Default 5ms.
	PollEvery time.Duration
	// Metrics, when set, receives the dyflow_loadgen_* families.
	Metrics *obs.Registry

	// FleetWorkers, when positive, spawns that many in-process fleet
	// workers against Addr for the duration of the run — the coordinator
	// should then run with no local pool (-workers -1) so the fleet does
	// all the executing.
	FleetWorkers int
	// WorkerSlots is each fleet worker's concurrent-claim count. 0 means 1.
	WorkerSlots int
	// KillWorker hard-kills one fleet worker while it holds a lease — the
	// chaos drill: its run must come back via lease expiry and finish on a
	// surviving worker, visible as lease_expiries >= 1 in the result.
	KillWorker bool

	// Stream switches clients from status polling to tailing each run's
	// SSE event stream (GET /v1/runs/{id}/events): a client considers the
	// run finished when the terminal event arrives, so the measured loop
	// exercises the live observability plane end to end. Cached runs are
	// tailed too — their stream is pure replay ending in the terminal
	// event. The result records events received and submit→terminal-event
	// latency percentiles.
	Stream bool
}

// Result is the aggregate outcome of a load run, JSON-shaped for
// BENCH_serve.json.
type Result struct {
	Clients     int     `json:"clients"`
	Jobs        int     `json:"jobs"`
	Completed   int     `json:"completed"`
	Cached      int     `json:"cached"`
	Rejected429 int     `json:"rejected_429"`
	Errors      int     `json:"errors"`
	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`

	// End-to-end latency (submission accepted → done observed), seconds.
	LatencyP50 float64 `json:"latency_p50_s"`
	LatencyP90 float64 `json:"latency_p90_s"`
	LatencyP99 float64 `json:"latency_p99_s"`
	LatencyMax float64 `json:"latency_max_s"`

	// Streaming-mode fields: runs observed via SSE tail, events received
	// across all streams, and submit → terminal-event latency.
	StreamedRuns   int     `json:"streamed_runs,omitempty"`
	EventsReceived int64   `json:"events_received,omitempty"`
	StreamP50      float64 `json:"stream_latency_p50_s,omitempty"`
	StreamP90      float64 `json:"stream_latency_p90_s,omitempty"`
	StreamMax      float64 `json:"stream_latency_max_s,omitempty"`

	// History-plane verification: after the drive, the generator pages
	// through GET /v1/runs (cursor pagination) and records how many runs
	// the history reported and how many pages it took — a load test that
	// finishes with HistoryRuns == 0 exercised submissions but proves
	// nothing about the queryable run history.
	HistoryRuns  int `json:"history_runs,omitempty"`
	HistoryPages int `json:"history_pages,omitempty"`

	// Fleet-mode fields, scraped from the coordinator's /metrics.json.
	Mode          string  `json:"mode"`
	FleetWorkers  int     `json:"fleet_workers,omitempty"`
	WorkerKilled  bool    `json:"worker_killed,omitempty"`
	FleetClaims   float64 `json:"fleet_claims,omitempty"`
	LeaseExpiries float64 `json:"lease_expiries,omitempty"`
	StaleResults  float64 `json:"stale_results,omitempty"`
}

// gen is one load run in flight.
type gen struct {
	o      Options
	client *http.Client
	// streamer has no timeout: an SSE tail legitimately stays open for
	// the run's whole lifetime.
	streamer *http.Client
	base     string

	completed, cached, rejected, errors *obs.Counter
	latency                             *obs.Histogram

	mu         sync.Mutex
	res        *Result
	latencies  []float64
	streamLats []float64
}

// Run drives the load and blocks until every job reaches a verdict.
func Run(o Options) (*Result, error) {
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.PerClient == 0 {
		o.PerClient = 8
	}
	if o.Scenario == "" {
		o.Scenario = exp.ScenarioQuickstart
	}
	if o.PollEvery == 0 {
		o.PollEvery = 5 * time.Millisecond
	}
	g := &gen{
		o:        o,
		client:   &http.Client{Timeout: 30 * time.Second},
		streamer: &http.Client{},
		base:     "http://" + o.Addr,
		res:      &Result{Clients: o.Clients, Jobs: o.Clients * o.PerClient},
	}
	if o.Metrics != nil {
		g.completed = o.Metrics.Counter("dyflow_loadgen_completions_total",
			"Jobs driven to done.").With()
		g.cached = o.Metrics.Counter("dyflow_loadgen_cache_hits_total",
			"Jobs answered from the server's result cache.").With()
		g.rejected = o.Metrics.Counter("dyflow_loadgen_backpressure_total",
			"429 responses absorbed (quota or queue-full).").With()
		g.errors = o.Metrics.Counter("dyflow_loadgen_errors_total",
			"Jobs that failed or errored.").With()
		g.latency = o.Metrics.Histogram("dyflow_loadgen_latency_seconds",
			"End-to-end job latency.", nil).With()
	}

	var stopFleet func()
	if o.FleetWorkers > 0 {
		var err error
		if stopFleet, err = g.startFleet(); err != nil {
			return nil, err
		}
		g.res.Mode = "fleet"
		g.res.FleetWorkers = o.FleetWorkers
		g.res.WorkerKilled = o.KillWorker
	} else {
		g.res.Mode = "single"
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g.runClient(c)
		}(c)
	}
	wg.Wait()

	res := g.res
	res.WallSeconds = time.Since(start).Seconds()
	if res.WallSeconds > 0 {
		res.JobsPerSec = float64(res.Completed) / res.WallSeconds
	}
	sort.Float64s(g.latencies)
	res.LatencyP50 = quantile(g.latencies, 0.50)
	res.LatencyP90 = quantile(g.latencies, 0.90)
	res.LatencyP99 = quantile(g.latencies, 0.99)
	if n := len(g.latencies); n > 0 {
		res.LatencyMax = g.latencies[n-1]
	}
	sort.Float64s(g.streamLats)
	res.StreamP50 = quantile(g.streamLats, 0.50)
	res.StreamP90 = quantile(g.streamLats, 0.90)
	if n := len(g.streamLats); n > 0 {
		res.StreamMax = g.streamLats[n-1]
	}
	if stopFleet != nil {
		stopFleet()
		g.scrapeFleetMetrics()
	}
	if err := g.verifyHistory(); err != nil {
		return res, err
	}
	if res.Errors > 0 {
		return res, fmt.Errorf("loadgen: %d of %d jobs failed", res.Errors, res.Jobs)
	}
	return res, nil
}

// startFleet joins o.FleetWorkers in-process workers to the coordinator.
// With KillWorker set, worker 0 is the victim: the moment it claims a run
// it is held pre-execution and hard-killed mid-lease, so the run must be
// recovered by lease expiry on a survivor. The returned stop function
// waits out the kill and drains the survivors.
func (g *gen) startFleet() (func(), error) {
	workers := make([]*fleet.Worker, 0, g.o.FleetWorkers)
	claimed := make(chan struct{})
	release := make(chan struct{})
	abort := make(chan struct{})
	killed := make(chan struct{})
	for i := 0; i < g.o.FleetWorkers; i++ {
		opts := fleet.WorkerOptions{
			Coordinator: g.o.Addr,
			Name:        fmt.Sprintf("loadgen-%d", i),
			Slots:       g.o.WorkerSlots,
			ClaimWait:   100 * time.Millisecond,
		}
		if i == 0 && g.o.KillWorker {
			var once sync.Once
			opts.OnClaim = func(string) {
				once.Do(func() {
					close(claimed)
					<-release
				})
			}
		}
		w, err := fleet.JoinFleet(opts)
		if err != nil {
			for _, started := range workers {
				started.Stop()
			}
			return nil, fmt.Errorf("loadgen: join fleet: %w", err)
		}
		workers = append(workers, w)
	}

	if g.o.KillWorker {
		go func() {
			defer close(killed)
			select {
			case <-claimed: // victim holds a lease: kill it mid-run
			case <-abort: // run drained without the victim claiming
			}
			done := make(chan struct{})
			go func() {
				workers[0].Kill()
				close(done)
			}()
			time.Sleep(20 * time.Millisecond) // let Kill flag the worker first
			close(release)
			<-done
		}()
	} else {
		close(killed)
	}

	return func() {
		close(abort)
		<-killed
		for i, w := range workers {
			if i == 0 && g.o.KillWorker {
				continue // already killed
			}
			w.Stop()
		}
	}, nil
}

// scrapeFleetMetrics pulls the coordinator's fleet counters into the
// result so BENCH_serve.json records the chaos outcome.
func (g *gen) scrapeFleetMetrics() {
	data, err := g.get("/metrics.json")
	if err != nil {
		return
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return
	}
	sum := func(name string) float64 {
		for _, m := range snap.Metrics {
			if m.Name != name {
				continue
			}
			var total float64
			for _, s := range m.Series {
				total += s.Value
			}
			return total
		}
		return 0
	}
	g.res.FleetClaims = sum("dyflow_server_fleet_claims_total")
	g.res.LeaseExpiries = sum("dyflow_server_fleet_lease_expiries_total")
	g.res.StaleResults = sum("dyflow_server_fleet_stale_results_total")
}

// verifyHistory pages through the coordinator's run history with cursor
// pagination and checks the totals line up: every page under the limit,
// no run listed twice, and at least every distinct completed job present.
func (g *gen) verifyHistory() error {
	const limit = 50
	seen := map[string]bool{}
	pages := 0
	token := ""
	for {
		path := fmt.Sprintf("/v1/runs?limit=%d", limit)
		if token != "" {
			path += "&page_token=" + token
		}
		data, err := g.get(path)
		if err != nil {
			return fmt.Errorf("loadgen: history page %d: %w", pages, err)
		}
		var page server.RunPage
		if err := json.Unmarshal(data, &page); err != nil {
			return fmt.Errorf("loadgen: history page %d: %w", pages, err)
		}
		pages++
		if len(page.Runs) > limit {
			return fmt.Errorf("loadgen: history page %d has %d runs, over the %d limit", pages, len(page.Runs), limit)
		}
		for _, st := range page.Runs {
			if seen[st.ID] {
				return fmt.Errorf("loadgen: run %s listed twice across history pages", st.ID)
			}
			seen[st.ID] = true
		}
		token = page.NextPageToken
		if token == "" {
			break
		}
	}
	g.mu.Lock()
	g.res.HistoryRuns = len(seen)
	g.res.HistoryPages = pages
	completed := g.res.Completed
	g.mu.Unlock()
	if len(seen) == 0 && completed > 0 {
		return fmt.Errorf("loadgen: %d jobs completed but the run history listed none", completed)
	}
	return nil
}

// runClient is one closed-loop client: submit, await, fetch, repeat.
func (g *gen) runClient(c int) {
	t := c
	if g.o.Tenants > 0 {
		t = c % g.o.Tenants
	}
	tenant := fmt.Sprintf("tenant-%d", t)
	for i := 0; i < g.o.PerClient; i++ {
		seed := int64(c*g.o.PerClient + i)
		if g.o.Seeds > 0 {
			seed %= int64(g.o.Seeds)
		}
		if err := g.driveJob(tenant, seed); err != nil {
			g.mu.Lock()
			g.res.Errors++
			g.mu.Unlock()
			g.errors.Inc()
		}
	}
}

func (g *gen) driveJob(tenant string, seed int64) error {
	st, err := g.submit(tenant, seed)
	if err != nil {
		return err
	}
	submitted := time.Now()
	if g.o.Stream {
		n, err := g.tailRun(st.ID)
		if err != nil {
			return err
		}
		streamLat := time.Since(submitted).Seconds()
		g.mu.Lock()
		g.res.StreamedRuns++
		g.res.EventsReceived += int64(n)
		g.streamLats = append(g.streamLats, streamLat)
		g.mu.Unlock()
		if st, err = g.status(st.ID); err != nil {
			return err
		}
	}
	for !st.State.Terminal() {
		time.Sleep(g.o.PollEvery)
		if st, err = g.status(st.ID); err != nil {
			return err
		}
	}
	if st.State != server.StateDone {
		return fmt.Errorf("run %s ended %s: %s", st.ID, st.State, st.Error)
	}
	// Fetch the report so the measured loop covers artifact delivery too.
	blob, err := g.get(fmt.Sprintf("/v1/runs/%s/artifacts/%s", st.ID, exp.ArtifactReport))
	if err != nil {
		return err
	}
	if len(blob) == 0 {
		return fmt.Errorf("run %s: empty report artifact", st.ID)
	}
	lat := time.Since(submitted).Seconds()
	g.mu.Lock()
	g.res.Completed++
	g.latencies = append(g.latencies, lat)
	if st.Cached {
		g.res.Cached++
	}
	g.mu.Unlock()
	g.completed.Inc()
	g.latency.Observe(lat)
	if st.Cached {
		g.cached.Inc()
	}
	return nil
}

// submit posts one job, absorbing 429 backpressure with retries.
func (g *gen) submit(tenant string, seed int64) (server.Status, error) {
	body, err := json.Marshal(server.SubmitRequest{
		Tenant: tenant,
		Job:    exp.Job{Scenario: g.o.Scenario, Machine: g.o.Machine, Seed: seed},
	})
	if err != nil {
		return server.Status{}, err
	}
	backoff := g.o.PollEvery
	for {
		resp, err := g.client.Post(g.base+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			return server.Status{}, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return server.Status{}, err
		}
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			g.mu.Lock()
			g.res.Rejected429++
			g.mu.Unlock()
			g.rejected.Inc()
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
			continue
		case resp.StatusCode >= 300:
			return server.Status{}, fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(data))
		}
		var st server.Status
		return st, json.Unmarshal(data, &st)
	}
}

// tailRun opens a run's SSE stream and reads frames until the terminal
// event, returning how many events arrived. The server ends the stream
// right after the terminal event, so a stream that closes without one is
// an error.
func (g *gen) tailRun(id string) (int, error) {
	resp, err := g.streamer.Get(g.base + "/v1/runs/" + id + "/events")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		data, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("stream %s: %s: %s", id, resp.Status, bytes.TrimSpace(data))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	count := 0
	var evType string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // frame boundary
			if evType == "" {
				continue // comment-only frame (e.g. drop notice)
			}
			count++
			if events.Type(evType).Terminal() {
				return count, nil
			}
			evType = ""
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
		}
	}
	if err := sc.Err(); err != nil {
		return count, fmt.Errorf("stream %s: %w", id, err)
	}
	return count, fmt.Errorf("stream %s ended after %d events without a terminal event", id, count)
}

func (g *gen) status(id string) (server.Status, error) {
	data, err := g.get("/v1/runs/" + id)
	if err != nil {
		return server.Status{}, err
	}
	var st server.Status
	return st, json.Unmarshal(data, &st)
}

func (g *gen) get(path string) ([]byte, error) {
	resp, err := g.client.Get(g.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
	}
	return data, nil
}

// quantile is the nearest-rank quantile of sorted samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
