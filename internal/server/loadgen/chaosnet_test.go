package loadgen

import (
	"encoding/json"
	"testing"
	"time"
)

// TestChaosNetSweepScaled is the in-repo, scaled-down cut of the
// `make chaos-net` drill: two emphasized fault seeds (drops, lost
// replies) over a 2-worker fleet plus a sub-second mid-run partition.
// The full five-seed, 3-worker, 10s-partition sweep runs from the CLI
// (dyflow-serve chaosnet) in CI.
func TestChaosNetSweepScaled(t *testing.T) {
	res, err := ChaosNet(ChaosNetOptions{
		Seeds:         []int64{1, 4},
		Workers:       2,
		Clients:       2,
		PerClient:     2,
		LeaseTTL:      1500 * time.Millisecond,
		Partition:     600 * time.Millisecond,
		PartitionTTL:  6 * time.Second,
		MinJobsPerSec: 0.05,
	})
	if res != nil {
		b, _ := json.MarshalIndent(res, "", "  ")
		t.Logf("sweep result:\n%s", b)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("sweep failed: %v", res.Failures)
	}
	// The sweep must have actually injected faults and the plane must
	// have actually retried through them — a silently clean network
	// would pass every assertion while testing nothing.
	var faults, retries float64
	for _, r := range res.Rounds {
		for _, n := range r.Faults {
			faults += float64(n)
		}
		retries += r.RPCRetries
	}
	if faults == 0 {
		t.Fatal("no faults injected across the sweep")
	}
	if retries == 0 {
		t.Fatal("no worker RPC retries recorded despite injected faults")
	}
	if res.Partition == nil || res.Partition.WallSeconds < res.Partition.PartitionSeconds {
		t.Fatalf("partition scenario did not span the partition: %+v", res.Partition)
	}
}
