package loadgen

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"dyflow/internal/obs"
	"dyflow/internal/server"
)

// TestLoadAcceptance is the service's load acceptance run: 8 closed-loop
// clients spread over 4 tenants drive 32 submissions through a server with
// a tight per-tenant quota — every job completes, the tight seed space
// produces cache hits, and the quota enforcement is observable both as
// absorbed 429s and in the server's metrics.
func TestLoadAcceptance(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 4, TenantQuota: 1, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	reg := obs.NewRegistry()
	res, err := Run(Options{
		Addr:      addr,
		Clients:   8,
		Tenants:   4,
		PerClient: 4,
		Seeds:     6, // 32 jobs over 6 seeds: cache hits guaranteed
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 32 || res.Errors != 0 {
		t.Fatalf("completed %d of 32 (%d errors)", res.Completed, res.Errors)
	}
	if res.Cached == 0 {
		t.Fatal("no cache hits despite seed space smaller than job count")
	}
	// Two clients share each tenant under a quota of one in-flight run, so
	// quota 429s must have been absorbed along the way.
	if res.Rejected429 == 0 {
		t.Fatal("no backpressure observed despite tenant quota 1 and 2 clients per tenant")
	}
	if res.LatencyP50 <= 0 || res.LatencyP99 < res.LatencyP50 {
		t.Fatalf("implausible latency percentiles: %+v", res)
	}

	var buf bytes.Buffer
	if err := srv.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "dyflow_server_quota_rejections_total") {
		t.Fatalf("server metrics missing quota rejections:\n%s", text)
	}
	if !strings.Contains(text, "dyflow_server_cache_hits_total") {
		t.Fatal("server metrics missing cache hits")
	}

	// The loadgen's own families registered and counted.
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dyflow_loadgen_completions_total 32") {
		t.Fatalf("loadgen metrics wrong:\n%s", buf.String())
	}
}

// TestLoadFleetWithWorkerKill is the fleet load acceptance run: the
// coordinator has no local pool, three spawned workers execute everything,
// and one of them is hard-killed while holding a lease. Every job still
// completes, and the chaos is visible in the scraped fleet counters.
func TestLoadFleetWithWorkerKill(t *testing.T) {
	srv, err := server.New(server.Config{
		Workers:     -1,
		TenantQuota: -1,
		QueueDepth:  64,
		LeaseTTL:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	res, err := Run(Options{
		Addr:         addr,
		Clients:      8,
		PerClient:    4,
		Seeds:        6,
		FleetWorkers: 3,
		KillWorker:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "fleet" || res.FleetWorkers != 3 || !res.WorkerKilled {
		t.Fatalf("fleet provenance missing from result: %+v", res)
	}
	if res.Completed != 32 || res.Errors != 0 {
		t.Fatalf("completed %d of 32 (%d errors)", res.Completed, res.Errors)
	}
	if res.LeaseExpiries < 1 {
		t.Fatalf("killed worker produced no lease expiry: %+v", res)
	}
	if res.FleetClaims < 1 {
		t.Fatalf("no fleet claims recorded: %+v", res)
	}
}
