package sensor

import (
	"math"
	"testing"

	"dyflow/internal/core/spec"
	"dyflow/internal/fsim"
	"dyflow/internal/msg"
	"dyflow/internal/obs"
	"dyflow/internal/sim"
	"dyflow/internal/stream"
	"dyflow/internal/task"
)

func newSanitizeClient(t *testing.T) *Client {
	t.Helper()
	s := sim.New(1)
	env := &task.Env{Sim: s, FS: fsim.New(s), Streams: stream.NewRegistry(s)}
	bus := msg.NewBus(s)
	wl := &fakeWorkload{placements: map[string]task.Placement{}, running: map[string]bool{}}
	return NewClient("mc", env, bus, "monitor-server", &spec.Config{}, nil, wl, Costs{})
}

// Non-finite readings must be dropped before they reach history windows,
// counted per reason in dyflow_sensor_dropped_samples_total.
func TestSanitizeDropsNonFiniteReadings(t *testing.T) {
	c := newSanitizeClient(t)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)

	in := []float64{1, math.NaN(), 2, math.Inf(1), math.Inf(-1), 3}
	out := c.sanitize(in)
	want := []float64{1, 2, 3}
	if len(out) != len(want) {
		t.Fatalf("sanitize(%v) = %v, want %v", in, out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("sanitize(%v) = %v, want %v", in, out, want)
		}
	}
	if got, _ := reg.Value("dyflow_sensor_dropped_samples_total"); got != 3 {
		t.Fatalf("dyflow_sensor_dropped_samples_total = %v, want 3", got)
	}
	// The shared staged array must not be mutated: dirty input is filtered
	// into a copy.
	if len(in) != 6 || !math.IsNaN(in[1]) || !math.IsInf(in[3], 1) {
		t.Fatalf("input mutated: %v", in)
	}
}

// A clean batch passes through untouched, and a client without a metrics
// registry still sanitizes without panicking (nil-safe counters).
func TestSanitizeCleanAndUnmetered(t *testing.T) {
	c := newSanitizeClient(t)
	clean := []float64{4, 5}
	if out := c.sanitize(clean); len(out) != 2 || out[0] != 4 || out[1] != 5 {
		t.Fatalf("sanitize(%v) = %v", clean, out)
	}
	// No SetMetrics: the drop counter is nil and must be a no-op.
	if out := c.sanitize([]float64{math.NaN(), 7}); len(out) != 1 || out[0] != 7 {
		t.Fatalf("unmetered sanitize = %v, want [7]", out)
	}
}
