// Package sensor implements DYFLOW's Monitor stage (paper §2.1, §3).
//
// The stage is a client/server service. Clients run "near the tasks":
// they connect to the configured information sources (TAU-over-ADIOS2
// streams, raw ADIOS2 streams, disk scans, files, scheduler exit-status
// files), distill sizeable per-process inputs with the preprocess
// operation, apply the group-by/reduction pipeline at task and node-task
// granularity, and ship sensor updates to the server as JSON messages.
//
// The server manages the clients: it filters out-of-order updates, derives
// the cross-task granularities (workflow and node-workflow) from the
// task-level updates, computes joined metrics, and forwards the resulting
// metric values to the Decision stage.
package sensor

import (
	"fmt"
	"time"

	"dyflow/internal/core/spec"
	"dyflow/internal/sim"
)

// Key identifies one metric series.
type Key struct {
	Workflow    string
	Task        string // empty for workflow-granularity series
	Sensor      string
	Granularity spec.Granularity
	Node        string // set for node-task / node-workflow series
}

// String renders the key compactly for logs and traces.
func (k Key) String() string {
	s := fmt.Sprintf("%s/%s@%s", k.Workflow, k.Sensor, k.Granularity)
	if k.Task != "" {
		s += "/" + k.Task
	}
	if k.Node != "" {
		s += "[" + k.Node + "]"
	}
	return s
}

// Update is one client-side sensor reading, shipped to the server as JSON.
type Update struct {
	Workflow    string  `json:"workflow"`
	Task        string  `json:"task"`
	Sensor      string  `json:"sensor"`
	Granularity string  `json:"granularity"` // "task" or "node-task"
	Node        string  `json:"node,omitempty"`
	Value       float64 `json:"value"`
	// Step is the source timestep/index when available.
	Step int `json:"step,omitempty"`
	// GeneratedAt is the virtual time the underlying data was produced
	// (stream record production or file mtime); the server derives the
	// monitoring lag from it.
	GeneratedAt time.Duration `json:"generated_at"`
}

// Batch is the client->server wire message.
type Batch struct {
	Client  string   `json:"client"`
	Updates []Update `json:"updates"`
}

// Metric is a server-side metric value forwarded to the Decision stage.
type Metric struct {
	Key         Key
	Value       float64
	Step        int
	GeneratedAt sim.Time // when the underlying data was produced
	ObservedAt  sim.Time // when the server forwarded the metric
}

// MetricMsg is the JSON form of a Metric on the server->decision link.
type MetricMsg struct {
	Workflow    string  `json:"workflow"`
	Task        string  `json:"task,omitempty"`
	Sensor      string  `json:"sensor"`
	Granularity string  `json:"granularity"`
	Node        string  `json:"node,omitempty"`
	Value       float64 `json:"value"`
	Step        int     `json:"step,omitempty"`
	GeneratedAt int64   `json:"generated_at"`
	ObservedAt  int64   `json:"observed_at"`
}

// ToMsg converts a Metric for the wire.
func (m Metric) ToMsg() MetricMsg {
	return MetricMsg{
		Workflow:    m.Key.Workflow,
		Task:        m.Key.Task,
		Sensor:      m.Key.Sensor,
		Granularity: m.Key.Granularity.String(),
		Node:        m.Key.Node,
		Value:       m.Value,
		Step:        m.Step,
		GeneratedAt: int64(m.GeneratedAt),
		ObservedAt:  int64(m.ObservedAt),
	}
}

// FromMsg converts a wire message back to a Metric.
func FromMsg(w MetricMsg) (Metric, error) {
	g, err := spec.ParseGranularity(w.Granularity)
	if err != nil {
		return Metric{}, err
	}
	return Metric{
		Key: Key{
			Workflow:    w.Workflow,
			Task:        w.Task,
			Sensor:      w.Sensor,
			Granularity: g,
			Node:        w.Node,
		},
		Value:       w.Value,
		Step:        w.Step,
		GeneratedAt: sim.Time(w.GeneratedAt),
		ObservedAt:  sim.Time(w.ObservedAt),
	}, nil
}

// Costs models the client-side cost of acquiring and distilling one sensor
// update, which is what produces the paper's §4.6 lag numbers (~0.2 s for a
// single variable read from disk, ~0.5 s for TAU data actively streamed
// via ADIOS2).
type Costs struct {
	// PollInterval is the scan period for polling sources (disk/file/
	// status). Default 1s.
	PollInterval time.Duration
	// DiskRead is the cost of scanning and reading files for one update.
	// Default 200ms.
	DiskRead time.Duration
	// StreamBase is the fixed cost of decoding one streamed record (TAU
	// ships the value inside a two-dimensional variable, which makes the
	// streamed read ~2.5x the flat disk read — §4.6 reports ~0.5 s vs
	// ~0.2 s). Default 450ms.
	StreamBase time.Duration
	// StreamPerValue is the additional cost per per-rank value in a
	// streamed record (TAU ships one value per process). Default 1ms.
	StreamPerValue time.Duration
}

// DefaultCosts returns the calibrated defaults.
func DefaultCosts() Costs {
	return Costs{
		PollInterval:   time.Second,
		DiskRead:       200 * time.Millisecond,
		StreamBase:     450 * time.Millisecond,
		StreamPerValue: time.Millisecond,
	}
}

func (c Costs) withDefaults() Costs {
	d := DefaultCosts()
	if c.PollInterval <= 0 {
		c.PollInterval = d.PollInterval
	}
	if c.DiskRead <= 0 {
		c.DiskRead = d.DiskRead
	}
	if c.StreamBase <= 0 {
		c.StreamBase = d.StreamBase
	}
	if c.StreamPerValue <= 0 {
		c.StreamPerValue = d.StreamPerValue
	}
	return c
}
