package sensor

import (
	"fmt"
	"math"
	"time"

	"dyflow/internal/core/spec"
	"dyflow/internal/msg"
	"dyflow/internal/obs"
	"dyflow/internal/sim"
	"dyflow/internal/stats"
	"dyflow/internal/stream"
	"dyflow/internal/task"
)

// Workload is the client's view of the running workflow, provided by the
// orchestrator from the WMS: where a task's processes are placed and
// whether it is currently running. The Monitor server keeps clients
// consistent with runtime changes through this indirection.
type Workload interface {
	// Placement returns the task's current placement (nil if not running).
	Placement(workflow, taskName string) task.Placement
	// TaskRunning reports whether the task has a live incarnation.
	TaskRunning(workflow, taskName string) bool
}

// SelfSource resolves orchestrator self-monitoring metric names for
// dyflow-source sensors — the Monitor stage pointed back at the
// orchestrator itself. Implemented by the core orchestrator over its
// metrics registry and flight recorder.
type SelfSource interface {
	// MetricValue returns the metric's current value. ok is false when the
	// name resolves to nothing at all (the sensor then skips the poll).
	MetricValue(name string) (float64, bool)
}

// Client executes the sensors bound to its share of monitored tasks and
// ships updates to the Monitor server. One client can run per compute node
// or a single client can cover the whole workflow; experiments use one by
// default and scale out in the scaling tests.
type Client struct {
	name     string
	env      *task.Env
	ep       *msg.Endpoint
	server   string
	cfg      *spec.Config
	targets  []spec.MonitorTarget
	workload Workload
	costs    Costs
	self     SelfSource
	procs    []*sim.Proc
	sent     int
	// stopping marks a deliberate Stop so interrupted workers exit instead
	// of treating the interrupt as a detached stream and re-probing.
	stopping bool
	// states holds each worker's resumable position, keyed by worker name.
	// It survives Stop/Start cycles and is what Snapshot/Restore carry.
	states map[string]*WorkerState
	spawn  func(name string, fn func(*sim.Proc)) *sim.Proc

	mDropped *obs.CounterVec
}

// Worker phases. Each names the sleep (or blocking receive) a worker parks
// in, so a checkpoint can record exactly where to resume.
const (
	// phaseInterval: sleeping out a poll interval (poll and self workers).
	phaseInterval = "interval"
	// phaseRead: sleeping out the disk-read cost with a pending shipment.
	phaseRead = "read"
	// phaseProbe: sleeping before re-probing for a stream incarnation.
	phaseProbe = "probe"
	// phaseRecv: blocked on the attached stream reader (no wake deadline).
	phaseRecv = "recv"
	// phaseDecode: sleeping out a record's decode cost with a pending
	// shipment.
	phaseDecode = "decode"
)

// PendingShip is a formulated-but-not-yet-shipped reading set: the payload
// a worker is sleeping out a read/decode cost for. Checkpointed so a
// restored worker ships it at the original instant instead of losing it.
type PendingShip struct {
	Readings []float64 `json:"readings"`
	Step     int       `json:"step"`
	GenAt    sim.Time  `json:"gen_at"`
}

// WorkerState is one worker's resumable position: which phase it is parked
// in, the absolute wake instant of its current sleep, the self-poll step
// counter, a mid-read/mid-decode pending shipment, and — for stream
// workers — the reader backlog captured at checkpoint, replayed before
// reattaching.
type WorkerState struct {
	Phase    string        `json:"phase,omitempty"`
	WakeAt   sim.Time      `json:"wake_at,omitempty"`
	Step     int           `json:"step,omitempty"`
	Pending  *PendingShip  `json:"pending,omitempty"`
	Buffered []stream.Step `json:"buffered,omitempty"`

	reader *stream.Reader // live attachment; not serialized
}

// SetSelfSource attaches the orchestrator self-metric resolver used by
// dyflow-source sensors. Call before Start; without one those sensors stay
// inert.
func (c *Client) SetSelfSource(src SelfSource) { c.self = src }

// NewClient creates a monitor client named name, shipping updates to the
// server endpoint, executing the given targets.
func NewClient(name string, env *task.Env, bus *msg.Bus, server string, cfg *spec.Config, targets []spec.MonitorTarget, workload Workload, costs Costs) *Client {
	return &Client{
		name:     name,
		env:      env,
		ep:       bus.Endpoint(name),
		server:   server,
		cfg:      cfg,
		targets:  targets,
		workload: workload,
		costs:    costs.withDefaults(),
	}
}

// Sent returns the number of update batches shipped (for tests).
func (c *Client) Sent() int { return c.sent }

// SetSpawner overrides how the client spawns worker processes (the
// supervisor injects a panic-guarded spawner here). Call before Start.
func (c *Client) SetSpawner(spawn func(name string, fn func(*sim.Proc)) *sim.Proc) {
	c.spawn = spawn
}

// SetMetrics attaches the metrics registry: invalid (NaN/±Inf) sensor
// readings are counted in dyflow_sensor_dropped_samples_total by reason.
func (c *Client) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mDropped = reg.Counter("dyflow_sensor_dropped_samples_total",
		"Sensor readings discarded before metric formulation.", "reason")
}

func (c *Client) spawnProc(name string, fn func(*sim.Proc)) *sim.Proc {
	if c.spawn != nil {
		return c.spawn(name, fn)
	}
	return c.env.Sim.Spawn(name, fn)
}

// Start spawns one worker process per (target, sensor-use) binding. Start
// after Stop (or after Restore) resumes each worker from its recorded
// state.
func (c *Client) Start() {
	c.stopping = false
	c.procs = nil
	if c.states == nil {
		c.states = make(map[string]*WorkerState)
	}
	for _, tg := range c.targets {
		for _, use := range tg.Sensors {
			def := c.cfg.Sensors[use.SensorID]
			if def == nil {
				continue
			}
			tg, use, def := tg, use, def
			pname := fmt.Sprintf("%s/%s.%s.%s", c.name, tg.Workflow, tg.Task, def.ID)
			st := c.states[pname]
			if st == nil {
				st = &WorkerState{}
				c.states[pname] = st
			}
			var body func(p *sim.Proc)
			switch def.Source {
			case spec.SourceTAUADIOS2, spec.SourceADIOS2:
				body = func(p *sim.Proc) { c.streamWorker(p, tg, use, def, st) }
			case spec.SourceDiskScan, spec.SourceFile, spec.SourceErrorStatus, spec.SourceDB:
				body = func(p *sim.Proc) { c.pollWorker(p, tg, use, def, st) }
			case spec.SourceDYFLOW:
				body = func(p *sim.Proc) { c.selfWorker(p, tg, use, def, st) }
			default:
				continue
			}
			c.procs = append(c.procs, c.spawnProc(pname, body))
		}
	}
}

// Stop interrupts all worker processes. Idempotent; a later Start resumes
// the workers from where they stopped.
func (c *Client) Stop() {
	c.stopping = true
	for _, p := range c.procs {
		p.Interrupt(nil)
	}
}

// sleepPhase parks the worker in the given phase until the absolute wake
// instant, recording both so a checkpoint taken mid-sleep can resume the
// remaining time.
func (c *Client) sleepPhase(p *sim.Proc, st *WorkerState, phase string, wake sim.Time) error {
	st.Phase = phase
	st.WakeAt = wake
	d := wake - c.env.Sim.Now()
	if d < 0 {
		d = 0
	}
	return p.Sleep(d)
}

// streamName resolves the stream a streamed sensor reads.
func streamName(tg spec.MonitorTarget, def *spec.SensorDef) string {
	if tg.InfoSource != "" {
		return tg.InfoSource
	}
	if def.Source == spec.SourceTAUADIOS2 {
		return task.ProfileStreamName(tg.Task)
	}
	return ""
}

// streamWorker consumes a staging stream, re-attaching across task
// restarts — the Monitor stage "sets (or resets) connections to input
// streams ... when the workflow tasks start (or restart)".
func (c *Client) streamWorker(p *sim.Proc, tg spec.MonitorTarget, use spec.SensorUse, def *spec.SensorDef, st *WorkerState) {
	name := streamName(tg, def)
	if name == "" {
		return
	}
	// A restored mid-stream worker replays before rejoining the live
	// stream: reattach immediately (the fresh reader buffers records
	// produced from this instant on, standing in for the lost reader),
	// finish the interrupted decode, then decode the checkpointed backlog.
	if st.Pending != nil || len(st.Buffered) > 0 || st.Phase == phaseRecv {
		if stm := c.env.Streams.Lookup(name); stm != nil {
			st.reader = stm.Attach(4, stream.DropOldest)
		}
		if st.Pending != nil {
			pend := *st.Pending
			if err := c.sleepPhase(p, st, phaseDecode, st.WakeAt); err != nil {
				return
			}
			st.Pending = nil
			c.ship(tg, def, pend.Readings, pend.Step, pend.GenAt)
		}
		for len(st.Buffered) > 0 {
			rec := st.Buffered[0]
			st.Buffered = st.Buffered[1:]
			if err := c.decodeShip(p, st, tg, use, def, rec); err != nil {
				return
			}
		}
		if st.reader != nil {
			if !c.consume(p, st, tg, use, def) {
				return
			}
			if err := c.sleepPhase(p, st, phaseProbe, c.env.Sim.Now()+c.costs.PollInterval); err != nil {
				return
			}
		}
	}
	for {
		// Resume a checkpointed probe backoff before probing again.
		if st.Phase == phaseProbe && st.WakeAt > c.env.Sim.Now() {
			if err := c.sleepPhase(p, st, phaseProbe, st.WakeAt); err != nil {
				return
			}
		}
		stm := c.env.Streams.Lookup(name)
		if stm == nil || stm.Closed() {
			if err := c.sleepPhase(p, st, phaseProbe, c.env.Sim.Now()+c.costs.PollInterval); err != nil {
				return
			}
			continue
		}
		st.reader = stm.Attach(4, stream.DropOldest)
		if !c.consume(p, st, tg, use, def) {
			return
		}
		// Wait before probing for the task's next incarnation.
		if err := c.sleepPhase(p, st, phaseProbe, c.env.Sim.Now()+c.costs.PollInterval); err != nil {
			return
		}
	}
}

// consume drains the attached reader until it detaches. A false return
// means the worker must exit (stopped or interrupted).
func (c *Client) consume(p *sim.Proc, st *WorkerState, tg spec.MonitorTarget, use spec.SensorUse, def *spec.SensorDef) bool {
	r := st.reader
	for {
		st.Phase = phaseRecv
		st.WakeAt = 0
		rec, err := r.Get(p)
		if err != nil {
			break // detached (task ended) or interrupted
		}
		if err := c.decodeShip(p, st, tg, use, def, rec); err != nil {
			r.Close()
			st.reader = nil
			return false
		}
	}
	r.Close()
	st.reader = nil
	return !c.stopping && !p.Done() && p.Err() == nil
}

// decodeShip sleeps out a record's decode cost (checkpointable as a
// pending shipment) and ships the formulated readings.
func (c *Client) decodeShip(p *sim.Proc, st *WorkerState, tg spec.MonitorTarget, use spec.SensorUse, def *spec.SensorDef, rec stream.Step) error {
	// Decoding cost scales with the record's per-rank payload.
	cost := c.costs.StreamBase + time.Duration(len(rec.Array))*c.costs.StreamPerValue
	readings, step, genAt := recordReadings(rec, use)
	st.Pending = &PendingShip{Readings: readings, Step: step, GenAt: genAt}
	if err := c.sleepPhase(p, st, phaseDecode, c.env.Sim.Now()+cost); err != nil {
		return err
	}
	pend := *st.Pending
	st.Pending = nil
	c.ship(tg, def, pend.Readings, pend.Step, pend.GenAt)
	return nil
}

// recordReadings extracts the per-process readings from a staged record.
func recordReadings(rec stream.Step, use spec.SensorUse) (readings []float64, step int, genAt sim.Time) {
	if len(rec.Array) > 0 {
		readings = rec.Array
	} else if v, ok := rec.Vars[use.Info]; ok {
		readings = []float64{v}
	} else if use.Info == "" && len(rec.Vars) == 1 {
		for _, v := range rec.Vars {
			readings = []float64{v}
		}
	}
	return readings, rec.Index, rec.Produced
}

// pollWorker periodically scans disk-based sources.
func (c *Client) pollWorker(p *sim.Proc, tg spec.MonitorTarget, use spec.SensorUse, def *spec.SensorDef, st *WorkerState) {
	// Finish a restored mid-read poll first: the readings were already
	// taken, only the remaining disk-read time and the shipment are owed.
	if st.Phase == phaseRead && st.Pending != nil {
		pend := *st.Pending
		if err := c.sleepPhase(p, st, phaseRead, st.WakeAt); err != nil {
			return
		}
		st.Pending = nil
		c.ship(tg, def, pend.Readings, pend.Step, pend.GenAt)
	}
	for {
		wake := c.env.Sim.Now() + c.costs.PollInterval
		if st.Phase == phaseInterval && st.WakeAt > c.env.Sim.Now() {
			wake = st.WakeAt // resume the checkpointed interval
		}
		if err := c.sleepPhase(p, st, phaseInterval, wake); err != nil {
			return
		}
		readings, step, genAt, ok := c.pollOnce(tg, use, def)
		if !ok {
			continue
		}
		// Reading from disk costs real time before the update can ship.
		st.Pending = &PendingShip{Readings: readings, Step: step, GenAt: genAt}
		if err := c.sleepPhase(p, st, phaseRead, c.env.Sim.Now()+c.costs.DiskRead); err != nil {
			return
		}
		pend := *st.Pending
		st.Pending = nil
		c.ship(tg, def, pend.Readings, pend.Step, pend.GenAt)
	}
}

// selfWorker polls an orchestrator self-metric (sensor lag, queue depth,
// stage counters) and ships it like any other sensor reading. The
// generation instant is the poll instant: the orchestrator's state IS the
// data of interest, so there is no detection lag to model — which also
// means the Monitor server counts every poll as a fresh detection.
func (c *Client) selfWorker(p *sim.Proc, tg spec.MonitorTarget, use spec.SensorUse, def *spec.SensorDef, st *WorkerState) {
	if c.self == nil || use.Info == "" {
		return
	}
	for {
		wake := c.env.Sim.Now() + c.costs.PollInterval
		if st.Phase == phaseInterval && st.WakeAt > c.env.Sim.Now() {
			wake = st.WakeAt // resume the checkpointed interval
		}
		if err := c.sleepPhase(p, st, phaseInterval, wake); err != nil {
			return
		}
		v, ok := c.self.MetricValue(use.Info)
		if !ok {
			continue
		}
		st.Step++
		c.ship(tg, def, []float64{v}, st.Step, c.env.Sim.Now())
	}
}

// pollOnce reads the current state of a disk-based source.
func (c *Client) pollOnce(tg spec.MonitorTarget, use spec.SensorUse, def *spec.SensorDef) (readings []float64, step int, genAt sim.Time, ok bool) {
	info := use.Info
	switch def.Source {
	case spec.SourceDiskScan:
		files := c.env.FS.Glob(tg.InfoSource)
		for _, f := range files {
			if v, found := f.Vars[info]; found {
				readings = append(readings, v)
				if f.MTime > genAt {
					genAt = f.MTime
				}
				if int(f.Vars["step"]) > step {
					step = int(f.Vars["step"])
				}
			}
		}
		return readings, step, genAt, len(readings) > 0
	case spec.SourceFile:
		f := c.env.FS.Stat(tg.InfoSource)
		if f == nil {
			return nil, 0, 0, false
		}
		v, found := f.Vars[info]
		if !found {
			return nil, 0, 0, false
		}
		return []float64{v}, int(f.Vars["step"]), f.MTime, true
	case spec.SourceDB:
		if c.env.DB == nil {
			return nil, 0, 0, false
		}
		key := tg.InfoSource
		if key == "" {
			key = use.Info
		}
		rec, found := c.env.DB.Latest(key)
		if !found {
			return nil, 0, 0, false
		}
		return []float64{rec.Value}, rec.Step, rec.At, true
	case spec.SourceErrorStatus:
		path := tg.InfoSource
		if path == "" {
			path = task.StatusPath(tg.Workflow, tg.Task)
		}
		if info == "" {
			info = "exitcode"
		}
		f := c.env.FS.Stat(path)
		if f == nil {
			return nil, 0, 0, false
		}
		v, found := f.Vars[info]
		if !found {
			return nil, 0, 0, false
		}
		return []float64{v}, 0, f.MTime, true
	}
	return nil, 0, 0, false
}

// ship formulates the client-side granularities from per-process readings
// and sends them to the server.
func (c *Client) ship(tg spec.MonitorTarget, def *spec.SensorDef, readings []float64, step int, genAt sim.Time) {
	readings = c.sanitize(readings)
	if len(readings) == 0 {
		return
	}
	// Preprocess distills the staged array into a single reading before
	// metric formulation.
	if def.Preprocess != nil {
		if v, ok := stats.Reduce(*def.Preprocess, readings); ok {
			readings = []float64{v}
		}
	}
	var updates []Update
	for _, g := range def.Groups {
		switch g.Granularity {
		case spec.GranTask, spec.GranWorkflow:
			// Workflow-level series derive from task-level values on the
			// server; both need the task reduction here.
			if g.Granularity == spec.GranWorkflow && def.HasGranularity(spec.GranTask) {
				continue // the task group below already ships the value
			}
			v, ok := stats.Reduce(taskReduction(def), readings)
			if !ok {
				continue
			}
			updates = append(updates, Update{
				Workflow: tg.Workflow, Task: tg.Task, Sensor: def.ID,
				Granularity: spec.GranTask.String(), Value: v, Step: step,
				GeneratedAt: genAt,
			})
		case spec.GranNodeTask, spec.GranNodeWorkflow:
			pl := c.workload.Placement(tg.Workflow, tg.Task)
			if pl == nil {
				continue
			}
			for node, vals := range groupByNode(readings, pl) {
				v, ok := stats.Reduce(g.Reduction, vals)
				if !ok {
					continue
				}
				updates = append(updates, Update{
					Workflow: tg.Workflow, Task: tg.Task, Sensor: def.ID,
					Granularity: spec.GranNodeTask.String(), Node: node,
					Value: v, Step: step, GeneratedAt: genAt,
				})
			}
		}
	}
	updates = dedupUpdates(updates)
	if len(updates) == 0 {
		return
	}
	c.sent++
	c.ep.Send(c.server, Batch{Client: c.name, Updates: updates})
}

// sanitize drops NaN and ±Inf readings before preprocessing: one poisoned
// reading would otherwise contaminate every reduction downstream of it and
// sit in policy history windows for a full window length. Dropped samples
// are counted in dyflow_sensor_dropped_samples_total by reason. The input
// slice may alias a shared staged array, so filtering copies.
func (c *Client) sanitize(readings []float64) []float64 {
	bad := 0
	for _, v := range readings {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad++
		}
	}
	if bad == 0 {
		return readings
	}
	clean := make([]float64, 0, len(readings)-bad)
	for _, v := range readings {
		switch {
		case math.IsNaN(v):
			c.mDropped.With("nan").Inc()
		case math.IsInf(v, 0):
			c.mDropped.With("inf").Inc()
		default:
			clean = append(clean, v)
		}
	}
	return clean
}

// taskReduction picks the reduction op declared for task granularity,
// falling back to the first group's op.
func taskReduction(def *spec.SensorDef) stats.Op {
	for _, g := range def.Groups {
		if g.Granularity == spec.GranTask {
			return g.Reduction
		}
	}
	return def.Groups[0].Reduction
}

// groupByNode splits per-rank readings by hosting node under block
// placement. A single (preprocessed or file-derived) reading is attributed
// to every node the task occupies.
func groupByNode(readings []float64, pl task.Placement) map[string][]float64 {
	out := make(map[string][]float64)
	if len(readings) == 1 && pl.Procs() != 1 {
		for _, node := range pl.Nodes() {
			out[string(node)] = []float64{readings[0]}
		}
		return out
	}
	for rank, v := range readings {
		node := string(pl.RankNode(rank))
		if node == "" {
			node = "unplaced"
		}
		out[node] = append(out[node], v)
	}
	return out
}

// dedupUpdates collapses duplicate (granularity, node) entries, keeping the
// last.
func dedupUpdates(updates []Update) []Update {
	seen := make(map[string]int, len(updates))
	var out []Update
	for _, u := range updates {
		k := u.Granularity + "|" + u.Node
		if idx, ok := seen[k]; ok {
			out[idx] = u
			continue
		}
		seen[k] = len(out)
		out = append(out, u)
	}
	return out
}
