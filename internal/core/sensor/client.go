package sensor

import (
	"fmt"
	"time"

	"dyflow/internal/core/spec"
	"dyflow/internal/msg"
	"dyflow/internal/sim"
	"dyflow/internal/stats"
	"dyflow/internal/stream"
	"dyflow/internal/task"
)

// Workload is the client's view of the running workflow, provided by the
// orchestrator from the WMS: where a task's processes are placed and
// whether it is currently running. The Monitor server keeps clients
// consistent with runtime changes through this indirection.
type Workload interface {
	// Placement returns the task's current placement (nil if not running).
	Placement(workflow, taskName string) task.Placement
	// TaskRunning reports whether the task has a live incarnation.
	TaskRunning(workflow, taskName string) bool
}

// SelfSource resolves orchestrator self-monitoring metric names for
// dyflow-source sensors — the Monitor stage pointed back at the
// orchestrator itself. Implemented by the core orchestrator over its
// metrics registry and flight recorder.
type SelfSource interface {
	// MetricValue returns the metric's current value. ok is false when the
	// name resolves to nothing at all (the sensor then skips the poll).
	MetricValue(name string) (float64, bool)
}

// Client executes the sensors bound to its share of monitored tasks and
// ships updates to the Monitor server. One client can run per compute node
// or a single client can cover the whole workflow; experiments use one by
// default and scale out in the scaling tests.
type Client struct {
	name     string
	env      *task.Env
	ep       *msg.Endpoint
	server   string
	cfg      *spec.Config
	targets  []spec.MonitorTarget
	workload Workload
	costs    Costs
	self     SelfSource
	procs    []*sim.Proc
	sent     int
}

// SetSelfSource attaches the orchestrator self-metric resolver used by
// dyflow-source sensors. Call before Start; without one those sensors stay
// inert.
func (c *Client) SetSelfSource(src SelfSource) { c.self = src }

// NewClient creates a monitor client named name, shipping updates to the
// server endpoint, executing the given targets.
func NewClient(name string, env *task.Env, bus *msg.Bus, server string, cfg *spec.Config, targets []spec.MonitorTarget, workload Workload, costs Costs) *Client {
	return &Client{
		name:     name,
		env:      env,
		ep:       bus.Endpoint(name),
		server:   server,
		cfg:      cfg,
		targets:  targets,
		workload: workload,
		costs:    costs.withDefaults(),
	}
}

// Sent returns the number of update batches shipped (for tests).
func (c *Client) Sent() int { return c.sent }

// Start spawns one worker process per (target, sensor-use) binding.
func (c *Client) Start() {
	for _, tg := range c.targets {
		for _, use := range tg.Sensors {
			def := c.cfg.Sensors[use.SensorID]
			if def == nil {
				continue
			}
			tg, use, def := tg, use, def
			pname := fmt.Sprintf("%s/%s.%s.%s", c.name, tg.Workflow, tg.Task, def.ID)
			var body func(p *sim.Proc)
			switch def.Source {
			case spec.SourceTAUADIOS2, spec.SourceADIOS2:
				body = func(p *sim.Proc) { c.streamWorker(p, tg, use, def) }
			case spec.SourceDiskScan, spec.SourceFile, spec.SourceErrorStatus, spec.SourceDB:
				body = func(p *sim.Proc) { c.pollWorker(p, tg, use, def) }
			case spec.SourceDYFLOW:
				body = func(p *sim.Proc) { c.selfWorker(p, tg, use, def) }
			default:
				continue
			}
			c.procs = append(c.procs, c.env.Sim.Spawn(pname, body))
		}
	}
}

// Stop interrupts all worker processes.
func (c *Client) Stop() {
	for _, p := range c.procs {
		p.Interrupt(nil)
	}
}

// streamName resolves the stream a streamed sensor reads.
func streamName(tg spec.MonitorTarget, def *spec.SensorDef) string {
	if tg.InfoSource != "" {
		return tg.InfoSource
	}
	if def.Source == spec.SourceTAUADIOS2 {
		return task.ProfileStreamName(tg.Task)
	}
	return ""
}

// streamWorker consumes a staging stream, re-attaching across task
// restarts — the Monitor stage "sets (or resets) connections to input
// streams ... when the workflow tasks start (or restart)".
func (c *Client) streamWorker(p *sim.Proc, tg spec.MonitorTarget, use spec.SensorUse, def *spec.SensorDef) {
	name := streamName(tg, def)
	if name == "" {
		return
	}
	for {
		st := c.env.Streams.Lookup(name)
		if st == nil || st.Closed() {
			if err := p.Sleep(c.costs.PollInterval); err != nil {
				return
			}
			continue
		}
		r := st.Attach(4, stream.DropOldest)
		for {
			rec, err := r.Get(p)
			if err != nil {
				break // detached (task ended) or interrupted
			}
			// Decoding cost scales with the record's per-rank payload.
			cost := c.costs.StreamBase + time.Duration(len(rec.Array))*c.costs.StreamPerValue
			if err := p.Sleep(cost); err != nil {
				r.Close()
				return
			}
			readings, step, genAt := recordReadings(rec, use)
			c.ship(tg, def, readings, step, genAt)
		}
		r.Close()
		if p.Done() || p.Err() != nil {
			return
		}
		// Wait before probing for the task's next incarnation.
		if err := p.Sleep(c.costs.PollInterval); err != nil {
			return
		}
	}
}

// recordReadings extracts the per-process readings from a staged record.
func recordReadings(rec stream.Step, use spec.SensorUse) (readings []float64, step int, genAt sim.Time) {
	if len(rec.Array) > 0 {
		readings = rec.Array
	} else if v, ok := rec.Vars[use.Info]; ok {
		readings = []float64{v}
	} else if use.Info == "" && len(rec.Vars) == 1 {
		for _, v := range rec.Vars {
			readings = []float64{v}
		}
	}
	return readings, rec.Index, rec.Produced
}

// pollWorker periodically scans disk-based sources.
func (c *Client) pollWorker(p *sim.Proc, tg spec.MonitorTarget, use spec.SensorUse, def *spec.SensorDef) {
	for {
		if err := p.Sleep(c.costs.PollInterval); err != nil {
			return
		}
		readings, step, genAt, ok := c.pollOnce(tg, use, def)
		if !ok {
			continue
		}
		// Reading from disk costs real time before the update can ship.
		if err := p.Sleep(c.costs.DiskRead); err != nil {
			return
		}
		c.ship(tg, def, readings, step, genAt)
	}
}

// selfWorker polls an orchestrator self-metric (sensor lag, queue depth,
// stage counters) and ships it like any other sensor reading. The
// generation instant is the poll instant: the orchestrator's state IS the
// data of interest, so there is no detection lag to model — which also
// means the Monitor server counts every poll as a fresh detection.
func (c *Client) selfWorker(p *sim.Proc, tg spec.MonitorTarget, use spec.SensorUse, def *spec.SensorDef) {
	if c.self == nil || use.Info == "" {
		return
	}
	step := 0
	for {
		if err := p.Sleep(c.costs.PollInterval); err != nil {
			return
		}
		v, ok := c.self.MetricValue(use.Info)
		if !ok {
			continue
		}
		step++
		c.ship(tg, def, []float64{v}, step, c.env.Sim.Now())
	}
}

// pollOnce reads the current state of a disk-based source.
func (c *Client) pollOnce(tg spec.MonitorTarget, use spec.SensorUse, def *spec.SensorDef) (readings []float64, step int, genAt sim.Time, ok bool) {
	info := use.Info
	switch def.Source {
	case spec.SourceDiskScan:
		files := c.env.FS.Glob(tg.InfoSource)
		for _, f := range files {
			if v, found := f.Vars[info]; found {
				readings = append(readings, v)
				if f.MTime > genAt {
					genAt = f.MTime
				}
				if int(f.Vars["step"]) > step {
					step = int(f.Vars["step"])
				}
			}
		}
		return readings, step, genAt, len(readings) > 0
	case spec.SourceFile:
		f := c.env.FS.Stat(tg.InfoSource)
		if f == nil {
			return nil, 0, 0, false
		}
		v, found := f.Vars[info]
		if !found {
			return nil, 0, 0, false
		}
		return []float64{v}, int(f.Vars["step"]), f.MTime, true
	case spec.SourceDB:
		if c.env.DB == nil {
			return nil, 0, 0, false
		}
		key := tg.InfoSource
		if key == "" {
			key = use.Info
		}
		rec, found := c.env.DB.Latest(key)
		if !found {
			return nil, 0, 0, false
		}
		return []float64{rec.Value}, rec.Step, rec.At, true
	case spec.SourceErrorStatus:
		path := tg.InfoSource
		if path == "" {
			path = task.StatusPath(tg.Workflow, tg.Task)
		}
		if info == "" {
			info = "exitcode"
		}
		f := c.env.FS.Stat(path)
		if f == nil {
			return nil, 0, 0, false
		}
		v, found := f.Vars[info]
		if !found {
			return nil, 0, 0, false
		}
		return []float64{v}, 0, f.MTime, true
	}
	return nil, 0, 0, false
}

// ship formulates the client-side granularities from per-process readings
// and sends them to the server.
func (c *Client) ship(tg spec.MonitorTarget, def *spec.SensorDef, readings []float64, step int, genAt sim.Time) {
	if len(readings) == 0 {
		return
	}
	// Preprocess distills the staged array into a single reading before
	// metric formulation.
	if def.Preprocess != nil {
		if v, ok := stats.Reduce(*def.Preprocess, readings); ok {
			readings = []float64{v}
		}
	}
	var updates []Update
	for _, g := range def.Groups {
		switch g.Granularity {
		case spec.GranTask, spec.GranWorkflow:
			// Workflow-level series derive from task-level values on the
			// server; both need the task reduction here.
			if g.Granularity == spec.GranWorkflow && def.HasGranularity(spec.GranTask) {
				continue // the task group below already ships the value
			}
			v, ok := stats.Reduce(taskReduction(def), readings)
			if !ok {
				continue
			}
			updates = append(updates, Update{
				Workflow: tg.Workflow, Task: tg.Task, Sensor: def.ID,
				Granularity: spec.GranTask.String(), Value: v, Step: step,
				GeneratedAt: genAt,
			})
		case spec.GranNodeTask, spec.GranNodeWorkflow:
			pl := c.workload.Placement(tg.Workflow, tg.Task)
			if pl == nil {
				continue
			}
			for node, vals := range groupByNode(readings, pl) {
				v, ok := stats.Reduce(g.Reduction, vals)
				if !ok {
					continue
				}
				updates = append(updates, Update{
					Workflow: tg.Workflow, Task: tg.Task, Sensor: def.ID,
					Granularity: spec.GranNodeTask.String(), Node: node,
					Value: v, Step: step, GeneratedAt: genAt,
				})
			}
		}
	}
	updates = dedupUpdates(updates)
	if len(updates) == 0 {
		return
	}
	c.sent++
	c.ep.Send(c.server, Batch{Client: c.name, Updates: updates})
}

// taskReduction picks the reduction op declared for task granularity,
// falling back to the first group's op.
func taskReduction(def *spec.SensorDef) stats.Op {
	for _, g := range def.Groups {
		if g.Granularity == spec.GranTask {
			return g.Reduction
		}
	}
	return def.Groups[0].Reduction
}

// groupByNode splits per-rank readings by hosting node under block
// placement. A single (preprocessed or file-derived) reading is attributed
// to every node the task occupies.
func groupByNode(readings []float64, pl task.Placement) map[string][]float64 {
	out := make(map[string][]float64)
	if len(readings) == 1 && pl.Procs() != 1 {
		for _, node := range pl.Nodes() {
			out[string(node)] = []float64{readings[0]}
		}
		return out
	}
	for rank, v := range readings {
		node := string(pl.RankNode(rank))
		if node == "" {
			node = "unplaced"
		}
		out[node] = append(out[node], v)
	}
	return out
}

// dedupUpdates collapses duplicate (granularity, node) entries, keeping the
// last.
func dedupUpdates(updates []Update) []Update {
	seen := make(map[string]int, len(updates))
	var out []Update
	for _, u := range updates {
		k := u.Granularity + "|" + u.Node
		if idx, ok := seen[k]; ok {
			out[idx] = u
			continue
		}
		seen[k] = len(out)
		out = append(out, u)
	}
	return out
}
