package sensor

import (
	"sort"

	"dyflow/internal/sim"
	"dyflow/internal/stats"
)

// SeriesEntry is one (key, latest metric) pair in a server snapshot.
type SeriesEntry struct {
	Key    Key    `json:"key"`
	Metric Metric `json:"metric"`
}

// GenEntry is one (key, last generation time) pair — the server's
// detection-dedup cursor for a series.
type GenEntry struct {
	Key Key      `json:"key"`
	At  sim.Time `json:"at"`
}

// LagEntry is one sensor's accumulated detection-lag statistics.
type LagEntry struct {
	Sensor string             `json:"sensor"`
	Lag    stats.WelfordState `json:"lag"`
}

// ServerSnapshot is the Monitor server's checkpointable state: the
// out-of-order filter marks, the latest value per series (the join and
// group-by working set), the per-series generation cursors, per-sensor lag
// accumulators, and the forwarding counters. Map-keyed state is exported
// as sorted slices so snapshots are byte-stable.
type ServerSnapshot struct {
	Filter    map[string]uint64 `json:"filter,omitempty"`
	Last      []SeriesEntry     `json:"last,omitempty"`
	LastGen   []GenEntry        `json:"last_gen,omitempty"`
	Lags      []LagEntry        `json:"lags,omitempty"`
	Forwarded int               `json:"forwarded"`
	Repolled  int               `json:"repolled"`
	Dropped   int               `json:"dropped"`
}

func keyLess(a, b Key) bool {
	if a.Workflow != b.Workflow {
		return a.Workflow < b.Workflow
	}
	if a.Task != b.Task {
		return a.Task < b.Task
	}
	if a.Sensor != b.Sensor {
		return a.Sensor < b.Sensor
	}
	if a.Granularity != b.Granularity {
		return a.Granularity < b.Granularity
	}
	return a.Node < b.Node
}

// Snapshot exports the server state.
func (sv *Server) Snapshot() ServerSnapshot {
	snap := ServerSnapshot{
		Filter:    sv.filter.State(),
		Forwarded: sv.forwarded,
		Repolled:  sv.repolled,
		Dropped:   sv.dropped,
	}
	for k, m := range sv.last {
		snap.Last = append(snap.Last, SeriesEntry{Key: k, Metric: m})
	}
	sort.Slice(snap.Last, func(i, j int) bool { return keyLess(snap.Last[i].Key, snap.Last[j].Key) })
	for k, at := range sv.lastGen {
		snap.LastGen = append(snap.LastGen, GenEntry{Key: k, At: at})
	}
	sort.Slice(snap.LastGen, func(i, j int) bool { return keyLess(snap.LastGen[i].Key, snap.LastGen[j].Key) })
	for id, w := range sv.lags {
		snap.Lags = append(snap.Lags, LagEntry{Sensor: id, Lag: w.State()})
	}
	sort.Slice(snap.Lags, func(i, j int) bool { return snap.Lags[i].Sensor < snap.Lags[j].Sensor })
	return snap
}

// Restore replaces the server state with the snapshot. Call before Start.
func (sv *Server) Restore(snap ServerSnapshot) {
	sv.filter.RestoreState(snap.Filter)
	sv.forwarded = snap.Forwarded
	sv.repolled = snap.Repolled
	sv.dropped = snap.Dropped
	sv.last = make(map[Key]Metric, len(snap.Last))
	for _, e := range snap.Last {
		sv.last[e.Key] = e.Metric
	}
	sv.lastGen = make(map[Key]sim.Time, len(snap.LastGen))
	for _, e := range snap.LastGen {
		sv.lastGen[e.Key] = e.At
	}
	sv.lags = make(map[string]*stats.Welford, len(snap.Lags))
	for _, e := range snap.Lags {
		sv.lags[e.Sensor] = stats.RestoreWelford(e.Lag)
	}
}

// WorkerSnap is one client worker's checkpointed position.
type WorkerSnap struct {
	Name  string      `json:"name"`
	State WorkerState `json:"state"`
}

// ClientSnapshot is one Monitor client's checkpointable state: the batch
// counter and every worker's resumable position (phase, wake instant,
// pending shipment, reader backlog).
type ClientSnapshot struct {
	Name    string       `json:"name"`
	Sent    int          `json:"sent"`
	Workers []WorkerSnap `json:"workers,omitempty"`
}

// Snapshot exports the client state, workers sorted by name. For a worker
// blocked on a live stream reader the snapshot folds the reader's buffered
// backlog in behind any replay-pending records, preserving delivery order.
func (c *Client) Snapshot() ClientSnapshot {
	snap := ClientSnapshot{Name: c.name, Sent: c.sent}
	names := make([]string, 0, len(c.states))
	for n := range c.states {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := c.states[n]
		ws := WorkerState{
			Phase:   st.Phase,
			WakeAt:  st.WakeAt,
			Step:    st.Step,
			Pending: st.Pending,
		}
		ws.Buffered = append(ws.Buffered, st.Buffered...)
		if st.reader != nil {
			ws.Buffered = append(ws.Buffered, st.reader.Buffered()...)
		}
		snap.Workers = append(snap.Workers, WorkerSnap{Name: n, State: ws})
	}
	return snap
}

// Restore replaces the client's worker states with the snapshot. Call
// before Start; the spawned workers resume from the restored positions.
func (c *Client) Restore(snap ClientSnapshot) {
	c.sent = snap.Sent
	c.states = make(map[string]*WorkerState, len(snap.Workers))
	for _, w := range snap.Workers {
		ws := w.State
		c.states[w.Name] = &ws
	}
}
