package sensor

import (
	"testing"
	"time"

	"dyflow/internal/core/spec"
	"dyflow/internal/db"
	"dyflow/internal/fsim"
	"dyflow/internal/msg"
	"dyflow/internal/sim"
	"dyflow/internal/stream"
	"dyflow/internal/task"
	"dyflow/internal/trace"
)

type fakeWorkload struct {
	placements map[string]task.Placement
	running    map[string]bool
}

func (f *fakeWorkload) Placement(wf, t string) task.Placement { return f.placements[wf+"/"+t] }
func (f *fakeWorkload) TaskRunning(wf, t string) bool         { return f.running[wf+"/"+t] }

type rig struct {
	s      *sim.Sim
	env    *task.Env
	bus    *msg.Bus
	server *Server
	dec    *msg.Endpoint // decision endpoint capturing metrics
	wl     *fakeWorkload
}

func newRig(t *testing.T, cfg *spec.Config) *rig {
	t.Helper()
	s := sim.New(1)
	env := &task.Env{Sim: s, FS: fsim.New(s), Streams: stream.NewRegistry(s)}
	bus := msg.NewBus(s)
	dec := bus.Endpoint("decision")
	server := NewServer(s, bus, "monitor-server", "decision", cfg)
	server.Start()
	wl := &fakeWorkload{placements: map[string]task.Placement{}, running: map[string]bool{}}
	return &rig{s: s, env: env, bus: bus, server: server, dec: dec, wl: wl}
}

// drainMetrics collects all metrics delivered to the decision endpoint.
func (r *rig) drainMetrics(t *testing.T) []Metric {
	t.Helper()
	var out []Metric
	for {
		env, ok := r.dec.TryRecv()
		if !ok {
			return out
		}
		var msgs []MetricMsg
		if err := env.Decode(&msgs); err != nil {
			t.Fatal(err)
		}
		for _, w := range msgs {
			m, err := FromMsg(w)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, m)
		}
	}
}

func compile(t *testing.T, xml string) *spec.Config {
	t.Helper()
	cfg, err := spec.CompileString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

const paceCfg = `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <group-by>
          <group granularity="task" reduction-operation="MAX"/>
          <group granularity="node-task" reduction-operation="MAX"/>
        </group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Iso" workflowId="GS" info-source="tau.Iso">
        <use-sensor sensor-id="PACE" info="looptime"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="GT" threshold="1"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action>STOP</action>
      </policy>
    </policies>
    <apply-on workflowId="GS"><apply-policy policyId="P"><act-on-tasks>Iso</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`

func TestTAUStreamSensorPipeline(t *testing.T) {
	cfg := compile(t, paceCfg)
	r := newRig(t, cfg)
	r.wl.placements["GS/Iso"] = task.Placement{"node000": 2, "node001": 2}
	r.wl.running["GS/Iso"] = true

	client := NewClient("client0", r.env, r.bus, "monitor-server", cfg, cfg.Targets, r.wl, Costs{})
	client.Start()

	// Emit two profile records on the TAU stream.
	tau := r.env.Streams.Open("tau.Iso")
	r.s.Spawn("emitter", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		tau.Put(p, stream.Step{Index: 1, Vars: map[string]float64{"looptime": 40}, Array: []float64{38, 40, 36, 39}})
		p.Sleep(2 * time.Second)
		tau.Put(p, stream.Step{Index: 2, Vars: map[string]float64{"looptime": 42}, Array: []float64{41, 42, 40, 39}})
	})
	if err := r.s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	client.Stop()
	metrics := r.drainMetrics(t)

	var taskVals []float64
	nodeVals := map[string][]float64{}
	for _, m := range metrics {
		switch m.Key.Granularity {
		case spec.GranTask:
			if m.Key.Task != "Iso" || m.Key.Workflow != "GS" {
				t.Fatalf("bad key %v", m.Key)
			}
			taskVals = append(taskVals, m.Value)
		case spec.GranNodeTask:
			nodeVals[m.Key.Node] = append(nodeVals[m.Key.Node], m.Value)
		}
	}
	if len(taskVals) != 2 || taskVals[0] != 40 || taskVals[1] != 42 {
		t.Fatalf("task metrics = %v, want [40 42] (MAX of ranks)", taskVals)
	}
	// node000 hosts ranks 0-1, node001 ranks 2-3.
	if got := nodeVals["node000"]; len(got) != 2 || got[0] != 40 || got[1] != 42 {
		t.Fatalf("node000 = %v, want [40 42]", got)
	}
	if got := nodeVals["node001"]; len(got) != 2 || got[0] != 39 || got[1] != 40 {
		t.Fatalf("node001 = %v, want [39 40]", got)
	}
	// Lag: stream base cost (150ms) + 4 values (4ms) + zero bus latency.
	lag := r.server.Lag("PACE")
	if lag.N() == 0 || lag.Mean() < 0.1 || lag.Mean() > 1.0 {
		t.Fatalf("lag mean = %v s (n=%d), want sub-second", lag.Mean(), lag.N())
	}
}

const nstepsCfg = `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="NSTEPS" type="DISKSCAN">
        <group-by>
          <group granularity="task" reduction-operation="MAX"/>
          <group granularity="workflow" reduction-operation="MAX"/>
        </group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="XGC1" workflowId="FUSION" info-source="out/xgc1.*.bp">
        <use-sensor sensor-id="NSTEPS" info="step"/>
      </monitor-task>
      <monitor-task name="XGCA" workflowId="FUSION" info-source="out/xgca.*.bp">
        <use-sensor sensor-id="NSTEPS" info="step"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="GT" threshold="500"/>
        <sensors-to-use><use-sensor id="NSTEPS" granularity="workflow"/></sensors-to-use>
        <action>STOP</action>
      </policy>
    </policies>
    <apply-on workflowId="FUSION"><apply-policy policyId="P"><act-on-tasks>XGCA</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`

func TestDiskScanAndWorkflowDerivation(t *testing.T) {
	cfg := compile(t, nstepsCfg)
	r := newRig(t, cfg)
	r.wl.placements["FUSION/XGC1"] = task.Placement{"node000": 2}
	r.wl.placements["FUSION/XGCA"] = task.Placement{"node001": 2}

	client := NewClient("client0", r.env, r.bus, "monitor-server", cfg, cfg.Targets, r.wl, Costs{})
	client.Start()

	// XGC1 writes outputs for steps 100, 200; XGCa for step 300.
	r.env.FS.Write("out/xgc1.100.bp", 1, map[string]float64{"step": 100})
	r.s.At(3*time.Second, func() {
		r.env.FS.Write("out/xgc1.200.bp", 1, map[string]float64{"step": 200})
		r.env.FS.Write("out/xgca.300.bp", 1, map[string]float64{"step": 300})
	})
	if err := r.s.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	client.Stop()
	metrics := r.drainMetrics(t)

	var lastWorkflow float64
	taskLast := map[string]float64{}
	sawWorkflow := false
	for _, m := range metrics {
		switch m.Key.Granularity {
		case spec.GranTask:
			taskLast[m.Key.Task] = m.Value
		case spec.GranWorkflow:
			sawWorkflow = true
			if m.Key.Task != "" {
				t.Fatalf("workflow metric carries task: %v", m.Key)
			}
			lastWorkflow = m.Value
		}
	}
	if !sawWorkflow {
		t.Fatal("no workflow-granularity metric derived")
	}
	if taskLast["XGC1"] != 200 || taskLast["XGCA"] != 300 {
		t.Fatalf("task metrics = %v", taskLast)
	}
	if lastWorkflow != 300 {
		t.Fatalf("workflow metric = %v, want 300 (MAX across tasks)", lastWorkflow)
	}
}

const statusCfg = `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="STATUS" type="ERRORSTATUS">
        <group-by><group granularity="task" reduction-operation="FIRST"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="LAMMPS" workflowId="MD">
        <use-sensor sensor-id="STATUS" info="exitcode"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="GT" threshold="128"/>
        <sensors-to-use><use-sensor id="STATUS" granularity="task"/></sensors-to-use>
        <action>RESTART</action>
      </policy>
    </policies>
    <apply-on workflowId="MD"><apply-policy policyId="P"><act-on-tasks>LAMMPS</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`

func TestErrorStatusSensor(t *testing.T) {
	cfg := compile(t, statusCfg)
	r := newRig(t, cfg)
	r.wl.placements["MD/LAMMPS"] = task.Placement{"node000": 4}

	client := NewClient("client0", r.env, r.bus, "monitor-server", cfg, cfg.Targets, r.wl, Costs{})
	client.Start()

	// The scheduler writes the failure exit code at t=5s.
	r.s.At(5*time.Second, func() {
		r.env.FS.Write(task.StatusPath("MD", "LAMMPS"), 0, map[string]float64{"exitcode": 137})
	})
	if err := r.s.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	client.Stop()
	metrics := r.drainMetrics(t)
	if len(metrics) == 0 {
		t.Fatal("no STATUS metrics")
	}
	for _, m := range metrics {
		if m.Value != 137 {
			t.Fatalf("STATUS value = %v, want 137", m.Value)
		}
	}
	// Detection happens within poll + disk read of the write.
	first := metrics[0]
	lag := first.ObservedAt - 5*time.Second
	if lag <= 0 || lag > 2*time.Second {
		t.Fatalf("detection lag = %v, want (0, 2s]", lag)
	}
}

const joinCfg = `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="CYCLES" type="ADIOS2">
        <group-by><group granularity="task" reduction-operation="LAST"/></group-by>
      </sensor>
      <sensor id="IPC" type="ADIOS2">
        <group-by><group granularity="task" reduction-operation="LAST"/></group-by>
        <join sensor-id="CYCLES" operation="DIV"/>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="T" workflowId="W" info-source="perf.T">
        <use-sensor sensor-id="CYCLES" info="cycles"/>
        <use-sensor sensor-id="IPC" info="instructions"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="LT" threshold="0.5"/>
        <sensors-to-use><use-sensor id="IPC" granularity="task"/></sensors-to-use>
        <action>ADDCPU</action>
      </policy>
    </policies>
    <apply-on workflowId="W"><apply-policy policyId="P"><act-on-tasks>T</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`

func TestJoinComputesDerivedMetric(t *testing.T) {
	cfg := compile(t, joinCfg)
	r := newRig(t, cfg)
	r.wl.placements["W/T"] = task.Placement{"node000": 1}
	r.wl.running["W/T"] = true

	client := NewClient("client0", r.env, r.bus, "monitor-server", cfg, cfg.Targets, r.wl, Costs{})
	client.Start()

	perf := r.env.Streams.Open("perf.T")
	r.s.Spawn("emitter", func(p *sim.Proc) {
		p.Sleep(time.Second)
		// One record carrying both variables; each sensor reads its own.
		perf.Put(p, stream.Step{Index: 1, Vars: map[string]float64{"cycles": 1000, "instructions": 800}})
		p.Sleep(2 * time.Second)
		perf.Put(p, stream.Step{Index: 2, Vars: map[string]float64{"cycles": 1000, "instructions": 400}})
	})
	if err := r.s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	client.Stop()
	metrics := r.drainMetrics(t)
	var ipc []float64
	for _, m := range metrics {
		if m.Key.Sensor == "IPC" {
			ipc = append(ipc, m.Value)
		}
	}
	if len(ipc) != 2 {
		t.Fatalf("IPC metrics = %v", ipc)
	}
	if ipc[0] != 0.8 || ipc[1] != 0.4 {
		t.Fatalf("IPC = %v, want [0.8 0.4] (instructions DIV cycles)", ipc)
	}
}

func TestPreprocessDistillsArray(t *testing.T) {
	cfg := compile(t, `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="MEM" type="ADIOS2">
        <preprocess operation="SUM"/>
        <group-by><group granularity="task" reduction-operation="LAST"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="T" workflowId="W" info-source="mem.T">
        <use-sensor sensor-id="MEM"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="GT" threshold="100"/>
        <sensors-to-use><use-sensor id="MEM" granularity="task"/></sensors-to-use>
        <action>ADDCPU</action>
      </policy>
    </policies>
    <apply-on workflowId="W"><apply-policy policyId="P"><act-on-tasks>T</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`)
	r := newRig(t, cfg)
	r.wl.placements["W/T"] = task.Placement{"node000": 4}
	r.wl.running["W/T"] = true
	client := NewClient("client0", r.env, r.bus, "monitor-server", cfg, cfg.Targets, r.wl, Costs{})
	client.Start()

	st := r.env.Streams.Open("mem.T")
	r.s.Spawn("emitter", func(p *sim.Proc) {
		p.Sleep(time.Second)
		st.Put(p, stream.Step{Index: 1, Array: []float64{10, 20, 30, 40}})
	})
	if err := r.s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	client.Stop()
	metrics := r.drainMetrics(t)
	if len(metrics) != 1 || metrics[0].Value != 100 {
		t.Fatalf("metrics = %+v, want single SUM=100", metrics)
	}
}

func TestServerDropsStaleBatches(t *testing.T) {
	cfg := compile(t, paceCfg)
	r := newRig(t, cfg)

	// Deliver batches with inverted latency so seq 2 arrives before seq 1.
	latencies := []time.Duration{400 * time.Millisecond, 10 * time.Millisecond}
	i := 0
	r.bus.Latency = func(from, to string) time.Duration {
		if from != "client0" {
			return 0
		}
		d := latencies[i%2]
		i++
		return d
	}
	client := r.bus.Endpoint("client0")
	r.s.Spawn("sender", func(p *sim.Proc) {
		client.Send("monitor-server", Batch{Client: "client0", Updates: []Update{
			{Workflow: "GS", Task: "Iso", Sensor: "PACE", Granularity: "task", Value: 1},
		}})
		client.Send("monitor-server", Batch{Client: "client0", Updates: []Update{
			{Workflow: "GS", Task: "Iso", Sensor: "PACE", Granularity: "task", Value: 2},
		}})
	})
	if err := r.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if r.server.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.server.Dropped())
	}
	metrics := r.drainMetrics(t)
	if len(metrics) != 1 || metrics[0].Value != 2 {
		t.Fatalf("metrics = %+v, want only the fresh value 2", metrics)
	}
}

func TestClientReattachesAfterStreamRestart(t *testing.T) {
	cfg := compile(t, paceCfg)
	r := newRig(t, cfg)
	r.wl.placements["GS/Iso"] = task.Placement{"node000": 1}
	r.wl.running["GS/Iso"] = true
	client := NewClient("client0", r.env, r.bus, "monitor-server", cfg, cfg.Targets, r.wl, Costs{})
	client.Start()

	r.s.Spawn("emitter", func(p *sim.Proc) {
		st := r.env.Streams.Open("tau.Iso")
		p.Sleep(time.Second)
		st.Put(p, stream.Step{Index: 1, Vars: map[string]float64{"looptime": 10}})
		st.Close() // task ends
		p.Sleep(3 * time.Second)
		st2 := r.env.Streams.Open("tau.Iso") // restart reopens
		p.Sleep(2 * time.Second)
		st2.Put(p, stream.Step{Index: 2, Vars: map[string]float64{"looptime": 20}})
		st2.Close()
	})
	if err := r.s.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	client.Stop()
	metrics := r.drainMetrics(t)
	var vals []float64
	for _, m := range metrics {
		if m.Key.Granularity == spec.GranTask {
			vals = append(vals, m.Value)
		}
	}
	if len(vals) != 2 || vals[0] != 10 || vals[1] != 20 {
		t.Fatalf("task metrics across restart = %v, want [10 20]", vals)
	}
}

const nodeWorkflowCfg = `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="MEM" type="TAUADIOS2">
        <group-by>
          <group granularity="node-task" reduction-operation="SUM"/>
          <group granularity="node-workflow" reduction-operation="SUM"/>
        </group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="A" workflowId="W" info-source="tau.A">
        <use-sensor sensor-id="MEM"/>
      </monitor-task>
      <monitor-task name="B" workflowId="W" info-source="tau.B">
        <use-sensor sensor-id="MEM"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="GT" threshold="1000"/>
        <sensors-to-use><use-sensor id="MEM" granularity="node-workflow"/></sensors-to-use>
        <action>RESTART</action>
      </policy>
    </policies>
    <apply-on workflowId="W"><apply-policy policyId="P"><act-on-tasks>A</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`

// TestNodeWorkflowDerivation: per-node memory from two co-located tasks is
// summed into a node-workflow series — the paper's "physical memory used by
// the workflow on each compute node" example.
func TestNodeWorkflowDerivation(t *testing.T) {
	cfg := compile(t, nodeWorkflowCfg)
	r := newRig(t, cfg)
	// Both tasks share node000; task A also spans node001.
	r.wl.placements["W/A"] = task.Placement{"node000": 1, "node001": 1}
	r.wl.placements["W/B"] = task.Placement{"node000": 2}
	r.wl.running["W/A"] = true
	r.wl.running["W/B"] = true
	client := NewClient("client0", r.env, r.bus, "monitor-server", cfg, cfg.Targets, r.wl, Costs{})
	client.Start()

	sa := r.env.Streams.Open("tau.A")
	sb := r.env.Streams.Open("tau.B")
	r.s.Spawn("emitters", func(p *sim.Proc) {
		p.Sleep(time.Second)
		sa.Put(p, stream.Step{Index: 1, Array: []float64{100, 50}}) // rank0@node000, rank1@node001
		p.Sleep(time.Second)
		sb.Put(p, stream.Step{Index: 1, Array: []float64{30, 20}}) // both @node000
	})
	if err := r.s.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	client.Stop()

	m, ok := r.server.Latest(Key{Workflow: "W", Sensor: "MEM", Granularity: spec.GranNodeWorkflow, Node: "node000"})
	if !ok {
		t.Fatal("no node-workflow series for node000")
	}
	// node000 carries A's rank 0 (100) plus B's ranks (30+20).
	if m.Value != 150 {
		t.Fatalf("node000 workflow MEM = %v, want 150", m.Value)
	}
	m1, ok := r.server.Latest(Key{Workflow: "W", Sensor: "MEM", Granularity: spec.GranNodeWorkflow, Node: "node001"})
	if !ok || m1.Value != 50 {
		t.Fatalf("node001 workflow MEM = %v, %v, want 50", m1.Value, ok)
	}
}

// TestJoinAtWorkflowGranularity covers the LAG-style cross-granularity
// join: a task-level series joined against the workflow-level front.
func TestJoinAtWorkflowGranularity(t *testing.T) {
	cfg := compile(t, `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="NSTEPS" type="DISKSCAN">
        <group-by>
          <group granularity="task" reduction-operation="MAX"/>
          <group granularity="workflow" reduction-operation="MAX"/>
        </group-by>
      </sensor>
      <sensor id="LAG" type="DISKSCAN">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
        <join sensor-id="NSTEPS" granularity="workflow" operation="SUB"/>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="A" workflowId="W" info-source="out/a.*">
        <use-sensor sensor-id="NSTEPS" info="step"/>
        <use-sensor sensor-id="LAG" info="step"/>
      </monitor-task>
      <monitor-task name="B" workflowId="W" info-source="out/b.*">
        <use-sensor sensor-id="NSTEPS" info="step"/>
        <use-sensor sensor-id="LAG" info="step"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="LT" threshold="0"/>
        <sensors-to-use><use-sensor id="LAG" granularity="task"/></sensors-to-use>
        <action>START</action>
      </policy>
    </policies>
    <apply-on workflowId="W"><apply-policy policyId="P" assess-task="B"><act-on-tasks>B</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`)
	r := newRig(t, cfg)
	client := NewClient("client0", r.env, r.bus, "monitor-server", cfg, cfg.Targets, r.wl, Costs{})
	client.Start()

	r.env.FS.Write("out/a.100", 1, map[string]float64{"step": 100})
	r.env.FS.Write("out/b.40", 1, map[string]float64{"step": 40})
	if err := r.s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	client.Stop()

	// B's LAG = own front (40) - workflow front (100) = -60.
	m, ok := r.server.Latest(Key{Workflow: "W", Task: "B", Sensor: "LAG", Granularity: spec.GranTask})
	if !ok {
		t.Fatal("no LAG series for B")
	}
	if m.Value != -60 {
		t.Fatalf("LAG(B) = %v, want -60", m.Value)
	}
	// A is at the front: LAG(A) = 0.
	ma, ok := r.server.Latest(Key{Workflow: "W", Task: "A", Sensor: "LAG", Granularity: spec.GranTask})
	if !ok || ma.Value != 0 {
		t.Fatalf("LAG(A) = %v, %v, want 0", ma.Value, ok)
	}
}

// TestFileSourceSensor covers the FILE source type: a single file polled
// for a named variable.
func TestFileSourceSensor(t *testing.T) {
	cfg := compile(t, `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PROGRESS" type="FILE">
        <group-by><group granularity="task" reduction-operation="LAST"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Sim" workflowId="W" info-source="progress/sim">
        <use-sensor sensor-id="PROGRESS" info="step"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="GT" threshold="100"/>
        <sensors-to-use><use-sensor id="PROGRESS" granularity="task"/></sensors-to-use>
        <action>STOP</action>
      </policy>
    </policies>
    <apply-on workflowId="W"><apply-policy policyId="P"><act-on-tasks>Sim</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`)
	r := newRig(t, cfg)
	r.wl.placements["W/Sim"] = task.Placement{"node000": 2}
	client := NewClient("client0", r.env, r.bus, "monitor-server", cfg, cfg.Targets, r.wl, Costs{})
	client.Start()

	r.s.At(2*time.Second, func() { r.env.FS.WriteVar("progress/sim", "step", 42) })
	r.s.At(5*time.Second, func() { r.env.FS.WriteVar("progress/sim", "step", 57) })
	if err := r.s.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	client.Stop()
	m, ok := r.server.Latest(Key{Workflow: "W", Task: "Sim", Sensor: "PROGRESS", Granularity: spec.GranTask})
	if !ok || m.Value != 57 {
		t.Fatalf("PROGRESS = %v, %v, want 57", m.Value, ok)
	}
}

// TestDBSourceSensor covers the DB source type: the sensor polls the
// latest record published under a key in the in-cluster database service.
func TestDBSourceSensor(t *testing.T) {
	cfg := compile(t, `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE_DB" type="DB">
        <group-by><group granularity="task" reduction-operation="LAST"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Sim" workflowId="W" info-source="pace/sim">
        <use-sensor sensor-id="PACE_DB"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="GT" threshold="100"/>
        <sensors-to-use><use-sensor id="PACE_DB" granularity="task"/></sensors-to-use>
        <action>ADDCPU</action>
      </policy>
    </policies>
    <apply-on workflowId="W"><apply-policy policyId="P"><act-on-tasks>Sim</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`)
	r := newRig(t, cfg)
	r.env.DB = db.New(r.s, 0)
	r.wl.placements["W/Sim"] = task.Placement{"node000": 2}
	client := NewClient("client0", r.env, r.bus, "monitor-server", cfg, cfg.Targets, r.wl, Costs{})
	client.Start()

	r.s.At(2*time.Second, func() { r.env.DB.Put("pace/sim", 3, 12.5) })
	r.s.At(5*time.Second, func() { r.env.DB.Put("pace/sim", 4, 13.5) })
	if err := r.s.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	client.Stop()
	m, ok := r.server.Latest(Key{Workflow: "W", Task: "Sim", Sensor: "PACE_DB", Granularity: spec.GranTask})
	if !ok || m.Value != 13.5 || m.Step != 4 {
		t.Fatalf("PACE_DB = %+v, %v", m, ok)
	}
	if m.GeneratedAt != 5*time.Second {
		t.Fatalf("genAt = %v, want publish time", m.GeneratedAt)
	}
}

func TestForwardedCountsDetectionsNotRepolls(t *testing.T) {
	cfg := compile(t, paceCfg)
	r := newRig(t, cfg)
	tr := trace.New()
	r.server.SetTracer(tr)

	client := r.bus.Endpoint("client0")
	send := func(genAt time.Duration, v float64) {
		client.Send("monitor-server", Batch{Client: "client0", Updates: []Update{
			{Workflow: "GS", Task: "Iso", Sensor: "PACE", Granularity: "task",
				Value: v, GeneratedAt: sim.Time(genAt)},
		}})
	}
	r.s.At(1*time.Second, func() { send(1*time.Second, 10) }) // detection
	r.s.At(2*time.Second, func() { send(1*time.Second, 10) }) // re-poll of the same data
	r.s.At(3*time.Second, func() { send(1*time.Second, 10) }) // re-poll
	r.s.At(4*time.Second, func() { send(4*time.Second, 20) }) // new generation: detection
	if err := r.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}

	// All four metrics still travel to Decision; the counters split them
	// into fresh detections vs stale re-polls, matching the lag samples.
	if got := len(r.drainMetrics(t)); got != 4 {
		t.Fatalf("metrics delivered = %d, want 4", got)
	}
	if r.server.Forwarded() != 2 {
		t.Fatalf("forwarded = %d, want 2 detections (stale re-polls counted)", r.server.Forwarded())
	}
	if r.server.Repolled() != 2 {
		t.Fatalf("repolled = %d, want 2", r.server.Repolled())
	}
	if lag := r.server.Lag("PACE"); lag.N() != 2 {
		t.Fatalf("lag samples = %d, want 2 (one per detection)", lag.N())
	}
	if tr.Counter("monitor.forwarded") != 2 || tr.Counter("monitor.repolled") != 2 {
		t.Fatalf("trace counters = forwarded %d repolled %d, want 2 and 2",
			tr.Counter("monitor.forwarded"), tr.Counter("monitor.repolled"))
	}
}
