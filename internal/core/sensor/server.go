package sensor

import (
	"sort"

	"dyflow/internal/core/spec"
	"dyflow/internal/msg"
	"dyflow/internal/sim"
	"dyflow/internal/stats"
	"dyflow/internal/trace"
)

// Server is the Monitor stage's server half. It runs "on the launch node":
// it receives update batches from the clients, filters out-of-order
// messages, derives the cross-task granularities (workflow and
// node-workflow), applies sensor joins, and forwards metric values to the
// Decision stage endpoint.
type Server struct {
	env    *sim.Sim
	ep     *msg.Endpoint
	out    string // decision endpoint name
	cfg    *spec.Config
	filter *msg.OrderFilter

	last map[Key]Metric // latest value per series

	// lag accounting per sensor (paper §4.6 cost analysis). Lag samples
	// are taken only when a series' underlying data is fresh (a new
	// generation time): periodic re-polls of unchanged files measure
	// nothing.
	lags    map[string]*stats.Welford
	lastGen map[Key]sim.Time

	forwarded int
	repolled  int
	dropped   int
	proc      *sim.Proc
	onForward func([]Metric)
	tr        *trace.Recorder
	spawn     func(name string, fn func(*sim.Proc)) *sim.Proc
}

// NewServer creates the Monitor server reading from its own endpoint and
// forwarding metric batches to the out endpoint.
func NewServer(s *sim.Sim, bus *msg.Bus, name, out string, cfg *spec.Config) *Server {
	return &Server{
		env:     s,
		ep:      bus.Endpoint(name),
		out:     out,
		cfg:     cfg,
		filter:  msg.NewOrderFilter(),
		last:    make(map[Key]Metric),
		lags:    make(map[string]*stats.Welford),
		lastGen: make(map[Key]sim.Time),
	}
}

// Forwarded returns the number of fresh metric detections forwarded to
// Decision — metrics carrying a new generation time. Stale re-polls of
// unchanged data (counted by Repolled) still travel on the wire but are
// not detections, matching the lag accounting.
func (sv *Server) Forwarded() int { return sv.forwarded }

// Repolled returns the number of stale re-polls forwarded: metrics whose
// underlying data had already been seen (same generation time).
func (sv *Server) Repolled() int { return sv.repolled }

// SetTracer attaches the flight recorder for stage counters and
// per-sensor lag samples.
func (sv *Server) SetTracer(tr *trace.Recorder) { sv.tr = tr }

// OnForward registers an observer for every metric batch forwarded to the
// Decision stage (the experiment harness records metric series from here —
// "as Decision receives them", Figure 9).
func (sv *Server) OnForward(fn func([]Metric)) { sv.onForward = fn }

// Dropped returns the number of stale batches discarded by the
// out-of-order filter.
func (sv *Server) Dropped() int { return sv.dropped }

// Lag returns the accumulated detection-lag statistics for a sensor: the
// time between data generation and the metric being forwarded to Decision.
func (sv *Server) Lag(sensorID string) *stats.Welford {
	if w, ok := sv.lags[sensorID]; ok {
		return w
	}
	return &stats.Welford{}
}

// Latest returns the most recent metric for a series (ok=false if none).
func (sv *Server) Latest(k Key) (Metric, bool) {
	m, ok := sv.last[k]
	return m, ok
}

// SetSpawner overrides how the server spawns its process (the supervisor
// injects a panic-guarded spawner here). Call before Start.
func (sv *Server) SetSpawner(spawn func(name string, fn func(*sim.Proc)) *sim.Proc) {
	sv.spawn = spawn
}

// Start spawns the server process.
func (sv *Server) Start() {
	if sv.spawn != nil {
		sv.proc = sv.spawn("monitor-server", sv.run)
	} else {
		sv.proc = sv.env.Spawn("monitor-server", sv.run)
	}
}

// Stop interrupts the server process.
func (sv *Server) Stop() {
	if sv.proc != nil {
		sv.proc.Interrupt(nil)
	}
}

func (sv *Server) run(p *sim.Proc) {
	// Drain every same-instant delivery in one wake (run-to-completion):
	// a burst of client batches costs one kernel→proc handoff.
	var buf []msg.Envelope
	for {
		batch, err := sv.ep.RecvBatch(p, buf[:0])
		if err != nil {
			return
		}
		buf = batch
		for _, env := range batch {
			if !sv.filter.Admit(env) {
				sv.dropped++
				sv.tr.Inc("monitor.dropped_batches", 1)
				continue
			}
			var b Batch
			if err := env.Decode(&b); err != nil {
				continue
			}
			sv.process(b)
		}
	}
}

// process ingests one admitted batch and forwards the resulting metrics.
func (sv *Server) process(batch Batch) {
	now := sv.env.Now()
	var out []Metric

	for _, u := range batch.Updates {
		g, err := spec.ParseGranularity(u.Granularity)
		if err != nil {
			continue
		}
		def := sv.cfg.Sensors[u.Sensor]
		if def == nil {
			continue
		}
		m := Metric{
			Key: Key{
				Workflow:    u.Workflow,
				Task:        u.Task,
				Sensor:      u.Sensor,
				Granularity: g,
				Node:        u.Node,
			},
			Value:       u.Value,
			Step:        u.Step,
			GeneratedAt: sim.Time(u.GeneratedAt),
			ObservedAt:  now,
		}
		m = sv.applyJoin(def, m)
		sv.last[m.Key] = m
		if def.HasGranularity(g) {
			out = append(out, m)
		}

		// Derive cross-task granularities declared on the sensor.
		for _, grp := range def.Groups {
			switch grp.Granularity {
			case spec.GranWorkflow:
				if g == spec.GranTask {
					if dm, ok := sv.deriveWorkflow(def, grp, m); ok {
						sv.last[dm.Key] = dm
						out = append(out, dm)
					}
				}
			case spec.GranNodeWorkflow:
				if g == spec.GranNodeTask {
					if dm, ok := sv.deriveNodeWorkflow(def, grp, m); ok {
						sv.last[dm.Key] = dm
						out = append(out, dm)
					}
				}
			}
		}
	}
	if len(out) == 0 {
		return
	}
	msgs := make([]MetricMsg, len(out))
	detections := 0
	for i, m := range out {
		msgs[i] = m.ToMsg()
		if prev, seen := sv.lastGen[m.Key]; seen && prev == m.GeneratedAt {
			// Stale re-poll: not a detection event, for the forwarded
			// counter exactly as for the lag accounting.
			sv.repolled++
			continue
		}
		detections++
		sv.lastGen[m.Key] = m.GeneratedAt
		w, ok := sv.lags[m.Key.Sensor]
		if !ok {
			w = &stats.Welford{}
			sv.lags[m.Key.Sensor] = w
		}
		if m.ObservedAt >= m.GeneratedAt {
			w.Add((m.ObservedAt - m.GeneratedAt).Seconds())
			sv.tr.SensorLag(m.Key.Sensor, m.ObservedAt-m.GeneratedAt)
		}
	}
	sv.forwarded += detections
	sv.tr.Inc("monitor.forwarded", int64(detections))
	sv.tr.Inc("monitor.repolled", int64(len(out)-detections))
	if sv.onForward != nil {
		sv.onForward(out)
	}
	sv.ep.Send(sv.out, msgs)
}

// applyJoin combines the metric with the joined sensor's latest value. By
// default the join matches the same workflow/task/granularity/node key; a
// join granularity override matches the other sensor's series at that
// granularity instead (workflow-level series carry no task or node).
func (sv *Server) applyJoin(def *spec.SensorDef, m Metric) Metric {
	if def.Join == nil {
		return m
	}
	ok := Key{
		Workflow:    m.Key.Workflow,
		Task:        m.Key.Task,
		Sensor:      def.Join.SensorID,
		Granularity: m.Key.Granularity,
		Node:        m.Key.Node,
	}
	if def.Join.Granularity != nil {
		ok.Granularity = *def.Join.Granularity
		switch ok.Granularity {
		case spec.GranWorkflow:
			ok.Task, ok.Node = "", ""
		case spec.GranNodeWorkflow:
			ok.Task = ""
		}
	}
	other, found := sv.last[ok]
	if !found {
		return m
	}
	m.Value = def.Join.Op.Apply(m.Value, other.Value)
	return m
}

// deriveWorkflow reduces the latest task-level values of the sensor across
// all tasks of the workflow.
func (sv *Server) deriveWorkflow(def *spec.SensorDef, grp spec.GroupDef, trigger Metric) (Metric, bool) {
	var vals []float64
	var keys []Key
	for k := range sv.last {
		if k.Workflow == trigger.Key.Workflow && k.Sensor == def.ID && k.Granularity == spec.GranTask {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Task < keys[j].Task })
	maxStep := 0
	var genAt sim.Time
	for _, k := range keys {
		m := sv.last[k]
		vals = append(vals, m.Value)
		if m.Step > maxStep {
			maxStep = m.Step
		}
		// The derived metric is as fresh as the freshest contributor; a
		// stale re-poll of one task must not stamp the workflow front old.
		if m.GeneratedAt > genAt {
			genAt = m.GeneratedAt
		}
	}
	v, ok := stats.Reduce(grp.Reduction, vals)
	if !ok {
		return Metric{}, false
	}
	return Metric{
		Key: Key{
			Workflow:    trigger.Key.Workflow,
			Sensor:      def.ID,
			Granularity: spec.GranWorkflow,
		},
		Value:       v,
		Step:        maxStep,
		GeneratedAt: genAt,
		ObservedAt:  trigger.ObservedAt,
	}, true
}

// deriveNodeWorkflow reduces the latest node-task values across all tasks
// sharing the triggering update's node.
func (sv *Server) deriveNodeWorkflow(def *spec.SensorDef, grp spec.GroupDef, trigger Metric) (Metric, bool) {
	var vals []float64
	var keys []Key
	for k := range sv.last {
		if k.Workflow == trigger.Key.Workflow && k.Sensor == def.ID &&
			k.Granularity == spec.GranNodeTask && k.Node == trigger.Key.Node {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Task < keys[j].Task })
	var genAt sim.Time
	for _, k := range keys {
		m := sv.last[k]
		vals = append(vals, m.Value)
		if m.GeneratedAt > genAt {
			genAt = m.GeneratedAt
		}
	}
	v, ok := stats.Reduce(grp.Reduction, vals)
	if !ok {
		return Metric{}, false
	}
	return Metric{
		Key: Key{
			Workflow:    trigger.Key.Workflow,
			Sensor:      def.ID,
			Granularity: spec.GranNodeWorkflow,
			Node:        trigger.Key.Node,
		},
		Value:       v,
		Step:        trigger.Step,
		GeneratedAt: genAt,
		ObservedAt:  trigger.ObservedAt,
	}, true
}
