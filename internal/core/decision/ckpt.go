package decision

import (
	"dyflow/internal/core/sensor"
	"dyflow/internal/sim"
	"dyflow/internal/stats"
)

// SeriesSnap is one metric series' checkpointable state within a binding.
type SeriesSnap struct {
	Key      sensor.Key `json:"key"`
	Window   []float64  `json:"window,omitempty"` // history contents, oldest first
	Last     float64    `json:"last"`
	LastAt   sim.Time   `json:"last_at"`
	GenAt    sim.Time   `json:"gen_at"`
	Step     int        `json:"step"`
	Fresh    bool       `json:"fresh"`
	Interval sim.Time   `json:"interval"`
}

// BindingSnap is one policy binding's checkpointable state. Series appear
// in arrival order — the order the engine evaluates them in, which decides
// which satisfied series produces the suggestion.
type BindingSnap struct {
	Policy     string       `json:"policy"`
	Workflow   string       `json:"workflow"`
	AssessTask string       `json:"assess_task"`
	LastEval   sim.Time     `json:"last_eval"`
	EverEval   bool         `json:"ever_eval"`
	ResetAt    sim.Time     `json:"reset_at"`
	Fired      int          `json:"fired"`
	Series     []SeriesSnap `json:"series,omitempty"`
}

// Snapshot is the Decision stage's full checkpointable state: history
// windows, staleness/everEval gates, the suggestion ID counter, the
// evaluator's tick grid, and the receiver's out-of-order filter.
type Snapshot struct {
	Seq         int                  `json:"seq"`
	Evaluations int                  `json:"evaluations"`
	Suggestions int                  `json:"suggestions"`
	NextEval    sim.Time             `json:"next_eval"`
	Filter      map[string]uint64    `json:"filter,omitempty"`
	Bindings    []BindingSnap        `json:"bindings"`
}

// Snapshot exports the engine state. Call while the engine is quiescent
// (parked between events) — i.e. from driver context between simulation
// runs, which is where checkpoints are taken.
func (e *Engine) Snapshot() Snapshot {
	snap := Snapshot{
		Seq:         e.seq,
		Evaluations: e.evaluations,
		Suggestions: e.suggestions,
		NextEval:    e.nextEval,
		Filter:      e.filter.State(),
	}
	for _, b := range e.bindings {
		bs := BindingSnap{
			Policy:     b.def.ID,
			Workflow:   b.bind.Workflow,
			AssessTask: b.bind.AssessTask,
			LastEval:   b.lastEval,
			EverEval:   b.everEval,
			ResetAt:    b.resetAt,
			Fired:      b.fired,
		}
		for _, k := range b.order {
			st := b.series[k]
			ss := SeriesSnap{
				Key:      k,
				Last:     st.last,
				LastAt:   st.lastAt,
				GenAt:    st.genAt,
				Step:     st.step,
				Fresh:    st.fresh,
				Interval: st.interval,
			}
			if st.window != nil {
				ss.Window = st.window.Values()
			}
			bs.Series = append(bs.Series, ss)
		}
		snap.Bindings = append(snap.Bindings, bs)
	}
	return snap
}

// Restore replaces the engine state with the snapshot. Bindings are matched
// by (policy, workflow, assess-task) against the compiled spec — a snapshot
// taken under a different spec restores only the bindings both share. Call
// before Start.
func (e *Engine) Restore(snap Snapshot) {
	e.seq = snap.Seq
	e.evaluations = snap.Evaluations
	e.suggestions = snap.Suggestions
	e.nextEval = snap.NextEval
	e.filter.RestoreState(snap.Filter)

	byID := make(map[[3]string]*binding, len(e.bindings))
	for _, b := range e.bindings {
		byID[[3]string{b.def.ID, b.bind.Workflow, b.bind.AssessTask}] = b
	}
	for _, bs := range snap.Bindings {
		b, ok := byID[[3]string{bs.Policy, bs.Workflow, bs.AssessTask}]
		if !ok {
			continue
		}
		b.lastEval = bs.LastEval
		b.everEval = bs.EverEval
		b.resetAt = bs.ResetAt
		b.fired = bs.Fired
		b.series = make(map[sensor.Key]*seriesState, len(bs.Series))
		b.order = b.order[:0]
		for _, ss := range bs.Series {
			st := &seriesState{
				last:     ss.Last,
				lastAt:   ss.LastAt,
				genAt:    ss.GenAt,
				step:     ss.Step,
				fresh:    ss.Fresh,
				interval: ss.Interval,
			}
			if b.def.History != nil {
				st.window = stats.NewWindow(b.def.History.Window)
				st.window.Restore(ss.Window)
			}
			b.series[ss.Key] = st
			b.order = append(b.order, ss.Key)
		}
	}
}
