// Package decision implements DYFLOW's Decision stage (paper §2.2, §3): it
// screens incoming sensor metrics, maps them to the user's policies,
// maintains per-policy history windows with pre-analysis, gates evaluation
// by each policy's frequency, and emits suggested high-level actions to the
// Arbitration stage as a single JSON message per evaluation round.
package decision

import (
	"fmt"
	"time"

	"dyflow/internal/core/sensor"
	"dyflow/internal/core/spec"
	"dyflow/internal/msg"
	"dyflow/internal/sim"
	"dyflow/internal/stats"
	"dyflow/internal/trace"
)

// Suggestion is one suggested high-level action (Decision -> Arbitration).
type Suggestion struct {
	// ID correlates this suggestion's lifecycle span across the stages
	// (minted here, carried through Arbitration and Actuation records).
	ID         string            `json:"id,omitempty"`
	Workflow   string            `json:"workflow"`
	PolicyID   string            `json:"policy"`
	Action     string            `json:"action"`
	AssessTask string            `json:"assess_task"`
	ActOnTasks []string          `json:"act_on_tasks"`
	Params     map[string]string `json:"params,omitempty"`
	// MetricValue is the (pre-analyzed) value that satisfied the condition.
	MetricValue float64 `json:"metric_value"`
	// Step is the source timestep associated with the triggering metric.
	Step int `json:"step,omitempty"`
	// GeneratedAt is when the underlying data was produced; ObservedAt is
	// when the Monitor server forwarded the triggering metric; DecidedAt is
	// when the policy fired. Their differences plus transport are the
	// event-to-response-initiation lags of §4.6.
	GeneratedAt int64 `json:"generated_at"`
	ObservedAt  int64 `json:"observed_at,omitempty"`
	DecidedAt   int64 `json:"decided_at"`
}

// ParsedAction returns the typed action.
func (s *Suggestion) ParsedAction() (spec.Action, error) { return spec.ParseAction(s.Action) }

// staleFactor is how many missed arrival intervals a series survives before
// it is considered stale and stops feeding evaluations.
const staleFactor = 3

// seriesState tracks one metric series feeding a policy binding.
type seriesState struct {
	window *stats.Window // nil when the policy has no history
	last   float64
	lastAt sim.Time
	genAt  sim.Time
	step   int
	fresh  bool // a value arrived since the last evaluation
	// interval is the observed time between the last two arrivals; it sets
	// the staleness horizon (zero until two arrivals have been seen).
	interval sim.Time
}

// live reports whether the series may feed an evaluation at now: it is
// either fresh (data arrived since the last round) or recent enough — within
// staleFactor observed arrival intervals. A series whose producer stopped
// (e.g. the assessed task ended) goes stale after a few missed periods
// instead of re-firing its frozen window forever. With a single arrival the
// cadence is unknown and the series stays live, matching the pre-horizon
// behaviour.
func (st *seriesState) live(now sim.Time) bool {
	if st.fresh {
		return true
	}
	if st.lastAt == 0 {
		return false
	}
	if st.interval == 0 {
		return true
	}
	return now-st.lastAt <= staleFactor*st.interval
}

// binding is one policy applied to one assess-task.
type binding struct {
	def      *spec.PolicyDef
	bind     spec.PolicyBinding
	series   map[sensor.Key]*seriesState
	order    []sensor.Key // deterministic evaluation order
	lastEval sim.Time
	// everEval distinguishes "never evaluated" from "evaluated at t=0":
	// lastEval alone cannot, and treating t=0 as never makes the binding
	// re-evaluate on every tick.
	everEval bool
	// resetAt is the last ResetTask instant; metrics generated before it
	// describe the previous incarnation and are dropped.
	resetAt sim.Time
	fired   int
}

// anyLive reports whether any series can feed an evaluation at now.
func (b *binding) anyLive(now sim.Time) bool {
	for _, k := range b.order {
		if b.series[k].live(now) {
			return true
		}
	}
	return false
}

// matches reports whether the metric belongs to this binding.
func (b *binding) matches(m sensor.Metric) bool {
	if m.Key.Workflow != b.bind.Workflow {
		return false
	}
	for _, ref := range b.def.Sensors {
		if ref.SensorID != m.Key.Sensor || ref.Granularity != m.Key.Granularity {
			continue
		}
		switch m.Key.Granularity {
		case spec.GranTask, spec.GranNodeTask:
			if m.Key.Task == b.bind.AssessTask {
				return true
			}
		case spec.GranWorkflow, spec.GranNodeWorkflow:
			return true
		}
	}
	return false
}

func (b *binding) ingest(m sensor.Metric) {
	if b.resetAt > 0 && m.GeneratedAt <= b.resetAt {
		// In-flight data from before the assessed task's restart: acting
		// on it would re-trigger the action that caused the restart.
		return
	}
	st, ok := b.series[m.Key]
	if !ok {
		st = &seriesState{}
		if b.def.History != nil {
			st.window = stats.NewWindow(b.def.History.Window)
		}
		b.series[m.Key] = st
		b.order = append(b.order, m.Key)
	}
	if st.window != nil {
		st.window.Push(m.Value)
	}
	if st.lastAt > 0 && m.ObservedAt > st.lastAt {
		st.interval = m.ObservedAt - st.lastAt
	}
	st.last = m.Value
	st.lastAt = m.ObservedAt
	st.genAt = m.GeneratedAt
	st.step = m.Step
	st.fresh = true
}

// value computes the series' evaluation input: the pre-analyzed history
// reduction when history is configured, the instantaneous value otherwise.
func (st *seriesState) value(def *spec.PolicyDef) (float64, bool) {
	if st.window != nil {
		return st.window.Reduce(def.History.Op)
	}
	return st.last, st.lastAt > 0 || st.fresh
}

// Engine is the Decision stage runtime. It runs two processes: a receiver
// that screens and stores incoming metrics, and an evaluator that triggers
// each policy's condition at its configured frequency ("every policy has a
// defined frequency to decide when to trigger the evaluation condition")
// and ships the round's suggestions as a single message to Arbitration.
type Engine struct {
	s        *sim.Sim
	ep       *msg.Endpoint
	out      string
	cfg      *spec.Config
	filter   *msg.OrderFilter
	bindings []*binding
	recvProc *sim.Proc
	evalProc *sim.Proc
	tr       *trace.Recorder
	spawn    func(name string, fn func(*sim.Proc)) *sim.Proc

	evaluations int
	suggestions int
	seq         int // suggestion ID counter
	// nextEval is the evaluator's next scheduled tick; checkpointed so a
	// restored engine keeps the same evaluation grid (a shifted grid changes
	// which gather window suggestions land in).
	nextEval sim.Time
}

// New creates the Decision engine reading metrics from its endpoint and
// sending suggestion batches to the out endpoint (the Arbitration stage).
func New(s *sim.Sim, bus *msg.Bus, name, out string, cfg *spec.Config) *Engine {
	e := &Engine{
		s:      s,
		ep:     bus.Endpoint(name),
		out:    out,
		cfg:    cfg,
		filter: msg.NewOrderFilter(),
	}
	for _, pb := range cfg.Bindings {
		def := cfg.Policies[pb.PolicyID]
		if def == nil {
			continue
		}
		e.bindings = append(e.bindings, &binding{
			def:    def,
			bind:   pb,
			series: make(map[sensor.Key]*seriesState),
		})
	}
	return e
}

// SetTracer attaches the flight recorder; suggestions emitted afterwards
// open lifecycle spans on it.
func (e *Engine) SetTracer(tr *trace.Recorder) { e.tr = tr }

// SetSpawner overrides how the engine spawns its processes (the supervisor
// injects a panic-guarded spawner here). Call before Start.
func (e *Engine) SetSpawner(spawn func(name string, fn func(*sim.Proc)) *sim.Proc) {
	e.spawn = spawn
}

func (e *Engine) spawnProc(name string, fn func(*sim.Proc)) *sim.Proc {
	if e.spawn != nil {
		return e.spawn(name, fn)
	}
	return e.s.Spawn(name, fn)
}

// Evaluations returns the number of policy evaluations performed.
func (e *Engine) Evaluations() int { return e.evaluations }

// Suggestions returns the number of suggestions emitted.
func (e *Engine) Suggestions() int { return e.suggestions }

// Start spawns the engine processes.
func (e *Engine) Start() {
	e.recvProc = e.spawnProc("decision-recv", e.run)
	e.evalProc = e.spawnProc("decision-eval", e.evalLoop)
}

// Stop interrupts the engine processes.
func (e *Engine) Stop() {
	if e.recvProc != nil {
		e.recvProc.Interrupt(nil)
	}
	if e.evalProc != nil {
		e.evalProc.Interrupt(nil)
	}
}

// ResetTask discards series state for a task that was just (re)started, so
// pre-restart history does not immediately re-trigger policies. The
// orchestrator calls this on task-start events.
func (e *Engine) ResetTask(workflow, taskName string) {
	for _, b := range e.bindings {
		if b.bind.Workflow != workflow || b.bind.AssessTask != taskName {
			continue
		}
		b.resetAt = e.s.Now()
		for _, k := range b.order {
			if st := b.series[k]; st != nil {
				if st.window != nil {
					st.window.Reset()
				}
				st.fresh = false
				st.lastAt = 0
				st.interval = 0
			}
		}
	}
}

// run is the receiver process: it screens incoming metric batches and
// stores them on the matching policy bindings.
func (e *Engine) run(p *sim.Proc) {
	// Drain every same-instant metric shipment in one wake so a burst of
	// sensor-server sends costs one kernel→proc handoff.
	var buf []msg.Envelope
	for {
		batch, err := e.ep.RecvBatch(p, buf[:0])
		if err != nil {
			return
		}
		buf = batch
		for _, env := range batch {
			if !e.filter.Admit(env) {
				continue
			}
			var msgs []sensor.MetricMsg
			if err := env.Decode(&msgs); err != nil {
				continue
			}
			for _, w := range msgs {
				m, err := sensor.FromMsg(w)
				if err != nil {
					continue
				}
				e.Ingest(m)
				e.tr.Inc("decision.metrics_ingested", 1)
			}
		}
	}
}

// evalLoop is the evaluator process: it fires each binding's evaluation at
// its configured frequency and ships the round's suggestions together. A
// restored engine resumes the checkpointed tick grid instead of starting a
// fresh one at the restore instant.
func (e *Engine) evalLoop(p *sim.Proc) {
	tick := e.tickInterval()
	for {
		next := e.s.Now() + tick
		if e.nextEval > e.s.Now() {
			next = e.nextEval
		}
		e.nextEval = next
		if err := p.Sleep(next - e.s.Now()); err != nil {
			return
		}
		e.nextEval = 0
		round := e.EvaluateDue()
		if len(round) > 0 {
			e.suggestions += len(round)
			e.tr.Inc("decision.suggestions", int64(len(round)))
			e.ep.Send(e.out, round)
		}
	}
}

// tickInterval picks the evaluator's polling period: the smallest policy
// frequency, capped at one second.
func (e *Engine) tickInterval() time.Duration {
	tick := time.Second
	for _, b := range e.bindings {
		if b.def.Frequency < tick {
			tick = b.def.Frequency
		}
	}
	if tick <= 0 {
		tick = time.Second
	}
	return tick
}

// Ingest stores one metric on every matching binding (no evaluation —
// updates between evaluations are stored for history or replace the latest
// value).
func (e *Engine) Ingest(m sensor.Metric) {
	for _, b := range e.bindings {
		if b.matches(m) {
			b.ingest(m)
		}
	}
}

// EvaluateDue runs the evaluation condition of every binding whose
// frequency period has elapsed and returns the suggestions of this round.
// A binding only evaluates while at least one of its series is live —
// fresh, or within the staleness horizon of its arrival cadence: re-firing
// every frequency period on the same frozen window long after the assessed
// task stopped producing data would suggest actions about a state that no
// longer updates.
func (e *Engine) EvaluateDue() []Suggestion {
	now := e.s.Now()
	var out []Suggestion
	for _, b := range e.bindings {
		if b.everEval && now-b.lastEval < b.def.Frequency {
			continue
		}
		if !b.anyLive(now) {
			continue // every series went stale: nothing left to decide on
		}
		b.lastEval = now
		b.everEval = true
		e.evaluations++
		e.tr.Inc("decision.evaluations", 1)
		sg, ok := e.evaluate(b, now)
		// The round consumed the binding's pending data; liveness now rests
		// on the arrival cadence until the next value lands.
		for _, k := range b.order {
			b.series[k].fresh = false
		}
		if ok {
			out = append(out, sg)
		}
	}
	return out
}

// evaluate applies the binding's condition over its series (in arrival
// order); the first satisfied live series produces the suggestion.
func (e *Engine) evaluate(b *binding, now sim.Time) (Suggestion, bool) {
	for _, k := range b.order {
		st := b.series[k]
		if !st.live(now) {
			continue // stale series: its producer stopped updating it
		}
		v, ok := st.value(b.def)
		if !ok {
			continue
		}
		if !b.def.Eval.Compare(v, b.def.Threshold) {
			continue
		}
		b.fired++
		e.seq++
		id := fmt.Sprintf("%s/%s#%d", b.bind.Workflow, b.def.ID, e.seq)
		e.tr.Suggested(id, b.bind.Workflow, b.def.ID, b.def.Action.String(), k.Sensor, st.genAt, st.lastAt, now)
		return Suggestion{
			ID:         id,
			Workflow:   b.bind.Workflow,
			PolicyID:   b.def.ID,
			Action:     b.def.Action.String(),
			AssessTask: b.bind.AssessTask,
			ActOnTasks: append([]string(nil), b.bind.ActOnTasks...),
			// Copied: the compiled spec's map must not be aliased into the
			// suggestion, where downstream stages may mutate it.
			Params:      copyParams(b.bind.Params),
			MetricValue: v,
			Step:        st.step,
			GeneratedAt: int64(st.genAt),
			ObservedAt:  int64(st.lastAt),
			DecidedAt:   int64(now),
		}, true
	}
	return Suggestion{}, false
}

func copyParams(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// FrequencyOf exposes a policy's effective evaluation period (helper for
// experiment accounting).
func (e *Engine) FrequencyOf(policyID string) time.Duration {
	if def, ok := e.cfg.Policies[policyID]; ok {
		return def.Frequency
	}
	return spec.DefaultFrequency
}
