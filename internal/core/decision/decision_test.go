package decision

import (
	"testing"
	"time"

	"dyflow/internal/core/sensor"
	"dyflow/internal/core/spec"
	"dyflow/internal/msg"
	"dyflow/internal/sim"
)

const cfgXML = `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
      </sensor>
      <sensor id="NSTEPS" type="DISKSCAN">
        <group-by>
          <group granularity="task" reduction-operation="MAX"/>
          <group granularity="workflow" reduction-operation="MAX"/>
        </group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Iso" workflowId="GS" info-source="tau.Iso">
        <use-sensor sensor-id="PACE" info="looptime"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="INC_ON_PACE">
        <eval operation="GT" threshold="36"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action>ADDCPU</action>
        <history window="3" operation="AVG"/>
        <frequency seconds="5"/>
      </policy>
      <policy id="SWITCH_ON_COND">
        <eval operation="EQ" threshold="374"/>
        <sensors-to-use><use-sensor id="NSTEPS" granularity="workflow"/></sensors-to-use>
        <action>SWITCH</action>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="GS">
      <apply-policy policyId="INC_ON_PACE" assess-task="Iso">
        <act-on-tasks>Iso</act-on-tasks>
        <action-params><param key="adjust-by" value="20"/></action-params>
      </apply-policy>
      <apply-policy policyId="SWITCH_ON_COND" assess-task="XGCA">
        <act-on-tasks>XGC1</act-on-tasks>
      </apply-policy>
    </apply-on>
  </decision>
</dyflow>`

func metric(wf, tsk, sens string, g spec.Granularity, v float64, at sim.Time) sensor.Metric {
	return sensor.Metric{
		Key:         sensor.Key{Workflow: wf, Task: tsk, Sensor: sens, Granularity: g},
		Value:       v,
		GeneratedAt: at,
		ObservedAt:  at,
	}
}

func newEngine(t *testing.T) (*sim.Sim, *Engine) {
	t.Helper()
	cfg, err := spec.CompileString(cfgXML)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	bus := msg.NewBus(s)
	bus.Endpoint("arbiter")
	return s, New(s, bus, "decision", "arbiter", cfg)
}

// filterPolicy keeps only one policy's suggestions (other bindings may
// legitimately keep firing on their stored series).
func filterPolicy(sgs []Suggestion, policy string) []Suggestion {
	var out []Suggestion
	for _, sg := range sgs {
		if sg.PolicyID == policy {
			out = append(out, sg)
		}
	}
	return out
}

func TestHistoryAveragedEvaluation(t *testing.T) {
	s, e := newEngine(t)
	// Values 30, 40, 50: instantaneous 40 > 36 already at the second
	// update, but the window average only crosses 36 at the third
	// ((30+40+50)/3 = 40). Evaluations run after each value's arrival;
	// arrivals are 6 s apart so every one is due.
	var got []Suggestion
	step := func(v float64) {
		e.Ingest(metric("GS", "Iso", "PACE", spec.GranTask, v, s.Now()))
		got = append(got, filterPolicy(e.EvaluateDue(), "INC_ON_PACE")...)
	}
	step(30)
	s.After(6*time.Second, func() { step(40) })
	s.After(12*time.Second, func() { step(50) })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("suggestions = %+v, want exactly 1", got)
	}
	sg := got[0]
	if sg.PolicyID != "INC_ON_PACE" || sg.Action != "ADDCPU" {
		t.Fatalf("suggestion = %+v", sg)
	}
	if sg.MetricValue != 40 {
		t.Fatalf("metric value = %v, want window average 40", sg.MetricValue)
	}
	if sg.Params["adjust-by"] != "20" {
		t.Fatalf("params = %v", sg.Params)
	}
}

func TestFrequencyGating(t *testing.T) {
	s, e := newEngine(t)
	// Fresh above-threshold data arrives every second for 11 s and the
	// evaluator ticks alongside: with a 5 s frequency the policy fires at
	// most every 5 s — 3 times (t=0, 5, 10).
	count := 0
	for i := 0; i <= 10; i++ {
		at := time.Duration(i) * time.Second
		s.At(at, func() {
			e.Ingest(metric("GS", "Iso", "PACE", spec.GranTask, 100, s.Now()))
			count += len(filterPolicy(e.EvaluateDue(), "INC_ON_PACE"))
		})
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("suggestions = %d, want 3 (frequency-gated)", count)
	}
}

func TestNoEvaluationWithoutData(t *testing.T) {
	_, e := newEngine(t)
	if got := e.EvaluateDue(); len(got) != 0 {
		t.Fatalf("suggestions with no data = %+v", got)
	}
	if e.Evaluations() != 0 {
		t.Fatalf("evaluations = %d, want 0 (no series yet)", e.Evaluations())
	}
}

func TestEQConditionOnWorkflowMetric(t *testing.T) {
	s, e := newEngine(t)
	var got []Suggestion
	vals := []float64{370, 372, 374, 376}
	for i, v := range vals {
		at := time.Duration(i*6) * time.Second
		v := v
		s.At(at, func() {
			e.Ingest(metric("GS", "", "NSTEPS", spec.GranWorkflow, v, s.Now()))
			got = append(got, filterPolicy(e.EvaluateDue(), "SWITCH_ON_COND")...)
		})
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("suggestions = %+v, want 1 (only the EQ match)", got)
	}
	if got[0].PolicyID != "SWITCH_ON_COND" || got[0].MetricValue != 374 {
		t.Fatalf("suggestion = %+v", got[0])
	}
	if len(got[0].ActOnTasks) != 1 || got[0].ActOnTasks[0] != "XGC1" {
		t.Fatalf("act-on = %v", got[0].ActOnTasks)
	}
}

func TestMetricForWrongTaskIgnored(t *testing.T) {
	_, e := newEngine(t)
	e.Ingest(metric("GS", "FFT", "PACE", spec.GranTask, 100, 0))
	e.Ingest(metric("OTHER", "Iso", "PACE", spec.GranTask, 100, 0))
	if got := e.EvaluateDue(); len(got) != 0 {
		t.Fatalf("suggestions for unmatched metrics = %+v", got)
	}
}

func TestResetTaskClearsHistory(t *testing.T) {
	s, e := newEngine(t)
	e.Ingest(metric("GS", "Iso", "PACE", spec.GranTask, 100, 0))
	if got := filterPolicy(e.EvaluateDue(), "INC_ON_PACE"); len(got) != 1 {
		t.Fatalf("priming suggestion count = %d", len(got))
	}
	e.ResetTask("GS", "Iso")
	// After a reset, evaluation with no fresh data must not fire even
	// though the pre-reset history was far above threshold.
	var got []Suggestion
	s.After(10*time.Second, func() {
		got = filterPolicy(e.EvaluateDue(), "INC_ON_PACE")
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("post-reset suggestions = %+v, want none", got)
	}
}

func TestSameRoundBatchesAcrossBindings(t *testing.T) {
	// Metrics for two different bindings stored before one evaluation
	// round produce a single combined batch.
	s, e := newEngine(t)
	e.Ingest(metric("GS", "Iso", "PACE", spec.GranTask, 100, 0))
	e.Ingest(metric("GS", "", "NSTEPS", spec.GranWorkflow, 374, 0))
	got := e.EvaluateDue()
	if len(got) != 2 {
		t.Fatalf("round = %+v, want both policies' suggestions together", got)
	}
	_ = s
}

func TestEndToEndOverBus(t *testing.T) {
	cfg, err := spec.CompileString(cfgXML)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	bus := msg.NewBus(s)
	arb := bus.Endpoint("arbiter")
	e := New(s, bus, "decision", "arbiter", cfg)
	e.Start()

	mon := bus.Endpoint("monitor-server")
	s.Spawn("feeder", func(p *sim.Proc) {
		m := metric("GS", "Iso", "PACE", spec.GranTask, 100, p.Now())
		mon.Send("decision", []sensor.MetricMsg{m.ToMsg()})
	})
	if err := s.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	env, ok := arb.TryRecv()
	if !ok {
		t.Fatal("no suggestion batch delivered to arbiter")
	}
	var batch []Suggestion
	if err := env.Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || batch[0].Action != "ADDCPU" {
		t.Fatalf("batch = %+v", batch)
	}
	if e.Suggestions() < 1 {
		t.Fatalf("Suggestions() = %d", e.Suggestions())
	}
	e.Stop()
	s.RunUntilIdle()
}

// TestPredictiveSlopePolicy exercises the SLOPE pre-analysis (the paper's
// future-work "pro-active or predictive" direction): the policy fires on a
// growing trend while the absolute values are still far below any hard
// limit.
func TestPredictiveSlopePolicy(t *testing.T) {
	cfg, err := spec.CompileString(`
<dyflow>
  <monitor>
    <sensors>
      <sensor id="MEM" type="ADIOS2">
        <group-by><group granularity="task" reduction-operation="LAST"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Sim" workflowId="W" info-source="mem.Sim">
        <use-sensor sensor-id="MEM" info="rss"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="LEAK_GUARD">
        <eval operation="GT" threshold="2"/>
        <sensors-to-use><use-sensor id="MEM" granularity="task"/></sensors-to-use>
        <action>RESTART</action>
        <history window="6" operation="SLOPE"/>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="W">
      <apply-policy policyId="LEAK_GUARD" assess-task="Sim">
        <act-on-tasks>Sim</act-on-tasks>
      </apply-policy>
    </apply-on>
  </decision>
</dyflow>`)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	bus := msg.NewBus(s)
	bus.Endpoint("arbiter")
	e := New(s, bus, "decision", "arbiter", cfg)

	feed := func(v float64) []Suggestion {
		e.Ingest(metric("W", "Sim", "MEM", spec.GranTask, v, s.Now()))
		return e.EvaluateDue()
	}
	// Stable memory: high absolute value, zero slope — must not fire.
	var fired []Suggestion
	for i := 0; i < 6; i++ {
		v := 100.0
		at := time.Duration(i*6) * time.Second
		s.At(at, func() { fired = append(fired, feed(v)...) })
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Fatalf("flat memory fired %v", fired)
	}
	// Growing memory: +5 per reading — slope crosses the threshold long
	// before any absolute limit would.
	fired = nil
	for i := 0; i < 6; i++ {
		v := 100.0 + 5*float64(i+1)
		at := time.Duration((6+i)*6) * time.Second
		s.At(at, func() { fired = append(fired, feed(v)...) })
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fired) == 0 {
		t.Fatal("growing memory never fired the predictive policy")
	}
	if fired[0].Action != "RESTART" {
		t.Fatalf("suggestion = %+v", fired[0])
	}
}

// TestNodeTaskGranularityBinding: a policy bound at node-task granularity
// fires when ANY node's series satisfies the condition.
func TestNodeTaskGranularityBinding(t *testing.T) {
	cfg, err := spec.CompileString(`
<dyflow>
  <monitor>
    <sensors>
      <sensor id="MEM" type="TAUADIOS2">
        <group-by><group granularity="node-task" reduction-operation="SUM"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Sim" workflowId="W" info-source="tau.Sim">
        <use-sensor sensor-id="MEM"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="NODE_HOT">
        <eval operation="GT" threshold="90"/>
        <sensors-to-use><use-sensor id="MEM" granularity="node-task"/></sensors-to-use>
        <action>RESTART</action>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="W">
      <apply-policy policyId="NODE_HOT" assess-task="Sim">
        <act-on-tasks>Sim</act-on-tasks>
      </apply-policy>
    </apply-on>
  </decision>
</dyflow>`)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	bus := msg.NewBus(s)
	bus.Endpoint("arbiter")
	e := New(s, bus, "decision", "arbiter", cfg)

	mk := func(node string, v float64) sensor.Metric {
		return sensor.Metric{
			Key:   sensor.Key{Workflow: "W", Task: "Sim", Sensor: "MEM", Granularity: spec.GranNodeTask, Node: node},
			Value: v,
		}
	}
	e.Ingest(mk("node000", 50))
	e.Ingest(mk("node001", 60))
	if got := e.EvaluateDue(); len(got) != 0 {
		t.Fatalf("below-threshold nodes fired %v", got)
	}
	s.After(6*time.Second, func() {
		e.Ingest(mk("node001", 95)) // one hot node suffices
	})
	var fired []Suggestion
	s.After(7*time.Second, func() { fired = e.EvaluateDue() })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0].MetricValue != 95 {
		t.Fatalf("fired = %+v, want the hot node's value", fired)
	}
}

func TestParamsNotAliasedIntoSuggestion(t *testing.T) {
	s, e := newEngine(t)
	e.Ingest(metric("GS", "Iso", "PACE", spec.GranTask, 100, s.Now()))
	got := filterPolicy(e.EvaluateDue(), "INC_ON_PACE")
	if len(got) != 1 || got[0].Params["adjust-by"] != "20" {
		t.Fatalf("priming suggestion = %+v", got)
	}
	// A downstream stage scribbling on the suggestion's params must not
	// corrupt the compiled spec for later rounds.
	got[0].Params["adjust-by"] = "corrupted"

	s.At(6*time.Second, func() {
		e.Ingest(metric("GS", "Iso", "PACE", spec.GranTask, 100, s.Now()))
		next := filterPolicy(e.EvaluateDue(), "INC_ON_PACE")
		if len(next) != 1 {
			t.Fatalf("second round = %+v, want 1 suggestion", next)
		}
		if next[0].Params["adjust-by"] != "20" {
			t.Fatalf("params = %v, want the spec's adjust-by=20 (map was aliased)", next[0].Params)
		}
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestStaleSeriesStopsFiring(t *testing.T) {
	s, e := newEngine(t)
	// Data arrives every second for 5 s, establishing a 1 s cadence, then
	// the producer stops (e.g. the assessed task ended). The policy may
	// keep firing briefly — within the staleness horizon of a few missed
	// intervals — but must go quiet afterwards instead of re-firing its
	// frozen window every frequency period forever.
	for i := 0; i < 5; i++ {
		at := time.Duration(i) * time.Second
		s.At(at, func() {
			e.Ingest(metric("GS", "Iso", "PACE", spec.GranTask, 100, s.Now()))
		})
	}
	fires := map[time.Duration]int{}
	for _, at := range []time.Duration{5, 10, 15, 30, 60} {
		at := at * time.Second
		s.At(at, func() {
			fires[at] = len(filterPolicy(e.EvaluateDue(), "INC_ON_PACE"))
		})
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// t=5s: last value landed 1 s ago — still live, fires.
	if fires[5*time.Second] != 1 {
		t.Fatalf("fires at 5s = %d, want 1 (within horizon)", fires[5*time.Second])
	}
	// From t=10s on the series is 6+ s past its 1 s cadence: stale.
	for _, at := range []time.Duration{10 * time.Second, 15 * time.Second, 30 * time.Second, 60 * time.Second} {
		if fires[at] != 0 {
			t.Fatalf("fires at %v = %d, want 0 (series stale, producer stopped)", at, fires[at])
		}
	}
}

func TestSingleArrivalStaysLive(t *testing.T) {
	s, e := newEngine(t)
	// With only one arrival the cadence is unknown, so the series cannot
	// be declared stale: the policy keeps firing at its frequency.
	count := 0
	s.At(time.Second, func() {
		e.Ingest(metric("GS", "Iso", "PACE", spec.GranTask, 100, s.Now()))
	})
	for _, at := range []time.Duration{1, 6, 11} {
		at := at * time.Second
		s.At(at, func() {
			count += len(filterPolicy(e.EvaluateDue(), "INC_ON_PACE"))
		})
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("fires = %d, want 3 (single-arrival series stays live)", count)
	}
}

func TestNoRefireEveryTickAfterTimeZeroEval(t *testing.T) {
	s, e := newEngine(t)
	// A binding first evaluated at t=0 has lastEval==0; that must still
	// count as "evaluated" so the frequency gate holds on later ticks.
	e.Ingest(metric("GS", "Iso", "PACE", spec.GranTask, 100, 0))
	count := len(filterPolicy(e.EvaluateDue(), "INC_ON_PACE"))
	if count != 1 {
		t.Fatalf("fires at t=0 = %d, want 1", count)
	}
	for i := 1; i <= 4; i++ {
		at := time.Duration(i) * time.Second
		s.At(at, func() {
			count += len(filterPolicy(e.EvaluateDue(), "INC_ON_PACE"))
		})
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("fires within the first frequency period = %d, want 1 (t=0 eval forgotten)", count)
	}
}

func TestResetTaskKillsInstantaneousValue(t *testing.T) {
	s, e := newEngine(t)
	// SWITCH_ON_COND has no history window: it evaluates the instantaneous
	// value. After a reset, the retained last value must not re-fire.
	s.At(time.Second, func() {
		e.Ingest(metric("GS", "", "NSTEPS", spec.GranWorkflow, 374, s.Now()))
		if got := filterPolicy(e.EvaluateDue(), "SWITCH_ON_COND"); len(got) != 1 {
			t.Fatalf("priming fire = %+v, want 1", got)
		}
		e.ResetTask("GS", "XGCA")
	})
	s.At(7*time.Second, func() {
		if got := filterPolicy(e.EvaluateDue(), "SWITCH_ON_COND"); len(got) != 0 {
			t.Fatalf("post-reset fire on retained value = %+v", got)
		}
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}
