package core

import (
	"testing"
	"time"

	"dyflow/internal/core/arbiter"
	"dyflow/internal/core/spec"
	"dyflow/internal/sim"
	"dyflow/internal/task"
	"dyflow/internal/wms"
)

// paceXML is a minimal but complete orchestration: one TAU stream sensor on
// Ana and a window-averaged ADDCPU policy.
const paceXML = `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Ana" workflowId="WF" info-source="tau.Ana">
        <use-sensor sensor-id="PACE" info="looptime"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="INC_ON_PACE">
        <eval operation="GT" threshold="10"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action>ADDCPU</action>
        <history window="3" operation="AVG"/>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="WF">
      <apply-policy policyId="INC_ON_PACE" assess-task="Ana">
        <act-on-tasks>Ana</act-on-tasks>
        <action-params><param key="adjust-by" value="6"/></action-params>
      </apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="WF">
        <task-priorities>
          <task-priority name="Sim" priority="0"/>
          <task-priority name="Ana" priority="1"/>
        </task-priorities>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>`

func composePaceWorkflow(t *testing.T, w *world) {
	t.Helper()
	if err := w.sv.Compose(&wms.WorkflowSpec{
		ID: "WF",
		Tasks: []wms.TaskConfig{
			{
				Spec: task.Spec{
					Name: "Sim", Workflow: "WF",
					Cost: task.Cost{Work: 10 * time.Second}, TotalSteps: 2000,
					ProducesTo: "wf.out",
				},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
			{
				Spec: task.Spec{
					Name: "Ana", Workflow: "WF",
					Cost:         task.Cost{Work: 40 * time.Second},
					ConsumesFrom: "wf.out", ConsumeBuf: 1,
					Profile: true,
				},
				Procs: 2, ProcsPerNode: 1, AutoStart: true,
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
}

// newPaceOrchestrator builds an orchestrator over the pace spec; the
// workflow must already be composed (composePaceWorkflow), kept separate so
// restore tests can rebuild the orchestrator over a live workflow.
func newPaceOrchestrator(t *testing.T, w *world, opts Options) *Orchestrator {
	t.Helper()
	cfg, err := spec.CompileString(paceXML)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Arbiter == (arbiter.Config{}) {
		opts.Arbiter = arbiter.Config{
			WarmupDelay: 60 * time.Second,
			SettleDelay: 60 * time.Second,
			PlanCost:    100 * time.Millisecond,
		}
	}
	return New(w.env, w.sv, cfg, opts)
}

// A panic inside a supervised stage process must not fail the simulation:
// the supervisor absorbs it, counts it in dyflow_stage_restarts_total, and
// restarts the stage after its backoff, after which the pipeline still
// adapts the workflow.
func TestSupervisorAbsorbsStagePanic(t *testing.T) {
	w := newWorld(t, 2)
	composePaceWorkflow(t, w)
	o := newPaceOrchestrator(t, w, Options{
		Supervisor: SupervisorConfig{BackoffBase: time.Second},
	})
	o.Start()
	w.s.Spawn("driver", func(p *sim.Proc) {
		if err := w.sv.Launch(p, "WF"); err != nil {
			t.Errorf("launch: %v", err)
		}
	})

	// Detonate inside the decision stage's process slot: the guarded
	// spawner is exactly what the real stage procs run under.
	w.s.At(30*time.Second, func() {
		o.Supervisor.spawner(StageDecision)("decision-bomb", func(p *sim.Proc) {
			if err := p.Sleep(time.Second); err != nil {
				return
			}
			panic("injected stage fault")
		})
	})

	if err := w.s.Run(10 * time.Minute); err != nil {
		t.Fatalf("panic escaped the supervisor: %v", err)
	}
	if got := o.Supervisor.Restarts(StageDecision); got != 1 {
		t.Fatalf("decision restarts = %d, want 1", got)
	}
	if v, ok := o.Metrics.Value("dyflow_stage_restarts_total"); !ok || v != 1 {
		t.Fatalf("dyflow_stage_restarts_total = %v (ok=%v), want 1", v, ok)
	}
	// The restarted pipeline still did its job: the under-provisioned Ana
	// got resized.
	if len(o.Arbiter.Records()) == 0 {
		t.Fatal("no arbitration rounds after the stage restart")
	}
	inst := w.sv.Instance("WF", "Ana")
	if got := inst.Placement.Procs(); got < 8 {
		t.Fatalf("Ana live procs = %d, want >= 8 despite the stage panic", got)
	}
	o.Stop()
}

// Restarts are bounded: a stage that panics forever is given up on after
// MaxRestarts instead of spinning.
func TestSupervisorGivesUpAfterMaxRestarts(t *testing.T) {
	w := newWorld(t, 2)
	composePaceWorkflow(t, w)
	o := newPaceOrchestrator(t, w, Options{
		Supervisor: SupervisorConfig{BackoffBase: time.Second, MaxRestarts: 2},
	})
	o.Start()

	// A decision stage that dies instantly every time it's started: replace
	// the engine's processes with a bomb after each restart by detonating in
	// the stage slot repeatedly.
	var detonate func()
	detonate = func() {
		o.Supervisor.spawner(StageDecision)("decision-bomb", func(p *sim.Proc) {
			if err := p.Sleep(time.Second); err != nil {
				return
			}
			w.s.After(5*time.Second, func() {
				if !o.stopped {
					detonate()
				}
			})
			panic("injected stage fault")
		})
	}
	w.s.At(10*time.Second, detonate)

	if err := w.s.Run(5 * time.Minute); err != nil {
		t.Fatalf("panic escaped the supervisor: %v", err)
	}
	if got := o.Supervisor.Restarts(StageDecision); got != 2 {
		t.Fatalf("decision restarts = %d, want capped at 2", got)
	}
	o.Stop()
}

// Stop must be idempotent: double Stop and Stop-before-Start are no-ops,
// and Start after a premature Stop still works.
func TestStopIdempotent(t *testing.T) {
	w := newWorld(t, 2)
	composePaceWorkflow(t, w)
	o := newPaceOrchestrator(t, w, Options{})
	o.Stop() // before Start: nothing to tear down, must not panic
	o.Stop()
	o.Start()
	if err := w.s.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	o.Stop()
	o.Stop() // double Stop
	if err := w.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	// A stopped orchestrator restarts cleanly (the supervisor and stages
	// come back).
	o.Start()
	if err := w.s.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	o.Stop()
}
