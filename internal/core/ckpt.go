// Checkpoint/restore for the orchestrator: a deterministic snapshot of the
// full orchestration state — Decision history windows and gates, T_waiting
// with Recovery flags and cooldown deadlines, open suggestion lifecycle
// records, sensor worker cursors, and the bus's in-flight queues — plus a
// write-ahead journal of arbitration rounds appended between snapshots.
// Together they make an orchestrator crash at a round boundary lossless: a
// rebuilt orchestrator restored from the snapshot (with the journal
// replayed on top) continues the campaign as if never killed.
package core

import (
	"encoding/json"
	"errors"

	"dyflow/internal/ckpt"
	"dyflow/internal/core/arbiter"
	"dyflow/internal/core/decision"
	"dyflow/internal/core/sensor"
	"dyflow/internal/msg"
	"dyflow/internal/sim"
	"dyflow/internal/trace"
)

// Record kinds in the checkpoint store.
const (
	// SnapshotKind tags the full-orchestrator snapshot blob.
	SnapshotKind = "dyflow-core"
	// RoundKind tags one arbitration-round journal entry.
	RoundKind = "arbiter-round"
)

// Snapshot is the orchestrator's full checkpointable state.
type Snapshot struct {
	At       sim.Time                 `json:"at"`
	Decision decision.Snapshot        `json:"decision"`
	Arbiter  arbiter.Snapshot         `json:"arbiter"`
	Server   sensor.ServerSnapshot    `json:"server"`
	Clients  []sensor.ClientSnapshot  `json:"clients,omitempty"`
	Trace    trace.State              `json:"trace"`
	Bus      msg.BusSnapshot          `json:"bus"`
}

// Snapshot captures the orchestrator's state. Take it from driver context
// between simulation runs (every stage parked) and only while the arbiter
// is not Busy(): a mid-round arbiter has un-serializable state on its
// process stack. The chaos harness defers kills to the next quiescent
// boundary for exactly this reason.
func (o *Orchestrator) Snapshot() Snapshot {
	snap := Snapshot{
		At:       o.env.Sim.Now(),
		Decision: o.Decision.Snapshot(),
		Arbiter:  o.Arbiter.Snapshot(),
		Server:   o.Server.Snapshot(),
		Trace:    o.Trace.State(),
		Bus:      o.Bus.Snapshot(),
	}
	for _, c := range o.Clients {
		snap.Clients = append(snap.Clients, c.Snapshot())
	}
	return snap
}

// Restore replaces the orchestrator's state with the snapshot. Call on a
// freshly built (not yet started) orchestrator over the same compiled
// spec; the subsequent Start resumes every stage exactly where the
// snapshot left it — including mid-sleep sensor workers and the arbiter's
// warm-up origin.
func (o *Orchestrator) Restore(snap Snapshot) {
	o.Bus.Restore(snap.Bus)
	o.Decision.Restore(snap.Decision)
	o.Arbiter.Restore(snap.Arbiter)
	o.Server.Restore(snap.Server)
	for i, cs := range snap.Clients {
		if i < len(o.Clients) {
			o.Clients[i].Restore(cs)
		}
	}
	o.Trace.Restore(snap.Trace)
}

// SetStore attaches a checkpoint store: Checkpoint() saves snapshots to it
// and every completed arbitration round — executed or empty — is appended
// to its write-ahead journal as it happens.
func (o *Orchestrator) SetStore(st *ckpt.Store) {
	o.store = st
	o.Arbiter.OnRound(func(ev arbiter.RoundEvent) {
		if o.detached || o.store == nil {
			return
		}
		// Journal write failures must not take the round down with them;
		// the next full snapshot re-covers the state.
		_ = o.store.Append(RoundKind, ev)
	})
}

// Store returns the attached checkpoint store (nil if none).
func (o *Orchestrator) Store() *ckpt.Store { return o.store }

// Checkpoint writes a full snapshot to the attached store, resetting the
// journal (a snapshot subsumes every round journaled before it).
func (o *Orchestrator) Checkpoint() error {
	if o.store == nil {
		return errors.New("core: no checkpoint store attached (SetStore)")
	}
	blob, err := ckpt.Encode(SnapshotKind, o.Snapshot())
	if err != nil {
		return err
	}
	return o.store.SaveSnapshot(blob)
}

// Restore loads the last snapshot from the store into the freshly built
// orchestrator and replays the journal on top: arbitration rounds recorded
// after the snapshot re-apply their T_waiting queues (Recovery entries
// included), settle/cooldown deadlines, and round accounting. A torn
// journal tail (the crash cut a write short) is dropped by the store.
func Restore(o *Orchestrator, st *ckpt.Store) error {
	blob, err := st.LoadSnapshot()
	if err != nil {
		return err
	}
	var snap Snapshot
	if err := ckpt.Decode(blob, SnapshotKind, &snap); err != nil {
		return err
	}
	o.Restore(snap)
	return st.Replay(func(rec ckpt.Record) error {
		if rec.Kind != RoundKind {
			return nil
		}
		var ev arbiter.RoundEvent
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			return err
		}
		o.Arbiter.ApplyRound(ev)
		return nil
	})
}
