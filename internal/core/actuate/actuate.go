// Package actuate implements DYFLOW's Actuation stage (paper §2.4): the
// low-level operations invoked by Arbitration's final plan, executed
// through a plugin into the static workflow service that talks to the
// cluster. Having Actuation be a plugin keeps the DYFLOW model portable
// across cluster architectures; the production plugin here drives the
// Cheetah/Savanna stand-in (internal/wms).
package actuate

import (
	"fmt"

	"dyflow/internal/core/arbiter"
	"dyflow/internal/resmgr"
	"dyflow/internal/sim"
	"dyflow/internal/trace"
	"dyflow/internal/wms"
)

// Plugin is the low-level operation surface Actuation needs from the
// underlying workflow service: start_task_with_resources, stop_task, and
// get_resource_status. request/release_resources are exposed on the
// concrete plugin for completeness.
type Plugin interface {
	// StartTaskWithResources resolves a concrete healthy placement of the
	// requested shape and launches the task, running its user script
	// first. Blocks the calling process for the script duration.
	StartTaskWithResources(p *sim.Proc, workflow, task string, procs, perNode int, script string) error
	// StopTask signals the task and waits for it to terminate and release
	// its resources. Graceful stops wait for the current timestep.
	StopTask(p *sim.Proc, workflow, task string, graceful bool) error
	// ResourceStatus reports allocation health (get_resource_status).
	ResourceStatus() resmgr.Status
}

// SavannaPlugin adapts the Savanna runtime to the Plugin interface.
type SavannaPlugin struct {
	SV *wms.Savanna
}

// StartTaskWithResources carves a healthy placement and launches the task.
// procs/perNode are processes; the carve converts them to cores using the
// task's per-process footprint.
func (sp *SavannaPlugin) StartTaskWithResources(p *sim.Proc, workflow, taskName string, procs, perNode int, script string) error {
	cpp := sp.SV.CoresPerProc(workflow, taskName)
	rs, err := sp.SV.Manager().Carve(procs*cpp, perNode*cpp, nil)
	if err != nil {
		return fmt.Errorf("actuate: start %s/%s: %w", workflow, taskName, err)
	}
	return sp.SV.StartTask(p, workflow, taskName, rs, script)
}

// StopTask stops the task and waits for termination.
func (sp *SavannaPlugin) StopTask(p *sim.Proc, workflow, taskName string, graceful bool) error {
	return sp.SV.StopTask(p, workflow, taskName, graceful)
}

// ResourceStatus reports the current allocation status.
func (sp *SavannaPlugin) ResourceStatus() resmgr.Status { return sp.SV.ResourceStatus() }

// OpRecord times one executed low-level operation; the stop/start split is
// what shows ~97% of response time being graceful-termination wait (§4.6).
type OpRecord struct {
	Op        arbiter.Op
	StartedAt sim.Time
	EndedAt   sim.Time
	Err       string
}

// Duration returns the operation's execution time.
func (r OpRecord) Duration() sim.Time { return r.EndedAt - r.StartedAt }

// Executor applies plans through a plugin, sequentially and in order — the
// ordering produced by Arbitration guarantees operations that release
// resources precede those that acquire them.
type Executor struct {
	plugin  Plugin
	records []OpRecord
	onOp    func(OpRecord)
	tr      *trace.Recorder
}

// NewExecutor creates an Executor over the plugin.
func NewExecutor(plugin Plugin) *Executor { return &Executor{plugin: plugin} }

// OnOp registers an observer invoked after each executed operation.
func (ex *Executor) OnOp(fn func(OpRecord)) { ex.onOp = fn }

// SetTracer attaches the flight recorder for per-operation latency.
func (ex *Executor) SetTracer(tr *trace.Recorder) { ex.tr = tr }

// Records returns all executed operations.
func (ex *Executor) Records() []OpRecord { return ex.records }

// Execute applies the plan's operations in order, blocking the calling
// process. The first failing operation aborts the remainder.
func (ex *Executor) Execute(p *sim.Proc, plan arbiter.Plan) error {
	for _, op := range plan.Ops {
		rec := OpRecord{Op: op, StartedAt: p.Now()}
		var err error
		switch op.Kind {
		case arbiter.OpStop:
			err = ex.plugin.StopTask(p, op.Workflow, op.Task, op.Graceful)
		case arbiter.OpStart:
			err = ex.plugin.StartTaskWithResources(p, op.Workflow, op.Task, op.Procs, op.PerNode, op.Script)
		default:
			err = fmt.Errorf("actuate: unknown op kind %v", op.Kind)
		}
		rec.EndedAt = p.Now()
		if err != nil {
			rec.Err = err.Error()
			ex.tr.Inc("actuate.failed_ops", 1)
		}
		ex.tr.OpExecuted(op.Kind.String(), rec.StartedAt, rec.EndedAt)
		ex.tr.Inc("actuate.ops", 1)
		ex.records = append(ex.records, rec)
		if ex.onOp != nil {
			ex.onOp(rec)
		}
		if err != nil {
			return fmt.Errorf("actuate: %s %s/%s: %w", op.Kind, op.Workflow, op.Task, err)
		}
	}
	return nil
}

// StopShare computes the fraction of total execution time spent in stop
// operations (graceful-termination waits) across all records.
func (ex *Executor) StopShare() float64 {
	var stop, total sim.Time
	for _, r := range ex.records {
		d := r.Duration()
		total += d
		if r.Op.Kind == arbiter.OpStop {
			stop += d
		}
	}
	if total == 0 {
		return 0
	}
	return float64(stop) / float64(total)
}
