// Package actuate implements DYFLOW's Actuation stage (paper §2.4): the
// low-level operations invoked by Arbitration's final plan, executed
// through a plugin into the static workflow service that talks to the
// cluster. Having Actuation be a plugin keeps the DYFLOW model portable
// across cluster architectures; the production plugin here drives the
// Cheetah/Savanna stand-in (internal/wms).
//
// Actuation is also where transient failure meets the plan: a node can die
// between planning and execution, a carve can come up short, a placement
// can be lost while a start script runs. The Executor classifies each op
// failure as retryable or terminal (see Retryable), retries retryable
// starts with capped exponential backoff — re-carving with the just-failed
// nodes excluded — and, when a plan still fails mid-way, reports exactly
// which operations applied and which START ops never took effect so the
// Arbitration engine can re-enqueue the stranded tasks (DESIGN.md §10).
package actuate

import (
	"errors"
	"fmt"
	"time"

	"dyflow/internal/cluster"
	"dyflow/internal/core/arbiter"
	"dyflow/internal/resmgr"
	"dyflow/internal/sim"
	"dyflow/internal/trace"
	"dyflow/internal/wms"
)

// Plugin is the low-level operation surface Actuation needs from the
// underlying workflow service: start_task_with_resources, stop_task, and
// get_resource_status. request/release_resources are exposed on the
// concrete plugin for completeness.
type Plugin interface {
	// StartTaskWithResources resolves a concrete healthy placement of the
	// requested shape — never using the excluded nodes — and launches the
	// task, running its user script first. Blocks the calling process for
	// the script duration.
	StartTaskWithResources(p *sim.Proc, workflow, task string, procs, perNode int, script string, exclude []cluster.NodeID) error
	// StopTask signals the task and waits for it to terminate and release
	// its resources. Graceful stops wait for the current timestep.
	StopTask(p *sim.Proc, workflow, task string, graceful bool) error
	// ResourceStatus reports allocation health (get_resource_status).
	ResourceStatus() resmgr.Status
}

// SavannaPlugin adapts the Savanna runtime to the Plugin interface.
type SavannaPlugin struct {
	SV *wms.Savanna
}

// StartTaskWithResources carves a healthy placement avoiding the excluded
// nodes and launches the task. procs/perNode are processes; the carve
// converts them to cores using the task's per-process footprint.
func (sp *SavannaPlugin) StartTaskWithResources(p *sim.Proc, workflow, taskName string, procs, perNode int, script string, exclude []cluster.NodeID) error {
	cpp := sp.SV.CoresPerProc(workflow, taskName)
	rs, err := sp.SV.Manager().Carve(procs*cpp, perNode*cpp, exclude)
	if err != nil {
		return fmt.Errorf("actuate: start %s/%s: %w", workflow, taskName, err)
	}
	return sp.SV.StartTask(p, workflow, taskName, rs, script)
}

// StopTask stops the task and waits for termination.
func (sp *SavannaPlugin) StopTask(p *sim.Proc, workflow, taskName string, graceful bool) error {
	return sp.SV.StopTask(p, workflow, taskName, graceful)
}

// ResourceStatus reports the current allocation status.
func (sp *SavannaPlugin) ResourceStatus() resmgr.Status { return sp.SV.ResourceStatus() }

// Retryable classifies an op failure: transient failures — a carve or
// assignment short on resources (a node may have died between planning and
// execution, or another op's release has not landed yet) and a placement
// lost to node failure during the start script — are worth retrying on a
// fresh carve. Everything else (unknown task, task already running, ...)
// is terminal: retrying would repeat the same deterministic refusal.
func Retryable(err error) bool {
	var pl *wms.PlacementLostError
	return errors.Is(err, resmgr.ErrInsufficient) || errors.As(err, &pl)
}

// lostNodes extracts the nodes a placement-lost failure named, if any.
func lostNodes(err error) []cluster.NodeID {
	var pl *wms.PlacementLostError
	if errors.As(err, &pl) {
		return pl.Nodes
	}
	return nil
}

// RetryPolicy caps the Executor's transient-failure retries of START
// operations. STOP operations are never retried: stopping an already-down
// task is a no-op in the plugin, so a stop either applies or fails
// terminally.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per START op (>= 1).
	MaxAttempts int
	// Backoff is the delay before the first retry; it doubles per retry.
	Backoff time.Duration
	// MaxBackoff caps the doubled delay.
	MaxBackoff time.Duration
}

// DefaultRetryPolicy returns the production retry budget: three attempts
// with 2s/4s backoff — enough to ride out a node death racing the plan
// without stretching the response time past the graceful-drain share that
// already dominates it (§4.6).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, Backoff: 2 * time.Second, MaxBackoff: 30 * time.Second}
}

// OpRecord times one executed low-level operation; the stop/start split is
// what shows ~97% of response time being graceful-termination wait (§4.6).
type OpRecord struct {
	Op        arbiter.Op
	StartedAt sim.Time
	EndedAt   sim.Time
	Err       string
	// Attempts counts the tries this op took (1 = applied first try);
	// attempts beyond the first are transient-failure retries.
	Attempts int
}

// Duration returns the operation's execution time.
func (r OpRecord) Duration() sim.Time { return r.EndedAt - r.StartedAt }

// Executor applies plans through a plugin, sequentially and in order — the
// ordering produced by Arbitration guarantees operations that release
// resources precede those that acquire them.
type Executor struct {
	plugin  Plugin
	retry   RetryPolicy
	records []OpRecord
	onOp    func(OpRecord)
	tr      *trace.Recorder
}

// NewExecutor creates an Executor over the plugin with the default retry
// policy.
func NewExecutor(plugin Plugin) *Executor {
	return &Executor{plugin: plugin, retry: DefaultRetryPolicy()}
}

// SetRetryPolicy overrides the transient-failure retry budget.
func (ex *Executor) SetRetryPolicy(p RetryPolicy) {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	ex.retry = p
}

// OnOp registers an observer invoked after each executed operation.
func (ex *Executor) OnOp(fn func(OpRecord)) { ex.onOp = fn }

// SetTracer attaches the flight recorder for per-operation latency.
func (ex *Executor) SetTracer(tr *trace.Recorder) { ex.tr = tr }

// Records returns all executed operations.
func (ex *Executor) Records() []OpRecord { return ex.records }

// startWithRetry applies one START op, retrying transient failures with
// capped exponential backoff. Every attempt excludes the nodes earlier
// attempts lost placements on, plus whatever the allocation currently
// reports unhealthy — so the re-carve never lands back on a node that just
// failed, even if a heal races the retry.
func (ex *Executor) startWithRetry(p *sim.Proc, op arbiter.Op) (attempts int, err error) {
	var exclude []cluster.NodeID
	excluded := make(map[cluster.NodeID]bool)
	addExclude := func(ids []cluster.NodeID) {
		for _, id := range ids {
			if !excluded[id] {
				excluded[id] = true
				exclude = append(exclude, id)
			}
		}
	}
	backoff := ex.retry.Backoff
	for attempt := 1; ; attempt++ {
		addExclude(ex.plugin.ResourceStatus().UnhealthyNodes)
		err = ex.plugin.StartTaskWithResources(p, op.Workflow, op.Task, op.Procs, op.PerNode, op.Script, cluster.SortNodeIDs(exclude))
		if err == nil {
			if attempt > 1 {
				ex.tr.Inc("actuate.recovered_ops", 1)
			}
			return attempt, nil
		}
		addExclude(lostNodes(err))
		if attempt >= ex.retry.MaxAttempts || !Retryable(err) {
			return attempt, err
		}
		ex.tr.Inc("actuate.retries", 1)
		if backoff > 0 {
			if serr := p.SleepUninterruptible(backoff); serr != nil {
				return attempt, err
			}
			backoff *= 2
			if ex.retry.MaxBackoff > 0 && backoff > ex.retry.MaxBackoff {
				backoff = ex.retry.MaxBackoff
			}
		}
	}
}

// Execute applies the plan's operations in order, blocking the calling
// process. Retryable START failures are retried within the policy budget;
// the first terminally failing operation aborts the remainder. The report
// states how much of the plan applied and which START ops never took
// effect, so the engine can recover the tasks they were meant to launch.
func (ex *Executor) Execute(p *sim.Proc, plan arbiter.Plan) (arbiter.ExecReport, error) {
	var rep arbiter.ExecReport
	for i, op := range plan.Ops {
		rec := OpRecord{Op: op, StartedAt: p.Now(), Attempts: 1}
		var err error
		switch op.Kind {
		case arbiter.OpStop:
			err = ex.plugin.StopTask(p, op.Workflow, op.Task, op.Graceful)
		case arbiter.OpStart:
			rec.Attempts, err = ex.startWithRetry(p, op)
		default:
			err = fmt.Errorf("actuate: unknown op kind %v", op.Kind)
		}
		rec.EndedAt = p.Now()
		if err != nil {
			rec.Err = err.Error()
			ex.tr.Inc("actuate.failed_ops", 1)
		}
		ex.tr.OpExecuted(op.Kind.String(), rec.StartedAt, rec.EndedAt)
		ex.tr.Inc("actuate.ops", 1)
		ex.records = append(ex.records, rec)
		if ex.onOp != nil {
			ex.onOp(rec)
		}
		if err != nil {
			// The failed op and everything after it never applied; collect
			// the START ops among them for the engine's recovery queue.
			rep.Aborted = len(plan.Ops) - i
			for _, rest := range plan.Ops[i:] {
				if rest.Kind == arbiter.OpStart {
					rep.UnappliedStarts = append(rep.UnappliedStarts, rest)
				}
			}
			return rep, fmt.Errorf("actuate: %s %s/%s: %w", op.Kind, op.Workflow, op.Task, err)
		}
		rep.Applied++
	}
	return rep, nil
}

// StopShare computes the fraction of total execution time spent in stop
// operations (graceful-termination waits) across all records.
func (ex *Executor) StopShare() float64 {
	var stop, total sim.Time
	for _, r := range ex.records {
		d := r.Duration()
		total += d
		if r.Op.Kind == arbiter.OpStop {
			stop += d
		}
	}
	if total == 0 {
		return 0
	}
	return float64(stop) / float64(total)
}
