package actuate

import (
	"errors"
	"testing"
	"time"

	"dyflow/internal/cluster"
	"dyflow/internal/core/arbiter"
	"dyflow/internal/fsim"
	"dyflow/internal/resmgr"
	"dyflow/internal/sim"
	"dyflow/internal/stream"
	"dyflow/internal/task"
	"dyflow/internal/trace"
	"dyflow/internal/wms"
)

type rig struct {
	s  *sim.Sim
	rm *resmgr.Manager
	sv *wms.Savanna
	ex *Executor
}

func newRig(t *testing.T) *rig {
	t.Helper()
	s := sim.New(1)
	c := cluster.Deepthought2(s, 3)
	rm := resmgr.New(c)
	if _, err := rm.Allocate(3); err != nil {
		t.Fatal(err)
	}
	env := &task.Env{Sim: s, FS: fsim.New(s), Streams: stream.NewRegistry(s)}
	sv := wms.New(env, rm)
	sv.Compose(&wms.WorkflowSpec{
		ID: "WF",
		Tasks: []wms.TaskConfig{
			{
				Spec: task.Spec{Name: "A", Workflow: "WF",
					Cost: task.Cost{Work: 100 * time.Second}, TotalSteps: 1000},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
			{
				Spec: task.Spec{Name: "B", Workflow: "WF",
					Cost: task.Cost{Work: 10 * time.Second}, TotalSteps: 1000},
				Procs: 10, ProcsPerNode: 5,
			},
		},
	})
	return &rig{s: s, rm: rm, sv: sv, ex: NewExecutor(&SavannaPlugin{SV: sv})}
}

func TestExecutePlanInOrder(t *testing.T) {
	r := newRig(t)
	var ops []OpRecord
	r.ex.OnOp(func(rec OpRecord) { ops = append(ops, rec) })

	r.s.Spawn("driver", func(p *sim.Proc) {
		if err := r.sv.Launch(p, "WF"); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		p.Sleep(5 * time.Second)
		plan := arbiter.Plan{
			Workflow: "WF",
			Ops: []arbiter.Op{
				{Kind: arbiter.OpStop, Workflow: "WF", Task: "A", Graceful: true},
				{Kind: arbiter.OpStart, Workflow: "WF", Task: "A", Procs: 20, PerNode: 0},
				{Kind: arbiter.OpStart, Workflow: "WF", Task: "B", Procs: 10, PerNode: 5},
			},
		}
		rep, err := r.ex.Execute(p, plan)
		if err != nil {
			t.Errorf("execute: %v", err)
		}
		if rep.Applied != 3 || rep.Aborted != 0 || len(rep.UnappliedStarts) != 0 {
			t.Errorf("report = %+v, want 3 applied", rep)
		}
	})
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(ops))
	}
	// The graceful stop took the remainder of A's current step (~5s).
	if d := ops[0].Duration(); d < 4*time.Second || d > 6*time.Second {
		t.Fatalf("stop duration = %v, want ~5s drain", d)
	}
	// Starts are quick (no scripts).
	if ops[1].Duration() > time.Second || ops[2].Duration() > time.Second {
		t.Fatalf("start durations = %v, %v", ops[1].Duration(), ops[2].Duration())
	}
	if r.sv.Instance("WF", "A").Placement.Procs() != 20 {
		t.Fatal("A not resized")
	}
	if !r.sv.TaskRunning("WF", "B") {
		t.Fatal("B not started")
	}
	if share := r.ex.StopShare(); share < 0.8 {
		t.Fatalf("stop share = %v, want graceful stop to dominate", share)
	}
}

func TestExecuteAbortsOnInfeasibleStart(t *testing.T) {
	r := newRig(t)
	r.s.Spawn("driver", func(p *sim.Proc) {
		// 60 cores total; asking for 100 must fail and abort the rest.
		plan := arbiter.Plan{
			Workflow: "WF",
			Ops: []arbiter.Op{
				{Kind: arbiter.OpStart, Workflow: "WF", Task: "A", Procs: 100},
				{Kind: arbiter.OpStart, Workflow: "WF", Task: "B", Procs: 10},
			},
		}
		rep, err := r.ex.Execute(p, plan)
		if err == nil {
			t.Error("expected carve failure")
		}
		if !errors.Is(err, resmgr.ErrInsufficient) {
			t.Errorf("err = %v, want ErrInsufficient", err)
		}
		// Both START ops never applied and must be reported for recovery.
		if rep.Applied != 0 || rep.Aborted != 2 || len(rep.UnappliedStarts) != 2 {
			t.Errorf("report = %+v, want 0 applied, 2 aborted starts", rep)
		}
	})
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if r.sv.TaskRunning("WF", "B") {
		t.Fatal("ops after the failing one must not execute")
	}
	recs := r.ex.Records()
	if len(recs) != 1 || recs[0].Err == "" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestStartRetriesInjectedCarveFaultAndRecovers(t *testing.T) {
	r := newRig(t)
	tr := trace.New()
	r.ex.SetTracer(tr)
	r.ex.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, Backoff: 2 * time.Second})
	faults := resmgr.NewFaults(1, 1.0)
	r.rm.InjectFaults(faults)
	// Attempts land at t=1s, 3s, 7s; the fault clears at 5s, so the third
	// attempt succeeds.
	r.s.At(5*time.Second, func() { faults.CarveFailProb = 0 })

	r.s.Spawn("driver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		plan := arbiter.Plan{Workflow: "WF", Ops: []arbiter.Op{
			{Kind: arbiter.OpStart, Workflow: "WF", Task: "B", Procs: 10, PerNode: 5},
		}}
		rep, err := r.ex.Execute(p, plan)
		if err != nil {
			t.Errorf("execute: %v", err)
		}
		if rep.Applied != 1 {
			t.Errorf("report = %+v, want 1 applied", rep)
		}
	})
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !r.sv.TaskRunning("WF", "B") {
		t.Fatal("B not started")
	}
	recs := r.ex.Records()
	if len(recs) != 1 || recs[0].Attempts != 3 || recs[0].Err != "" {
		t.Fatalf("records = %+v, want one op applied on attempt 3", recs)
	}
	if got := tr.Counter("actuate.retries"); got != 2 {
		t.Fatalf("actuate.retries = %d, want 2", got)
	}
	if got := tr.Counter("actuate.recovered_ops"); got != 1 {
		t.Fatalf("actuate.recovered_ops = %d, want 1", got)
	}
	if faults.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", faults.Injected())
	}
}

func TestStartRetryUntilExhausted(t *testing.T) {
	r := newRig(t)
	tr := trace.New()
	r.ex.SetTracer(tr)
	r.rm.InjectFaults(resmgr.NewFaults(1, 1.0)) // every carve fails
	r.s.Spawn("driver", func(p *sim.Proc) {
		plan := arbiter.Plan{Workflow: "WF", Ops: []arbiter.Op{
			{Kind: arbiter.OpStart, Workflow: "WF", Task: "B", Procs: 10, PerNode: 5},
		}}
		rep, err := r.ex.Execute(p, plan)
		if !errors.Is(err, resmgr.ErrInsufficient) {
			t.Errorf("err = %v, want ErrInsufficient", err)
		}
		if rep.Applied != 0 || rep.Aborted != 1 || len(rep.UnappliedStarts) != 1 {
			t.Errorf("report = %+v, want the start reported unapplied", rep)
		}
	})
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	recs := r.ex.Records()
	if len(recs) != 1 || recs[0].Attempts != DefaultRetryPolicy().MaxAttempts {
		t.Fatalf("records = %+v, want retry budget exhausted", recs)
	}
	if got := tr.Counter("actuate.retries"); got != int64(DefaultRetryPolicy().MaxAttempts-1) {
		t.Fatalf("actuate.retries = %d", got)
	}
	if tr.Counter("actuate.recovered_ops") != 0 {
		t.Fatal("nothing recovered, counter must stay 0")
	}
	if owners := r.rm.Owners(); len(owners) != 0 {
		t.Fatalf("leaked assignments: %v", owners)
	}
}

// A node dies while the start script runs, then heals before the retry
// lands. The retry must re-carve around the just-failed node (the exclude
// list), not trust its apparent health.
func TestStartRecarvesAroundLostNode(t *testing.T) {
	s := sim.New(1)
	c := cluster.Deepthought2(s, 3)
	rm := resmgr.New(c)
	if _, err := rm.Allocate(3); err != nil {
		t.Fatal(err)
	}
	env := &task.Env{Sim: s, FS: fsim.New(s), Streams: stream.NewRegistry(s)}
	sv := wms.New(env, rm)
	sv.Compose(&wms.WorkflowSpec{
		ID: "WF",
		Tasks: []wms.TaskConfig{{
			Spec: task.Spec{Name: "B", Workflow: "WF",
				Cost: task.Cost{Work: 100 * time.Second}, TotalSteps: 1000},
			Procs: 20, ProcsPerNode: 20, StartScript: "boot.sh",
		}},
	})
	sv.RegisterScript("boot.sh", 10*time.Second)
	ex := NewExecutor(&SavannaPlugin{SV: sv})
	ex.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, Backoff: 2 * time.Second})
	tr := trace.New()
	ex.SetTracer(tr)

	// The first carve fills node000; it dies mid-script and heals before
	// the retry, so a naive re-carve would land right back on it.
	s.At(5*time.Second, func() { c.FailNode("node000") })
	s.At(6*time.Second, func() { c.RestoreNode("node000") })

	s.Spawn("driver", func(p *sim.Proc) {
		plan := arbiter.Plan{Workflow: "WF", Ops: []arbiter.Op{
			{Kind: arbiter.OpStart, Workflow: "WF", Task: "B", Procs: 20, PerNode: 20, Script: "boot.sh"},
		}}
		if _, err := ex.Execute(p, plan); err != nil {
			t.Errorf("execute: %v", err)
		}
	})
	if err := s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !sv.TaskRunning("WF", "B") {
		t.Fatal("B not started")
	}
	pl := sv.Instance("WF", "B").Placement
	if _, onDead := pl["node000"]; onDead {
		t.Fatalf("retry landed back on the just-failed node: %v", pl)
	}
	recs := ex.Records()
	if len(recs) != 1 || recs[0].Attempts != 2 {
		t.Fatalf("records = %+v, want success on attempt 2", recs)
	}
	if tr.Counter("actuate.recovered_ops") != 1 {
		t.Fatal("recovered_ops counter not incremented")
	}
}

// A mid-plan failure after a successful stop: the report must show the
// stop applied and the start aborted so the engine can requeue the task.
func TestExecuteReportsStopAppliedStartAborted(t *testing.T) {
	r := newRig(t)
	r.ex.SetRetryPolicy(RetryPolicy{MaxAttempts: 1})
	r.s.Spawn("driver", func(p *sim.Proc) {
		if err := r.sv.Launch(p, "WF"); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		p.Sleep(5 * time.Second)
		plan := arbiter.Plan{Workflow: "WF", Ops: []arbiter.Op{
			{Kind: arbiter.OpStop, Workflow: "WF", Task: "A", Graceful: true},
			{Kind: arbiter.OpStart, Workflow: "WF", Task: "A", Procs: 100},
		}}
		rep, err := r.ex.Execute(p, plan)
		if !errors.Is(err, resmgr.ErrInsufficient) {
			t.Errorf("err = %v, want ErrInsufficient", err)
		}
		if rep.Applied != 1 || rep.Aborted != 1 {
			t.Errorf("report = %+v, want stop applied, start aborted", rep)
		}
		if len(rep.UnappliedStarts) != 1 || rep.UnappliedStarts[0].Task != "A" {
			t.Errorf("unapplied starts = %+v", rep.UnappliedStarts)
		}
	})
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	recs := r.ex.Records()
	if len(recs) != 2 || recs[0].Err != "" || recs[1].Err == "" {
		t.Fatalf("records = %+v", recs)
	}
	if r.sv.TaskRunning("WF", "A") {
		t.Fatal("A must be stranded stopped (the engine requeues it)")
	}
}

func TestResourceStatusPassThrough(t *testing.T) {
	r := newRig(t)
	st := r.ex.plugin.ResourceStatus()
	if len(st.AllocatedNodes) != 3 {
		t.Fatalf("allocated = %v", st.AllocatedNodes)
	}
	if st.FreeCores.Total() != 60 {
		t.Fatalf("free = %d", st.FreeCores.Total())
	}
}
