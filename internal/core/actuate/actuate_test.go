package actuate

import (
	"errors"
	"testing"
	"time"

	"dyflow/internal/cluster"
	"dyflow/internal/core/arbiter"
	"dyflow/internal/fsim"
	"dyflow/internal/resmgr"
	"dyflow/internal/sim"
	"dyflow/internal/stream"
	"dyflow/internal/task"
	"dyflow/internal/wms"
)

type rig struct {
	s  *sim.Sim
	rm *resmgr.Manager
	sv *wms.Savanna
	ex *Executor
}

func newRig(t *testing.T) *rig {
	t.Helper()
	s := sim.New(1)
	c := cluster.Deepthought2(s, 3)
	rm := resmgr.New(c)
	if _, err := rm.Allocate(3); err != nil {
		t.Fatal(err)
	}
	env := &task.Env{Sim: s, FS: fsim.New(s), Streams: stream.NewRegistry(s)}
	sv := wms.New(env, rm)
	sv.Compose(&wms.WorkflowSpec{
		ID: "WF",
		Tasks: []wms.TaskConfig{
			{
				Spec: task.Spec{Name: "A", Workflow: "WF",
					Cost: task.Cost{Work: 100 * time.Second}, TotalSteps: 1000},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
			{
				Spec: task.Spec{Name: "B", Workflow: "WF",
					Cost: task.Cost{Work: 10 * time.Second}, TotalSteps: 1000},
				Procs: 10, ProcsPerNode: 5,
			},
		},
	})
	return &rig{s: s, rm: rm, sv: sv, ex: NewExecutor(&SavannaPlugin{SV: sv})}
}

func TestExecutePlanInOrder(t *testing.T) {
	r := newRig(t)
	var ops []OpRecord
	r.ex.OnOp(func(rec OpRecord) { ops = append(ops, rec) })

	r.s.Spawn("driver", func(p *sim.Proc) {
		if err := r.sv.Launch(p, "WF"); err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		p.Sleep(5 * time.Second)
		plan := arbiter.Plan{
			Workflow: "WF",
			Ops: []arbiter.Op{
				{Kind: arbiter.OpStop, Workflow: "WF", Task: "A", Graceful: true},
				{Kind: arbiter.OpStart, Workflow: "WF", Task: "A", Procs: 20, PerNode: 0},
				{Kind: arbiter.OpStart, Workflow: "WF", Task: "B", Procs: 10, PerNode: 5},
			},
		}
		if err := r.ex.Execute(p, plan); err != nil {
			t.Errorf("execute: %v", err)
		}
	})
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(ops))
	}
	// The graceful stop took the remainder of A's current step (~5s).
	if d := ops[0].Duration(); d < 4*time.Second || d > 6*time.Second {
		t.Fatalf("stop duration = %v, want ~5s drain", d)
	}
	// Starts are quick (no scripts).
	if ops[1].Duration() > time.Second || ops[2].Duration() > time.Second {
		t.Fatalf("start durations = %v, %v", ops[1].Duration(), ops[2].Duration())
	}
	if r.sv.Instance("WF", "A").Placement.Procs() != 20 {
		t.Fatal("A not resized")
	}
	if !r.sv.TaskRunning("WF", "B") {
		t.Fatal("B not started")
	}
	if share := r.ex.StopShare(); share < 0.8 {
		t.Fatalf("stop share = %v, want graceful stop to dominate", share)
	}
}

func TestExecuteAbortsOnInfeasibleStart(t *testing.T) {
	r := newRig(t)
	r.s.Spawn("driver", func(p *sim.Proc) {
		// 60 cores total; asking for 100 must fail and abort the rest.
		plan := arbiter.Plan{
			Workflow: "WF",
			Ops: []arbiter.Op{
				{Kind: arbiter.OpStart, Workflow: "WF", Task: "A", Procs: 100},
				{Kind: arbiter.OpStart, Workflow: "WF", Task: "B", Procs: 10},
			},
		}
		err := r.ex.Execute(p, plan)
		if err == nil {
			t.Error("expected carve failure")
		}
		if !errors.Is(err, resmgr.ErrInsufficient) {
			t.Errorf("err = %v, want ErrInsufficient", err)
		}
	})
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if r.sv.TaskRunning("WF", "B") {
		t.Fatal("ops after the failing one must not execute")
	}
	recs := r.ex.Records()
	if len(recs) != 1 || recs[0].Err == "" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestResourceStatusPassThrough(t *testing.T) {
	r := newRig(t)
	st := r.ex.plugin.ResourceStatus()
	if len(st.AllocatedNodes) != 3 {
		t.Fatalf("allocated = %v", st.AllocatedNodes)
	}
	if st.FreeCores.Total() != 60 {
		t.Fatalf("free = %d", st.FreeCores.Total())
	}
}
