package core

import (
	"testing"
	"time"

	"dyflow/internal/core/arbiter"
	"dyflow/internal/core/spec"
	"dyflow/internal/sim"
	"dyflow/internal/task"
	"dyflow/internal/wms"
)

// TestSelfMonitoringSensorFiresPolicy closes the self-observation loop: a
// dyflow-source sensor polls the orchestrator's own monitor.forwarded
// counter, the reading flows through the normal Monitor -> Decision ->
// Arbitration -> Actuation pipeline, and a GT policy on it stops a running
// task — policies reacting to orchestrator health exactly like they react
// to workflow telemetry.
func TestSelfMonitoringSensorFiresPolicy(t *testing.T) {
	w := newWorld(t, 2)
	w.sv.Compose(&wms.WorkflowSpec{
		ID: "WF",
		Tasks: []wms.TaskConfig{
			{
				Spec: task.Spec{
					Name: "Job", Workflow: "WF",
					Cost: task.Cost{Work: 10 * time.Second}, TotalSteps: 100000,
				},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
		},
	})

	// The SELF sensor reads monitor.forwarded: every forwarded batch —
	// including this sensor's own — raises it, so the series climbs
	// deterministically at the 1s poll cadence and crosses the threshold.
	cfg, err := spec.CompileString(`
<dyflow>
  <monitor>
    <sensors>
      <sensor id="SELF" type="DYFLOW">
        <group-by><group granularity="task" reduction-operation="LAST"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Job" workflowId="WF">
        <use-sensor sensor-id="SELF" info="monitor.forwarded"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="STOP_ON_CHATTER">
        <eval operation="GT" threshold="40"/>
        <sensors-to-use><use-sensor id="SELF" granularity="task"/></sensors-to-use>
        <action>STOP</action>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="WF">
      <apply-policy policyId="STOP_ON_CHATTER" assess-task="Job">
        <act-on-tasks>Job</act-on-tasks>
      </apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="WF">
        <task-priorities><task-priority name="Job" priority="0"/></task-priorities>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>`)
	if err != nil {
		t.Fatal(err)
	}

	o := New(w.env, w.sv, cfg, Options{
		Arbiter: arbiter.Config{
			WarmupDelay: 30 * time.Second,
			SettleDelay: 30 * time.Second,
			PlanCost:    100 * time.Millisecond,
		},
	})
	o.Start()
	w.s.Spawn("driver", func(p *sim.Proc) {
		if err := w.sv.Launch(p, "WF"); err != nil {
			t.Errorf("launch: %v", err)
		}
	})
	if err := w.s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}

	recs := o.Arbiter.Records()
	if len(recs) == 0 {
		t.Fatal("self-monitoring policy never reached arbitration")
	}
	var stop *arbiter.Op
	for i, op := range recs[0].Plan.Ops {
		if op.Kind == arbiter.OpStop && op.Task == "Job" {
			stop = &recs[0].Plan.Ops[i]
		}
	}
	if stop == nil {
		t.Fatalf("plan %v lacks the Job stop", recs[0].Plan.Ops)
	}
	if w.sv.TaskRunning("WF", "Job") {
		t.Fatal("Job still running after self-monitoring STOP")
	}
	// The suggestion lifecycle attributes the action to the SELF sensor.
	found := false
	for _, sp := range o.Trace.Spans() {
		if sp.Sensor == "SELF" && sp.Policy == "STOP_ON_CHATTER" {
			found = true
		}
	}
	if !found {
		t.Fatal("no suggestion span attributed to the SELF sensor")
	}
	// The self-read value and the live counter agree in magnitude: the
	// forwarded counter kept climbing while the sensor was polling it.
	if o.Trace.Counter("monitor.forwarded") <= 40 {
		t.Fatalf("monitor.forwarded = %d, want > policy threshold",
			o.Trace.Counter("monitor.forwarded"))
	}
	o.Stop()
}
