// Package core assembles DYFLOW's four stages — Monitor (sensor), Decision
// (decision), Arbitration (arbiter), and Actuation (actuate) — into a
// running orchestration service alongside the workflow management system,
// mirroring the paper's implementation (Figure 2): a bootstrap that parses
// the user's XML specification and starts the stage services, connected by
// JSON messages over shared queues, with Actuation plugged into Savanna.
package core

import (
	"fmt"
	"strings"
	"time"

	"dyflow/internal/ckpt"
	"dyflow/internal/core/actuate"
	"dyflow/internal/core/arbiter"
	"dyflow/internal/core/decision"
	"dyflow/internal/core/sensor"
	"dyflow/internal/core/spec"
	"dyflow/internal/msg"
	"dyflow/internal/obs"
	"dyflow/internal/task"
	"dyflow/internal/trace"
	"dyflow/internal/wms"
)

// Endpoint names on the orchestration bus.
const (
	EndpointMonitorServer = "monitor-server"
	EndpointDecision      = "decision"
	EndpointArbiter       = "arbiter"
)

// Options tunes the orchestrator.
type Options struct {
	// MonitorClients is the number of monitor client services the targets
	// are sharded across (the paper launches clients per scaling needs).
	// Default 1.
	MonitorClients int
	// SensorCosts calibrates sensor acquisition costs; zero fields take
	// the defaults.
	SensorCosts sensor.Costs
	// Arbiter configures warm-up/settle guards and plan cost; a zero value
	// takes DefaultConfig.
	Arbiter arbiter.Config
	// Retry overrides Actuation's transient-failure retry budget; nil
	// keeps actuate.DefaultRetryPolicy.
	Retry *actuate.RetryPolicy
	// BusLatency, if non-nil, models message transport latency.
	BusLatency func(from, to string) time.Duration
	// Metrics is the unified metrics registry the orchestrator publishes
	// into; nil creates a private one (always available on the
	// Orchestrator).
	Metrics *obs.Registry
	// Supervisor tunes stage supervision (panic recovery, stall watchdog,
	// restart backoff); zero fields take DefaultSupervisorConfig.
	Supervisor SupervisorConfig
	// NoSupervisor disables stage supervision entirely: stages run on plain
	// processes and a stage panic fails the simulation.
	NoSupervisor bool
}

// Orchestrator is a running DYFLOW service bound to one Savanna runtime.
type Orchestrator struct {
	Config   *spec.Config
	Savanna  *wms.Savanna
	Bus      *msg.Bus
	Server   *sensor.Server
	Clients  []*sensor.Client
	Decision *decision.Engine
	Arbiter  *arbiter.Engine
	Executor *actuate.Executor
	// Trace is the flight recorder threaded through all four stages; its
	// Report() is the §4.6 per-stage latency decomposition.
	Trace *trace.Recorder
	// Metrics is the unified metrics registry: flight-recorder mirrors plus
	// whatever substrate packages the harness wired in. Serves /metrics.
	Metrics *obs.Registry
	// Supervisor guards the stage processes (nil with NoSupervisor).
	Supervisor *Supervisor

	env      *task.Env
	store    *ckpt.Store
	detached bool
	stopped  bool
}

// New builds (but does not start) an orchestrator for the compiled user
// specification over the given Savanna runtime.
func New(env *task.Env, sv *wms.Savanna, cfg *spec.Config, opts Options) *Orchestrator {
	if opts.MonitorClients <= 0 {
		opts.MonitorClients = 1
	}
	zero := arbiter.Config{}
	if opts.Arbiter == zero {
		opts.Arbiter = arbiter.DefaultConfig()
	}
	bus := msg.NewBus(env.Sim)
	bus.Latency = opts.BusLatency

	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	o := &Orchestrator{
		Config:  cfg,
		Savanna: sv,
		Bus:     bus,
		Trace:   trace.New(),
		Metrics: opts.Metrics,
		env:     env,
	}
	o.Trace.SetMetrics(o.Metrics)
	bus.OnDepth = o.Trace.QueueDepth

	// Monitor: server plus sharded clients.
	o.Server = sensor.NewServer(env.Sim, bus, EndpointMonitorServer, EndpointDecision, cfg)
	workload := &savannaWorkload{sv: sv}
	for i := 0; i < opts.MonitorClients; i++ {
		var shard []spec.MonitorTarget
		for j, tg := range cfg.Targets {
			if j%opts.MonitorClients == i {
				shard = append(shard, tg)
			}
		}
		name := fmt.Sprintf("monitor-client-%d", i)
		cl := sensor.NewClient(name, env, bus, EndpointMonitorServer, cfg, shard, workload, opts.SensorCosts)
		cl.SetSelfSource(&selfSource{o: o})
		cl.SetMetrics(opts.Metrics)
		o.Clients = append(o.Clients, cl)
	}

	// Decision.
	o.Decision = decision.New(env.Sim, bus, EndpointDecision, EndpointArbiter, cfg)

	// Actuation: the Savanna plugin.
	o.Executor = actuate.NewExecutor(&actuate.SavannaPlugin{SV: sv})
	if opts.Retry != nil {
		o.Executor.SetRetryPolicy(*opts.Retry)
	}

	// Arbitration.
	view := &savannaView{sv: sv}
	o.Arbiter = arbiter.New(env.Sim, bus, EndpointArbiter, opts.Arbiter, cfg.Rules, view, o.Executor)

	// Thread the flight recorder through all four stages.
	o.Server.SetTracer(o.Trace)
	o.Decision.SetTracer(o.Trace)
	o.Arbiter.SetTracer(o.Trace)
	o.Executor.SetTracer(o.Trace)

	// Stage supervision: every stage process runs panic-guarded so a stage
	// crash is absorbed and restarted instead of failing the simulation.
	if !opts.NoSupervisor {
		o.Supervisor = newSupervisor(o, opts.Supervisor)
		o.Server.SetSpawner(o.Supervisor.spawner(StageMonitorServer))
		for _, cl := range o.Clients {
			cl.SetSpawner(o.Supervisor.spawner(StageMonitorClient))
		}
		o.Decision.SetSpawner(o.Supervisor.spawner(StageDecision))
		o.Arbiter.SetSpawner(o.Supervisor.spawner(StageArbiter))
	}

	// Keep Decision consistent with runtime changes: a (re)started task's
	// stale history must not immediately re-trigger policies. Detached
	// (crashed) orchestrators share the Savanna with their replacement and
	// must stop reacting to its events.
	sv.OnEvent(func(ev wms.Event) {
		if o.detached {
			return
		}
		if ev.Kind == wms.TaskStarted {
			o.Decision.ResetTask(ev.Workflow, ev.Task)
		}
	})
	return o
}

// Start launches all stage services (the bootstrap step) and the stage
// supervisor's watchdog.
func (o *Orchestrator) Start() {
	o.stopped = false
	o.Server.Start()
	for _, c := range o.Clients {
		c.Start()
	}
	o.Decision.Start()
	o.Arbiter.Start()
	if o.Supervisor != nil {
		o.Supervisor.Start()
	}
}

// Stop interrupts all stage services. Idempotent: a second Stop — or a
// Stop before Start — is a no-op.
func (o *Orchestrator) Stop() {
	if o.stopped {
		return
	}
	o.stopped = true
	// Supervisor first, so stage teardown is not mistaken for a crash.
	if o.Supervisor != nil {
		o.Supervisor.Stop()
	}
	for _, c := range o.Clients {
		c.Stop()
	}
	o.Server.Stop()
	o.Decision.Stop()
	o.Arbiter.Stop()
}

// Detach permanently disconnects the orchestrator from shared substrate
// callbacks (Savanna events, the checkpoint journal). The chaos harness
// calls it on a "crashed" orchestrator so the instance restored in its
// place is the only one reacting.
func (o *Orchestrator) Detach() {
	o.detached = true
}

// NewArbiterView exposes the Savanna-backed arbiter View for harnesses
// that drive the Arbitration engine directly (e.g. the chaos tests, which
// need precisely timed rounds instead of the policy pipeline).
func NewArbiterView(sv *wms.Savanna) arbiter.View { return &savannaView{sv: sv} }

// selfSource resolves dyflow-source sensor metric names against the
// orchestrator's own observability state, in precedence order:
//
//	sensor.lag_p50:<id> / sensor.lag_p99:<id> — a sensor's detection-lag
//	    quantile in seconds (histogram-bucket resolution)
//	queue.max:<endpoint> — the endpoint's high-water bus queue depth
//	<registry family name> — the summed value of a registry family
//	    (e.g. dyflow_wms_placement_losses_total)
//	<flight-recorder counter> — any stage counter (arbiter.requeued_tasks,
//	    actuate.retries, ...); unknown counters read 0, so this arm always
//	    resolves — policies on not-yet-incremented counters see 0, not a
//	    dead sensor.
type selfSource struct{ o *Orchestrator }

func (s *selfSource) MetricValue(name string) (float64, bool) {
	switch {
	case strings.HasPrefix(name, "sensor.lag_p50:"):
		return s.o.Trace.SensorLagQuantile(strings.TrimPrefix(name, "sensor.lag_p50:"), 0.50).Seconds(), true
	case strings.HasPrefix(name, "sensor.lag_p99:"):
		return s.o.Trace.SensorLagQuantile(strings.TrimPrefix(name, "sensor.lag_p99:"), 0.99).Seconds(), true
	case strings.HasPrefix(name, "queue.max:"):
		return float64(s.o.Trace.QueueMaxDepth(strings.TrimPrefix(name, "queue.max:"))), true
	}
	if v, ok := s.o.Metrics.Value(name); ok {
		return v, true
	}
	return float64(s.o.Trace.Counter(name)), true
}

// savannaWorkload adapts Savanna to the monitor clients' Workload view.
type savannaWorkload struct{ sv *wms.Savanna }

func (w *savannaWorkload) Placement(workflow, taskName string) task.Placement {
	in := w.sv.Instance(workflow, taskName)
	if in == nil {
		return nil
	}
	return in.Placement
}

func (w *savannaWorkload) TaskRunning(workflow, taskName string) bool {
	return w.sv.TaskRunning(workflow, taskName)
}

// savannaView adapts Savanna to the arbiter's View: the snapshot of every
// composed task plus free healthy cores.
type savannaView struct{ sv *wms.Savanna }

func (v *savannaView) Snapshot(workflow string) (map[string]arbiter.TaskState, int) {
	out := make(map[string]arbiter.TaskState)
	wf := v.sv.Workflow(workflow)
	if wf == nil {
		return out, v.sv.Manager().Free().Total()
	}
	for _, cfg := range wf.Tasks {
		name := cfg.Spec.Name
		st := arbiter.TaskState{
			Procs:        cfg.Procs,
			PerNode:      cfg.ProcsPerNode,
			CoresPerProc: cfg.CoresPerProc,
			Script:       cfg.StartScript,
		}
		if in := v.sv.Instance(workflow, name); in != nil {
			st.Running = in.Alive()
			// The last incarnation's size is what a RESTART brings back.
			st.Procs = in.Placement.Procs()
			st.StartedAt = in.StartedAt()
			// A task resized away from its composed shape can no longer
			// honor the initial per-node packing; restarts place it
			// wherever healthy cores are free.
			if st.Procs != cfg.Procs {
				st.PerNode = 0
			}
		}
		out[name] = st
	}
	return out, v.sv.Manager().Free().Total()
}
