package core

import (
	"fmt"
	"time"

	"dyflow/internal/ckpt"
	"dyflow/internal/obs"
	"dyflow/internal/sim"
)

// Stage names used by the supervisor and the restart metric.
const (
	StageMonitorServer = "monitor-server"
	StageMonitorClient = "monitor-client"
	StageDecision      = "decision"
	StageArbiter       = "arbiter"
)

// SupervisorConfig tunes stage supervision.
type SupervisorConfig struct {
	// WatchEvery is the watchdog's sampling cadence.
	WatchEvery time.Duration
	// StallAfter is how long a stage's inbound queue may sit non-empty
	// without draining before the watchdog declares the stage stalled and
	// restarts it.
	StallAfter time.Duration
	// BackoffBase is the delay before the first restart of a stage;
	// subsequent restarts double it up to BackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxRestarts bounds restarts per stage; past it the supervisor gives
	// up and leaves the stage down (a crash loop must not spin forever).
	MaxRestarts int
}

// DefaultSupervisorConfig returns the default supervision policy.
func DefaultSupervisorConfig() SupervisorConfig {
	return SupervisorConfig{
		WatchEvery:  30 * time.Second,
		StallAfter:  2 * time.Minute,
		BackoffBase: time.Second,
		BackoffMax:  2 * time.Minute,
		MaxRestarts: 8,
	}
}

// stageGuard tracks one stage's supervision state.
type stageGuard struct {
	restarts     int
	lastProgress sim.Time
	lastPending  int
	down         bool // a restart is scheduled (or the stage was given up on)
	gaveUp       bool
}

// Supervisor wraps the orchestrator's stage processes with panic recovery
// and a liveness watchdog. A panicking stage process is absorbed (the
// simulation does not fail) and the stage is restarted after a bounded
// exponential backoff; a stage whose inbound queue stops draining is
// restarted the same way. When a checkpoint store is attached, restarts
// reload the stage's slice of the last snapshot — a panic can interrupt a
// stage mid-mutation, and the checkpoint is the last consistent state.
type Supervisor struct {
	o        *Orchestrator
	cfg      SupervisorConfig
	stages   map[string]*stageGuard
	proc     *sim.Proc
	stopped  bool
	restarts *obs.CounterVec // dyflow_stage_restarts_total{stage,reason}
}

func newSupervisor(o *Orchestrator, cfg SupervisorConfig) *Supervisor {
	def := DefaultSupervisorConfig()
	if cfg.WatchEvery <= 0 {
		cfg.WatchEvery = def.WatchEvery
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = def.StallAfter
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = def.BackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = def.BackoffMax
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = def.MaxRestarts
	}
	s := &Supervisor{
		o:   o,
		cfg: cfg,
		stages: map[string]*stageGuard{
			StageMonitorServer: {},
			StageMonitorClient: {},
			StageDecision:      {},
			StageArbiter:       {},
		},
		restarts: o.Metrics.Counter("dyflow_stage_restarts_total",
			"Supervised stage restarts by stage and reason (panic, stall).", "stage", "reason"),
	}
	return s
}

// logf writes to the simulation's debug log (inert without one).
func (s *Supervisor) logf(format string, args ...any) {
	if s.o.env.Sim.Logf != nil {
		s.o.env.Sim.Logf("[%12s] supervisor: %s", s.o.env.Sim.Now(), fmt.Sprintf(format, args...))
	}
}

// Restarts returns how many times a stage has been restarted.
func (s *Supervisor) Restarts(stage string) int {
	if g, ok := s.stages[stage]; ok {
		return g.restarts
	}
	return 0
}

// spawner returns the guarded spawner injected into a stage: a panic in
// the stage process is absorbed and triggers a supervised restart.
func (s *Supervisor) spawner(stage string) func(name string, fn func(*sim.Proc)) *sim.Proc {
	return func(name string, fn func(*sim.Proc)) *sim.Proc {
		return s.o.env.Sim.SpawnGuarded(name, fn, func(recovered any) {
			s.onPanic(stage)
		})
	}
}

func (s *Supervisor) onPanic(stage string) {
	if s.stopped {
		return
	}
	s.scheduleRestart(stage, "panic")
}

// scheduleRestart arms one restart of the stage after the backoff delay.
// Runs in kernel or process context; the restart itself runs as a timer
// event.
func (s *Supervisor) scheduleRestart(stage, reason string) {
	g := s.stages[stage]
	if g == nil || g.down {
		return
	}
	if g.restarts >= s.cfg.MaxRestarts {
		if !g.gaveUp {
			g.gaveUp = true
			g.down = true
			s.logf("stage %q exceeded %d restarts, giving up", stage, s.cfg.MaxRestarts)
		}
		return
	}
	delay := s.cfg.BackoffBase << g.restarts
	if delay > s.cfg.BackoffMax || delay <= 0 {
		delay = s.cfg.BackoffMax
	}
	g.down = true
	g.restarts++
	s.restarts.With(stage, reason).Inc()
	s.o.Trace.Inc("supervisor.restarts", 1)
	s.logf("restarting stage %q in %s (reason: %s, restart #%d)", stage, delay, reason, g.restarts)
	s.o.env.Sim.After(delay, func() {
		if s.stopped {
			return
		}
		g.down = false
		g.lastProgress = s.o.env.Sim.Now()
		g.lastPending = 0
		s.o.restartStage(stage)
	})
}

// Start spawns the watchdog process.
func (s *Supervisor) Start() {
	s.stopped = false
	s.proc = s.o.env.Sim.Spawn("supervisor", s.watch)
}

// Stop halts supervision: the watchdog exits and pending restarts are
// abandoned. Idempotent.
func (s *Supervisor) Stop() {
	s.stopped = true
	if s.proc != nil {
		s.proc.Interrupt(nil)
	}
}

// watch is the watchdog process: it samples each endpoint-fed stage's
// inbound queue and restarts a stage whose queue sits non-empty without
// draining for StallAfter — the liveness heartbeat of a stage is that it
// consumes its input.
func (s *Supervisor) watch(p *sim.Proc) {
	for {
		if err := p.Sleep(s.cfg.WatchEvery); err != nil {
			return
		}
		if s.stopped {
			return
		}
		s.check(StageMonitorServer, s.o.Bus.Endpoint(EndpointMonitorServer).Pending(), false)
		s.check(StageDecision, s.o.Bus.Endpoint(EndpointDecision).Pending(), false)
		// A busy arbiter legitimately queues messages while gathering and
		// executing; only an idle one with a backlog is stalled.
		s.check(StageArbiter, s.o.Bus.Endpoint(EndpointArbiter).Pending(), s.o.Arbiter.Busy())
	}
}

func (s *Supervisor) check(stage string, pending int, busy bool) {
	g := s.stages[stage]
	now := s.o.env.Sim.Now()
	if g.lastProgress == 0 || pending == 0 || pending < g.lastPending || busy || g.down {
		g.lastProgress = now
	} else if now-g.lastProgress >= s.cfg.StallAfter {
		s.scheduleRestart(stage, "stall")
		g.lastProgress = now
	}
	g.lastPending = pending
}

// restartStage stops and restarts one stage. With a checkpoint store
// attached, the stage's slice of the last snapshot is reloaded first: a
// panic can leave in-memory stage state mid-mutation, and the snapshot is
// the last state known consistent. Bus queues are left live — messages
// queued since the snapshot still get consumed.
func (o *Orchestrator) restartStage(stage string) {
	snap, ok := o.loadStageSnapshot()
	switch stage {
	case StageMonitorServer:
		o.Server.Stop()
		if ok {
			o.Server.Restore(snap.Server)
		}
		o.Server.Start()
	case StageMonitorClient:
		for i, c := range o.Clients {
			c.Stop()
			if ok && i < len(snap.Clients) {
				c.Restore(snap.Clients[i])
			}
			c.Start()
		}
	case StageDecision:
		o.Decision.Stop()
		if ok {
			o.Decision.Restore(snap.Decision)
		}
		o.Decision.Start()
	case StageArbiter:
		o.Arbiter.Stop()
		if ok {
			o.Arbiter.Restore(snap.Arbiter)
		}
		o.Arbiter.Start()
	}
}

// loadStageSnapshot loads the last on-disk snapshot for a stage restart
// (ok=false without a store or snapshot).
func (o *Orchestrator) loadStageSnapshot() (Snapshot, bool) {
	if o.store == nil {
		return Snapshot{}, false
	}
	blob, err := o.store.LoadSnapshot()
	if err != nil {
		return Snapshot{}, false
	}
	var snap Snapshot
	if err := ckpt.Decode(blob, SnapshotKind, &snap); err != nil {
		return Snapshot{}, false
	}
	return snap, true
}
