package arbiter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dyflow/internal/core/decision"
	"dyflow/internal/core/spec"
)

// genInput builds a random but well-formed PlanInput from fuzz bytes.
func genInput(seed int64) PlanInput {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"A", "B", "C", "D", "E"}
	tasks := make(map[string]TaskState, len(names))
	rules := &spec.WorkflowRules{
		Workflow:         "W",
		TaskPriorities:   map[string]int{},
		PolicyPriorities: map[string]int{},
	}
	for i, n := range names {
		tasks[n] = TaskState{
			Running: rng.Intn(3) > 0,
			Procs:   rng.Intn(30) + 1,
			PerNode: 0,
		}
		rules.TaskPriorities[n] = i
	}
	// A random tight dependency chain.
	if rng.Intn(2) == 0 {
		rules.Deps = append(rules.Deps, spec.TaskDep{Task: "C", Parent: "B", Type: spec.DepTight})
	}
	if rng.Intn(2) == 0 {
		rules.Deps = append(rules.Deps, spec.TaskDep{Task: "E", Parent: "D", Type: spec.DepTight})
	}
	actions := []string{"ADDCPU", "RMCPU", "STOP", "START", "RESTART", "SWITCH"}
	var sgs []decision.Suggestion
	for i := 0; i < rng.Intn(6); i++ {
		target := names[rng.Intn(len(names))]
		sgs = append(sgs, decision.Suggestion{
			Workflow:   "W",
			PolicyID:   "P" + target,
			Action:     actions[rng.Intn(len(actions))],
			AssessTask: names[rng.Intn(len(names))],
			ActOnTasks: []string{target},
			Params:     map[string]string{"adjust-by": "10"},
		})
	}
	var waiting []WaitingTask
	for i := 0; i < rng.Intn(3); i++ {
		n := names[rng.Intn(len(names))]
		if !tasks[n].Running {
			waiting = append(waiting, WaitingTask{Workflow: "W", Task: n, Procs: rng.Intn(20) + 1})
		}
	}
	return PlanInput{
		Workflow:    "W",
		Suggestions: sgs,
		Tasks:       tasks,
		FreeCores:   rng.Intn(60),
		Rules:       rules,
		Waiting:     waiting,
	}
}

// TestPlanInvariants checks Algorithm 1's safety properties over random
// inputs:
//  1. feasibility: running the plan never needs more cores than free +
//     what the plan's stops release;
//  2. ordering: every stop precedes every start;
//  3. no duplicate operations per (task, kind);
//  4. starts only for non-running tasks without a same-plan stop, stops
//     only for running tasks;
//  5. victims have strictly lower priority than the most important
//     acquiring operation.
func TestPlanInvariants(t *testing.T) {
	f := func(seed int64) bool {
		in := genInput(seed)
		plan, waiting := BuildPlan(in)

		seen := map[string]map[OpKind]int{}
		lastStop, firstStart := -1, len(plan.Ops)
		freed, needed := 0, 0
		for i, op := range plan.Ops {
			if seen[op.Task] == nil {
				seen[op.Task] = map[OpKind]int{}
			}
			seen[op.Task][op.Kind]++
			if seen[op.Task][op.Kind] > 1 {
				t.Logf("seed %d: duplicate %v on %s: %v", seed, op.Kind, op.Task, plan.Ops)
				return false
			}
			switch op.Kind {
			case OpStop:
				if !in.Tasks[op.Task].Running {
					t.Logf("seed %d: stop of non-running %s", seed, op.Task)
					return false
				}
				st := in.Tasks[op.Task]
				freed += st.Procs * st.cpp()
				if i > lastStop {
					lastStop = i
				}
			case OpStart:
				st := in.Tasks[op.Task]
				if st.Running && seen[op.Task][OpStop] == 0 {
					t.Logf("seed %d: start of running %s without stop", seed, op.Task)
					return false
				}
				needed += op.Procs * st.cpp()
				if i < firstStart {
					firstStart = i
				}
			}
		}
		if lastStop > firstStart {
			t.Logf("seed %d: stop after start: %v", seed, plan.Ops)
			return false
		}
		if needed > freed+in.FreeCores {
			t.Logf("seed %d: infeasible plan needs %d > freed %d + free %d: %v",
				seed, needed, freed, in.FreeCores, plan.Ops)
			return false
		}
		// Victim priority rule: a victim is strictly less important than
		// the most important suggestion-driven acquiring operation. Starts
		// drawn from the waiting queue (Policy == "") are surplus
		// consumers, not acquirers, and do not set the floor.
		bestAcq := 1 << 30
		for _, op := range plan.Ops {
			if op.Kind != OpStart || op.Victim || op.Policy == "" {
				continue
			}
			st := in.Tasks[op.Task]
			acquires := !st.Running || op.Procs > st.Procs
			if !acquires {
				continue
			}
			if p := in.Rules.TaskPriority(op.Task); p < bestAcq {
				bestAcq = p
			}
		}
		for _, op := range plan.Ops {
			if op.Victim && in.Rules.TaskPriority(op.Task) <= bestAcq {
				t.Logf("seed %d: victim %s (pri %d) not strictly below best acquirer (pri %d)",
					seed, op.Task, in.Rules.TaskPriority(op.Task), bestAcq)
				return false
			}
		}
		// Waiting-queue entries never reference tasks the plan starts.
		for _, w := range waiting {
			for _, op := range plan.Ops {
				if op.Kind == OpStart && op.Task == w.Task {
					t.Logf("seed %d: %s both started and waiting", seed, w.Task)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanDeterminism: identical inputs produce identical plans.
func TestPlanDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		a, wa := BuildPlan(genInput(seed))
		b, wb := BuildPlan(genInput(seed))
		if len(a.Ops) != len(b.Ops) || len(wa) != len(wb) {
			return false
		}
		for i := range a.Ops {
			if a.Ops[i] != b.Ops[i] {
				return false
			}
		}
		for i := range wa {
			if wa[i] != wb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestNoVictimsNeverStops: with the preemption ablation, no plan contains
// a victim stop.
func TestNoVictimsNeverStops(t *testing.T) {
	f := func(seed int64) bool {
		in := genInput(seed)
		in.NoVictims = true
		plan, _ := BuildPlan(in)
		for _, op := range plan.Ops {
			if op.Victim {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestImmediateKillClearsGraceful: the kill ablation leaves no graceful op.
func TestImmediateKillClearsGraceful(t *testing.T) {
	f := func(seed int64) bool {
		in := genInput(seed)
		in.ImmediateKill = true
		plan, _ := BuildPlan(in)
		for _, op := range plan.Ops {
			if op.Graceful {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
