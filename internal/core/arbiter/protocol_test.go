package arbiter

import (
	"strings"
	"testing"

	"dyflow/internal/core/decision"
	"dyflow/internal/core/spec"
)

// gsRules builds the Gray-Scott rule set from the paper: priorities
// GrayScott(0) > Isosurface(1) > Rendering(2) > FFT(3) > PDF_Calc(4), with
// Rendering tightly dependent on Isosurface and all analyses tightly
// dependent on GrayScott.
func gsRules() *spec.WorkflowRules {
	return &spec.WorkflowRules{
		Workflow: "GS",
		TaskPriorities: map[string]int{
			"GrayScott": 0, "Isosurface": 1, "Rendering": 2, "FFT": 3, "PDF_Calc": 4,
		},
		PolicyPriorities: map[string]int{},
		Deps: []spec.TaskDep{
			{Task: "Rendering", Parent: "Isosurface", Type: spec.DepTight},
		},
	}
}

func gsTasks() map[string]TaskState {
	return map[string]TaskState{
		"GrayScott":  {Running: true, Procs: 340, PerNode: 34},
		"Isosurface": {Running: true, Procs: 20, PerNode: 2},
		"Rendering":  {Running: true, Procs: 20, PerNode: 2},
		"FFT":        {Running: true, Procs: 20, PerNode: 2},
		"PDF_Calc":   {Running: true, Procs: 20, PerNode: 2},
	}
}

func suggest(policy, action, assess string, actOn []string, params map[string]string) decision.Suggestion {
	return decision.Suggestion{
		Workflow: "GS", PolicyID: policy, Action: action,
		AssessTask: assess, ActOnTasks: actOn, Params: params,
	}
}

func findOps(plan Plan, kind OpKind, task string) []Op {
	var out []Op
	for _, op := range plan.Ops {
		if op.Kind == kind && op.Task == task {
			out = append(out, op)
		}
	}
	return out
}

// TestFigure8FirstAdaptation reproduces the paper's first Gray-Scott
// adaptation: ADDCPU(Isosurface, +20) with zero free cores must victimize
// the lowest-priority task (PDF_Calc) and restart Rendering due to its
// tight dependency on Isosurface.
func TestFigure8FirstAdaptation(t *testing.T) {
	in := PlanInput{
		Workflow:    "GS",
		Suggestions: []decision.Suggestion{suggest("INC_ON_PACE", "ADDCPU", "Isosurface", []string{"Isosurface"}, map[string]string{"adjust-by": "20"})},
		Tasks:       gsTasks(),
		FreeCores:   0,
		Rules:       gsRules(),
	}
	plan, waiting := BuildPlan(in)

	starts := findOps(plan, OpStart, "Isosurface")
	if len(starts) != 1 || starts[0].Procs != 40 {
		t.Fatalf("Isosurface start = %+v, want 40 procs", starts)
	}
	if len(findOps(plan, OpStop, "Isosurface")) != 1 {
		t.Fatal("Isosurface must be stopped before resize (MPI restart)")
	}
	// Tight dependent Rendering is restarted at its current size.
	if got := findOps(plan, OpStart, "Rendering"); len(got) != 1 || got[0].Procs != 20 || !got[0].Dependent {
		t.Fatalf("Rendering restart = %+v", got)
	}
	// PDF_Calc (priority 4) is the victim and lands in the waiting queue.
	vops := findOps(plan, OpStop, "PDF_Calc")
	if len(vops) != 1 || !vops[0].Victim {
		t.Fatalf("PDF_Calc victim stop = %+v", vops)
	}
	if len(waiting) != 1 || waiting[0].Task != "PDF_Calc" || waiting[0].Procs != 20 {
		t.Fatalf("waiting = %+v, want PDF_Calc@20", waiting)
	}
	// FFT must be untouched.
	if len(findOps(plan, OpStop, "FFT"))+len(findOps(plan, OpStart, "FFT")) != 0 {
		t.Fatal("FFT must not be disturbed")
	}
	// Ordering: every stop precedes every start.
	lastStop, firstStart := -1, len(plan.Ops)
	for i, op := range plan.Ops {
		if op.Kind == OpStop && i > lastStop {
			lastStop = i
		}
		if op.Kind == OpStart && i < firstStart {
			firstStart = i
		}
	}
	if lastStop > firstStart {
		t.Fatalf("ops out of order: %v", plan.Ops)
	}
}

// TestFigure8SecondAdaptation: Isosurface 40 -> 60 with PDF_Calc already
// waiting; the next victim is FFT (priority 3).
func TestFigure8SecondAdaptation(t *testing.T) {
	tasks := gsTasks()
	tasks["Isosurface"] = TaskState{Running: true, Procs: 40, PerNode: 2}
	tasks["PDF_Calc"] = TaskState{Running: false, Procs: 20, PerNode: 2}
	in := PlanInput{
		Workflow:    "GS",
		Suggestions: []decision.Suggestion{suggest("INC_ON_PACE", "ADDCPU", "Isosurface", []string{"Isosurface"}, map[string]string{"adjust-by": "20"})},
		Tasks:       tasks,
		FreeCores:   0,
		Rules:       gsRules(),
		Waiting:     []WaitingTask{{Workflow: "GS", Task: "PDF_Calc", Procs: 20, PerNode: 2}},
	}
	plan, waiting := BuildPlan(in)
	if got := findOps(plan, OpStart, "Isosurface"); len(got) != 1 || got[0].Procs != 60 {
		t.Fatalf("Isosurface start = %+v, want 60 procs", got)
	}
	if got := findOps(plan, OpStop, "FFT"); len(got) != 1 || !got[0].Victim {
		t.Fatalf("FFT victim = %+v", got)
	}
	// PDF_Calc stays waiting (no surplus) and FFT joins it.
	names := map[string]bool{}
	for _, w := range waiting {
		names[w.Task] = true
	}
	if !names["PDF_Calc"] || !names["FFT"] || len(waiting) != 2 {
		t.Fatalf("waiting = %+v", waiting)
	}
}

// TestConflictResolutionStopBeatsStart: STOP (priority 0) vs START
// (priority 1) on the same task keeps the STOP, as in the XGC experiment's
// STOP_ON_COND > RESTART_UNTIL_COND prioritization.
func TestConflictResolutionStopBeatsStart(t *testing.T) {
	rules := &spec.WorkflowRules{
		Workflow: "FUSION",
		PolicyPriorities: map[string]int{
			"STOP_ON_COND":       0,
			"RESTART_UNTIL_COND": 1,
		},
		TaskPriorities: map[string]int{"XGC1": 0, "XGCA": 0},
	}
	tasks := map[string]TaskState{
		"XGC1": {Running: false, Procs: 192, PerNode: 14},
		"XGCA": {Running: true, Procs: 192, PerNode: 14},
	}
	in := PlanInput{
		Workflow: "FUSION",
		Suggestions: []decision.Suggestion{
			{Workflow: "FUSION", PolicyID: "RESTART_UNTIL_COND", Action: "START", AssessTask: "XGC1", ActOnTasks: []string{"XGCA"}},
			{Workflow: "FUSION", PolicyID: "STOP_ON_COND", Action: "STOP", AssessTask: "XGCA", ActOnTasks: []string{"XGCA"}},
		},
		Tasks:     tasks,
		FreeCores: 0,
		Rules:     rules,
	}
	plan, _ := BuildPlan(in)
	if len(findOps(plan, OpStop, "XGCA")) != 1 {
		t.Fatalf("plan = %v, want STOP XGCA", plan.Ops)
	}
	if len(findOps(plan, OpStart, "XGCA")) != 0 {
		t.Fatal("conflicting START must be filtered")
	}
	if len(plan.Denied) == 0 || !strings.Contains(plan.Denied[0], "conflicts") {
		t.Fatalf("denied = %v", plan.Denied)
	}
}

// TestSwitchExpandsToStopAndStart mirrors SWITCH_ON_COND: stop the assessed
// XGCa and start XGC1 with its restart script.
func TestSwitchExpandsToStopAndStart(t *testing.T) {
	rules := &spec.WorkflowRules{Workflow: "FUSION", TaskPriorities: map[string]int{"XGC1": 0, "XGCA": 0}}
	tasks := map[string]TaskState{
		"XGC1": {Running: false, Procs: 192, PerNode: 14, Script: "restart-xgc1.sh"},
		"XGCA": {Running: true, Procs: 192, PerNode: 14},
	}
	in := PlanInput{
		Workflow: "FUSION",
		Suggestions: []decision.Suggestion{
			{Workflow: "FUSION", PolicyID: "SWITCH_ON_COND", Action: "SWITCH", AssessTask: "XGCA", ActOnTasks: []string{"XGC1"}},
		},
		Tasks:     tasks,
		FreeCores: 0,
		Rules:     rules,
	}
	plan, _ := BuildPlan(in)
	if len(findOps(plan, OpStop, "XGCA")) != 1 {
		t.Fatalf("plan = %v, want stop XGCA", plan.Ops)
	}
	starts := findOps(plan, OpStart, "XGC1")
	if len(starts) != 1 || starts[0].Procs != 192 || starts[0].Script != "restart-xgc1.sh" {
		t.Fatalf("XGC1 start = %+v", starts)
	}
	// Stop must precede start so the freed cores satisfy the start.
	if plan.Ops[0].Kind != OpStop {
		t.Fatalf("first op = %v, want the stop", plan.Ops[0])
	}
}

// TestDenyWhenNoVictim: an acquiring action with no free cores and no
// eligible victim is discarded (paper: "the lowest priority operation
// requesting additional resources gets discarded").
func TestDenyWhenNoVictim(t *testing.T) {
	rules := &spec.WorkflowRules{Workflow: "W", TaskPriorities: map[string]int{"A": 0, "B": 1}}
	tasks := map[string]TaskState{
		"A": {Running: true, Procs: 10, PerNode: 0},
		"B": {Running: false, Procs: 10, PerNode: 0},
	}
	in := PlanInput{
		Workflow: "W",
		Suggestions: []decision.Suggestion{
			{Workflow: "W", PolicyID: "P1", Action: "ADDCPU", ActOnTasks: []string{"A"}, Params: map[string]string{"adjust-by": "5"}},
			{Workflow: "W", PolicyID: "P2", Action: "START", ActOnTasks: []string{"B"}},
		},
		Tasks:     tasks,
		FreeCores: 5,
		Rules:     rules,
	}
	// Needs: A 10->15 (net +5), B +10; free 5. No victims (A and B are both
	// in the plan). B (priority 1, lowest) must be denied; A's resize fits.
	plan, waiting := BuildPlan(in)
	if got := findOps(plan, OpStart, "A"); len(got) != 1 || got[0].Procs != 15 {
		t.Fatalf("A start = %+v", got)
	}
	if len(findOps(plan, OpStart, "B")) != 0 {
		t.Fatal("B must be denied")
	}
	if len(plan.Denied) == 0 {
		t.Fatal("denial must be recorded")
	}
	if len(waiting) != 0 {
		t.Fatalf("denied ops do not join the waiting queue: %v", waiting)
	}
}

// TestWaitingTaskRestartsOnSurplus: a STOP frees resources; a waiting task
// that fits is started in the same plan (Algorithm 1 lines 16-18).
func TestWaitingTaskRestartsOnSurplus(t *testing.T) {
	rules := &spec.WorkflowRules{Workflow: "W", TaskPriorities: map[string]int{"A": 0, "B": 1, "C": 2}}
	tasks := map[string]TaskState{
		"A": {Running: true, Procs: 20, PerNode: 0},
		"B": {Running: false, Procs: 15, PerNode: 0},
		"C": {Running: false, Procs: 8, PerNode: 0},
	}
	in := PlanInput{
		Workflow: "W",
		Suggestions: []decision.Suggestion{
			{Workflow: "W", PolicyID: "P", Action: "STOP", ActOnTasks: []string{"A"}},
		},
		Tasks:     tasks,
		FreeCores: 0,
		Rules:     rules,
		Waiting: []WaitingTask{
			{Workflow: "W", Task: "C", Procs: 8},
			{Workflow: "W", Task: "B", Procs: 15},
		},
	}
	plan, waiting := BuildPlan(in)
	// Stopping A frees 20 cores; B (higher priority) takes 15, C (8) no
	// longer fits.
	if got := findOps(plan, OpStart, "B"); len(got) != 1 {
		t.Fatalf("B start = %+v", got)
	}
	if len(findOps(plan, OpStart, "C")) != 0 {
		t.Fatal("C must keep waiting")
	}
	if len(waiting) != 1 || waiting[0].Task != "C" {
		t.Fatalf("waiting = %+v", waiting)
	}
}

// TestRestartOfFailedTask: RESTART on a dead task emits only a start with
// the last-known size (the Figure 11 recovery path).
func TestRestartOfFailedTask(t *testing.T) {
	rules := &spec.WorkflowRules{Workflow: "MD", TaskPriorities: map[string]int{"LAMMPS": 0}}
	tasks := map[string]TaskState{
		"LAMMPS": {Running: false, Procs: 1500, PerNode: 30},
	}
	in := PlanInput{
		Workflow: "MD",
		Suggestions: []decision.Suggestion{
			{Workflow: "MD", PolicyID: "RESTART_ON_FAILURE", Action: "RESTART", ActOnTasks: []string{"LAMMPS"}},
		},
		Tasks:     tasks,
		FreeCores: 1600,
		Rules:     rules,
	}
	plan, _ := BuildPlan(in)
	if len(findOps(plan, OpStop, "LAMMPS")) != 0 {
		t.Fatal("no stop for an already-dead task")
	}
	if got := findOps(plan, OpStart, "LAMMPS"); len(got) != 1 || got[0].Procs != 1500 || got[0].PerNode != 30 {
		t.Fatalf("LAMMPS restart = %+v", got)
	}
}

// TestDuplicateSuggestionsCollapse: the same policy firing repeatedly in
// one batch yields one set of ops.
func TestDuplicateSuggestionsCollapse(t *testing.T) {
	in := PlanInput{
		Workflow: "GS",
		Suggestions: []decision.Suggestion{
			suggest("INC", "ADDCPU", "Isosurface", []string{"Isosurface"}, map[string]string{"adjust-by": "20"}),
			suggest("INC", "ADDCPU", "Isosurface", []string{"Isosurface"}, map[string]string{"adjust-by": "20"}),
		},
		Tasks:     gsTasks(),
		FreeCores: 100,
		Rules:     gsRules(),
	}
	plan, _ := BuildPlan(in)
	if got := findOps(plan, OpStart, "Isosurface"); len(got) != 1 || got[0].Procs != 40 {
		t.Fatalf("duplicate suggestions must collapse: %+v", plan.Ops)
	}
}

// TestRmCPUFreesResources: RMCPU shrinks a task and the freed cores start a
// waiting task.
func TestRmCPUFreesResources(t *testing.T) {
	rules := &spec.WorkflowRules{Workflow: "W", TaskPriorities: map[string]int{"A": 0, "B": 1}}
	tasks := map[string]TaskState{
		"A": {Running: true, Procs: 30, PerNode: 0},
		"B": {Running: false, Procs: 10, PerNode: 0},
	}
	in := PlanInput{
		Workflow: "W",
		Suggestions: []decision.Suggestion{
			{Workflow: "W", PolicyID: "DEC", Action: "RMCPU", ActOnTasks: []string{"A"}, Params: map[string]string{"adjust-by": "10"}},
		},
		Tasks:     tasks,
		FreeCores: 0,
		Rules:     rules,
		Waiting:   []WaitingTask{{Workflow: "W", Task: "B", Procs: 10}},
	}
	plan, waiting := BuildPlan(in)
	if got := findOps(plan, OpStart, "A"); len(got) != 1 || got[0].Procs != 20 {
		t.Fatalf("A resized = %+v", got)
	}
	if got := findOps(plan, OpStart, "B"); len(got) != 1 {
		t.Fatalf("B should start from the freed cores: %v", plan.Ops)
	}
	if len(waiting) != 0 {
		t.Fatalf("waiting = %+v", waiting)
	}
}

// TestRmCPUSkipsWhenItWouldZeroTask: an RMCPU that would shrink a task
// below one process is dropped rather than producing a degenerate restart.
func TestRmCPUSkipsWhenItWouldZeroTask(t *testing.T) {
	rules := &spec.WorkflowRules{Workflow: "W", TaskPriorities: map[string]int{"A": 0}}
	in := PlanInput{
		Workflow: "W",
		Suggestions: []decision.Suggestion{
			{Workflow: "W", PolicyID: "DEC", Action: "RMCPU", ActOnTasks: []string{"A"}, Params: map[string]string{"adjust-by": "100"}},
		},
		Tasks:     map[string]TaskState{"A": {Running: true, Procs: 10}},
		FreeCores: 0,
		Rules:     rules,
	}
	plan, _ := BuildPlan(in)
	if !plan.Empty() {
		t.Fatalf("plan = %v, want empty (RMCPU below 1 proc skipped)", plan.Ops)
	}
}

// TestNoopSuggestionsYieldEmptyPlan.
func TestNoopSuggestionsYieldEmptyPlan(t *testing.T) {
	in := PlanInput{
		Workflow: "W",
		Suggestions: []decision.Suggestion{
			{Workflow: "W", PolicyID: "P", Action: "START", ActOnTasks: []string{"A"}}, // already running
			{Workflow: "W", PolicyID: "P", Action: "STOP", ActOnTasks: []string{"B"}},  // already down
		},
		Tasks: map[string]TaskState{
			"A": {Running: true, Procs: 4},
			"B": {Running: false, Procs: 4},
		},
		FreeCores: 0,
		Rules:     &spec.WorkflowRules{Workflow: "W", TaskPriorities: map[string]int{}},
	}
	plan, _ := BuildPlan(in)
	if !plan.Empty() {
		t.Fatalf("plan = %v, want empty", plan.Ops)
	}
}

// TestVictimTakesTightDependentsAlong: preempting a parent also stops its
// running tight dependents and queues both.
func TestVictimTakesTightDependentsAlong(t *testing.T) {
	rules := &spec.WorkflowRules{
		Workflow:       "W",
		TaskPriorities: map[string]int{"Sim": 0, "AnaParent": 3, "AnaChild": 4, "New": 1},
		Deps: []spec.TaskDep{
			{Task: "AnaChild", Parent: "AnaParent", Type: spec.DepTight},
		},
	}
	tasks := map[string]TaskState{
		"Sim":       {Running: true, Procs: 10},
		"AnaParent": {Running: true, Procs: 6},
		"AnaChild":  {Running: true, Procs: 4},
		"New":       {Running: false, Procs: 8},
	}
	in := PlanInput{
		Workflow: "W",
		Suggestions: []decision.Suggestion{
			{Workflow: "W", PolicyID: "P", Action: "START", ActOnTasks: []string{"New"}},
		},
		Tasks:     tasks,
		FreeCores: 0,
		Rules:     rules,
	}
	plan, waiting := BuildPlan(in)
	// AnaChild has the lowest priority and is picked first; if its 4 cores
	// are not enough, AnaParent follows.
	if len(findOps(plan, OpStop, "AnaChild")) != 1 {
		t.Fatalf("plan = %v, want AnaChild victimized", plan.Ops)
	}
	if len(findOps(plan, OpStop, "AnaParent")) != 1 {
		t.Fatalf("plan = %v, want AnaParent victimized too (4 < 8)", plan.Ops)
	}
	if len(findOps(plan, OpStop, "Sim")) != 0 {
		t.Fatal("the high-priority task must never be victimized here")
	}
	if got := findOps(plan, OpStart, "New"); len(got) != 1 {
		t.Fatalf("New start = %+v", got)
	}
	wn := map[string]bool{}
	for _, w := range waiting {
		wn[w.Task] = true
	}
	if !wn["AnaChild"] || !wn["AnaParent"] {
		t.Fatalf("waiting = %+v", waiting)
	}
}

// TestFigure8AllAnalysesSuggest reproduces the paper's exact first round:
// INC_ON_PACE fires for all four analyses at once (they all pace above 36 s
// because the workflow is gated by Isosurface). Arbitration must enable
// only Isosurface's increase, restart Rendering at its current size due to
// the tight dependency, victimize PDF_Calc, and deny FFT and PDF_Calc's own
// increases — leaving FFT running untouched.
func TestFigure8AllAnalysesSuggest(t *testing.T) {
	rules := gsRules()
	rules.Deps = []spec.TaskDep{
		{Task: "Rendering", Parent: "Isosurface", Type: spec.DepTight},
	}
	params := map[string]string{"adjust-by": "20"}
	in := PlanInput{
		Workflow: "GS",
		Suggestions: []decision.Suggestion{
			suggest("INC_ON_PACE", "ADDCPU", "Isosurface", []string{"Isosurface"}, params),
			suggest("INC_ON_PACE", "ADDCPU", "Rendering", []string{"Rendering"}, params),
			suggest("INC_ON_PACE", "ADDCPU", "FFT", []string{"FFT"}, params),
			suggest("INC_ON_PACE", "ADDCPU", "PDF_Calc", []string{"PDF_Calc"}, params),
		},
		Tasks:     gsTasks(),
		FreeCores: 0,
		Rules:     rules,
	}
	plan, waiting := BuildPlan(in)

	if got := findOps(plan, OpStart, "Isosurface"); len(got) != 1 || got[0].Procs != 40 {
		t.Fatalf("Isosurface = %+v, want grow to 40", got)
	}
	// Rendering restarted at its CURRENT size (dependency override), not 40.
	if got := findOps(plan, OpStart, "Rendering"); len(got) != 1 || got[0].Procs != 20 || !got[0].Dependent {
		t.Fatalf("Rendering = %+v, want dependent restart at 20", got)
	}
	// PDF_Calc victimized; FFT untouched and still running.
	if got := findOps(plan, OpStop, "PDF_Calc"); len(got) != 1 || !got[0].Victim {
		t.Fatalf("PDF_Calc = %+v, want victim stop", got)
	}
	if n := len(findOps(plan, OpStop, "FFT")) + len(findOps(plan, OpStart, "FFT")); n != 0 {
		t.Fatalf("FFT must be untouched, plan = %v", plan.Ops)
	}
	if len(findOps(plan, OpStop, "GrayScott")) != 0 {
		t.Fatal("the simulation must never be preempted")
	}
	if len(waiting) != 1 || waiting[0].Task != "PDF_Calc" {
		t.Fatalf("waiting = %+v", waiting)
	}
	// FFT's and PDF's own increases were denied.
	if len(plan.Denied) < 2 {
		t.Fatalf("denied = %v", plan.Denied)
	}
}

// TestFigure8SecondRoundWithFFTVictim: round two — Isosurface at 40 still
// paces above threshold, FFT (running) and Rendering fire too; the victim
// this time is FFT, and PDF_Calc stays waiting.
func TestFigure8SecondRoundWithFFTVictim(t *testing.T) {
	rules := gsRules()
	params := map[string]string{"adjust-by": "20"}
	tasks := gsTasks()
	tasks["Isosurface"] = TaskState{Running: true, Procs: 40, PerNode: 2}
	tasks["PDF_Calc"] = TaskState{Running: false, Procs: 20, PerNode: 2}
	in := PlanInput{
		Workflow: "GS",
		Suggestions: []decision.Suggestion{
			suggest("INC_ON_PACE", "ADDCPU", "Isosurface", []string{"Isosurface"}, params),
			suggest("INC_ON_PACE", "ADDCPU", "Rendering", []string{"Rendering"}, params),
			suggest("INC_ON_PACE", "ADDCPU", "FFT", []string{"FFT"}, params),
		},
		Tasks:     tasks,
		FreeCores: 0,
		Rules:     rules,
		Waiting:   []WaitingTask{{Workflow: "GS", Task: "PDF_Calc", Procs: 20, PerNode: 2}},
	}
	plan, waiting := BuildPlan(in)
	if got := findOps(plan, OpStart, "Isosurface"); len(got) != 1 || got[0].Procs != 60 {
		t.Fatalf("Isosurface = %+v, want grow to 60", got)
	}
	if got := findOps(plan, OpStart, "Rendering"); len(got) != 1 || got[0].Procs != 20 {
		t.Fatalf("Rendering = %+v, want dependent restart at 20", got)
	}
	if got := findOps(plan, OpStop, "FFT"); len(got) != 1 || !got[0].Victim {
		t.Fatalf("FFT = %+v, want victim stop", got)
	}
	names := map[string]bool{}
	for _, w := range waiting {
		names[w.Task] = true
	}
	if len(waiting) != 2 || !names["PDF_Calc"] || !names["FFT"] {
		t.Fatalf("waiting = %+v", waiting)
	}
}

// TestLooseDependentsUndisturbed: only TIGHT dependents ride along with a
// parent's restart; loosely coupled dependents (file exchange, decoupled
// execution) are left alone.
func TestLooseDependentsUndisturbed(t *testing.T) {
	rules := &spec.WorkflowRules{
		Workflow:       "W",
		TaskPriorities: map[string]int{"Parent": 0, "TightKid": 1, "LooseKid": 2},
		Deps: []spec.TaskDep{
			{Task: "TightKid", Parent: "Parent", Type: spec.DepTight},
			{Task: "LooseKid", Parent: "Parent", Type: spec.DepLoose},
		},
	}
	tasks := map[string]TaskState{
		"Parent":   {Running: true, Procs: 10},
		"TightKid": {Running: true, Procs: 4},
		"LooseKid": {Running: true, Procs: 4},
	}
	in := PlanInput{
		Workflow: "W",
		Suggestions: []decision.Suggestion{
			{Workflow: "W", PolicyID: "P", Action: "RESTART", ActOnTasks: []string{"Parent"}},
		},
		Tasks:     tasks,
		FreeCores: 0,
		Rules:     rules,
	}
	plan, _ := BuildPlan(in)
	if len(findOps(plan, OpStart, "TightKid")) != 1 {
		t.Fatalf("plan = %v, want tight dependent restarted", plan.Ops)
	}
	if n := len(findOps(plan, OpStop, "LooseKid")) + len(findOps(plan, OpStart, "LooseKid")); n != 0 {
		t.Fatalf("plan = %v, loose dependent must be untouched", plan.Ops)
	}
}

// TestTransitiveDependentRestart: dependency chains propagate (A restarts
// => B restarts => C restarts).
func TestTransitiveDependentRestart(t *testing.T) {
	rules := &spec.WorkflowRules{
		Workflow:       "W",
		TaskPriorities: map[string]int{"A": 0, "B": 1, "C": 2},
		Deps: []spec.TaskDep{
			{Task: "B", Parent: "A", Type: spec.DepTight},
			{Task: "C", Parent: "B", Type: spec.DepTight},
		},
	}
	in := PlanInput{
		Workflow: "W",
		Suggestions: []decision.Suggestion{
			{Workflow: "W", PolicyID: "P", Action: "RESTART", ActOnTasks: []string{"A"}},
		},
		Tasks: map[string]TaskState{
			"A": {Running: true, Procs: 8},
			"B": {Running: true, Procs: 4},
			"C": {Running: true, Procs: 2},
		},
		FreeCores: 0,
		Rules:     rules,
	}
	plan, _ := BuildPlan(in)
	for _, name := range []string{"A", "B", "C"} {
		if len(findOps(plan, OpStart, name)) != 1 || len(findOps(plan, OpStop, name)) != 1 {
			t.Fatalf("plan = %v, want %s restarted", plan.Ops, name)
		}
	}
}

// Recovery entries of T_waiting (re-enqueued from a failed round's
// unapplied starts) may draw on pre-existing free capacity — the failed
// plan already released their resources. Ordinary entries must keep
// waiting for fresh plan-freed surplus.
func TestRecoveryWaitingStartsFromFreeCapacity(t *testing.T) {
	in := PlanInput{
		Workflow: "W",
		// A STOP on a task that is not running contributes nothing to the
		// plan; only the waiting queue can produce operations.
		Suggestions: []decision.Suggestion{{
			Workflow: "W", PolicyID: "P", Action: "STOP",
			AssessTask: "C", ActOnTasks: []string{"C"},
		}},
		Tasks: map[string]TaskState{
			"C":  {Running: false, Procs: 4},
			"W1": {Running: false, Procs: 5},
			"W2": {Running: false, Procs: 5},
		},
		FreeCores: 5,
		Waiting: []WaitingTask{
			{Workflow: "W", Task: "W1", Procs: 5},
			{Workflow: "W", Task: "W2", Procs: 5, Recovery: true},
		},
	}
	plan, waiting := BuildPlan(in)
	if got := findOps(plan, OpStart, "W2"); len(got) != 1 || got[0].Procs != 5 {
		t.Fatalf("recovery start = %+v, want W2@5 from free capacity", got)
	}
	if got := findOps(plan, OpStart, "W1"); len(got) != 0 {
		t.Fatalf("ordinary waiting entry started without plan surplus: %+v", got)
	}
	if len(waiting) != 1 || waiting[0].Task != "W1" || waiting[0].Recovery {
		t.Fatalf("waiting = %+v, want only ordinary W1 still queued", waiting)
	}
}

// Free capacity is finite: a recovery entry larger than it stays queued.
func TestRecoveryWaitingRespectsFreeCapacity(t *testing.T) {
	in := PlanInput{
		Workflow: "W",
		Suggestions: []decision.Suggestion{{
			Workflow: "W", PolicyID: "P", Action: "STOP",
			AssessTask: "C", ActOnTasks: []string{"C"},
		}},
		Tasks: map[string]TaskState{
			"C":  {Running: false, Procs: 4},
			"W2": {Running: false, Procs: 50},
		},
		FreeCores: 5,
		Waiting:   []WaitingTask{{Workflow: "W", Task: "W2", Procs: 50, Recovery: true}},
	}
	plan, waiting := BuildPlan(in)
	if !plan.Empty() {
		t.Fatalf("plan = %v, want empty (50 cores do not fit in 5 free)", plan.Ops)
	}
	if len(waiting) != 1 || !waiting[0].Recovery {
		t.Fatalf("waiting = %+v, want the recovery entry kept", waiting)
	}
}
