package arbiter

import (
	"sort"

	"dyflow/internal/sim"
)

// WaitingSnap is one workflow's T_waiting queue in a snapshot.
type WaitingSnap struct {
	Workflow string        `json:"workflow"`
	Tasks    []WaitingTask `json:"tasks"`
}

// Snapshot is the Arbitration stage's checkpointable state: T_waiting (with
// Recovery flags), the warm-up origin, the settle/FailureCooldown deadline,
// and the round accounting. Take it only while the engine is not Busy().
type Snapshot struct {
	StartedAt   sim.Time      `json:"started_at"`
	SettleUntil sim.Time      `json:"settle_until"`
	Started     bool          `json:"started"`
	Discarded   int           `json:"discarded"`
	Waiting     []WaitingSnap `json:"waiting,omitempty"`
	Records     []Record      `json:"records,omitempty"`
	Empty       []Record      `json:"empty,omitempty"`
}

// Snapshot exports the engine state, workflows sorted by name.
func (e *Engine) Snapshot() Snapshot {
	snap := Snapshot{
		StartedAt:   e.startedAt,
		SettleUntil: e.settleUntil,
		Started:     e.started,
		Discarded:   e.discarded,
		Records:     append([]Record(nil), e.records...),
		Empty:       append([]Record(nil), e.empty...),
	}
	wfs := make([]string, 0, len(e.waiting))
	for wf := range e.waiting {
		wfs = append(wfs, wf)
	}
	sort.Strings(wfs)
	for _, wf := range wfs {
		snap.Waiting = append(snap.Waiting, WaitingSnap{
			Workflow: wf,
			Tasks:    append([]WaitingTask(nil), e.waiting[wf]...),
		})
	}
	return snap
}

// ApplyRound re-applies one journaled arbitration round on top of a
// restored snapshot: the round's post-state T_waiting queue (Recovery
// entries included), the settle/FailureCooldown deadline it armed, and the
// round accounting. Replaying every round journaled since the snapshot
// brings the engine to the pre-crash state.
func (e *Engine) ApplyRound(ev RoundEvent) {
	if e.waiting == nil {
		e.waiting = make(map[string][]WaitingTask)
	}
	e.waiting[ev.Record.Workflow] = append([]WaitingTask(nil), ev.Waiting...)
	e.settleUntil = ev.SettleUntil
	if ev.Empty {
		e.empty = append(e.empty, ev.Record)
	} else {
		e.records = append(e.records, ev.Record)
	}
}

// Restore replaces the engine state with the snapshot. Call before Start;
// with Started set, the subsequent Start keeps the restored warm-up origin
// instead of re-arming the warm-up window.
func (e *Engine) Restore(snap Snapshot) {
	e.startedAt = snap.StartedAt
	e.settleUntil = snap.SettleUntil
	e.started = snap.Started
	e.discarded = snap.Discarded
	e.records = append([]Record(nil), snap.Records...)
	e.empty = append([]Record(nil), snap.Empty...)
	e.waiting = make(map[string][]WaitingTask, len(snap.Waiting))
	for _, ws := range snap.Waiting {
		e.waiting[ws.Workflow] = append([]WaitingTask(nil), ws.Tasks...)
	}
}
