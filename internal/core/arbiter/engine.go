package arbiter

import (
	"time"

	"dyflow/internal/core/decision"
	"dyflow/internal/core/spec"
	"dyflow/internal/msg"
	"dyflow/internal/sim"
	"dyflow/internal/trace"
)

// View is the arbiter's window onto the live workflow state, implemented by
// the orchestrator over the WMS and resource manager.
type View interface {
	// Snapshot returns the current TaskState of every composed task of the
	// workflow plus the free healthy core count.
	Snapshot(workflow string) (map[string]TaskState, int)
}

// ExecReport describes how much of a plan Actuation applied. Failed rounds
// used to be opaque — nothing recorded which operations completed before
// the abort — so the engine could not tell a fully-aborted round from one
// that stopped tasks and then failed to restart them.
type ExecReport struct {
	// Applied counts operations fully applied before the first failure.
	Applied int
	// Aborted counts operations not applied: the failed operation itself
	// plus everything after it that was never attempted.
	Aborted int
	// UnappliedStarts lists the START operations that did not apply (the
	// failed one, if it was a start, and all aborted ones). The engine
	// re-enqueues them as recovery entries of T_waiting so a task stopped
	// by an earlier operation of the same plan is restarted on a later
	// round instead of stranded.
	UnappliedStarts []Op
}

// Executor applies a finalized plan; implemented by the Actuation stage.
// Execute blocks the calling process until every operation has been applied
// (including graceful-termination waits) or an operation fails, and reports
// how much of the plan took effect either way.
type Executor interface {
	Execute(p *sim.Proc, plan Plan) (ExecReport, error)
}

// Record documents one arbitration round for the experiment harness.
type Record struct {
	Workflow string
	// ReceivedAt is when the suggestion batch arrived; PlannedAt when the
	// plan was finalized; ExecutedAt when Actuation finished applying it.
	ReceivedAt sim.Time
	PlannedAt  sim.Time
	ExecutedAt sim.Time
	// EventAt is the earliest data-generation time among the triggering
	// suggestions; ReceivedAt - EventAt is the detection lag and
	// ExecutedAt - ReceivedAt the arbitration+actuation response time.
	EventAt sim.Time
	// SuggestionIDs are the lifecycle-span IDs of the suggestions this
	// round arbitrated (after stale screening), for trace correlation.
	SuggestionIDs []string
	Plan          Plan
	Err           string
	// AppliedOps and AbortedOps split the plan's operations into those
	// Actuation applied and those it never finished; on successful rounds
	// AbortedOps is zero. Failed rounds previously reported nothing here,
	// undercounting the work half-applied plans actually did.
	AppliedOps int
	AbortedOps int
}

// ResponseTime is the arbitration-to-actuation-complete duration (the
// paper's "time to finalize the plan and wait for Actuation").
func (r Record) ResponseTime() time.Duration { return r.ExecutedAt - r.ReceivedAt }

// Config tunes the engine's guards.
type Config struct {
	// WarmupDelay discards all suggestions for this long after Start, so
	// every task makes initial progress (paper §4.4: 2 minutes).
	WarmupDelay time.Duration
	// SettleDelay discards suggestions for this long after a successfully
	// applied plan, letting the workflow state settle (paper §4.4: 2
	// minutes).
	SettleDelay time.Duration
	// PlanCost models the protocol's own computation time (small; the
	// paper reports the planning share of the response as low).
	PlanCost time.Duration
	// FailureCooldown discards suggestions for this long after a round
	// whose actuation failed mid-plan, so policies stop hammering a
	// half-applied state while the recovery entries re-enqueued from the
	// failed plan wait for the next round. It is the failure analogue of
	// SettleDelay (which only arms on success) and is deliberately shorter:
	// a failed round leaves tasks down, and recovery should not wait the
	// full settle window.
	FailureCooldown time.Duration
	// GatherWindow is how long the engine keeps collecting further
	// suggestions after the first one passes the guards, so that policies
	// firing for different tasks within the same evaluation period are
	// arbitrated together (e.g. all four Gray-Scott analyses suggest
	// ADDCPU within one frequency period and the plan must weigh them
	// jointly). It aligns with the policy frequency and — like the
	// frequency delay — is excluded from the reported response time.
	GatherWindow time.Duration
	// NoVictims disables preemption (ablation).
	NoVictims bool
	// ImmediateKill disables graceful termination (ablation).
	ImmediateKill bool
}

// DefaultConfig returns the paper's guard settings.
func DefaultConfig() Config {
	return Config{
		WarmupDelay:     2 * time.Minute,
		SettleDelay:     2 * time.Minute,
		FailureCooldown: 30 * time.Second,
		PlanCost:        100 * time.Millisecond,
		GatherWindow:    5 * time.Second,
	}
}

// Engine is the Arbitration stage runtime.
type Engine struct {
	s    *sim.Sim
	ep   *msg.Endpoint
	cfg  Config
	view View
	exec Executor

	rules map[string]*spec.WorkflowRules
	// waiting is T_waiting, tracked per workflow.
	waiting map[string][]WaitingTask

	startedAt   sim.Time
	settleUntil sim.Time
	started     bool

	records []Record
	// empty documents rounds whose plan came out empty (infeasible or
	// nothing to do); kept separate so Records() still lists only executed
	// rounds, which is what the experiment reports count.
	empty     []Record
	discarded int
	onPlan    []func(Record)
	onRound   []func(RoundEvent)
	proc      *sim.Proc
	tr        *trace.Recorder
	spawn     func(name string, fn func(*sim.Proc)) *sim.Proc
	// busy is true from the moment a suggestion batch passes the guards
	// until its round completes. Checkpoints must not be taken while busy:
	// the gather window and the executing plan live on the proc stack and
	// cannot be serialized. Drivers defer the checkpoint to the next
	// quiescent instant instead (the WAL-commit-at-round-boundary rule).
	busy bool
}

// RoundEvent describes one completed arbitration round — executed or empty —
// together with the post-round engine state a write-ahead journal needs to
// replay it: the updated T_waiting queue for the round's workflow and the
// settle/cooldown deadline the round armed.
type RoundEvent struct {
	Record Record
	// Empty marks rounds whose plan came out empty.
	Empty bool
	// Waiting is the workflow's T_waiting queue after the round.
	Waiting []WaitingTask
	// SettleUntil is the guard deadline after the round (zero if unarmed).
	SettleUntil sim.Time
}

// New creates the Arbitration engine reading suggestion batches from its
// endpoint.
func New(s *sim.Sim, bus *msg.Bus, name string, cfg Config, rules map[string]*spec.WorkflowRules, view View, exec Executor) *Engine {
	if rules == nil {
		rules = map[string]*spec.WorkflowRules{}
	}
	return &Engine{
		s:       s,
		ep:      bus.Endpoint(name),
		cfg:     cfg,
		view:    view,
		exec:    exec,
		rules:   rules,
		waiting: make(map[string][]WaitingTask),
	}
}

// OnPlan registers an observer for executed arbitration rounds. Observers
// accumulate — registering never displaces an earlier observer.
func (e *Engine) OnPlan(fn func(Record)) { e.onPlan = append(e.onPlan, fn) }

// OnRound registers an observer fired after every round, executed or empty,
// with the post-round state a journal needs (see RoundEvent).
func (e *Engine) OnRound(fn func(RoundEvent)) { e.onRound = append(e.onRound, fn) }

// SetSpawner overrides how the engine spawns its process (the supervisor
// injects a panic-guarded spawner here). Call before Start.
func (e *Engine) SetSpawner(spawn func(name string, fn func(*sim.Proc)) *sim.Proc) {
	e.spawn = spawn
}

// Busy reports whether a round is in flight (gathering or executing a
// plan). Checkpoints are only coherent while not busy.
func (e *Engine) Busy() bool { return e.busy }

// SetTracer attaches the flight recorder for suggestion-span stamping and
// stage counters.
func (e *Engine) SetTracer(tr *trace.Recorder) { e.tr = tr }

// Records returns all executed arbitration rounds so far.
func (e *Engine) Records() []Record { return e.records }

// EmptyRecords returns the rounds whose plan was empty (infeasible or
// nothing to do); previously these were silently dropped, hiding
// infeasible rounds from all accounting.
func (e *Engine) EmptyRecords() []Record { return e.empty }

// EmptyRounds returns the number of empty-plan rounds.
func (e *Engine) EmptyRounds() int { return len(e.empty) }

// Discarded returns the number of suggestion batches dropped by the
// warm-up/settle guards.
func (e *Engine) Discarded() int { return e.discarded }

// Waiting returns the current T_waiting queue for a workflow.
func (e *Engine) Waiting(workflow string) []WaitingTask { return e.waiting[workflow] }

// EnqueueWaiting seeds T_waiting (e.g. a task composed to wait for
// resources initially).
func (e *Engine) EnqueueWaiting(w WaitingTask) {
	e.waiting[w.Workflow] = append(e.waiting[w.Workflow], w)
}

// Start spawns the engine process. The warm-up window arms only on the
// first Start: an engine restarted after a checkpoint restore (or a
// supervisor stage restart) keeps its original startedAt so recovery does
// not re-enter warm-up and discard live suggestions.
func (e *Engine) Start() {
	if !e.started {
		e.startedAt = e.s.Now()
		e.started = true
	}
	e.busy = false
	if e.spawn != nil {
		e.proc = e.spawn("arbiter", e.run)
	} else {
		e.proc = e.s.Spawn("arbiter", e.run)
	}
}

// Stop interrupts the engine process.
func (e *Engine) Stop() {
	if e.proc != nil {
		e.proc.Interrupt(nil)
	}
}

func (e *Engine) run(p *sim.Proc) {
	for {
		env, err := e.ep.Recv(p)
		if err != nil {
			return
		}
		var batch []decision.Suggestion
		if err := env.Decode(&batch); err != nil || len(batch) == 0 {
			continue
		}
		now := e.s.Now()
		// Warm-up and settle guards.
		if now-e.startedAt < e.cfg.WarmupDelay || now < e.settleUntil {
			e.discarded++
			reason := "settle"
			if now-e.startedAt < e.cfg.WarmupDelay {
				reason = "warmup"
			}
			e.tr.Inc("arbiter.discarded_batches", 1)
			for _, sg := range batch {
				e.tr.Drop(sg.ID, reason, now)
			}
			continue
		}
		e.busy = true
		batch = e.gather(p, batch)
		e.arbitrate(p, batch)
		e.busy = false
	}
}

// gather collects further suggestion batches for the configured window, so
// same-period policy responses are arbitrated jointly.
func (e *Engine) gather(p *sim.Proc, batch []decision.Suggestion) []decision.Suggestion {
	if e.cfg.GatherWindow <= 0 {
		return batch
	}
	deadline := e.s.Now() + e.cfg.GatherWindow
	for {
		remaining := deadline - e.s.Now()
		if remaining <= 0 {
			return batch
		}
		step := 500 * time.Millisecond
		if remaining < step {
			step = remaining
		}
		if err := p.Sleep(step); err != nil {
			return batch
		}
		for {
			env, ok := e.ep.TryRecv()
			if !ok {
				break
			}
			var more []decision.Suggestion
			if err := env.Decode(&more); err == nil {
				batch = append(batch, more...)
			}
		}
	}
}

// Arbitrate runs one round synchronously for the given suggestions; used by
// the engine loop and directly by tests.
func (e *Engine) Arbitrate(p *sim.Proc, batch []decision.Suggestion) []Record {
	return e.arbitrate(p, batch)
}

func (e *Engine) arbitrate(p *sim.Proc, batch []decision.Suggestion) []Record {
	received := e.s.Now()
	var out []Record

	// Group suggestions by workflow; each workflow plans independently.
	byWF := map[string][]decision.Suggestion{}
	var order []string
	for _, sg := range batch {
		if _, seen := byWF[sg.Workflow]; !seen {
			order = append(order, sg.Workflow)
		}
		byWF[sg.Workflow] = append(byWF[sg.Workflow], sg)
	}

	for _, wf := range order {
		sgs := byWF[wf]
		tasks, free := e.view.Snapshot(wf)
		// Screen out stale suggestions: anything decided before the
		// assessed task's current incarnation launched describes a state
		// that no longer exists (the in-flight analogue of Decision's
		// post-restart metric screening).
		fresh := sgs[:0]
		for _, sg := range sgs {
			if st, ok := tasks[sg.AssessTask]; ok && st.StartedAt > 0 && sim.Time(sg.DecidedAt) < st.StartedAt {
				e.tr.Drop(sg.ID, "stale", received)
				e.tr.Inc("arbiter.stale_suggestions", 1)
				continue
			}
			fresh = append(fresh, sg)
		}
		sgs = fresh
		if len(sgs) == 0 {
			continue
		}
		ids := make([]string, 0, len(sgs))
		for _, sg := range sgs {
			if sg.ID != "" {
				ids = append(ids, sg.ID)
			}
			e.tr.Received(sg.ID, received)
		}
		in := PlanInput{
			Workflow:      wf,
			Suggestions:   sgs,
			Tasks:         tasks,
			FreeCores:     free,
			Rules:         e.rules[wf],
			Waiting:       e.waiting[wf],
			NoVictims:     e.cfg.NoVictims,
			ImmediateKill: e.cfg.ImmediateKill,
		}
		plan, stillWaiting := BuildPlan(in)
		// BuildPlan may have consumed Waiting entries (dedup, entries
		// resolved by tasks coming back on their own) even when the plan
		// came out empty, so the queue update must happen on every round.
		e.waiting[wf] = stillWaiting

		rec := Record{
			Workflow:      wf,
			ReceivedAt:    received,
			EventAt:       earliestEvent(sgs),
			SuggestionIDs: ids,
		}
		if plan.Empty() {
			// Nothing feasible or nothing to do: no settle window, but the
			// round must stay visible to the accounting.
			rec.PlannedAt = e.s.Now()
			e.empty = append(e.empty, rec)
			e.tr.Inc("arbiter.empty_rounds", 1)
			for _, id := range ids {
				e.tr.Drop(id, "empty-plan", rec.PlannedAt)
			}
			e.fireRound(RoundEvent{
				Record:      rec,
				Empty:       true,
				Waiting:     append([]WaitingTask(nil), e.waiting[wf]...),
				SettleUntil: e.settleUntil,
			})
			continue
		}
		// Protocol computation cost.
		if e.cfg.PlanCost > 0 {
			if err := p.SleepUninterruptible(e.cfg.PlanCost); err != nil {
				return out
			}
		}
		rec.PlannedAt = e.s.Now()
		for _, id := range ids {
			e.tr.Planned(id, rec.PlannedAt)
		}

		rep, err := e.exec.Execute(p, plan)
		rec.ExecutedAt = e.s.Now()
		rec.Plan = plan
		rec.AppliedOps = rep.Applied
		rec.AbortedOps = rep.Aborted
		for _, id := range ids {
			e.tr.Executed(id, rec.ExecutedAt)
		}
		e.tr.Inc("arbiter.rounds", 1)
		if err != nil {
			rec.Err = err.Error()
			e.tr.Inc("arbiter.failed_rounds", 1)
			// Mid-plan recovery: a START that never applied may belong to a
			// task an earlier op of this very plan stopped — abandoning it
			// strands the task forever (a gracefully stopped task exits 0,
			// so no failure policy ever fires for it). Re-enqueue every
			// unapplied START as a recovery entry of T_waiting; the next
			// round restarts it from whatever capacity is then available.
			e.requeue(wf, tasks, rep.UnappliedStarts)
			if e.cfg.FailureCooldown > 0 {
				// Stop suggestions from hammering the half-applied state,
				// but shorter than the success settle: tasks are down.
				e.settleUntil = e.s.Now() + e.cfg.FailureCooldown
			}
		} else if e.cfg.SettleDelay > 0 {
			// Let the workflow settle before considering new suggestions.
			e.settleUntil = e.s.Now() + e.cfg.SettleDelay
		}
		e.records = append(e.records, rec)
		for _, fn := range e.onPlan {
			fn(rec)
		}
		e.fireRound(RoundEvent{
			Record:      rec,
			Waiting:     append([]WaitingTask(nil), e.waiting[wf]...),
			SettleUntil: e.settleUntil,
		})
		out = append(out, rec)
	}
	return out
}

func (e *Engine) fireRound(ev RoundEvent) {
	for _, fn := range e.onRound {
		fn(ev)
	}
}

// requeue converts the unapplied START operations of a failed round into
// recovery entries of T_waiting. Recovery entries, unlike victim entries,
// may start from pre-existing free capacity on the next round (see
// BuildPlan): the plan that should have started them already released the
// resources, so waiting for new plan-freed surplus would strand them.
func (e *Engine) requeue(wf string, tasks map[string]TaskState, starts []Op) {
	for _, op := range starts {
		if isWaiting(e.waiting[wf], op.Task) {
			continue // an entry for the task is already queued
		}
		st := tasks[op.Task]
		e.waiting[wf] = append(e.waiting[wf], WaitingTask{
			Workflow:     wf,
			Task:         op.Task,
			Procs:        op.Procs,
			PerNode:      op.PerNode,
			CoresPerProc: st.CoresPerProc,
			Script:       op.Script,
			Recovery:     true,
		})
		e.tr.Inc("arbiter.requeued_tasks", 1)
	}
}

func earliestEvent(sgs []decision.Suggestion) sim.Time {
	var min sim.Time
	for i, sg := range sgs {
		t := sim.Time(sg.GeneratedAt)
		if i == 0 || t < min {
			min = t
		}
	}
	return min
}
