// Package arbiter implements DYFLOW's Arbitration stage (paper §2.3 and
// Algorithm 1): it screens the high-level actions suggested by Decision,
// resolves conflicts with policy priorities, pulls in dependent actions via
// task inter-dependencies, maps everything to low-level operations, makes
// the plan feasible against available resources by preempting low-priority
// victims or discarding the least significant operations, gives waiting
// tasks a chance to start when resources free up, and finally orders the
// operations so that releases precede acquisitions.
//
// BuildPlan is a pure function over a PlanInput snapshot so the protocol's
// branches are directly testable; Engine (engine.go) wraps it with the
// runtime state collection, warm-up/settle guards, and execution handoff.
package arbiter

import (
	"fmt"
	"sort"

	"dyflow/internal/core/decision"
	"dyflow/internal/core/spec"
	"dyflow/internal/sim"
)

// OpKind is a low-level operation type.
type OpKind int

const (
	// OpStop terminates a running task (stop_task).
	OpStop OpKind = iota
	// OpStart launches a task with a resource shape
	// (start_task_with_resources).
	OpStart
)

// String returns a short name.
func (k OpKind) String() string {
	if k == OpStop {
		return "stop"
	}
	return "start"
}

// Op is one low-level operation in a plan.
type Op struct {
	Kind     OpKind
	Workflow string
	Task     string
	// Graceful lets a stopped task finish its current timestep (SIGTERM).
	Graceful bool
	// Procs/PerNode shape an OpStart; the concrete node placement is
	// resolved at execution time against then-current healthy resources.
	Procs   int
	PerNode int
	// Script names a user script to run before an OpStart.
	Script string
	// Policy records which policy motivated the operation ("" for derived
	// dependent operations and victim preemptions).
	Policy string
	// Victim marks a preemption stop inserted to free resources.
	Victim bool
	// Dependent marks an operation added through task inter-dependencies.
	Dependent bool
}

func (o Op) String() string {
	s := fmt.Sprintf("%s(%s", o.Kind, o.Task)
	if o.Kind == OpStart {
		s += fmt.Sprintf(", %d procs", o.Procs)
	}
	if o.Victim {
		s += ", victim"
	}
	if o.Dependent {
		s += ", dep"
	}
	return s + ")"
}

// Plan is an ordered, feasible set of low-level operations.
type Plan struct {
	Workflow string
	Ops      []Op
	// Trigger records the suggestions that produced the plan.
	Trigger []decision.Suggestion
	// Denied lists suggested actions discarded for infeasibility.
	Denied []string
}

// Empty reports whether the plan contains no operations.
func (p Plan) Empty() bool { return len(p.Ops) == 0 }

// TaskState is the arbiter's snapshot of one composed task.
type TaskState struct {
	// Running reports a live incarnation.
	Running bool
	// Procs is the current process count when running, or the most recent
	// (or configured) count otherwise — the size a RESTART brings back.
	Procs int
	// PerNode is the placement shape.
	PerNode int
	// CoresPerProc is the per-process core footprint (0 means 1); the
	// protocol's resource accounting is in cores = procs * CoresPerProc.
	CoresPerProc int
	// Script is the configured start script ("" for none).
	Script string
	// StartedAt is when the current/last incarnation launched (zero if
	// never); suggestions decided before it are stale and screened out.
	StartedAt sim.Time
}

// cpp returns the normalized per-process core footprint.
func (st TaskState) cpp() int {
	if st.CoresPerProc <= 0 {
		return 1
	}
	return st.CoresPerProc
}

// WaitingTask is an entry of T_waiting: a task displaced (or denied) that
// should start once resources allow.
type WaitingTask struct {
	Workflow     string
	Task         string
	Procs        int
	PerNode      int
	CoresPerProc int
	Script       string
	// Recovery marks an entry re-enqueued from a failed round's unapplied
	// START operations (the task was stopped by the plan but never came
	// back). Unlike victim entries, recovery entries may start from
	// pre-existing free capacity — the failed plan already released their
	// resources, so demanding fresh plan-freed surplus would strand them.
	Recovery bool
}

// PlanInput is the snapshot Algorithm 1 runs against.
type PlanInput struct {
	Workflow    string
	Suggestions []decision.Suggestion
	// Tasks maps every composed task of the workflow to its state.
	Tasks map[string]TaskState
	// FreeCores is the healthy unassigned capacity (Count(R_free)).
	FreeCores int
	// Rules supplies task/policy priorities and dependencies (may be nil).
	Rules *spec.WorkflowRules
	// Waiting is the current T_waiting queue.
	Waiting []WaitingTask
	// NoVictims disables preemption (ablation): infeasible acquiring
	// operations are denied instead of displacing low-priority tasks.
	NoVictims bool
	// ImmediateKill stops tasks without the graceful drain (ablation of
	// the §4.4 note that response times shrink when tasks are not allowed
	// to terminate gracefully — at the cost of losing in-flight steps).
	ImmediateKill bool
}

// intent is a per-task resolved high-level action.
type intent struct {
	action    spec.Action
	task      string
	policy    string
	policyPri int
	params    map[string]string
	dependent bool
	parent    string // the disrupted task a dependent intent derives from
}

// BuildPlan runs the arbitration protocol and returns the ordered plan and
// the updated waiting queue.
func BuildPlan(in PlanInput) (Plan, []WaitingTask) {
	plan := Plan{Workflow: in.Workflow, Trigger: in.Suggestions}

	// --- Line 2: resolve conflicts in A_sugg using policy priorities. ---
	intents := resolveConflicts(in, &plan)

	// --- Line 3: add dependent actions via task dependencies. ---
	addDependents(in, intents)

	// --- Lines 4-5: map to low-level operations; compute resource needs.
	type taskOps struct {
		task     string
		stop     *Op
		start    *Op
		need     int // cores acquired by start
		freed    int // cores released by stop
		acquires bool
		pri      int
		policy   string
		parent   string // set for dependency-derived entries
	}
	var entries []*taskOps
	for _, it := range sortedIntents(in, intents) {
		st := in.Tasks[it.task]
		e := &taskOps{task: it.task, pri: taskPri(in, it.task), policy: it.policy, parent: it.parent}
		switch it.action {
		case spec.ActionAddCPU, spec.ActionRmCPU:
			if !st.Running {
				continue // nothing to resize
			}
			delta := intParam(it.params, "adjust-by", 20)
			newProcs := st.Procs + delta
			if it.action == spec.ActionRmCPU {
				newProcs = st.Procs - delta
				if newProcs < 1 {
					continue // shrinking below one process is nonsensical
				}
			}
			if newProcs == st.Procs {
				continue
			}
			// MPI tasks cannot grow or shrink without restart (paper §3).
			// Resizes relax the initial per-node shape (PerNode 0): the new
			// incarnation takes cores wherever the plan released them —
			// e.g. Isosurface growing 20->40 absorbs PDF_Calc's 2-per-node
			// cores in Figure 8.
			e.stop = &Op{Kind: OpStop, Workflow: in.Workflow, Task: it.task, Graceful: true, Policy: it.policy, Dependent: it.dependent}
			e.start = &Op{Kind: OpStart, Workflow: in.Workflow, Task: it.task, Procs: newProcs, PerNode: 0, Script: scriptFor(it, st), Policy: it.policy, Dependent: it.dependent}
			e.freed = st.Procs * st.cpp()
			e.need = newProcs * st.cpp()
			e.acquires = newProcs > st.Procs
		case spec.ActionRestart:
			procs := st.Procs
			if procs <= 0 {
				continue
			}
			if st.Running {
				e.stop = &Op{Kind: OpStop, Workflow: in.Workflow, Task: it.task, Graceful: true, Policy: it.policy, Dependent: it.dependent}
				e.freed = procs * st.cpp()
			}
			e.start = &Op{Kind: OpStart, Workflow: in.Workflow, Task: it.task, Procs: procs, PerNode: st.PerNode, Script: scriptFor(it, st), Policy: it.policy, Dependent: it.dependent}
			e.need = procs * st.cpp()
			e.acquires = !st.Running
		case spec.ActionStop:
			if !st.Running {
				continue
			}
			e.stop = &Op{Kind: OpStop, Workflow: in.Workflow, Task: it.task, Graceful: true, Policy: it.policy, Dependent: it.dependent}
			e.freed = st.Procs * st.cpp()
		case spec.ActionStart:
			if st.Running {
				continue
			}
			procs := intParam(it.params, "procs", st.Procs)
			if procs <= 0 {
				continue
			}
			e.start = &Op{Kind: OpStart, Workflow: in.Workflow, Task: it.task, Procs: procs, PerNode: st.PerNode, Script: scriptFor(it, st), Policy: it.policy, Dependent: it.dependent}
			e.need = procs * st.cpp()
			e.acquires = true
		default:
			continue
		}
		if e.stop == nil && e.start == nil {
			continue
		}
		entries = append(entries, e)
	}

	// --- Lines 6-15: make the plan feasible. ---
	// Deduplicate the incoming waiting queue by task (first entry wins) so
	// a task can never be started from one entry while another lingers.
	var waiting []WaitingTask
	for _, w := range in.Waiting {
		if !isWaiting(waiting, w.Task) {
			waiting = append(waiting, w)
		}
	}
	var victimsAdded []*taskOps
	inPlan := func(task string) bool {
		for _, e := range entries {
			if e.task == task {
				return true
			}
		}
		return false
	}
	balance := func() int {
		need := 0
		for _, e := range entries {
			need += e.need - e.freed
		}
		return need - in.FreeCores
	}
	// bestAcquirerPri is the numerically smallest (most important) priority
	// among operations that acquire resources; a victim must be strictly
	// less important, so equal-priority tasks never preempt each other
	// (e.g. XGC1 is never killed to start XGCa — XGCa waits instead).
	bestAcquirerPri := func() (int, bool) {
		best, any := 0, false
		for _, e := range entries {
			if e.acquires && (!any || e.pri < best) {
				best, any = e.pri, true
			}
		}
		return best, any
	}
	for balance() > 0 {
		// Find the lowest-priority running task (plus tight dependents)
		// that can shed resources.
		victim := ""
		victimPri := -1
		floor, anyAcquirer := bestAcquirerPri()
		if !in.NoVictims {
			for _, name := range sortedTaskNames(in.Tasks) {
				st := in.Tasks[name]
				if !st.Running || st.Procs <= 0 || inPlan(name) || isWaiting(waiting, name) {
					continue
				}
				p := taskPri(in, name)
				if anyAcquirer && p <= floor {
					continue // never preempt an equal-or-higher-priority task
				}
				if p > victimPri {
					victim, victimPri = name, p
				}
			}
		}
		if victim != "" {
			group := append([]string{victim}, runningTightDependents(in, victim, inPlan)...)
			for _, v := range group {
				st := in.Tasks[v]
				e := &taskOps{
					task:  v,
					stop:  &Op{Kind: OpStop, Workflow: in.Workflow, Task: v, Graceful: true, Victim: true},
					freed: st.Procs * st.cpp(),
					pri:   taskPri(in, v),
				}
				entries = append(entries, e)
				victimsAdded = append(victimsAdded, e)
				waiting = append(waiting, WaitingTask{
					Workflow: in.Workflow, Task: v,
					Procs: st.Procs, PerNode: st.PerNode,
					CoresPerProc: st.cpp(), Script: st.Script,
				})
			}
			continue
		}
		// No victim: discard the least significant acquiring operation.
		dropIdx := -1
		for i, e := range entries {
			if !e.acquires {
				continue
			}
			if dropIdx == -1 || e.pri > entries[dropIdx].pri {
				dropIdx = i
			}
		}
		if dropIdx == -1 {
			break // nothing acquires; should not happen with balance > 0
		}
		dropped := entries[dropIdx].task
		plan.Denied = append(plan.Denied, fmt.Sprintf("%s (policy %s): insufficient resources", dropped, entries[dropIdx].policy))
		entries = append(entries[:dropIdx], entries[dropIdx+1:]...)
		// Dependency-derived entries of the dropped operation are
		// pointless without it.
		kept := entries[:0]
		for _, e := range entries {
			if e.parent != dropped {
				kept = append(kept, e)
			}
		}
		entries = kept
	}

	// Retract victims that became unnecessary: if the acquiring operation
	// that motivated a preemption was itself dropped, the victim must not
	// be stopped for nothing. Remove victims (most recent first) while the
	// plan stays feasible without them.
	for i := len(victimsAdded) - 1; i >= 0; i-- {
		v := victimsAdded[i]
		idx := -1
		for j, e := range entries {
			if e == v {
				idx = j
				break
			}
		}
		if idx < 0 {
			continue
		}
		entries = append(entries[:idx], entries[idx+1:]...)
		if balance() > 0 {
			// Still needed: put it back.
			entries = append(entries, v)
			continue
		}
		// Retracted for good; drop its waiting entry too.
		for j := len(waiting) - 1; j >= 0; j-- {
			if waiting[j].Task == v.task {
				waiting = append(waiting[:j], waiting[j+1:]...)
				break
			}
		}
	}

	// --- Lines 16-18: start waiting tasks (highest priority first) while
	// resources remain. For ordinary entries only resources freed BY THE
	// PLAN count ("when resources are freed by the plan, the waiting list
	// tasks are provided the opportunity to start"): pre-existing free
	// capacity must not let a stray empty suggestion resurrect
	// long-displaced tasks. Recovery entries (re-enqueued from a failed
	// round's unapplied starts) instead draw on the full capacity left
	// after the plan — their resources were already released by the plan
	// that failed to restart them.
	surplus := 0
	for _, e := range entries {
		surplus += e.freed - e.need
	}
	avail := in.FreeCores + surplus
	if surplus < 0 {
		surplus = 0
	}
	if avail < 0 {
		avail = 0
	}
	sort.SliceStable(waiting, func(i, j int) bool {
		pi, pj := taskPri(in, waiting[i].Task), taskPri(in, waiting[j].Task)
		if pi != pj {
			return pi < pj
		}
		return waiting[i].Task < waiting[j].Task
	})
	startsInPlan := func(task string) bool {
		for _, e := range entries {
			if e.task == task && e.start != nil {
				return true
			}
		}
		return false
	}
	stopsInPlan := func(task string) bool {
		for _, e := range entries {
			if e.task == task && e.stop != nil {
				return true
			}
		}
		return false
	}
	var stillWaiting []WaitingTask
	for _, w := range waiting {
		if startsInPlan(w.Task) {
			continue // resolved by the plan itself (e.g. a START suggestion)
		}
		if in.Tasks[w.Task].Running && !stopsInPlan(w.Task) {
			continue // stale entry: the task is back without our help
		}
		cpp := w.CoresPerProc
		if cpp <= 0 {
			cpp = 1
		}
		cores := w.Procs * cpp
		budget := surplus
		if w.Recovery {
			budget = avail
		}
		if cores <= budget && !inPlan(w.Task) && !in.Tasks[w.Task].Running {
			entries = append(entries, &taskOps{
				task:  w.Task,
				start: &Op{Kind: OpStart, Workflow: in.Workflow, Task: w.Task, Procs: w.Procs, PerNode: w.PerNode, Script: w.Script},
				need:  cores,
				pri:   taskPri(in, w.Task),
			})
			surplus -= cores
			if surplus < 0 {
				surplus = 0
			}
			avail -= cores
			continue
		}
		stillWaiting = append(stillWaiting, w)
	}

	// --- Line 19: order operations — releases before acquisitions. ---
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].pri != entries[j].pri {
			return entries[i].pri < entries[j].pri
		}
		return entries[i].task < entries[j].task
	})
	for _, e := range entries {
		if e.stop != nil {
			plan.Ops = append(plan.Ops, *e.stop)
		}
	}
	for _, e := range entries {
		if e.start != nil {
			plan.Ops = append(plan.Ops, *e.start)
		}
	}
	if in.ImmediateKill {
		for i := range plan.Ops {
			plan.Ops[i].Graceful = false
		}
	}
	return plan, stillWaiting
}

// resolveConflicts expands suggestions into per-task intents, resolving
// STOP-START, STOP-RESTART, and RMCPU-ADDCPU style conflicts with policy
// priorities (lower value wins; first seen wins ties).
func resolveConflicts(in PlanInput, plan *Plan) map[string]*intent {
	intents := make(map[string]*intent)
	consider := func(it *intent) {
		cur, ok := intents[it.task]
		if !ok {
			intents[it.task] = it
			return
		}
		if cur.action == it.action {
			return // duplicate suggestion
		}
		if it.policyPri < cur.policyPri {
			plan.Denied = append(plan.Denied, fmt.Sprintf("%s on %s (policy %s): conflicts with higher-priority %s", cur.action, cur.task, cur.policy, it.action))
			intents[it.task] = it
		} else {
			plan.Denied = append(plan.Denied, fmt.Sprintf("%s on %s (policy %s): conflicts with higher-priority %s", it.action, it.task, it.policy, cur.action))
		}
	}
	for _, sg := range in.Suggestions {
		act, err := sg.ParsedAction()
		if err != nil {
			continue
		}
		pri := in.Rules.PolicyPriority(sg.PolicyID)
		if act == spec.ActionSwitch {
			// SWITCH = stop the assessed task, start the act-on tasks.
			consider(&intent{action: spec.ActionStop, task: sg.AssessTask, policy: sg.PolicyID, policyPri: pri, params: sg.Params})
			for _, t := range sg.ActOnTasks {
				consider(&intent{action: spec.ActionStart, task: t, policy: sg.PolicyID, policyPri: pri, params: sg.Params})
			}
			continue
		}
		for _, t := range sg.ActOnTasks {
			consider(&intent{action: act, task: t, policy: sg.PolicyID, policyPri: pri, params: sg.Params})
		}
	}
	return intents
}

// addDependents pulls in tightly coupled dependents of disrupted tasks:
// resizes and restarts restart the dependents; stops stop them. A
// dependency-derived action overrides the dependent's own suggested resize
// — consistency with the parent outranks an opportunistic ADDCPU/RMCPU, so
// Rendering is restarted at its current size when Isosurface resizes
// (Figure 8), even while Rendering's own INC_ON_PACE fired too.
func addDependents(in PlanInput, intents map[string]*intent) {
	queue := make([]string, 0, len(intents))
	for t := range intents {
		queue = append(queue, t)
	}
	sort.Strings(queue)
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		it := intents[t]
		var depAction spec.Action
		switch it.action {
		case spec.ActionAddCPU, spec.ActionRmCPU, spec.ActionRestart:
			depAction = spec.ActionRestart
		case spec.ActionStop:
			depAction = spec.ActionStop
		default:
			continue // START does not disrupt running dependents
		}
		tight := spec.DepTight
		for _, dep := range in.Rules.Dependents(t, &tight) {
			if cur, exists := intents[dep]; exists {
				// Override resizes with the dependency restart; leave
				// stops and existing restarts alone.
				if depAction == spec.ActionRestart && (cur.action == spec.ActionAddCPU || cur.action == spec.ActionRmCPU) {
					intents[dep] = &intent{
						action: spec.ActionRestart, task: dep,
						policy: it.policy, policyPri: it.policyPri,
						dependent: true, parent: t,
					}
				}
				continue
			}
			if !in.Tasks[dep].Running {
				continue
			}
			intents[dep] = &intent{
				action: depAction, task: dep,
				policy: it.policy, policyPri: it.policyPri,
				dependent: true, parent: t,
			}
			queue = append(queue, dep)
		}
	}
}

// runningTightDependents returns the running tight dependents of task (in
// sorted order) that are not already in the plan.
func runningTightDependents(in PlanInput, taskName string, inPlan func(string) bool) []string {
	var out []string
	tight := spec.DepTight
	for _, dep := range in.Rules.Dependents(taskName, &tight) {
		if in.Tasks[dep].Running && !inPlan(dep) {
			out = append(out, dep)
		}
	}
	sort.Strings(out)
	return out
}

func taskPri(in PlanInput, taskName string) int { return in.Rules.TaskPriority(taskName) }

func sortedIntents(in PlanInput, intents map[string]*intent) []*intent {
	names := make([]string, 0, len(intents))
	for t := range intents {
		names = append(names, t)
	}
	sort.Slice(names, func(i, j int) bool {
		pi, pj := taskPri(in, names[i]), taskPri(in, names[j])
		if pi != pj {
			return pi < pj
		}
		return names[i] < names[j]
	})
	out := make([]*intent, len(names))
	for i, n := range names {
		out[i] = intents[n]
	}
	return out
}

func sortedTaskNames(tasks map[string]TaskState) []string {
	names := make([]string, 0, len(tasks))
	for t := range tasks {
		names = append(names, t)
	}
	sort.Strings(names)
	return names
}

func isWaiting(waiting []WaitingTask, taskName string) bool {
	for _, w := range waiting {
		if w.Task == taskName {
			return true
		}
	}
	return false
}

func intParam(params map[string]string, key string, def int) int {
	if params == nil {
		return def
	}
	b := spec.PolicyBinding{Params: params}
	return b.IntParam(key, def)
}

func scriptFor(it *intent, st TaskState) string {
	if it.params != nil {
		if s, ok := it.params["restart-script"]; ok {
			return s
		}
	}
	return st.Script
}
