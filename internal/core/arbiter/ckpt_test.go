package arbiter

import (
	"encoding/json"
	"testing"
	"time"

	"dyflow/internal/core/decision"
)

// A snapshot must round-trip through JSON (the checkpoint wire format)
// without losing T_waiting recovery entries or deadlines.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Second, SettleDelay: time.Minute,
		FailureCooldown: 10 * time.Second, GatherWindow: time.Second})
	r.exec.failAfter = 0 // every op fails -> recovery requeue
	sendSuggestions(r, 10*time.Second,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}})
	if err := r.s.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap := r.eng.Snapshot()
	if len(snap.Waiting) != 1 || !snap.Waiting[0].Tasks[0].Recovery {
		t.Fatalf("snapshot waiting = %+v, want one recovery entry", snap.Waiting)
	}
	if snap.SettleUntil == 0 {
		t.Fatal("snapshot lost the failure-cooldown deadline")
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	r.eng.Restore(back)
	after := r.eng.Snapshot()
	blob2, err := json.Marshal(after)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("snapshot not stable across restore:\n%s\nvs\n%s", blob, blob2)
	}
}

// A failed round's recovery T_waiting entry and FailureCooldown deadline
// must reach a replacement engine via snapshot + journal replay, and the
// replacement must honor both: the in-cooldown batch is discarded, and the
// next round past the cooldown restarts the stranded task from free
// capacity.
func TestRestoredEngineHonorsRecoveryWaitingAndCooldown(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Second, SettleDelay: 2 * time.Minute,
		FailureCooldown: 30 * time.Second, GatherWindow: time.Second})
	r.exec.failAfter = 1 // apply the stop, fail the start
	r.exec.apply = func(p Plan) {
		for i, op := range p.Ops {
			if r.exec.failAfter >= 0 && i >= r.exec.failAfter {
				break
			}
			st := r.view.tasks[p.Workflow][op.Task]
			st.Running = op.Kind == OpStart
			if op.Kind == OpStart {
				st.Procs = op.Procs
			}
			r.view.tasks[p.Workflow][op.Task] = st
		}
	}

	// Snapshot before the failure; journal every round after it (the
	// orchestrator's write-ahead journal does exactly this via OnRound).
	var early Snapshot
	var journal []RoundEvent
	r.s.At(5*time.Second, func() { early = r.eng.Snapshot() })
	r.eng.OnRound(func(ev RoundEvent) { journal = append(journal, ev) })

	// Failed round: the stop applies, the start doesn't -> A is stranded,
	// requeued as a recovery entry, cooldown armed until ~41s.
	sendSuggestions(r, 10*time.Second,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "RESTART", AssessTask: "A", ActOnTasks: []string{"A"}})

	// Crash at 20s: kill the engine and restore a replacement from the
	// pre-failure snapshot plus the journaled rounds.
	r.s.At(20*time.Second, func() {
		if len(journal) != 1 {
			t.Fatalf("journal = %+v, want the one failed round", journal)
		}
		r.eng.Stop()
		eng2 := New(r.s, r.bus, "arbiter", r.cfg, r.rules, r.view, r.exec)
		eng2.Restore(early)
		for _, ev := range journal {
			eng2.ApplyRound(ev)
		}
		eng2.Start()
		r.eng = eng2
	})

	// Inside the restored cooldown: must be discarded without planning.
	sendSuggestions(r, 25*time.Second,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "STOP", AssessTask: "B", ActOnTasks: []string{"B"}})
	// Past the cooldown: actuation healthy again; the round must pick up
	// the restored recovery entry.
	r.s.At(59*time.Second, func() { r.exec.failAfter = -1 })
	sendSuggestions(r, time.Minute,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "STOP", AssessTask: "B", ActOnTasks: []string{"B"}})
	if err := r.s.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}

	if got := r.eng.Discarded(); got != 1 {
		t.Fatalf("discarded = %d, want 1 (the in-cooldown batch, honoring the restored deadline)", got)
	}
	recs := r.eng.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %+v, want journaled failed round + live recovery round", recs)
	}
	if recs[0].Err == "" {
		t.Fatalf("restored round = %+v, want the journaled failure", recs[0])
	}
	if recs[1].Err != "" || recs[1].AppliedOps != 1 {
		t.Fatalf("recovery round = %+v, want the restart applied", recs[1])
	}
	last := r.exec.plans[len(r.exec.plans)-1].Ops
	if len(last) != 1 || last[0].Kind != OpStart || last[0].Task != "A" || last[0].Procs != 10 {
		t.Fatalf("recovery plan = %v, want A restarted at its old size", last)
	}
	if st := r.view.tasks["W"]["A"]; !st.Running {
		t.Fatal("A still stranded: the restored engine never honored the recovery entry")
	}
	if w := r.eng.Waiting("W"); len(w) != 0 {
		t.Fatalf("waiting = %+v, want the recovery entry consumed", w)
	}
}
