package arbiter

import (
	"fmt"
	"testing"
	"time"

	"dyflow/internal/core/decision"
	"dyflow/internal/core/spec"
	"dyflow/internal/msg"
	"dyflow/internal/sim"
	"dyflow/internal/trace"
)

// fakeView serves snapshots from a mutable map.
type fakeView struct {
	tasks map[string]map[string]TaskState // workflow -> task -> state
	free  int
}

func (v *fakeView) Snapshot(wf string) (map[string]TaskState, int) {
	out := make(map[string]TaskState, len(v.tasks[wf]))
	for k, st := range v.tasks[wf] {
		out[k] = st
	}
	return out, v.free
}

// fakeExec records executed plans and applies optional per-op latency.
type fakeExec struct {
	s     *sim.Sim
	plans []Plan
	opDur time.Duration
	// apply mutates the view like a real actuation would.
	apply func(Plan)
	// failAfter, when >= 0, fails the plan after applying that many ops
	// (mimicking a mid-plan actuation failure).
	failAfter int
}

func (e *fakeExec) Execute(p *sim.Proc, plan Plan) (ExecReport, error) {
	if e.opDur > 0 {
		if err := p.SleepUninterruptible(time.Duration(len(plan.Ops)) * e.opDur); err != nil {
			return ExecReport{Aborted: len(plan.Ops)}, err
		}
	}
	e.plans = append(e.plans, plan)
	if e.apply != nil {
		e.apply(plan)
	}
	if e.failAfter >= 0 && e.failAfter < len(plan.Ops) {
		rep := ExecReport{Applied: e.failAfter, Aborted: len(plan.Ops) - e.failAfter}
		for _, op := range plan.Ops[e.failAfter:] {
			if op.Kind == OpStart {
				rep.UnappliedStarts = append(rep.UnappliedStarts, op)
			}
		}
		return rep, fmt.Errorf("fake actuation failure at op %d", e.failAfter)
	}
	return ExecReport{Applied: len(plan.Ops)}, nil
}

type engineRig struct {
	s     *sim.Sim
	bus   *msg.Bus
	dec   *msg.Endpoint
	view  *fakeView
	exec  *fakeExec
	eng   *Engine
	cfg   Config
	rules map[string]*spec.WorkflowRules
}

func newEngineRig(t *testing.T, cfg Config) *engineRig {
	t.Helper()
	s := sim.New(1)
	bus := msg.NewBus(s)
	dec := bus.Endpoint("decision")
	view := &fakeView{
		tasks: map[string]map[string]TaskState{
			"W": {
				"A": {Running: true, Procs: 10},
				"B": {Running: false, Procs: 10},
			},
			"V": {
				"X": {Running: true, Procs: 4},
			},
		},
		free: 100,
	}
	exec := &fakeExec{s: s, failAfter: -1}
	rules := map[string]*spec.WorkflowRules{
		"W": {Workflow: "W", TaskPriorities: map[string]int{"A": 0, "B": 1}},
		"V": {Workflow: "V", TaskPriorities: map[string]int{"X": 0}},
	}
	eng := New(s, bus, "arbiter", cfg, rules, view, exec)
	eng.Start()
	return &engineRig{s: s, bus: bus, dec: dec, view: view, exec: exec, eng: eng, cfg: cfg, rules: rules}
}

func sendSuggestions(r *engineRig, at time.Duration, sgs ...decision.Suggestion) {
	r.s.At(at, func() {
		for i := range sgs {
			if sgs[i].DecidedAt == 0 {
				sgs[i].DecidedAt = int64(r.s.Now())
			}
		}
		r.dec.Send("arbiter", sgs)
	})
}

func TestEngineWarmupDiscards(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Minute, SettleDelay: time.Minute, GatherWindow: time.Second})
	sg := decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}}
	sendSuggestions(r, 10*time.Second, sg) // inside warm-up
	sendSuggestions(r, 2*time.Minute, sg)  // after warm-up
	if err := r.s.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if r.eng.Discarded() != 1 {
		t.Fatalf("discarded = %d, want 1", r.eng.Discarded())
	}
	if len(r.exec.plans) != 1 {
		t.Fatalf("executed plans = %d, want 1", len(r.exec.plans))
	}
	recs := r.eng.Records()
	if len(recs) != 1 || recs[0].Workflow != "W" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestEngineSettleDiscards(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Second, SettleDelay: 2 * time.Minute, GatherWindow: time.Second})
	// Actuation mutates the view so repeated suggestions become no-ops
	// only after the settle window would have ended.
	r.exec.apply = func(Plan) {
		r.view.tasks["W"]["B"] = TaskState{Running: true, Procs: 10}
	}
	sg := decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}}
	sendSuggestions(r, 10*time.Second, sg)
	sendSuggestions(r, 30*time.Second, sg) // inside settle: discarded
	if err := r.s.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(r.exec.plans) != 1 {
		t.Fatalf("plans = %d, want 1 (second suggestion settled away)", len(r.exec.plans))
	}
	if r.eng.Discarded() != 1 {
		t.Fatalf("discarded = %d, want 1", r.eng.Discarded())
	}
}

func TestEngineGatherCombinesBatches(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Second, SettleDelay: time.Minute, GatherWindow: 5 * time.Second})
	sgB := decision.Suggestion{Workflow: "W", PolicyID: "P1", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}}
	sgA := decision.Suggestion{Workflow: "W", PolicyID: "P2", Action: "ADDCPU", AssessTask: "A", ActOnTasks: []string{"A"},
		Params: map[string]string{"adjust-by": "5"}}
	sendSuggestions(r, 10*time.Second, sgB)
	sendSuggestions(r, 12*time.Second, sgA) // lands inside the gather window
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(r.exec.plans) != 1 {
		t.Fatalf("plans = %d, want 1 combined plan", len(r.exec.plans))
	}
	plan := r.exec.plans[0]
	var startsB, resizesA bool
	for _, op := range plan.Ops {
		if op.Kind == OpStart && op.Task == "B" {
			startsB = true
		}
		if op.Kind == OpStart && op.Task == "A" && op.Procs == 15 {
			resizesA = true
		}
	}
	if !startsB || !resizesA {
		t.Fatalf("combined plan = %v", plan.Ops)
	}
}

func TestEnginePlansPerWorkflow(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Second, SettleDelay: time.Minute, GatherWindow: time.Second})
	sendSuggestions(r, 10*time.Second,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}},
		decision.Suggestion{Workflow: "V", PolicyID: "Q", Action: "STOP", AssessTask: "X", ActOnTasks: []string{"X"}},
	)
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(r.exec.plans) != 2 {
		t.Fatalf("plans = %d, want one per workflow", len(r.exec.plans))
	}
	if r.exec.plans[0].Workflow != "W" || r.exec.plans[1].Workflow != "V" {
		t.Fatalf("workflows = %s, %s", r.exec.plans[0].Workflow, r.exec.plans[1].Workflow)
	}
}

func TestEngineStaleSuggestionScreened(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Second, SettleDelay: time.Second, GatherWindow: time.Second})
	// A restarted at t=30s; a suggestion decided at t=10s about A is stale.
	r.view.tasks["W"]["A"] = TaskState{Running: true, Procs: 10, StartedAt: 30 * time.Second}
	stale := decision.Suggestion{
		Workflow: "W", PolicyID: "P", Action: "RESTART",
		AssessTask: "A", ActOnTasks: []string{"A"},
		DecidedAt: int64(10 * time.Second),
	}
	sendSuggestions(r, 40*time.Second, stale)
	if err := r.s.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(r.exec.plans) != 0 {
		t.Fatalf("stale suggestion produced plans: %v", r.exec.plans)
	}
}

func TestEngineSeededWaitingStartsOnPlanSurplus(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Second, SettleDelay: time.Minute, GatherWindow: time.Second})
	r.eng.EnqueueWaiting(WaitingTask{Workflow: "W", Task: "B", Procs: 8})
	if got := r.eng.Waiting("W"); len(got) != 1 {
		t.Fatalf("waiting = %v", got)
	}
	// Stopping A frees 10 cores; B (8) starts from the plan's surplus.
	sendSuggestions(r, 10*time.Second,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "STOP", AssessTask: "A", ActOnTasks: []string{"A"}})
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(r.exec.plans) != 1 {
		t.Fatalf("plans = %d", len(r.exec.plans))
	}
	var startsB bool
	for _, op := range r.exec.plans[0].Ops {
		if op.Kind == OpStart && op.Task == "B" && op.Procs == 8 {
			startsB = true
		}
	}
	if !startsB {
		t.Fatalf("plan = %v, want waiting B started", r.exec.plans[0].Ops)
	}
	if got := r.eng.Waiting("W"); len(got) != 0 {
		t.Fatalf("waiting after start = %v", got)
	}
}

func TestEngineRecordsResponseDecomposition(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Second, SettleDelay: time.Minute, GatherWindow: time.Second, PlanCost: 200 * time.Millisecond})
	r.exec.opDur = 3 * time.Second
	sendSuggestions(r, 10*time.Second,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}})
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	recs := r.eng.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	rec := recs[0]
	if got := rec.PlannedAt - rec.ReceivedAt; got != 200*time.Millisecond {
		t.Fatalf("plan time = %v, want 200ms", got)
	}
	if got := rec.ExecutedAt - rec.PlannedAt; got != 3*time.Second {
		t.Fatalf("actuation time = %v, want 3s (1 op)", got)
	}
	if rec.ResponseTime() != 3200*time.Millisecond {
		t.Fatalf("response = %v", rec.ResponseTime())
	}
}

func TestEngineDirectArbitrateAndStop(t *testing.T) {
	r := newEngineRig(t, DefaultConfig())
	var observed []Record
	r.eng.OnPlan(func(rec Record) { observed = append(observed, rec) })
	r.s.Spawn("driver", func(p *sim.Proc) {
		// Direct synchronous round, bypassing guards (test/tooling entry).
		recs := r.eng.Arbitrate(p, []decision.Suggestion{
			{Workflow: "W", PolicyID: "P", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}},
		})
		if len(recs) != 1 {
			t.Errorf("records = %d", len(recs))
		}
	})
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 1 || observed[0].Plan.Empty() {
		t.Fatalf("observed = %+v", observed)
	}
	if observed[0].ResponseTime() <= 0 {
		t.Fatal("response time must be positive")
	}
	r.eng.Stop()
	r.s.RunUntilIdle()
}

func TestOpAndKindStrings(t *testing.T) {
	op := Op{Kind: OpStart, Task: "T", Procs: 8, Victim: false, Dependent: true}
	if s := op.String(); s != "start(T, 8 procs, dep)" {
		t.Fatalf("op string = %q", s)
	}
	v := Op{Kind: OpStop, Task: "V", Victim: true}
	if s := v.String(); s != "stop(V, victim)" {
		t.Fatalf("victim string = %q", s)
	}
	if OpStop.String() != "stop" || OpStart.String() != "start" {
		t.Fatal("kind strings")
	}
}

func TestDefaultConfigMatchesPaperGuards(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.WarmupDelay != 2*time.Minute || cfg.SettleDelay != 2*time.Minute {
		t.Fatalf("guards = %+v, want the paper's 2-minute windows", cfg)
	}
	if cfg.GatherWindow != 5*time.Second {
		t.Fatalf("gather = %v", cfg.GatherWindow)
	}
}

func TestEmptyPlanRoundRecordedAndWaitingResolved(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Second, SettleDelay: time.Minute, GatherWindow: time.Second})
	// A stale T_waiting entry: the task is already running on its own.
	// BuildPlan resolves it even when the plan comes out empty, so the
	// queue update must not be skipped on empty rounds.
	r.eng.EnqueueWaiting(WaitingTask{Workflow: "W", Task: "A", Procs: 10})
	// START for a task that is already running is a no-op: empty plan.
	r.view.tasks["W"]["B"] = TaskState{Running: true, Procs: 10}
	sg := decision.Suggestion{ID: "W/P#1", Workflow: "W", PolicyID: "P", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}}
	sendSuggestions(r, 10*time.Second, sg)
	if err := r.s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(r.exec.plans) != 0 {
		t.Fatalf("plans executed = %d, want 0", len(r.exec.plans))
	}
	// The empty round is visible to accounting but not to Records(),
	// which lists executed rounds only.
	if len(r.eng.Records()) != 0 {
		t.Fatalf("records = %+v, want none (round was empty)", r.eng.Records())
	}
	if r.eng.EmptyRounds() != 1 {
		t.Fatalf("empty rounds = %d, want 1", r.eng.EmptyRounds())
	}
	er := r.eng.EmptyRecords()
	if len(er) != 1 || er[0].Workflow != "W" || er[0].PlannedAt == 0 || er[0].ExecutedAt != 0 {
		t.Fatalf("empty record = %+v", er)
	}
	if len(er[0].SuggestionIDs) != 1 || er[0].SuggestionIDs[0] != "W/P#1" {
		t.Fatalf("empty record suggestion IDs = %v", er[0].SuggestionIDs)
	}
	if w := r.eng.Waiting("W"); len(w) != 0 {
		t.Fatalf("waiting = %+v, want the stale entry resolved on the empty round", w)
	}
}

func TestEngineStampsTraceSpans(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: 30 * time.Second, SettleDelay: time.Minute, GatherWindow: time.Second})
	tr := trace.New()
	r.eng.SetTracer(tr)
	// Spans are minted by Decision; mirror that here for two suggestions.
	tr.Suggested("W/P#1", "W", "P", "START", "PACE", 0, 0, sim.Time(10*time.Second))
	tr.Suggested("W/P#2", "W", "P", "START", "PACE", 0, 0, sim.Time(40*time.Second))

	warm := decision.Suggestion{ID: "W/P#1", Workflow: "W", PolicyID: "P", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}}
	live := decision.Suggestion{ID: "W/P#2", Workflow: "W", PolicyID: "P", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}}
	sendSuggestions(r, 10*time.Second, warm) // inside warm-up: dropped
	sendSuggestions(r, 40*time.Second, live) // arbitrated and executed
	if err := r.s.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	dropped, ok := tr.Span("W/P#1")
	if !ok || dropped.Dropped != "warmup" {
		t.Fatalf("warm-up span = %+v, want dropped with reason warmup", dropped)
	}
	done, ok := tr.Span("W/P#2")
	if !ok || !done.Complete() {
		t.Fatalf("executed span = %+v, want complete", done)
	}
	if !done.Monotone() {
		t.Fatalf("executed span timestamps out of order: %+v", done)
	}
	if tr.Counter("arbiter.discarded_batches") != 1 || tr.Counter("arbiter.rounds") != 1 {
		t.Fatalf("counters = discarded %d rounds %d, want 1 and 1",
			tr.Counter("arbiter.discarded_batches"), tr.Counter("arbiter.rounds"))
	}
	recs := r.eng.Records()
	if len(recs) != 1 || len(recs[0].SuggestionIDs) != 1 || recs[0].SuggestionIDs[0] != "W/P#2" {
		t.Fatalf("records = %+v, want one round correlated to W/P#2", recs)
	}
}

// A mid-plan actuation failure after the stop applied must re-enqueue the
// unapplied START as a recovery entry, arm the failure cooldown, and
// restart the task from free capacity on the next round — not strand it
// (the gracefully stopped task exited 0, so no failure policy fires).
func TestEngineRequeuesUnappliedStartsAndRecoversNextRound(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Second, SettleDelay: 2 * time.Minute,
		FailureCooldown: 30 * time.Second, GatherWindow: time.Second})
	tr := trace.New()
	r.eng.SetTracer(tr)
	r.exec.failAfter = 1 // apply the stop, fail the start
	r.exec.apply = func(p Plan) {
		for i, op := range p.Ops {
			if r.exec.failAfter >= 0 && i >= r.exec.failAfter {
				break // unapplied ops must not mutate the view
			}
			st := r.view.tasks[p.Workflow][op.Task]
			st.Running = op.Kind == OpStart
			if op.Kind == OpStart {
				st.Procs = op.Procs
			}
			r.view.tasks[p.Workflow][op.Task] = st
		}
	}
	sendSuggestions(r, 10*time.Second,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "RESTART", AssessTask: "A", ActOnTasks: []string{"A"}})
	// Inside the failure cooldown: discarded without planning.
	sendSuggestions(r, 25*time.Second,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "STOP", AssessTask: "B", ActOnTasks: []string{"B"}})
	// Past the cooldown: actuation is healthy again, and a round that
	// contributes no operations of its own picks up the recovery entry.
	r.s.At(59*time.Second, func() { r.exec.failAfter = -1 })
	sendSuggestions(r, time.Minute,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "STOP", AssessTask: "B", ActOnTasks: []string{"B"}})
	if err := r.s.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}

	recs := r.eng.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %+v, want failed round + recovery round", recs)
	}
	if recs[0].Err == "" || recs[0].AppliedOps != 1 || recs[0].AbortedOps != 1 {
		t.Fatalf("failed round = %+v, want 1 applied (stop), 1 aborted (start)", recs[0])
	}
	if recs[1].Err != "" || recs[1].AppliedOps != 1 || recs[1].AbortedOps != 0 {
		t.Fatalf("recovery round = %+v", recs[1])
	}
	ops := r.exec.plans[1].Ops
	if len(ops) != 1 || ops[0].Kind != OpStart || ops[0].Task != "A" || ops[0].Procs != 10 {
		t.Fatalf("recovery plan = %v, want A restarted at its old size", ops)
	}
	if st := r.view.tasks["W"]["A"]; !st.Running {
		t.Fatal("A still stranded after the recovery round")
	}
	if w := r.eng.Waiting("W"); len(w) != 0 {
		t.Fatalf("waiting = %+v, want recovery entry consumed", w)
	}
	if r.eng.Discarded() != 1 {
		t.Fatalf("discarded = %d, want 1 (the in-cooldown batch)", r.eng.Discarded())
	}
	if got := tr.Counter("arbiter.requeued_tasks"); got != 1 {
		t.Fatalf("arbiter.requeued_tasks = %d, want 1", got)
	}
	if got := tr.Counter("arbiter.failed_rounds"); got != 1 {
		t.Fatalf("arbiter.failed_rounds = %d, want 1", got)
	}
}

// Requeueing must not duplicate an entry for a task already queued.
func TestEngineRequeueDedupesWaiting(t *testing.T) {
	r := newEngineRig(t, Config{WarmupDelay: time.Second, SettleDelay: time.Minute,
		FailureCooldown: 10 * time.Second, GatherWindow: time.Second})
	r.exec.failAfter = 0 // every op fails
	sendSuggestions(r, 10*time.Second,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}})
	sendSuggestions(r, 30*time.Second,
		decision.Suggestion{Workflow: "W", PolicyID: "P", Action: "START", AssessTask: "B", ActOnTasks: []string{"B"}})
	if err := r.s.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if w := r.eng.Waiting("W"); len(w) != 1 || w[0].Task != "B" || !w[0].Recovery {
		t.Fatalf("waiting = %+v, want exactly one recovery entry for B", w)
	}
}
