package arbiter

import (
	"fmt"
	"testing"

	"dyflow/internal/core/decision"
	"dyflow/internal/core/spec"
)

// BenchmarkBuildPlan measures Algorithm 1's planning cost on a workflow
// with many tasks and simultaneous suggestions — the "time spent
// formulating the plan is low" claim of §4.6.
func BenchmarkBuildPlan(b *testing.B) {
	for _, n := range []int{5, 20, 100} {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			rules := &spec.WorkflowRules{
				Workflow:         "W",
				TaskPriorities:   map[string]int{},
				PolicyPriorities: map[string]int{},
			}
			tasks := make(map[string]TaskState, n)
			var sgs []decision.Suggestion
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("task%03d", i)
				rules.TaskPriorities[name] = i
				tasks[name] = TaskState{Running: true, Procs: 20}
				if i%2 == 1 {
					sgs = append(sgs, decision.Suggestion{
						Workflow: "W", PolicyID: "INC", Action: "ADDCPU",
						AssessTask: name, ActOnTasks: []string{name},
						Params: map[string]string{"adjust-by": "10"},
					})
				}
				if i > 0 && i%3 == 0 {
					rules.Deps = append(rules.Deps, spec.TaskDep{
						Task: name, Parent: fmt.Sprintf("task%03d", i-1), Type: spec.DepTight,
					})
				}
			}
			in := PlanInput{
				Workflow:    "W",
				Suggestions: sgs,
				Tasks:       tasks,
				FreeCores:   n * 5,
				Rules:       rules,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, _ := BuildPlan(in)
				if plan.Empty() {
					b.Fatal("plan unexpectedly empty")
				}
			}
		})
	}
}
