package core

import (
	"testing"
	"time"

	"dyflow/internal/cluster"
	"dyflow/internal/core/arbiter"
	"dyflow/internal/core/spec"
	"dyflow/internal/fsim"
	"dyflow/internal/msg"
	"dyflow/internal/resmgr"
	"dyflow/internal/sim"
	"dyflow/internal/stream"
	"dyflow/internal/task"
	"dyflow/internal/wms"
)

type world struct {
	s   *sim.Sim
	c   *cluster.Cluster
	rm  *resmgr.Manager
	env *task.Env
	sv  *wms.Savanna
}

func newWorld(t *testing.T, nodes int) *world {
	t.Helper()
	s := sim.New(1)
	c := cluster.Deepthought2(s, nodes)
	rm := resmgr.New(c)
	if _, err := rm.Allocate(nodes); err != nil {
		t.Fatal(err)
	}
	env := &task.Env{Sim: s, FS: fsim.New(s), Streams: stream.NewRegistry(s)}
	return &world{s: s, c: c, rm: rm, env: env, sv: wms.New(env, rm)}
}

// TestEndToEndPaceAdaptation drives the complete loop: a coupled workflow
// whose analysis is under-provisioned, a PACE sensor over the TAU stream, a
// window-averaged ADDCPU policy, arbitration with warm-up guard, and
// actuation restarting the analysis with more processes.
func TestEndToEndPaceAdaptation(t *testing.T) {
	w := newWorld(t, 2)
	// Sim: 10 procs, 1s/step for 2000 steps. Ana: 2 procs, 40s work ->
	// 20s/step; the 1-deep coupling buffer throttles Sim to Ana's pace.
	w.sv.Compose(&wms.WorkflowSpec{
		ID: "WF",
		Tasks: []wms.TaskConfig{
			{
				Spec: task.Spec{
					Name: "Sim", Workflow: "WF",
					Cost: task.Cost{Work: 10 * time.Second}, TotalSteps: 2000,
					ProducesTo: "wf.out",
				},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
			{
				Spec: task.Spec{
					Name: "Ana", Workflow: "WF",
					Cost:         task.Cost{Work: 40 * time.Second},
					ConsumesFrom: "wf.out", ConsumeBuf: 1,
					Profile: true,
				},
				Procs: 2, ProcsPerNode: 1, AutoStart: true,
			},
		},
	})

	cfg, err := spec.CompileString(`
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Ana" workflowId="WF" info-source="tau.Ana">
        <use-sensor sensor-id="PACE" info="looptime"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="INC_ON_PACE">
        <eval operation="GT" threshold="10"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action>ADDCPU</action>
        <history window="3" operation="AVG"/>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="WF">
      <apply-policy policyId="INC_ON_PACE" assess-task="Ana">
        <act-on-tasks>Ana</act-on-tasks>
        <action-params><param key="adjust-by" value="6"/></action-params>
      </apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="WF">
        <task-priorities>
          <task-priority name="Sim" priority="0"/>
          <task-priority name="Ana" priority="1"/>
        </task-priorities>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>`)
	if err != nil {
		t.Fatal(err)
	}

	o := New(w.env, w.sv, cfg, Options{
		Arbiter: arbiter.Config{
			WarmupDelay: 60 * time.Second,
			SettleDelay: 60 * time.Second,
			PlanCost:    100 * time.Millisecond,
		},
	})
	o.Start()
	w.s.Spawn("driver", func(p *sim.Proc) {
		if err := w.sv.Launch(p, "WF"); err != nil {
			t.Errorf("launch: %v", err)
		}
	})
	if err := w.s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}

	recs := o.Arbiter.Records()
	if len(recs) == 0 {
		t.Fatal("no arbitration rounds happened")
	}
	first := recs[0]
	if first.ReceivedAt < 60*time.Second {
		t.Fatalf("first plan at %v, inside the warm-up window", first.ReceivedAt)
	}
	var anaStart *arbiter.Op
	for i, op := range first.Plan.Ops {
		if op.Kind == arbiter.OpStart && op.Task == "Ana" {
			anaStart = &first.Plan.Ops[i]
		}
	}
	if anaStart == nil {
		t.Fatalf("first plan %v lacks the Ana resize", first.Plan.Ops)
	}
	if anaStart.Procs != 8 {
		t.Fatalf("Ana resized to %d procs, want 8 (2+6)", anaStart.Procs)
	}
	// The new incarnation actually runs with 8 procs.
	inst := w.sv.Instance("WF", "Ana")
	if got := inst.Placement.Procs(); got < 8 {
		t.Fatalf("Ana live procs = %d, want >= 8", got)
	}
	if inst.Incarnation < 1 {
		t.Fatal("Ana was never restarted")
	}
	// The response decomposition is recorded.
	if first.ExecutedAt <= first.PlannedAt || first.PlannedAt <= first.ReceivedAt {
		t.Fatalf("record times inconsistent: %+v", first)
	}
	// Actuation time is dominated by the graceful stop (Ana mid-step).
	if o.Executor.StopShare() < 0.5 {
		t.Fatalf("stop share = %v, want graceful termination to dominate", o.Executor.StopShare())
	}
	o.Stop()
}

// TestEndToEndFailureRestart drives the ERRORSTATUS path: a crashed task's
// exit code crosses 128, RESTART_ON_FAILURE fires, and arbitration restarts
// it excluding the dead node.
func TestEndToEndFailureRestart(t *testing.T) {
	w := newWorld(t, 3) // 1 spare node beyond the task's 2
	w.sv.Compose(&wms.WorkflowSpec{
		ID: "MD",
		Tasks: []wms.TaskConfig{
			{
				Spec: task.Spec{
					Name: "LAMMPS", Workflow: "MD",
					Cost: task.Cost{Work: 200 * time.Second}, TotalSteps: 1000,
					CheckpointEvery: 4, CheckpointKey: "ckpt/lammps",
					ResumeFromCheckpoint: true,
				},
				Procs: 20, ProcsPerNode: 10, AutoStart: true,
			},
		},
	})
	cfg, err := spec.CompileString(`
<dyflow>
  <monitor>
    <sensors>
      <sensor id="STATUS" type="ERRORSTATUS">
        <group-by><group granularity="task" reduction-operation="FIRST"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="LAMMPS" workflowId="MD">
        <use-sensor sensor-id="STATUS" info="exitcode"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="RESTART_ON_FAILURE">
        <eval operation="GT" threshold="128"/>
        <sensors-to-use><use-sensor id="STATUS" granularity="task"/></sensors-to-use>
        <action>RESTART</action>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="MD">
      <apply-policy policyId="RESTART_ON_FAILURE" assess-task="LAMMPS">
        <act-on-tasks>LAMMPS</act-on-tasks>
      </apply-policy>
    </apply-on>
  </decision>
</dyflow>`)
	if err != nil {
		t.Fatal(err)
	}
	o := New(w.env, w.sv, cfg, Options{
		Arbiter: arbiter.Config{
			WarmupDelay: 30 * time.Second,
			SettleDelay: 2 * time.Minute,
			PlanCost:    100 * time.Millisecond,
		},
	})
	o.Start()
	w.s.Spawn("driver", func(p *sim.Proc) { w.sv.Launch(p, "MD") })
	w.c.FailNodeAt(5*time.Minute, "node000")

	if err := w.s.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	recs := o.Arbiter.Records()
	if len(recs) == 0 {
		t.Fatal("no recovery plan executed")
	}
	rec := recs[0]
	var restart *arbiter.Op
	for i, op := range rec.Plan.Ops {
		if op.Kind == arbiter.OpStart && op.Task == "LAMMPS" {
			restart = &rec.Plan.Ops[i]
		}
	}
	if restart == nil {
		t.Fatalf("plan %v lacks LAMMPS restart", rec.Plan.Ops)
	}
	if restart.Procs != 20 {
		t.Fatalf("restart procs = %d, want 20", restart.Procs)
	}
	// The restarted incarnation avoids the failed node.
	inst := w.sv.Instance("MD", "LAMMPS")
	if inst.Placement["node000"] != 0 {
		t.Fatalf("restart placed procs on the failed node: %v", inst.Placement)
	}
	if !inst.Alive() && inst.State() != task.Completed {
		t.Fatalf("LAMMPS state = %v", inst.State())
	}
	// Recovery is fast: the restart plan executes in well under a minute
	// (the dead task has nothing to drain).
	if rec.ResponseTime() > 10*time.Second {
		t.Fatalf("recovery response = %v, want fast", rec.ResponseTime())
	}
	// It resumed from a checkpoint, not step 0.
	if inst.Alive() && inst.GlobalStep() > 0 && inst.StepsDone() >= inst.GlobalStep() {
		t.Fatalf("no checkpoint resume: steps=%d global=%d", inst.StepsDone(), inst.GlobalStep())
	}
	o.Stop()
}

// TestMonitorClientSharding: the monitor targets shard across multiple
// clients (the paper's "flexibility to launch multiple clients ... to
// address requisite scaling needs") and the pipeline still adapts.
func TestMonitorClientSharding(t *testing.T) {
	w := newWorld(t, 2)
	w.sv.Compose(&wms.WorkflowSpec{
		ID: "WF",
		Tasks: []wms.TaskConfig{
			{
				Spec: task.Spec{
					Name: "Sim", Workflow: "WF",
					Cost: task.Cost{Work: 10 * time.Second}, TotalSteps: 2000,
					ProducesTo: "wf.out",
				},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
			{
				Spec: task.Spec{
					Name: "Ana", Workflow: "WF",
					Cost:         task.Cost{Work: 40 * time.Second},
					ConsumesFrom: "wf.out", ConsumeBuf: 1,
					Profile: true,
				},
				Procs: 2, ProcsPerNode: 1, AutoStart: true,
			},
			{
				Spec: task.Spec{
					Name: "Ana2", Workflow: "WF",
					Cost:         task.Cost{Work: 8 * time.Second},
					ConsumesFrom: "wf.out", ConsumeBuf: 1,
					Profile: true,
				},
				Procs: 4, ProcsPerNode: 2, AutoStart: true,
			},
		},
	})
	cfg, err := spec.CompileString(`
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Ana" workflowId="WF" info-source="tau.Ana">
        <use-sensor sensor-id="PACE" info="looptime"/>
      </monitor-task>
      <monitor-task name="Ana2" workflowId="WF" info-source="tau.Ana2">
        <use-sensor sensor-id="PACE" info="looptime"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="INC">
        <eval operation="GT" threshold="10"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action>ADDCPU</action>
        <history window="3" operation="AVG"/>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="WF">
      <apply-policy policyId="INC" assess-task="Ana">
        <act-on-tasks>Ana</act-on-tasks>
        <action-params><param key="adjust-by" value="6"/></action-params>
      </apply-policy>
      <apply-policy policyId="INC" assess-task="Ana2">
        <act-on-tasks>Ana2</act-on-tasks>
        <action-params><param key="adjust-by" value="6"/></action-params>
      </apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="WF">
        <task-priorities>
          <task-priority name="Sim" priority="0"/>
          <task-priority name="Ana" priority="1"/>
          <task-priority name="Ana2" priority="2"/>
        </task-priorities>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>`)
	if err != nil {
		t.Fatal(err)
	}
	o := New(w.env, w.sv, cfg, Options{
		MonitorClients: 3, // more clients than targets: one stays idle
		Arbiter: arbiter.Config{
			WarmupDelay: 30 * time.Second, SettleDelay: 30 * time.Second,
			PlanCost: 100 * time.Millisecond, GatherWindow: 5 * time.Second,
		},
	})
	if len(o.Clients) != 3 {
		t.Fatalf("clients = %d", len(o.Clients))
	}
	o.Start()
	w.s.Spawn("driver", func(p *sim.Proc) { w.sv.Launch(p, "WF") })
	if err := w.s.Run(8 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Both shards shipped updates.
	if o.Clients[0].Sent() == 0 || o.Clients[1].Sent() == 0 {
		t.Fatalf("shard sends = %d, %d", o.Clients[0].Sent(), o.Clients[1].Sent())
	}
	if o.Clients[2].Sent() != 0 {
		t.Fatalf("idle client sent %d", o.Clients[2].Sent())
	}
	// The adaptation still happened for the bottleneck analysis.
	if got := w.sv.Instance("WF", "Ana").Placement.Procs(); got < 8 {
		t.Fatalf("Ana procs = %d, want grown", got)
	}
	o.Stop()
}

// TestMultiWorkflowOrchestration: one DYFLOW instance orchestrates two
// independent workflows — a pace-adapted coupled pipeline and a
// failure-restarted solo task — with per-workflow rules and plans.
func TestMultiWorkflowOrchestration(t *testing.T) {
	w := newWorld(t, 4)
	if err := w.sv.Compose(&wms.WorkflowSpec{
		ID: "PIPE",
		Tasks: []wms.TaskConfig{
			{
				Spec: task.Spec{Name: "Sim", Workflow: "PIPE",
					Cost: task.Cost{Work: 10 * time.Second}, TotalSteps: 2000, ProducesTo: "pipe.out"},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
			{
				Spec: task.Spec{Name: "Ana", Workflow: "PIPE",
					Cost: task.Cost{Work: 40 * time.Second}, ConsumesFrom: "pipe.out", ConsumeBuf: 1, Profile: true},
				Procs: 2, ProcsPerNode: 1, AutoStart: true,
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.sv.Compose(&wms.WorkflowSpec{
		ID: "SOLO",
		Tasks: []wms.TaskConfig{
			{
				Spec: task.Spec{Name: "Job", Workflow: "SOLO",
					Cost: task.Cost{Work: 20 * time.Second}, TotalSteps: 5000,
					CheckpointEvery: 10, CheckpointKey: "ckpt/job", ResumeFromCheckpoint: true},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.CompileString(`
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
      </sensor>
      <sensor id="STATUS" type="ERRORSTATUS">
        <group-by><group granularity="task" reduction-operation="FIRST"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Ana" workflowId="PIPE" info-source="tau.Ana">
        <use-sensor sensor-id="PACE" info="looptime"/>
      </monitor-task>
      <monitor-task name="Job" workflowId="SOLO">
        <use-sensor sensor-id="STATUS" info="exitcode"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="INC">
        <eval operation="GT" threshold="10"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action>ADDCPU</action>
        <history window="3" operation="AVG"/>
        <frequency seconds="5"/>
      </policy>
      <policy id="RESTART_ON_FAILURE">
        <eval operation="GT" threshold="128"/>
        <sensors-to-use><use-sensor id="STATUS" granularity="task"/></sensors-to-use>
        <action>RESTART</action>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="PIPE">
      <apply-policy policyId="INC" assess-task="Ana">
        <act-on-tasks>Ana</act-on-tasks>
        <action-params><param key="adjust-by" value="6"/></action-params>
      </apply-policy>
    </apply-on>
    <apply-on workflowId="SOLO">
      <apply-policy policyId="RESTART_ON_FAILURE" assess-task="Job">
        <act-on-tasks>Job</act-on-tasks>
      </apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="PIPE">
        <task-priorities>
          <task-priority name="Sim" priority="0"/>
          <task-priority name="Ana" priority="1"/>
        </task-priorities>
      </rule-for>
      <rule-for workflowId="SOLO">
        <task-priorities><task-priority name="Job" priority="0"/></task-priorities>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>`)
	if err != nil {
		t.Fatal(err)
	}
	o := New(w.env, w.sv, cfg, Options{Arbiter: arbiter.Config{
		WarmupDelay: 30 * time.Second, SettleDelay: 30 * time.Second,
		PlanCost: 100 * time.Millisecond, GatherWindow: 5 * time.Second,
	}})
	o.Start()
	w.s.Spawn("driver", func(p *sim.Proc) {
		w.sv.Launch(p, "PIPE")
		w.sv.Launch(p, "SOLO")
	})
	// SOLO's task crashes 3 minutes in (software fault, not a node loss).
	w.s.At(3*time.Minute, func() {
		w.sv.Instance("SOLO", "Job").Crash(139)
	})
	if err := w.s.Run(12 * time.Minute); err != nil {
		t.Fatal(err)
	}

	// PIPE's analysis grew; SOLO's job restarted — independent plans.
	byWF := map[string]int{}
	for _, rec := range o.Arbiter.Records() {
		byWF[rec.Workflow]++
	}
	if byWF["PIPE"] != 1 || byWF["SOLO"] != 1 {
		t.Fatalf("plans per workflow = %v, want 1 each", byWF)
	}
	if got := w.sv.Instance("PIPE", "Ana").Placement.Procs(); got != 8 {
		t.Fatalf("Ana procs = %d, want 8", got)
	}
	job := w.sv.Instance("SOLO", "Job")
	if job.Incarnation != 1 || !job.Alive() {
		t.Fatalf("Job incarnation = %d alive=%v, want restarted and running", job.Incarnation, job.Alive())
	}
	// The restart resumed from a checkpoint.
	if job.GlobalStep() <= job.StepsDone() {
		t.Fatalf("no checkpoint resume: global=%d steps=%d", job.GlobalStep(), job.StepsDone())
	}
	o.Stop()
}

// TestAdaptationUnderBusJitter: with randomized message latency (causing
// out-of-order arrivals that the Monitor server's sequence filter screens),
// the adaptation still lands correctly.
func TestAdaptationUnderBusJitter(t *testing.T) {
	w := newWorld(t, 2)
	w.sv.Compose(&wms.WorkflowSpec{
		ID: "WF",
		Tasks: []wms.TaskConfig{
			{
				Spec: task.Spec{Name: "Sim", Workflow: "WF",
					Cost: task.Cost{Work: 10 * time.Second}, TotalSteps: 2000, ProducesTo: "wf.out"},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
			{
				Spec: task.Spec{Name: "Ana", Workflow: "WF",
					Cost: task.Cost{Work: 40 * time.Second}, ConsumesFrom: "wf.out", ConsumeBuf: 1, Profile: true},
				Procs: 2, ProcsPerNode: 1, AutoStart: true,
			},
		},
	})
	cfg, err := spec.CompileString(`
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Ana" workflowId="WF" info-source="tau.Ana">
        <use-sensor sensor-id="PACE" info="looptime"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="INC">
        <eval operation="GT" threshold="10"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action>ADDCPU</action>
        <history window="3" operation="AVG"/>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="WF">
      <apply-policy policyId="INC" assess-task="Ana">
        <act-on-tasks>Ana</act-on-tasks>
        <action-params><param key="adjust-by" value="6"/></action-params>
      </apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="WF">
        <task-priorities>
          <task-priority name="Sim" priority="0"/>
          <task-priority name="Ana" priority="1"/>
        </task-priorities>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>`)
	if err != nil {
		t.Fatal(err)
	}
	o := New(w.env, w.sv, cfg, Options{
		BusLatency: msg.UniformJitterLatency(w.s, 50*time.Millisecond, 2*time.Second),
		Arbiter: arbiter.Config{
			WarmupDelay: 30 * time.Second, SettleDelay: 30 * time.Second,
			PlanCost: 100 * time.Millisecond, GatherWindow: 5 * time.Second,
		},
	})
	o.Start()
	w.s.Spawn("driver", func(p *sim.Proc) { w.sv.Launch(p, "WF") })
	if err := w.s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Jitter caused at least some reordering, which the filter screened.
	if o.Server.Dropped() == 0 {
		t.Log("note: no out-of-order batches this seed (jitter may not have inverted any pair)")
	}
	if got := w.sv.Instance("WF", "Ana").Placement.Procs(); got < 8 {
		t.Fatalf("Ana procs = %d, want grown despite jitter", got)
	}
	o.Stop()
}
