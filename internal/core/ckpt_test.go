package core

import (
	"encoding/json"
	"testing"
	"time"

	"dyflow/internal/ckpt"
	"dyflow/internal/sim"
)

// runPace drives the pace-adaptation world to the horizon, killing the
// orchestrator at killAt (0 = never) and restoring a fresh instance from
// its checkpoint store in place. Returns the orchestrator that finished the
// run.
func runPace(t *testing.T, killAt, horizon time.Duration) *Orchestrator {
	t.Helper()
	w := newWorld(t, 2)
	composePaceWorkflow(t, w)
	o := newPaceOrchestrator(t, w, Options{})
	st, err := ckpt.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o.SetStore(st)
	o.Start()
	w.s.Spawn("driver", func(p *sim.Proc) {
		if err := w.sv.Launch(p, "WF"); err != nil {
			t.Errorf("launch: %v", err)
		}
	})

	if killAt > 0 {
		// Advance to the kill instant, stepping past it while the arbiter
		// is mid-round (its process stack isn't serializable).
		next := killAt
		for {
			if err := w.s.Run(next); err != nil {
				t.Fatal(err)
			}
			if !o.Arbiter.Busy() {
				break
			}
			next += time.Second
		}
		if err := o.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		o.Detach()
		o.Stop()
		o2 := newPaceOrchestrator(t, w, Options{})
		if err := Restore(o2, st); err != nil {
			t.Fatal(err)
		}
		o2.SetStore(st)
		o2.Start()
		o = o2
	}
	if err := w.s.Run(horizon); err != nil {
		t.Fatal(err)
	}
	o.Stop()
	return o
}

// An orchestrator killed mid-campaign and restored from its checkpoint must
// converge to the same plan sequence as an uninterrupted run with the same
// seed: the snapshot+journal captures everything decision-relevant.
func TestCheckpointRestoreDeterminism(t *testing.T) {
	const horizon = 10 * time.Minute
	base := runPace(t, 0, horizon)
	killed := runPace(t, 3*time.Minute, horizon)

	wantRecs, err := json.Marshal(base.Arbiter.Records())
	if err != nil {
		t.Fatal(err)
	}
	gotRecs, err := json.Marshal(killed.Arbiter.Records())
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Arbiter.Records()) == 0 {
		t.Fatal("base run produced no plans; the comparison is vacuous")
	}
	if string(wantRecs) != string(gotRecs) {
		t.Fatalf("plan records diverged after kill+restore:\nbase:   %s\nkilled: %s", wantRecs, gotRecs)
	}

	// The suggestion lifecycle converges too (spans restored from the
	// snapshot and continued live).
	wantSpans, _ := json.Marshal(base.Trace.State().Spans)
	gotSpans, _ := json.Marshal(killed.Trace.State().Spans)
	if string(wantSpans) != string(gotSpans) {
		t.Fatalf("trace spans diverged after kill+restore:\nbase:   %s\nkilled: %s", wantSpans, gotSpans)
	}
}

// The versioned snapshot blob itself must be deterministic: two snapshots
// of identically seeded runs at the same instant are byte-identical.
func TestSnapshotBytesDeterministic(t *testing.T) {
	take := func() []byte {
		w := newWorld(t, 2)
		composePaceWorkflow(t, w)
		o := newPaceOrchestrator(t, w, Options{})
		o.Start()
		w.s.Spawn("driver", func(p *sim.Proc) {
			if err := w.sv.Launch(p, "WF"); err != nil {
				t.Errorf("launch: %v", err)
			}
		})
		if err := w.s.Run(4 * time.Minute); err != nil {
			t.Fatal(err)
		}
		if o.Arbiter.Busy() {
			t.Skip("arbiter busy at snapshot instant; pick another instant")
		}
		blob, err := ckpt.Encode(SnapshotKind, o.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		o.Stop()
		return blob
	}
	a, b := take(), take()
	if string(a) != string(b) {
		t.Fatalf("snapshot bytes differ between identical runs (%d vs %d bytes)", len(a), len(b))
	}
}
