package spec

import (
	"strings"
	"testing"
)

// FuzzCompileString asserts the XML compiler never panics and never
// returns a config with dangling references, whatever the input (run with
// `go test -fuzz FuzzCompileString ./internal/core/spec`).
func FuzzCompileString(f *testing.F) {
	f.Add(paceXML)
	f.Add("<dyflow/>")
	f.Add("<dyflow><monitor><sensors><sensor id=\"A\" type=\"DB\"><group-by><group granularity=\"task\" reduction-operation=\"MAX\"/></group-by></sensor></sensors></monitor><decision><policies><policy id=\"P\"><eval operation=\"GT\" threshold=\"1\"/><sensors-to-use><use-sensor id=\"A\" granularity=\"task\"/></sensors-to-use><action>STOP</action></policy></policies><apply-on workflowId=\"W\"><apply-policy policyId=\"P\"><act-on-tasks>T</act-on-tasks></apply-policy></apply-on></decision></dyflow>")
	f.Add("<dyflow><monitor><sensors><sensor id='X' type='FILE'><join sensor-id='X' operation='DIV' granularity='workflow'/></sensor></sensors></monitor></dyflow>")
	f.Add(strings.Repeat("<dyflow>", 50))

	f.Fuzz(func(t *testing.T, xml string) {
		cfg, err := CompileString(xml)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		// Accepted configs must be internally consistent.
		for id, sd := range cfg.Sensors {
			if sd.ID != id {
				t.Fatalf("sensor id mismatch: %q vs %q", sd.ID, id)
			}
			if len(sd.Groups) == 0 {
				t.Fatalf("sensor %q accepted without groups", id)
			}
			if sd.Join != nil {
				if _, ok := cfg.Sensors[sd.Join.SensorID]; !ok {
					t.Fatalf("sensor %q joins unknown sensor %q", id, sd.Join.SensorID)
				}
			}
		}
		for _, b := range cfg.Bindings {
			if _, ok := cfg.Policies[b.PolicyID]; !ok {
				t.Fatalf("binding references unknown policy %q", b.PolicyID)
			}
			if len(b.ActOnTasks) == 0 {
				t.Fatalf("binding with empty act-on accepted")
			}
		}
		for _, pd := range cfg.Policies {
			if pd.Frequency <= 0 {
				t.Fatalf("policy %q accepted with non-positive frequency", pd.ID)
			}
			for _, ref := range pd.Sensors {
				sd, ok := cfg.Sensors[ref.SensorID]
				if !ok {
					t.Fatalf("policy %q references unknown sensor", pd.ID)
				}
				if !sd.HasGranularity(ref.Granularity) {
					t.Fatalf("policy %q accepted with undeclared granularity", pd.ID)
				}
			}
		}
	})
}
