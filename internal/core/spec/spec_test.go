package spec

import (
	"strings"
	"testing"
	"time"

	"dyflow/internal/stats"
)

// paceXML mirrors the paper's Figures 3-5 (Gray-Scott PACE orchestration).
const paceXML = `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <preprocess operation="MAX"/>
        <group-by>
          <group granularity="task" reduction-operation="MAX"/>
        </group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="Isosurface" workflowId="GS-WORKFLOW" info-source="tau.Isosurface">
        <use-sensor sensor-id="PACE" info="looptime">
          <parameter key="info-type" value="double"/>
        </use-sensor>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="INC_ON_PACE">
        <eval operation="GT" threshold="36"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action> ADDCPU </action>
        <history window="10" operation="AVG"/>
        <frequency seconds="5"/>
      </policy>
      <policy id="DEC_ON_PACE">
        <eval operation="LT" threshold="24"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action>RMCPU</action>
      </policy>
    </policies>
    <apply-on workflowId="GS-WORKFLOW">
      <apply-policy policyId="INC_ON_PACE" assess-task="Isosurface">
        <act-on-tasks> Isosurface </act-on-tasks>
        <action-params><param key="adjust-by" value="20"/></action-params>
      </apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="GS-WORKFLOW">
        <task-priorities>
          <task-priority name="GrayScott" priority="0"/>
          <task-priority name="Isosurface" priority="1"/>
        </task-priorities>
        <task-dependencies>
          <task-dep name="Rendering" type="TIGHT" parent="Isosurface"/>
        </task-dependencies>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>`

func TestCompilePaperExample(t *testing.T) {
	cfg, err := CompileString(paceXML)
	if err != nil {
		t.Fatal(err)
	}
	pace := cfg.Sensors["PACE"]
	if pace == nil {
		t.Fatal("PACE sensor missing")
	}
	if pace.Source != SourceTAUADIOS2 {
		t.Fatalf("source = %v", pace.Source)
	}
	if pace.Preprocess == nil || *pace.Preprocess != stats.OpMax {
		t.Fatalf("preprocess = %v", pace.Preprocess)
	}
	if len(pace.Groups) != 1 || pace.Groups[0].Granularity != GranTask || pace.Groups[0].Reduction != stats.OpMax {
		t.Fatalf("groups = %+v", pace.Groups)
	}

	if len(cfg.Targets) != 1 {
		t.Fatalf("targets = %+v", cfg.Targets)
	}
	tg := cfg.Targets[0]
	if tg.Task != "Isosurface" || tg.Workflow != "GS-WORKFLOW" || tg.InfoSource != "tau.Isosurface" {
		t.Fatalf("target = %+v", tg)
	}
	if tg.Sensors[0].Info != "looptime" || tg.Sensors[0].Params["info-type"] != "double" {
		t.Fatalf("sensor use = %+v", tg.Sensors[0])
	}

	inc := cfg.Policies["INC_ON_PACE"]
	if inc.Eval != OpGT || inc.Threshold != 36 {
		t.Fatalf("eval = %v %v", inc.Eval, inc.Threshold)
	}
	if inc.Action != ActionAddCPU {
		t.Fatalf("action = %v", inc.Action)
	}
	if inc.History == nil || inc.History.Window != 10 || inc.History.Op != stats.OpAvg {
		t.Fatalf("history = %+v", inc.History)
	}
	if inc.Frequency != 5*time.Second {
		t.Fatalf("frequency = %v", inc.Frequency)
	}
	dec := cfg.Policies["DEC_ON_PACE"]
	if dec.Frequency != DefaultFrequency {
		t.Fatalf("default frequency = %v", dec.Frequency)
	}
	if dec.History != nil {
		t.Fatal("DEC_ON_PACE has no history")
	}

	if len(cfg.Bindings) != 1 {
		t.Fatalf("bindings = %+v", cfg.Bindings)
	}
	b := cfg.Bindings[0]
	if b.AssessTask != "Isosurface" || len(b.ActOnTasks) != 1 || b.ActOnTasks[0] != "Isosurface" {
		t.Fatalf("binding = %+v", b)
	}
	if b.IntParam("adjust-by", 0) != 20 {
		t.Fatalf("adjust-by = %v", b.Params)
	}
	if b.IntParam("missing", 7) != 7 || b.Param("missing", "x") != "x" {
		t.Fatal("param defaults broken")
	}

	rules := cfg.RulesFor("GS-WORKFLOW")
	if rules.TaskPriority("GrayScott") != 0 || rules.TaskPriority("Isosurface") != 1 {
		t.Fatalf("task priorities = %+v", rules.TaskPriorities)
	}
	if rules.TaskPriority("FFT") != UnsetPriority {
		t.Fatal("unset task priority should be lowest")
	}
	deps := rules.Dependents("Isosurface", nil)
	if len(deps) != 1 || deps[0] != "Rendering" {
		t.Fatalf("dependents = %v", deps)
	}
	tight := DepTight
	if got := rules.Dependents("Isosurface", &tight); len(got) != 1 {
		t.Fatalf("tight dependents = %v", got)
	}
	loose := DepLoose
	if got := rules.Dependents("Isosurface", &loose); len(got) != 0 {
		t.Fatalf("loose dependents = %v", got)
	}
}

func TestCompileCollectsAllErrors(t *testing.T) {
	bad := `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="S1" type="NOPE">
        <group-by><group granularity="galaxy" reduction-operation="MAX"/></group-by>
      </sensor>
      <sensor id="S1" type="ADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="T" workflowId="W">
        <use-sensor sensor-id="UNKNOWN" info="x"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="P1">
        <eval operation="??" threshold="1"/>
        <sensors-to-use><use-sensor id="S1" granularity="workflow"/></sensors-to-use>
        <action>EXPLODE</action>
        <history window="-1" operation="AVG"/>
        <frequency seconds="0"/>
      </policy>
    </policies>
    <apply-on workflowId="W">
      <apply-policy policyId="NOPE"><act-on-tasks>T</act-on-tasks></apply-policy>
      <apply-policy policyId="P1"><act-on-tasks></act-on-tasks></apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="W">
        <task-dependencies><task-dep name="A" type="SIDEWAYS" parent="B"/></task-dependencies>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>`
	_, err := CompileString(bad)
	if err == nil {
		t.Fatal("expected errors")
	}
	msg := err.Error()
	for _, want := range []string{
		"unknown sensor source type",
		"unknown granularity",
		"duplicate sensor id",
		"unknown sensor \"UNKNOWN\"",
		"unknown comparison operation",
		"no \"workflow\" group",
		"unknown action",
		"window must be positive",
		"frequency must be positive",
		"unknown policy \"NOPE\"",
		"empty <act-on-tasks>",
		"unknown dependency type",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message missing %q:\n%s", want, msg)
		}
	}
}

func TestCompileMissingSections(t *testing.T) {
	_, err := CompileString(`<dyflow/>`)
	if err == nil {
		t.Fatal("empty document should fail")
	}
	if !strings.Contains(err.Error(), "<monitor>") || !strings.Contains(err.Error(), "<decision>") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseMalformedXML(t *testing.T) {
	if _, err := ParseString("<dyflow><monitor>"); err == nil {
		t.Fatal("malformed XML should fail")
	}
	if _, err := ParseString("<notdyflow/>"); err == nil {
		t.Fatal("wrong root element should fail")
	}
}

func TestCompareOps(t *testing.T) {
	cases := []struct {
		op   CompareOp
		v, t float64
		want bool
	}{
		{OpGT, 2, 1, true}, {OpGT, 1, 1, false},
		{OpLT, 0, 1, true}, {OpLT, 1, 1, false},
		{OpEQ, 374, 374, true}, {OpEQ, 373, 374, false},
		{OpGE, 1, 1, true}, {OpGE, 0.5, 1, false},
		{OpLE, 1, 1, true}, {OpLE, 1.5, 1, false},
		{OpNE, 2, 1, true}, {OpNE, 1, 1, false},
	}
	for _, c := range cases {
		if got := c.op.Compare(c.v, c.t); got != c.want {
			t.Errorf("%v.Compare(%v,%v) = %v", c.op, c.v, c.t, got)
		}
	}
}

func TestJoinOps(t *testing.T) {
	if JoinDiv.Apply(10, 4) != 2.5 {
		t.Error("DIV")
	}
	if JoinDiv.Apply(10, 0) != 0 {
		t.Error("DIV by zero should yield 0")
	}
	if JoinMul.Apply(3, 4) != 12 || JoinAdd.Apply(3, 4) != 7 || JoinSub.Apply(3, 4) != -1 {
		t.Error("MUL/ADD/SUB")
	}
}

func TestEnumRoundTrips(t *testing.T) {
	for _, st := range []SourceType{SourceTAUADIOS2, SourceADIOS2, SourceDiskScan, SourceFile, SourceErrorStatus, SourceDB} {
		got, err := ParseSourceType(st.String())
		if err != nil || got != st {
			t.Errorf("source %v: %v %v", st, got, err)
		}
	}
	for _, g := range []Granularity{GranTask, GranNodeTask, GranWorkflow, GranNodeWorkflow} {
		got, err := ParseGranularity(g.String())
		if err != nil || got != g {
			t.Errorf("granularity %v: %v %v", g, got, err)
		}
	}
	for _, a := range []Action{ActionAddCPU, ActionRmCPU, ActionStop, ActionStart, ActionRestart, ActionSwitch} {
		got, err := ParseAction(a.String())
		if err != nil || got != a {
			t.Errorf("action %v: %v %v", a, got, err)
		}
	}
	for _, d := range []DepType{DepTight, DepLoose} {
		got, err := ParseDepType(d.String())
		if err != nil || got != d {
			t.Errorf("dep %v: %v %v", d, got, err)
		}
	}
}

func TestJoinUnknownSensor(t *testing.T) {
	xmlDoc := `
<dyflow>
  <monitor>
    <sensors>
      <sensor id="A" type="ADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
        <join sensor-id="GHOST" operation="DIV"/>
      </sensor>
    </sensors>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="GT" threshold="1"/>
        <sensors-to-use><use-sensor id="A" granularity="task"/></sensors-to-use>
        <action>STOP</action>
      </policy>
    </policies>
    <apply-on workflowId="W"><apply-policy policyId="P"><act-on-tasks>T</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`
	_, err := CompileString(xmlDoc)
	if err == nil || !strings.Contains(err.Error(), "joins unknown sensor") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseFromReader(t *testing.T) {
	doc, err := Parse(strings.NewReader(paceXML))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Monitor == nil || len(doc.Monitor.Sensors) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Arbitration == nil || len(doc.Arbitration.Rules) != 1 {
		t.Fatalf("arbitration = %+v", doc.Arbitration)
	}
}

func TestJoinGranularityCompile(t *testing.T) {
	cfg, err := CompileString(`
<dyflow>
  <monitor>
    <sensors>
      <sensor id="FRONT" type="DISKSCAN">
        <group-by>
          <group granularity="task" reduction-operation="MAX"/>
          <group granularity="workflow" reduction-operation="MAX"/>
        </group-by>
      </sensor>
      <sensor id="LAG" type="DISKSCAN">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
        <join sensor-id="FRONT" granularity="workflow" operation="SUB"/>
      </sensor>
    </sensors>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="LT" threshold="0"/>
        <sensors-to-use><use-sensor id="LAG" granularity="task"/></sensors-to-use>
        <action>START</action>
      </policy>
    </policies>
    <apply-on workflowId="W"><apply-policy policyId="P"><act-on-tasks>T</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`)
	if err != nil {
		t.Fatal(err)
	}
	lag := cfg.Sensors["LAG"]
	if lag.Join == nil || lag.Join.Granularity == nil || *lag.Join.Granularity != GranWorkflow {
		t.Fatalf("join = %+v", lag.Join)
	}
	if lag.Join.Op != JoinSub {
		t.Fatalf("join op = %v", lag.Join.Op)
	}
	// An invalid join granularity is reported.
	_, err = CompileString(`
<dyflow>
  <monitor>
    <sensors>
      <sensor id="A" type="DISKSCAN">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
        <join sensor-id="A" operation="SUB" granularity="galaxy"/>
      </sensor>
    </sensors>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="LT" threshold="0"/>
        <sensors-to-use><use-sensor id="A" granularity="task"/></sensors-to-use>
        <action>START</action>
      </policy>
    </policies>
    <apply-on workflowId="W"><apply-policy policyId="P"><act-on-tasks>T</act-on-tasks></apply-policy></apply-on>
  </decision>
</dyflow>`)
	if err == nil || !strings.Contains(err.Error(), "unknown granularity") {
		t.Fatalf("err = %v", err)
	}
}

func TestActOnTasksListParsing(t *testing.T) {
	cfg, err := CompileString(`
<dyflow>
  <monitor>
    <sensors>
      <sensor id="S" type="DISKSCAN">
        <group-by><group granularity="workflow" reduction-operation="MAX"/></group-by>
      </sensor>
    </sensors>
  </monitor>
  <decision>
    <policies>
      <policy id="P"><eval operation="GT" threshold="1"/>
        <sensors-to-use><use-sensor id="S" granularity="workflow"/></sensors-to-use>
        <action>STOP</action>
      </policy>
    </policies>
    <apply-on workflowId="W">
      <apply-policy policyId="P">
        <act-on-tasks>
          Alpha, Beta
          Gamma
        </act-on-tasks>
      </apply-policy>
    </apply-on>
  </decision>
</dyflow>`)
	if err != nil {
		t.Fatal(err)
	}
	got := cfg.Bindings[0].ActOnTasks
	if len(got) != 3 || got[0] != "Alpha" || got[1] != "Beta" || got[2] != "Gamma" {
		t.Fatalf("act-on = %v", got)
	}
}
