// Package spec defines DYFLOW's XML user interface — the document format
// scientific end users write to program the Monitor, Decision, and
// Arbitration stages (paper §3, Figures 3, 4, 5, 7, 10) — together with the
// typed vocabulary (source types, granularities, actions, comparison
// operators) shared by the stage engines, validation of cross-references,
// and compilation into the resolved configuration the orchestrator runs.
package spec

import (
	"fmt"
	"strings"
)

// SourceType determines how a sensor's data of interest is generated and
// exchanged at runtime (paper §2.1 "Source type").
type SourceType int

const (
	// SourceTAUADIOS2 streams TAU profiler records over ADIOS2 (the PACE
	// sensor in Figure 3).
	SourceTAUADIOS2 SourceType = iota
	// SourceADIOS2 streams application data over ADIOS2 (the ERROR sensor
	// in Figure 7).
	SourceADIOS2
	// SourceDiskScan scans the filesystem with a glob pattern and reads a
	// variable from matching files (the NSTEPS sensor in Figure 7).
	SourceDiskScan
	// SourceFile reads a variable from a single file.
	SourceFile
	// SourceErrorStatus reads the scheduler-written exit-status file of a
	// task (the STATUS sensor in Figure 10).
	SourceErrorStatus
	// SourceDB polls the latest record for a key in the in-cluster
	// database service (the third source medium of §2.1).
	SourceDB
	// SourceDYFLOW reads the orchestrator's own metrics (sensor lag,
	// queue depth, stage counters) — the self-monitoring source that lets
	// policies react to orchestrator health. The sensor's info attribute
	// names the metric.
	SourceDYFLOW
)

var sourceNames = map[SourceType]string{
	SourceTAUADIOS2:   "TAUADIOS2",
	SourceADIOS2:      "ADIOS2",
	SourceDiskScan:    "DISKSCAN",
	SourceFile:        "FILE",
	SourceErrorStatus: "ERRORSTATUS",
	SourceDB:          "DB",
	SourceDYFLOW:      "DYFLOW",
}

// String returns the XML name.
func (s SourceType) String() string { return sourceNames[s] }

// ParseSourceType converts an XML source-type name.
func ParseSourceType(name string) (SourceType, error) {
	up := strings.ToUpper(strings.TrimSpace(name))
	for st, n := range sourceNames {
		if n == up {
			return st, nil
		}
	}
	return 0, fmt.Errorf("spec: unknown sensor source type %q", name)
}

// Granularity selects how the Monitor stage's group-by organizes collected
// data before reduction (paper §2.1 "Group-by and reduction").
type Granularity int

const (
	// GranTask groups data from all processes of one task.
	GranTask Granularity = iota
	// GranNodeTask groups data from processes of one task sharing a node.
	GranNodeTask
	// GranWorkflow groups data from all tasks of the workflow.
	GranWorkflow
	// GranNodeWorkflow groups data from all workflow processes sharing a
	// node.
	GranNodeWorkflow
)

var granNames = map[Granularity]string{
	GranTask:         "task",
	GranNodeTask:     "node-task",
	GranWorkflow:     "workflow",
	GranNodeWorkflow: "node-workflow",
}

// String returns the XML name.
func (g Granularity) String() string { return granNames[g] }

// ParseGranularity converts an XML granularity name.
func ParseGranularity(name string) (Granularity, error) {
	lo := strings.ToLower(strings.TrimSpace(name))
	for g, n := range granNames {
		if n == lo {
			return g, nil
		}
	}
	return 0, fmt.Errorf("spec: unknown granularity %q", name)
}

// Action is a high-level operation a policy suggests in response to an
// event of interest (paper §2.2 "Suggested action").
type Action int

const (
	// ActionAddCPU increases the CPUs (= processes) assigned to a task.
	ActionAddCPU Action = iota
	// ActionRmCPU decreases the CPUs assigned to a task.
	ActionRmCPU
	// ActionStop terminates a running task.
	ActionStop
	// ActionStart starts a task that is not running.
	ActionStart
	// ActionRestart stops and restarts the current task.
	ActionRestart
	// ActionSwitch stops a running task and starts a replacement task.
	ActionSwitch
)

var actionNames = map[Action]string{
	ActionAddCPU:  "ADDCPU",
	ActionRmCPU:   "RMCPU",
	ActionStop:    "STOP",
	ActionStart:   "START",
	ActionRestart: "RESTART",
	ActionSwitch:  "SWITCH",
}

// String returns the XML name.
func (a Action) String() string { return actionNames[a] }

// ParseAction converts an XML action name.
func ParseAction(name string) (Action, error) {
	up := strings.ToUpper(strings.TrimSpace(name))
	for a, n := range actionNames {
		if n == up {
			return a, nil
		}
	}
	return 0, fmt.Errorf("spec: unknown action %q", name)
}

// CompareOp is a policy evaluation condition's comparison operator.
type CompareOp int

const (
	// OpGT fires when the metric exceeds the threshold.
	OpGT CompareOp = iota
	// OpLT fires when the metric is below the threshold.
	OpLT
	// OpEQ fires when the metric equals the threshold.
	OpEQ
	// OpGE fires when the metric is at least the threshold.
	OpGE
	// OpLE fires when the metric is at most the threshold.
	OpLE
	// OpNE fires when the metric differs from the threshold.
	OpNE
)

var cmpNames = map[CompareOp]string{
	OpGT: "GT", OpLT: "LT", OpEQ: "EQ", OpGE: "GE", OpLE: "LE", OpNE: "NE",
}

// String returns the XML name.
func (op CompareOp) String() string { return cmpNames[op] }

// ParseCompareOp converts an XML comparison name.
func ParseCompareOp(name string) (CompareOp, error) {
	up := strings.ToUpper(strings.TrimSpace(name))
	for op, n := range cmpNames {
		if n == up {
			return op, nil
		}
	}
	return 0, fmt.Errorf("spec: unknown comparison operation %q", name)
}

// Compare applies the operator.
func (op CompareOp) Compare(value, threshold float64) bool {
	switch op {
	case OpGT:
		return value > threshold
	case OpLT:
		return value < threshold
	case OpEQ:
		return value == threshold
	case OpGE:
		return value >= threshold
	case OpLE:
		return value <= threshold
	case OpNE:
		return value != threshold
	default:
		return false
	}
}

// JoinOp combines two sensor outputs into a derived metric (paper §2.1
// "Join", e.g. IPC = instructions DIV cycles).
type JoinOp int

const (
	// JoinDiv divides this sensor's output by the joined sensor's.
	JoinDiv JoinOp = iota
	// JoinMul multiplies the two outputs.
	JoinMul
	// JoinAdd adds them.
	JoinAdd
	// JoinSub subtracts the joined output from this sensor's.
	JoinSub
)

var joinNames = map[JoinOp]string{
	JoinDiv: "DIV", JoinMul: "MUL", JoinAdd: "ADD", JoinSub: "SUB",
}

// String returns the XML name.
func (op JoinOp) String() string { return joinNames[op] }

// ParseJoinOp converts an XML join operation name.
func ParseJoinOp(name string) (JoinOp, error) {
	up := strings.ToUpper(strings.TrimSpace(name))
	for op, n := range joinNames {
		if n == up {
			return op, nil
		}
	}
	return 0, fmt.Errorf("spec: unknown join operation %q", name)
}

// Apply computes the joined value.
func (op JoinOp) Apply(a, b float64) float64 {
	switch op {
	case JoinDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case JoinMul:
		return a * b
	case JoinAdd:
		return a + b
	case JoinSub:
		return a - b
	default:
		return 0
	}
}

// DepType classifies a task inter-dependency (paper §2.3).
type DepType int

const (
	// DepTight means the dependent runs concurrently with its parent and
	// receives data via an in situ medium; restarting the parent restarts
	// the dependent.
	DepTight DepType = iota
	// DepLoose means the dependent runs uncoupled and exchanges data via
	// disk.
	DepLoose
)

var depNames = map[DepType]string{DepTight: "TIGHT", DepLoose: "LOOSE"}

// String returns the XML name.
func (d DepType) String() string { return depNames[d] }

// ParseDepType converts an XML dependency type name.
func ParseDepType(name string) (DepType, error) {
	up := strings.ToUpper(strings.TrimSpace(name))
	for d, n := range depNames {
		if n == up {
			return d, nil
		}
	}
	return 0, fmt.Errorf("spec: unknown dependency type %q", name)
}
