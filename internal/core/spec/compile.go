package spec

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dyflow/internal/stats"
)

// DefaultFrequency is the policy evaluation frequency used when a policy
// omits <frequency>.
const DefaultFrequency = 5 * time.Second

// GroupDef is one compiled granularity/reduction pair.
type GroupDef struct {
	Granularity Granularity
	Reduction   stats.Op
}

// JoinDef is a compiled sensor join.
type JoinDef struct {
	SensorID string
	Op       JoinOp
	// Granularity, when non-nil, joins against the other sensor's series
	// at this granularity instead of the metric's own.
	Granularity *Granularity
}

// SensorDef is a compiled sensor definition.
type SensorDef struct {
	ID         string
	Source     SourceType
	Preprocess *stats.Op // reduction over per-rank arrays, nil = none
	Groups     []GroupDef
	Join       *JoinDef
}

// HasGranularity reports whether the sensor produces a metric at g.
func (sd *SensorDef) HasGranularity(g Granularity) bool {
	for _, gr := range sd.Groups {
		if gr.Granularity == g {
			return true
		}
	}
	return false
}

// SensorUse configures a sensor for one monitored task.
type SensorUse struct {
	SensorID string
	Info     string // variable name to read (e.g. "looptime", "step")
	Params   map[string]string
}

// MonitorTarget binds sensors to one monitored workflow task.
type MonitorTarget struct {
	Workflow   string
	Task       string
	InfoSource string // stream name, file path, or glob pattern
	Sensors    []SensorUse
}

// SensorRef references a sensor output at a granularity from a policy.
type SensorRef struct {
	SensorID    string
	Granularity Granularity
}

// HistoryDef is a compiled policy history window.
type HistoryDef struct {
	Window int
	Op     stats.Op
}

// PolicyDef is a compiled policy definition.
type PolicyDef struct {
	ID        string
	Eval      CompareOp
	Threshold float64
	Sensors   []SensorRef
	Action    Action
	History   *HistoryDef
	Frequency time.Duration
}

// PolicyBinding applies a policy to a workflow task.
type PolicyBinding struct {
	Workflow   string
	PolicyID   string
	AssessTask string
	ActOnTasks []string
	Params     map[string]string
}

// Param returns a binding parameter with a default.
func (b *PolicyBinding) Param(key, def string) string {
	if v, ok := b.Params[key]; ok {
		return v
	}
	return def
}

// IntParam returns an integer binding parameter with a default.
func (b *PolicyBinding) IntParam(key string, def int) int {
	if v, ok := b.Params[key]; ok {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
			return n
		}
	}
	return def
}

// TaskDep is a compiled task dependency.
type TaskDep struct {
	Task   string
	Parent string
	Type   DepType
}

// WorkflowRules holds one workflow's arbitration rules.
type WorkflowRules struct {
	Workflow         string
	TaskPriorities   map[string]int // 0 = highest; missing = lowest
	PolicyPriorities map[string]int
	Deps             []TaskDep
}

// TaskPriority returns the task's priority, defaulting to the lowest
// (a large number) when unset.
func (r *WorkflowRules) TaskPriority(task string) int {
	if r == nil {
		return UnsetPriority
	}
	if p, ok := r.TaskPriorities[task]; ok {
		return p
	}
	return UnsetPriority
}

// PolicyPriority returns the policy's priority, defaulting to the lowest.
func (r *WorkflowRules) PolicyPriority(policy string) int {
	if r == nil {
		return UnsetPriority
	}
	if p, ok := r.PolicyPriorities[policy]; ok {
		return p
	}
	return UnsetPriority
}

// Dependents returns the tasks directly depending on parent with the given
// type filter (pass nil for any type).
func (r *WorkflowRules) Dependents(parent string, filter *DepType) []string {
	if r == nil {
		return nil
	}
	var out []string
	for _, d := range r.Deps {
		if d.Parent != parent {
			continue
		}
		if filter != nil && d.Type != *filter {
			continue
		}
		out = append(out, d.Task)
	}
	return out
}

// UnsetPriority is the effective priority of tasks/policies without an
// explicit rule (lower number = higher priority).
const UnsetPriority = 1 << 20

// Config is the compiled orchestration specification.
type Config struct {
	Sensors  map[string]*SensorDef
	Targets  []MonitorTarget
	Policies map[string]*PolicyDef
	Bindings []PolicyBinding
	Rules    map[string]*WorkflowRules
}

// RulesFor returns the rules for a workflow (nil if none declared).
func (c *Config) RulesFor(workflow string) *WorkflowRules { return c.Rules[workflow] }

// errorList accumulates validation problems so users see all of them at
// once.
type errorList []string

func (e *errorList) addf(format string, args ...any) { *e = append(*e, fmt.Sprintf(format, args...)) }

func (e errorList) err() error {
	if len(e) == 0 {
		return nil
	}
	return fmt.Errorf("spec: %d problem(s):\n  - %s", len(e), strings.Join(e, "\n  - "))
}

// Compile validates the document and resolves it into a Config. All
// problems are reported together.
func Compile(doc *Document) (*Config, error) {
	var errs errorList
	cfg := &Config{
		Sensors:  make(map[string]*SensorDef),
		Policies: make(map[string]*PolicyDef),
		Rules:    make(map[string]*WorkflowRules),
	}

	if doc.Monitor == nil {
		errs.addf("missing <monitor> section")
	} else {
		compileSensors(doc.Monitor, cfg, &errs)
		compileTargets(doc.Monitor, cfg, &errs)
	}
	if doc.Decision == nil {
		errs.addf("missing <decision> section")
	} else {
		compilePolicies(doc.Decision, cfg, &errs)
		compileBindings(doc.Decision, cfg, &errs)
	}
	if doc.Arbitration != nil {
		compileRules(doc.Arbitration, cfg, &errs)
	}
	if err := errs.err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// CompileString parses and compiles a document in one step.
func CompileString(s string) (*Config, error) {
	doc, err := ParseString(s)
	if err != nil {
		return nil, err
	}
	return Compile(doc)
}

func compileSensors(m *MonitorX, cfg *Config, errs *errorList) {
	for _, sx := range m.Sensors {
		if sx.ID == "" {
			errs.addf("sensor without id")
			continue
		}
		if _, dup := cfg.Sensors[sx.ID]; dup {
			errs.addf("duplicate sensor id %q", sx.ID)
			continue
		}
		sd := &SensorDef{ID: sx.ID}
		var err error
		if sd.Source, err = ParseSourceType(sx.Type); err != nil {
			errs.addf("sensor %q: %v", sx.ID, err)
		}
		if sx.Preprocess != nil {
			op, err := stats.ParseOp(sx.Preprocess.Operation)
			if err != nil {
				errs.addf("sensor %q preprocess: %v", sx.ID, err)
			} else {
				sd.Preprocess = &op
			}
		}
		if len(sx.Groups) == 0 {
			errs.addf("sensor %q: at least one <group> is required", sx.ID)
		}
		for _, gx := range sx.Groups {
			g, err := ParseGranularity(gx.Granularity)
			if err != nil {
				errs.addf("sensor %q: %v", sx.ID, err)
				continue
			}
			op, err := stats.ParseOp(gx.Reduction)
			if err != nil {
				errs.addf("sensor %q group %s: %v", sx.ID, gx.Granularity, err)
				continue
			}
			sd.Groups = append(sd.Groups, GroupDef{Granularity: g, Reduction: op})
		}
		if sx.Join != nil {
			op, err := ParseJoinOp(sx.Join.Operation)
			if err != nil {
				errs.addf("sensor %q join: %v", sx.ID, err)
			} else {
				jd := &JoinDef{SensorID: sx.Join.SensorID, Op: op}
				if sx.Join.Granularity != "" {
					g, err := ParseGranularity(sx.Join.Granularity)
					if err != nil {
						errs.addf("sensor %q join: %v", sx.ID, err)
					} else {
						jd.Granularity = &g
					}
				}
				sd.Join = jd
			}
		}
		cfg.Sensors[sx.ID] = sd
	}
	// Join targets must exist.
	for _, sd := range cfg.Sensors {
		if sd.Join != nil {
			if _, ok := cfg.Sensors[sd.Join.SensorID]; !ok {
				errs.addf("sensor %q joins unknown sensor %q", sd.ID, sd.Join.SensorID)
			}
		}
	}
}

func compileTargets(m *MonitorX, cfg *Config, errs *errorList) {
	for _, mt := range m.MonitorTasks {
		if mt.Name == "" || mt.WorkflowID == "" {
			errs.addf("monitor-task needs name and workflowId (got name=%q workflowId=%q)", mt.Name, mt.WorkflowID)
			continue
		}
		target := MonitorTarget{
			Workflow:   mt.WorkflowID,
			Task:       mt.Name,
			InfoSource: mt.InfoSource,
		}
		for _, us := range mt.UseSensors {
			sd, ok := cfg.Sensors[us.SensorID]
			if !ok {
				errs.addf("monitor-task %q uses unknown sensor %q", mt.Name, us.SensorID)
				continue
			}
			// A dyflow self-monitoring sensor reads the orchestrator metric
			// named by info; without it there is nothing to poll.
			if sd.Source == SourceDYFLOW && strings.TrimSpace(us.Info) == "" {
				errs.addf("monitor-task %q: dyflow-source sensor %q requires info naming an orchestrator metric", mt.Name, us.SensorID)
				continue
			}
			params := make(map[string]string, len(us.Params))
			for _, p := range us.Params {
				params[p.Key] = p.Value
			}
			target.Sensors = append(target.Sensors, SensorUse{
				SensorID: us.SensorID,
				Info:     us.Info,
				Params:   params,
			})
		}
		cfg.Targets = append(cfg.Targets, target)
	}
}

func compilePolicies(d *DecisionX, cfg *Config, errs *errorList) {
	for _, px := range d.Policies {
		if px.ID == "" {
			errs.addf("policy without id")
			continue
		}
		if _, dup := cfg.Policies[px.ID]; dup {
			errs.addf("duplicate policy id %q", px.ID)
			continue
		}
		pd := &PolicyDef{ID: px.ID, Frequency: DefaultFrequency}
		if px.Eval == nil {
			errs.addf("policy %q: missing <eval>", px.ID)
		} else {
			op, err := ParseCompareOp(px.Eval.Operation)
			if err != nil {
				errs.addf("policy %q: %v", px.ID, err)
			}
			pd.Eval = op
			pd.Threshold = px.Eval.Threshold
		}
		if len(px.Sensors) == 0 {
			errs.addf("policy %q: at least one <use-sensor> is required", px.ID)
		}
		for _, ur := range px.Sensors {
			g, err := ParseGranularity(ur.Granularity)
			if err != nil {
				errs.addf("policy %q: %v", px.ID, err)
				continue
			}
			sd, ok := cfg.Sensors[ur.ID]
			if !ok {
				errs.addf("policy %q uses unknown sensor %q", px.ID, ur.ID)
				continue
			}
			if !sd.HasGranularity(g) {
				errs.addf("policy %q: sensor %q has no %q group", px.ID, ur.ID, g)
				continue
			}
			pd.Sensors = append(pd.Sensors, SensorRef{SensorID: ur.ID, Granularity: g})
		}
		act, err := ParseAction(px.Action)
		if err != nil {
			errs.addf("policy %q: %v", px.ID, err)
		}
		pd.Action = act
		if px.History != nil {
			if px.History.Window <= 0 {
				errs.addf("policy %q: history window must be positive", px.ID)
			} else {
				op, err := stats.ParseOp(px.History.Operation)
				if err != nil {
					errs.addf("policy %q history: %v", px.ID, err)
				} else {
					pd.History = &HistoryDef{Window: px.History.Window, Op: op}
				}
			}
		}
		if px.Frequency != nil {
			if px.Frequency.Seconds <= 0 {
				errs.addf("policy %q: frequency must be positive", px.ID)
			} else {
				pd.Frequency = time.Duration(px.Frequency.Seconds * float64(time.Second))
			}
		}
		cfg.Policies[px.ID] = pd
	}
}

func compileBindings(d *DecisionX, cfg *Config, errs *errorList) {
	for _, ao := range d.ApplyOns {
		if ao.WorkflowID == "" {
			errs.addf("apply-on without workflowId")
			continue
		}
		for _, ap := range ao.Policies {
			if _, ok := cfg.Policies[ap.PolicyID]; !ok {
				errs.addf("apply-policy references unknown policy %q", ap.PolicyID)
				continue
			}
			b := PolicyBinding{
				Workflow:   ao.WorkflowID,
				PolicyID:   ap.PolicyID,
				AssessTask: strings.TrimSpace(ap.AssessTask),
				Params:     make(map[string]string, len(ap.Params)),
			}
			for _, tok := range strings.FieldsFunc(ap.ActOnTasks, func(r rune) bool {
				return r == ',' || r == ' ' || r == '\n' || r == '\t'
			}) {
				b.ActOnTasks = append(b.ActOnTasks, tok)
			}
			if len(b.ActOnTasks) == 0 {
				errs.addf("apply-policy %q: empty <act-on-tasks>", ap.PolicyID)
			}
			for _, p := range ap.Params {
				b.Params[p.Key] = p.Value
			}
			cfg.Bindings = append(cfg.Bindings, b)
		}
	}
}

func compileRules(a *ArbitrateX, cfg *Config, errs *errorList) {
	for _, rf := range a.Rules {
		if rf.WorkflowID == "" {
			errs.addf("rule-for without workflowId")
			continue
		}
		if _, dup := cfg.Rules[rf.WorkflowID]; dup {
			errs.addf("duplicate rule-for workflow %q", rf.WorkflowID)
			continue
		}
		r := &WorkflowRules{
			Workflow:         rf.WorkflowID,
			TaskPriorities:   make(map[string]int),
			PolicyPriorities: make(map[string]int),
		}
		for _, tp := range rf.TaskPriorities {
			r.TaskPriorities[tp.Name] = tp.Priority
		}
		for _, pp := range rf.PolicyPriorities {
			r.PolicyPriorities[pp.Name] = pp.Priority
		}
		for _, td := range rf.TaskDeps {
			dt, err := ParseDepType(td.Type)
			if err != nil {
				errs.addf("rule-for %q: %v", rf.WorkflowID, err)
				continue
			}
			if td.Name == "" || td.Parent == "" {
				errs.addf("rule-for %q: task-dep needs name and parent", rf.WorkflowID)
				continue
			}
			r.Deps = append(r.Deps, TaskDep{Task: td.Name, Parent: td.Parent, Type: dt})
		}
		cfg.Rules[rf.WorkflowID] = r
	}
}
