package spec

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// The raw XML document model. Element and attribute names follow the
// paper's figures; see testdata and the examples/ directory for complete
// documents.

// Document is the root <dyflow> element.
type Document struct {
	XMLName     xml.Name    `xml:"dyflow"`
	Monitor     *MonitorX   `xml:"monitor"`
	Decision    *DecisionX  `xml:"decision"`
	Arbitration *ArbitrateX `xml:"arbitration"`
}

// MonitorX is the <monitor> section: sensor definitions plus the tasks to
// monitor with them (Figure 3).
type MonitorX struct {
	Sensors      []SensorX      `xml:"sensors>sensor"`
	MonitorTasks []MonitorTaskX `xml:"monitor-tasks>monitor-task"`
}

// SensorX defines one sensor (paper §2.1).
type SensorX struct {
	ID         string       `xml:"id,attr"`
	Type       string       `xml:"type,attr"`
	Preprocess *PreprocessX `xml:"preprocess"`
	Groups     []GroupX     `xml:"group-by>group"`
	Join       *JoinX       `xml:"join"`
}

// PreprocessX distills sizeable per-process inputs (e.g. a vector per rank)
// into one value per update before metric formulation.
type PreprocessX struct {
	Operation string `xml:"operation,attr"`
}

// GroupX is one granularity/reduction pair of a sensor's group-by.
type GroupX struct {
	Granularity string `xml:"granularity,attr"`
	Reduction   string `xml:"reduction-operation,attr"`
}

// JoinX combines this sensor's output with another sensor's. The optional
// granularity attribute joins against the other sensor's series at a
// different granularity (e.g. a task-level metric joined with the
// workflow-level front, yielding "how far behind the workflow is this
// task").
type JoinX struct {
	SensorID    string `xml:"sensor-id,attr"`
	Operation   string `xml:"operation,attr"`
	Granularity string `xml:"granularity,attr"`
}

// MonitorTaskX binds sensors to one workflow task.
type MonitorTaskX struct {
	Name       string       `xml:"name,attr"`
	WorkflowID string       `xml:"workflowId,attr"`
	InfoSource string       `xml:"info-source,attr"`
	UseSensors []UseSensorX `xml:"use-sensor"`
}

// UseSensorX configures one sensor for the monitored task: the variable to
// read and free-form parameters.
type UseSensorX struct {
	SensorID string   `xml:"sensor-id,attr"`
	Info     string   `xml:"info,attr"`
	Params   []ParamX `xml:"parameter"`
}

// ParamX is a key/value parameter.
type ParamX struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

// DecisionX is the <decision> section: policies plus the workflows/tasks
// they assess (Figure 4).
type DecisionX struct {
	Policies []PolicyX  `xml:"policies>policy"`
	ApplyOns []ApplyOnX `xml:"apply-on"`
}

// PolicyX defines one policy (paper §2.2).
type PolicyX struct {
	ID        string      `xml:"id,attr"`
	Eval      *EvalX      `xml:"eval"`
	Sensors   []UseRefX   `xml:"sensors-to-use>use-sensor"`
	Action    string      `xml:"action"`
	History   *HistoryX   `xml:"history"`
	Frequency *FrequencyX `xml:"frequency"`
}

// EvalX is the evaluation condition.
type EvalX struct {
	Operation string  `xml:"operation,attr"`
	Threshold float64 `xml:"threshold,attr"`
}

// UseRefX references a sensor output at a granularity.
type UseRefX struct {
	ID          string `xml:"id,attr"`
	Granularity string `xml:"granularity,attr"`
}

// HistoryX keeps a sliding window of sensor outputs with a pre-analysis
// operation.
type HistoryX struct {
	Window    int    `xml:"window,attr"`
	Operation string `xml:"operation,attr"`
}

// FrequencyX sets how often the evaluation condition triggers.
type FrequencyX struct {
	Seconds float64 `xml:"seconds,attr"`
}

// ApplyOnX applies policies to one workflow.
type ApplyOnX struct {
	WorkflowID string         `xml:"workflowId,attr"`
	Policies   []ApplyPolicyX `xml:"apply-policy"`
}

// ApplyPolicyX binds a policy to the task it assesses and the tasks its
// action applies to.
type ApplyPolicyX struct {
	PolicyID   string   `xml:"policyId,attr"`
	AssessTask string   `xml:"assess-task,attr"`
	ActOnTasks string   `xml:"act-on-tasks"`
	Params     []ParamX `xml:"action-params>param"`
}

// ArbitrateX is the <arbitration> section: per-workflow rules (Figure 5).
type ArbitrateX struct {
	Rules []RuleForX `xml:"rules>rule-for"`
}

// RuleForX holds one workflow's priorities and dependencies.
type RuleForX struct {
	WorkflowID       string            `xml:"workflowId,attr"`
	TaskPriorities   []TaskPriorityX   `xml:"task-priorities>task-priority"`
	PolicyPriorities []PolicyPriorityX `xml:"policy-priorities>policy-priority"`
	TaskDeps         []TaskDepX        `xml:"task-dependencies>task-dep"`
}

// TaskPriorityX assigns a task's priority (0 = highest).
type TaskPriorityX struct {
	Name     string `xml:"name,attr"`
	Priority int    `xml:"priority,attr"`
}

// PolicyPriorityX assigns a policy's priority (0 = highest).
type PolicyPriorityX struct {
	Name     string `xml:"name,attr"`
	Priority int    `xml:"priority,attr"`
}

// TaskDepX declares a task dependency on a parent task.
type TaskDepX struct {
	Name   string `xml:"name,attr"`
	Type   string `xml:"type,attr"`
	Parent string `xml:"parent,attr"`
}

// Parse decodes a DYFLOW XML document.
func Parse(r io.Reader) (*Document, error) {
	var doc Document
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("spec: parse: %w", err)
	}
	return &doc, nil
}

// ParseString decodes a DYFLOW XML document from a string.
func ParseString(s string) (*Document, error) { return Parse(strings.NewReader(s)) }
