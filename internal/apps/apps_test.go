package apps

import (
	"testing"
	"time"

	"dyflow/internal/cluster"
	"dyflow/internal/fsim"
	"dyflow/internal/resmgr"
	"dyflow/internal/sim"
	"dyflow/internal/stream"
	"dyflow/internal/task"
	"dyflow/internal/wms"
)

func launchWorld(t *testing.T, m Machine, nodes int, wf *wms.WorkflowSpec) (*sim.Sim, *wms.Savanna) {
	t.Helper()
	s := sim.New(1)
	var c *cluster.Cluster
	if m == Summit {
		c = cluster.Summit(s, nodes)
	} else {
		c = cluster.Deepthought2(s, nodes)
	}
	rm := resmgr.New(c)
	if _, err := rm.Allocate(nodes); err != nil {
		t.Fatal(err)
	}
	env := &task.Env{Sim: s, FS: fsim.New(s), Streams: stream.NewRegistry(s)}
	sv := wms.New(env, rm)
	if err := sv.Compose(wf); err != nil {
		t.Fatal(err)
	}
	s.Spawn("driver", func(p *sim.Proc) {
		if err := sv.Launch(p, wf.ID); err != nil {
			t.Errorf("launch: %v", err)
		}
	})
	return s, sv
}

func TestXGCStepRatio(t *testing.T) {
	for _, m := range []Machine{Summit, Deepthought2} {
		cfg := XGCConfigFor(m)
		ratio := float64(cfg.XGC1Step) / float64(cfg.XGCaStep)
		if ratio < 2.4 || ratio > 2.6 {
			t.Errorf("%v: XGC1/XGCa step ratio = %.2f, want ~2.5 (paper)", m, ratio)
		}
	}
}

func TestXGCFillsNodesExactly(t *testing.T) {
	cfg := XGCConfigFor(Summit)
	if cfg.ProcsPerNode*cfg.CoresPerProc != 42 {
		t.Fatalf("XGC per-node footprint = %d, want all 42 Summit cores", cfg.ProcsPerNode*cfg.CoresPerProc)
	}
	dt2 := XGCConfigFor(Deepthought2)
	if dt2.ProcsPerNode*dt2.CoresPerProc != 20 {
		t.Fatalf("XGC DT2 per-node footprint = %d, want all 20 cores", dt2.ProcsPerNode*dt2.CoresPerProc)
	}
}

func TestXGCWorkflowRuns(t *testing.T) {
	cfg := XGCConfigFor(Summit)
	wf := XGCWorkflow(Summit)
	s, sv := launchWorld(t, Summit, cfg.Nodes, wf)
	if err := s.Run(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	inst := sv.Instance(XGCWorkflowID, "XGC1")
	if inst.State() != task.Completed || inst.StepsDone() != cfg.StepsPerRun {
		t.Fatalf("XGC1 = %v after %d steps", inst.State(), inst.StepsDone())
	}
	// One run of 100 steps at ~5s/step completes in ~8.5 min.
	if inst.EndedAt() < 8*time.Minute || inst.EndedAt() > 9*time.Minute {
		t.Fatalf("XGC1 run length = %v, want ~8.5 min", inst.EndedAt())
	}
	// XGCA is not auto-started.
	if sv.Instance(XGCWorkflowID, "XGCA") != nil {
		t.Fatal("XGCa must wait for a policy start")
	}
}

func TestGrayScottTable2PacksNodes(t *testing.T) {
	cfg := GrayScottConfigFor(Summit)
	perNode := cfg.GrayScott.ProcsPerNode + cfg.Isosurface.ProcsPerNode +
		cfg.Rendering.ProcsPerNode + cfg.FFT.ProcsPerNode + cfg.PDFCalc.ProcsPerNode
	if perNode != 42 {
		t.Fatalf("per-node total = %d, want 42 (Table 2 packs Summit nodes)", perNode)
	}
	dt2 := GrayScottConfigFor(Deepthought2)
	perNode = dt2.GrayScott.ProcsPerNode + dt2.Isosurface.ProcsPerNode +
		dt2.Rendering.ProcsPerNode + dt2.FFT.ProcsPerNode + dt2.PDFCalc.ProcsPerNode
	if perNode != 20 {
		t.Fatalf("DT2 per-node total = %d, want 20", perNode)
	}
}

func TestGrayScottIsosurfaceCalibration(t *testing.T) {
	// The Summit Isosurface cost must land the three operating points of
	// Figure 8: >36 s at 20 procs, >36 s at 40, inside [24, 36] at 60.
	wf := GrayScottWorkflow(Summit)
	iso := wf.TaskConfigByName("Isosurface")
	s := sim.New(1)
	at := func(procs int) float64 {
		c := iso.Spec.Cost
		c.Noise = 0
		return c.StepTime(s.Rand(), procs, 0).Seconds()
	}
	if v := at(20); v <= 36 {
		t.Fatalf("pace@20 = %.1f, want > 36", v)
	}
	if v := at(40); v <= 36 {
		t.Fatalf("pace@40 = %.1f, want > 36 (second adaptation must fire)", v)
	}
	if v := at(60); v < 24 || v > 36 {
		t.Fatalf("pace@60 = %.1f, want inside [24, 36]", v)
	}
}

func TestGrayScottDT2Calibration(t *testing.T) {
	wf := GrayScottWorkflow(Deepthought2)
	iso := wf.TaskConfigByName("Isosurface")
	s := sim.New(1)
	at := func(procs int) float64 {
		c := iso.Spec.Cost
		c.Noise = 0
		return c.StepTime(s.Rand(), procs, 0).Seconds()
	}
	if v := at(20); v <= 42 {
		t.Fatalf("pace@20 = %.1f, want > 42", v)
	}
	if v := at(60); v < 28 || v > 42 {
		t.Fatalf("pace@60 = %.1f, want inside [28, 42] (single adaptation)", v)
	}
}

func TestLAMMPSCheckpointHits412(t *testing.T) {
	// With the Summit step time and checkpoint interval, the failure at 10
	// minutes must leave the last checkpoint at step 412.
	cfg := LAMMPSConfigFor(Summit)
	startup := 2 * time.Second
	stepsByFailure := int((10*time.Minute - startup) / cfg.StepTime)
	lastCkpt := (stepsByFailure / LAMMPSCheckpointEvery) * LAMMPSCheckpointEvery
	if lastCkpt != 412 {
		t.Fatalf("last checkpoint before failure = %d, want 412", lastCkpt)
	}
}

func TestLAMMPSWorkflowRuns(t *testing.T) {
	cfg := LAMMPSConfigFor(Deepthought2)
	wf := LAMMPSWorkflow(Deepthought2)
	s, sv := launchWorld(t, Deepthought2, cfg.Nodes, wf)
	if err := s.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	md := sv.Instance(LAMMPSWorkflowID, "LAMMPS")
	if md.State() != task.Completed || md.StepsDone() != cfg.TotalSteps {
		t.Fatalf("LAMMPS = %v after %d steps", md.State(), md.StepsDone())
	}
	// Each analysis processed one record per stride.
	for _, name := range []string{"CNA_Calc", "RDF_Calc", "CS_Calc"} {
		ana := sv.Instance(LAMMPSWorkflowID, name)
		if ana.State() != task.Completed {
			t.Fatalf("%s = %v", name, ana.State())
		}
		if ana.StepsDone() != cfg.AnalysisSteps {
			t.Fatalf("%s steps = %d, want %d", name, ana.StepsDone(), cfg.AnalysisSteps)
		}
	}
}

func TestGrayScottWorkflowGatedBySlowestAnalysis(t *testing.T) {
	cfg := GrayScottConfigFor(Summit)
	wf := GrayScottWorkflow(Summit)
	s, sv := launchWorld(t, Summit, cfg.Nodes, wf)
	if err := s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	gs := sv.Instance(GrayScottWorkflowID, "GrayScott")
	// Gray-Scott alone computes ~10 s/step but Isosurface (~45 s) gates it
	// through backpressure: after 10 minutes it has done ~13 steps, far
	// fewer than the ~60 it would do standalone.
	if gs.StepsDone() > 20 {
		t.Fatalf("GrayScott did %d steps in 10 min; backpressure should gate it to ~13", gs.StepsDone())
	}
	if gs.StepsDone() < 8 {
		t.Fatalf("GrayScott did only %d steps; pipeline stalled", gs.StepsDone())
	}
}
