// Package apps provides calibrated simulation models of the scientific
// applications the paper evaluates DYFLOW with (§4.2):
//
//   - XGC1/XGCa: loosely coupled gyrokinetic particle-in-cell codes that
//     alternate runs of 100 timesteps, exchanging state via restart files
//     on disk (XGC1 runs ~2.5x slower than XGCa);
//   - Gray-Scott: a reaction-diffusion MiniApp tightly coupled in situ to
//     four analyses of very different cost profiles (Isosurface, Rendering,
//     FFT, PDF_Calc);
//   - LAMMPS: a molecular-dynamics simulation tightly coupled to three
//     analyses (CNA_Calc, RDF_Calc, CS_Calc) reading every 10th step.
//
// Each builder returns the Cheetah-style workflow composition for one of
// the two evaluation machines. Step-time parameters are calibrated so the
// runtime dynamics the paper reports — who bottlenecks whom, which
// adaptations fire, roughly how long responses take — reproduce in virtual
// time; absolute constants are documented inline.
package apps

import (
	"time"

	"dyflow/internal/task"
	"dyflow/internal/wms"
)

// Machine selects one of the paper's two evaluation clusters.
type Machine int

const (
	// Summit is the ORNL Summit preset (42 usable cores/node).
	Summit Machine = iota
	// Deepthought2 is the UMD Deepthought2 preset (20 cores/node).
	Deepthought2
)

// String returns the machine name.
func (m Machine) String() string {
	if m == Summit {
		return "Summit"
	}
	return "Deepthought2"
}

// Workflow IDs, matching the paper's XML examples.
const (
	XGCWorkflowID       = "FUSION-WORKFLOW"
	GrayScottWorkflowID = "GS-WORKFLOW"
	LAMMPSWorkflowID    = "MD-WORKFLOW"
)

// XGCProgressKey is the shared global-timestep counter both XGC codes
// advance (the alternation contract: XGCa picks up where XGC1 stopped).
const XGCProgressKey = "progress/fusion"

// XGCRestartScript is the user script run before (re)starting XGC1 to set
// its inputs from XGCa's last output (paper: restart-xgc1.sh, the reason
// XGC1's start response is seconds rather than sub-second).
const XGCRestartScript = "restart-xgc1.sh"

// XGCRestartScriptCost is the script's runtime.
const XGCRestartScriptCost = 3800 * time.Millisecond

// XGCConfig describes one machine's Table 1 run configuration.
type XGCConfig struct {
	Procs        int
	ProcsPerNode int
	Threads      int
	StepsPerRun  int
	Particles    int
	// XGC1Step / XGCaStep are the calibrated per-timestep durations at the
	// configured process count (XGC1 ~2.5x XGCa).
	XGC1Step time.Duration
	XGCaStep time.Duration
	// Nodes is the allocation size.
	Nodes int
	// CoresPerProc is each process's core footprint: ceil(threads / SMT
	// width). On Summit 10 threads over 4-way SMT cores round to 3 cores,
	// so 14 processes fill a 42-core node; only one XGC code fits the
	// allocation at a time and the other waits for its resources.
	CoresPerProc int
}

// XGCConfigFor returns Table 1's configuration for the machine. The paper
// prints Summit's numbers (192 processes at 14 per node, 10 threads, 100
// steps/run, 250k particles/process); the Deepthought2 column is sized to
// that machine's 20-core nodes.
func XGCConfigFor(m Machine) XGCConfig {
	if m == Summit {
		return XGCConfig{
			Procs: 192, ProcsPerNode: 14, Threads: 10,
			StepsPerRun: 100, Particles: 250000,
			XGC1Step: 5 * time.Second, XGCaStep: 2 * time.Second,
			Nodes: 14, CoresPerProc: 3,
		}
	}
	return XGCConfig{
		Procs: 100, ProcsPerNode: 10, Threads: 4,
		StepsPerRun: 100, Particles: 250000,
		XGC1Step: 20 * time.Second, XGCaStep: 8 * time.Second,
		Nodes: 10, CoresPerProc: 2,
	}
}

// XGCWorkflow composes the loosely coupled XGC1/XGCa alternation workflow.
// Both codes write an output file every global timestep (the NSTEPS
// DISKSCAN source) and share the global progress counter. XGCa's outputs
// also carry a synthetic error norm for the extension ERROR sensor (the
// paper's real error estimator is "ongoing research").
func XGCWorkflow(m Machine) *wms.WorkflowSpec {
	cfg := XGCConfigFor(m)
	mk := func(name string, step time.Duration, autoStart bool, script string) wms.TaskConfig {
		spec := task.Spec{
			Name:           name,
			Workflow:       XGCWorkflowID,
			ThreadsPerProc: cfg.Threads,
			Cost: task.Cost{
				Serial: step / 10,
				Work:   time.Duration(cfg.Procs) * (step - step/10),
				Noise:  0.02,
			},
			TotalSteps:    cfg.StepsPerRun,
			OutputEvery:   1,
			OutputPattern: "out/" + lower(name) + ".%05d.bp",
			ProgressKey:   XGCProgressKey,
			StartupDelay:  time.Second,
		}
		if name == "XGCA" {
			spec.OutputVars = func(globalStep int) map[string]float64 {
				// Synthetic error accumulation: grows with simulated time
				// since the last XGC1 (full-physics) segment.
				return map[string]float64{"errnorm": 0.002 * float64(globalStep%500)}
			}
		}
		return wms.TaskConfig{
			Spec:         spec,
			Procs:        cfg.Procs,
			ProcsPerNode: cfg.ProcsPerNode,
			CoresPerProc: cfg.CoresPerProc,
			AutoStart:    autoStart,
			StartScript:  script,
		}
	}
	return &wms.WorkflowSpec{
		ID: XGCWorkflowID,
		Tasks: []wms.TaskConfig{
			mk("XGC1", cfg.XGC1Step, true, XGCRestartScript),
			mk("XGCA", cfg.XGCaStep, false, ""),
		},
	}
}

func lower(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c >= 'A' && c <= 'Z' {
			out[i] = c + 'a' - 'A'
		}
	}
	return string(out)
}

// GSTaskConfig describes one Gray-Scott task's Table 2 shape.
type GSTaskConfig struct {
	Procs        int
	ProcsPerNode int
}

// GrayScottConfig is Table 2's initial (under-provisioned) configuration.
type GrayScottConfig struct {
	GrayScott  GSTaskConfig
	Isosurface GSTaskConfig
	Rendering  GSTaskConfig
	FFT        GSTaskConfig
	PDFCalc    GSTaskConfig
	TotalSteps int
	TimeLimit  time.Duration
	Nodes      int
}

// GrayScottConfigFor returns Table 2 for the machine. Summit matches the
// paper exactly (34+2+2+2+2 = 42 cores/node over 10 nodes). On
// Deepthought2 the paper's printed shapes (16+2+1+1+1 = 21) exceed the
// 20-core nodes unless SMT is used; we place Isosurface at 1 per node so
// every node carries exactly 20 processes — documented in DESIGN.md.
func GrayScottConfigFor(m Machine) GrayScottConfig {
	if m == Summit {
		return GrayScottConfig{
			GrayScott:  GSTaskConfig{340, 34},
			Isosurface: GSTaskConfig{20, 2},
			Rendering:  GSTaskConfig{20, 2},
			FFT:        GSTaskConfig{20, 2},
			PDFCalc:    GSTaskConfig{20, 2},
			TotalSteps: 50,
			TimeLimit:  30 * time.Minute,
			Nodes:      10,
		}
	}
	return GrayScottConfig{
		GrayScott:  GSTaskConfig{320, 16},
		Isosurface: GSTaskConfig{20, 1},
		Rendering:  GSTaskConfig{20, 1},
		FFT:        GSTaskConfig{20, 1},
		PDFCalc:    GSTaskConfig{20, 1},
		TotalSteps: 50,
		TimeLimit:  35 * time.Minute,
		Nodes:      20,
	}
}

// Gray-Scott stream names.
const (
	GSOutStream = "gs.out"  // simulation output consumed by the analyses
	GSIsoStream = "iso.out" // isosurfaces consumed by Rendering
)

// GrayScottWorkflow composes the tightly coupled Gray-Scott workflow.
// Calibration (Summit, per-timestep at initial sizes):
//
//   - Gray-Scott itself computes in ~10 s but is gated by its slowest
//     consumer through the 1-deep staging buffers;
//   - Isosurface is the bottleneck: ~45 s at 20 procs, ~37 s at 40, ~34 s
//     at 60 (serial 29 s + 320 s/procs) — so INC_ON_PACE's 36 s threshold
//     fires twice, exactly as in Figures 8/9, and the post-fix pace sits
//     inside the desired [24 s, 36 s] band;
//   - Rendering (~15 s), FFT (~30 s), PDF_Calc (~5 s) at 20 procs.
//
// All tasks are TAU-instrumented (Profile) — the PACE sensor reads their
// per-rank loop times.
func GrayScottWorkflow(m Machine) *wms.WorkflowSpec {
	cfg := GrayScottConfigFor(m)
	mk := func(name string, tc GSTaskConfig, serial, work time.Duration, consumes, produces string) wms.TaskConfig {
		return wms.TaskConfig{
			Spec: task.Spec{
				Name:         name,
				Workflow:     GrayScottWorkflowID,
				Cost:         task.Cost{Serial: serial, Work: work, Noise: 0.03},
				ConsumesFrom: consumes,
				ConsumeBuf:   1,
				ProducesTo:   produces,
				Profile:      true,
				StartupDelay: 2 * time.Second,
			},
			Procs:        tc.Procs,
			ProcsPerNode: tc.ProcsPerNode,
			AutoStart:    true,
		}
	}
	var gs, iso, rend, fft, pdf wms.TaskConfig
	if m == Summit {
		// Summit calibration: Isosurface 45 s at 20 procs, 37 s at 40,
		// 34.3 s at 60 — two INC_ON_PACE events against the 36 s ceiling.
		gs = mk("GrayScott", cfg.GrayScott, 2*time.Second, 2720*time.Second, "", GSOutStream)
		iso = mk("Isosurface", cfg.Isosurface, 29*time.Second, 320*time.Second, GSOutStream, GSIsoStream)
		rend = mk("Rendering", cfg.Rendering, time.Second, 280*time.Second, GSIsoStream, "")
		fft = mk("FFT", cfg.FFT, 5*time.Second, 500*time.Second, GSOutStream, "")
		pdf = mk("PDF_Calc", cfg.PDFCalc, time.Second, 80*time.Second, GSOutStream, "")
	} else {
		// Deepthought2 calibration: Isosurface 65 s at 20 procs, 41.7 s at
		// 60 — a single adaptation (adjust-by 40) against the 42 s
		// ceiling, absorbing both PDF_Calc's and FFT's cores.
		gs = mk("GrayScott", cfg.GrayScott, 2*time.Second, 4480*time.Second, "", GSOutStream)
		iso = mk("Isosurface", cfg.Isosurface, 30*time.Second, 700*time.Second, GSOutStream, GSIsoStream)
		rend = mk("Rendering", cfg.Rendering, 2*time.Second, 360*time.Second, GSIsoStream, "")
		fft = mk("FFT", cfg.FFT, 6*time.Second, 600*time.Second, GSOutStream, "")
		pdf = mk("PDF_Calc", cfg.PDFCalc, time.Second, 150*time.Second, GSOutStream, "")
	}
	gs.Spec.TotalSteps = cfg.TotalSteps
	return &wms.WorkflowSpec{
		ID:    GrayScottWorkflowID,
		Tasks: []wms.TaskConfig{gs, iso, rend, fft, pdf},
	}
}

// LAMMPSTaskConfig describes one LAMMPS workflow task's Table 3 shape.
type LAMMPSTaskConfig struct {
	Procs        int
	ProcsPerNode int
}

// LAMMPSConfig is Table 3's configuration.
type LAMMPSConfig struct {
	LAMMPS        LAMMPSTaskConfig
	CNACalc       LAMMPSTaskConfig
	RDFCalc       LAMMPSTaskConfig
	CSCalc        LAMMPSTaskConfig
	TotalAtoms    int
	TotalSteps    int
	AnalysisSteps int
	// Nodes includes the spare nodes the paper allocates for failure
	// recovery ("we allocated 2 additional nodes").
	Nodes      int
	SpareNodes int
	// StepTime is LAMMPS's calibrated per-timestep duration.
	StepTime time.Duration
}

// LAMMPSConfigFor returns Table 3 for the machine.
func LAMMPSConfigFor(m Machine) LAMMPSConfig {
	if m == Summit {
		return LAMMPSConfig{
			LAMMPS:        LAMMPSTaskConfig{1500, 30},
			CNACalc:       LAMMPSTaskConfig{200, 4},
			RDFCalc:       LAMMPSTaskConfig{200, 4},
			CSCalc:        LAMMPSTaskConfig{200, 4},
			TotalAtoms:    65536000,
			TotalSteps:    1000,
			AnalysisSteps: 100,
			Nodes:         52,
			SpareNodes:    2,
			StepTime:      1400 * time.Millisecond,
		}
	}
	return LAMMPSConfig{
		LAMMPS:        LAMMPSTaskConfig{100, 14},
		CNACalc:       LAMMPSTaskConfig{20, 2},
		RDFCalc:       LAMMPSTaskConfig{20, 2},
		CSCalc:        LAMMPSTaskConfig{20, 2},
		TotalAtoms:    8192000,
		TotalSteps:    1000,
		AnalysisSteps: 50,
		Nodes:         11,
		SpareNodes:    1,
		StepTime:      3 * time.Second,
	}
}

// LAMMPS stream and checkpoint names.
const (
	MDOutStream      = "md.out"
	LAMMPSCheckpoint = "ckpt/lammps"
	// LAMMPSCheckpointEvery is the checkpoint interval in steps. With the
	// 1.4 s Summit step time and the failure injected 10 minutes in, the
	// last checkpoint lands on step 412 — the resume step Figure 11 shows.
	LAMMPSCheckpointEvery = 103
)

// LAMMPSWorkflow composes the tightly coupled molecular-dynamics workflow:
// LAMMPS stages every 10th step to three analyses (common neighbor,
// radial distribution, central symmetry). LAMMPS checkpoints periodically
// and resumes from the last checkpoint after a restart.
func LAMMPSWorkflow(m Machine) *wms.WorkflowSpec {
	cfg := LAMMPSConfigFor(m)
	stride := cfg.TotalSteps / cfg.AnalysisSteps
	lammps := wms.TaskConfig{
		Spec: task.Spec{
			Name:     "LAMMPS",
			Workflow: LAMMPSWorkflowID,
			Cost: task.Cost{
				Serial: cfg.StepTime / 7,
				Work:   time.Duration(cfg.LAMMPS.Procs) * (cfg.StepTime - cfg.StepTime/7),
				Noise:  0.02,
			},
			TotalSteps:           cfg.TotalSteps,
			ProducesTo:           MDOutStream,
			ProduceEvery:         stride,
			CheckpointEvery:      LAMMPSCheckpointEvery,
			CheckpointKey:        LAMMPSCheckpoint,
			ResumeFromCheckpoint: true,
			Profile:              true,
			StartupDelay:         2 * time.Second,
		},
		Procs:        cfg.LAMMPS.Procs,
		ProcsPerNode: cfg.LAMMPS.ProcsPerNode,
		AutoStart:    true,
	}
	ana := func(name string, tc LAMMPSTaskConfig) wms.TaskConfig {
		// ~10 s of analysis per staged record at the configured size; the
		// stride gives the analyses ~14 s per record, so they keep up.
		return wms.TaskConfig{
			Spec: task.Spec{
				Name:         name,
				Workflow:     LAMMPSWorkflowID,
				Cost:         task.Cost{Serial: time.Second, Work: time.Duration(tc.Procs) * 9 * time.Second, Noise: 0.03},
				ConsumesFrom: MDOutStream,
				ConsumeBuf:   2,
				Profile:      true,
				StartupDelay: 2 * time.Second,
			},
			Procs:        tc.Procs,
			ProcsPerNode: tc.ProcsPerNode,
			AutoStart:    true,
		}
	}
	return &wms.WorkflowSpec{
		ID: LAMMPSWorkflowID,
		Tasks: []wms.TaskConfig{
			lammps,
			ana("CNA_Calc", cfg.CNACalc),
			ana("RDF_Calc", cfg.RDFCalc),
			ana("CS_Calc", cfg.CSCalc),
		},
	}
}
