package wms

import (
	"errors"
	"testing"
	"time"

	"dyflow/internal/cluster"
	"dyflow/internal/fsim"
	"dyflow/internal/resmgr"
	"dyflow/internal/sim"
	"dyflow/internal/stream"
	"dyflow/internal/task"
)

type bench struct {
	s   *sim.Sim
	c   *cluster.Cluster
	rm  *resmgr.Manager
	env *task.Env
	sv  *Savanna
}

func newBench(t *testing.T, nodes int) *bench {
	t.Helper()
	s := sim.New(1)
	c := cluster.Deepthought2(s, nodes)
	rm := resmgr.New(c)
	if _, err := rm.Allocate(nodes); err != nil {
		t.Fatal(err)
	}
	env := &task.Env{Sim: s, FS: fsim.New(s), Streams: stream.NewRegistry(s)}
	return &bench{s: s, c: c, rm: rm, env: env, sv: New(env, rm)}
}

func simpleWF(total int) *WorkflowSpec {
	return &WorkflowSpec{
		ID: "WF",
		Tasks: []TaskConfig{
			{
				Spec: task.Spec{
					Name: "Sim", Workflow: "WF",
					Cost:       task.Cost{Work: 10 * time.Second},
					TotalSteps: total,
				},
				Procs: 10, ProcsPerNode: 5, AutoStart: true,
			},
		},
	}
}

func TestLaunchAssignsAndRuns(t *testing.T) {
	b := newBench(t, 2)
	b.sv.Compose(simpleWF(5))
	var events []Event
	b.sv.OnEvent(func(ev Event) { events = append(events, ev) })

	b.s.Spawn("driver", func(p *sim.Proc) {
		if err := b.sv.Launch(p, "WF"); err != nil {
			t.Errorf("Launch: %v", err)
		}
	})
	// Mid-run, the task holds 10 cores shaped 5 per node.
	b.s.After(2*time.Second, func() {
		rs := b.sv.Assigned("WF", "Sim")
		if rs.Total() != 10 || rs["node000"] != 5 || rs["node001"] != 5 {
			t.Errorf("assignment = %v", rs)
		}
		if !b.sv.TaskRunning("WF", "Sim") {
			t.Error("task should be running")
		}
	})
	if err := b.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Resources returned after natural completion.
	if got := b.rm.Free().Total(); got != 40 {
		t.Fatalf("free = %d after completion, want 40", got)
	}
	if len(events) != 2 || events[0].Kind != TaskStarted || events[1].Kind != TaskEnded {
		t.Fatalf("events = %+v", events)
	}
	if b.sv.TaskRunning("WF", "Sim") {
		t.Fatal("task should be down")
	}
}

func TestStopTaskWaitsForGracefulDrain(t *testing.T) {
	b := newBench(t, 2)
	b.sv.Compose(simpleWF(100)) // 10 procs -> 1s/step
	var stopDone sim.Time
	b.s.Spawn("driver", func(p *sim.Proc) {
		b.sv.Launch(p, "WF")
		p.Sleep(10500 * time.Millisecond) // mid-step 11
		if err := b.sv.StopTask(p, "WF", "Sim", true); err != nil {
			t.Errorf("StopTask: %v", err)
		}
		stopDone = p.Now()
		if b.rm.Free().Total() != 40 {
			t.Errorf("free after stop = %d, want 40", b.rm.Free().Total())
		}
	})
	if err := b.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if stopDone != 11*time.Second {
		t.Fatalf("stop completed at %v, want 11s (graceful drain to step end)", stopDone)
	}
}

func TestRestartIncrementsIncarnation(t *testing.T) {
	b := newBench(t, 2)
	b.sv.Compose(simpleWF(1000))
	b.s.Spawn("driver", func(p *sim.Proc) {
		b.sv.Launch(p, "WF")
		p.Sleep(5 * time.Second)
		b.sv.StopTask(p, "WF", "Sim", true)
		rs, err := b.rm.Carve(20, 10, nil)
		if err != nil {
			t.Errorf("carve: %v", err)
			return
		}
		if err := b.sv.StartTask(p, "WF", "Sim", rs, ""); err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		inst := b.sv.Instance("WF", "Sim")
		if inst.Incarnation != 1 {
			t.Errorf("incarnation = %d, want 1", inst.Incarnation)
		}
		if inst.Placement.Procs() != 20 {
			t.Errorf("restarted procs = %d, want 20", inst.Placement.Procs())
		}
		p.Sleep(time.Second)
		b.sv.StopTask(p, "WF", "Sim", false)
	})
	if err := b.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestStartScriptCostPaidInline(t *testing.T) {
	b := newBench(t, 2)
	wf := simpleWF(3)
	wf.Tasks[0].StartScript = "restart-xgc1.sh"
	wf.Tasks[0].AutoStart = false
	b.sv.Compose(wf)
	b.sv.RegisterScript("restart-xgc1.sh", 4*time.Second)

	var started sim.Time
	b.s.Spawn("driver", func(p *sim.Proc) {
		rs, _ := b.rm.Carve(10, 5, nil)
		if err := b.sv.StartTask(p, "WF", "Sim", rs, "restart-xgc1.sh"); err != nil {
			t.Errorf("StartTask: %v", err)
		}
		started = p.Now()
	})
	if err := b.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if started != 4*time.Second {
		t.Fatalf("StartTask returned at %v, want 4s (script cost)", started)
	}
}

// Regression: StartTask must assign the carve BEFORE paying the script
// cost, so a node death during the (possibly long) user script surfaces as
// a PlacementLostError naming the dead nodes — with nothing left assigned —
// instead of launching on a placement that no longer exists.
func TestStartTaskNodeDiesDuringScript(t *testing.T) {
	b := newBench(t, 2)
	wf := simpleWF(3)
	wf.Tasks[0].StartScript = "restart.sh"
	wf.Tasks[0].AutoStart = false
	b.sv.Compose(wf)
	b.sv.RegisterScript("restart.sh", 10*time.Second)

	b.s.At(5*time.Second, func() { b.c.FailNode("node001") })

	b.s.Spawn("driver", func(p *sim.Proc) {
		rs, err := b.rm.Carve(10, 5, nil)
		if err != nil {
			t.Errorf("carve: %v", err)
			return
		}
		err = b.sv.StartTask(p, "WF", "Sim", rs, "restart.sh")
		var pl *PlacementLostError
		if !errors.As(err, &pl) {
			t.Errorf("err = %v, want PlacementLostError", err)
			return
		}
		if len(pl.Nodes) != 1 || pl.Nodes[0] != "node001" {
			t.Errorf("lost nodes = %v, want [node001]", pl.Nodes)
		}
	})
	if err := b.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if b.sv.TaskRunning("WF", "Sim") {
		t.Fatal("task must not launch on a partial placement")
	}
	// The failed start must not leak the surviving half of the carve.
	if owners := b.rm.Owners(); len(owners) != 0 {
		t.Fatalf("leaked assignments: %v", owners)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	b := newBench(t, 2)
	b.sv.Compose(simpleWF(100))
	b.s.Spawn("driver", func(p *sim.Proc) {
		b.sv.Launch(p, "WF")
		rs, _ := b.rm.Carve(5, 0, nil)
		if err := b.sv.StartTask(p, "WF", "Sim", rs, ""); err == nil {
			t.Error("starting a running task should fail")
		}
		b.sv.StopTask(p, "WF", "Sim", false)
	})
	if err := b.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeFailureCrashesTasksAndFreesSurvivors(t *testing.T) {
	b := newBench(t, 3)
	b.sv.Compose(&WorkflowSpec{
		ID: "MD",
		Tasks: []TaskConfig{
			{
				Spec: task.Spec{
					Name: "LAMMPS", Workflow: "MD",
					Cost: task.Cost{Work: 30 * time.Second}, TotalSteps: 1000,
				},
				Procs: 30, ProcsPerNode: 10, AutoStart: true,
			},
		},
	})
	b.s.Spawn("driver", func(p *sim.Proc) { b.sv.Launch(p, "MD") })
	b.c.FailNodeAt(time.Minute, "node001")
	if err := b.s.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	inst := b.sv.Instance("MD", "LAMMPS")
	if inst.State() != task.Failed || inst.ExitCode() != 137 {
		t.Fatalf("state=%v code=%d, want Failed/137", inst.State(), inst.ExitCode())
	}
	// Status file carries the failure code for the ERRORSTATUS sensor.
	if v, err := b.env.FS.ReadVar(task.StatusPath("MD", "LAMMPS"), "exitcode"); err != nil || v != 137 {
		t.Fatalf("status exitcode = %v, %v", v, err)
	}
	// The two surviving nodes' cores are back in the pool; the dead node
	// contributes nothing.
	free := b.rm.Free()
	if free.Total() != 40 {
		t.Fatalf("free = %v (%d), want 40 on surviving nodes", free, free.Total())
	}
	if free["node001"] != 0 {
		t.Fatal("failed node should contribute no free cores")
	}
}

func TestStopTaskOnDeadTaskIsNoop(t *testing.T) {
	b := newBench(t, 2)
	b.sv.Compose(simpleWF(1))
	b.s.Spawn("driver", func(p *sim.Proc) {
		b.sv.Launch(p, "WF")
		p.Sleep(time.Minute) // task long finished
		if err := b.sv.StopTask(p, "WF", "Sim", true); err != nil {
			t.Errorf("StopTask on finished task: %v", err)
		}
	})
	if err := b.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestCoresPerProcPlacement(t *testing.T) {
	b := newBench(t, 2) // DT2: 20 cores/node
	b.sv.Compose(&WorkflowSpec{
		ID: "XGC",
		Tasks: []TaskConfig{
			{
				Spec: task.Spec{
					Name: "XGC1", Workflow: "XGC",
					Cost: task.Cost{Work: 10 * time.Second}, TotalSteps: 100,
				},
				Procs: 20, ProcsPerNode: 10, CoresPerProc: 2, AutoStart: true,
			},
		},
	})
	b.s.Spawn("driver", func(p *sim.Proc) {
		if err := b.sv.Launch(p, "XGC"); err != nil {
			t.Errorf("launch: %v", err)
		}
	})
	b.s.Run(time.Second)
	inst := b.sv.Instance("XGC", "XGC1")
	// 20 procs x 2 cores = 40 cores = both nodes fully assigned; the
	// placement records PROCESSES (10 per node), not cores.
	if inst.Placement.Procs() != 20 {
		t.Fatalf("procs = %d, want 20", inst.Placement.Procs())
	}
	if inst.Placement["node000"] != 10 || inst.Placement["node001"] != 10 {
		t.Fatalf("placement = %v", inst.Placement)
	}
	if free := b.rm.Free().Total(); free != 0 {
		t.Fatalf("free = %d, want 0 (cores fully consumed)", free)
	}
	if b.sv.CoresPerProc("XGC", "XGC1") != 2 {
		t.Fatal("CoresPerProc lookup")
	}
	if b.sv.CoresPerProc("XGC", "nope") != 1 {
		t.Fatal("CoresPerProc default")
	}
	b.s.Spawn("stopper", func(p *sim.Proc) { b.sv.StopTask(p, "XGC", "XGC1", false) })
	b.s.RunUntilIdle()
}

func TestRunningTasksSorted(t *testing.T) {
	b := newBench(t, 2)
	b.sv.Compose(&WorkflowSpec{
		ID: "WF",
		Tasks: []TaskConfig{
			{Spec: task.Spec{Name: "Zed", Workflow: "WF", Cost: task.Cost{Work: time.Hour}, TotalSteps: 1},
				Procs: 2, AutoStart: true},
			{Spec: task.Spec{Name: "Abel", Workflow: "WF", Cost: task.Cost{Work: time.Hour}, TotalSteps: 1},
				Procs: 2, AutoStart: true},
		},
	})
	b.s.Spawn("driver", func(p *sim.Proc) { b.sv.Launch(p, "WF") })
	b.s.Run(time.Second)
	got := b.sv.RunningTasks("WF")
	if len(got) != 2 || got[0] != "Abel" || got[1] != "Zed" {
		t.Fatalf("running = %v, want sorted", got)
	}
	b.s.Spawn("stopper", func(p *sim.Proc) {
		b.sv.StopTask(p, "WF", "Abel", false)
		b.sv.StopTask(p, "WF", "Zed", false)
	})
	b.s.RunUntilIdle()
}

func TestSignalTask(t *testing.T) {
	b := newBench(t, 2)
	b.sv.Compose(simpleWF(100))
	b.s.Spawn("driver", func(p *sim.Proc) {
		b.sv.Launch(p, "WF")
		p.Sleep(500 * time.Millisecond)
		if err := b.sv.SignalTask("WF", "Sim", nil); err != nil {
			t.Errorf("SignalTask: %v", err)
		}
		if err := b.sv.SignalTask("WF", "nope", nil); err == nil {
			t.Error("signal to unknown task should fail")
		}
		p.Sleep(2 * time.Second)
		b.sv.StopTask(p, "WF", "Sim", false)
	})
	if err := b.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorsAndResourcePassthrough(t *testing.T) {
	// 5 cluster nodes with only 3 allocated, so extra nodes can be
	// requested on demand.
	s := sim.New(1)
	c := cluster.Deepthought2(s, 5)
	rm := resmgr.New(c)
	if _, err := rm.Allocate(3); err != nil {
		t.Fatal(err)
	}
	env := &task.Env{Sim: s, FS: fsim.New(s), Streams: stream.NewRegistry(s)}
	b := &bench{s: s, c: c, rm: rm, env: env, sv: New(env, rm)}
	wf := simpleWF(10)
	b.sv.Compose(wf)
	if b.sv.Env() != b.env || b.sv.Manager() != b.rm {
		t.Fatal("accessors broken")
	}
	if got := b.sv.Workflow("WF"); got == nil || got.TaskConfigByName("Sim") == nil {
		t.Fatal("Workflow/TaskConfigByName broken")
	}
	if b.sv.Workflow("nope") != nil || wf.TaskConfigByName("nope") != nil {
		t.Fatal("missing lookups should be nil")
	}
	// request/release extra nodes.
	ids, err := b.sv.RequestResources(2)
	if err != nil || len(ids) != 2 {
		t.Fatalf("RequestResources = %v, %v", ids, err)
	}
	if err := b.sv.ReleaseResources(ids[:1]); err != nil {
		t.Fatal(err)
	}
	st := b.sv.ResourceStatus()
	if len(st.AllocatedNodes) != 4 { // 3 initial + 2 requested - 1 released
		t.Fatalf("allocated = %v", st.AllocatedNodes)
	}
	// Composing twice is rejected.
	if err := b.sv.Compose(wf); err == nil {
		t.Fatal("double compose should fail")
	}
	// State-change observers fan out.
	calls := 0
	b.sv.OnStateChange(func(in *task.Instance, from, to task.State) { calls++ })
	b.sv.OnStateChange(func(in *task.Instance, from, to task.State) { calls++ })
	b.s.Spawn("driver", func(p *sim.Proc) {
		rs, _ := b.rm.Carve(4, 0, nil)
		b.sv.StartTask(p, "WF", "Sim", rs, "")
		p.Sleep(time.Second)
		b.sv.StopTask(p, "WF", "Sim", false)
	})
	if err := b.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("state observers never called")
	}
}
