// Package wms is the workflow management system DYFLOW plugs into — the
// stand-in for Cheetah/Savanna in the paper's implementation. Cheetah's
// role (workflow composition) is covered by WorkflowSpec/TaskConfig;
// Savanna's role (talking to the cluster scheduler, allocating resources,
// spawning tasks on compute nodes, saving exit status) is covered by
// Savanna, whose methods are exactly the low-level operations DYFLOW's
// Actuation stage invokes: start_task_with_resources, stop_task,
// signal_task, request_resources, release_resources, get_resource_status.
package wms

import (
	"fmt"
	"sort"
	"time"

	"dyflow/internal/cluster"
	"dyflow/internal/obs"
	"dyflow/internal/resmgr"
	"dyflow/internal/sim"
	"dyflow/internal/task"
)

// TaskConfig composes one task into a workflow: its behavioural spec plus
// its initial launch shape.
type TaskConfig struct {
	Spec task.Spec
	// Procs is the initial process count.
	Procs int
	// ProcsPerNode is the placement shape (e.g. Table 2's "34 per node");
	// 0 packs nodes.
	ProcsPerNode int
	// CoresPerProc is how many cores one process occupies (ceil of its
	// thread count over the hardware SMT width); 0 means 1. XGC's 14
	// 10-thread processes per 42-core Summit node occupy 3 cores each,
	// filling the node — which is why XGC1 and XGCa can never run
	// concurrently and one waits for the other's resources.
	CoresPerProc int
	// AutoStart launches the task when the workflow launches. Tasks that
	// wait in a queue initially (XGCa in §4.3) set this false and are
	// started later by a policy action.
	AutoStart bool
	// StartScript names a user script run before each (re)start of the
	// task (the paper's restart-xgc.sh); costs are registered with
	// Savanna.RegisterScript.
	StartScript string
}

// WorkflowSpec is a composed workflow (Cheetah's output).
type WorkflowSpec struct {
	ID    string
	Tasks []TaskConfig
}

// TaskConfigByName returns the config for a task, or nil.
func (w *WorkflowSpec) TaskConfigByName(name string) *TaskConfig {
	for i := range w.Tasks {
		if w.Tasks[i].Spec.Name == name {
			return &w.Tasks[i]
		}
	}
	return nil
}

// EventKind classifies task lifecycle events reported by Savanna.
type EventKind int

const (
	// TaskStarted fires when an incarnation is launched.
	TaskStarted EventKind = iota
	// TaskEnded fires when an incarnation terminates (any reason) and its
	// resources have been returned to the pool.
	TaskEnded
)

// Event is a task lifecycle notification.
type Event struct {
	Kind     EventKind
	Workflow string
	Task     string
	Instance *task.Instance
	At       sim.Time
}

// PlacementLostError reports a start whose assigned placement was lost to
// node failures while the user script ran. It is transient: the caller can
// re-carve on surviving nodes, excluding the ones named here (which may
// read healthy again by retry time if the cluster healed them).
type PlacementLostError struct {
	Workflow string
	Task     string
	// Nodes lists the assigned nodes that failed under the launch.
	Nodes []cluster.NodeID
}

func (e *PlacementLostError) Error() string {
	return fmt.Sprintf("wms: start %s/%s: placement lost to node failure on %v", e.Workflow, e.Task, e.Nodes)
}

// taskRT tracks the runtime of one composed task.
type taskRT struct {
	cfg         TaskConfig
	inst        *task.Instance // current incarnation, nil before first start
	incarnation int            // next incarnation number
	released    bool           // current incarnation's resources returned
}

// Savanna launches and controls workflow tasks on the allocation managed by
// a resmgr.Manager. All mutating methods that can block (starting with a
// user script, stopping with graceful drain) take the calling simulated
// process.
type Savanna struct {
	env *task.Env
	rm  *resmgr.Manager

	workflows map[string]*WorkflowSpec
	tasks     map[string]*taskRT // key: workflow + "/" + task
	scripts   map[string]time.Duration
	subs      []func(Event)
	onState   []func(in *task.Instance, from, to task.State)

	mStarts          *obs.CounterVec // dyflow_wms_task_starts_total{task}
	mStops           *obs.CounterVec // dyflow_wms_task_stops_total{task}
	mPlacementLosses *obs.Counter    // dyflow_wms_placement_losses_total
	mRunning         *obs.Gauge      // dyflow_wms_running_tasks
}

// SetMetrics attaches a metrics registry, registering the WMS task
// lifecycle families.
func (sv *Savanna) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	sv.mStarts = reg.Counter("dyflow_wms_task_starts_total", "Task incarnations launched.", "task")
	sv.mStops = reg.Counter("dyflow_wms_task_stops_total", "Task incarnations ended (any reason).", "task")
	sv.mPlacementLosses = reg.Counter("dyflow_wms_placement_losses_total",
		"Starts whose placement was lost to node failure during the user script.").With()
	sv.mRunning = reg.Gauge("dyflow_wms_running_tasks", "Live task incarnations.").With()
}

// New creates a Savanna runtime over env and rm. Node failures reported by
// the resource manager crash the affected incarnations with exit code 137,
// which is how the ERRORSTATUS sensor learns about them.
func New(env *task.Env, rm *resmgr.Manager) *Savanna {
	sv := &Savanna{
		env:       env,
		rm:        rm,
		workflows: make(map[string]*WorkflowSpec),
		tasks:     make(map[string]*taskRT),
		scripts:   make(map[string]time.Duration),
	}
	rm.OnResourceLoss(sv.resourceLost)
	return sv
}

// Env returns the task environment.
func (sv *Savanna) Env() *task.Env { return sv.env }

// Manager returns the resource manager (Arbitration consults it directly
// for resource bookkeeping).
func (sv *Savanna) Manager() *resmgr.Manager { return sv.rm }

// OnEvent subscribes to task lifecycle events.
func (sv *Savanna) OnEvent(fn func(Event)) { sv.subs = append(sv.subs, fn) }

// OnStateChange registers an observer for instance state transitions
// (start, drain, completion), used by the experiment trace recorder.
func (sv *Savanna) OnStateChange(fn func(in *task.Instance, from, to task.State)) {
	sv.onState = append(sv.onState, fn)
}

// fanOutState dispatches a transition to every registered observer.
func (sv *Savanna) fanOutState(in *task.Instance, from, to task.State) {
	for _, fn := range sv.onState {
		fn(in, from, to)
	}
}

// RegisterScript declares the runtime cost of a user script referenced by
// start actions (the paper's restart-xgc1.sh accounts for XGC1's longer
// start response).
func (sv *Savanna) RegisterScript(name string, cost time.Duration) {
	sv.scripts[name] = cost
}

func (sv *Savanna) emit(ev Event) {
	ev.At = sv.env.Sim.Now()
	for _, fn := range sv.subs {
		fn(ev)
	}
}

func key(workflow, taskName string) string { return workflow + "/" + taskName }

// Compose registers a workflow specification.
func (sv *Savanna) Compose(spec *WorkflowSpec) error {
	if _, ok := sv.workflows[spec.ID]; ok {
		return fmt.Errorf("wms: workflow %q already composed", spec.ID)
	}
	sv.workflows[spec.ID] = spec
	for _, cfg := range spec.Tasks {
		sv.tasks[key(spec.ID, cfg.Spec.Name)] = &taskRT{cfg: cfg}
	}
	return nil
}

// Workflow returns a composed workflow spec, or nil.
func (sv *Savanna) Workflow(id string) *WorkflowSpec { return sv.workflows[id] }

// Launch starts every AutoStart task of the workflow with its configured
// shape, in composition order. It must be called from a simulated process.
func (sv *Savanna) Launch(p *sim.Proc, workflowID string) error {
	spec, ok := sv.workflows[workflowID]
	if !ok {
		return fmt.Errorf("wms: unknown workflow %q", workflowID)
	}
	for _, cfg := range spec.Tasks {
		if !cfg.AutoStart {
			continue
		}
		cpp := cfg.CoresPerProc
		if cpp <= 0 {
			cpp = 1
		}
		rs, err := sv.rm.Carve(cfg.Procs*cpp, cfg.ProcsPerNode*cpp, nil)
		if err != nil {
			return fmt.Errorf("wms: launch %s/%s: %w", workflowID, cfg.Spec.Name, err)
		}
		if err := sv.StartTask(p, workflowID, cfg.Spec.Name, rs, cfg.StartScript); err != nil {
			return err
		}
	}
	return nil
}

// CoresPerProc returns the task's per-process core footprint (>= 1).
func (sv *Savanna) CoresPerProc(workflowID, taskName string) int {
	rt, ok := sv.tasks[key(workflowID, taskName)]
	if !ok || rt.cfg.CoresPerProc <= 0 {
		return 1
	}
	return rt.cfg.CoresPerProc
}

// Instance returns the current incarnation of a task (nil if never
// started).
func (sv *Savanna) Instance(workflowID, taskName string) *task.Instance {
	rt := sv.tasks[key(workflowID, taskName)]
	if rt == nil {
		return nil
	}
	return rt.inst
}

// TaskRunning reports whether the task currently has a live incarnation.
func (sv *Savanna) TaskRunning(workflowID, taskName string) bool {
	in := sv.Instance(workflowID, taskName)
	return in != nil && in.Alive()
}

// RunningTasks lists the workflow's live tasks in sorted order.
func (sv *Savanna) RunningTasks(workflowID string) []string {
	var out []string
	spec := sv.workflows[workflowID]
	if spec == nil {
		return nil
	}
	for _, cfg := range spec.Tasks {
		if sv.TaskRunning(workflowID, cfg.Spec.Name) {
			out = append(out, cfg.Spec.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Assigned returns the task's current resource assignment.
func (sv *Savanna) Assigned(workflowID, taskName string) resmgr.ResourceSet {
	return sv.rm.Assigned(key(workflowID, taskName))
}

// StartTask implements start_task_with_resources: assign rs to the task,
// run the optional user script, and spawn the incarnation. The process
// count and placement derive from rs (one process per core). It must be
// called from a simulated process; the script cost is paid inline.
func (sv *Savanna) StartTask(p *sim.Proc, workflowID, taskName string, rs resmgr.ResourceSet, script string) error {
	rt, ok := sv.tasks[key(workflowID, taskName)]
	if !ok {
		return fmt.Errorf("wms: unknown task %s/%s", workflowID, taskName)
	}
	if rt.inst != nil && rt.inst.Alive() {
		return fmt.Errorf("wms: task %s/%s already running", workflowID, taskName)
	}
	if rs.Total() == 0 {
		return fmt.Errorf("wms: task %s/%s started with no resources", workflowID, taskName)
	}
	// Assign BEFORE running the user script: the carve was validated against
	// resources at plan time, and a node failure during the (possibly long)
	// script must surface as a placement loss on this launch — not let the
	// launch proceed onto a carve that no longer exists, or fail with a
	// confusing ErrInsufficient after resources were available at plan time.
	k := key(workflowID, taskName)
	if err := sv.rm.Assign(k, rs); err != nil {
		return err
	}
	if script != "" {
		if cost, ok := sv.scripts[script]; ok && cost > 0 {
			if err := p.SleepUninterruptible(cost); err != nil {
				sv.rm.Release(k)
				return err
			}
		}
	}
	// Node deaths during the script trimmed the assignment (resourceLost);
	// launching on the partial carve would run fewer ranks than planned.
	// Release the remnant and report which nodes were lost so the caller
	// can re-carve around them.
	if held := sv.rm.Assigned(k); held.Total() != rs.Total() {
		var lost []cluster.NodeID
		for id, n := range rs {
			if held[id] < n {
				lost = append(lost, id)
			}
		}
		sv.rm.Release(k)
		sv.mPlacementLosses.Inc()
		return &PlacementLostError{Workflow: workflowID, Task: taskName, Nodes: cluster.SortNodeIDs(lost)}
	}
	cpp := rt.cfg.CoresPerProc
	if cpp <= 0 {
		cpp = 1
	}
	placement := make(task.Placement, len(rs))
	for node, cores := range rs {
		if n := cores / cpp; n > 0 {
			placement[node] = n
		}
	}
	inc := rt.incarnation
	rt.incarnation++
	rt.released = false
	inst := task.Launch(sv.env, rt.cfg.Spec, placement, inc, sv.fanOutState)
	rt.inst = inst
	sv.mStarts.With(k).Inc()
	sv.mRunning.Add(1)
	sv.emit(Event{Kind: TaskStarted, Workflow: workflowID, Task: taskName, Instance: inst})

	// Watcher: when the incarnation ends for any reason, return its
	// resources exactly once and report the end.
	sv.env.Sim.Spawn(fmt.Sprintf("savanna-watch/%s/%s#%d", workflowID, taskName, inc), func(wp *sim.Proc) {
		wp.Join(inst.Proc())
		if rt.inst == inst && !rt.released {
			sv.rm.Release(key(workflowID, taskName))
			rt.released = true
		}
		sv.mStops.With(k).Inc()
		sv.mRunning.Add(-1)
		sv.emit(Event{Kind: TaskEnded, Workflow: workflowID, Task: taskName, Instance: inst})
	})
	return nil
}

// StopTask implements stop_task: signal the incarnation (gracefully by
// default — SIGTERM then let it finish its timestep) and wait for it to
// terminate and its resources to return. The wait is the dominant share of
// DYFLOW's response time (§4.6).
func (sv *Savanna) StopTask(p *sim.Proc, workflowID, taskName string, graceful bool) error {
	rt, ok := sv.tasks[key(workflowID, taskName)]
	if !ok {
		return fmt.Errorf("wms: unknown task %s/%s", workflowID, taskName)
	}
	inst := rt.inst
	if inst == nil || !inst.Alive() {
		return nil // already down
	}
	inst.Stop(graceful)
	if err := p.Join(inst.Proc()); err != nil {
		return err
	}
	if rt.inst == inst && !rt.released {
		sv.rm.Release(key(workflowID, taskName))
		rt.released = true
	}
	return nil
}

// SignalTask implements signal_*_task for signals that do not terminate
// the incarnation's resources — currently a generic interrupt delivery.
func (sv *Savanna) SignalTask(workflowID, taskName string, cause error) error {
	inst := sv.Instance(workflowID, taskName)
	if inst == nil || !inst.Alive() {
		return fmt.Errorf("wms: task %s/%s not running", workflowID, taskName)
	}
	inst.Proc().Interrupt(cause)
	return nil
}

// RequestResources implements request_resources (extra whole nodes).
func (sv *Savanna) RequestResources(n int) ([]cluster.NodeID, error) {
	return sv.rm.RequestNodes(n)
}

// ReleaseResources implements release_resources.
func (sv *Savanna) ReleaseResources(ids []cluster.NodeID) error {
	return sv.rm.ReleaseNodes(ids)
}

// ResourceStatus implements get_resource_status.
func (sv *Savanna) ResourceStatus() resmgr.Status { return sv.rm.Status() }

// resourceLost crashes the incarnation owning cores on a failed node. An
// MPI job losing any of its ranks aborts entirely, so the whole instance
// fails with a signal-style exit code (137 = 128+SIGKILL). The watcher then
// releases the surviving cores.
func (sv *Savanna) resourceLost(owner string, node cluster.NodeID, lost int) {
	rt, ok := sv.tasks[owner]
	if !ok {
		return
	}
	if rt.inst != nil && rt.inst.Alive() {
		rt.inst.Crash(137)
	}
}
