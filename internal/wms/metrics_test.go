package wms

import (
	"testing"
	"time"

	"dyflow/internal/obs"
	"dyflow/internal/sim"
)

// TestSavannaMetrics: task starts/stops and the running-tasks gauge track
// the lifecycle, including a restart.
func TestSavannaMetrics(t *testing.T) {
	b := newBench(t, 2)
	reg := obs.NewRegistry()
	b.sv.SetMetrics(reg)
	b.sv.Compose(simpleWF(1000))
	val := func(name string) float64 {
		v, _ := reg.Value(name)
		return v
	}

	b.s.Spawn("driver", func(p *sim.Proc) {
		if err := b.sv.Launch(p, "WF"); err != nil {
			t.Errorf("Launch: %v", err)
			return
		}
		if val("dyflow_wms_running_tasks") != 1 {
			t.Errorf("running = %v after launch, want 1", val("dyflow_wms_running_tasks"))
		}
		p.Sleep(5 * time.Second)
		b.sv.StopTask(p, "WF", "Sim", true)
		p.Sleep(time.Millisecond) // let the end-watcher observe the exit
		if val("dyflow_wms_running_tasks") != 0 {
			t.Errorf("running = %v after stop, want 0", val("dyflow_wms_running_tasks"))
		}
		rs, err := b.rm.Carve(20, 10, nil)
		if err != nil {
			t.Errorf("carve: %v", err)
			return
		}
		if err := b.sv.StartTask(p, "WF", "Sim", rs, ""); err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		p.Sleep(time.Second)
		b.sv.StopTask(p, "WF", "Sim", false)
	})
	if err := b.s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if val("dyflow_wms_task_starts_total") != 2 || val("dyflow_wms_task_stops_total") != 2 {
		t.Fatalf("starts=%v stops=%v, want 2/2",
			val("dyflow_wms_task_starts_total"), val("dyflow_wms_task_stops_total"))
	}
	if val("dyflow_wms_running_tasks") != 0 {
		t.Fatalf("running = %v at end, want 0", val("dyflow_wms_running_tasks"))
	}
}
