// Package stream models the ADIOS2 Sustainable Staging Transport (SST) the
// paper uses for in situ task coupling and for streaming TAU monitoring
// data. A Stream carries a sequence of timestep records from one producer
// to any number of dynamically attached readers, each with a bounded
// staging buffer.
//
// Two reader modes capture the two uses in the paper:
//
//   - Block: the producer blocks while the reader's buffer is full. This is
//     the coupling mode — an under-provisioned analysis task throttles the
//     simulation through exactly this backpressure (paper Figures 1, 8, 9).
//   - DropOldest: the producer never blocks; the oldest buffered record is
//     discarded instead. This is the monitoring mode — a slow monitor must
//     never slow down science.
package stream

import (
	"errors"
	"fmt"
	"sort"

	"dyflow/internal/obs"
	"dyflow/internal/sim"
)

// Step is one staged timestep record.
type Step struct {
	// Index is the producer's timestep number.
	Index int
	// Size is the staged payload size in bytes (informational).
	Size int64
	// Vars carries named numeric variables for sensors and analyses.
	Vars map[string]float64
	// Array carries one value per producer rank (e.g. TAU's per-process
	// loop times, or a staged output vector). Sensor preprocessing reduces
	// it before metric formulation.
	Array []float64
	// Produced is the virtual time the record was staged.
	Produced sim.Time
}

// Mode selects a reader's overflow behaviour.
type Mode int

const (
	// Block makes the producer wait while this reader's buffer is full.
	Block Mode = iota
	// DropOldest discards the reader's oldest buffered record on overflow.
	DropOldest
)

// ErrDetached is returned by reader operations after Close, and by writes
// on a closed stream.
var ErrDetached = errors.New("stream: detached")

// Reader is one attached consumer with a private bounded buffer.
type Reader struct {
	stream   *Stream
	id       int
	mode     Mode
	buf      *sim.Queue[Step]
	dropped  int
	received int
	closed   bool
}

// Get returns the next staged record, blocking the calling process while
// the buffer is empty. After the stream is closed and drained (or the
// reader detached), it returns ErrDetached.
func (r *Reader) Get(p *sim.Proc) (Step, error) {
	st, err := r.buf.Get(p)
	if err != nil {
		if errors.Is(err, sim.ErrClosed) {
			return Step{}, ErrDetached
		}
		return Step{}, err
	}
	r.received++
	r.stream.backlogChanged()
	return st, nil
}

// TryGet returns the next staged record without blocking.
func (r *Reader) TryGet() (Step, bool) {
	st, ok := r.buf.TryGet()
	if ok {
		r.stream.backlogChanged()
	}
	return st, ok
}

// Len returns the number of buffered records.
func (r *Reader) Len() int { return r.buf.Len() }

// Buffered returns a copy of the records currently buffered, in delivery
// order, without consuming them (checkpoint inspection).
func (r *Reader) Buffered() []Step { return r.buf.Items() }

// Dropped returns the number of records discarded in DropOldest mode.
func (r *Reader) Dropped() int { return r.dropped }

// Received returns the number of records delivered via Get.
func (r *Reader) Received() int { return r.received }

// Close detaches the reader: the producer stops delivering to (and stops
// blocking on) this reader. Pending Gets fail after the buffer drains.
func (r *Reader) Close() {
	if r.closed {
		return
	}
	r.closed = true
	delete(r.stream.readers, r.id)
	r.stream.sortedOK = false
	r.stream.sorted = nil
	r.buf.Close()
}

// Stream is a named staging channel with fan-out delivery.
type Stream struct {
	sim      *sim.Sim
	name     string
	readers  map[int]*Reader
	nextID   int
	closed   bool
	produced int

	// sorted caches sortedReaders; invalidated on attach/detach so the
	// per-Put fan-out loop allocates nothing in steady state.
	sorted   []*Reader
	sortedOK bool

	// Per-stream metric handles, resolved by Registry.SetMetrics (nil and
	// inert otherwise).
	mProduced  *obs.Counter
	mDropped   *obs.Counter
	mEOFAttach *obs.Counter
	mBacklog   *obs.Gauge
}

// backlogChanged re-publishes the total records buffered across attached
// readers — the staging depth a policy watches for coupling backpressure.
func (st *Stream) backlogChanged() {
	if st.mBacklog == nil {
		return
	}
	total := 0
	for _, r := range st.readers {
		total += r.buf.Len()
	}
	st.mBacklog.Set(float64(total))
}

// newStream is internal; obtain streams from a Registry.
func newStream(s *sim.Sim, name string) *Stream {
	return &Stream{sim: s, name: name, readers: make(map[int]*Reader)}
}

// Name returns the stream name.
func (st *Stream) Name() string { return st.name }

// Produced returns the number of records written so far.
func (st *Stream) Produced() int { return st.produced }

// Readers returns the number of attached readers.
func (st *Stream) Readers() int { return len(st.readers) }

// Closed reports whether the producer closed the stream.
func (st *Stream) Closed() bool { return st.closed }

// Attach connects a new reader with the given buffer capacity (in steps;
// must be positive for Block mode so backpressure is well-defined) and
// overflow mode. Readers attach and detach freely at runtime — the paper's
// Monitor stage resets these connections whenever tasks restart.
func (st *Stream) Attach(capacity int, mode Mode) *Reader {
	if capacity <= 0 {
		capacity = 1
	}
	r := &Reader{
		stream: st,
		id:     st.nextID,
		mode:   mode,
		buf:    sim.NewQueue[Step](st.sim, capacity),
	}
	st.nextID++
	st.readers[r.id] = r
	st.sortedOK = false
	st.sorted = nil
	if st.closed {
		// The producer already finished: the reader sees immediate EOF
		// instead of blocking forever on data that will never come (the
		// restarted-consumer recovery path).
		r.buf.Close()
		st.mEOFAttach.Inc()
	}
	return r
}

// sortedReaders returns attached readers in attach order. The result is
// cached until the reader topology changes; a fresh slice is built on each
// rebuild so callers iterating a stale snapshot (e.g. a Put blocked while a
// reader detaches) stay safe.
func (st *Stream) sortedReaders() []*Reader {
	if st.sortedOK {
		return st.sorted
	}
	ids := make([]int, 0, len(st.readers))
	for id := range st.readers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Reader, 0, len(ids))
	for _, id := range ids {
		out = append(out, st.readers[id])
	}
	st.sorted = out
	st.sortedOK = true
	return out
}

// Put stages one record to every attached reader. For Block-mode readers
// the calling process waits until buffer space is available (SST writer
// semantics: the slowest coupled consumer gates the producer). For
// DropOldest readers the oldest buffered record is discarded on overflow.
// Put returns the interrupt/stop error delivered while blocked, or
// ErrDetached if the stream was closed.
func (st *Stream) Put(p *sim.Proc, step Step) error {
	if st.closed {
		return ErrDetached
	}
	step.Produced = st.sim.Now()
	st.produced++
	st.mProduced.Inc()
	for _, r := range st.sortedReaders() {
		switch r.mode {
		case Block:
			if err := r.buf.Put(p, step); err != nil {
				if errors.Is(err, sim.ErrClosed) {
					continue // reader detached while we were blocked
				}
				st.backlogChanged()
				return err
			}
		case DropOldest:
			for !r.buf.TryPut(step) {
				if r.closed {
					break
				}
				if _, ok := r.buf.TryGet(); ok {
					r.dropped++
					st.mDropped.Inc()
				} else {
					break
				}
			}
		}
	}
	st.backlogChanged()
	return nil
}

// Close marks the end of the stream. Attached readers drain their buffers
// and then see ErrDetached. The producer calls this when its task finishes
// or is terminated.
func (st *Stream) Close() {
	if st.closed {
		return
	}
	st.closed = true
	for _, r := range st.sortedReaders() {
		r.buf.Close()
	}
}

// reopen resets a closed stream for a new producer incarnation (task
// restart). Existing readers remain detached; new readers attach fresh.
func (st *Stream) reopen() {
	st.closed = false
	st.readers = make(map[int]*Reader)
	st.sortedOK = false
	st.sorted = nil
}

// Registry names streams so tasks and sensors can rendezvous on strings
// like "gs.out" or "tau.Isosurface".
type Registry struct {
	sim     *sim.Sim
	streams map[string]*Stream

	mProduced  *obs.CounterVec
	mDropped   *obs.CounterVec
	mEOFAttach *obs.CounterVec
	mBacklog   *obs.GaugeVec
}

// NewRegistry creates an empty stream registry.
func NewRegistry(s *sim.Sim) *Registry {
	return &Registry{sim: s, streams: make(map[string]*Stream)}
}

// SetMetrics attaches a metrics registry: every stream (existing and
// future) publishes produced/dropped/EOF-attach counters and a backlog
// gauge labeled by stream name.
func (r *Registry) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.mProduced = reg.Counter("dyflow_stream_produced_total", "Records staged by the producer.", "stream")
	r.mDropped = reg.Counter("dyflow_stream_dropped_total", "Records discarded by DropOldest readers.", "stream")
	r.mEOFAttach = reg.Counter("dyflow_stream_eof_attaches_total",
		"Reader attaches to an already-closed stream (restarted-consumer recovery).", "stream")
	r.mBacklog = reg.Gauge("dyflow_stream_backlog_records", "Records buffered across attached readers.", "stream")
	for _, st := range r.streams {
		r.instrument(st)
	}
}

// instrument resolves a stream's per-name metric handles.
func (r *Registry) instrument(st *Stream) {
	if r.mProduced == nil {
		return
	}
	st.mProduced = r.mProduced.With(st.name)
	st.mDropped = r.mDropped.With(st.name)
	st.mEOFAttach = r.mEOFAttach.With(st.name)
	st.mBacklog = r.mBacklog.With(st.name)
}

// Open returns the stream with the given name, creating it if necessary.
// If the stream exists but was closed by a previous producer incarnation,
// it is reopened empty (the restart semantics of SST connections).
func (r *Registry) Open(name string) *Stream {
	st, ok := r.streams[name]
	if !ok {
		st = newStream(r.sim, name)
		r.instrument(st)
		r.streams[name] = st
		return st
	}
	if st.closed {
		st.reopen()
	}
	return st
}

// OpenRead returns the stream for a consumer, creating it if necessary but
// — unlike Open — never reopening a closed one: only a new PRODUCER
// incarnation resets the stream. A consumer restarted after its producer
// completed must observe the close (and finish immediately), not resurrect
// the stream and hang waiting for data that will never come.
func (r *Registry) OpenRead(name string) *Stream {
	st, ok := r.streams[name]
	if !ok {
		st = newStream(r.sim, name)
		r.instrument(st)
		r.streams[name] = st
	}
	return st
}

// Lookup returns the stream with the given name, or nil. Unlike Open it
// never creates or reopens.
func (r *Registry) Lookup(name string) *Stream { return r.streams[name] }

// Names returns all registered stream names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.streams))
	for n := range r.streams {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String implements fmt.Stringer for debugging.
func (st *Stream) String() string {
	return fmt.Sprintf("stream(%s, %d readers, %d produced)", st.name, len(st.readers), st.produced)
}
