package stream

import (
	"testing"

	"dyflow/internal/obs"
	"dyflow/internal/sim"
)

// TestStreamMetrics: produced/dropped counters and the backlog gauge track
// staging activity per stream; attaching to a closed stream counts as an
// EOF attach.
func TestStreamMetrics(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s)
	reg := obs.NewRegistry()
	r.SetMetrics(reg)
	val := func(name string) float64 {
		v, _ := reg.Value(name)
		return v
	}

	st := r.Open("gs.out")
	rd := st.Attach(2, DropOldest)
	s.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if err := st.Put(p, Step{Index: i}); err != nil {
				t.Errorf("Put: %v", err)
			}
		}
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if val("dyflow_stream_produced_total") != 4 || val("dyflow_stream_dropped_total") != 2 {
		t.Fatalf("produced=%v dropped=%v, want 4/2",
			val("dyflow_stream_produced_total"), val("dyflow_stream_dropped_total"))
	}
	if val("dyflow_stream_backlog_records") != 2 {
		t.Fatalf("backlog = %v, want 2", val("dyflow_stream_backlog_records"))
	}
	if _, ok := rd.TryGet(); !ok {
		t.Fatal("TryGet failed on buffered stream")
	}
	if val("dyflow_stream_backlog_records") != 1 {
		t.Fatalf("backlog after get = %v, want 1", val("dyflow_stream_backlog_records"))
	}

	st.Close()
	st.Attach(1, Block)
	if val("dyflow_stream_eof_attaches_total") != 1 {
		t.Fatalf("eof attaches = %v, want 1", val("dyflow_stream_eof_attaches_total"))
	}

	// Streams opened after SetMetrics are instrumented too.
	st2 := r.Open("tau.sim")
	st2.Attach(1, DropOldest)
	s.Spawn("producer2", func(p *sim.Proc) {
		st2.Put(p, Step{Index: 0})
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if val("dyflow_stream_produced_total") != 5 {
		t.Fatalf("produced across streams = %v, want 5", val("dyflow_stream_produced_total"))
	}
}
