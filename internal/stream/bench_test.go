package stream

import (
	"testing"

	"dyflow/internal/sim"
)

// BenchmarkFanOutPut measures staging a record to several Block-mode
// consumers that keep up.
func BenchmarkFanOutPut(b *testing.B) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("out")
	const consumers = 4
	for i := 0; i < consumers; i++ {
		r := st.Attach(8, Block)
		s.Spawn("consumer", func(p *sim.Proc) {
			for {
				if _, err := r.Get(p); err != nil {
					return
				}
			}
		})
	}
	s.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if st.Put(p, Step{Index: i}) != nil {
				return
			}
		}
		st.Close()
	})
	b.ResetTimer()
	if err := s.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDropOldestPut measures the monitoring path: a never-blocking
// producer against a slow DropOldest reader.
func BenchmarkDropOldestPut(b *testing.B) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("tau")
	st.Attach(4, DropOldest)
	s.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if st.Put(p, Step{Index: i}) != nil {
				return
			}
		}
	})
	b.ResetTimer()
	if err := s.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
}
