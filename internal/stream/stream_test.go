package stream

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"dyflow/internal/sim"
)

func TestFanOutDeliversAll(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("out")
	r1 := st.Attach(10, Block)
	r2 := st.Attach(10, Block)

	s.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err := st.Put(p, Step{Index: i}); err != nil {
				t.Errorf("Put: %v", err)
			}
		}
		st.Close()
	})
	var got1, got2 []int
	consume := func(r *Reader, out *[]int) func(*sim.Proc) {
		return func(p *sim.Proc) {
			for {
				step, err := r.Get(p)
				if err != nil {
					if !errors.Is(err, ErrDetached) {
						t.Errorf("Get: %v", err)
					}
					return
				}
				*out = append(*out, step.Index)
			}
		}
	}
	s.Spawn("c1", consume(r1, &got1))
	s.Spawn("c2", consume(r2, &got2))
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for _, got := range [][]int{got1, got2} {
		if len(got) != 5 {
			t.Fatalf("got %v, want 0..4", got)
		}
		for i := range got {
			if got[i] != i {
				t.Fatalf("out of order: %v", got)
			}
		}
	}
}

func TestBlockBackpressureThrottlesProducer(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("out")
	r := st.Attach(2, Block)

	var putDone []sim.Time
	s.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if err := st.Put(p, Step{Index: i}); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			putDone = append(putDone, p.Now())
		}
	})
	// Consumer takes 30s per step.
	s.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if _, err := r.Get(p); err != nil {
				return
			}
			p.Sleep(30 * time.Second)
		}
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Steps 0,1 stage immediately; step 2 waits for the consumer's first
	// Get (t=0, it gets step 0 immediately)... buffer: put0,put1 fill;
	// consumer takes 0 at t=0 -> put2 at t=0; put3 blocks until consumer
	// takes 1 at t=30.
	want := []sim.Time{0, 0, 0, 30 * time.Second}
	if len(putDone) != len(want) {
		t.Fatalf("putDone = %v", putDone)
	}
	for i := range want {
		if putDone[i] != want[i] {
			t.Fatalf("putDone = %v, want %v", putDone, want)
		}
	}
}

func TestDropOldestNeverBlocks(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("tau")
	r := st.Attach(3, DropOldest)

	s.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := st.Put(p, Step{Index: i}); err != nil {
				t.Errorf("Put: %v", err)
			}
		}
		st.Close()
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if r.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", r.Dropped())
	}
	// The survivors are the newest three, in order.
	var got []int
	for {
		step, ok := r.TryGet()
		if !ok {
			break
		}
		got = append(got, step.Index)
	}
	want := []int{7, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("survivors = %v, want %v", got, want)
		}
	}
}

func TestReaderDetachUnblocksProducer(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("out")
	r := st.Attach(1, Block)

	var done sim.Time
	s.Spawn("producer", func(p *sim.Proc) {
		st.Put(p, Step{Index: 0})
		st.Put(p, Step{Index: 1}) // blocks: reader never drains
		done = p.Now()
	})
	s.After(5*time.Second, func() { r.Close() })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if done != 5*time.Second {
		t.Fatalf("producer unblocked at %v, want 5s (reader detach)", done)
	}
}

func TestCloseDrainsThenDetaches(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("out")
	r := st.Attach(5, Block)

	s.Spawn("producer", func(p *sim.Proc) {
		st.Put(p, Step{Index: 0})
		st.Put(p, Step{Index: 1})
		st.Close()
	})
	var got []int
	var finalErr error
	s.Spawn("consumer", func(p *sim.Proc) {
		for {
			step, err := r.Get(p)
			if err != nil {
				finalErr = err
				return
			}
			got = append(got, step.Index)
		}
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v, want both staged records", got)
	}
	if !errors.Is(finalErr, ErrDetached) {
		t.Fatalf("final err = %v, want ErrDetached", finalErr)
	}
}

func TestRegistryReopenAfterClose(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("out")
	st.Close()
	st2 := reg.Open("out")
	if st2 != st {
		t.Fatal("Open should reuse the stream object")
	}
	if st2.Closed() {
		t.Fatal("reopened stream should accept writes")
	}
	if reg.Lookup("nope") != nil {
		t.Fatal("Lookup must not create")
	}
}

func TestInterruptWhileBlockedOnPut(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("out")
	st.Attach(1, Block)

	var putErr error
	p := s.Spawn("producer", func(p *sim.Proc) {
		st.Put(p, Step{Index: 0})
		putErr = st.Put(p, Step{Index: 1}) // blocks forever
	})
	s.After(time.Second, func() { p.Interrupt(errors.New("sigterm")) })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !sim.Interrupted(putErr) {
		t.Fatalf("putErr = %v, want interrupted", putErr)
	}
}

// Property: with Block readers and any consumer pacing, every produced step
// is delivered to every reader exactly once, in order (conservation).
func TestConservationProperty(t *testing.T) {
	f := func(nSteps uint8, capRaw uint8, pace1, pace2 uint8) bool {
		n := int(nSteps%50) + 1
		capacity := int(capRaw%5) + 1
		s := sim.New(7)
		reg := NewRegistry(s)
		st := reg.Open("out")
		r1 := st.Attach(capacity, Block)
		r2 := st.Attach(capacity, Block)

		s.Spawn("producer", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				if st.Put(p, Step{Index: i}) != nil {
					return
				}
			}
			st.Close()
		})
		ok1, ok2 := true, true
		mk := func(r *Reader, pace time.Duration, okOut *bool) func(*sim.Proc) {
			return func(p *sim.Proc) {
				want := 0
				for {
					step, err := r.Get(p)
					if err != nil {
						*okOut = *okOut && want == n
						return
					}
					if step.Index != want {
						*okOut = false
					}
					want++
					p.Sleep(pace)
				}
			}
		}
		s.Spawn("c1", mk(r1, time.Duration(pace1%20)*time.Second, &ok1))
		s.Spawn("c2", mk(r2, time.Duration(pace2%20)*time.Second, &ok2))
		if err := s.RunUntilIdle(); err != nil {
			return false
		}
		return ok1 && ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorsAndReopen(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("a")
	reg.Open("b")
	if names := reg.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	r := st.Attach(2, Block)
	if st.Readers() != 1 || st.Name() != "a" {
		t.Fatalf("stream = %v", st)
	}
	s.Spawn("p", func(p *sim.Proc) {
		st.Put(p, Step{Index: 0})
		st.Put(p, Step{Index: 1})
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if st.Produced() != 2 || r.Len() != 2 || r.Received() != 0 {
		t.Fatalf("produced=%d len=%d received=%d", st.Produced(), r.Len(), r.Received())
	}
	if got := st.String(); got != "stream(a, 1 readers, 2 produced)" {
		t.Fatalf("String = %q", got)
	}
	// Double close is a no-op; reopen resets readers.
	st.Close()
	st.Close()
	if !st.Closed() {
		t.Fatal("closed")
	}
	st2 := reg.Open("a")
	if st2 != st || st2.Closed() || st2.Readers() != 0 {
		t.Fatalf("reopen: closed=%v readers=%d", st2.Closed(), st2.Readers())
	}
	// Puts on a closed stream fail.
	st3 := reg.Open("c")
	st3.Close()
	s.Spawn("q", func(p *sim.Proc) {
		if err := st3.Put(p, Step{}); !errors.Is(err, ErrDetached) {
			t.Errorf("put on closed = %v", err)
		}
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderDoubleCloseAndZeroCapacity(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("x")
	r := st.Attach(0, Block) // clamps to 1
	if r.buf.Cap() != 1 {
		t.Fatalf("cap = %d, want clamp to 1", r.buf.Cap())
	}
	r.Close()
	r.Close() // no-op
	if st.Readers() != 0 {
		t.Fatal("reader not detached")
	}
}

// A consumer attaching after the producer closed the stream must see
// immediate EOF — not resurrect the stream and block forever. This is the
// recovery path of an analysis task restarted after its producer finished.
func TestAttachAfterCloseSeesEOF(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s)
	st := reg.Open("gs.out")
	st.Close()

	// OpenRead must not reopen the closed stream.
	if got := reg.OpenRead("gs.out"); got != st || !got.Closed() {
		t.Fatal("OpenRead resurrected a closed stream")
	}
	// Open (the producer path) does reopen.
	r := reg.OpenRead("gs.out").Attach(1, Block)
	s.Spawn("late-consumer", func(p *sim.Proc) {
		if _, err := r.Get(p); !errors.Is(err, ErrDetached) {
			t.Errorf("late Get = %v, want ErrDetached", err)
		}
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if reg.Open("gs.out").Closed() {
		t.Fatal("Open must reopen for a new producer incarnation")
	}
}
