// Package profiler models TAU-style application instrumentation: each
// completed timestep of an instrumented task publishes a record with the
// task-level loop time and one value per MPI rank onto a monitoring
// stream, which DYFLOW's TAUADIOS2 sensor source consumes in real time.
package profiler

import (
	"math/rand"
	"time"

	"dyflow/internal/sim"
	"dyflow/internal/stream"
)

// StreamName returns the monitoring stream name for a task ("tau.<task>").
func StreamName(taskName string) string { return "tau." + taskName }

// Probe publishes per-timestep instrumentation for one task incarnation.
type Probe struct {
	st     *stream.Stream
	spread float64
	rng    *rand.Rand
}

// Attach opens (or reopens) the task's monitoring stream. spread is the
// relative dispersion of per-rank loop times below the slowest rank
// (default 0.05 when <= 0).
func Attach(reg *stream.Registry, taskName string, spread float64, rng *rand.Rand) *Probe {
	if spread <= 0 {
		spread = 0.05
	}
	return &Probe{st: reg.Open(StreamName(taskName)), spread: spread, rng: rng}
}

// Stream exposes the underlying monitoring stream (the task closes it when
// the incarnation ends, detaching monitor clients).
func (pr *Probe) Stream() *stream.Stream { return pr.st }

// EmitStep publishes one timestep record: Vars carries the loop time (the
// wall time of the step, set by its slowest rank) and the step number;
// Array carries per-rank loop times, each within spread below the maximum,
// so MAX reductions recover the loop time exactly.
func (pr *Probe) EmitStep(p *sim.Proc, globalStep, procs int, loopTime time.Duration) {
	base := loopTime.Seconds()
	ranks := make([]float64, procs)
	for i := range ranks {
		ranks[i] = base * (1 - pr.spread*pr.rng.Float64())
	}
	if procs > 0 {
		ranks[pr.rng.Intn(procs)] = base
	}
	pr.st.Put(p, stream.Step{
		Index: globalStep,
		Vars:  map[string]float64{"looptime": base, "step": float64(globalStep)},
		Array: ranks,
	})
}

// Close ends the incarnation's instrumentation stream.
func (pr *Probe) Close() { pr.st.Close() }
