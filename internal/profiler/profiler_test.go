package profiler

import (
	"testing"
	"time"

	"dyflow/internal/sim"
	"dyflow/internal/stream"
)

func TestEmitStepShape(t *testing.T) {
	s := sim.New(1)
	reg := stream.NewRegistry(s)
	r := reg.Open(StreamName("Iso")).Attach(8, stream.DropOldest)

	s.Spawn("task", func(p *sim.Proc) {
		pr := Attach(reg, "Iso", 0, s.Rand())
		pr.EmitStep(p, 7, 5, 12*time.Second)
		pr.Close()
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	rec, ok := r.TryGet()
	if !ok {
		t.Fatal("no record")
	}
	if rec.Index != 7 || rec.Vars["step"] != 7 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Vars["looptime"] != 12 {
		t.Fatalf("looptime = %v", rec.Vars["looptime"])
	}
	if len(rec.Array) != 5 {
		t.Fatalf("ranks = %d", len(rec.Array))
	}
	max := 0.0
	for _, v := range rec.Array {
		if v > max {
			max = v
		}
		if v > 12 || v < 12*(1-0.05)-1e-9 {
			t.Fatalf("rank value %v outside spread", v)
		}
	}
	if max != 12 {
		t.Fatalf("max rank %v != looptime", max)
	}
}

func TestStreamNameConvention(t *testing.T) {
	if StreamName("LAMMPS") != "tau.LAMMPS" {
		t.Fatal(StreamName("LAMMPS"))
	}
}

func TestReattachAfterClose(t *testing.T) {
	s := sim.New(1)
	reg := stream.NewRegistry(s)
	s.Spawn("incarnations", func(p *sim.Proc) {
		pr := Attach(reg, "T", 0.1, s.Rand())
		pr.EmitStep(p, 1, 2, time.Second)
		pr.Close()
		pr2 := Attach(reg, "T", 0.1, s.Rand())
		if pr2.Stream().Closed() {
			t.Error("reattach should reopen the stream")
		}
		pr2.EmitStep(p, 2, 2, time.Second)
		pr2.Close()
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}
