package obs

import (
	"strings"
	"testing"
)

func TestSnapshotWithLabel(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dyflow_worker_claims_total", "Claims.").With().Add(3)
	reg.Counter("dyflow_worker_runs_total", "Runs.", "outcome").With("done").Add(2)

	snap := reg.Snapshot().WithLabel("worker", "w-7")
	for _, m := range snap.Metrics {
		for _, s := range m.Series {
			if s.Labels["worker"] != "w-7" {
				t.Fatalf("%s series missing worker label: %v", m.Name, s.Labels)
			}
		}
	}
	// The source snapshot must be untouched (WithLabel copies).
	for _, m := range reg.Snapshot().Metrics {
		for _, s := range m.Series {
			if _, ok := s.Labels["worker"]; ok {
				t.Fatalf("WithLabel mutated the source: %v", s.Labels)
			}
		}
	}
}

func TestMergeSnapshotsAndRender(t *testing.T) {
	coord := NewRegistry()
	coord.Counter("dyflow_server_submissions_total", "Subs.", "tenant").With("a").Inc()

	w1, w2 := NewRegistry(), NewRegistry()
	w1.Counter("dyflow_worker_claims_total", "Claims.").With().Add(5)
	w1.Histogram("dyflow_worker_run_seconds", "Run time.", nil).With().Observe(0.2)
	w2.Counter("dyflow_worker_claims_total", "Claims.").With().Add(7)

	merged := MergeSnapshots(
		coord.Snapshot(),
		w1.Snapshot().WithLabel("worker", "w1"),
		w2.Snapshot().WithLabel("worker", "w2"),
	)

	// Same-name families from both workers fold into one with two series.
	var claims *MetricSnapshot
	for i := range merged.Metrics {
		if merged.Metrics[i].Name == "dyflow_worker_claims_total" {
			claims = &merged.Metrics[i]
		}
	}
	if claims == nil || len(claims.Series) != 2 {
		t.Fatalf("merged claims family = %+v", claims)
	}

	var b strings.Builder
	if err := merged.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`dyflow_worker_claims_total{worker="w1"} 5`,
		`dyflow_worker_claims_total{worker="w2"} 7`,
		`dyflow_server_submissions_total{tenant="a"} 1`,
		`dyflow_worker_run_seconds_count{worker="w1"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("merged exposition missing %q:\n%s", want, text)
		}
	}
	// Families must come out sorted by name for deterministic scrapes.
	if i1 := strings.Index(text, "dyflow_server_"); i1 > strings.Index(text, "dyflow_worker_claims") {
		t.Fatalf("families not sorted:\n%s", text)
	}
}

func TestRegistryPrometheusDelegatesToSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("dyflow_server_active_runs", "Active.").With().Set(4)
	var a, b strings.Builder
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("registry and snapshot renderings differ:\n%s\n---\n%s", a.String(), b.String())
	}
}
