package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("dyflow_test_total", "a counter", "kind")
	c.With("a").Inc()
	c.With("a").Add(2)
	c.With("b").Inc()
	if got := c.With("a").Value(); got != 3 {
		t.Fatalf("counter a = %d, want 3", got)
	}
	// Counters never go down.
	c.With("a").Add(-5)
	if got := c.With("a").Value(); got != 3 {
		t.Fatalf("counter a after negative add = %d, want 3", got)
	}
	g := reg.Gauge("dyflow_test_gauge", "a gauge")
	g.With().Set(4.5)
	g.With().Add(-1.5)
	if got := g.With().Value(); got != 3.0 {
		t.Fatalf("gauge = %v, want 3.0", got)
	}
	if v, ok := reg.Value("dyflow_test_total"); !ok || v != 4 {
		t.Fatalf("Value(counter) = %v,%v, want 4,true", v, ok)
	}
	if _, ok := reg.Value("nope"); ok {
		t.Fatal("Value of unregistered family should report !ok")
	}
}

// TestHistogramBucketBoundaries pins the bucket convention: an observation
// exactly on an upper bound lands in that bucket (le is inclusive, the
// Prometheus convention), and values above every bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 5.0, 5.0001, 100} {
		h.Observe(v)
	}
	want := []uint64{
		2, // <= 1: 0.5, 1.0
		2, // (1, 2]: 1.0001, 2.0
		1, // (2, 5]: 5.0
		2, // +Inf: 5.0001, 100
	}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d (counts %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if h.Max() != 100 {
		t.Errorf("max = %v, want 100", h.Max())
	}
	wantSum := 0.5 + 1.0 + 1.0001 + 2.0 + 5.0 + 5.0001 + 100
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHistogramQuantile pins the nearest-rank bucket-estimate convention:
// the quantile is the upper bound of the bucket containing rank ceil(q*n),
// and ranks in the overflow bucket resolve to the exactly-tracked Max.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for _, v := range []float64{0.1, 0.2, 1.5, 1.6, 3, 3, 3, 4, 4, 42} {
		h.Observe(v) // n=10: 2 in le=1, 2 in le=2, 5 in le=5, 1 overflow
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.1, 1},   // rank 1 -> first bucket
		{0.2, 1},   // rank 2
		{0.3, 2},   // rank 3
		{0.5, 5},   // rank 5
		{0.9, 5},   // rank 9
		{0.99, 42}, // rank 10 -> overflow -> Max
		{1.0, 42},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// A single sample answers every quantile with its own bucket.
	h1 := NewHistogram([]float64{1, 2})
	h1.Observe(1.5)
	if got := h1.Quantile(0.99); got != 2 {
		t.Errorf("single-sample P99 = %v, want 2", got)
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x", "h").With().Inc()
	reg.Gauge("y", "h").With().Set(1)
	reg.Histogram("z", "h", nil).With().Observe(1)
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should read zero")
	}
	if _, ok := reg.Value("x"); ok {
		t.Fatal("nil registry Value should report !ok")
	}
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// parsePromText is a minimal parser for the Prometheus text exposition
// format, used to check the output round-trips: it returns sample values
// keyed by "name{labels}".
func parsePromText(t *testing.T, r io.Reader) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndex(line, " ")
		if idx < 0 {
			t.Fatalf("unparsable sample line %q", line)
		}
		key, valStr := line[:idx], line[idx+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate series %q", key)
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPrometheusTextParsesBack(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("dyflow_ops_total", "ops by kind", "kind")
	c.With("start").Add(7)
	c.With("stop").Add(2)
	reg.Gauge("dyflow_free_cores", "free cores").With().Set(120)
	h := reg.Histogram("dyflow_lag_seconds", "sensor lag", []float64{0.5, 1}, "sensor")
	h.With("PACE").Observe(0.25)
	h.With("PACE").Observe(0.75)
	h.With("PACE").Observe(3)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, strings.NewReader(buf.String()))

	expect := map[string]float64{
		`dyflow_ops_total{kind="start"}`:                     7,
		`dyflow_ops_total{kind="stop"}`:                      2,
		`dyflow_free_cores`:                                  120,
		`dyflow_lag_seconds_bucket{sensor="PACE",le="0.5"}`:  1,
		`dyflow_lag_seconds_bucket{sensor="PACE",le="1"}`:    2,
		`dyflow_lag_seconds_bucket{sensor="PACE",le="+Inf"}`: 3,
		`dyflow_lag_seconds_sum{sensor="PACE"}`:              4,
		`dyflow_lag_seconds_count{sensor="PACE"}`:            3,
	}
	for k, want := range expect {
		got, ok := samples[k]
		if !ok {
			t.Errorf("missing series %q in exposition:\n%s", k, buf.String())
			continue
		}
		if got != want {
			t.Errorf("series %q = %v, want %v", k, got, want)
		}
	}
	// TYPE headers present for every family.
	for _, typ := range []string{
		"# TYPE dyflow_ops_total counter",
		"# TYPE dyflow_free_cores gauge",
		"# TYPE dyflow_lag_seconds histogram",
	} {
		if !strings.Contains(buf.String(), typ) {
			t.Errorf("exposition missing %q", typ)
		}
	}
}

func TestPrometheusDeterministicOrder(t *testing.T) {
	render := func() string {
		reg := NewRegistry()
		// Register in one order, populate in another.
		reg.Gauge("z_gauge", "z").With().Set(1)
		c := reg.Counter("a_total", "a", "k")
		c.With("y").Inc()
		c.With("x").Inc()
		var buf strings.Builder
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("exposition not deterministic:\n%s\n--- vs ---\n%s", a, b)
	}
}

func TestJSONSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dyflow_x_total", "x", "k").With("v").Add(5)
	reg.Histogram("dyflow_h_seconds", "h", []float64{1}).With().Observe(0.5)
	snap := reg.Snapshot()
	if len(snap.Metrics) != 2 {
		t.Fatalf("snapshot has %d families, want 2", len(snap.Metrics))
	}
	// Sorted by name: dyflow_h_seconds first.
	if snap.Metrics[0].Name != "dyflow_h_seconds" || snap.Metrics[1].Name != "dyflow_x_total" {
		t.Fatalf("unexpected family order: %s, %s", snap.Metrics[0].Name, snap.Metrics[1].Name)
	}
	hs := snap.Metrics[0].Series[0]
	if hs.Count != 1 || hs.Sum != 0.5 || len(hs.Buckets) != 2 {
		t.Fatalf("histogram series snapshot wrong: %+v", hs)
	}
	cs := snap.Metrics[1].Series[0]
	if cs.Value != 5 || cs.Labels["k"] != "v" {
		t.Fatalf("counter series snapshot wrong: %+v", cs)
	}
}

func TestHTTPHandlers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dyflow_served_total", "served").With().Add(3)
	srv := httptest.NewServer(MetricsHandler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples := parsePromText(t, resp.Body)
	if samples["dyflow_served_total"] != 3 {
		t.Fatalf("served = %v, want 3", samples["dyflow_served_total"])
	}

	jsrv := httptest.NewServer(JSONHandler(reg))
	defer jsrv.Close()
	jresp, err := http.Get(jsrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	body, err := io.ReadAll(jresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"dyflow_served_total"`) {
		t.Fatalf("JSON snapshot missing metric: %s", body)
	}
}

// TestConcurrentAccess hammers a registry from many goroutines while a
// reader scrapes it — the `dyflow-exp serve` access pattern — and relies
// on `go test -race` to flag unsynchronized access.
func TestConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := reg.Counter("dyflow_conc_total", "c", "w")
			g := reg.Gauge("dyflow_conc_gauge", "g")
			h := reg.Histogram("dyflow_conc_seconds", "h", nil, "w")
			label := fmt.Sprintf("w%d", i%4)
			for j := 0; j < 500; j++ {
				c.With(label).Inc()
				g.With().Add(1)
				h.With(label).Observe(float64(j) / 100)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = reg.WritePrometheus(io.Discard)
				_, _ = reg.Value("dyflow_conc_total")
			}
		}()
	}
	wg.Wait()
	if v, _ := reg.Value("dyflow_conc_total"); v != 8*500 {
		t.Fatalf("final count = %v, want %d", v, 8*500)
	}
	if v, _ := reg.Value("dyflow_conc_gauge"); v != 8*500 {
		t.Fatalf("final gauge = %v, want %d", v, 8*500)
	}
}
