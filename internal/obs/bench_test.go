package obs

import (
	"io"
	"testing"
)

// The registry sits on every hot path the orchestrator has — bus sends,
// sensor ships, stage counters — so the handle operations must stay
// allocation-free and the label resolution cheap. `make bench` exports
// these numbers to BENCH_obs.json.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "", "k").With("v")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "", "k").With("v")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil, "k").With("v")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 100)
	}
}

func BenchmarkVecWith(b *testing.B) {
	vec := NewRegistry().Counter("bench_labeled_total", "", "sensor")
	labels := []string{"PACE", "STATUS", "NSTEPS", "SELF"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vec.With(labels[i%len(labels)]).Inc()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	reg := NewRegistry()
	for _, sensor := range []string{"PACE", "STATUS", "NSTEPS", "SELF"} {
		h := reg.Histogram("bench_lag_seconds", "", nil, "sensor").With(sensor)
		for i := 0; i < 100; i++ {
			h.Observe(float64(i) / 10)
		}
		reg.Counter("bench_events_total", "", "sensor").With(sensor).Add(100)
		reg.Gauge("bench_depth", "", "sensor").With(sensor).Set(float64(len(sensor)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
