// Package obs is DYFLOW's unified metrics registry: typed, labeled
// counters, gauges, and fixed-bucket histograms shared by all four
// orchestration stages and the substrate packages (resmgr, wms, stream,
// cluster). It replaces the flight recorder's unbounded latency-sample
// slices with bounded histogram storage and adds live exposition: the
// Prometheus text format for scraping (`dyflow-exp serve`) and a JSON
// snapshot for programmatic export.
//
// Storage is lock-free on the hot path: counters and gauges are atomics,
// histogram buckets are atomic counters, and the registry mutex is taken
// only when resolving a (family, label-set) handle. That makes every
// metric safe to read from an HTTP goroutine while the single-threaded
// simulation mutates it — the property `dyflow-exp serve` relies on.
//
// All constructors and methods are nil-receiver safe, mirroring
// trace.Recorder: instrumented packages call them unconditionally and a
// nil registry records nothing.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType classifies a metric family.
type MetricType string

// The three supported family types (matching Prometheus TYPE names).
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// labelSep joins label values into a series key; it cannot appear in a
// label value that survives escaping (0xff is invalid UTF-8).
const labelSep = "\xff"

// Registry holds metric families keyed by name. One registry serves one
// orchestrated world.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order (exposition sorts anyway)
}

type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64 // histogram upper bounds (ascending)

	mu     sync.Mutex
	series map[string]any // labelKey -> *Counter | *Gauge | *Histogram
	keys   []string       // series keys in creation order
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family resolves or creates a metric family, enforcing that re-registering
// a name keeps its type and label arity (a programmer error otherwise).
func (r *Registry) family(name, help string, typ MetricType, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]any),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or resolves) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, TypeCounter, nil, labels)}
}

// Gauge registers (or resolves) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, TypeGauge, nil, labels)}
}

// Histogram registers (or resolves) a histogram family with fixed bucket
// upper bounds (ascending; an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets()
	}
	return &HistogramVec{f: r.family(name, help, TypeHistogram, buckets, labels)}
}

// with resolves a series handle within a family, creating it on first use.
func (f *family) with(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
		f.keys = append(f.keys, key)
	}
	return s
}

// CounterVec is a labeled counter family handle.
type CounterVec struct{ f *family }

// With resolves the counter for one label-value tuple.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.with(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a labeled gauge family handle.
type GaugeVec struct{ f *family }

// With resolves the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.with(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a labeled histogram family handle.
type HistogramVec struct{ f *family }

// With resolves the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	f := v.f
	return f.with(values, func() any { return NewHistogram(f.buckets) }).(*Histogram)
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored — counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. Bucket intervals
// follow the Prometheus `le` convention: an observation v lands in the
// first bucket whose upper bound is >= v (bounds are inclusive); values
// above every bound land in the implicit +Inf overflow bucket. Count, Sum,
// and Max are tracked exactly; quantiles are bucket-resolution estimates.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	maxBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram creates a standalone (unregistered) histogram with the
// given ascending upper bounds — the storage type trace.Recorder uses for
// its latency distributions. Passing nil uses DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// DefaultLatencyBuckets returns the bucket bounds (in seconds) used for
// orchestrator latency distributions: 1ms to 10min, roughly logarithmic.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5,
		1, 2.5, 5, 10, 30, 60, 120, 300, 600,
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Max returns the largest observation (0 with no observations).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Mean returns the arithmetic mean (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile with the nearest-rank convention
// (rank = ceil(q*n), the same convention trace.percentile documents): it
// returns the upper bound of the bucket containing that rank. Ranks that
// fall in the +Inf overflow bucket return Max(), the exactly-tracked
// largest observation. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return h.bounds[i]
		}
	}
	return h.Max()
}

// SeriesSnapshot is one labeled series in a Snapshot.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter or gauge value.
	Value float64 `json:"value,omitempty"`
	// Histogram payload.
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Max     float64   `json:"max,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
}

// MetricSnapshot is one family in a Snapshot.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Type   MetricType       `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is the registry's JSON-marshalable state.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// snapshotLocked walks families in sorted name order, series in sorted
// label order, so equal states render byte-identical snapshots.
func (r *Registry) snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make(map[string]*family, len(names))
	for _, n := range names {
		fams[n] = r.families[n]
	}
	r.mu.Unlock()
	sort.Strings(names)

	var snap Snapshot
	for _, name := range names {
		f := fams[name]
		ms := MetricSnapshot{Name: f.name, Type: f.typ, Help: f.help}
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		srs := make(map[string]any, len(keys))
		for _, k := range keys {
			srs[k] = f.series[k]
		}
		f.mu.Unlock()
		sort.Strings(keys)
		for _, k := range keys {
			ss := SeriesSnapshot{}
			if len(f.labels) > 0 {
				ss.Labels = make(map[string]string, len(f.labels))
				for i, v := range splitKey(k, len(f.labels)) {
					ss.Labels[f.labels[i]] = v
				}
			}
			switch s := srs[k].(type) {
			case *Counter:
				ss.Value = float64(s.Value())
			case *Gauge:
				ss.Value = s.Value()
			case *Histogram:
				ss.Count = s.Count()
				ss.Sum = s.Sum()
				ss.Max = s.Max()
				ss.Bounds = s.Bounds()
				ss.Buckets = s.BucketCounts()
			}
			ms.Series = append(ms.Series, ss)
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	return snap
}

// Snapshot returns the registry's current state for programmatic use.
func (r *Registry) Snapshot() Snapshot { return r.snapshot() }

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Value returns the sum of a family's series values: counter and gauge
// families sum the per-series values, histogram families sum the counts.
// ok is false for unregistered names. This is the lookup the dyflow
// self-monitoring sensor source resolves metric names through.
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	f.mu.Lock()
	srs := make([]any, 0, len(f.series))
	for _, s := range f.series {
		srs = append(srs, s)
	}
	f.mu.Unlock()
	var total float64
	for _, s := range srs {
		switch s := s.(type) {
		case *Counter:
			total += float64(s.Value())
		case *Gauge:
			total += s.Value()
		case *Histogram:
			total += float64(s.Count())
		}
	}
	return total, true
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, one line per series,
// histogram series expanded into cumulative _bucket/_sum/_count lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.snapshot().WritePrometheus(w)
}

// WithLabel returns a copy of the snapshot with an extra label on every
// series. The fleet coordinator uses it to tag a worker's pushed snapshot
// with `worker="<id>"` before merging it into the fleet-wide exposition.
// An existing label with the same key is overwritten.
func (snap Snapshot) WithLabel(key, value string) Snapshot {
	out := Snapshot{Metrics: make([]MetricSnapshot, len(snap.Metrics))}
	for i, m := range snap.Metrics {
		fm := m
		fm.Series = make([]SeriesSnapshot, len(m.Series))
		for j, s := range m.Series {
			fs := s
			fs.Labels = make(map[string]string, len(s.Labels)+1)
			for k, v := range s.Labels {
				fs.Labels[k] = v
			}
			fs.Labels[key] = value
			fm.Series[j] = fs
		}
		out.Metrics[i] = fm
	}
	return out
}

// MergeSnapshots combines snapshots into one: families are matched by
// name (type/help from the first appearance) and their series
// concatenated. Callers are expected to disambiguate colliding series
// with WithLabel first; no values are summed. The result keeps families
// sorted by name, so merging sorted inputs stays byte-deterministic.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	byName := make(map[string]*MetricSnapshot)
	var names []string
	for _, snap := range snaps {
		for _, m := range snap.Metrics {
			f, ok := byName[m.Name]
			if !ok {
				cp := MetricSnapshot{Name: m.Name, Type: m.Type, Help: m.Help}
				byName[m.Name] = &cp
				f = &cp
				names = append(names, m.Name)
			}
			f.Series = append(f.Series, m.Series...)
		}
	}
	sort.Strings(names)
	out := Snapshot{Metrics: make([]MetricSnapshot, 0, len(names))}
	for _, n := range names {
		out.Metrics = append(out.Metrics, *byName[n])
	}
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format — the same rendering Registry.WritePrometheus delegates to, so a
// merged fleet snapshot and a live registry expose identically.
func (snap Snapshot) WritePrometheus(w io.Writer) error {
	for _, m := range snap.Metrics {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(m.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
			return err
		}
		for _, s := range m.Series {
			if m.Type == TypeHistogram {
				if err := writePromHistogram(w, m.Name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabels(s.Labels, "", 0), fmtFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s SeriesSnapshot) error {
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.Labels, "le", b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.Labels, "le", math.Inf(1)), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(s.Labels, "", 0), fmtFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.Labels, "", 0), s.Count)
	return err
}

// promLabels renders a label set (plus an optional le bound) as
// {k="v",...}, keys sorted, or "" when empty.
func promLabels(labels map[string]string, le string, bound float64) string {
	keys := make([]string, 0, len(labels)+1)
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, escapeLabel(labels[k]))
	}
	if le != "" {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		leVal := "+Inf"
		if !math.IsInf(bound, 1) {
			leVal = fmtFloat(bound)
		}
		fmt.Fprintf(&b, "%s=%q", le, leVal)
	}
	if b.Len() == 0 {
		return ""
	}
	return "{" + b.String() + "}"
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value per the exposition format. %q in
// promLabels already escapes quotes and backslashes; newlines are the only
// extra concern and %q handles them too, so this just strips the raw value
// of the separator byte that can never round-trip.
func escapeLabel(v string) string { return strings.ReplaceAll(v, labelSep, "") }

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, "\\", "\\\\")
	return strings.ReplaceAll(v, "\n", "\\n")
}

func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, labelSep, n)
}
