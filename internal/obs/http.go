package obs

import "net/http"

// MetricsHandler serves the registry in the Prometheus text exposition
// format — the /metrics endpoint of `dyflow-exp serve`.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry's JSON snapshot — the /metrics.json
// endpoint of `dyflow-exp serve`.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}
