package sim

import (
	"fmt"
	"runtime/debug"
	"time"
)

// Proc is a simulated process: a goroutine that advances only while it holds
// the kernel's baton. Exactly one process runs at any moment; a process that
// blocks (Sleep, Wait, queue operations, ...) yields the baton back to the
// kernel, which resumes it later in event order.
//
// All Proc methods except Interrupt, Done, Err and Name must be called from
// the process's own goroutine (i.e. from inside the function passed to
// Spawn). Interrupt may be called from kernel context or from another
// running process.
type Proc struct {
	sim  *Sim
	pid  uint64
	name string

	resume chan error // kernel -> proc: wake value (nil, or the wake error)
	yield  chan bool  // proc -> kernel: true when the process has terminated

	done bool
	err  error // panic converted to error, nil on normal exit

	// Blocked-state bookkeeping. Invariant: parked is true exactly while
	// the process is registered on some wait structure with no wake
	// scheduled yet. Every wake path claims the process by deregistering
	// it, clearing parked, and scheduling a same-instant wake event; the
	// claim is recorded in pendingWake so a later claimant (Interrupt,
	// Stop) can supersede the scheduled wake instead of double-resuming.
	parked      bool
	cancelWait  func() // deregisters the proc from whatever it waits on
	wakeEvent   *Event // pending timer wake (Sleep / WaitTimeout), if any
	pendingWake *Event // scheduled wake event claiming this proc, if any
	pending     error  // interrupt delivered while the proc was runnable

	// Interrupt-loss accounting: a runnable process retains at most one
	// pending interrupt; later causes are counted and the last one kept.
	droppedInterrupts int
	lastDropped       error

	lastWakeBySignal bool // set when the wake came from a Signal broadcast

	doneSig *Signal
	body    func(*Proc)
	// guard, when set, absorbs a panic in the body: the process exits
	// normally and the handler runs instead of the simulation failing.
	guard func(recovered any)
}

// Spawn creates a process named name running fn and schedules it to start at
// the current instant. The returned Proc can be joined, interrupted, and
// inspected.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		pid:    s.nextPID,
		name:   name,
		resume: make(chan error),
		yield:  make(chan bool),
		body:   fn,
	}
	p.doneSig = NewSignal(s)
	s.nextPID++
	s.procs[p.pid] = p

	go p.run()

	// The new process starts parked; its first wake is a normal wake event.
	// parked stays true while the claim is outstanding so an Interrupt
	// arriving before the first wake supersedes it (scheduleWake cancels
	// the claimed event) instead of being lost.
	p.parked = true
	if s.stopped {
		// No further events run; release the goroutine immediately.
		p.forceWake(ErrStopped)
		return p
	}
	e := s.newEvent(s.now)
	e.kind = evWake
	e.proc = p
	p.pendingWake = e
	return p
}

// SpawnGuarded is Spawn with a panic guard: if the process body panics, the
// panic is absorbed instead of failing the whole simulation — the process
// exits normally and onPanic runs with the recovered value, still holding
// the process's turn (so it may schedule events, e.g. a supervised
// restart). onPanic must not call blocking process operations.
func (s *Sim) SpawnGuarded(name string, fn func(p *Proc), onPanic func(recovered any)) *Proc {
	p := s.Spawn(name, fn)
	p.guard = onPanic
	return p
}

// run is the goroutine body: it parks until the kernel's first wake, runs
// the body, and reports termination.
func (p *Proc) run() {
	err := <-p.resume // first wake; non-nil only if stopped before starting
	if err == nil {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if p.guard != nil {
						p.sim.logf("proc %q panicked (guarded): %v", p.name, r)
						p.guard(r)
						return
					}
					p.err = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}()
			p.body(p)
		}()
	}
	p.done = true
	if p.err != nil {
		p.sim.fail(p.err)
	}
	p.sim.logf("proc %q exits", p.name)
	delete(p.sim.procs, p.pid)
	p.doneSig.Broadcast()
	p.yield <- true
}

// handoff passes the baton to the process and blocks until it yields. It
// must run in kernel context (from an event callback or Stop).
func (p *Proc) handoff(err error) {
	if p.done {
		return
	}
	prev := p.sim.current
	p.sim.current = p
	p.sim.handoffs++
	p.resume <- err
	<-p.yield
	p.sim.current = prev
}

// scheduleWake claims a parked process and schedules its resumption at the
// current instant with the given wake value. It is safe to call from kernel
// context or from another running process; calling it on a process that is
// not parked (already claimed, runnable, or done) is a no-op — except that
// an Interrupt may supersede an existing claim (see Interrupt).
func (p *Proc) scheduleWake(err error, bySignal bool) {
	if p.done || !p.parked {
		return
	}
	if p.cancelWait != nil {
		p.cancelWait()
		p.cancelWait = nil
	}
	if p.wakeEvent != nil {
		p.sim.cancelInternal(p.wakeEvent)
		p.wakeEvent = nil
	}
	if p.pendingWake != nil {
		// Supersede an existing claim (a Spawn's first wake raced an
		// Interrupt at the same instant): the new wake value wins and the
		// old event is removed from the schedule.
		p.sim.cancelInternal(p.pendingWake)
		p.pendingWake = nil
	}
	p.parked = false
	e := p.sim.newEvent(p.sim.now)
	e.kind = evWake
	e.proc = p
	e.werr = err
	e.bySignal = bySignal
	p.pendingWake = e
}

// forceWake synchronously wakes a parked process with err, bypassing the
// event queue. Used by Stop, after which no further events execute.
func (p *Proc) forceWake(err error) {
	if p.done || !p.parked {
		return
	}
	if p.cancelWait != nil {
		p.cancelWait()
		p.cancelWait = nil
	}
	if p.wakeEvent != nil {
		p.sim.cancelInternal(p.wakeEvent)
		p.wakeEvent = nil
	}
	if p.pendingWake != nil {
		p.sim.cancelInternal(p.pendingWake)
		p.pendingWake = nil
	}
	p.parked = false
	p.handoff(err)
}

// timerFire resumes a parked process whose timer elapsed. It runs in kernel
// context, directly from step: a Sleep costs one pooled event and one
// handoff, with no trampoline closure or second wake event.
func (p *Proc) timerFire() {
	if p.cancelWait != nil {
		p.cancelWait()
		p.cancelWait = nil
	}
	p.parked = false
	p.lastWakeBySignal = false
	p.handoff(nil)
}

// block parks the process until a wake arrives. register runs in process
// context before yielding and must arrange a future wake (a timer via
// p.wakeEvent, or a wait-list entry whose waker calls scheduleWake); cancel
// (which may be nil) must undo the wait-list registration. block returns
// the wake value: nil for a normal wake, an ErrInterrupted-wrapped error
// for interrupts, or ErrStopped at shutdown.
func (p *Proc) block(register func(), cancel func()) error {
	if p.sim.current != p {
		panic(fmt.Sprintf("sim: blocking call on process %q from outside its goroutine", p.name))
	}
	if p.sim.stopped {
		return ErrStopped
	}
	if p.pending != nil {
		err := p.pending
		p.pending = nil
		return err
	}
	register()
	p.parked = true
	p.cancelWait = cancel
	p.sim.current = nil
	p.yield <- false  // give the baton back to the kernel
	err := <-p.resume // parked until a wake handoff
	return err
}

// Sim returns the simulation the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Done reports whether the process has terminated.
func (p *Proc) Done() bool { return p.done }

// Err returns the process's failure (a converted panic), or nil.
func (p *Proc) Err() error { return p.err }

// Sleep suspends the process for d of virtual time. It returns nil after
// the full duration has elapsed, or an interrupt/stop error delivered while
// sleeping — in which case less than d may have elapsed (use Now to compute
// the remainder).
func (p *Proc) Sleep(d time.Duration) error {
	if d < 0 {
		d = 0
	}
	return p.block(
		func() {
			e := p.sim.newEvent(p.sim.now + d)
			e.kind = evTimer
			e.proc = p
			p.wakeEvent = e
		},
		nil,
	)
}

// SleepUninterruptible suspends the process for d of virtual time, absorbing
// interrupts: if interrupted, it keeps sleeping the remainder and returns
// the first interrupt error only after the full duration has elapsed. Only a
// simulation stop cuts it short. This models work that must run to
// completion, e.g. a task finishing its current timestep after SIGTERM.
func (p *Proc) SleepUninterruptible(d time.Duration) error {
	deadline := p.sim.now + d
	var first error
	for {
		remaining := deadline - p.sim.now
		if remaining <= 0 {
			return first
		}
		err := p.Sleep(remaining)
		switch {
		case err == nil:
			return first
		case Interrupted(err):
			if first == nil {
				first = err
			}
		default: // stopped
			return err
		}
	}
}

// Interrupt delivers cause (wrapped in ErrInterrupted) to the process. If
// the process is blocked, its blocking call returns immediately with the
// interrupt; if it is runnable, its next blocking call returns it. cause may
// be nil.
//
// At-most-one semantics: a runnable process retains only ONE pending
// interrupt — the first. Later causes delivered before the process blocks
// again are NOT queued; Interrupt reports the loss by returning false, and
// the dropped cause is recorded (deterministically, in delivery order) and
// readable via DroppedInterrupts/LastDroppedInterrupt. Interrupting a
// terminated process is also a drop (returns false).
func (p *Proc) Interrupt(cause error) bool {
	if p.done {
		return false
	}
	err := ErrInterrupted
	if cause != nil {
		err = fmt.Errorf("%w: %w", ErrInterrupted, cause)
	}
	if p.parked {
		p.scheduleWake(err, false)
		return true
	}
	if p.pending == nil {
		p.pending = err
		return true
	}
	p.droppedInterrupts++
	p.lastDropped = err
	return false
}

// DroppedInterrupts returns the number of interrupt causes dropped because
// the process was runnable and already had a pending interrupt.
func (p *Proc) DroppedInterrupts() int { return p.droppedInterrupts }

// LastDroppedInterrupt returns the most recently dropped interrupt error
// (already ErrInterrupted-wrapped), or nil if none was dropped.
func (p *Proc) LastDroppedInterrupt() error { return p.lastDropped }

// Join blocks until other terminates. It returns nil once other has
// terminated, or the interrupt/stop error delivered while waiting.
func (p *Proc) Join(other *Proc) error {
	if other.done {
		return nil
	}
	return p.Wait(other.doneSig)
}

// Wait blocks until sig is broadcast. It returns nil on a broadcast wake, or
// the interrupt/stop error delivered while waiting.
func (p *Proc) Wait(sig *Signal) error {
	return p.block(
		func() { sig.enqueue(p) },
		func() { sig.dequeue(p) },
	)
}

// WaitTimeout blocks until sig is broadcast or d elapses. It returns
// (true, nil) on a broadcast wake, (false, nil) on timeout, and (false, err)
// if interrupted or stopped. Whichever side loses the race is canceled
// eagerly: a signal wake removes the timer event from the heap immediately,
// so cancel-heavy loops do not grow the schedule.
func (p *Proc) WaitTimeout(sig *Signal, d time.Duration) (bool, error) {
	err := p.block(
		func() {
			sig.enqueue(p)
			e := p.sim.newEvent(p.sim.now + d)
			e.kind = evTimer
			e.proc = p
			p.wakeEvent = e
		},
		func() { sig.dequeue(p) },
	)
	if err != nil {
		return false, err
	}
	fired := p.lastWakeBySignal
	p.lastWakeBySignal = false
	return fired, nil
}
