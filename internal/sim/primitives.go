package sim

// This file provides the synchronization primitives simulated processes
// coordinate with: broadcast Signals, bounded FIFO Queues, and counting
// Resources. All of them wake waiters in FIFO order through the event queue,
// preserving determinism.

// Signal is a broadcast condition: processes Wait on it and every waiter is
// woken by the next Broadcast. There is no memory — a Broadcast with no
// waiters is lost (latch on top of it if needed).
type Signal struct {
	sim     *Sim
	waiters []*Proc
	scratch []*Proc // recycled backing array for the next waiters list
}

// NewSignal creates a Signal bound to s.
func NewSignal(s *Sim) *Signal { return &Signal{sim: s} }

func (sig *Signal) enqueue(p *Proc) { sig.waiters = append(sig.waiters, p) }

func (sig *Signal) dequeue(p *Proc) {
	for i, w := range sig.waiters {
		if w == p {
			sig.waiters = append(sig.waiters[:i], sig.waiters[i+1:]...)
			return
		}
	}
}

// Broadcast wakes every process currently waiting on the signal, in the
// order they started waiting. The waiter list is detached before iterating
// (a wake may deregister other procs from this signal) and its backing
// array is recycled, so steady-state Broadcast does not allocate.
func (sig *Signal) Broadcast() {
	if len(sig.waiters) == 0 {
		return
	}
	waiters := sig.waiters
	if sig.scratch != nil {
		sig.waiters = sig.scratch[:0]
	} else {
		sig.waiters = nil
	}
	for _, w := range waiters {
		w.scheduleWake(nil, true)
	}
	for i := range waiters {
		waiters[i] = nil
	}
	sig.scratch = waiters[:0]
}

// Waiters reports how many processes are currently waiting on the signal.
func (sig *Signal) Waiters() int { return len(sig.waiters) }

// Queue is a FIFO channel between simulated processes. A capacity of zero or
// less means unbounded. Put blocks while the queue is full; Get blocks while
// it is empty. Items are delivered in insertion order.
type Queue[T any] struct {
	sim      *Sim
	cap      int
	items    []T
	notEmpty *Signal
	notFull  *Signal
	closed   bool
}

// NewQueue creates a queue with the given capacity (<= 0 for unbounded).
func NewQueue[T any](s *Sim, capacity int) *Queue[T] {
	return &Queue[T]{
		sim:      s,
		cap:      capacity,
		notEmpty: NewSignal(s),
		notFull:  NewSignal(s),
	}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the queue capacity (<= 0 means unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

func (q *Queue[T]) full() bool { return q.cap > 0 && len(q.items) >= q.cap }

// ErrClosed is returned by queue operations on a closed queue.
var ErrClosed = errorString("sim: queue closed")

type errorString string

func (e errorString) Error() string { return string(e) }

// Close marks the queue closed: pending and future Puts fail, Gets drain the
// remaining items and then fail.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Closed reports whether the queue has been closed.
func (q *Queue[T]) Closed() bool { return q.closed }

// Put appends v, blocking the calling process while the queue is full. It
// returns ErrClosed if the queue is (or becomes) closed, or the
// interrupt/stop error delivered while blocked.
func (q *Queue[T]) Put(p *Proc, v T) error {
	for {
		if q.closed {
			return ErrClosed
		}
		if !q.full() {
			q.items = append(q.items, v)
			q.notEmpty.Broadcast()
			return nil
		}
		if err := p.Wait(q.notFull); err != nil {
			return err
		}
	}
}

// TryPut appends v without blocking. It reports whether the item was
// accepted (false when full or closed).
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || q.full() {
		return false
	}
	q.items = append(q.items, v)
	q.notEmpty.Broadcast()
	return true
}

// Get removes and returns the oldest item, blocking the calling process
// while the queue is empty. It returns ErrClosed once the queue is closed
// and drained, or the interrupt/stop error delivered while blocked.
func (q *Queue[T]) Get(p *Proc) (T, error) {
	var zero T
	for {
		if len(q.items) > 0 {
			v := q.items[0]
			q.items = q.items[1:]
			q.notFull.Broadcast()
			return v, nil
		}
		if q.closed {
			return zero, ErrClosed
		}
		if err := p.Wait(q.notEmpty); err != nil {
			return zero, err
		}
	}
}

// GetAll blocks until at least one item is available and then removes and
// returns every buffered item, appending to buf (pass buf[:0] to recycle a
// batch buffer across calls). A burst of N same-instant deliveries costs
// one kernel→process handoff instead of N. It returns ErrClosed once the
// queue is closed and drained, or the interrupt/stop error delivered while
// blocked.
func (q *Queue[T]) GetAll(p *Proc, buf []T) ([]T, error) {
	for {
		if len(q.items) > 0 {
			buf = append(buf, q.items...)
			var zero T
			for i := range q.items {
				q.items[i] = zero
			}
			q.items = q.items[:0]
			q.notFull.Broadcast()
			return buf, nil
		}
		if q.closed {
			return buf, ErrClosed
		}
		if err := p.Wait(q.notEmpty); err != nil {
			return buf, err
		}
	}
}

// TryGet removes and returns the oldest item without blocking. ok is false
// when the queue is empty.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.notFull.Broadcast()
	return v, true
}

// Items returns a copy of the buffered items in delivery order without
// consuming them (checkpoint inspection; the live queue is untouched).
func (q *Queue[T]) Items() []T {
	return append([]T(nil), q.items...)
}

// Drain removes and returns all buffered items without blocking.
func (q *Queue[T]) Drain() []T {
	items := q.items
	q.items = nil
	if len(items) > 0 {
		q.notFull.Broadcast()
	}
	return items
}

// Resource is a counting semaphore over identical units (e.g. CPU cores in
// a coarse model). Acquire blocks until the requested units are available.
// Waiters are served strictly FIFO, so a large request is not starved by a
// stream of small ones.
type Resource struct {
	sim      *Sim
	capacity int
	inUse    int
	changed  *Signal
	pending  []*resWaiter // FIFO of outstanding Acquire requests
}

type resWaiter struct{ n int }

// NewResource creates a resource with capacity total units.
func NewResource(s *Sim, capacity int) *Resource {
	if capacity < 0 {
		capacity = 0
	}
	return &Resource{sim: s, capacity: capacity, changed: NewSignal(s)}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently acquired units.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// Acquire blocks the calling process until n units are available and claims
// them. Requests are served FIFO. It returns the interrupt/stop error
// delivered while blocked; on error no units are held.
func (r *Resource) Acquire(p *Proc, n int) error {
	if n <= 0 {
		return nil
	}
	if n > r.capacity {
		return errorString("sim: resource request exceeds capacity")
	}
	w := &resWaiter{n: n}
	r.pending = append(r.pending, w)
	for {
		if len(r.pending) > 0 && r.pending[0] == w && r.capacity-r.inUse >= n {
			r.inUse += n
			r.pending = r.pending[1:]
			r.changed.Broadcast() // later waiters may also fit
			return nil
		}
		if err := p.Wait(r.changed); err != nil {
			for i, pw := range r.pending {
				if pw == w {
					r.pending = append(r.pending[:i], r.pending[i+1:]...)
					break
				}
			}
			r.changed.Broadcast() // our departure may unblock the new head
			return err
		}
	}
}

// TryAcquire claims n units if they are immediately available and no earlier
// request is waiting. It reports whether the units were claimed.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 {
		return true
	}
	if len(r.pending) > 0 || r.capacity-r.inUse < n {
		return false
	}
	r.inUse += n
	return true
}

// Release returns n units to the resource and wakes waiters.
func (r *Resource) Release(n int) {
	if n <= 0 {
		return
	}
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Resource.Release below zero")
	}
	r.changed.Broadcast()
}
