package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures the kernel's raw event dispatch rate.
func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			s.After(time.Millisecond, tick)
		}
	}
	s.After(time.Millisecond, tick)
	b.ResetTimer()
	if err := s.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcContextSwitch measures the coroutine handoff cost (one
// sleep-wake round trip per iteration).
func BenchmarkProcContextSwitch(b *testing.B) {
	s := New(1)
	s.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueHandoff measures producer/consumer rendezvous through a
// bounded queue.
func BenchmarkQueueHandoff(b *testing.B) {
	s := New(1)
	q := NewQueue[int](s, 4)
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if q.Put(p, i) != nil {
				return
			}
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		for {
			if _, err := q.Get(p); err != nil {
				return
			}
		}
	})
	b.ResetTimer()
	if err := s.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFanOutProcs measures scheduling many concurrent processes.
func BenchmarkFanOutProcs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(int64(i))
		for j := 0; j < 200; j++ {
			d := time.Duration(j%17+1) * time.Millisecond
			s.Spawn("w", func(p *Proc) {
				for k := 0; k < 10; k++ {
					if p.Sleep(d) != nil {
						return
					}
				}
			})
		}
		if err := s.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
}
