package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures the kernel's raw event dispatch rate.
func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			s.After(time.Millisecond, tick)
		}
	}
	s.After(time.Millisecond, tick)
	b.ResetTimer()
	if err := s.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Dispatched())/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkCancelHeavy measures schedule/cancel churn: every iteration
// schedules a far-future timer and cancels it, the WaitTimeout pattern.
// Eager removal keeps the heap at depth ~1 instead of accumulating
// tombstones.
func BenchmarkCancelHeavy(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		e := s.After(time.Hour, func() {})
		e.Cancel()
	}
	if s.Pending() != 0 {
		b.Fatalf("heap not empty: %d", s.Pending())
	}
}

// BenchmarkProcContextSwitch measures the coroutine handoff cost (one
// sleep-wake round trip per iteration).
func BenchmarkProcContextSwitch(b *testing.B) {
	s := New(1)
	s.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Handoffs())/float64(b.N), "handoffs/op")
	b.ReportMetric(float64(s.Dispatched())/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkQueueHandoff measures producer/consumer rendezvous through a
// bounded queue.
func BenchmarkQueueHandoff(b *testing.B) {
	s := New(1)
	q := NewQueue[int](s, 4)
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if q.Put(p, i) != nil {
				return
			}
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		for {
			if _, err := q.Get(p); err != nil {
				return
			}
		}
	})
	b.ResetTimer()
	if err := s.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Handoffs())/float64(b.N), "handoffs/op")
}

// BenchmarkQueueBurstDrain measures the batched consumption path: the
// producer enqueues same-instant bursts, the consumer drains each burst
// with one GetAll wake. handoffs/op is the headline: ~2/burst instead of
// 2/item.
func BenchmarkQueueBurstDrain(b *testing.B) {
	const burst = 32
	s := New(1)
	q := NewQueue[int](s, 0)
	rounds := (b.N + burst - 1) / burst
	s.Spawn("producer", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			for i := 0; i < burst; i++ {
				q.TryPut(i)
			}
			if p.Sleep(time.Millisecond) != nil {
				return
			}
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		var buf []int
		for {
			items, err := q.GetAll(p, buf[:0])
			if err != nil {
				return
			}
			buf = items
		}
	})
	b.ResetTimer()
	if err := s.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Handoffs())/float64(b.N), "handoffs/op")
}

// BenchmarkFanOutProcs measures scheduling many concurrent processes.
func BenchmarkFanOutProcs(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		s := New(int64(i))
		for j := 0; j < 200; j++ {
			d := time.Duration(j%17+1) * time.Millisecond
			s.Spawn("w", func(p *Proc) {
				for k := 0; k < 10; k++ {
					if p.Sleep(d) != nil {
						return
					}
				}
			})
		}
		if err := s.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
		events += s.Dispatched()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}
