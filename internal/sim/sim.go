// Package sim implements a deterministic discrete-event simulation (DES)
// kernel. It is the substrate on which the entire DYFLOW reproduction runs:
// the simulated cluster, the simulated MPI tasks, the monitoring transport,
// and the DYFLOW orchestration stages all advance on the kernel's virtual
// clock.
//
// The kernel supports two styles of simulated activity:
//
//   - plain events: callbacks scheduled at an absolute or relative virtual
//     time, executed in the kernel goroutine;
//   - processes (Proc): goroutines that run in strict handoff with the
//     kernel — exactly one process runs at a time, and a blocked process is
//     resumed in event-heap order — giving SimPy-style readable process code
//     while keeping every run fully deterministic.
//
// All time is virtual. Time is an absolute instant (a Duration since the
// start of the run); durations are time.Duration. Events that fire at the
// same instant execute in scheduling order (a monotonically increasing
// sequence number breaks ties), so a run is a pure function of its inputs
// and seed.
//
// The event loop is the hot path of every experiment, so it avoids
// per-event allocation and indirection: Event structs are recycled through
// a free-list, the heap is a hand-rolled binary heap with inlined
// comparisons (no container/heap interface dispatch), canceled events are
// removed eagerly rather than tombstoned, and process timer wakes resume
// the process directly from the kernel instead of scheduling a second
// trampoline event. See DESIGN.md §14.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is an absolute instant on the virtual clock, expressed as the
// duration elapsed since the start of the simulation.
type Time = time.Duration

// ErrInterrupted is returned from blocking process operations (Sleep, Wait,
// queue operations, ...) when another party calls Proc.Interrupt. The cause
// passed to Interrupt is wrapped and can be recovered with errors.Unwrap.
var ErrInterrupted = errors.New("sim: interrupted")

// ErrStopped is returned from blocking operations when the simulation is
// shut down while the process is still blocked.
var ErrStopped = errors.New("sim: simulation stopped")

// Interrupted reports whether err originates from a Proc.Interrupt call.
func Interrupted(err error) bool { return errors.Is(err, ErrInterrupted) }

// Event kinds. A pooled Event is one of:
const (
	evFunc  = iota // plain callback
	evCall         // callback taking one argument (closure-free scheduling)
	evWake         // resume a claimed process (scheduleWake)
	evTimer        // timer wake of a parked process (Sleep / WaitTimeout)
)

// Event is a pooled, scheduled kernel event. Events are owned by the kernel
// and recycled through a free-list after they fire or are canceled; user
// code never holds a *Event directly — At/After return an EventID handle
// whose generation counter makes stale cancels provably inert.
type Event struct {
	sim   *Sim
	at    Time
	seq   uint64
	gen   uint64 // bumped on release; EventIDs with an older gen are stale
	index int    // heap index, -1 when not scheduled

	kind     uint8
	bySignal bool  // evWake: wake was caused by a Signal broadcast
	fn       func()
	fn1      func(any)
	arg      any
	proc     *Proc // evWake / evTimer target
	werr     error // evWake value
}

// EventID is a cancelable handle to a scheduled event. The zero value is a
// valid no-op handle. Copies are cheap; Cancel on a handle whose event has
// already fired, been canceled, or been recycled for a different event is a
// no-op (the generation check makes this safe even though the underlying
// Event struct is pooled).
type EventID struct {
	e   *Event
	gen uint64
}

// Active reports whether the event is still scheduled to fire.
func (id EventID) Active() bool {
	return id.e != nil && id.e.gen == id.gen && id.e.index >= 0
}

// Time returns the virtual instant the event is scheduled to fire at, or 0
// if the handle is stale.
func (id EventID) Time() Time {
	if !id.Active() {
		return 0
	}
	return id.e.at
}

// Cancel removes the event from the schedule. Canceling an event that
// already fired (or was already canceled) is a no-op. Unlike a lazy
// tombstone, cancellation removes the event from the heap immediately, so
// cancel-heavy workloads (WaitTimeout under frequent broadcasts) keep the
// heap bounded.
func (id EventID) Cancel() {
	e := id.e
	if e == nil || e.gen != id.gen || e.index < 0 {
		return
	}
	s := e.sim
	s.heapRemove(e.index)
	s.release(e)
}

// Sim is a discrete-event simulation instance. The zero value is not usable;
// create instances with New.
//
// A Sim is not safe for concurrent use: the kernel, event callbacks, and the
// currently running process form a single logical thread of control.
type Sim struct {
	now     Time
	events  []*Event // binary min-heap ordered by (at, seq)
	free    []*Event // recycled Event structs
	seq     uint64
	rng     *rand.Rand
	procs   map[uint64]*Proc
	nextPID uint64
	stopped bool
	failure error
	current *Proc // process currently holding the baton, nil in kernel context

	dispatched uint64 // events executed by step
	handoffs   uint64 // kernel→process baton transfers

	// Logf, when non-nil, receives a human-readable trace of kernel
	// activity. Intended for debugging; experiments leave it nil.
	Logf func(format string, args ...any)
}

// New creates a simulation whose random source is seeded with seed. Two
// simulations constructed with the same seed and driven by the same calls
// produce identical schedules.
func New(seed int64) *Sim {
	return &Sim{
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[uint64]*Proc),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. It must only
// be used from kernel context or the currently running process.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Dispatched returns the number of events the kernel has executed.
func (s *Sim) Dispatched() uint64 { return s.dispatched }

// Handoffs returns the number of kernel→process baton transfers performed.
// A burst of N same-instant deliveries drained in one wake costs one
// handoff; the ratio Dispatched/Handoffs is the batching win.
func (s *Sim) Handoffs() uint64 { return s.handoffs }

// logf emits a kernel trace line if tracing is enabled.
func (s *Sim) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf("[%12s] %s", s.now, fmt.Sprintf(format, args...))
	}
}

// ---- event heap (hand-rolled: inlined comparisons, eager removal) ----

func (s *Sim) eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Sim) heapPush(e *Event) {
	e.index = len(s.events)
	s.events = append(s.events, e)
	s.siftUp(e.index)
}

func (s *Sim) heapPop() *Event {
	h := s.events
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[0].index = 0
	h[n] = nil
	s.events = h[:n]
	if n > 0 {
		s.siftDown(0)
	}
	e.index = -1
	return e
}

// heapRemove removes the event at heap index i (eager cancellation).
func (s *Sim) heapRemove(i int) {
	h := s.events
	n := len(h) - 1
	e := h[i]
	if i != n {
		h[i] = h[n]
		h[i].index = i
	}
	h[n] = nil
	s.events = h[:n]
	if i < n {
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
	e.index = -1
}

func (s *Sim) siftUp(i int) {
	h := s.events
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.eventLess(e, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].index = i
		i = parent
	}
	h[i] = e
	e.index = i
}

// siftDown restores the heap below i; it reports whether the element moved.
func (s *Sim) siftDown(i int) bool {
	h := s.events
	n := len(h)
	e := h[i]
	start := i
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s.eventLess(h[r], h[child]) {
			child = r
		}
		if !s.eventLess(h[child], e) {
			break
		}
		h[i] = h[child]
		h[i].index = i
		i = child
	}
	h[i] = e
	e.index = i
	return i > start
}

// ---- event pool ----

// newEvent takes an Event from the free-list (or allocates one), stamps it
// with (at, seq), and pushes it on the heap.
func (s *Sim) newEvent(at Time) *Event {
	if at < s.now {
		at = s.now
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{sim: s}
	}
	s.seq++
	e.at = at
	e.seq = s.seq
	s.heapPush(e)
	return e
}

// release clears an event and returns it to the free-list. The generation
// bump invalidates every EventID handed out for the previous incarnation.
func (s *Sim) release(e *Event) {
	e.gen++
	e.kind = 0
	e.bySignal = false
	e.fn = nil
	e.fn1 = nil
	e.arg = nil
	e.proc = nil
	e.werr = nil
	e.index = -1
	s.free = append(s.free, e)
}

// cancelInternal eagerly removes a scheduled event held by kernel-internal
// code (no generation check: the caller owns the pointer).
func (s *Sim) cancelInternal(e *Event) {
	if e.index >= 0 {
		s.heapRemove(e.index)
	}
	s.release(e)
}

// ---- scheduling API ----

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (at < Now) fires the event at the current instant instead; same-instant
// events run in scheduling order.
func (s *Sim) At(at Time, fn func()) EventID {
	e := s.newEvent(at)
	e.kind = evFunc
	e.fn = fn
	return EventID{e: e, gen: e.gen}
}

// After schedules fn to run d after the current instant. Negative delays
// are treated as zero.
func (s *Sim) After(d time.Duration, fn func()) EventID {
	return s.At(s.now+d, fn)
}

// AtCall schedules fn(arg) at absolute virtual time at. Unlike At, the
// callback and its argument are stored separately, so hot paths that reuse
// one function value (e.g. message delivery) schedule without allocating a
// closure per event.
func (s *Sim) AtCall(at Time, fn func(any), arg any) EventID {
	e := s.newEvent(at)
	e.kind = evCall
	e.fn1 = fn
	e.arg = arg
	return EventID{e: e, gen: e.gen}
}

// AfterCall schedules fn(arg) to run d after the current instant.
func (s *Sim) AfterCall(d time.Duration, fn func(any), arg any) EventID {
	return s.AtCall(s.now+d, fn, arg)
}

// Pending reports the number of scheduled events. Canceled events are
// removed from the heap eagerly, so this is O(1).
func (s *Sim) Pending() int { return len(s.events) }

// step pops and executes the next event. It reports whether an event ran.
func (s *Sim) step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := s.heapPop()
	if e.at > s.now {
		s.now = e.at
	}
	s.dispatched++
	switch e.kind {
	case evFunc:
		fn := e.fn
		s.release(e)
		fn()
	case evCall:
		fn, arg := e.fn1, e.arg
		s.release(e)
		fn(arg)
	case evWake:
		p, err, bySignal := e.proc, e.werr, e.bySignal
		stale := p.pendingWake != e
		s.release(e)
		if stale || p.done {
			// A later claim (e.g. an Interrupt racing a Spawn's first
			// wake) superseded this event; the newer one carries the
			// wake value.
			return true
		}
		p.pendingWake = nil
		p.parked = false
		p.lastWakeBySignal = bySignal
		p.handoff(err)
	case evTimer:
		p := e.proc
		stale := p.wakeEvent != e
		s.release(e)
		if stale || p.done || !p.parked {
			return true
		}
		p.wakeEvent = nil
		p.timerFire()
	}
	return true
}

// Run executes events until the event queue drains, the virtual clock would
// pass until, or a process fails. A process failure (panic) is returned as
// an error. On return the clock is at until (if until is in the future),
// even when the queue drained before the horizon — stepped drivers like
// exp.ChaosRun.Step rely on idle windows still advancing sim time.
func (s *Sim) Run(until Time) error {
	for !s.stopped && s.failure == nil {
		if len(s.events) == 0 || s.events[0].at > until {
			break
		}
		s.step()
	}
	if s.failure == nil && !s.stopped && s.now < until {
		s.now = until
	}
	return s.failure
}

// RunUntilIdle executes events until none remain or a process fails.
func (s *Sim) RunUntilIdle() error {
	for !s.stopped && s.failure == nil && s.step() {
	}
	return s.failure
}

// Stop halts the simulation: no further events execute, and every process
// still blocked is woken with ErrStopped so its goroutine can exit.
func (s *Sim) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	// Wake every parked or wake-claimed process so its goroutine
	// terminates. Resume order is by PID for determinism (not that it
	// matters post-stop).
	for pid := uint64(0); pid < s.nextPID; pid++ {
		p, ok := s.procs[pid]
		if !ok || p.done {
			continue
		}
		if p.pendingWake != nil {
			// Claimed but its wake event will never run now; deliver the
			// stop directly.
			s.cancelInternal(p.pendingWake)
			p.pendingWake = nil
			p.parked = false
			p.handoff(ErrStopped)
			continue
		}
		p.forceWake(ErrStopped)
	}
}

// fail records a fatal simulation error (e.g. a panicking process) and
// prevents further events from executing.
func (s *Sim) fail(err error) {
	if s.failure == nil {
		s.failure = err
	}
	s.stopped = true
}
